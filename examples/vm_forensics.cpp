// Forensics workflow: catch a worm, archive the infected VM, resurrect it in a
// lab for offline analysis.
//
//   ./vm_forensics [--dir /tmp]
//
// Steps shown:
//   1. a farm (drop-all containment, forensics enabled) is probed and exploited
//   2. the recycler retires the infected VM -> a .snap file appears (its memory
//      and disk DELTA only: a few pages, not the whole image)
//   3. the snapshot is loaded and restored into a fresh flash clone of the same
//      reference image -> byte-identical infected machine, ready to dissect
#include <cstdio>

#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/core/honeyfarm.h"
#include "src/hv/snapshot.h"

using namespace potemkin;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::string dir = flags.GetString("dir", "/tmp");
  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 24);

  HoneyfarmConfig config = MakeDefaultFarmConfig(prefix, /*num_hosts=*/1,
                                                 /*host_memory_mb=*/256,
                                                 ContentMode::kStoreBytes);
  config.server_template.image.num_pages = 1024;
  config.server_template.forensics_dir = dir;
  config.gateway.containment.mode = OutboundMode::kDropAll;
  config.gateway.recycle.idle_timeout = Duration::Seconds(5);
  config.gateway.recycle.infected_hold = Duration::Seconds(5);
  Honeyfarm farm(config);

  WormRuntime worm(&farm.loop(),
                   SlammerLikeWorm(Ipv4Prefix(Ipv4Address(11, 0, 0, 0), 8)), 99);
  farm.AttachWorm(&worm);
  farm.Start();

  // 1. Exploit arrives.
  const Ipv4Address victim_ip = prefix.AddressAt(66);
  std::printf("[1] exploit packet -> %s (slammer-like, udp/1434)\n",
              victim_ip.ToString().c_str());
  farm.SeedWorm(worm, Ipv4Address(198, 51, 100, 13), victim_ip);
  farm.RunFor(Duration::Seconds(3.0));
  if (farm.epidemic().total_infections() != 1) {
    std::printf("    unexpected: no infection\n");
    return 1;
  }
  const VmId infected_vm = farm.epidemic().events()[0].vm;
  std::printf("    VM %llu at %s infected; scanning (contained: drop-all)\n",
              static_cast<unsigned long long>(infected_vm),
              victim_ip.ToString().c_str());

  // 2. Recycler archives it.
  farm.RunFor(Duration::Seconds(30.0));
  const std::string snap_path =
      StrFormat("%s/vm-%llu-%s.snap", dir.c_str(),
                static_cast<unsigned long long>(infected_vm),
                victim_ip.ToString().c_str());
  std::printf("[2] VM recycled; forensic snapshots written: %llu -> %s\n",
              static_cast<unsigned long long>(farm.server(0).snapshots_written()),
              snap_path.c_str());

  const auto snapshot = VmSnapshot::ReadFromFile(snap_path);
  if (!snapshot) {
    std::printf("    snapshot missing!\n");
    return 1;
  }
  std::printf("    snapshot: %zu delta pages (%s), %zu disk blocks, infected=%s\n",
              snapshot->delta_pages(),
              HumanBytes(snapshot->delta_pages() * kPageSize).c_str(),
              snapshot->disk_blocks(), snapshot->meta().infected ? "yes" : "no");
  std::printf("    (full image is %s — the archive stores only the delta)\n",
              HumanBytes(1024ull * kPageSize).c_str());

  // 3. Resurrect in the lab: a standalone host with the same reference image.
  std::printf("[3] restoring into a lab clone...\n");
  PhysicalHostConfig lab_config;
  lab_config.memory_mb = 128;
  lab_config.content_mode = ContentMode::kStoreBytes;
  PhysicalHost lab(lab_config);
  const ImageId lab_image = lab.RegisterImage(config.server_template.image);
  VirtualMachine* specimen = lab.CreateClone(lab_image, CloneKind::kFlash, "specimen");
  if (specimen == nullptr || !snapshot->RestoreInto(specimen)) {
    std::printf("    restore failed\n");
    return 1;
  }
  std::printf("    specimen up: %s, infected=%s, delta=%u pages — identical to the\n"
              "    machine the worm compromised, frozen at recycle time.\n",
              specimen->name().c_str(), specimen->infected() ? "yes" : "no",
              specimen->memory().private_pages());
  std::remove(snap_path.c_str());
  return 0;
}
