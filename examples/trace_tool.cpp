// trace_tool — inspect, synthesize and summarize PKT1 packet traces.
//
//   ./trace_tool --generate out.pkt [--hours 1] [--pps 50] [--prefix 10.1.0.0/16]
//   ./trace_tool --stats trace.pkt
//   ./trace_tool --dump trace.pkt [--limit 20]
//
// Useful for preparing telescope_replay inputs and for eyeballing what the
// radiation generator produces (port mix, source skew, rate over time).
#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/malware/radiation.h"
#include "src/net/trace.h"

using namespace potemkin;

namespace {

int Generate(const Flags& flags) {
  const std::string path = flags.GetString("generate", "trace.pkt");
  RadiationConfig config;
  config.telescope =
      Ipv4Prefix::Parse(flags.GetString("prefix", "10.1.0.0/16")).value();
  config.duration = Duration::Hours(flags.GetDouble("hours", 1.0));
  config.mean_pps = flags.GetDouble("pps", 50.0);
  config.diurnal_amplitude = flags.GetDouble("diurnal", 0.35);
  config.source_pool = static_cast<uint32_t>(flags.GetUint("sources", 20000));
  config.seed = flags.GetUint("seed", 7);
  RadiationGenerator generator(config);
  const RadiationSummary summary = generator.GenerateToFile(path);
  std::printf("wrote %s: %s packets, %s distinct sources, %s distinct destinations\n",
              path.c_str(), WithCommas(summary.packets).c_str(),
              WithCommas(summary.distinct_sources).c_str(),
              WithCommas(summary.distinct_destinations).c_str());
  return 0;
}

int Stats(const Flags& flags) {
  const std::string path = flags.GetString("stats", "");
  TraceReader reader(path);
  if (!reader.ok()) {
    std::printf("cannot read %s\n", path.c_str());
    return 1;
  }
  std::map<std::pair<uint8_t, uint16_t>, uint64_t> port_mix;
  std::unordered_map<uint32_t, uint64_t> per_source;
  std::unordered_map<uint32_t, uint64_t> per_dest;
  std::map<int64_t, uint64_t> per_minute;
  uint64_t total = 0;
  uint64_t bytes = 0;
  TimePoint first;
  TimePoint last;
  TraceRecord record;
  while (reader.Next(&record)) {
    if (total == 0) {
      first = record.time;
    }
    last = record.time;
    ++total;
    bytes += record.wire_size;
    ++port_mix[{static_cast<uint8_t>(record.proto), record.dst_port}];
    ++per_source[record.src.value()];
    ++per_dest[record.dst.value()];
    ++per_minute[record.time.nanos() / 60000000000ll];
  }
  if (total == 0) {
    std::printf("empty trace\n");
    return 0;
  }
  const double span_s = (last - first).seconds();
  std::printf("%s: %s packets, %s, %.1f s span, %.1f pps mean\n\n", path.c_str(),
              WithCommas(total).c_str(), HumanBytes(bytes).c_str(), span_s,
              span_s > 0 ? static_cast<double>(total) / span_s : 0.0);
  std::printf("distinct sources: %s | distinct destinations: %s\n\n",
              WithCommas(per_source.size()).c_str(),
              WithCommas(per_dest.size()).c_str());

  // Port mix, descending.
  std::vector<std::pair<std::pair<uint8_t, uint16_t>, uint64_t>> ports(
      port_mix.begin(), port_mix.end());
  std::sort(ports.begin(), ports.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table table({"proto/port", "packets", "share"});
  for (size_t i = 0; i < std::min<size_t>(ports.size(), 10); ++i) {
    table.AddRow({StrFormat("%s/%u",
                            IpProtoName(static_cast<IpProto>(ports[i].first.first)),
                            ports[i].first.second),
                  WithCommas(ports[i].second),
                  StrFormat("%.1f%%", 100.0 * static_cast<double>(ports[i].second) /
                                          static_cast<double>(total))});
  }
  std::printf("%s\n", table.ToAscii().c_str());

  // Source skew.
  std::vector<uint64_t> counts;
  counts.reserve(per_source.size());
  for (const auto& [src, n] : per_source) {
    counts.push_back(n);
  }
  std::sort(counts.rbegin(), counts.rend());
  uint64_t top10 = 0;
  const size_t tenth = std::max<size_t>(1, counts.size() / 10);
  for (size_t i = 0; i < tenth; ++i) {
    top10 += counts[i];
  }
  std::printf("source skew: top 10%% of sources carry %.1f%% of packets "
              "(busiest source: %s packets)\n",
              100.0 * static_cast<double>(top10) / static_cast<double>(total),
              WithCommas(counts.front()).c_str());
  return 0;
}

int Dump(const Flags& flags) {
  const std::string path = flags.GetString("dump", "");
  const uint64_t limit = flags.GetUint("limit", 20);
  TraceReader reader(path);
  if (!reader.ok()) {
    std::printf("cannot read %s\n", path.c_str());
    return 1;
  }
  TraceRecord record;
  uint64_t shown = 0;
  while (shown < limit && reader.Next(&record)) {
    std::printf("%12.6fs  %-15s > %-15s %s dport=%-5u len=%u\n",
                record.time.seconds(), record.src.ToString().c_str(),
                record.dst.ToString().c_str(), IpProtoName(record.proto),
                record.dst_port, record.wire_size);
    ++shown;
  }
  std::printf("... (%s records total)\n", WithCommas(reader.record_count()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (flags.Has("generate")) {
    return Generate(flags);
  }
  if (flags.Has("stats")) {
    return Stats(flags);
  }
  if (flags.Has("dump")) {
    return Dump(flags);
  }
  std::printf("usage: trace_tool --generate out.pkt | --stats trace.pkt | "
              "--dump trace.pkt [--limit N]\n");
  return 1;
}
