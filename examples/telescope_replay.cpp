// Telescope replay: generate (or load) a background-radiation trace for a large
// address block and replay it against the farm, reporting how few live VMs cover
// the whole space — the paper's core scalability demonstration, as a tool.
//
//   ./telescope_replay [--prefix 10.1.0.0/18] [--minutes 30] [--pps 40]
//                      [--timeout-s 5] [--save trace.pkt | --load trace.pkt]
//                      [--shards N]   (power of two; partitions the gateway.
//                                      default: sized to the machine's cores)
#include <cstdio>
#include <memory>

#include "src/analysis/series_util.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/core/honeyfarm.h"
#include "src/malware/radiation.h"
#include "src/net/gre.h"

using namespace potemkin;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const Ipv4Prefix prefix =
      Ipv4Prefix::Parse(flags.GetString("prefix", "10.1.0.0/18")).value();
  const double minutes = flags.GetDouble("minutes", 30.0);
  const double pps = flags.GetDouble("pps", 40.0);
  const double timeout_s = flags.GetDouble("timeout-s", 5.0);

  // 1. Obtain a trace: load a recorded one or synthesize background radiation.
  std::vector<TraceRecord> trace;
  if (flags.Has("load")) {
    trace = TraceReader::ReadAll(flags.GetString("load", ""));
    std::printf("Loaded %zu records from %s\n", trace.size(),
                flags.GetString("load", "").c_str());
  } else {
    RadiationConfig radiation;
    radiation.telescope = prefix;
    radiation.duration = Duration::Minutes(minutes);
    radiation.mean_pps = pps;
    radiation.seed = flags.GetUint("seed", 21);
    RadiationGenerator generator(radiation);
    RadiationSummary summary{};
    if (flags.Has("save")) {
      summary = generator.GenerateToFile(flags.GetString("save", "trace.pkt"));
      trace = TraceReader::ReadAll(flags.GetString("save", "trace.pkt"));
    } else {
      trace = generator.GenerateAll();
      summary.packets = trace.size();
    }
    std::printf("Synthesized %llu packets of background radiation (%0.f pps mean, "
                "diurnal cycle)\n",
                static_cast<unsigned long long>(summary.packets), pps);
  }
  if (trace.empty()) {
    std::printf("no trace to replay\n");
    return 1;
  }

  // 2. Build the farm and replay.
  HoneyfarmConfig config = MakeDefaultFarmConfig(prefix, /*num_hosts=*/8,
                                                 /*host_memory_mb=*/2048,
                                                 ContentMode::kMetadataOnly);
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.server_template.engine.control_plane_workers = 8;
  config.gateway.recycle.idle_timeout = Duration::Seconds(timeout_s);
  config.gateway.recycle.max_lifetime = Duration::Zero();
  // Gateway sharding (deterministic shared-loop mode). The default sizes the
  // topology to the machine — largest power of two <= core count, so a
  // single-core host gets 1 shard and reproduces the pre-sharding farm byte
  // for byte.
  config.gateway_shards =
      static_cast<uint32_t>(flags.GetUint("shards", DefaultGatewayShards()));

  Honeyfarm farm(config);
  if (config.gateway_shards > 1) {
    std::printf("(gateway partitioned across %u shards)\n", config.gateway_shards);
  }
  farm.Start(/*sample_interval=*/Duration::Seconds(10));

  if (flags.GetBool("gre", false)) {
    // Deliver the trace the way the paper's deployment received it: each packet
    // GRE-encapsulated by a border router and decapsulated by the gateway.
    const Ipv4Address gateway_ip(192, 0, 2, 2);
    const Ipv4Address router_ip(192, 0, 2, 1);
    farm.EnableGreTermination(gateway_ip, router_ip, 100);
    auto router = std::make_shared<GreTunnel>(router_ip, gateway_ip, 100);
    for (const auto& record : trace) {
      farm.loop().ScheduleAt(record.time, [&farm, router, record]() {
        farm.InjectTunneled(router->Send(PacketFromRecord(
            record, MacAddress::FromId(record.src.value()), MacAddress::FromId(1))));
      });
    }
    std::printf("(delivering via GRE tunnel %s -> %s, key 100)\n",
                router_ip.ToString().c_str(), gateway_ip.ToString().c_str());
  } else {
    farm.ScheduleTrace(trace);
  }
  const Duration span = trace.back().time - TimePoint() + Duration::Seconds(30.0);
  std::printf("Replaying into %s across %zu hosts, recycle timeout %.1fs...\n\n",
              prefix.ToString().c_str(), farm.server_count(), timeout_s);
  farm.RunUntil(TimePoint() + span);

  // 3. Report.
  uint64_t peak = 0;
  double sum = 0;
  TimeSeries population;
  for (const auto& sample : farm.samples()) {
    peak = std::max(peak, sample.live_vms);
    sum += static_cast<double>(sample.live_vms);
    population.Record(sample.time, static_cast<double>(sample.live_vms));
  }
  const double mean =
      farm.samples().empty() ? 0 : sum / static_cast<double>(farm.samples().size());

  std::printf("live-VM population  |%s|\n",
              Sparkline(population, 64, TimePoint() + span).c_str());
  std::printf("\naddress space:        %s addresses\n",
              WithCommas(prefix.NumAddresses()).c_str());
  std::printf("peak live VMs:        %s  (%.0fx reduction)\n", WithCommas(peak).c_str(),
              static_cast<double>(prefix.NumAddresses()) /
                  static_cast<double>(std::max<uint64_t>(1, peak)));
  std::printf("mean live VMs:        %.1f\n", mean);
  std::printf("clones completed:     %s\n",
              WithCommas(farm.total_clones_completed()).c_str());
  const GatewayStats gw = farm.sharded_gateway().AggregateStats();
  uint64_t scanners = 0;
  for (uint32_t s = 0; s < farm.sharded_gateway().shard_count(); ++s) {
    scanners += farm.sharded_gateway().shard(s).scan_detector().scanners_flagged();
  }
  std::printf("VMs recycled:         %s\n", WithCommas(gw.vms_retired).c_str());
  std::printf("distinct scanners:    %s flagged\n", WithCommas(scanners).c_str());
  std::printf("capacity drops:       %s\n",
              WithCommas(gw.no_capacity_drops).c_str());
  return 0;
}
