// Worm outbreak demo: release a scanning worm against the farm and compare what
// each containment policy does to it, live.
//
//   ./worm_outbreak [--policy open|drop|reflect] [--minutes 3] [--worm slammer|blaster|codered]
//                   [--postmortem-dir DIR] [--shards N]  (default: machine-sized)
//
// With --policy reflect (the default) the worm's Internet-bound scans are folded
// back into the farm, infecting fresh honeypots: the epidemic you watch is the
// worm's *real* propagation behaviour, contained.
//
// With --postmortem-dir the farm flies instrumented: the SLO watchdog runs at
// 1 Hz and the flight recorder is armed, so any containment breach (try
// --policy open) drops a self-contained post-mortem JSON into DIR. The full
// event ledger (ledger.jsonl) and final health snapshot (snapshot.json) land
// there too for offline forensics.
#include <cstdio>

#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/core/honeyfarm.h"

using namespace potemkin;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::string policy = flags.GetString("policy", "reflect");
  const double minutes = flags.GetDouble("minutes", 3.0);
  const std::string strain = flags.GetString("worm", "slammer");
  const std::string postmortem_dir = flags.GetString("postmortem-dir", "");

  OutboundMode mode = OutboundMode::kReflect;
  if (policy == "open") {
    mode = OutboundMode::kOpen;
  } else if (policy == "drop") {
    mode = OutboundMode::kDropAll;
  }

  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 22);  // 1024 addresses
  HoneyfarmConfig config = MakeDefaultFarmConfig(prefix, /*num_hosts=*/4,
                                                 /*host_memory_mb=*/1024,
                                                 ContentMode::kMetadataOnly);
  config.server_template.image.num_pages = 2048;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.server_template.engine.control_plane_workers = 4;
  config.gateway.containment.mode = mode;
  config.gateway.recycle.idle_timeout = Duration::Minutes(10);
  config.gateway.recycle.infected_hold = Duration::Minutes(30);
  config.gateway.recycle.max_lifetime = Duration::Zero();
  // Machine-sized gateway topology: 1 shard on single-core hosts (stdout
  // byte-identical to the unsharded farm), a power of two elsewhere.
  config.gateway_shards =
      static_cast<uint32_t>(flags.GetUint("shards", DefaultGatewayShards()));
  if (!postmortem_dir.empty()) {
    // Forensic flight: size the ledger for the whole outbreak so the exported
    // JSONL holds every event, not just the tail of the default ring.
    config.ledger_capacity = 1u << 18;
  }

  Honeyfarm farm(config);
  if (config.gateway_shards > 1) {
    std::printf("(gateway partitioned across %u shards)\n", config.gateway_shards);
  }
  if (!postmortem_dir.empty()) {
    farm.StartWatchdog(Duration::Seconds(1));
    FlightRecorderConfig recorder_config;
    recorder_config.output_dir = postmortem_dir;
    recorder_config.prefix = "worm_outbreak";
    farm.ArmFlightRecorder(recorder_config);
  }

  // The worm believes it is scanning the whole Internet.
  const Ipv4Prefix internet(Ipv4Address(0, 0, 0, 0), 0);
  WormConfig worm_config = strain == "blaster"   ? BlasterLikeWorm(internet)
                           : strain == "codered" ? CodeRedLikeWorm(internet)
                                                 : SlammerLikeWorm(internet);
  worm_config.scan_rate_pps = flags.GetDouble("scan-rate", 15.0);
  WormRuntime worm(&farm.loop(), worm_config, flags.GetUint("seed", 4));
  farm.AttachWorm(&worm);
  farm.Start();

  std::printf("Farm: %s across 4 hosts; containment policy: %s\n",
              prefix.ToString().c_str(), OutboundModeName(mode));
  std::printf("Releasing %s (%s targeting, %.0f scans/s per instance)...\n\n",
              worm_config.name.c_str(), TargetSelectionName(worm_config.selection),
              worm_config.scan_rate_pps);
  farm.SeedWorm(worm, Ipv4Address(198, 51, 100, 66), prefix.AddressAt(1));

  // Narrate the outbreak every 15 virtual seconds.
  const Duration tick = Duration::Seconds(15);
  for (TimePoint t = TimePoint() + tick; t <= TimePoint() + Duration::Minutes(minutes);
       t += tick) {
    farm.RunUntil(t);
    const auto& containment = farm.gateway().containment().stats();
    std::printf("[%5.0fs] infected=%-4llu live VMs=%-5llu scans=%-7llu "
                "reflected=%-7llu escapes=%llu\n",
                t.seconds(),
                static_cast<unsigned long long>(farm.epidemic().total_infections()),
                static_cast<unsigned long long>(farm.TotalLiveVms()),
                static_cast<unsigned long long>(worm.stats().scans_sent),
                static_cast<unsigned long long>(containment.reflected),
                static_cast<unsigned long long>(containment.escapes_from_infected));
  }

  std::printf("\n--- outbreak post-mortem ---\n");
  const auto& events = farm.epidemic().events();
  const size_t show = std::min<size_t>(events.size(), 10);
  for (size_t i = 0; i < show; ++i) {
    std::printf("  infection #%zu at t=%.1fs: %s (attacked from %s)\n", i + 1,
                events[i].time.seconds(), events[i].victim.ToString().c_str(),
                events[i].attacker.ToString().c_str());
  }
  if (events.size() > show) {
    std::printf("  ... and %zu more\n", events.size() - show);
  }
  const auto& c = farm.gateway().containment().stats();
  std::printf("\ncontainment verdict: %llu packets from infected VMs reached the "
              "real Internet (%s)\n",
              static_cast<unsigned long long>(c.escapes_from_infected),
              c.escapes_from_infected == 0 ? "CONTAINED" : "ESCAPED");

  if (!postmortem_dir.empty()) {
    farm.ledger().WriteJsonLines(postmortem_dir + "/ledger.jsonl");
    farm.health().SampleNow().WriteJson(postmortem_dir + "/snapshot.json");
    const FlightRecorder* recorder = farm.flight_recorder();
    std::printf("\nforensics: %llu ledger events -> %s/ledger.jsonl\n",
                static_cast<unsigned long long>(farm.ledger().appended()),
                postmortem_dir.c_str());
    if (recorder->dumps_written() > 0) {
      std::printf("flight recorder tripped %llu time(s); last artifact: %s\n",
                  static_cast<unsigned long long>(recorder->dumps_written()),
                  recorder->last_path().c_str());
    } else {
      std::printf("flight recorder armed, never tripped (no breach/alert)\n");
    }
  }
  return 0;
}
