// Stateful service personas under attack, with post-compromise escape
// attempts the containment layer must catch and attribute.
//
//   ./persona_farm [--seed 11] [--policy reflect|drop|open] [--allow-fetch]
//                  [--seconds 15] [--out DIR] [--ledger-bits N] [--no-bench]
//
// A strict-TCP farm runs the persona honeypot profile (SSH auth facade, SMB
// negotiate chain, HTTP decoy documents). One scripted external attacker plays
// real handshakes against four victims: a brute-force SSH session that ends in
// lockout, an HTTP crawl that retrieves the decoy bait, an SMB walk to tree
// connect, and finally the CGI exploit that lands a multi-stage dropper. The
// dropper tries to fetch its second stage from a C2; the escape runtime
// escalates and tries to beacon, scan outside the farm, and exfiltrate over
// DNS. Every escape packet crosses the gateway like any other traffic, so the
// run's verdict is read from the event ledger: each kEscapeAttempt must be
// paired with the containment event that caught it.
//
// The run is deterministic: same seed, same virtual-time schedule, same ledger
// byte-for-byte. CI replays it twice and diffs the artifacts.
//
// With --allow-fetch the dropper's fetch port is allow-listed (the paper's
// controlled-update channel): the infection completes, stage-2 scanning
// starts, and the allow-list hit is reported as a deliberate containment hole
// — scripted escape attempts must still all be caught.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/base/flags.h"
#include "src/core/honeyfarm.h"
#include "src/guest/persona/escape.h"
#include "src/guest/persona/persona.h"
#include "src/malware/dropper.h"

using namespace potemkin;

namespace {

// Plays the external attacker: full TCP handshakes against strict guests, one
// scripted payload exchange at a time. Replies arrive through the farm's
// egress monitor; sends are injected at the gateway after a fixed think time,
// so the whole exchange is deterministic in virtual time.
class AttackerClient {
 public:
  struct Script {
    const char* name;
    Ipv4Address victim;
    uint16_t dst_port = 0;
    std::vector<std::string> sends;
    double start_s = 0.0;
  };

  AttackerClient(Honeyfarm* farm, Ipv4Address attacker_ip)
      : farm_(farm), attacker_ip_(attacker_ip) {}

  void Launch(Script script) {
    const size_t index = sessions_.size();
    Session session;
    session.script = std::move(script);
    session.src_port = static_cast<uint16_t>(51000 + index);
    session.isn = 0xa0000000u + static_cast<uint32_t>(index) * 0x10000u;
    sessions_.push_back(std::move(session));
    farm_->loop().ScheduleAfter(Duration::Seconds(sessions_[index].script.start_s),
                                [this, index]() { SendSyn(index); });
  }

  // Feed every egress packet here; returns true if it belonged to a session.
  bool OnEgress(const PacketView& view) {
    if (!view.is_tcp() || view.ip().dst != attacker_ip_) {
      return false;
    }
    for (size_t i = 0; i < sessions_.size(); ++i) {
      Session& session = sessions_[i];
      if (view.tcp().dst_port != session.src_port ||
          view.ip().src != session.script.victim ||
          view.tcp().src_port != session.script.dst_port) {
        continue;
      }
      HandleReply(i, view);
      return true;
    }
    return false;
  }

  size_t replies_received(size_t i) const { return sessions_[i].transcript.size(); }
  size_t session_count() const { return sessions_.size(); }
  const std::vector<std::string>& transcript(size_t i) const {
    return sessions_[i].transcript;
  }
  const char* session_name(size_t i) const { return sessions_[i].script.name; }

 private:
  struct Session {
    Script script;
    uint16_t src_port = 0;
    uint32_t isn = 0;
    uint32_t seq = 0;  // next octet we will send
    uint32_t ack = 0;  // next octet we expect from the guest
    size_t next_send = 0;
    bool established = false;
    bool send_scheduled = false;
    bool closed = false;
    std::vector<std::string> transcript;
  };

  void Inject(Packet packet) {
    // Never inject from inside the egress callback: the gateway is mid-dispatch.
    struct Box {
      Packet p;
    };
    auto box = std::make_shared<Box>(Box{std::move(packet)});
    farm_->loop().ScheduleAfter(Duration::Millis(1), [this, box]() {
      farm_->InjectInbound(std::move(box->p));
    });
  }

  Packet Build(const Session& session, uint8_t flags, uint32_t seq, uint32_t ack,
               const std::string& payload) {
    PacketSpec spec;
    spec.src_mac = MacAddress::FromId(0xa77);
    spec.dst_mac = MacAddress::FromId(1);
    spec.src_ip = attacker_ip_;
    spec.dst_ip = session.script.victim;
    spec.proto = IpProto::kTcp;
    spec.src_port = session.src_port;
    spec.dst_port = session.script.dst_port;
    spec.tcp_flags = flags;
    spec.seq = seq;
    spec.ack = ack;
    spec.payload.assign(payload.begin(), payload.end());
    return BuildPacket(spec);
  }

  void SendSyn(size_t index) {
    Session& session = sessions_[index];
    session.seq = session.isn;
    farm_->InjectInbound(Build(session, TcpFlags::kSyn, session.seq, 0, ""));
  }

  void ScheduleSend(size_t index) {
    Session& session = sessions_[index];
    if (session.send_scheduled || session.closed ||
        session.next_send >= session.script.sends.size()) {
      return;
    }
    session.send_scheduled = true;
    farm_->loop().ScheduleAfter(Duration::Millis(40),
                                [this, index]() { FireSend(index); });
  }

  void FireSend(size_t index) {
    Session& session = sessions_[index];
    session.send_scheduled = false;
    if (session.closed || session.next_send >= session.script.sends.size()) {
      return;
    }
    const std::string& payload = session.script.sends[session.next_send];
    ++session.next_send;
    farm_->InjectInbound(Build(session, TcpFlags::kPsh | TcpFlags::kAck,
                               session.seq, session.ack, payload));
    session.seq += static_cast<uint32_t>(payload.size());
  }

  void HandleReply(size_t index, const PacketView& view) {
    Session& session = sessions_[index];
    const uint8_t flags = view.tcp().flags;
    if ((flags & TcpFlags::kRst) != 0) {
      session.closed = true;
      return;
    }
    if ((flags & TcpFlags::kSyn) != 0 && (flags & TcpFlags::kAck) != 0) {
      // SYN|ACK: complete the handshake and start the scripted exchange.
      session.ack = view.tcp().seq + 1;
      session.seq = session.isn + 1;
      session.established = true;
      Inject(Build(session, TcpFlags::kAck, session.seq, session.ack, ""));
      ScheduleSend(index);
      return;
    }
    const auto payload = view.l4_payload();
    uint32_t advance = static_cast<uint32_t>(payload.size());
    if ((flags & TcpFlags::kFin) != 0) {
      advance += 1;  // the FIN octet
      session.closed = true;
    }
    if (advance == 0) {
      return;  // bare ACK from the guest: nothing to acknowledge
    }
    if (!payload.empty()) {
      session.transcript.emplace_back(payload.begin(), payload.end());
    }
    session.ack = view.tcp().seq + advance;
    Inject(Build(session, TcpFlags::kAck, session.seq, session.ack, ""));
    ScheduleSend(index);
  }

  Honeyfarm* farm_;
  Ipv4Address attacker_ip_;
  std::vector<Session> sessions_;
};

std::string Ip(uint64_t raw) {
  return Ipv4Address(static_cast<uint32_t>(raw)).ToString();
}

const char* PersonaKindLabel(uint64_t kind) {
  switch (static_cast<PersonaKind>(kind)) {
    case PersonaKind::kSsh:
      return "ssh";
    case PersonaKind::kSmb:
      return "smb";
    case PersonaKind::kHttp:
      return "http";
    case PersonaKind::kNone:
      break;
  }
  return "?";
}

bool IsBlockingVerdict(LedgerEvent type) {
  return type == LedgerEvent::kContainmentDrop ||
         type == LedgerEvent::kContainmentReflect ||
         type == LedgerEvent::kContainmentRateLimit ||
         type == LedgerEvent::kContainmentDnsProxy;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint64_t seed = flags.GetUint("seed", 11);
  const double seconds = flags.GetDouble("seconds", 15.0);
  const std::string policy = flags.GetString("policy", "reflect");
  const bool allow_fetch = flags.GetBool("allow-fetch", false);
  const std::string out_dir = flags.GetString("out", "");
  const bool write_bench = !flags.GetBool("no-bench", false);

  OutboundMode mode = OutboundMode::kReflect;
  if (policy == "open") {
    mode = OutboundMode::kOpen;
  } else if (policy == "drop") {
    mode = OutboundMode::kDropAll;
  }

  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 24);
  HoneyfarmConfig config = MakeDefaultFarmConfig(prefix, /*num_hosts=*/2,
                                                 /*host_memory_mb=*/512,
                                                 ContentMode::kMetadataOnly);
  config.seed = seed;
  config.server_template.image.num_pages = 2048;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.server_template.guest.services = PersonaHoneypotServices();
  config.server_template.guest.strict_tcp = true;
  config.gateway.containment.mode = mode;
  if (allow_fetch) {
    // The paper's controlled-update channel: one port deliberately left open.
    config.gateway.containment.allowed_ports.insert(8080);
  }
  config.ledger_capacity = 1u << flags.GetUint("ledger-bits", 16);

  Honeyfarm farm(config);

  const Ipv4Prefix internet(Ipv4Address(0, 0, 0, 0), 0);
  DropperRuntime dropper(&farm.loop(), CgiDropper(internet), &farm.obs(),
                         seed ^ 0xd0);
  EscapeScriptConfig escape_config;
  EscapeRuntime escape(&farm.loop(), escape_config, &farm.obs(), seed ^ 0xe5);
  farm.AttachAgent(&dropper);
  farm.AttachAgent(&escape);
  farm.Start();

  const Ipv4Address attacker_ip(198, 51, 100, 66);
  AttackerClient attacker(&farm, attacker_ip);
  if (allow_fetch) {
    farm.set_egress_monitor([&](const Packet& packet) {
      if (auto response = dropper.MakeC2Response(packet)) {
        struct Box {
          Packet p;
        };
        auto box = std::make_shared<Box>(Box{std::move(*response)});
        farm.loop().ScheduleAfter(Duration::Millis(1), [&farm, box]() {
          farm.InjectInbound(std::move(box->p));
        });
        return;
      }
      if (auto view = PacketView::Parse(packet)) {
        attacker.OnEgress(*view);
      }
    });
  } else {
    farm.set_egress_monitor([&](const Packet& packet) {
      if (auto view = PacketView::Parse(packet)) {
        attacker.OnEgress(*view);
      }
    });
  }

  // The attack schedule: three persona sessions, then the exploit.
  attacker.Launch({"ssh-bruteforce", prefix.AddressAt(10), 22,
                   {"SSH-2.0-attacker\r\n", "AUTH password root:123456\r\n",
                    "AUTH password root:password\r\n",
                    "AUTH password root:letmein\r\n"},
                   0.1});
  attacker.Launch({"http-crawl", prefix.AddressAt(11), 80,
                   {"GET /robots.txt HTTP/1.0\r\n\r\n",
                    "GET /finance/payroll-2005.xls HTTP/1.0\r\n\r\n",
                    "GET /hr/employees.csv HTTP/1.0\r\n\r\n"},
                   0.3});
  attacker.Launch({"smb-walk", prefix.AddressAt(12), 445,
                   {"SMB-NEGOTIATE dialects=NT LM 0.12\r\n",
                    "SMB-SESSION-SETUP user=guest\r\n",
                    "SMB-TREE-CONNECT share=IPC$\r\n"},
                   0.5});
  attacker.Launch({"cgi-exploit", prefix.AddressAt(13), 80,
                   {"EXPLOIT-CGI/stage1-loader"},
                   0.8});

  std::printf("Persona farm: %s, strict TCP, policy %s%s, seed %llu\n\n",
              prefix.ToString().c_str(), OutboundModeName(mode),
              allow_fetch ? " (+fetch port 8080 allow-listed)" : "",
              static_cast<unsigned long long>(seed));

  farm.RunFor(Duration::Seconds(seconds));

  // ---- Forensic timeline -------------------------------------------------
  const std::vector<EventLedger::Record> events = farm.ledger().Events();
  std::printf("--- forensic timeline (persona / malware / containment) ---\n");
  size_t timeline_lines = 0;
  for (const auto& record : events) {
    const double t = static_cast<double>(record.time_ns) * 1e-9;
    char line[256];
    line[0] = 0;
    switch (record.type) {
      case LedgerEvent::kPersonaState:
        std::snprintf(line, sizeof(line), "persona %s port %llu -> state %llu",
                      PersonaKindLabel(record.a >> 8),
                      static_cast<unsigned long long>(record.b),
                      static_cast<unsigned long long>(record.a & 0xff));
        break;
      case LedgerEvent::kPersonaAuthFailure:
        std::snprintf(line, sizeof(line), "auth failure #%llu on port %llu",
                      static_cast<unsigned long long>(record.a),
                      static_cast<unsigned long long>(record.b));
        break;
      case LedgerEvent::kPersonaLockout:
        std::snprintf(line, sizeof(line), "LOCKOUT of %s on port %llu",
                      Ip(record.a).c_str(),
                      static_cast<unsigned long long>(record.b));
        break;
      case LedgerEvent::kPersonaDecoy:
        std::snprintf(line, sizeof(line), "decoy document %llu served (%llu bytes)",
                      static_cast<unsigned long long>(record.a),
                      static_cast<unsigned long long>(record.b));
        break;
      case LedgerEvent::kPersonaEscalation:
        std::snprintf(line, sizeof(line),
                      "privilege escalation on %s (technique %llu)",
                      Ip(record.a).c_str(),
                      static_cast<unsigned long long>(record.b));
        break;
      case LedgerEvent::kEscapeAttempt:
        std::snprintf(line, sizeof(line), "ESCAPE ATTEMPT (%s) -> %s",
                      EscapeKindName(static_cast<EscapeKind>(record.b)),
                      Ip(record.a).c_str());
        break;
      case LedgerEvent::kMalwareStage:
        std::snprintf(line, sizeof(line), "dropper on %s reached stage %llu",
                      Ip(record.b).c_str(),
                      static_cast<unsigned long long>(record.a));
        break;
      case LedgerEvent::kInfection:
        std::snprintf(line, sizeof(line), "infection: %s compromised by %s",
                      Ip(record.a).c_str(), Ip(record.b).c_str());
        break;
      default:
        break;
    }
    if (line[0] != 0) {
      ++timeline_lines;
      std::printf("  [%7.3fs] s%-3llu %s\n", t,
                  static_cast<unsigned long long>(record.session), line);
    }
  }
  if (timeline_lines == 0) {
    std::printf("  (no persona events — something is wrong)\n");
  }

  // ---- Verdict: pair every escape attempt with its containment event -----
  size_t escape_attempts = 0;
  size_t escape_blocked = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const auto& attempt = events[i];
    if (attempt.type != LedgerEvent::kEscapeAttempt) {
      continue;
    }
    ++escape_attempts;
    bool caught = false;
    for (size_t j = i + 1; j < events.size(); ++j) {
      const auto& verdict = events[j];
      if (verdict.session != attempt.session ||
          verdict.time_ns < attempt.time_ns || !IsBlockingVerdict(verdict.type)) {
        continue;
      }
      // Drop/rate-limit/DNS-proxy events carry the destination in `a`;
      // reflect events carry the original external destination in `a` too.
      if (verdict.a == attempt.a) {
        caught = true;
        break;
      }
    }
    if (caught) {
      ++escape_blocked;
    } else {
      std::printf("  !! escape attempt to %s (session %llu) was NOT caught\n",
                  Ip(attempt.a).c_str(),
                  static_cast<unsigned long long>(attempt.session));
    }
  }

  // Persona milestones the scripted attack must have reached.
  size_t lockouts = 0, decoys = 0, smb_tree_connects = 0, infections = 0;
  size_t stalled = 0, activated = 0;
  for (const auto& record : events) {
    switch (record.type) {
      case LedgerEvent::kPersonaLockout:
        ++lockouts;
        break;
      case LedgerEvent::kPersonaDecoy:
        ++decoys;
        break;
      case LedgerEvent::kPersonaState:
        if ((record.a >> 8) == static_cast<uint64_t>(PersonaKind::kSmb) &&
            (record.a & 0xff) == 3) {
          ++smb_tree_connects;
        }
        break;
      case LedgerEvent::kInfection:
        ++infections;
        break;
      case LedgerEvent::kMalwareStage:
        if (record.a == static_cast<uint64_t>(DropperStage::kStalled)) {
          ++stalled;
        } else if (record.a == static_cast<uint64_t>(DropperStage::kActivated)) {
          ++activated;
        }
        break;
      default:
        break;
    }
  }

  uint64_t allowlist_escapes = 0;
  for (uint32_t s = 0; s < farm.sharded_gateway().shard_count(); ++s) {
    allowlist_escapes +=
        farm.sharded_gateway().shard(s).containment().stats().escapes_from_infected;
  }

  std::printf("\n--- persona post-mortem ---\n");
  std::printf("sessions: ");
  for (size_t i = 0; i < attacker.session_count(); ++i) {
    std::printf("%s=%zu replies%s", attacker.session_name(i),
                attacker.replies_received(i),
                i + 1 < attacker.session_count() ? ", " : "\n");
  }
  std::printf("lockouts=%zu decoys=%zu smb_tree_connects=%zu infections=%zu\n",
              lockouts, decoys, smb_tree_connects, infections);
  std::printf("dropper: fetches=%llu activated=%zu stalled=%zu scanning=%zu\n",
              static_cast<unsigned long long>(dropper.stats().fetches_sent),
              activated, stalled, dropper.scanning_instances());
  std::printf("escape attempts=%zu blocked=%zu allowlist_escapes=%llu\n",
              escape_attempts, escape_blocked,
              static_cast<unsigned long long>(allowlist_escapes));

  const bool dropper_terminal = allow_fetch ? activated > 0 : stalled > 0;
  const bool milestones = lockouts > 0 && decoys >= 2 && smb_tree_connects > 0 &&
                          infections > 0 && dropper_terminal;
  const bool contained = escape_attempts > 0 && escape_blocked == escape_attempts;
  const bool ok = milestones && (mode == OutboundMode::kOpen || contained);

  std::printf("\nverdict: %zu/%zu escape attempt(s) caught, milestones %s (%s)\n",
              escape_blocked, escape_attempts, milestones ? "met" : "MISSED",
              ok ? "OK" : "FAILED");

  if (write_bench) {
    BenchReport report("persona_farm");
    report.set_seed(seed);
    report.Add("escape_attempts", static_cast<double>(escape_attempts), "count");
    report.Add("escape_attempts_blocked", static_cast<double>(escape_blocked),
               "count");
    report.Add("persona_lockouts", static_cast<double>(lockouts), "count");
    report.Add("decoys_served", static_cast<double>(decoys), "count");
    report.Add("smb_tree_connects", static_cast<double>(smb_tree_connects),
               "count");
    report.Add("infections", static_cast<double>(infections), "count");
    report.Add("dropper_fetches",
               static_cast<double>(dropper.stats().fetches_sent), "count");
    report.Add("dropper_stalled", static_cast<double>(stalled), "count");
    report.Add("allowlist_escapes", static_cast<double>(allowlist_escapes),
               "count");
    const std::string path = report.WriteJson();
    if (!path.empty()) {
      std::printf("bench report: %s\n", path.c_str());
    }
  }

  if (!out_dir.empty()) {
    farm.ledger().WriteJsonLines(out_dir + "/ledger.jsonl");
    std::printf("artifacts: %s/ledger.jsonl\n", out_dir.c_str());
  }
  return ok ? 0 : 1;
}
