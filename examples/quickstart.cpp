// Quickstart: the smallest end-to-end Potemkin session.
//
// Builds a honeyfarm emulating a /24, sends one SYN probe from a pretend attacker,
// and narrates what happens: the gateway late-binds the address, flash-clones a VM
// from the reference image in ~0.5s of virtual time, the honeypot answers the
// probe, and the idle VM is recycled moments later.
//
//   ./quickstart [--prefix 10.1.0.0/24] [--port 445]
#include <cstdio>

#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/core/honeyfarm.h"

using namespace potemkin;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const Ipv4Prefix prefix =
      Ipv4Prefix::Parse(flags.GetString("prefix", "10.1.0.0/24")).value();
  const uint16_t port = static_cast<uint16_t>(flags.GetUint("port", 445));

  // 1. Configure a small farm: one physical host, real page contents, default
  //    Windows-like services, 5-second recycle timeout so we can watch it happen.
  HoneyfarmConfig config =
      MakeDefaultFarmConfig(prefix, /*num_hosts=*/1, /*host_memory_mb=*/512,
                            ContentMode::kStoreBytes);
  config.server_template.image.num_pages = 4096;  // 16 MiB reference image
  config.gateway.recycle.idle_timeout = Duration::Seconds(5);
  config.gateway.recycle.scan_interval = Duration::Seconds(1);

  Honeyfarm farm(config);
  farm.set_egress_monitor([&](const Packet& packet) {
    const auto view = PacketView::Parse(packet);
    std::printf("[%7.3fs] <- farm sent to Internet: %s\n",
                farm.loop().Now().seconds(), view ? view->Describe().c_str() : "?");
  });
  farm.Start();
  std::printf("Honeyfarm up: emulating %s (%s addresses) on %zu host(s)\n",
              prefix.ToString().c_str(), WithCommas(prefix.NumAddresses()).c_str(),
              farm.server_count());
  std::printf("Reference image: %s, %s\n\n",
              config.server_template.image.name.c_str(),
              HumanBytes(static_cast<uint64_t>(config.server_template.image.num_pages) *
                         kPageSize)
                  .c_str());

  // 2. A probe arrives from the Internet for an address nobody has contacted.
  const Ipv4Address target = prefix.AddressAt(7);
  PacketSpec probe;
  probe.src_mac = MacAddress::FromId(0xbad);
  probe.dst_mac = MacAddress::FromId(1);
  probe.src_ip = Ipv4Address(198, 51, 100, 77);
  probe.dst_ip = target;
  probe.proto = IpProto::kTcp;
  probe.src_port = 51234;
  probe.dst_port = port;
  probe.tcp_flags = TcpFlags::kSyn;
  std::printf("[%7.3fs] -> injecting SYN probe %s:51234 > %s:%u\n",
              farm.loop().Now().seconds(), probe.src_ip.ToString().c_str(),
              target.ToString().c_str(), port);
  farm.InjectInbound(BuildPacket(probe));
  std::printf("[%7.3fs]    gateway: no VM bound to %s yet -> flash clone requested,"
              " packet queued\n",
              farm.loop().Now().seconds(), target.ToString().c_str());

  // 3. Let the clone complete and the honeypot answer.
  farm.RunFor(Duration::Seconds(2.0));
  std::printf("[%7.3fs]    live VMs: %llu, clone completed in %s (virtual)\n",
              farm.loop().Now().seconds(),
              static_cast<unsigned long long>(farm.TotalLiveVms()),
              config.server_template.engine.latency
                  .FlashCloneTotal(config.server_template.image.num_pages)
                  .ToString()
                  .c_str());
  farm.server(0).host().ForEachVm([&](VirtualMachine& vm) {
    std::printf("[%7.3fs]    %s: state=%s ip=%s delta=%u pages (%s) shared=%u pages\n",
                farm.loop().Now().seconds(), vm.name().c_str(),
                VmStateName(vm.state()), vm.ip().ToString().c_str(),
                vm.memory().private_pages(),
                HumanBytes(vm.memory().private_bytes()).c_str(),
                vm.memory().shared_pages());
  });

  // 4. Idle out and watch the recycler reclaim the VM.
  farm.RunFor(Duration::Seconds(10.0));
  std::printf("[%7.3fs]    after idle timeout: live VMs = %llu, recycled = %llu\n",
              farm.loop().Now().seconds(),
              static_cast<unsigned long long>(farm.TotalLiveVms()),
              static_cast<unsigned long long>(farm.gateway().stats().vms_retired));

  const GatewayStats& stats = farm.gateway().stats();
  std::printf("\nGateway summary: %llu inbound, %llu delivered, %llu clones, "
              "%llu egress\n",
              static_cast<unsigned long long>(stats.inbound_packets),
              static_cast<unsigned long long>(stats.inbound_delivered),
              static_cast<unsigned long long>(stats.clones_triggered),
              static_cast<unsigned long long>(stats.egress_packets));
  return 0;
}
