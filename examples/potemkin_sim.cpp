// potemkin_sim — the full honeyfarm as one configurable command.
//
// Composes everything in the library: synthetic telescope traffic, optional worm
// outbreaks, any containment policy, strict or permissive guests, scanner
// filtering, forensics and GRE delivery; then prints a complete operations
// report. Examples:
//
//   ./potemkin_sim                                   # 10 min on a /18, reflect
//   ./potemkin_sim --prefix 10.1.0.0/16 --hosts 16 --minutes 30 --pps 120
//   ./potemkin_sim --worm blaster --policy reflect --strict-tcp
//   ./potemkin_sim --policy drop --worm slammer --forensics /tmp --timeout-s 20
#include <cstdio>

#include "src/analysis/series_util.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/core/honeyfarm.h"
#include "src/malware/radiation.h"

using namespace potemkin;

namespace {

const char* Usage() {
  return
      "potemkin_sim — drive a full Potemkin honeyfarm simulation\n"
      "  --prefix P       emulated prefix (default 10.1.0.0/18)\n"
      "  --hosts N        physical hosts (default 8)\n"
      "  --host-mb M      memory per host in MiB (default 2048)\n"
      "  --image-pages N  reference image size in 4K pages (default 8192)\n"
      "  --minutes T      virtual duration (default 10)\n"
      "  --pps R          mean radiation rate (default 50)\n"
      "  --policy X       open | drop | reflect (default reflect)\n"
      "  --timeout-s T    VM recycle idle timeout (default 5)\n"
      "  --worm W         none | slammer | blaster | codered (default none)\n"
      "  --scan-rate R    worm scans/sec per instance (default 2)\n"
      "  --strict-tcp     run guests with the real TCP server stack\n"
      "  --filter-scanners  shed load from flagged scanners\n"
      "  --optimized-cp   optimized clone control plane (42ms vs 520ms)\n"
      "  --workers N      control-plane workers per host (default 4)\n"
      "  --shards N       gateway shards, power of two (default: machine-sized)\n"
      "  --forensics DIR  snapshot infected VMs at recycle time\n"
      "  --gre            deliver traffic via GRE tunnel termination\n"
      "  --seed S         experiment seed (default 42)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (flags.Has("help")) {
    std::printf("%s", Usage());
    return 0;
  }
  const auto prefix_opt = Ipv4Prefix::Parse(flags.GetString("prefix", "10.1.0.0/18"));
  if (!prefix_opt) {
    std::printf("bad --prefix\n%s", Usage());
    return 1;
  }
  const Ipv4Prefix prefix = *prefix_opt;
  const double minutes = flags.GetDouble("minutes", 10.0);
  const std::string policy = flags.GetString("policy", "reflect");
  const std::string worm_name = flags.GetString("worm", "none");
  const uint64_t seed = flags.GetUint("seed", 42);

  // ---- Farm configuration ----
  HoneyfarmConfig config = MakeDefaultFarmConfig(
      prefix, static_cast<uint32_t>(flags.GetUint("hosts", 8)),
      flags.GetUint("host-mb", 2048), ContentMode::kMetadataOnly);
  config.seed = seed;
  config.server_template.image.num_pages =
      static_cast<uint32_t>(flags.GetUint("image-pages", 8192));
  config.server_template.guest.strict_tcp = flags.GetBool("strict-tcp", false);
  if (flags.GetBool("optimized-cp", false)) {
    config.server_template.engine.latency = CloneLatencyModel::Optimized();
  }
  config.server_template.engine.control_plane_workers =
      static_cast<int>(flags.GetInt("workers", 4));
  config.server_template.forensics_dir = flags.GetString("forensics", "");
  config.gateway.containment.mode = policy == "open"   ? OutboundMode::kOpen
                                    : policy == "drop" ? OutboundMode::kDropAll
                                                       : OutboundMode::kReflect;
  config.gateway.filter_known_scanners = flags.GetBool("filter-scanners", false);
  config.gateway.recycle.idle_timeout =
      Duration::Seconds(flags.GetDouble("timeout-s", 5.0));
  config.gateway.recycle.infected_hold = Duration::Minutes(10);
  config.gateway.recycle.max_lifetime = Duration::Zero();
  // Machine-sized gateway topology: 1 shard on single-core hosts (stdout
  // byte-identical to the unsharded farm), a power of two elsewhere.
  config.gateway_shards =
      static_cast<uint32_t>(flags.GetUint("shards", DefaultGatewayShards()));

  Honeyfarm farm(config);
  if (config.gateway_shards > 1) {
    std::printf("(gateway partitioned across %u shards)\n", config.gateway_shards);
  }
  farm.Start(/*sample_interval=*/Duration::Seconds(10));

  // ---- Workload: radiation ----
  RadiationConfig radiation;
  radiation.telescope = prefix;
  radiation.duration = Duration::Minutes(minutes);
  radiation.mean_pps = flags.GetDouble("pps", 50.0);
  radiation.seed = seed + 1;
  const auto trace = RadiationGenerator(radiation).GenerateAll();

  std::unique_ptr<GreTunnel> router;
  if (flags.GetBool("gre", false)) {
    const Ipv4Address gateway_ip(192, 0, 2, 2);
    const Ipv4Address router_ip(192, 0, 2, 1);
    farm.EnableGreTermination(gateway_ip, router_ip, 1);
    router = std::make_unique<GreTunnel>(router_ip, gateway_ip, 1);
    for (const auto& record : trace) {
      farm.loop().ScheduleAt(record.time, [&farm, &router, record]() {
        farm.InjectTunneled(router->Send(PacketFromRecord(
            record, MacAddress::FromId(record.src.value()), MacAddress::FromId(1))));
      });
    }
  } else {
    farm.ScheduleTrace(trace);
  }

  // ---- Workload: worm ----
  std::unique_ptr<WormRuntime> worm;
  if (worm_name != "none") {
    const Ipv4Prefix internet(Ipv4Address(0, 0, 0, 0), 0);
    WormConfig worm_config = worm_name == "blaster"   ? BlasterLikeWorm(internet)
                             : worm_name == "codered" ? CodeRedLikeWorm(internet)
                                                      : SlammerLikeWorm(internet);
    worm_config.scan_rate_pps = flags.GetDouble("scan-rate", 2.0);
    worm = std::make_unique<WormRuntime>(&farm.loop(), worm_config, seed + 2);
    farm.AttachWorm(worm.get());
    // Outbreak begins one tenth into the run. TCP worms are seeded with a full
    // attacker handshake so strict-TCP guests accept the exploit too.
    farm.loop().ScheduleAfter(Duration::Minutes(minutes / 10.0), [&]() {
      const Ipv4Address attacker(198, 51, 100, 66);
      if (worm->config().proto == IpProto::kTcp) {
        farm.SeedWormViaHandshake(*worm, attacker, prefix.AddressAt(1));
      } else {
        farm.SeedWorm(*worm, attacker, prefix.AddressAt(1));
        farm.SeedWorm(*worm, attacker, prefix.AddressAt(1));
      }
    });
  }

  std::printf("potemkin_sim: %s | %u hosts x %s | policy=%s | %zu trace packets | "
              "worm=%s%s%s\n\n",
              prefix.ToString().c_str(), config.num_hosts,
              HumanBytes(flags.GetUint("host-mb", 2048) << 20).c_str(),
              policy.c_str(), trace.size(), worm_name.c_str(),
              config.server_template.guest.strict_tcp ? " | strict-tcp" : "",
              flags.GetBool("gre", false) ? " | via GRE" : "");

  // ---- Run, narrating ----
  const int ticks = 10;
  for (int t = 1; t <= ticks; ++t) {
    farm.RunUntil(TimePoint() + Duration::Minutes(minutes * t / ticks));
    const FarmSample sample = farm.SampleNow();
    std::printf("[%5.1f min] vms=%-6llu bindings=%-6llu delta=%-8s infected=%-5llu "
                "cpu=%.1f%%\n",
                sample.time.seconds() / 60.0,
                static_cast<unsigned long long>(sample.live_vms),
                static_cast<unsigned long long>(sample.live_bindings),
                HumanBytes(sample.private_pages * kPageSize).c_str(),
                static_cast<unsigned long long>(sample.infections),
                sample.mean_cpu_utilization * 100.0);
  }

  // ---- Report ----
  const GatewayStats& g = farm.gateway().stats();
  const ContainmentStats& c = farm.gateway().containment().stats();
  std::printf("\n---- gateway ----\n");
  Table gw({"metric", "count"});
  gw.AddRow({"inbound packets", WithCommas(g.inbound_packets)});
  gw.AddRow({"delivered to VMs", WithCommas(g.inbound_delivered)});
  gw.AddRow({"clones triggered", WithCommas(g.clones_triggered)});
  gw.AddRow({"VMs recycled", WithCommas(g.vms_retired)});
  gw.AddRow({"queued during cloning", WithCommas(g.inbound_queued)});
  gw.AddRow({"no-capacity drops", WithCommas(g.no_capacity_drops)});
  gw.AddRow({"filtered scanner packets", WithCommas(g.inbound_filtered_scanners)});
  gw.AddRow({"outbound packets", WithCommas(g.outbound_packets)});
  gw.AddRow({"responses allowed out", WithCommas(g.responses_allowed_out)});
  gw.AddRow({"reflections", WithCommas(g.reflections_injected)});
  gw.AddRow({"DNS answered internally", WithCommas(g.dns_responses)});
  gw.AddRow({"ICMP errors allowed out", WithCommas(g.icmp_errors_allowed_out)});
  gw.AddRow({"TTL-expired drops", WithCommas(g.ttl_expired_drops)});
  gw.AddRow({"emergency reclaims", WithCommas(g.emergency_reclaims)});
  gw.AddRow({"egress packets (total)", WithCommas(g.egress_packets)});
  gw.AddRow({"ESCAPES from infected VMs", WithCommas(c.escapes_from_infected)});
  std::printf("%s", gw.ToAscii().c_str());

  std::printf("\n---- farm ----\n");
  const FarmSample final_sample = farm.SampleNow();
  std::printf("peak bindings: %s of %s addresses (%.0fx reduction)\n",
              WithCommas(farm.gateway().bindings().stats().peak_live).c_str(),
              WithCommas(prefix.NumAddresses()).c_str(),
              static_cast<double>(prefix.NumAddresses()) /
                  std::max<uint64_t>(1, farm.gateway().bindings().stats().peak_live));
  std::printf("clones completed: %s | scanners flagged: %s\n",
              WithCommas(farm.total_clones_completed()).c_str(),
              WithCommas(farm.gateway().scan_detector().scanners_flagged()).c_str());
  std::printf("memory in use: %s | per-VM delta mean: %s | cpu: %.1f%%\n",
              HumanBytes(final_sample.used_frames * kPageSize).c_str(),
              final_sample.live_vms
                  ? HumanBytes(final_sample.private_pages * kPageSize /
                               final_sample.live_vms)
                        .c_str()
                  : "-",
              final_sample.mean_cpu_utilization * 100.0);

  if (worm) {
    std::printf("\n---- outbreak ----\n");
    std::printf("infections: %llu | scans captured: %s | handshakes: %s\n",
                static_cast<unsigned long long>(farm.epidemic().total_infections()),
                WithCommas(worm->stats().scans_sent).c_str(),
                WithCommas(worm->stats().handshakes_completed).c_str());
    TimeSeries curve = farm.epidemic().CumulativeSeries();
    std::printf("epidemic     |%s|\n",
                Sparkline(curve, 50, TimePoint() + Duration::Minutes(minutes))
                    .c_str());
    std::printf("containment verdict: %s\n",
                c.escapes_from_infected == 0 ? "CONTAINED (zero escapes)"
                                             : "ESCAPED — check policy!");
  }
  if (!config.server_template.forensics_dir.empty()) {
    uint64_t snaps = 0;
    for (size_t s = 0; s < farm.server_count(); ++s) {
      snaps += farm.server(s).snapshots_written();
    }
    std::printf("forensic snapshots written: %llu -> %s\n",
                static_cast<unsigned long long>(snaps),
                config.server_template.forensics_dir.c_str());
  }
  return 0;
}
