// Address-space tour: demonstrates late binding, reflection and the DNS proxy at
// the packet level, printing every gateway decision as it happens.
//
// Walks through four scenes:
//   1. probes to scattered addresses of a /16 -> VMs appear exactly where traffic
//      lands, nowhere else
//   2. one VM tries to connect OUT to the real Internet -> reflected onto another
//      farm address, which spawns on demand
//   3. the reflected conversation proceeds -- replies are NATed so the initiator
//      still believes it is talking to the external host
//   4. a DNS lookup from inside -> answered by the gateway's proxy with a farm
//      address
#include <cstdio>

#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/core/honeyfarm.h"

using namespace potemkin;

namespace {

void Banner(const char* text) { std::printf("\n== %s ==\n", text); }

void ShowFarm(Honeyfarm& farm) {
  std::printf("   live bindings: %zu | live VMs: %llu | reflections: %llu | "
              "dns answers: %llu\n",
              farm.gateway().bindings().size(),
              static_cast<unsigned long long>(farm.TotalLiveVms()),
              static_cast<unsigned long long>(
                  farm.gateway().stats().reflections_injected),
              static_cast<unsigned long long>(farm.gateway().stats().dns_responses));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  (void)flags;
  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 16);

  HoneyfarmConfig config = MakeDefaultFarmConfig(prefix, /*num_hosts=*/2,
                                                 /*host_memory_mb=*/1024,
                                                 ContentMode::kStoreBytes);
  config.server_template.image.num_pages = 2048;
  config.gateway.containment.mode = OutboundMode::kReflect;
  Honeyfarm farm(config);
  farm.Start();

  Banner("scene 1: late binding — VMs appear only where traffic lands");
  const uint64_t scattered[] = {3, 10007, 41234, 65535};
  for (uint64_t index : scattered) {
    PacketSpec probe;
    probe.src_mac = MacAddress::FromId(0xe0);
    probe.dst_mac = MacAddress::FromId(1);
    probe.src_ip = Ipv4Address(203, 0, 113, 50);
    probe.dst_ip = prefix.AddressAt(index);
    probe.proto = IpProto::kTcp;
    probe.src_port = 55555;
    probe.dst_port = 80;
    probe.tcp_flags = TcpFlags::kSyn;
    farm.InjectInbound(BuildPacket(probe));
    std::printf("   probe -> %s\n", prefix.AddressAt(index).ToString().c_str());
  }
  farm.RunFor(Duration::Seconds(5.0));
  std::printf("   65,536 emulated addresses, 4 probed:\n");
  ShowFarm(farm);

  Banner("scene 2: outbound connection — reflected back into the farm");
  // Grab the VM at scattered[0] and make it "attack" an external address.
  const Ipv4Address attacker_ip = prefix.AddressAt(scattered[0]);
  const Binding* attacker = farm.gateway().bindings().Find(attacker_ip);
  if (attacker == nullptr) {
    std::printf("   (unexpected: no binding)\n");
    return 1;
  }
  GuestOs* guest = farm.server(attacker->host).FindGuest(attacker->vm);
  const Ipv4Address external_target(93, 184, 216, 34);
  PacketSpec attack;
  attack.src_mac = guest->vm()->mac();
  attack.dst_mac = MacAddress::FromId(1);
  attack.src_ip = attacker_ip;
  attack.dst_ip = external_target;
  attack.proto = IpProto::kTcp;
  attack.src_port = 2000;
  attack.dst_port = 445;
  attack.tcp_flags = TcpFlags::kSyn;
  std::printf("   %s initiates SYN to external %s ...\n",
              attacker_ip.ToString().c_str(), external_target.ToString().c_str());
  guest->vm()->Transmit(BuildPacket(attack));
  farm.RunFor(Duration::Seconds(3.0));
  std::printf("   gateway reflected it into the farm; a victim VM spawned:\n");
  ShowFarm(farm);

  Banner("scene 3: the reflected conversation is NATed coherently");
  std::printf("   egress packets so far: %llu (none of the reflected traffic "
              "left the farm)\n",
              static_cast<unsigned long long>(farm.egress_packet_count()));
  std::printf("   %s received a SYN|ACK apparently from %s (really a honeypot)\n",
              attacker_ip.ToString().c_str(), external_target.ToString().c_str());

  Banner("scene 4: DNS lookups answered by the internal proxy");
  DnsQuery query;
  query.id = 321;
  query.name = "update.windows.com";
  PacketSpec dns;
  dns.src_mac = guest->vm()->mac();
  dns.dst_mac = MacAddress::FromId(1);
  dns.src_ip = attacker_ip;
  dns.dst_ip = Ipv4Address(4, 2, 2, 2);
  dns.proto = IpProto::kUdp;
  dns.src_port = 1053;
  dns.dst_port = 53;
  dns.payload = EncodeDnsQuery(query);
  guest->vm()->Transmit(BuildPacket(dns));
  farm.RunFor(Duration::Seconds(1.0));
  std::printf("   query for %s answered internally.\n", query.name.c_str());
  ShowFarm(farm);

  std::printf("\nTour complete. Peak bindings %llu of %s addresses; zero packets "
              "escaped during reflection.\n",
              static_cast<unsigned long long>(
                  farm.gateway().bindings().stats().peak_live),
              WithCommas(prefix.NumAddresses()).c_str());
  return 0;
}
