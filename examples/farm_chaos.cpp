// Containment under failure: a worm outbreak with the control plane flying the
// farm while the chaos harness tears pieces out of it.
//
//   ./farm_chaos [--minutes 2] [--seed 7] [--faults 4] [--hosts 4] [--shards N]
//                [--policy open|drop|reflect] [--out DIR] [--scan-rate PPS]
//                [--prefix-bits N]
//
// A Blaster-like worm propagates through reflection while seeded faults land
// on the live farm: backends crash mid-outbreak, hosts slow down, allocators
// refuse frames, the shard fabric partitions. The controller drains, fails
// over, and revives; the harness asserts the containment invariants at 1 Hz
// the whole time. The run is deterministic — same seed, same fault schedule,
// same ledger — so CI replays it twice and diffs the artifacts.
//
// With --out DIR the full event ledger (ledger.jsonl) and the machine-readable
// chaos verdict (chaos_report.json) land in DIR. Exit status is 0 only for a
// clean run: zero invariant violations and zero containment escapes.
#include <cstdio>
#include <string>

#include "src/base/flags.h"
#include "src/core/honeyfarm.h"
#include "src/ctrl/chaos.h"
#include "src/ctrl/controller.h"
#include "src/malware/worm.h"

using namespace potemkin;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const double minutes = flags.GetDouble("minutes", 2.0);
  const uint64_t seed = flags.GetUint("seed", 7);
  const size_t faults = flags.GetUint("faults", 4);
  const uint32_t hosts = static_cast<uint32_t>(flags.GetUint("hosts", 4));
  const std::string policy = flags.GetString("policy", "reflect");
  const std::string out_dir = flags.GetString("out", "");
  // Telescope size: /22 (1024 addresses) models a real outbreak; CI smoke
  // runs a /24 so the whole run fits the ledger ring for byte-comparison.
  const uint8_t prefix_bits =
      static_cast<uint8_t>(flags.GetUint("prefix-bits", 22));

  OutboundMode mode = OutboundMode::kReflect;
  if (policy == "open") {
    mode = OutboundMode::kOpen;
  } else if (policy == "drop") {
    mode = OutboundMode::kDropAll;
  }

  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), prefix_bits);
  HoneyfarmConfig config = MakeDefaultFarmConfig(prefix, hosts,
                                                 /*host_memory_mb=*/1024,
                                                 ContentMode::kMetadataOnly);
  config.server_template.image.num_pages = 2048;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.gateway.containment.mode = mode;
  config.gateway.placement = PlacementKind::kScored;
  config.gateway.recycle.idle_timeout = Duration::Minutes(10);
  config.gateway.recycle.infected_hold = Duration::Minutes(30);
  config.gateway_shards = static_cast<uint32_t>(flags.GetUint("shards", 2));
  // CI passes --ledger-bits 20 so the whole smoke run survives the ring and
  // the two replays can be byte-compared without eviction artifacts.
  config.ledger_capacity = 1u << flags.GetUint("ledger-bits", 18);

  Honeyfarm farm(config);

  ControllerConfig ctrl_config;
  ctrl_config.tick = Duration::Millis(500);
  ctrl_config.drain.deadline = Duration::Seconds(10);
  ctrl_config.warmup = Duration::Seconds(2);
  ctrl_config.rotation_interval = Duration::Seconds(45);
  Controller controller(&farm, ctrl_config);

  const Ipv4Prefix internet(Ipv4Address(0, 0, 0, 0), 0);
  WormConfig worm_config = BlasterLikeWorm(internet);
  worm_config.scan_rate_pps = flags.GetDouble("scan-rate", 10.0);
  WormRuntime worm(&farm.loop(), worm_config, 4);
  farm.AttachWorm(&worm);
  farm.Start();
  controller.Start();

  ChaosConfig chaos_config;
  chaos_config.seed = seed;
  chaos_config.horizon = Duration::Minutes(minutes * 0.8);  // heals fit the run
  chaos_config.num_faults = faults;
  ChaosHarness harness(&farm, &controller, chaos_config);
  const std::vector<ChaosEvent> plan = harness.GeneratePlan();
  std::printf("Farm: %s across %u hosts, %u gateway shard(s); policy %s\n",
              prefix.ToString().c_str(), hosts, config.gateway_shards,
              OutboundModeName(mode));
  std::printf("Chaos plan (seed %llu):\n",
              static_cast<unsigned long long>(seed));
  for (const ChaosEvent& event : plan) {
    std::printf("  t=%5.1fs %-18s target=%-6u for %.1fs\n", event.at.seconds(),
                ChaosFaultName(event.fault), event.target,
                event.duration.seconds());
  }
  harness.Arm(plan);

  std::printf("\nReleasing %s under chaos...\n\n", worm_config.name.c_str());
  farm.SeedWorm(worm, Ipv4Address(198, 51, 100, 66), prefix.AddressAt(1));

  const Duration tick = Duration::Seconds(15);
  for (TimePoint t = TimePoint() + tick;
       t <= TimePoint() + Duration::Minutes(minutes); t += tick) {
    farm.RunUntil(t);
    const ChaosReport report = harness.report();
    const BackendPool& pool = controller.pool();
    std::printf(
        "[%5.0fs] infected=%-4llu vms=%-5llu active=%zu draining=%zu down=%zu "
        "faults=%llu/%zu violations=%llu\n",
        t.seconds(),
        static_cast<unsigned long long>(farm.epidemic().total_infections()),
        static_cast<unsigned long long>(farm.TotalLiveVms()),
        pool.CountInState(BackendState::kActive),
        pool.CountInState(BackendState::kDraining),
        pool.CountInState(BackendState::kDown),
        static_cast<unsigned long long>(report.faults_injected), plan.size(),
        static_cast<unsigned long long>(report.violations));
  }

  const ChaosReport report = harness.report();
  const Controller::Stats& stats = controller.stats();
  uint64_t escapes = 0;
  for (uint32_t s = 0; s < farm.sharded_gateway().shard_count(); ++s) {
    escapes +=
        farm.sharded_gateway().shard(s).containment().stats().escapes_from_infected;
  }

  std::printf("\n--- chaos post-mortem ---\n");
  std::printf("faults injected:  %llu (healed %llu)\n",
              static_cast<unsigned long long>(report.faults_injected),
              static_cast<unsigned long long>(report.heals));
  std::printf("invariant checks: %llu, violations %llu\n",
              static_cast<unsigned long long>(report.checks),
              static_cast<unsigned long long>(report.violations));
  std::printf("controller:       %llu failovers, %llu drains, %llu migrations, "
              "%llu rotations\n",
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.drains_started),
              static_cast<unsigned long long>(stats.migrations),
              static_cast<unsigned long long>(stats.rotations));
  std::printf("partition drops:  %llu\n",
              static_cast<unsigned long long>(report.partition_drops));

  const bool contained = report.violations == 0 &&
                         (mode == OutboundMode::kOpen || escapes == 0);
  std::printf("\nverdict: %llu escape(s), %llu violation(s) (%s)\n",
              static_cast<unsigned long long>(escapes),
              static_cast<unsigned long long>(report.violations),
              contained ? "CONTAINED" : "ESCAPED");

  if (!out_dir.empty()) {
    farm.ledger().WriteJsonLines(out_dir + "/ledger.jsonl");
    const std::string report_path = out_dir + "/chaos_report.json";
    if (FILE* f = std::fopen(report_path.c_str(), "w")) {
      std::fprintf(
          f,
          "{\"schema_version\":1,\"seed\":%llu,\"faults_injected\":%llu,"
          "\"heals\":%llu,\"checks\":%llu,\"violations\":%llu,"
          "\"containment_escapes\":%llu,\"bindings_on_down_hosts\":%llu,"
          "\"nat_misplaced\":%llu,\"partition_drops\":%llu,"
          "\"failovers\":%llu,\"drains_started\":%llu,"
          "\"drains_completed\":%llu,\"migrations\":%llu,\"rotations\":%llu,"
          "\"contained\":%s}\n",
          static_cast<unsigned long long>(seed),
          static_cast<unsigned long long>(report.faults_injected),
          static_cast<unsigned long long>(report.heals),
          static_cast<unsigned long long>(report.checks),
          static_cast<unsigned long long>(report.violations),
          static_cast<unsigned long long>(escapes),
          static_cast<unsigned long long>(report.bindings_on_down_hosts),
          static_cast<unsigned long long>(report.nat_misplaced),
          static_cast<unsigned long long>(report.partition_drops),
          static_cast<unsigned long long>(stats.failovers),
          static_cast<unsigned long long>(stats.drains_started),
          static_cast<unsigned long long>(stats.drains_completed),
          static_cast<unsigned long long>(stats.migrations),
          static_cast<unsigned long long>(stats.rotations),
          contained ? "true" : "false");
      std::fclose(f);
      std::printf("artifacts: %s/ledger.jsonl, %s\n", out_dir.c_str(),
                  report_path.c_str());
    }
  }
  return contained ? 0 : 1;
}
