#include "src/base/stats.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_NEAR(h.Quantile(0.5), 42.0, 42.0 * 0.03);
}

TEST(HistogramTest, QuantilesOnUniformData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 25.0);
  EXPECT_NEAR(h.Quantile(0.9), 900.0, 45.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 50.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, WideDynamicRange) {
  Histogram h;
  h.Record(1e-6);
  h.Record(1e6);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(1.0);
    b.Record(3.0);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 50; ++i) {
    h.Record(7.0);
  }
  EXPECT_NEAR(h.Stddev(), 0.0, 1e-9);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, RecordNWeightsCount) {
  Histogram h;
  h.RecordN(10.0, 5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 10.0);
}

TEST(TimeSeriesTest, RecordsAndQueries) {
  TimeSeries s;
  EXPECT_TRUE(s.empty());
  s.Record(TimePoint::FromNanos(100), 1.0);
  s.Record(TimePoint::FromNanos(200), 5.0);
  s.Record(TimePoint::FromNanos(300), 2.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.MaxValue(), 5.0);
  EXPECT_DOUBLE_EQ(s.LastValue(), 2.0);
}

TEST(TimeSeriesTest, TimeWeightedMean) {
  TimeSeries s;
  // Value 10 for 1s, then 20 for 3s: mean = (10*1 + 20*3)/4 = 17.5.
  s.Record(TimePoint::FromNanos(0), 10.0);
  s.Record(TimePoint() + Duration::Seconds(1.0), 20.0);
  const double mean = s.TimeWeightedMean(TimePoint() + Duration::Seconds(4.0));
  EXPECT_NEAR(mean, 17.5, 1e-9);
}

TEST(TimeSeriesTest, ResampleMaxPicksBucketMaxima) {
  TimeSeries s;
  for (int i = 0; i < 100; ++i) {
    s.Record(TimePoint::FromNanos(i * 10), static_cast<double>(i % 10));
  }
  const auto resampled = s.ResampleMax(Duration::Nanos(100));
  ASSERT_FALSE(resampled.empty());
  for (const auto& sample : resampled) {
    EXPECT_DOUBLE_EQ(sample.value, 9.0);  // every bucket of 10 has a 9
  }
}

TEST(TimeSeriesTest, ResampleEmptyIsEmpty) {
  TimeSeries s;
  EXPECT_TRUE(s.ResampleMax(Duration::Nanos(10)).empty());
}

}  // namespace
}  // namespace potemkin
