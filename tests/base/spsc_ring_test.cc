#include "src/base/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/net/packet.h"

namespace potemkin {
namespace {

TEST(SpscRingTest, StartsEmpty) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.SizeApprox(), 0u);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(4096).capacity(), 4096u);
}

TEST(SpscRingTest, PushPopIsFifo) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.TryPush(std::move(i)));
  }
  EXPECT_EQ(ring.SizeApprox(), 5u);
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, FullRingRejectsAndLeavesValueIntact) {
  SpscRing<std::unique_ptr<int>> ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(std::make_unique<int>(i)));
  }
  // The rejected element must survive the failed push (the sharded gateway
  // falls back to inline delivery with it).
  auto extra = std::make_unique<int>(99);
  EXPECT_FALSE(ring.TryPush(std::move(extra)));
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 99);

  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, 0);
  // One slot freed: the retry now succeeds.
  EXPECT_TRUE(ring.TryPush(std::move(extra)));
  EXPECT_EQ(ring.SizeApprox(), 4u);
}

TEST(SpscRingTest, WraparoundPreservesFifoOrder) {
  SpscRing<uint64_t> ring(4);
  uint64_t next_push = 0;
  uint64_t next_pop = 0;
  // Many times around the ring with a phase-shifting occupancy so every slot
  // index and every head/tail offset combination is exercised.
  for (int round = 0; round < 1000; ++round) {
    const int burst = 1 + round % 4;
    for (int i = 0; i < burst; ++i) {
      if (!ring.TryPush(uint64_t{next_push})) {
        break;
      }
      ++next_push;
    }
    uint64_t out = 0;
    while (ring.TryPop(&out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
    ASSERT_EQ(next_pop, next_push);
  }
  EXPECT_GT(next_pop, 4u * 100);  // actually wrapped, many times
}

TEST(SpscRingTest, CarriesMoveOnlyPackets) {
  SpscRing<Packet> ring(8);
  PacketSpec spec;
  spec.src_ip = Ipv4Address(192, 0, 2, 1);
  spec.dst_ip = Ipv4Address(10, 1, 0, 7);
  spec.proto = IpProto::kTcp;
  spec.src_port = 1234;
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kSyn;
  Packet original = BuildPacket(spec);
  const size_t frame_bytes = original.size();

  EXPECT_TRUE(ring.TryPush(std::move(original)));
  Packet out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.size(), frame_bytes);
  const auto view = PacketView::Parse(out);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ip().dst, Ipv4Address(10, 1, 0, 7));
}

// Producer and consumer on real threads hammering a small ring: under
// ThreadSanitizer this is the proof that the release/acquire publication and
// the cached-index fast path are race-free; under any build it checks that no
// element is lost, duplicated, or reordered.
TEST(SpscRingTest, ConcurrentProducerConsumerStress) {
  SpscRing<uint64_t> ring(64);
  constexpr uint64_t kCount = 200000;

  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount;) {
      if (ring.TryPush(uint64_t{i})) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });

  uint64_t expected = 0;
  uint64_t spins = 0;
  while (expected < kCount) {
    uint64_t out = 0;
    if (ring.TryPop(&out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else if (++spins % 1024 == 0) {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(expected, kCount);
}

TEST(SpscRingTest, SizeApproxExactWhenQuiescent) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) {
    ring.TryPush(std::move(i));
  }
  EXPECT_EQ(ring.SizeApprox(), 10u);
  int out;
  ring.TryPop(&out);
  ring.TryPop(&out);
  EXPECT_EQ(ring.SizeApprox(), 8u);
}

}  // namespace
}  // namespace potemkin
