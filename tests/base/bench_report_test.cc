// Validates the perf-trajectory report schema (bench/report.h): every bench
// binary ships BENCH_<name>.json with {benchmark, seed, git_sha, metrics:
// [{metric, value, unit}]}. CI and dashboards diff these files across commits,
// so the shape and the write path are contract, not implementation detail.
#include "bench/report.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace potemkin {
namespace {

std::string ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return "";
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return text;
}

TEST(BenchReportTest, JsonCarriesAllRequiredKeys) {
  BenchReport report("schema_check");
  report.set_seed(42);
  report.Add("clone_latency", 0.512, "ms");
  report.Add("peak_vms", 533.0, "vms");

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"benchmark\": \"schema_check\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\": "), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": ["), std::string::npos);
  EXPECT_NE(json.find("{\"metric\": \"clone_latency\", \"value\": 0.512"),
            std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("{\"metric\": \"peak_vms\", \"value\": 533,"),
            std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(BenchReportTest, IdenticalReportsSerializeIdentically) {
  // The whole point of the trajectory: a diff between two BENCH files must
  // reflect metric changes only, never serialization noise.
  BenchReport a("det");
  BenchReport b("det");
  for (BenchReport* r : {&a, &b}) {
    r->set_seed(7);
    r->Add("m", 1234.5678, "ns");
  }
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(BenchReportTest, EscapesQuotesAndBackslashesInStrings) {
  BenchReport report("weird");
  report.Add("path\\with\"quote", 1.0, "u");
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("path\\\\with\\\"quote"), std::string::npos);
}

TEST(BenchReportTest, NonFiniteValuesSerializeAsNull) {
  BenchReport report("nan_check");
  report.Add("bad", 0.0 / 0.0, "x");
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"value\": null"), std::string::npos);
}

TEST(BenchReportTest, WriteJsonHonorsOutputDirOverride) {
  char dir_template[] = "/tmp/bench_report_test_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("POTEMKIN_BENCH_DIR", dir_template, 1);

  BenchReport report("roundtrip");
  report.set_seed(9);
  report.Add("value_under_test", 3.25, "x");
  const std::string path = report.WriteJson();
  unsetenv("POTEMKIN_BENCH_DIR");

  ASSERT_EQ(path, std::string(dir_template) + "/BENCH_roundtrip.json");
  const std::string on_disk = ReadFile(path);
  EXPECT_EQ(on_disk, report.ToJson());
  std::remove(path.c_str());
  rmdir(dir_template);
}

TEST(BenchReportTest, WriteJsonReportsFailureAsEmptyPath) {
  setenv("POTEMKIN_BENCH_DIR", "/nonexistent_dir_for_bench_report_test", 1);
  BenchReport report("unwritable");
  EXPECT_EQ(report.WriteJson(), "");
  unsetenv("POTEMKIN_BENCH_DIR");
}

}  // namespace
}  // namespace potemkin
