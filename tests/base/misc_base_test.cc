// Tests for time types, token bucket, flags and table rendering.
#include <gtest/gtest.h>

#include "src/base/flags.h"
#include "src/base/table.h"
#include "src/base/time_types.h"
#include "src/base/token_bucket.h"

namespace potemkin {
namespace {

TEST(DurationTest, ConversionsRoundTrip) {
  EXPECT_EQ(Duration::Millis(3).nanos(), 3000000);
  EXPECT_EQ(Duration::Micros(5).nanos(), 5000);
  EXPECT_EQ(Duration::Seconds(2.5).millis(), 2500);
  EXPECT_DOUBLE_EQ(Duration::Hours(1).seconds(), 3600.0);
  EXPECT_DOUBLE_EQ(Duration::Minutes(2).seconds(), 120.0);
}

TEST(DurationTest, Arithmetic) {
  const Duration d = Duration::Millis(10) + Duration::Millis(5);
  EXPECT_EQ(d.millis(), 15);
  EXPECT_EQ((d - Duration::Millis(20)).millis(), -5);
  EXPECT_TRUE((d - Duration::Millis(20)).IsNegative());
  EXPECT_EQ((Duration::Millis(10) * 2.5).millis(), 25);
  EXPECT_DOUBLE_EQ(Duration::Millis(10) / Duration::Millis(4), 2.5);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_EQ(Duration::Seconds(1.0), Duration::Millis(1000));
}

TEST(DurationTest, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Nanos(500).ToString(), "500ns");
  EXPECT_EQ(Duration::Micros(2).ToString(), "2us");
  EXPECT_EQ(Duration::Millis(15).ToString(), "15ms");
  EXPECT_EQ(Duration::Seconds(3.0).ToString(), "3s");
}

TEST(TimePointTest, ArithmeticWithDurations) {
  const TimePoint t = TimePoint::FromNanos(1000);
  EXPECT_EQ((t + Duration::Nanos(500)).nanos(), 1500);
  EXPECT_EQ((t - Duration::Nanos(200)).nanos(), 800);
  EXPECT_EQ((t - TimePoint::FromNanos(400)).nanos(), 600);
}

TEST(TokenBucketTest, StartsFull) {
  TokenBucket bucket(10.0, 5.0);
  TimePoint now;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bucket.TryConsume(now));
  }
  EXPECT_FALSE(bucket.TryConsume(now));
}

TEST(TokenBucketTest, RefillsOverTime) {
  TokenBucket bucket(10.0, 5.0);
  TimePoint now;
  for (int i = 0; i < 5; ++i) {
    bucket.TryConsume(now);
  }
  EXPECT_FALSE(bucket.TryConsume(now));
  now += Duration::Millis(100);  // 1 token at 10/s
  EXPECT_TRUE(bucket.TryConsume(now));
  EXPECT_FALSE(bucket.TryConsume(now));
}

TEST(TokenBucketTest, BurstCapsAccumulation) {
  TokenBucket bucket(10.0, 3.0);
  TimePoint now;
  now += Duration::Seconds(100.0);
  EXPECT_NEAR(bucket.available(now), 3.0, 1e-9);
}

TEST(TokenBucketTest, AvailableAtPredictsRefill) {
  TokenBucket bucket(2.0, 1.0);
  TimePoint now;
  EXPECT_TRUE(bucket.TryConsume(now));
  const TimePoint when = bucket.AvailableAt(now, 1.0);
  EXPECT_NEAR((when - now).seconds(), 0.5, 1e-6);
}

TEST(TokenBucketTest, ZeroRateNeverRefills) {
  TokenBucket bucket(0.0, 2.0);
  TimePoint now;
  EXPECT_TRUE(bucket.TryConsume(now));
  EXPECT_TRUE(bucket.TryConsume(now));
  EXPECT_FALSE(bucket.TryConsume(now));
  now += Duration::Hours(1000);
  EXPECT_FALSE(bucket.TryConsume(now));
  EXPECT_EQ(bucket.AvailableAt(now, 1.0), TimePoint::Max());
}

TEST(TokenBucketTest, ZeroBurstNeverAdmits) {
  TokenBucket bucket(100.0, 0.0);
  TimePoint now;
  EXPECT_FALSE(bucket.TryConsume(now));
  now += Duration::Hours(1);
  EXPECT_FALSE(bucket.TryConsume(now));
  EXPECT_NEAR(bucket.available(now), 0.0, 1e-12);
}

TEST(TokenBucketTest, RequestAboveBurstIsNeverSatisfiable) {
  TokenBucket bucket(10.0, 5.0);
  TimePoint now;
  // A finite AvailableAt here would name a time at which refills (capped at
  // the burst) still could not cover the request.
  EXPECT_EQ(bucket.AvailableAt(now, 6.0), TimePoint::Max());
  EXPECT_FALSE(bucket.TryConsume(now, 6.0));
}

TEST(TokenBucketTest, LargeTimeJumpSaturatesAtBurst) {
  TokenBucket bucket(1e9, 4.0);
  TimePoint now;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(bucket.TryConsume(now));
  }
  // Centuries of virtual time at a gigatoken rate: the refill math must not
  // overflow or go non-finite, just clamp to the burst.
  now += Duration::Hours(24.0 * 365 * 200);
  EXPECT_NEAR(bucket.available(now), 4.0, 1e-9);
  EXPECT_TRUE(bucket.TryConsume(now, 4.0));
  EXPECT_FALSE(bucket.TryConsume(now));
}

TEST(TokenBucketTest, TimeGoingBackwardsDoesNotRefill) {
  TokenBucket bucket(10.0, 5.0);
  TimePoint now = TimePoint::FromNanos(1000000000);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bucket.TryConsume(now));
  }
  // An out-of-order (earlier) timestamp must not mint tokens.
  EXPECT_FALSE(bucket.TryConsume(TimePoint::FromNanos(0)));
  EXPECT_FALSE(bucket.TryConsume(now));
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",      "--alpha=1", "--beta",      "2",
                        "--gamma",   "--no-delta", "positional", "--rate=2.5"};
  Flags flags = Flags::Parse(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 1);
  EXPECT_EQ(flags.GetInt("beta", 0), 2);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_FALSE(flags.GetBool("delta", true));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 2.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, DefaultsWhenAbsentOrMalformed) {
  const char* argv[] = {"prog", "--count=notanumber"};
  Flags flags = Flags::Parse(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("count", 7), 7);
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
  EXPECT_FALSE(flags.Has("missing"));
  EXPECT_TRUE(flags.Has("count"));
}

TEST(TableTest, AsciiRendering) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  const std::string out = table.ToAscii();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, CsvEscaping) {
  Table table({"a", "b"});
  table.AddRow({"has,comma", "has\"quote"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, NumericRowHelper) {
  Table table({"label", "x", "y"});
  table.AddRow("point", {1.234, 5.678}, 1);
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("point,1.2,5.7"), std::string::npos);
}

}  // namespace
}  // namespace potemkin
