#include "src/base/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace potemkin {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(7);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  Rng child1_again = parent.Fork(1);
  EXPECT_EQ(child1.NextU64(), child1_again.NextU64());
  EXPECT_NE(child1.NextU64(), child2.NextU64());
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(99);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 65536ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversFullRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.NextBelow(10));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  const double rate = 4.0;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(rate);
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(19);
  for (double mean : {0.5, 5.0, 80.0}) {
    double sum = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.NextPoisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.1);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ParetoMinimumRespected) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.NextPareto(1.5, 2.0), 2.0);
  }
}

TEST(RngTest, WeightedSamplingFollowsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    counts[rng.NextWeighted(weights)]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(37);
  const auto perm = rng.Permutation(100);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, BoolProbabilityRoughlyHonored) {
  Rng rng(41);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    trues += rng.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(trues / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace potemkin
