#include "src/base/strings.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d", 42), "x=42");
  EXPECT_EQ(StrFormat("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrFormatLongOutput) {
  const std::string big(500, 'x');
  EXPECT_EQ(StrFormat("%s!", big.c_str()).size(), 501u);
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, StrTrim) {
  EXPECT_EQ(StrTrim("  hello  "), "hello");
  EXPECT_EQ(StrTrim("\t\nx"), "x");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64(" 13 "), 13);
  EXPECT_FALSE(ParseInt64("4x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("abc").has_value());
}

TEST(StringsTest, ParseUint64RejectsNegative) {
  EXPECT_EQ(ParseUint64("18446744073709551615"), 18446744073709551615ull);
  EXPECT_FALSE(ParseUint64("-1").has_value());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
  EXPECT_FALSE(ParseDouble("nope").has_value());
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(4096), "4.0 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MiB");
  EXPECT_EQ(HumanBytes(5ull << 30), "5.0 GiB");
}

TEST(StringsTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
}

}  // namespace
}  // namespace potemkin
