#include "src/base/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace potemkin {
namespace {

TEST(EventLoopTest, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.Now().nanos(), 0);
  EXPECT_TRUE(loop.Empty());
}

TEST(EventLoopTest, RunsEventsInTimestampOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(TimePoint::FromNanos(300), [&] { order.push_back(3); });
  loop.ScheduleAt(TimePoint::FromNanos(100), [&] { order.push_back(1); });
  loop.ScheduleAt(TimePoint::FromNanos(200), [&] { order.push_back(2); });
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now().nanos(), 300);
}

TEST(EventLoopTest, SameTimestampRunsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(TimePoint::FromNanos(42), [&order, i] { order.push_back(i); });
  }
  loop.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  TimePoint observed;
  loop.ScheduleAt(TimePoint::FromNanos(1000), [&] {
    loop.ScheduleAfter(Duration::Nanos(500), [&] { observed = loop.Now(); });
  });
  loop.RunAll();
  EXPECT_EQ(observed.nanos(), 1500);
}

TEST(EventLoopTest, PastEventsClampToNow) {
  EventLoop loop;
  loop.ScheduleAt(TimePoint::FromNanos(1000), [] {});
  loop.RunAll();
  TimePoint observed;
  loop.ScheduleAt(TimePoint::FromNanos(10), [&] { observed = loop.Now(); });
  loop.RunAll();
  EXPECT_EQ(observed.nanos(), 1000);  // not earlier than current time
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAt(TimePoint::FromNanos(100), [&] { ++fired; });
  loop.ScheduleAt(TimePoint::FromNanos(200), [&] { ++fired; });
  loop.ScheduleAt(TimePoint::FromNanos(300), [&] { ++fired; });
  const uint64_t executed = loop.RunUntil(TimePoint::FromNanos(250));
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.Now().nanos(), 250);  // clock advances to the deadline
  loop.RunAll();
  EXPECT_EQ(fired, 3);
}

TEST(EventLoopTest, RunForAdvancesRelativeSpans) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAfter(Duration::Seconds(1.0), [&] { ++fired; });
  loop.RunFor(Duration::Millis(500));
  EXPECT_EQ(fired, 0);
  loop.RunFor(Duration::Millis(501));
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventHandle handle = loop.ScheduleAfter(Duration::Nanos(5), [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(handle));
  loop.RunAll();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(loop.Cancel(handle));  // double-cancel reports failure
}

TEST(EventLoopTest, CancelAfterExecutionFails) {
  EventLoop loop;
  const EventHandle handle = loop.ScheduleAfter(Duration::Nanos(5), [] {});
  loop.RunAll();
  EXPECT_FALSE(loop.Cancel(handle));
}

TEST(EventLoopTest, EventsScheduledDuringRunExecute) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      loop.ScheduleAfter(Duration::Nanos(1), recurse);
    }
  };
  loop.ScheduleAfter(Duration::Nanos(1), recurse);
  loop.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.Now().nanos(), 5);
}

TEST(EventLoopTest, StepExecutesExactlyOne) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAfter(Duration::Nanos(1), [&] { ++fired; });
  loop.ScheduleAfter(Duration::Nanos(2), [&] { ++fired; });
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(loop.Step());
}

TEST(EventLoopTest, PendingCountTracksLiveEvents) {
  EventLoop loop;
  const EventHandle a = loop.ScheduleAfter(Duration::Nanos(1), [] {});
  loop.ScheduleAfter(Duration::Nanos(2), [] {});
  EXPECT_EQ(loop.pending_events(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.RunAll();
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.executed_events(), 1u);
}

}  // namespace
}  // namespace potemkin
