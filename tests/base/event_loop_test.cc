#include "src/base/event_loop.h"

#include <gtest/gtest.h>

#include <random>
#include <utility>
#include <vector>

namespace potemkin {
namespace {

TEST(EventLoopTest, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.Now().nanos(), 0);
  EXPECT_TRUE(loop.Empty());
}

TEST(EventLoopTest, RunsEventsInTimestampOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(TimePoint::FromNanos(300), [&] { order.push_back(3); });
  loop.ScheduleAt(TimePoint::FromNanos(100), [&] { order.push_back(1); });
  loop.ScheduleAt(TimePoint::FromNanos(200), [&] { order.push_back(2); });
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now().nanos(), 300);
}

TEST(EventLoopTest, SameTimestampRunsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(TimePoint::FromNanos(42), [&order, i] { order.push_back(i); });
  }
  loop.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  TimePoint observed;
  loop.ScheduleAt(TimePoint::FromNanos(1000), [&] {
    loop.ScheduleAfter(Duration::Nanos(500), [&] { observed = loop.Now(); });
  });
  loop.RunAll();
  EXPECT_EQ(observed.nanos(), 1500);
}

TEST(EventLoopTest, PastEventsClampToNow) {
  EventLoop loop;
  loop.ScheduleAt(TimePoint::FromNanos(1000), [] {});
  loop.RunAll();
  TimePoint observed;
  loop.ScheduleAt(TimePoint::FromNanos(10), [&] { observed = loop.Now(); });
  loop.RunAll();
  EXPECT_EQ(observed.nanos(), 1000);  // not earlier than current time
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAt(TimePoint::FromNanos(100), [&] { ++fired; });
  loop.ScheduleAt(TimePoint::FromNanos(200), [&] { ++fired; });
  loop.ScheduleAt(TimePoint::FromNanos(300), [&] { ++fired; });
  const uint64_t executed = loop.RunUntil(TimePoint::FromNanos(250));
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.Now().nanos(), 250);  // clock advances to the deadline
  loop.RunAll();
  EXPECT_EQ(fired, 3);
}

TEST(EventLoopTest, RunForAdvancesRelativeSpans) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAfter(Duration::Seconds(1.0), [&] { ++fired; });
  loop.RunFor(Duration::Millis(500));
  EXPECT_EQ(fired, 0);
  loop.RunFor(Duration::Millis(501));
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventHandle handle = loop.ScheduleAfter(Duration::Nanos(5), [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(handle));
  loop.RunAll();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(loop.Cancel(handle));  // double-cancel reports failure
}

TEST(EventLoopTest, CancelAfterExecutionFails) {
  EventLoop loop;
  const EventHandle handle = loop.ScheduleAfter(Duration::Nanos(5), [] {});
  loop.RunAll();
  EXPECT_FALSE(loop.Cancel(handle));
}

TEST(EventLoopTest, EventsScheduledDuringRunExecute) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      loop.ScheduleAfter(Duration::Nanos(1), recurse);
    }
  };
  loop.ScheduleAfter(Duration::Nanos(1), recurse);
  loop.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.Now().nanos(), 5);
}

TEST(EventLoopTest, StepExecutesExactlyOne) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAfter(Duration::Nanos(1), [&] { ++fired; });
  loop.ScheduleAfter(Duration::Nanos(2), [&] { ++fired; });
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(loop.Step());
}

TEST(EventLoopTest, NextEventTimePeeksEarliestPending) {
  EventLoop loop;
  EXPECT_EQ(loop.NextEventTime(), TimePoint::Max());  // idle loop
  loop.ScheduleAt(TimePoint::FromNanos(300), [] {});
  const EventHandle early = loop.ScheduleAt(TimePoint::FromNanos(100), [] {});
  EXPECT_EQ(loop.NextEventTime().nanos(), 100);
  EXPECT_EQ(loop.Now().nanos(), 0);  // peeking never advances the clock
  // Cancelled tip must be skipped, not reported as the next event.
  loop.Cancel(early);
  EXPECT_EQ(loop.NextEventTime().nanos(), 300);
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(loop.NextEventTime(), TimePoint::Max());
}

TEST(EventLoopTest, PendingCountTracksLiveEvents) {
  EventLoop loop;
  const EventHandle a = loop.ScheduleAfter(Duration::Nanos(1), [] {});
  loop.ScheduleAfter(Duration::Nanos(2), [] {});
  EXPECT_EQ(loop.pending_events(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.RunAll();
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.executed_events(), 1u);
}

TEST(EventLoopTest, SchedulePeriodicFiresAtFixedIntervals) {
  EventLoop loop;
  std::vector<int64_t> fired;
  const EventHandle handle = loop.SchedulePeriodic(
      Duration::Nanos(10), [&] { fired.push_back(loop.Now().nanos()); });
  loop.RunFor(Duration::Nanos(45));
  EXPECT_EQ(fired, (std::vector<int64_t>{10, 20, 30, 40}));
  EXPECT_EQ(loop.pending_events(), 1u);  // the whole series counts as one event
  EXPECT_FALSE(loop.Empty());
  EXPECT_TRUE(loop.Cancel(handle));  // the handle stays valid across re-arms
  loop.RunFor(Duration::Nanos(1000));
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_TRUE(loop.Empty());
}

TEST(EventLoopTest, PeriodicCancelledFromOwnCallbackStops) {
  EventLoop loop;
  int fired = 0;
  EventHandle handle;
  handle = loop.SchedulePeriodic(Duration::Nanos(5), [&] {
    if (++fired == 3) {
      EXPECT_TRUE(loop.Cancel(handle));
    }
  });
  loop.RunFor(Duration::Nanos(1000));
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(loop.Empty());
}

TEST(EventLoopTest, PeriodicSelfCancelFreesSlotWithoutRearming) {
  // The footgun: a periodic callback cancelling its own handle mid-fire. The
  // series must not re-arm, the slot must be reclaimed (not leaked), and a new
  // event scheduled from the same callback may legally reuse that slot without
  // the dead series resurrecting through it.
  EventLoop loop;
  int periodic_fired = 0;
  int replacement_fired = 0;
  EventHandle handle;
  handle = loop.SchedulePeriodic(Duration::Nanos(10), [&] {
    ++periodic_fired;
    EXPECT_TRUE(loop.Cancel(handle));
    EXPECT_FALSE(loop.Cancel(handle));  // second cancel must be a no-op
    // Reuses the just-freed slot; the old series' re-arm check must see the
    // bumped generation and leave this replacement alone.
    loop.SchedulePeriodic(Duration::Nanos(10), [&] {
      if (++replacement_fired == 3) {
        loop.Cancel(handle);  // stale handle: must not kill the replacement
      }
    });
  });
  EXPECT_EQ(loop.slab_slots(), 1u);
  loop.RunFor(Duration::Nanos(100));
  EXPECT_EQ(periodic_fired, 1);       // cancelled mid-fire: never re-armed
  EXPECT_GE(replacement_fired, 5);    // survived the stale-handle cancel
  EXPECT_EQ(loop.slab_slots(), 1u);   // slot recycled, not leaked
  EXPECT_EQ(loop.pending_events(), 1u);
}

TEST(EventLoopTest, StaleHandleCannotCancelRecycledSlot) {
  EventLoop loop;
  bool second_ran = false;
  const EventHandle first = loop.ScheduleAfter(Duration::Nanos(10), [] {});
  EXPECT_TRUE(loop.Cancel(first));
  // Cancel reclaims the slot eagerly, so this schedule reuses it.
  const EventHandle second =
      loop.ScheduleAfter(Duration::Nanos(20), [&] { second_ran = true; });
  EXPECT_EQ(loop.slab_slots(), 1u);
  EXPECT_FALSE(loop.Cancel(first));  // stale generation must not hit `second`
  loop.RunAll();
  EXPECT_TRUE(second_ran);
}

TEST(EventLoopTest, CancelRearmChurnStaysBounded) {
  // A recycler forever re-arming far-future timers: the slab must recycle slots
  // (never exceeding the peak number of simultaneously live events) and
  // compaction must keep cancelled residue in the queue bounded.
  EventLoop loop;
  std::vector<EventHandle> handles(128);
  for (int round = 0; round < 1000; ++round) {
    for (auto& handle : handles) {
      handle = loop.ScheduleAfter(Duration::Hours(1), [] {});
    }
    for (auto& handle : handles) {
      EXPECT_TRUE(loop.Cancel(handle));
    }
  }
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_LE(loop.slab_slots(), 128u);
  EXPECT_LE(loop.heap_items(), 1024u);
  loop.RunAll();
  EXPECT_EQ(loop.executed_events(), 0u);
}

// Two loops fed the same seeded workload — heavy timestamp ties, interleaved
// cancels and partial drains — must execute the exact same (id, time) sequence.
// Heap addresses differ between the two runs, so any ordering that leaked
// pointer values or container iteration order would diverge here.
TEST(EventLoopTest, IdenticalWorkloadsExecuteIdentically) {
  const auto run = [](std::vector<std::pair<int, int64_t>>& trace) {
    EventLoop loop;
    std::mt19937 rng(99);
    std::vector<EventHandle> handles;
    for (int i = 0; i < 2000; ++i) {
      handles.push_back(loop.ScheduleAfter(
          Duration::Nanos(static_cast<int64_t>(rng() % 64)),
          [&trace, &loop, i] { trace.emplace_back(i, loop.Now().nanos()); }));
      if (rng() % 4 == 0) {
        loop.Cancel(handles[rng() % handles.size()]);
      }
      if (rng() % 8 == 0) {
        loop.RunFor(Duration::Nanos(static_cast<int64_t>(rng() % 16)));
      }
    }
    loop.RunAll();
  };
  std::vector<std::pair<int, int64_t>> a;
  std::vector<std::pair<int, int64_t>> b;
  run(a);
  run(b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  for (size_t i = 1; i < a.size(); ++i) {
    ASSERT_LE(a[i - 1].second, a[i].second);  // time never moves backwards
  }
}

}  // namespace
}  // namespace potemkin
