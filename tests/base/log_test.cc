#include "src/base/log.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

TEST(LogTest, LevelGateControlsEnabledMacro) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(PK_LOG_ENABLED(LogLevel::kDebug));
  EXPECT_FALSE(PK_LOG_ENABLED(LogLevel::kInfo));
  EXPECT_TRUE(PK_LOG_ENABLED(LogLevel::kWarning));
  EXPECT_TRUE(PK_LOG_ENABLED(LogLevel::kError));
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(PK_LOG_ENABLED(LogLevel::kDebug));
  SetLogLevel(LogLevel::kNone);
  EXPECT_FALSE(PK_LOG_ENABLED(LogLevel::kError));
  SetLogLevel(original);
}

TEST(LogTest, DisabledLevelsDoNotEvaluateArguments) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "costly";
  };
  PK_DEBUG << expensive();
  PK_INFO << expensive();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(original);
}

TEST(LogDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ PK_CHECK(1 == 2) << "one is not two"; }, "check failed");
}

TEST(LogDeathTest, CheckSuccessContinues) {
  PK_CHECK(2 + 2 == 4) << "arithmetic still works";
  SUCCEED();
}

}  // namespace
}  // namespace potemkin
