// End-to-end scenario tests beyond single features: concurrent worm strains,
// malware that resolves a name before connecting (DNS proxy -> reflection chain),
// GRE-delivered radiation, and TCP conversations across clone latency.
#include <gtest/gtest.h>

#include "src/core/honeyfarm.h"
#include "src/guest/persona/escape.h"
#include "src/malware/dropper.h"
#include "src/malware/radiation.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 22);  // 1024 addresses
const Ipv4Address kExternal(198, 51, 100, 7);

HoneyfarmConfig ScenarioConfig(OutboundMode mode) {
  HoneyfarmConfig config = MakeDefaultFarmConfig(kFarm, /*num_hosts=*/2,
                                                 /*host_memory_mb=*/512,
                                                 ContentMode::kMetadataOnly);
  config.server_template.image.num_pages = 1024;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.server_template.engine.control_plane_workers = 4;
  config.gateway.containment.mode = mode;
  config.gateway.recycle.idle_timeout = Duration::Minutes(5);
  config.gateway.recycle.infected_hold = Duration::Minutes(30);
  config.gateway.recycle.max_lifetime = Duration::Zero();
  return config;
}

TEST(ScenarioTest, TwoWormStrainsSpreadIndependently) {
  HoneyfarmConfig config = ScenarioConfig(OutboundMode::kReflect);
  Honeyfarm farm(config);
  const Ipv4Prefix internet(Ipv4Address(0, 0, 0, 0), 0);
  WormConfig slammer_config = SlammerLikeWorm(internet);  // udp/1434
  slammer_config.scan_rate_pps = 1.0;
  WormConfig blaster_config = BlasterLikeWorm(internet);  // tcp/135
  blaster_config.scan_rate_pps = 1.0;
  WormRuntime slammer(&farm.loop(), slammer_config, 21);
  WormRuntime blaster(&farm.loop(), blaster_config, 22);
  farm.AttachWorm(&slammer);
  farm.AttachWorm(&blaster);
  farm.Start();

  farm.SeedWorm(slammer, kExternal, kFarm.AddressAt(10));
  farm.SeedWorm(blaster, Ipv4Address(198, 51, 100, 8), kFarm.AddressAt(20));
  farm.RunFor(Duration::Seconds(40.0));

  // Both strains are alive and scanning from their own instances.
  EXPECT_GT(slammer.active_instances(), 0u);
  EXPECT_GT(blaster.active_instances(), 0u);
  EXPECT_GT(slammer.stats().scans_sent, 0u);
  EXPECT_GT(blaster.stats().scans_sent, 0u);
  // Epidemic grows beyond both seeds, with zero escapes under reflection.
  EXPECT_GT(farm.epidemic().total_infections(), 2u);
  EXPECT_EQ(farm.gateway().containment().stats().escapes_from_infected, 0u);
}

TEST(ScenarioTest, BlasterSequentialSweepInfectsContiguousFarmRange) {
  // A sequential scanner pointed directly at the farm prefix should infect a
  // contiguous run of addresses — no reflection needed (in-prefix scanning).
  HoneyfarmConfig config = ScenarioConfig(OutboundMode::kDropAll);
  Honeyfarm farm(config);
  WormConfig blaster_config = BlasterLikeWorm(kFarm);  // sweeps the farm itself
  blaster_config.scan_rate_pps = 5.0;
  WormRuntime blaster(&farm.loop(), blaster_config, 7);
  farm.AttachWorm(&blaster);
  farm.Start();
  farm.SeedWorm(blaster, kExternal, kFarm.AddressAt(0));
  farm.RunFor(Duration::Seconds(30.0));

  EXPECT_GT(farm.epidemic().total_infections(), 5u);
  EXPECT_EQ(farm.gateway().containment().stats().escapes_from_infected, 0u);
  // Every victim (beyond the seed) was attacked from inside the farm.
  const auto& events = farm.epidemic().events();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_TRUE(kFarm.Contains(events[i].attacker)) << i;
  }
}

TEST(ScenarioTest, DnsThenConnectMalwareStaysInsideFarm) {
  // Classic malware behaviour: resolve a C&C name, then connect to the answer.
  // The proxy hands out a farm address, so the follow-up connection spawns a
  // honeypot rather than touching the Internet.
  HoneyfarmConfig config = ScenarioConfig(OutboundMode::kDropAll);
  config.server_template.host.content_mode = ContentMode::kStoreBytes;
  Honeyfarm farm(config);
  farm.Start();

  // Bring up one VM.
  PacketSpec probe;
  probe.src_mac = MacAddress::FromId(2);
  probe.dst_mac = MacAddress::FromId(1);
  probe.src_ip = kExternal;
  probe.dst_ip = kFarm.AddressAt(5);
  probe.proto = IpProto::kTcp;
  probe.src_port = 4000;
  probe.dst_port = 445;
  probe.tcp_flags = TcpFlags::kSyn;
  farm.InjectInbound(BuildPacket(probe));
  farm.RunFor(Duration::Seconds(2.0));
  const uint64_t egress_after_setup = farm.egress_packet_count();
  const Binding* binding = farm.gateway().bindings().Find(kFarm.AddressAt(5));
  ASSERT_NE(binding, nullptr);
  GuestOs* guest = farm.server(binding->host).FindGuest(binding->vm);
  ASSERT_NE(guest, nullptr);

  // Step 1: the "malware" resolves cc.evil.example.
  DnsQuery query;
  query.id = 1;
  query.name = "cc.evil.example";
  PacketSpec dns;
  dns.src_mac = guest->vm()->mac();
  dns.dst_mac = MacAddress::FromId(1);
  dns.src_ip = guest->vm()->ip();
  dns.dst_ip = Ipv4Address(8, 8, 8, 8);
  dns.proto = IpProto::kUdp;
  dns.src_port = 1055;
  dns.dst_port = 53;
  dns.payload = EncodeDnsQuery(query);
  guest->vm()->Transmit(BuildPacket(dns));
  farm.RunFor(Duration::Seconds(1.0));
  EXPECT_EQ(farm.gateway().stats().dns_responses, 1u);

  // The proxy's answer is deterministic; compute where the C&C "lives".
  DnsProxy reference(kFarm, config.gateway.seed);
  const Ipv4Address cc_addr = reference.Resolve(query).addresses[0];
  ASSERT_TRUE(kFarm.Contains(cc_addr));

  // Step 2: connect to the resolved address -> a C&C honeypot spawns in-farm.
  PacketSpec connect;
  connect.src_mac = guest->vm()->mac();
  connect.dst_mac = MacAddress::FromId(1);
  connect.src_ip = guest->vm()->ip();
  connect.dst_ip = cc_addr;
  connect.proto = IpProto::kTcp;
  connect.src_port = 1056;
  connect.dst_port = 80;
  connect.tcp_flags = TcpFlags::kSyn;
  guest->vm()->Transmit(BuildPacket(connect));
  farm.RunFor(Duration::Seconds(2.0));

  EXPECT_NE(farm.gateway().bindings().Find(cc_addr), nullptr);
  // Neither the DNS lookup nor the C&C connection left the farm (only the
  // initial SYN|ACK response to the external prober did).
  EXPECT_EQ(farm.egress_packet_count(), egress_after_setup);
}

TEST(ScenarioTest, TwoPhaseWormCannotLaunderExploitsThroughReflectionNat) {
  // Regression: the worm's post-handshake exploit travels to the same external
  // address whose reflected SYN|ACK the worm just received. That packet must be
  // re-reflected, NEVER treated as a "response" to the NAT-rewritten flow (which
  // would leak the exploit to the real Internet).
  HoneyfarmConfig config = ScenarioConfig(OutboundMode::kReflect);
  Honeyfarm farm(config);
  WormConfig worm_config = BlasterLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  worm_config.scan_rate_pps = 2.0;
  worm_config.selection = TargetSelection::kUniformRandom;
  WormRuntime worm(&farm.loop(), worm_config, 77);
  farm.AttachWorm(&worm);
  std::vector<Packet> egress;
  farm.set_egress_monitor([&](const Packet& p) { egress.push_back(p); });
  farm.Start();
  const Ipv4Address attacker(198, 51, 100, 66);
  farm.SeedWorm(worm, attacker, kFarm.AddressAt(1));
  farm.RunFor(Duration::Minutes(2));

  // The epidemic ran (handshakes completed through the reflection NAT)...
  EXPECT_GT(worm.stats().handshakes_completed, 5u);
  EXPECT_GT(farm.epidemic().total_infections(), 2u);
  // ...and the ONLY packets that reached the Internet are replies to the seed
  // attacker; no worm exploit ever escaped.
  EXPECT_EQ(farm.gateway().containment().stats().escapes_from_infected, 0u);
  for (const auto& packet : egress) {
    const auto view = PacketView::Parse(packet);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->ip().dst, attacker) << view->Describe();
    EXPECT_TRUE(view->l4_payload().empty()) << view->Describe();
  }
}

TEST(ScenarioTest, StrictTcpFarmSustainsTwoPhaseEpidemic) {
  // Maximum-fidelity configuration: guests run the real TCP server stack (no
  // payload without an established connection) and the worm opens real
  // connections. The epidemic must still propagate through reflection — SYN,
  // SYN|ACK (NATted), ACK+exploit — end to end.
  HoneyfarmConfig config = ScenarioConfig(OutboundMode::kReflect);
  config.server_template.guest.strict_tcp = true;
  Honeyfarm farm(config);
  WormConfig worm_config = BlasterLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  worm_config.scan_rate_pps = 3.0;
  worm_config.selection = TargetSelection::kUniformRandom;
  WormRuntime worm(&farm.loop(), worm_config, 55);
  farm.AttachWorm(&worm);
  farm.Start();
  farm.SeedWormViaHandshake(worm, kExternal, kFarm.AddressAt(1));
  farm.RunFor(Duration::Minutes(2));

  EXPECT_GT(worm.stats().handshakes_completed, 10u);
  EXPECT_GT(worm.stats().exploits_delivered, 10u);
  EXPECT_GT(farm.epidemic().total_infections(), 3u);
  EXPECT_EQ(farm.gateway().containment().stats().escapes_from_infected, 0u);
}

TEST(ScenarioTest, StrictTcpBlocksNakedExploitPackets) {
  // Under strict TCP, a single-packet exploit (payload on the SYN) cannot infect:
  // the stack accepts the connection but data arrives before establishment.
  HoneyfarmConfig config = ScenarioConfig(OutboundMode::kDropAll);
  config.server_template.guest.strict_tcp = true;
  Honeyfarm farm(config);
  WormConfig worm_config = BlasterLikeWorm(Ipv4Prefix(Ipv4Address(11, 0, 0, 0), 8));
  worm_config.two_phase_tcp = false;  // degrade to single-packet delivery
  WormRuntime worm(&farm.loop(), worm_config, 56);
  farm.AttachWorm(&worm);
  farm.Start();
  farm.SeedWorm(worm, kExternal, kFarm.AddressAt(1));
  farm.RunFor(Duration::Seconds(30.0));
  EXPECT_EQ(farm.epidemic().total_infections(), 0u);
  EXPECT_EQ(farm.TotalLiveVms(), 1u);  // the probed VM exists but is clean
}

TEST(ScenarioTest, GreDeliveredRadiationDrivesTheFarm) {
  HoneyfarmConfig config = ScenarioConfig(OutboundMode::kDropAll);
  config.gateway.recycle.idle_timeout = Duration::Seconds(10);
  Honeyfarm farm(config);
  farm.Start();
  const Ipv4Address gateway_ip(192, 0, 2, 2);
  const Ipv4Address router_ip(192, 0, 2, 1);
  farm.EnableGreTermination(gateway_ip, router_ip, 9);
  GreTunnel router(router_ip, gateway_ip, 9);

  RadiationConfig radiation;
  radiation.telescope = kFarm;
  radiation.duration = Duration::Seconds(20);
  radiation.mean_pps = 20.0;
  radiation.source_pool = 200;
  RadiationGenerator generator(radiation);
  const auto trace = generator.GenerateAll();
  for (const auto& record : trace) {
    farm.loop().ScheduleAt(record.time, [&farm, &router, record]() {
      farm.InjectTunneled(router.Send(PacketFromRecord(
          record, MacAddress::FromId(record.src.value()), MacAddress::FromId(1))));
    });
  }
  farm.RunFor(Duration::Seconds(30.0));
  EXPECT_EQ(farm.gre_tunnel()->packets_decapsulated(), trace.size());
  EXPECT_EQ(farm.gateway().stats().inbound_packets, trace.size());
  EXPECT_GT(farm.total_clones_completed(), 10u);
}

TEST(ScenarioTest, EveryEscapeAttemptDrawsAContainmentVerdict) {
  // Post-compromise escape script (C2 beacon, non-farm scan, DNS exfil) rides
  // a worm infection; containment must catch every attempt, and the ledger
  // must let forensics pair each kEscapeAttempt with the verdict that did.
  HoneyfarmConfig config = ScenarioConfig(OutboundMode::kDropAll);
  Honeyfarm farm(config);
  WormConfig worm_config = SlammerLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  worm_config.scan_rate_pps = 1.0;
  WormRuntime worm(&farm.loop(), worm_config, 31);
  EscapeRuntime escape(&farm.loop(), {}, &farm.obs(), 32);
  farm.AttachWorm(&worm);
  farm.AttachAgent(&escape);
  farm.Start();
  farm.SeedWorm(worm, kExternal, kFarm.AddressAt(10));
  farm.RunFor(Duration::Seconds(10.0));

  // The script ran on the seed infection: escalation + beacon + 4 scan probes
  // + exfil (reinfected VMs don't restart it, but more infections may add more).
  ASSERT_GT(escape.stats().escalations, 0u);
  ASSERT_GE(escape.stats().attempts, 6u);

  const auto events = farm.obs().ledger.Events();
  size_t attempts_seen = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != LedgerEvent::kEscapeAttempt) {
      continue;
    }
    ++attempts_seen;
    bool caught = false;
    for (size_t j = i + 1; j < events.size() && !caught; ++j) {
      const auto& verdict = events[j];
      if (verdict.session != events[i].session || verdict.a != events[i].a) {
        continue;
      }
      caught = verdict.type == LedgerEvent::kContainmentDrop ||
               verdict.type == LedgerEvent::kContainmentReflect ||
               verdict.type == LedgerEvent::kContainmentRateLimit ||
               verdict.type == LedgerEvent::kContainmentDnsProxy;
    }
    EXPECT_TRUE(caught) << "escape attempt " << attempts_seen
                        << " has no containment verdict";
  }
  EXPECT_EQ(attempts_seen, escape.stats().attempts);
  EXPECT_EQ(farm.gateway().containment().stats().escapes_from_infected, 0u);
}

TEST(ScenarioTest, DropperStallsAtStageOneUnderFullContainment) {
  // The multi-stage dropper lands stage 1 but its stage-2 fetch must die at
  // the gateway under drop-all; the infection visibly stalls (kStalled in the
  // forensic record) instead of activating a scanner.
  HoneyfarmConfig config = ScenarioConfig(OutboundMode::kDropAll);
  config.server_template.guest.services = DefaultLinuxServices();
  Honeyfarm farm(config);
  DropperRuntime dropper(&farm.loop(),
                         CgiDropper(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0)),
                         &farm.obs(), 41);
  farm.AttachAgent(&dropper);
  farm.Start();
  farm.InjectInbound(dropper.MakeExploitPacket(kExternal, MacAddress::FromId(2),
                                               kFarm.AddressAt(5)));
  farm.RunFor(Duration::Seconds(15.0));

  EXPECT_EQ(dropper.stats().infections, 1u);
  EXPECT_EQ(dropper.stats().fetches_sent, dropper.config().fetch_attempts);
  EXPECT_EQ(dropper.stats().stalled, 1u);
  EXPECT_EQ(dropper.stats().activations, 0u);
  EXPECT_EQ(dropper.scanning_instances(), 0u);
  EXPECT_EQ(farm.gateway().containment().stats().escapes_from_infected, 0u);
  bool stalled_on_record = false;
  for (const auto& event : farm.obs().ledger.Events()) {
    if (event.type == LedgerEvent::kMalwareStage &&
        event.a == static_cast<uint64_t>(DropperStage::kStalled)) {
      stalled_on_record = true;
    }
  }
  EXPECT_TRUE(stalled_on_record);
}

TEST(ScenarioTest, TcpHandshakeSurvivesCloneLatency) {
  // SYN arrives -> queued during the ~40ms (optimized) clone -> SYN|ACK comes
  // back out; the handshake then completes against the live VM and the flow
  // reaches ESTABLISHED in the gateway's flow table.
  HoneyfarmConfig config = ScenarioConfig(OutboundMode::kDropAll);
  Honeyfarm farm(config);
  std::vector<Packet> egress;
  farm.set_egress_monitor([&](const Packet& p) { egress.push_back(p); });
  farm.Start();

  PacketSpec syn;
  syn.src_mac = MacAddress::FromId(3);
  syn.dst_mac = MacAddress::FromId(1);
  syn.src_ip = kExternal;
  syn.dst_ip = kFarm.AddressAt(9);
  syn.proto = IpProto::kTcp;
  syn.src_port = 41000;
  syn.dst_port = 80;
  syn.tcp_flags = TcpFlags::kSyn;
  syn.seq = 7000;
  farm.InjectInbound(BuildPacket(syn));
  farm.RunFor(Duration::Seconds(1.0));
  ASSERT_EQ(egress.size(), 1u);
  const auto synack = PacketView::Parse(egress[0]);
  ASSERT_TRUE(synack.has_value());
  EXPECT_EQ(synack->tcp().flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_EQ(synack->tcp().ack, 7001u);  // acks our ISN+1

  // Complete the handshake.
  PacketSpec ack = syn;
  ack.tcp_flags = TcpFlags::kAck;
  ack.seq = 7001;
  ack.ack = synack->tcp().seq + 1;
  farm.InjectInbound(BuildPacket(ack));
  farm.RunFor(Duration::Seconds(1.0));
  const FlowRecord* flow = farm.gateway().flows().Find(
      FlowKey{kExternal, kFarm.AddressAt(9), IpProto::kTcp, 41000, 80});
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->tcp_state, TcpState::kEstablished);
}

}  // namespace
}  // namespace potemkin
