// Property-based integration tests: farm-wide invariants that must hold under
// arbitrary randomized workloads, swept over seeds and policies with TEST_P.
//
//   P1 memory conservation — a host's used frames always decompose exactly into
//      image frames + per-VM domain overhead + per-VM private deltas
//   P2 share accounting    — an image frame's refcount is 1 (image) + number of
//      VMs still sharing it
//   P3 containment         — under drop/reflect, the only packets on the real
//      Internet are responses to externally initiated flows
//   P4 determinism         — identical seeds give bit-identical farm statistics
//   P5 recycling totality  — after traffic stops and timeouts elapse, every VM
//      and every frame beyond the images is reclaimed
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/honeyfarm.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 20);

HoneyfarmConfig PropertyFarmConfig(OutboundMode mode, bool strict_tcp = false) {
  HoneyfarmConfig config = MakeDefaultFarmConfig(kFarm, /*num_hosts=*/2,
                                                 /*host_memory_mb=*/256,
                                                 ContentMode::kStoreBytes);
  config.server_template.image.num_pages = 512;
  config.server_template.host.domain_overhead_frames = 16;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.server_template.engine.control_plane_workers = 4;
  config.gateway.containment.mode = mode;
  config.server_template.guest.strict_tcp = strict_tcp;
  config.gateway.recycle.idle_timeout = Duration::Seconds(20);
  config.gateway.recycle.infected_hold = Duration::Seconds(20);
  config.gateway.recycle.max_lifetime = Duration::Zero();
  return config;
}

// Random mixed workload: scans, service requests, exploits, icmp, from a mix of
// sources — some focused, some sweeping.
void DriveRandomTraffic(Honeyfarm& farm, Rng& rng, int packets,
                        Duration between_packets) {
  for (int i = 0; i < packets; ++i) {
    PacketSpec spec;
    spec.src_mac = MacAddress::FromId(rng.NextU64() & 0xffff);
    spec.dst_mac = MacAddress::FromId(1);
    spec.src_ip = Ipv4Address(static_cast<uint32_t>(0xc6000000u + rng.NextBelow(4096)));
    spec.dst_ip = kFarm.AddressAt(rng.NextBelow(64));  // focused on 64 addresses
    const double kind = rng.NextDouble();
    if (kind < 0.5) {
      spec.proto = IpProto::kTcp;
      spec.dst_port = rng.NextBool(0.5) ? 445 : 80;
      spec.tcp_flags = TcpFlags::kSyn;
    } else if (kind < 0.8) {
      spec.proto = IpProto::kTcp;
      spec.dst_port = 445;
      spec.tcp_flags = TcpFlags::kPsh | TcpFlags::kAck;
      spec.payload = {'S', 'M', 'B', 'r', 'e', 'q'};
      if (rng.NextBool(0.1)) {
        const char* sig = "EXPLOIT-LSASS";
        spec.payload.assign(sig, sig + 13);
      }
    } else if (kind < 0.9) {
      spec.proto = IpProto::kUdp;
      spec.dst_port = 1434;
      spec.payload = {0x04};
    } else {
      spec.proto = IpProto::kIcmp;
    }
    spec.src_port = static_cast<uint16_t>(1024 + rng.NextBelow(60000));
    farm.InjectInbound(BuildPacket(spec));
    farm.RunFor(between_packets);
  }
}

struct MemoryAccounting {
  uint64_t used_frames = 0;
  uint64_t expected = 0;
};

MemoryAccounting AccountHost(CloneServer& server, uint32_t image_pages,
                             uint64_t overhead_frames, size_t num_images) {
  MemoryAccounting acc;
  acc.used_frames = server.host().allocator().used_frames();
  uint64_t private_pages = 0;
  uint64_t vms = 0;
  server.host().ForEachVm([&](VirtualMachine& vm) {
    private_pages += vm.memory().private_pages();
    ++vms;
  });
  acc.expected = static_cast<uint64_t>(image_pages) * num_images +
                 vms * overhead_frames + private_pages;
  return acc;
}

class FarmPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, OutboundMode, bool>> {};

TEST_P(FarmPropertyTest, MemoryConservationAndShareAccounting) {
  const auto [seed, mode, strict] = GetParam();
  HoneyfarmConfig config = PropertyFarmConfig(mode, strict);
  Honeyfarm farm(config);
  farm.Start();
  Rng rng(seed);
  DriveRandomTraffic(farm, rng, 300, Duration::Millis(50));

  // P1: frame conservation on every host, mid-flight.
  for (size_t s = 0; s < farm.server_count(); ++s) {
    const auto acc = AccountHost(farm.server(s), 512,
                                 config.server_template.host.domain_overhead_frames, 1);
    EXPECT_EQ(acc.used_frames, acc.expected) << "host " << s << " seed " << seed;
  }

  // P2: spot-check image frame refcounts on host 0.
  const ReferenceImage* image = farm.server(0).host().image(0);
  ASSERT_NE(image, nullptr);
  for (Gpfn gpfn = 0; gpfn < 512; gpfn += 97) {
    const FrameId frame = image->FrameForPage(gpfn);
    uint32_t sharers = 0;
    farm.server(0).host().ForEachVm([&](VirtualMachine& vm) {
      if (vm.memory().IsCowShared(gpfn) && vm.memory().FrameAt(gpfn) == frame) {
        ++sharers;
      }
    });
    EXPECT_EQ(farm.server(0).host().allocator().RefCount(frame), 1 + sharers)
        << "gpfn " << gpfn;
  }
}

TEST_P(FarmPropertyTest, ContainmentOnlyLetsResponsesOut) {
  const auto [seed, mode, strict] = GetParam();
  if (mode == OutboundMode::kOpen) {
    GTEST_SKIP() << "open mode intentionally leaks";
  }
  HoneyfarmConfig config = PropertyFarmConfig(mode, strict);
  Honeyfarm farm(config);
  // Every egress packet must be the reverse of an externally-initiated flow.
  std::vector<Packet> egress;
  farm.set_egress_monitor([&](const Packet& p) { egress.push_back(p); });
  farm.Start();
  Rng rng(seed);
  DriveRandomTraffic(farm, rng, 300, Duration::Millis(50));
  farm.RunFor(Duration::Seconds(5.0));

  EXPECT_EQ(farm.gateway().containment().stats().escapes_from_infected, 0u);
  for (const auto& packet : egress) {
    const auto view = PacketView::Parse(packet);
    ASSERT_TRUE(view.has_value());
    // Response invariant: source is a farm address, destination is external.
    EXPECT_TRUE(kFarm.Contains(view->ip().src)) << view->Describe();
    EXPECT_FALSE(kFarm.Contains(view->ip().dst)) << view->Describe();
  }
}

TEST_P(FarmPropertyTest, DeterministicAcrossRuns) {
  const auto [seed, mode, strict] = GetParam();
  auto run = [&](uint64_t s) {
    HoneyfarmConfig config = PropertyFarmConfig(mode, strict);
    config.seed = s;
    Honeyfarm farm(config);
    farm.Start();
    Rng rng(s);
    DriveRandomTraffic(farm, rng, 200, Duration::Millis(40));
    farm.RunFor(Duration::Seconds(3.0));
    const GatewayStats& g = farm.gateway().stats();
    return std::make_tuple(g.inbound_packets, g.inbound_delivered, g.clones_triggered,
                           g.outbound_packets, g.reflections_injected,
                           farm.TotalLiveVms(), farm.TotalUsedFrames(),
                           farm.epidemic().total_infections());
  };
  EXPECT_EQ(run(seed), run(seed));
}

TEST_P(FarmPropertyTest, RecyclingReclaimsEverything) {
  const auto [seed, mode, strict] = GetParam();
  HoneyfarmConfig config = PropertyFarmConfig(mode, strict);
  Honeyfarm farm(config);
  farm.Start();
  const uint64_t baseline = farm.TotalUsedFrames();
  Rng rng(seed);
  DriveRandomTraffic(farm, rng, 200, Duration::Millis(20));
  EXPECT_GT(farm.TotalUsedFrames(), baseline);
  // No more traffic: idle + infected-hold timeouts all elapse.
  farm.RunFor(Duration::Minutes(2));
  EXPECT_EQ(farm.TotalLiveVms(), 0u);
  EXPECT_EQ(farm.TotalUsedFrames(), baseline);
  EXPECT_EQ(farm.gateway().bindings().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, FarmPropertyTest,
    ::testing::Combine(::testing::Values(1ull, 42ull, 12345ull),
                       ::testing::Values(OutboundMode::kOpen, OutboundMode::kDropAll,
                                         OutboundMode::kReflect),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, OutboundMode, bool>>&
           info) {
      std::string mode = OutboundModeName(std::get<1>(info.param));
      for (char& c : mode) {
        if (c == '-') {
          c = '_';
        }
      }
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" + mode +
             (std::get<2>(info.param) ? "_strict" : "_permissive");
    });

}  // namespace
}  // namespace potemkin
