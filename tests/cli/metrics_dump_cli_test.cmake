# CLI contract test for tools/metrics_dump, driven by ctest via `cmake -P`.
#
# Checks the exit-code contract end to end, as a shell user would hit it:
#   - unknown flags are usage errors (exit 2), not silently ignored
#   - an unwritable --out path fails up front (exit 2), before the demo farm
#   - a clean run exits 0 and writes a versioned snapshot
#
# Expects: -DMETRICS_DUMP=<path to binary> -DWORK_DIR=<scratch dir>

file(MAKE_DIRECTORY "${WORK_DIR}")

function(expect_status label expected actual)
  if(NOT actual EQUAL expected)
    message(FATAL_ERROR "${label}: expected exit ${expected}, got ${actual}")
  endif()
endfunction()

function(expect_contains label haystack needle)
  string(FIND "${haystack}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${label}: output missing \"${needle}\":\n${haystack}")
  endif()
endfunction()

# A typoed flag must not run the demo farm: exit 2 plus the usage text.
execute_process(COMMAND "${METRICS_DUMP}" --definitely-a-typo
                RESULT_VARIABLE status OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_status("unknown flag" 2 "${status}")
expect_contains("unknown flag" "${err}" "unknown flag --definitely-a-typo")
expect_contains("unknown flag" "${err}" "usage: metrics_dump")

# An --out path in a directory that does not exist fails up front.
execute_process(
    COMMAND "${METRICS_DUMP}" --out=${WORK_DIR}/no-such-dir/snapshot.json
    RESULT_VARIABLE status OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_status("unwritable --out" 2 "${status}")
expect_contains("unwritable --out" "${err}" "cannot write")

# Clean demo-farm run: exit 0, snapshot written, versioned, alerts section
# ahead of the metric rows (the string-scan consumers depend on the order).
execute_process(COMMAND "${METRICS_DUMP}" --out=${WORK_DIR}/snapshot.json
                RESULT_VARIABLE status OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_status("demo farm" 0 "${status}")
file(READ "${WORK_DIR}/snapshot.json" snapshot)
expect_contains("snapshot" "${snapshot}" "\"snapshot\": \"honeyfarm\"")
expect_contains("snapshot" "${snapshot}" "\"schema_version\": 1")
expect_contains("snapshot" "${snapshot}" "\"alerts_schema_version\": 1")
expect_contains("snapshot" "${snapshot}" "\"metrics\": [")
string(FIND "${snapshot}" "\"alerts\"" alerts_at)
string(FIND "${snapshot}" "\"metrics\"" metrics_at)
if(alerts_at GREATER metrics_at)
  message(FATAL_ERROR "alerts section must precede metrics in snapshot JSON")
endif()

# The tool re-reads its own artifact (exit 0): parse and emit stay compatible.
execute_process(COMMAND "${METRICS_DUMP}" ${WORK_DIR}/snapshot.json
                RESULT_VARIABLE status OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_status("round trip" 0 "${status}")
expect_contains("round trip" "${out}" "snapshot: honeyfarm")

message(STATUS "metrics_dump CLI contract OK")
