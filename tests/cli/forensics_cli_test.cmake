# CLI contract test for tools/forensics, driven by ctest via `cmake -P`.
#
# The acceptance check for the forensics tool: replay the canned outbreak and
# require that --session reconstructs the COMPLETE causal chain for a farm
# address — first contact through clone, guest interaction, exploit,
# infection, and the containment verdict — from ledger records alone. Also
# pins the exit-code contract (unknown flag -> 2, untouched address -> 1) and
# the JSONL/Chrome export schemas.
#
# Expects: -DFORENSICS=<path to binary> -DWORK_DIR=<scratch dir>

file(MAKE_DIRECTORY "${WORK_DIR}")

function(expect_status label expected actual)
  if(NOT actual EQUAL expected)
    message(FATAL_ERROR "${label}: expected exit ${expected}, got ${actual}")
  endif()
endfunction()

function(expect_contains label haystack needle)
  string(FIND "${haystack}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${label}: output missing \"${needle}\":\n${haystack}")
  endif()
endfunction()

# Unknown flags are usage errors.
execute_process(COMMAND "${FORENSICS}" --sessoin=10.1.0.1
                RESULT_VARIABLE status OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_status("unknown flag" 2 "${status}")
expect_contains("unknown flag" "${err}" "unknown flag --sessoin")
expect_contains("unknown flag" "${err}" "usage: forensics")

# An address nothing touched has no session to stitch: exit 1, not a crash
# and not an empty success. (The outbreak saturates the whole farm /24, so an
# off-farm address is the only one guaranteed untouched.)
execute_process(COMMAND "${FORENSICS}" --seconds=2 --session=192.0.2.9
                RESULT_VARIABLE status OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_status("untouched address" 1 "${status}")
expect_contains("untouched address" "${err}" "no session touched 192.0.2.9")

# The headline reconstruction: 10.1.0.1 is the worm's first victim, so its
# timeline must walk the full attack arc in causal order.
execute_process(
    COMMAND "${FORENSICS}" --seconds=10 --session=10.1.0.1
        --jsonl=${WORK_DIR}/ledger.jsonl --chrome=${WORK_DIR}/trace.json
    RESULT_VARIABLE status OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_status("session timeline" 0 "${status}")
set(previous_at -1)
foreach(stage
    first_contact packet_queued clone_requested clone_started clone_done
    packet_delivered guest_request exploit infection containment_reflect)
  string(FIND "${out}" "${stage}" stage_at)
  if(stage_at EQUAL -1)
    message(FATAL_ERROR "timeline missing stage \"${stage}\":\n${out}")
  endif()
  if(stage_at LESS previous_at)
    message(FATAL_ERROR "timeline stage \"${stage}\" out of causal order")
  endif()
  set(previous_at ${stage_at})
endforeach()
expect_contains("session timeline" "${out}" "198.51.100.66 -> 10.1.0.1")
expect_contains("session timeline" "${out}" "10.1.0.1 infected by 198.51.100.66")

# JSONL export: meta line first, versioned, then one object per record.
file(READ "${WORK_DIR}/ledger.jsonl" jsonl)
string(FIND "${jsonl}" "{\"ledger\":\"potemkin\",\"schema_version\":1" meta_at)
if(NOT meta_at EQUAL 0)
  message(FATAL_ERROR "ledger.jsonl must start with the versioned meta line")
endif()
foreach(key seq time_ns session type a b)
  expect_contains("ledger.jsonl" "${jsonl}" "\"${key}\":")
endforeach()
expect_contains("ledger.jsonl" "${jsonl}" "\"type\":\"infection\"")

# Chrome export: trace_event envelope with per-session tracks.
file(READ "${WORK_DIR}/trace.json" trace)
expect_contains("trace.json" "${trace}" "\"traceEvents\"")
expect_contains("trace.json" "${trace}" "\"ph\":\"i\"")
expect_contains("trace.json" "${trace}" "session 1")

message(STATUS "forensics CLI contract OK")
