// Tests for the farm-level extension features: OS/image diversity, forensic
// archiving of infected VMs at recycle time, and gateway scanner filtering.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/base/strings.h"
#include "src/core/honeyfarm.h"
#include "src/hv/snapshot.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 20);
const Ipv4Address kExternal(198, 51, 100, 7);

Packet ProbeSyn(Ipv4Address dst, uint16_t port = 445, Ipv4Address src = kExternal) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(src.value());
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = 52000;
  spec.dst_port = port;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

HoneyfarmConfig BaseConfig() {
  HoneyfarmConfig config = MakeDefaultFarmConfig(kFarm, /*num_hosts=*/1,
                                                 /*host_memory_mb=*/256,
                                                 ContentMode::kStoreBytes);
  config.server_template.image.num_pages = 512;
  config.gateway.recycle.idle_timeout = Duration::Minutes(10);
  config.gateway.recycle.max_lifetime = Duration::Zero();
  return config;
}

TEST(ImageDiversityTest, AddressesSpreadAcrossProfiles) {
  HoneyfarmConfig config = BaseConfig();
  ImageProfile linux_profile;
  linux_profile.image.name = "linux";
  linux_profile.image.num_pages = 512;
  linux_profile.image.content_seed = 99;
  linux_profile.guest.services = DefaultLinuxServices();
  config.server_template.extra_profiles.push_back(linux_profile);
  config.server_template.image_selection = ImageSelection::kByAddressHash;

  Honeyfarm farm(config);
  farm.Start();
  EXPECT_EQ(farm.server(0).profile_count(), 2u);

  // The hash split should land both profiles across a set of addresses.
  int profile0 = 0;
  int profile1 = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    const size_t p = farm.server(0).SelectProfile(kFarm.AddressAt(i));
    (p == 0 ? profile0 : profile1)++;
  }
  EXPECT_GT(profile0, 8);
  EXPECT_GT(profile1, 8);

  // Deterministic: the same address always selects the same profile.
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(farm.server(0).SelectProfile(kFarm.AddressAt(i)),
              farm.server(0).SelectProfile(kFarm.AddressAt(i)));
  }
}

TEST(ImageDiversityTest, DifferentProfilesServeDifferentPorts) {
  HoneyfarmConfig config = BaseConfig();
  ImageProfile linux_profile;
  linux_profile.image.name = "linux";
  linux_profile.image.num_pages = 512;
  linux_profile.image.content_seed = 99;
  linux_profile.guest.services = DefaultLinuxServices();  // has SSH, no SMB
  config.server_template.extra_profiles.push_back(linux_profile);
  config.server_template.image_selection = ImageSelection::kByAddressHash;

  Honeyfarm farm(config);
  std::vector<Packet> egress;
  farm.set_egress_monitor([&](const Packet& p) { egress.push_back(p); });
  farm.Start();

  // Find one address of each profile.
  Ipv4Address windows_addr;
  Ipv4Address linux_addr;
  bool have_windows = false;
  bool have_linux = false;
  for (uint64_t i = 0; i < 256 && (!have_windows || !have_linux); ++i) {
    const Ipv4Address addr = kFarm.AddressAt(i);
    if (farm.server(0).SelectProfile(addr) == 0 && !have_windows) {
      windows_addr = addr;
      have_windows = true;
    } else if (farm.server(0).SelectProfile(addr) == 1 && !have_linux) {
      linux_addr = addr;
      have_linux = true;
    }
  }
  ASSERT_TRUE(have_windows && have_linux);

  // SSH SYN: Linux boxes accept (SYN|ACK), Windows boxes refuse (RST).
  farm.InjectInbound(ProbeSyn(windows_addr, 22));
  farm.InjectInbound(ProbeSyn(linux_addr, 22));
  farm.RunFor(Duration::Seconds(3.0));
  ASSERT_EQ(egress.size(), 2u);
  int synacks = 0;
  int rsts = 0;
  for (const auto& p : egress) {
    const auto view = PacketView::Parse(p);
    ASSERT_TRUE(view.has_value());
    if (view->tcp().flags & TcpFlags::kRst) {
      ++rsts;
      EXPECT_EQ(view->ip().src, windows_addr);
    } else {
      ++synacks;
      EXPECT_EQ(view->ip().src, linux_addr);
    }
  }
  EXPECT_EQ(synacks, 1);
  EXPECT_EQ(rsts, 1);
}

TEST(ForensicsTest, InfectedVmsArchivedAtRecycle) {
  HoneyfarmConfig config = BaseConfig();
  config.server_template.forensics_dir = ::testing::TempDir();
  config.gateway.recycle.idle_timeout = Duration::Seconds(3);
  config.gateway.recycle.infected_hold = Duration::Seconds(3);
  config.gateway.containment.mode = OutboundMode::kDropAll;
  Honeyfarm farm(config);
  WormRuntime worm(&farm.loop(),
                   SlammerLikeWorm(Ipv4Prefix(Ipv4Address(11, 0, 0, 0), 8)), 5);
  farm.AttachWorm(&worm);
  farm.Start();
  farm.SeedWorm(worm, kExternal, kFarm.AddressAt(4));
  farm.RunFor(Duration::Seconds(1.0));
  ASSERT_EQ(farm.epidemic().total_infections(), 1u);
  const VmId infected_vm = farm.epidemic().events()[0].vm;

  farm.RunFor(Duration::Seconds(30.0));  // idle out -> recycle -> snapshot
  EXPECT_EQ(farm.TotalLiveVms(), 0u);
  EXPECT_EQ(farm.server(0).snapshots_written(), 1u);

  const std::string path =
      StrFormat("%s/vm-%llu-%s.snap", ::testing::TempDir().c_str(),
                static_cast<unsigned long long>(infected_vm),
                kFarm.AddressAt(4).ToString().c_str());
  const auto snapshot = VmSnapshot::ReadFromFile(path);
  ASSERT_TRUE(snapshot.has_value()) << path;
  EXPECT_TRUE(snapshot->meta().infected);
  EXPECT_GT(snapshot->delta_pages(), 0u);
  std::remove(path.c_str());
}

TEST(ForensicsTest, CleanVmsNotArchived) {
  HoneyfarmConfig config = BaseConfig();
  config.server_template.forensics_dir = ::testing::TempDir();
  config.gateway.recycle.idle_timeout = Duration::Seconds(3);
  Honeyfarm farm(config);
  farm.Start();
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(2)));
  farm.RunFor(Duration::Seconds(30.0));
  EXPECT_EQ(farm.TotalLiveVms(), 0u);
  EXPECT_EQ(farm.server(0).snapshots_written(), 0u);
}

TEST(ScannerFilterTest, KnownScannersStopSpawningVms) {
  HoneyfarmConfig config = BaseConfig();
  config.gateway.filter_known_scanners = true;
  config.gateway.scan_detector.distinct_threshold = 4;
  Honeyfarm farm(config);
  farm.Start();
  // One source sweeps 20 addresses; after the 4th distinct address it is flagged
  // and stops creating bindings.
  for (uint64_t i = 0; i < 20; ++i) {
    farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i)));
  }
  farm.RunFor(Duration::Seconds(5.0));
  EXPECT_LE(farm.gateway().bindings().size(), 4u);
  EXPECT_GE(farm.gateway().stats().inbound_filtered_scanners, 16u);

  // Packets to an ALREADY-live VM still flow even from the flagged scanner.
  const uint64_t delivered_before = farm.gateway().stats().inbound_delivered;
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(0)));
  farm.RunFor(Duration::Seconds(1.0));
  EXPECT_GT(farm.gateway().stats().inbound_delivered, delivered_before);
}

TEST(GreTerminationTest, TunneledTrafficReachesTheFarm) {
  HoneyfarmConfig config = BaseConfig();
  Honeyfarm farm(config);
  farm.Start();
  const Ipv4Address gateway_ip(192, 0, 2, 2);
  const Ipv4Address router_ip(192, 0, 2, 1);
  farm.EnableGreTermination(gateway_ip, router_ip, 42);

  // The border router wraps a telescope packet and ships it over the tunnel.
  GreTunnel router(router_ip, gateway_ip, 42);
  farm.InjectTunneled(router.Send(ProbeSyn(kFarm.AddressAt(8))));
  farm.RunFor(Duration::Seconds(2.0));
  EXPECT_EQ(farm.TotalLiveVms(), 1u);
  EXPECT_EQ(farm.gateway().stats().inbound_packets, 1u);
  ASSERT_NE(farm.gre_tunnel(), nullptr);
  EXPECT_EQ(farm.gre_tunnel()->packets_decapsulated(), 1u);
}

TEST(GreTerminationTest, ForeignTunnelsRejected) {
  HoneyfarmConfig config = BaseConfig();
  Honeyfarm farm(config);
  farm.Start();
  farm.EnableGreTermination(Ipv4Address(192, 0, 2, 2), Ipv4Address(192, 0, 2, 1), 42);
  GreTunnel wrong_key(Ipv4Address(192, 0, 2, 1), Ipv4Address(192, 0, 2, 2), 43);
  farm.InjectTunneled(wrong_key.Send(ProbeSyn(kFarm.AddressAt(8))));
  farm.RunFor(Duration::Seconds(2.0));
  EXPECT_EQ(farm.TotalLiveVms(), 0u);
  EXPECT_EQ(farm.gre_tunnel()->packets_rejected(), 1u);
}

TEST(ScannerFilterTest, DisabledByDefault) {
  HoneyfarmConfig config = BaseConfig();
  Honeyfarm farm(config);
  farm.Start();
  for (uint64_t i = 0; i < 20; ++i) {
    farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i)));
  }
  farm.RunFor(Duration::Seconds(5.0));
  EXPECT_EQ(farm.gateway().bindings().size(), 20u);
  EXPECT_EQ(farm.gateway().stats().inbound_filtered_scanners, 0u);
}

}  // namespace
}  // namespace potemkin
