// End-to-end honeyfarm tests: late binding, flash cloning, guest conversation,
// recycling, worm containment and telemetry — the whole stack on one event loop.
#include "src/core/honeyfarm.h"

#include <gtest/gtest.h>

#include <utility>

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 20);  // 4096 addresses
const Ipv4Address kExternal(198, 51, 100, 7);

HoneyfarmConfig SmallFarm(OutboundMode mode = OutboundMode::kReflect) {
  HoneyfarmConfig config = MakeDefaultFarmConfig(kFarm, /*num_hosts=*/2,
                                                 /*host_memory_mb=*/128,
                                                 ContentMode::kStoreBytes);
  config.server_template.image.num_pages = 1024;  // 4 MiB image: fast tests
  config.gateway.containment.mode = mode;
  config.gateway.recycle.idle_timeout = Duration::Seconds(30);
  config.gateway.recycle.scan_interval = Duration::Seconds(1);
  return config;
}

Packet ProbeSyn(Ipv4Address dst, uint16_t port = 445) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(1234);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = kExternal;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = 52000;
  spec.dst_port = port;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

TEST(HoneyfarmTest, ProbeCreatesVmAndGetsSynAck) {
  Honeyfarm farm(SmallFarm());
  std::vector<Packet> egress;
  farm.set_egress_monitor([&](const Packet& p) { egress.push_back(p); });
  farm.Start();

  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(7)));
  farm.RunFor(Duration::Seconds(2.0));

  EXPECT_EQ(farm.TotalLiveVms(), 1u);
  EXPECT_EQ(farm.total_clones_completed(), 1u);
  // The honeypot's SYN|ACK went back out to the prober.
  ASSERT_EQ(egress.size(), 1u);
  const auto view = PacketView::Parse(egress[0]);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ip().src, kFarm.AddressAt(7));
  EXPECT_EQ(view->ip().dst, kExternal);
  EXPECT_EQ(view->tcp().flags, TcpFlags::kSyn | TcpFlags::kAck);
}

TEST(HoneyfarmTest, DistinctAddressesDistinctVms) {
  Honeyfarm farm(SmallFarm());
  farm.Start();
  for (uint64_t i = 0; i < 10; ++i) {
    farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i)));
  }
  farm.RunFor(Duration::Seconds(8.0));
  EXPECT_EQ(farm.TotalLiveVms(), 10u);
  EXPECT_EQ(farm.gateway().bindings().size(), 10u);
  // Spread across both hosts by round robin.
  EXPECT_GT(farm.server(0).LiveVms(), 0u);
  EXPECT_GT(farm.server(1).LiveVms(), 0u);
}

TEST(HoneyfarmTest, IdleVmsRecycledAndMemoryReclaimed) {
  HoneyfarmConfig config = SmallFarm();
  config.gateway.recycle.idle_timeout = Duration::Seconds(5);
  Honeyfarm farm(config);
  farm.Start();
  const uint64_t baseline = farm.TotalUsedFrames();
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(3)));
  farm.RunFor(Duration::Seconds(2.0));
  EXPECT_EQ(farm.TotalLiveVms(), 1u);
  EXPECT_GT(farm.TotalUsedFrames(), baseline);
  farm.RunFor(Duration::Seconds(10.0));
  EXPECT_EQ(farm.TotalLiveVms(), 0u);
  EXPECT_EQ(farm.TotalUsedFrames(), baseline);
  EXPECT_EQ(farm.gateway().bindings().size(), 0u);
}

TEST(HoneyfarmTest, RecycledAddressRespawnsOnNewTraffic) {
  HoneyfarmConfig config = SmallFarm();
  config.gateway.recycle.idle_timeout = Duration::Seconds(3);
  Honeyfarm farm(config);
  farm.Start();
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(3)));
  farm.RunFor(Duration::Seconds(10.0));
  EXPECT_EQ(farm.TotalLiveVms(), 0u);
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(3)));
  farm.RunFor(Duration::Seconds(2.0));
  EXPECT_EQ(farm.TotalLiveVms(), 1u);
  EXPECT_EQ(farm.total_clones_completed(), 2u);
}

TEST(HoneyfarmTest, WormSeedInfectsVictim) {
  // Worm scans an external /8 and containment drops everything, so exactly the
  // seeded victim becomes infected.
  Honeyfarm farm(SmallFarm(OutboundMode::kDropAll));
  WormRuntime worm(&farm.loop(),
                   SlammerLikeWorm(Ipv4Prefix(Ipv4Address(11, 0, 0, 0), 8)), 11);
  farm.AttachWorm(&worm);
  farm.Start();
  farm.SeedWorm(worm, kExternal, kFarm.AddressAt(1));
  farm.RunFor(Duration::Seconds(3.0));
  EXPECT_EQ(farm.epidemic().total_infections(), 1u);
  EXPECT_EQ(worm.active_instances(), 1u);
  const Binding* binding = farm.gateway().bindings().Find(kFarm.AddressAt(1));
  ASSERT_NE(binding, nullptr);
  EXPECT_TRUE(binding->infected);
}

TEST(HoneyfarmTest, ReflectedWormSpreadsInsideFarmWithZeroEscapes) {
  HoneyfarmConfig config = SmallFarm(OutboundMode::kReflect);
  config.gateway.recycle.infected_hold = Duration::Minutes(10);
  Honeyfarm farm(config);
  // Worm scans the whole Internet; reflection folds it back into the farm.
  WormConfig worm_config = SlammerLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  worm_config.scan_rate_pps = 20.0;
  WormRuntime worm(&farm.loop(), worm_config, 11);
  farm.AttachWorm(&worm);
  farm.Start();
  farm.SeedWorm(worm, kExternal, kFarm.AddressAt(1));
  farm.RunFor(Duration::Minutes(3));

  EXPECT_GT(farm.epidemic().total_infections(), 3u)
      << "reflection must sustain an in-farm epidemic";
  EXPECT_EQ(farm.gateway().containment().stats().escapes_from_infected, 0u);
  EXPECT_GT(farm.gateway().stats().reflections_injected, 0u);
}

TEST(HoneyfarmTest, DropAllPolicyStopsSpreadCold) {
  Honeyfarm farm(SmallFarm(OutboundMode::kDropAll));
  WormConfig worm_config = SlammerLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  worm_config.scan_rate_pps = 20.0;
  WormRuntime worm(&farm.loop(), worm_config, 11);
  farm.AttachWorm(&worm);
  farm.Start();
  farm.SeedWorm(worm, kExternal, kFarm.AddressAt(1));
  farm.RunFor(Duration::Minutes(2));

  EXPECT_EQ(farm.epidemic().total_infections(), 1u);  // only the seed
  EXPECT_EQ(farm.gateway().containment().stats().escapes_from_infected, 0u);
  EXPECT_EQ(farm.egress_packet_count(), 0u);
  EXPECT_GT(farm.gateway().containment().stats().dropped, 0u);
}

TEST(HoneyfarmTest, OpenPolicyLeaksWormScans) {
  Honeyfarm farm(SmallFarm(OutboundMode::kOpen));
  WormConfig worm_config = SlammerLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  worm_config.scan_rate_pps = 20.0;
  WormRuntime worm(&farm.loop(), worm_config, 11);
  farm.AttachWorm(&worm);
  farm.Start();
  farm.SeedWorm(worm, kExternal, kFarm.AddressAt(1));
  farm.RunFor(Duration::Minutes(1));
  EXPECT_GT(farm.gateway().containment().stats().escapes_from_infected, 100u);
}

TEST(HoneyfarmTest, ReflectedEpidemicUsesCowSharing) {
  HoneyfarmConfig config = SmallFarm(OutboundMode::kReflect);
  config.gateway.recycle.infected_hold = Duration::Minutes(10);
  Honeyfarm farm(config);
  WormConfig worm_config = SlammerLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  worm_config.scan_rate_pps = 20.0;
  WormRuntime worm(&farm.loop(), worm_config, 11);
  farm.AttachWorm(&worm);
  farm.Start();
  farm.SeedWorm(worm, kExternal, kFarm.AddressAt(1));
  farm.RunFor(Duration::Minutes(2));

  const uint64_t vms = farm.TotalLiveVms();
  ASSERT_GT(vms, 2u);
  // Each VM's delta must be far below the full image size.
  const uint64_t image_pages = config.server_template.image.num_pages;
  EXPECT_LT(farm.TotalPrivatePages(), vms * image_pages / 4);
}

TEST(HoneyfarmTest, TelemetrySamplingRecordsPopulation) {
  HoneyfarmConfig config = SmallFarm();
  Honeyfarm farm(config);
  farm.Start(/*sample_interval=*/Duration::Seconds(1));
  for (uint64_t i = 0; i < 5; ++i) {
    farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i)));
  }
  farm.RunFor(Duration::Seconds(10.0));
  ASSERT_GE(farm.samples().size(), 9u);
  double max_vms = 0;
  for (const auto& sample : farm.samples()) {
    max_vms = std::max(max_vms, static_cast<double>(sample.live_vms));
  }
  EXPECT_EQ(max_vms, 5.0);
}

TEST(HoneyfarmTest, DnsLookupFromGuestAnsweredInternally) {
  // Craft a VM, then have it send a DNS query out; the proxy must answer with a
  // farm address and no packet may escape.
  Honeyfarm farm(SmallFarm(OutboundMode::kDropAll));
  farm.Start();
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(2)));
  farm.RunFor(Duration::Seconds(2.0));
  ASSERT_EQ(farm.TotalLiveVms(), 1u);

  // Find the live VM and transmit a DNS query from it.
  GuestOs* guest = nullptr;
  for (size_t s = 0; s < farm.server_count() && guest == nullptr; ++s) {
    farm.server(s).host().ForEachVm([&](VirtualMachine& vm) {
      if (guest == nullptr) {
        guest = farm.server(s).FindGuest(vm.id());
      }
    });
  }
  ASSERT_NE(guest, nullptr);
  DnsQuery query;
  query.id = 99;
  query.name = "update.malware.example";
  PacketSpec spec;
  spec.src_mac = guest->vm()->mac();
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = guest->vm()->ip();
  spec.dst_ip = Ipv4Address(4, 4, 4, 4);
  spec.proto = IpProto::kUdp;
  spec.src_port = 5555;
  spec.dst_port = 53;
  spec.payload = EncodeDnsQuery(query);
  const uint64_t egress_before = farm.egress_packet_count();
  guest->vm()->Transmit(BuildPacket(spec));
  farm.RunFor(Duration::Seconds(1.0));

  EXPECT_EQ(farm.gateway().stats().dns_responses, 1u);
  EXPECT_EQ(farm.gateway().dns_proxy().queries_answered(), 1u);
  // The DNS query itself must not leave the farm (only the earlier SYN|ACK
  // response to the prober was allowed out).
  EXPECT_EQ(farm.egress_packet_count(), egress_before);
}

TEST(HoneyfarmTest, CapacityExhaustionDropsNewAddresses) {
  HoneyfarmConfig config = SmallFarm();
  config.num_hosts = 1;
  config.server_template.host.memory_mb = 8;  // tiny host: image 4 MiB + little room
  config.server_template.host.admission_reserve_frames = 64;
  config.server_template.host.domain_overhead_frames = 128;
  // Keep VMs pinned so capacity stays exhausted for the whole test.
  config.gateway.recycle.idle_timeout = Duration::Minutes(30);
  config.gateway.recycle.max_lifetime = Duration::Zero();
  Honeyfarm farm(config);
  farm.Start();
  for (uint64_t i = 0; i < 50; ++i) {
    farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i)));
  }
  farm.RunFor(Duration::Seconds(60.0));
  // Admission passed at request time for many, but the clone engine hit the
  // memory wall while executing them.
  EXPECT_GT(farm.server(0).engine().clones_failed(), 0u);
  EXPECT_LT(farm.TotalLiveVms(), 50u);
  // A fresh address now fails admission up front.
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(100)));
  EXPECT_GT(farm.gateway().stats().no_capacity_drops, 0u);
}

TEST(HoneyfarmTest, ShardedFarmMatchesUnshardedTotals) {
  // Same scenario at 1 and 4 gateway shards: the shared-loop sharded gateway
  // is still single-threaded and deterministic, so farm-level outcomes must be
  // identical — only the internal partitioning differs.
  const auto run = [](uint32_t shards) {
    HoneyfarmConfig config = SmallFarm();
    config.gateway_shards = shards;
    Honeyfarm farm(config);
    farm.Start();
    for (uint64_t i = 0; i < 10; ++i) {
      farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i)));
    }
    farm.RunFor(Duration::Seconds(8.0));
    return std::pair<uint64_t, GatewayStats>(
        farm.TotalLiveVms(), farm.sharded_gateway().AggregateStats());
  };
  const auto [vms1, stats1] = run(1);
  const auto [vms4, stats4] = run(4);
  EXPECT_EQ(vms4, 10u);
  EXPECT_EQ(vms4, vms1);
  EXPECT_EQ(stats4.inbound_packets, stats1.inbound_packets);
  EXPECT_EQ(stats4.inbound_delivered, stats1.inbound_delivered);
  EXPECT_EQ(stats4.clones_triggered, stats1.clones_triggered);
  // Inbound probes go straight to their owning shard: no handoffs.
  EXPECT_EQ(stats4.handoffs_out, 0u);
}

}  // namespace
}  // namespace potemkin
