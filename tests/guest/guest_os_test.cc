#include "src/guest/guest_os.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/guest/service.h"
#include "src/hv/physical_host.h"

namespace potemkin {
namespace {

struct GuestFixture {
  PhysicalHost host;
  VirtualMachine* vm = nullptr;
  std::vector<Packet> transmitted;
  std::unique_ptr<GuestOs> guest;

  GuestFixture() : host(MakeHostConfig()) {
    ReferenceImageConfig image_config;
    image_config.num_pages = 4096;
    const ImageId image = host.RegisterImage(image_config);
    vm = host.CreateClone(image, CloneKind::kFlash, "guest-vm");
    vm->BindAddress(Ipv4Address(10, 1, 0, 5), MacAddress::FromId(5));
    vm->set_state(VmState::kRunning);
    vm->set_tx_handler(
        [this](VirtualMachine&, Packet p) { transmitted.push_back(std::move(p)); });
    GuestOsConfig config;
    config.services = DefaultWindowsServices();
    guest = std::make_unique<GuestOs>(vm, config, Rng(1));
  }

  static PhysicalHostConfig MakeHostConfig() {
    PhysicalHostConfig config;
    config.memory_mb = 64;
    config.content_mode = ContentMode::kStoreBytes;
    config.domain_overhead_frames = 8;
    return config;
  }

  Packet MakeInbound(IpProto proto, uint16_t dst_port, std::vector<uint8_t> payload,
                     uint8_t tcp_flags = TcpFlags::kPsh | TcpFlags::kAck) {
    PacketSpec spec;
    spec.src_mac = MacAddress::FromId(99);
    spec.dst_mac = vm->mac();
    spec.src_ip = Ipv4Address(1, 2, 3, 4);
    spec.dst_ip = vm->ip();
    spec.proto = proto;
    spec.src_port = 40000;
    spec.dst_port = dst_port;
    spec.tcp_flags = tcp_flags;
    spec.payload = std::move(payload);
    return BuildPacket(spec);
  }
};

TEST(GuestOsTest, SynToOpenPortGetsSynAck) {
  GuestFixture fx;
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 445, {}, TcpFlags::kSyn),
                        TimePoint());
  ASSERT_EQ(fx.transmitted.size(), 1u);
  const auto view = PacketView::Parse(fx.transmitted[0]);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->tcp().flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_EQ(view->ip().src, fx.vm->ip());
  EXPECT_EQ(view->ip().dst, Ipv4Address(1, 2, 3, 4));
  EXPECT_EQ(view->tcp().src_port, 445);
  EXPECT_TRUE(ValidateChecksums(fx.transmitted[0]));
}

TEST(GuestOsTest, SynToClosedPortGetsRst) {
  GuestFixture fx;
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 9999, {}, TcpFlags::kSyn),
                        TimePoint());
  ASSERT_EQ(fx.transmitted.size(), 1u);
  const auto view = PacketView::Parse(fx.transmitted[0]);
  EXPECT_TRUE(view->tcp().flags & TcpFlags::kRst);
  EXPECT_EQ(fx.guest->stats().rst_sent, 1u);
}

TEST(GuestOsTest, RequestGetsBannerResponse) {
  GuestFixture fx;
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 80, {'G', 'E', 'T'}),
                        TimePoint());
  ASSERT_EQ(fx.transmitted.size(), 1u);
  const auto view = PacketView::Parse(fx.transmitted[0]);
  const auto payload = view->l4_payload();
  const std::string text(payload.begin(), payload.end());
  EXPECT_NE(text.find("IIS"), std::string::npos);
  EXPECT_EQ(fx.guest->stats().requests_served, 1u);
}

TEST(GuestOsTest, RequestsDirtyPages) {
  GuestFixture fx;
  const uint32_t before = fx.vm->memory().private_pages();
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 445, {'S', 'M', 'B'}),
                        TimePoint());
  const uint32_t after = fx.vm->memory().private_pages();
  // SMB touches 6 heap pages + 1 kernel page.
  EXPECT_GE(after - before, 7u);
}

TEST(GuestOsTest, IcmpEchoAnswered) {
  GuestFixture fx;
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(99);
  spec.dst_mac = fx.vm->mac();
  spec.src_ip = Ipv4Address(1, 2, 3, 4);
  spec.dst_ip = fx.vm->ip();
  spec.proto = IpProto::kIcmp;
  spec.icmp_type = 8;
  spec.icmp_id = 11;
  spec.icmp_seq = 22;
  spec.payload = {1, 2, 3};
  fx.guest->HandleFrame(BuildPacket(spec), TimePoint());
  ASSERT_EQ(fx.transmitted.size(), 1u);
  const auto view = PacketView::Parse(fx.transmitted[0]);
  ASSERT_TRUE(view->is_icmp());
  EXPECT_EQ(view->icmp().type, 0);
  EXPECT_EQ(view->icmp().id, 11);
  EXPECT_EQ(view->icmp().seq, 22);
  EXPECT_EQ(view->l4_payload().size(), 3u);
}

TEST(GuestOsTest, ExploitInfectsAndNotifies) {
  GuestFixture fx;
  bool notified = false;
  fx.guest->set_infection_observer(
      [&](GuestOs& g, const PacketView& exploit) {
        notified = true;
        EXPECT_EQ(&g, fx.guest.get());
        EXPECT_EQ(exploit.ip().src, Ipv4Address(1, 2, 3, 4));
      });
  std::vector<uint8_t> payload = {'x'};
  const char* sig = "EXPLOIT-LSASS";
  payload.insert(payload.end(), sig, sig + 13);
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 445, payload), TimePoint());
  EXPECT_TRUE(notified);
  EXPECT_TRUE(fx.vm->infected());
  EXPECT_EQ(fx.guest->stats().exploits_received, 1u);
  // Compromised service does not answer normally.
  EXPECT_TRUE(fx.transmitted.empty());
}

TEST(GuestOsTest, SecondExploitDoesNotRenotify) {
  GuestFixture fx;
  int notifications = 0;
  fx.guest->set_infection_observer(
      [&](GuestOs&, const PacketView&) { ++notifications; });
  std::vector<uint8_t> payload(
      {'E', 'X', 'P', 'L', 'O', 'I', 'T', '-', 'L', 'S', 'A', 'S', 'S'});
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 445, payload), TimePoint());
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 445, payload), TimePoint());
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(fx.guest->stats().exploits_received, 2u);
}

TEST(GuestOsTest, WrongPortExploitHarmless) {
  GuestFixture fx;
  std::vector<uint8_t> payload(
      {'E', 'X', 'P', 'L', 'O', 'I', 'T', '-', 'L', 'S', 'A', 'S', 'S'});
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 80, payload), TimePoint());
  EXPECT_FALSE(fx.vm->infected());
}

TEST(GuestOsTest, UdpServiceResponds) {
  GuestFixture fx;
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kUdp, 1434, {0x02}), TimePoint());
  ASSERT_EQ(fx.transmitted.size(), 1u);
  const auto view = PacketView::Parse(fx.transmitted[0]);
  ASSERT_TRUE(view->is_udp());
  EXPECT_EQ(view->udp().src_port, 1434);
}

TEST(GuestOsTest, NonRunningVmIgnoresTraffic) {
  GuestFixture fx;
  fx.vm->set_state(VmState::kPaused);
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 445, {}, TcpFlags::kSyn),
                        TimePoint());
  EXPECT_TRUE(fx.transmitted.empty());
  EXPECT_EQ(fx.guest->stats().packets_handled, 0u);
}

TEST(GuestOsTest, ActivityTimestampUpdated) {
  GuestFixture fx;
  const TimePoint when = TimePoint() + Duration::Seconds(12.0);
  fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 445, {}, TcpFlags::kSyn), when);
  EXPECT_EQ(fx.vm->last_activity(), when);
}

TEST(GuestOsTest, HeapCursorWrapsBoundingDelta) {
  GuestFixture fx;
  // Many requests; the delta must plateau at heap_pages + kernel_pages + epsilon.
  for (int i = 0; i < 3000; ++i) {
    fx.guest->HandleFrame(fx.MakeInbound(IpProto::kTcp, 445, {'S'}), TimePoint());
  }
  GuestOsConfig defaults;
  EXPECT_LE(fx.vm->memory().private_pages(),
            defaults.heap_pages + defaults.kernel_pages + 4);
}

TEST(ServiceTest, ExploitSignatureMatching) {
  ExploitSignature sig{IpProto::kTcp, 445, {'A', 'B', 'C'}};
  const std::vector<uint8_t> hit = {'x', 'A', 'B', 'C', 'y'};
  const std::vector<uint8_t> miss = {'A', 'B', 'x', 'C'};
  EXPECT_TRUE(sig.Matches(IpProto::kTcp, 445, std::span(hit.data(), hit.size())));
  EXPECT_FALSE(sig.Matches(IpProto::kTcp, 445, std::span(miss.data(), miss.size())));
  EXPECT_FALSE(sig.Matches(IpProto::kUdp, 445, std::span(hit.data(), hit.size())));
  EXPECT_FALSE(sig.Matches(IpProto::kTcp, 446, std::span(hit.data(), hit.size())));
  const std::vector<uint8_t> tiny = {'A'};
  EXPECT_FALSE(sig.Matches(IpProto::kTcp, 445, std::span(tiny.data(), tiny.size())));
}

TEST(ServiceTest, DefaultServiceSetsHaveVulnerabilities) {
  const auto windows = DefaultWindowsServices();
  const auto linux = DefaultLinuxServices();
  int windows_vulns = 0;
  for (const auto& s : windows) {
    windows_vulns += s.vulnerability.has_value() ? 1 : 0;
  }
  EXPECT_GE(windows_vulns, 3);
  EXPECT_FALSE(linux.empty());
}

}  // namespace
}  // namespace potemkin
