#include "src/guest/tcp_stack.h"

#include <gtest/gtest.h>

#include "src/guest/guest_os.h"
#include "src/guest/service.h"
#include "src/hv/physical_host.h"

namespace potemkin {
namespace {

const Ipv4Address kPeer(198, 51, 100, 2);
const Ipv4Address kLocal(10, 1, 0, 4);

PacketView Seg(Packet& storage, uint8_t flags, uint16_t sport = 40000,
               uint16_t dport = 445, uint32_t seq = 1000, uint32_t ack = 0,
               std::vector<uint8_t> payload = {}) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(2);
  spec.dst_mac = MacAddress::FromId(4);
  spec.src_ip = kPeer;
  spec.dst_ip = kLocal;
  spec.proto = IpProto::kTcp;
  spec.src_port = sport;
  spec.dst_port = dport;
  spec.tcp_flags = flags;
  spec.seq = seq;
  spec.ack = ack;
  spec.payload = std::move(payload);
  storage = BuildPacket(spec);
  return *PacketView::Parse(storage);
}

TEST(GuestTcpStackTest, AcceptsSynWithCorrectNumbers) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  const auto decision = stack.OnSegment(Seg(p, TcpFlags::kSyn), true, TimePoint());
  EXPECT_EQ(decision.action, SegmentAction::kReplySynAck);
  EXPECT_EQ(decision.reply_ack, 1001u);  // ISN + 1
  EXPECT_EQ(stack.connection_count(), 1u);
  EXPECT_EQ(stack.stats().connections_accepted, 1u);
}

TEST(GuestTcpStackTest, SynToClosedPortRst) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  const auto decision = stack.OnSegment(Seg(p, TcpFlags::kSyn), false, TimePoint());
  EXPECT_EQ(decision.action, SegmentAction::kReplyRst);
  EXPECT_EQ(stack.connection_count(), 0u);
}

TEST(GuestTcpStackTest, FullHandshakeThenPayloadDelivered) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  const auto synack = stack.OnSegment(Seg(p, TcpFlags::kSyn), true, TimePoint());
  // Final ACK of the handshake.
  auto ack = stack.OnSegment(
      Seg(p, TcpFlags::kAck, 40000, 445, 1001, synack.reply_seq + 1), true,
      TimePoint());
  // accept() fires on the bare handshake ACK (persona greeting hook).
  EXPECT_EQ(ack.action, SegmentAction::kEstablished);
  EXPECT_EQ(stack.stats().connections_established, 1u);
  // Data on the established connection.
  const auto data = stack.OnSegment(
      Seg(p, TcpFlags::kPsh | TcpFlags::kAck, 40000, 445, 1001,
          synack.reply_seq + 1, {'r', 'e', 'q'}),
      true, TimePoint());
  EXPECT_EQ(data.action, SegmentAction::kDeliverPayload);
  EXPECT_EQ(data.reply_ack, 1004u);  // 1001 + 3 payload bytes
  EXPECT_EQ(stack.stats().payload_segments_delivered, 1u);
}

TEST(GuestTcpStackTest, PayloadWithoutHandshakeDrawsRst) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  const auto decision = stack.OnSegment(
      Seg(p, TcpFlags::kPsh | TcpFlags::kAck, 40000, 445, 1000, 0, {'x'}), true,
      TimePoint());
  EXPECT_EQ(decision.action, SegmentAction::kReplyRst);
  EXPECT_EQ(stack.stats().out_of_state_segments, 1u);
}

TEST(GuestTcpStackTest, DataOnHandshakeAckDeliversImmediately) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  const auto synack = stack.OnSegment(Seg(p, TcpFlags::kSyn), true, TimePoint());
  const auto data = stack.OnSegment(
      Seg(p, TcpFlags::kAck | TcpFlags::kPsh, 40000, 445, 1001,
          synack.reply_seq + 1, {'a', 'b'}),
      true, TimePoint());
  EXPECT_EQ(data.action, SegmentAction::kDeliverPayload);
  EXPECT_EQ(stack.stats().connections_established, 1u);
}

TEST(GuestTcpStackTest, FinClosesAndIsAcked) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  const auto synack = stack.OnSegment(Seg(p, TcpFlags::kSyn), true, TimePoint());
  stack.OnSegment(Seg(p, TcpFlags::kAck, 40000, 445, 1001, synack.reply_seq + 1),
                  true, TimePoint());
  const auto fin = stack.OnSegment(
      Seg(p, TcpFlags::kFin | TcpFlags::kAck, 40000, 445, 1001,
          synack.reply_seq + 1),
      true, TimePoint());
  EXPECT_EQ(fin.action, SegmentAction::kReplyFinAck);
  EXPECT_EQ(fin.reply_ack, 1002u);
  EXPECT_EQ(stack.connection_count(), 0u);
  EXPECT_EQ(stack.stats().connections_closed, 1u);
}

TEST(GuestTcpStackTest, PayloadRidingFinIsDeliveredAndFullyAcked) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  const auto synack = stack.OnSegment(Seg(p, TcpFlags::kSyn), true, TimePoint());
  stack.OnSegment(Seg(p, TcpFlags::kAck, 40000, 445, 1001, synack.reply_seq + 1),
                  true, TimePoint());
  // Final request and FIN in one segment: the payload must reach the service
  // and the ack must cover payload bytes AND the FIN octet.
  const auto fin = stack.OnSegment(
      Seg(p, TcpFlags::kFin | TcpFlags::kPsh | TcpFlags::kAck, 40000, 445, 1001,
          synack.reply_seq + 1, {'l', 'a', 's', 't'}),
      true, TimePoint());
  EXPECT_EQ(fin.action, SegmentAction::kDeliverPayloadAndClose);
  EXPECT_EQ(fin.reply_ack, 1001u + 4u + 1u);  // seq + payload + FIN octet
  EXPECT_EQ(stack.stats().payload_segments_delivered, 1u);
  EXPECT_EQ(stack.stats().connections_closed, 1u);
  EXPECT_EQ(stack.connection_count(), 0u);
}

// RFC 793: a reset answering a no-ACK segment uses seq=0, ACK set, and an ack
// covering every sequence octet of the offender (SYN and FIN count one each).
TEST(GuestTcpStackTest, RstFormForNoAckSegments) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  // SYN carrying data to a closed port: ack = seq + payload + SYN octet.
  const auto syn_rst = stack.OnSegment(
      Seg(p, TcpFlags::kSyn, 40000, 445, 1000, 0, {'x', 'y'}), false,
      TimePoint());
  EXPECT_EQ(syn_rst.action, SegmentAction::kReplyRst);
  EXPECT_TRUE(syn_rst.rst_has_ack);
  EXPECT_EQ(syn_rst.reply_seq, 0u);
  EXPECT_EQ(syn_rst.reply_ack, 1000u + 2u + 1u);
  // Out-of-state FIN without ACK: same form, FIN counts one octet.
  const auto fin_rst = stack.OnSegment(
      Seg(p, TcpFlags::kFin, 40001, 445, 2000, 0), true, TimePoint());
  EXPECT_EQ(fin_rst.action, SegmentAction::kReplyRst);
  EXPECT_TRUE(fin_rst.rst_has_ack);
  EXPECT_EQ(fin_rst.reply_seq, 0u);
  EXPECT_EQ(fin_rst.reply_ack, 2001u);
}

// RFC 793: a reset answering an ACK-bearing segment takes its seq from that
// ack and carries no ACK flag of its own.
TEST(GuestTcpStackTest, RstFormForAckSegments) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  const auto rst = stack.OnSegment(
      Seg(p, TcpFlags::kPsh | TcpFlags::kAck, 40000, 445, 1000, 777, {'x'}),
      true, TimePoint());
  EXPECT_EQ(rst.action, SegmentAction::kReplyRst);
  EXPECT_FALSE(rst.rst_has_ack);
  EXPECT_EQ(rst.reply_seq, 777u);  // SEG.ACK
  EXPECT_EQ(rst.reply_ack, 0u);
}

TEST(GuestTcpStackTest, RstTearsDownSilently) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  stack.OnSegment(Seg(p, TcpFlags::kSyn), true, TimePoint());
  const auto rst = stack.OnSegment(Seg(p, TcpFlags::kRst), true, TimePoint());
  EXPECT_EQ(rst.action, SegmentAction::kIgnore);
  EXPECT_EQ(stack.connection_count(), 0u);
}

TEST(GuestTcpStackTest, DistinctFourTuplesAreDistinctConnections) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  stack.OnSegment(Seg(p, TcpFlags::kSyn, 40000), true, TimePoint());
  stack.OnSegment(Seg(p, TcpFlags::kSyn, 40001), true, TimePoint());
  stack.OnSegment(Seg(p, TcpFlags::kSyn, 40000, 80), true, TimePoint());
  EXPECT_EQ(stack.connection_count(), 3u);
}

TEST(GuestTcpStackTest, CapacityEvictsOldest) {
  GuestTcpStack stack(Rng(1), /*max_connections=*/2);
  Packet p;
  stack.OnSegment(Seg(p, TcpFlags::kSyn, 40000), true, TimePoint());
  stack.OnSegment(Seg(p, TcpFlags::kSyn, 40001), true,
                  TimePoint() + Duration::Seconds(1.0));
  stack.OnSegment(Seg(p, TcpFlags::kSyn, 40002), true,
                  TimePoint() + Duration::Seconds(2.0));
  EXPECT_EQ(stack.connection_count(), 2u);
  EXPECT_EQ(stack.stats().evictions, 1u);
}

TEST(GuestTcpStackTest, IdleConnectionsExpire) {
  GuestTcpStack stack(Rng(1));
  Packet p;
  stack.OnSegment(Seg(p, TcpFlags::kSyn, 40000), true, TimePoint());
  stack.OnSegment(Seg(p, TcpFlags::kSyn, 40001), true,
                  TimePoint() + Duration::Seconds(50.0));
  EXPECT_EQ(stack.ExpireIdle(TimePoint() + Duration::Seconds(70.0),
                             Duration::Seconds(60)),
            1u);
  EXPECT_EQ(stack.connection_count(), 1u);
}

// ---- Strict mode through the full guest ----

struct StrictGuestFixture {
  PhysicalHost host;
  VirtualMachine* vm = nullptr;
  std::unique_ptr<GuestOs> guest;
  std::vector<Packet> transmitted;

  StrictGuestFixture() : host(MakeHostConfig()) {
    ReferenceImageConfig image_config;
    image_config.num_pages = 2048;
    const ImageId image = host.RegisterImage(image_config);
    vm = host.CreateClone(image, CloneKind::kFlash, "strict");
    vm->BindAddress(kLocal, MacAddress::FromId(4));
    vm->set_state(VmState::kRunning);
    vm->set_tx_handler(
        [this](VirtualMachine&, Packet p) { transmitted.push_back(std::move(p)); });
    GuestOsConfig config;
    config.services = DefaultWindowsServices();
    config.strict_tcp = true;
    guest = std::make_unique<GuestOs>(vm, config, Rng(5));
  }

  static PhysicalHostConfig MakeHostConfig() {
    PhysicalHostConfig config;
    config.memory_mb = 32;
    config.domain_overhead_frames = 4;
    return config;
  }

  Packet Inbound(uint8_t flags, uint32_t seq, uint32_t ack,
                 std::vector<uint8_t> payload = {}) {
    PacketSpec spec;
    spec.src_mac = MacAddress::FromId(2);
    spec.dst_mac = vm->mac();
    spec.src_ip = kPeer;
    spec.dst_ip = kLocal;
    spec.proto = IpProto::kTcp;
    spec.src_port = 40000;
    spec.dst_port = 445;
    spec.tcp_flags = flags;
    spec.seq = seq;
    spec.ack = ack;
    spec.payload = std::move(payload);
    return BuildPacket(spec);
  }
};

TEST(StrictGuestTest, ExploitWithoutHandshakeDoesNotInfect) {
  StrictGuestFixture fx;
  std::vector<uint8_t> exploit = {'E', 'X', 'P', 'L', 'O', 'I', 'T', '-',
                                  'L', 'S', 'A', 'S', 'S'};
  fx.guest->HandleFrame(
      fx.Inbound(TcpFlags::kPsh | TcpFlags::kAck, 1000, 0, exploit), TimePoint());
  EXPECT_FALSE(fx.vm->infected());
  // The facade-free stack answers out-of-state data with a RST.
  ASSERT_EQ(fx.transmitted.size(), 1u);
  EXPECT_TRUE(PacketView::Parse(fx.transmitted[0])->tcp().flags & TcpFlags::kRst);
}

TEST(StrictGuestTest, ExploitAfterHandshakeInfects) {
  StrictGuestFixture fx;
  fx.guest->HandleFrame(fx.Inbound(TcpFlags::kSyn, 1000, 0), TimePoint());
  ASSERT_EQ(fx.transmitted.size(), 1u);
  const auto synack = PacketView::Parse(fx.transmitted[0]);
  ASSERT_EQ(synack->tcp().flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_EQ(synack->tcp().ack, 1001u);

  std::vector<uint8_t> exploit = {'E', 'X', 'P', 'L', 'O', 'I', 'T', '-',
                                  'L', 'S', 'A', 'S', 'S'};
  fx.guest->HandleFrame(fx.Inbound(TcpFlags::kAck | TcpFlags::kPsh, 1001,
                                   synack->tcp().seq + 1, exploit),
                        TimePoint());
  EXPECT_TRUE(fx.vm->infected());
  EXPECT_EQ(fx.guest->tcp_stack().stats().payload_segments_delivered, 1u);
}

TEST(StrictGuestTest, BannerRequiresEstablishedConnection) {
  StrictGuestFixture fx;
  // Handshake, then an HTTP-ish request to the SMB port -> banner response.
  fx.guest->HandleFrame(fx.Inbound(TcpFlags::kSyn, 500, 0), TimePoint());
  const auto synack = PacketView::Parse(fx.transmitted[0]);
  fx.guest->HandleFrame(
      fx.Inbound(TcpFlags::kAck | TcpFlags::kPsh, 501, synack->tcp().seq + 1,
                 {'S', 'M', 'B', '?'}),
      TimePoint());
  ASSERT_EQ(fx.transmitted.size(), 2u);
  const auto banner = PacketView::Parse(fx.transmitted[1]);
  const auto payload = banner->l4_payload();
  EXPECT_EQ(std::string(payload.begin(), payload.end()), "SMB");
}

}  // namespace
}  // namespace potemkin
