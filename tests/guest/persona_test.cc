#include "src/guest/persona/persona.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace potemkin {
namespace {

const Ipv4Address kAttacker(198, 51, 100, 9);
const Ipv4Address kGuest(10, 1, 0, 10);

std::string Text(const std::vector<uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

ServiceConfig FindPersonaService(PersonaKind kind) {
  for (const ServiceConfig& service : PersonaHoneypotServices()) {
    if (service.persona == kind) {
      return service;
    }
  }
  ADD_FAILURE() << "persona service missing from PersonaHoneypotServices";
  return {};
}

// Builds the delivered-payload view the guest would hand the engine.
PacketView MakeView(Packet& storage, uint16_t dst_port, const std::string& data,
                    uint16_t src_port = 40000) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(7);
  spec.dst_mac = MacAddress::FromId(2);
  spec.src_ip = kAttacker;
  spec.dst_ip = kGuest;
  spec.proto = IpProto::kTcp;
  spec.src_port = src_port;
  spec.dst_port = dst_port;
  spec.tcp_flags = TcpFlags::kPsh | TcpFlags::kAck;
  spec.payload = std::vector<uint8_t>(data.begin(), data.end());
  storage = BuildPacket(spec);
  return *PacketView::Parse(storage);
}

size_t CountLedger(const Observability& obs, LedgerEvent type) {
  size_t n = 0;
  for (const auto& event : obs.ledger.Events()) {
    if (event.type == type) {
      ++n;
    }
  }
  return n;
}

TEST(PersonaTest, SshLocksOutAfterThreeAuthFailures) {
  Observability obs;
  PersonaEngine engine(Rng(7), &obs);
  const ServiceConfig ssh = FindPersonaService(PersonaKind::kSsh);
  Packet storage;

  // accept(): banner-first protocol greets immediately.
  const auto greeting = engine.OnConnect(ssh, MakeView(storage, 22, ""), 0);
  EXPECT_NE(Text(greeting.payload).find("SSH-2.0-"), std::string::npos);
  EXPECT_FALSE(greeting.close);
  EXPECT_EQ(engine.session_count(), 1u);

  // Client version string -> KEXINIT.
  const auto kex =
      engine.OnData(ssh, MakeView(storage, 22, "SSH-2.0-attacker\r\n"), 1);
  EXPECT_NE(Text(kex.payload).find("SSH-KEXINIT"), std::string::npos);

  // Two failures tolerated, the third locks the peer out and closes.
  for (uint32_t attempt = 1; attempt < PersonaEngine::kSshMaxAuthFailures;
       ++attempt) {
    const auto reply =
        engine.OnData(ssh, MakeView(storage, 22, "AUTH password guess"), 2);
    EXPECT_NE(Text(reply.payload).find("SSH-AUTH-FAILURE"), std::string::npos);
    EXPECT_FALSE(reply.close);
  }
  const auto lockout =
      engine.OnData(ssh, MakeView(storage, 22, "AUTH password guess"), 3);
  EXPECT_NE(Text(lockout.payload).find("SSH-LOCKOUT"), std::string::npos);
  EXPECT_TRUE(lockout.close);
  EXPECT_EQ(engine.stats().lockouts, 1u);
  EXPECT_EQ(engine.stats().auth_failures, 3u);
  EXPECT_EQ(engine.session_count(), 0u);  // lockout tears the session down
  EXPECT_EQ(CountLedger(obs, LedgerEvent::kPersonaAuthFailure), 3u);
  EXPECT_EQ(CountLedger(obs, LedgerEvent::kPersonaLockout), 1u);
}

TEST(PersonaTest, SmbWalksNegotiateSessionSetupTreeConnect) {
  Observability obs;
  PersonaEngine engine(Rng(7), &obs);
  const ServiceConfig smb = FindPersonaService(PersonaKind::kSmb);
  Packet storage;
  engine.OnConnect(smb, MakeView(storage, 445, ""), 0);

  const auto negotiate =
      engine.OnData(smb, MakeView(storage, 445, "SMB-NEGOTIATE"), 1);
  EXPECT_NE(Text(negotiate.payload).find("dialect=NT LM 0.12"),
            std::string::npos);
  const auto setup =
      engine.OnData(smb, MakeView(storage, 445, "SMB-SESSION-SETUP"), 2);
  EXPECT_NE(Text(setup.payload).find("uid="), std::string::npos);
  const auto tree =
      engine.OnData(smb, MakeView(storage, 445, "SMB-TREE-CONNECT"), 3);
  EXPECT_NE(Text(tree.payload).find("share=IPC$"), std::string::npos);
  EXPECT_EQ(engine.stats().bad_sequence, 0u);
  // States 1, 2, 3 each recorded (plus state 0 from OnConnect).
  EXPECT_EQ(CountLedger(obs, LedgerEvent::kPersonaState), 4u);
}

TEST(PersonaTest, SmbRejectsOutOfOrderSteps) {
  Observability obs;
  PersonaEngine engine(Rng(7), &obs);
  const ServiceConfig smb = FindPersonaService(PersonaKind::kSmb);
  Packet storage;
  engine.OnConnect(smb, MakeView(storage, 445, ""), 0);

  // Tree connect without negotiating first: a real server has no tid to give.
  const auto reply =
      engine.OnData(smb, MakeView(storage, 445, "SMB-TREE-CONNECT"), 1);
  EXPECT_NE(Text(reply.payload).find("SMB-ERROR bad-sequence"),
            std::string::npos);
  EXPECT_EQ(engine.stats().bad_sequence, 1u);
  // The rejected step must not have advanced the state machine.
  const auto negotiate =
      engine.OnData(smb, MakeView(storage, 445, "SMB-NEGOTIATE"), 2);
  EXPECT_NE(Text(negotiate.payload).find("SMB-NEGOTIATE-RESPONSE"),
            std::string::npos);
}

TEST(PersonaTest, HttpServesDecoysAndLedgersSensitiveOnes) {
  Observability obs;
  PersonaEngine engine(Rng(7), &obs);
  const ServiceConfig http = FindPersonaService(PersonaKind::kHttp);
  Packet storage;
  engine.OnConnect(http, MakeView(storage, 80, ""), 0);

  // Routine content: served but not a decoy hit.
  const auto robots = engine.OnData(
      http, MakeView(storage, 80, "GET /robots.txt HTTP/1.0\r\n\r\n"), 1);
  EXPECT_NE(Text(robots.payload).find("200 OK"), std::string::npos);
  EXPECT_NE(Text(robots.payload).find("Disallow: /finance/"), std::string::npos);
  EXPECT_EQ(engine.stats().decoys_served, 0u);

  // Sensitive bait: both retrievals ledgered with their document ids.
  const auto payroll = engine.OnData(
      http,
      MakeView(storage, 80, "GET /finance/payroll-2005.xls HTTP/1.0\r\n\r\n"), 2);
  EXPECT_NE(Text(payroll.payload).find("payroll FY2005"), std::string::npos);
  const auto directory = engine.OnData(
      http, MakeView(storage, 80, "GET /hr/employees.csv HTTP/1.0\r\n\r\n"), 3);
  EXPECT_NE(Text(directory.payload).find("name,ext,office"), std::string::npos);
  EXPECT_EQ(engine.stats().decoys_served, 2u);
  EXPECT_EQ(CountLedger(obs, LedgerEvent::kPersonaDecoy), 2u);

  // Unknown path: 404, counted as a protocol miss.
  const auto missing = engine.OnData(
      http, MakeView(storage, 80, "GET /admin/secret HTTP/1.0\r\n\r\n"), 4);
  EXPECT_NE(Text(missing.payload).find("404"), std::string::npos);
  EXPECT_EQ(engine.stats().bad_sequence, 1u);
}

TEST(PersonaTest, TranscriptsAreDeterministicPerSeedAndVaryAcrossFlows) {
  const ServiceConfig ssh = FindPersonaService(PersonaKind::kSsh);
  Packet storage;

  // Same seed, same flow: byte-identical KEXINIT (the cookie comes from the
  // session stream forked by flow key).
  PersonaEngine a(Rng(11));
  PersonaEngine b(Rng(11));
  a.OnConnect(ssh, MakeView(storage, 22, ""), 0);
  b.OnConnect(ssh, MakeView(storage, 22, ""), 0);
  const auto kex_a = a.OnData(ssh, MakeView(storage, 22, "SSH-2.0-x\r\n"), 1);
  const auto kex_b = b.OnData(ssh, MakeView(storage, 22, "SSH-2.0-x\r\n"), 1);
  EXPECT_EQ(kex_a.payload, kex_b.payload);

  // Same engine, different source port: a different cookie, like a real host
  // whose per-connection state differs.
  a.OnConnect(ssh, MakeView(storage, 22, "", 40001), 2);
  const auto kex_other =
      a.OnData(ssh, MakeView(storage, 22, "SSH-2.0-x\r\n", 40001), 3);
  EXPECT_NE(kex_a.payload, kex_other.payload);

  // Session order must not matter: a fresh engine that sees the flows in the
  // opposite order still gives each flow its original transcript.
  PersonaEngine c(Rng(11));
  c.OnConnect(ssh, MakeView(storage, 22, "", 40001), 0);
  const auto c_other =
      c.OnData(ssh, MakeView(storage, 22, "SSH-2.0-x\r\n", 40001), 1);
  c.OnConnect(ssh, MakeView(storage, 22, ""), 2);
  const auto c_first = c.OnData(ssh, MakeView(storage, 22, "SSH-2.0-x\r\n"), 3);
  EXPECT_EQ(c_other.payload, kex_other.payload);
  EXPECT_EQ(c_first.payload, kex_a.payload);
}

TEST(PersonaTest, SessionTableEvictsAtCapacity) {
  PersonaEngine engine(Rng(5), nullptr, /*max_sessions=*/8);
  const ServiceConfig http = FindPersonaService(PersonaKind::kHttp);
  Packet storage;
  for (uint16_t i = 0; i < 32; ++i) {
    engine.OnConnect(http, MakeView(storage, 80, "", 41000 + i), i);
  }
  EXPECT_LE(engine.session_count(), 8u);
  EXPECT_EQ(engine.stats().sessions_opened, 32u);
  EXPECT_EQ(engine.stats().sessions_evicted, 24u);
}

TEST(PersonaTest, CloseDropsSessionState) {
  PersonaEngine engine(Rng(5));
  const ServiceConfig smb = FindPersonaService(PersonaKind::kSmb);
  Packet storage;
  engine.OnConnect(smb, MakeView(storage, 445, ""), 0);
  engine.OnData(smb, MakeView(storage, 445, "SMB-NEGOTIATE"), 1);
  EXPECT_EQ(engine.session_count(), 1u);
  engine.OnClose(MakeView(storage, 445, ""));
  EXPECT_EQ(engine.session_count(), 0u);
  // A reconnect starts from scratch: negotiate is required again.
  engine.OnConnect(smb, MakeView(storage, 445, ""), 2);
  const auto reply =
      engine.OnData(smb, MakeView(storage, 445, "SMB-SESSION-SETUP"), 3);
  EXPECT_NE(Text(reply.payload).find("SMB-ERROR"), std::string::npos);
}

}  // namespace
}  // namespace potemkin
