// Chaos harness tests: plan determinism, containment under a mid-outbreak
// backend crash, denial storms, shard partitions — and the seed-for-seed
// reproducibility of a whole chaotic run's event ledger.
#include "src/ctrl/chaos.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/honeyfarm.h"
#include "src/ctrl/controller.h"
#include "src/malware/worm.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 20);
const Ipv4Address kExternal(198, 51, 100, 7);

HoneyfarmConfig ChaosFarm(uint32_t hosts, uint32_t shards = 1) {
  HoneyfarmConfig config = MakeDefaultFarmConfig(kFarm, hosts,
                                                 /*host_memory_mb=*/128,
                                                 ContentMode::kStoreBytes);
  config.server_template.image.num_pages = 1024;
  config.gateway.containment.mode = OutboundMode::kReflect;
  config.gateway_shards = shards;
  return config;
}

ControllerConfig FastController() {
  ControllerConfig config;
  config.tick = Duration::Millis(250);
  config.drain.deadline = Duration::Seconds(5);
  config.warmup = Duration::Seconds(1);
  config.min_active = 1;
  return config;
}

Packet ProbeSyn(Ipv4Address dst, uint16_t sport = 52000) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(1234);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = kExternal;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = sport;
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

TEST(ChaosTest, PlanIsDeterministicPerSeed) {
  Honeyfarm farm(ChaosFarm(/*hosts=*/2));
  Controller controller(&farm, FastController());
  farm.Start();
  controller.Start();
  ChaosConfig config;
  config.seed = 99;
  config.num_faults = 6;
  ChaosHarness a(&farm, &controller, config);
  ChaosHarness b(&farm, &controller, config);
  const auto plan_a = a.GeneratePlan();
  const auto plan_b = b.GeneratePlan();
  ASSERT_EQ(plan_a.size(), plan_b.size());
  ASSERT_EQ(plan_a.size(), 6u);
  for (size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a[i].at, plan_b[i].at);
    EXPECT_EQ(plan_a[i].fault, plan_b[i].fault);
    EXPECT_EQ(plan_a[i].target, plan_b[i].target);
    EXPECT_EQ(plan_a[i].duration, plan_b[i].duration);
    EXPECT_DOUBLE_EQ(plan_a[i].magnitude, plan_b[i].magnitude);
    if (i > 0) {
      EXPECT_GE(plan_a[i].at - plan_a[i - 1].at, Duration::Seconds(5));
    }
  }
  // A different seed changes the schedule.
  config.seed = 100;
  ChaosHarness c(&farm, &controller, config);
  const auto plan_c = c.GeneratePlan();
  bool differs = false;
  for (size_t i = 0; i < plan_c.size(); ++i) {
    differs |= plan_c[i].at != plan_a[i].at || plan_c[i].target != plan_a[i].target;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosTest, SingleShardPlansNeverPartition) {
  Honeyfarm farm(ChaosFarm(/*hosts=*/2, /*shards=*/1));
  Controller controller(&farm, FastController());
  farm.Start();
  controller.Start();
  ChaosConfig config;
  config.num_faults = 32;
  config.min_gap = Duration::Seconds(1);
  config.horizon = Duration::Minutes(5);
  ChaosHarness harness(&farm, &controller, config);
  for (const ChaosEvent& event : harness.GeneratePlan()) {
    EXPECT_NE(event.fault, ChaosFault::kShardPartition);
  }
}

TEST(ChaosTest, BackendCrashMidOutbreakStaysContained) {
  Honeyfarm farm(ChaosFarm(/*hosts=*/2));
  Controller controller(&farm, FastController());
  WormConfig worm_config = BlasterLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  worm_config.scan_rate_pps = 3.0;
  worm_config.selection = TargetSelection::kUniformRandom;
  WormRuntime worm(&farm.loop(), worm_config, 77);
  farm.AttachWorm(&worm);
  farm.Start();
  controller.Start();

  ChaosConfig chaos_config;
  chaos_config.check_interval = Duration::Seconds(1);
  ChaosHarness harness(&farm, &controller, chaos_config);
  ChaosEvent crash;
  crash.at = Duration::Seconds(20);
  crash.fault = ChaosFault::kBackendCrash;
  crash.target = 0;
  crash.duration = Duration::Seconds(15);
  harness.Arm({crash});

  farm.SeedWorm(worm, kExternal, kFarm.AddressAt(1));
  farm.RunFor(Duration::Minutes(1.5));

  // The outbreak ran, a backend died under it and came back...
  EXPECT_GT(farm.epidemic().total_infections(), 1u);
  const ChaosReport report = harness.report();
  EXPECT_EQ(report.faults_injected, 1u);
  EXPECT_EQ(report.heals, 1u);
  EXPECT_GT(report.checks, 0u);
  // ...and containment never broke: no escapes, no blackholed bindings.
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.containment_escapes, 0u);
  EXPECT_EQ(report.bindings_on_down_hosts, 0u);
  EXPECT_EQ(farm.gateway().containment().stats().escapes_from_infected, 0u);
  // The crashed host healed through warming back into rotation.
  EXPECT_EQ(controller.pool().state(0), BackendState::kActive);
}

TEST(ChaosTest, DenialStormStarvesThenReleasesFrames) {
  Honeyfarm farm(ChaosFarm(/*hosts=*/2));
  Controller controller(&farm, FastController());
  farm.Start();
  controller.Start();
  ChaosHarness harness(&farm, &controller, ChaosConfig{});
  ChaosEvent storm;
  storm.at = Duration::Seconds(1);
  storm.fault = ChaosFault::kAllocDenialStorm;
  storm.target = 0;
  storm.duration = Duration::Seconds(5);
  harness.Arm({storm});

  farm.RunFor(Duration::Seconds(2.0));
  const FrameAllocator& alloc = farm.server(0).host().allocator();
  EXPECT_EQ(alloc.free_frames(), 0u);
  // Probes keep getting answered: placement steers around the starved host.
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(9)));
  farm.RunFor(Duration::Seconds(2.0));
  const Binding* binding = farm.gateway().bindings().Find(kFarm.AddressAt(9));
  ASSERT_NE(binding, nullptr);
  EXPECT_EQ(binding->host, 1u);

  farm.RunFor(Duration::Seconds(4.0));  // heal releases the hoard
  EXPECT_GT(alloc.free_frames(), 0u);
  EXPECT_EQ(harness.report().violations, 0u);
}

TEST(ChaosTest, ShardPartitionHealsWithoutViolations) {
  Honeyfarm farm(ChaosFarm(/*hosts=*/2, /*shards=*/2));
  Controller controller(&farm, FastController());
  farm.Start();
  controller.Start();
  ChaosHarness harness(&farm, &controller, ChaosConfig{});
  ChaosEvent cut;
  cut.at = Duration::Seconds(1);
  cut.fault = ChaosFault::kShardPartition;
  cut.target = (0u << 16) | 1u;
  cut.duration = Duration::Seconds(5);
  harness.Arm({cut});

  for (uint64_t i = 0; i < 16; ++i) {
    farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i)));
  }
  farm.RunFor(Duration::Seconds(10.0));

  const ChaosReport report = harness.report();
  EXPECT_EQ(report.faults_injected, 1u);
  EXPECT_EQ(report.heals, 1u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.nat_misplaced, 0u);
  // After the heal, nothing is stuck in the rings.
  const GatewayStats stats = farm.sharded_gateway().AggregateStats();
  EXPECT_EQ(stats.handoffs_in, stats.handoffs_out);
}

// The acceptance bar for CI's chaos-smoke job: the same seed produces the
// same farm history, byte for byte, ledger record for ledger record.
TEST(ChaosTest, SameSeedSameLedger) {
  const auto run = [] {
    Honeyfarm farm(ChaosFarm(/*hosts=*/3, /*shards=*/2));
    Controller controller(&farm, FastController());
    farm.Start();
    controller.Start();
    ChaosConfig config;
    config.seed = 41;
    config.horizon = Duration::Seconds(30);
    config.num_faults = 3;
    config.min_gap = Duration::Seconds(3);
    ChaosHarness harness(&farm, &controller, config);
    harness.Arm();
    for (uint64_t i = 0; i < 24; ++i) {
      farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i * 7 % 64),
                                  static_cast<uint16_t>(52000 + i)));
    }
    farm.RunFor(Duration::Seconds(40.0));
    return farm.ledger().Events();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].time_ns, b[i].time_ns);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].session, b[i].session);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
  }
}

}  // namespace
}  // namespace potemkin
