// BackendPool unit tests: lifecycle states, admission veto, placement scoring
// and the denial-pressure EWMA — all against synthetic capacity callbacks, no
// farm underneath.
#include "src/ctrl/backend_pool.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

// A capacity callback the test mutates between Refresh() calls.
struct FakeBackend {
  BackendCapacity cap;
  BackendPool::CapacityFn fn() {
    return [this] { return cap; };
  }
};

BackendCapacity Cap(uint64_t used, uint64_t capacity, uint64_t vms,
                    uint64_t denied = 0) {
  BackendCapacity cap;
  cap.used_frames = used;
  cap.capacity_frames = capacity;
  cap.live_vms = vms;
  cap.denied_requests = denied;
  cap.can_admit = used < capacity;
  return cap;
}

TEST(BackendPoolTest, RegistersDenselyAndTracksState) {
  BackendPool pool;
  FakeBackend a, b;
  a.cap = Cap(0, 100, 0);
  b.cap = Cap(0, 100, 0);
  pool.Register(0, "host0", a.fn(), BackendState::kActive, TimePoint());
  pool.Register(1, "host1", b.fn(), BackendState::kDown, TimePoint());
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.name(1), "host1");
  EXPECT_EQ(pool.state(0), BackendState::kActive);
  EXPECT_EQ(pool.state(1), BackendState::kDown);
  EXPECT_EQ(pool.CountInState(BackendState::kActive), 1u);

  const TimePoint later = TimePoint::FromNanos(5'000'000'000);
  pool.SetState(1, BackendState::kWarming, later);
  EXPECT_EQ(pool.state(1), BackendState::kWarming);
  EXPECT_EQ(pool.state_since(1), later);
  // Setting the same state again must not reset the transition clock.
  pool.SetState(1, BackendState::kWarming, TimePoint::FromNanos(9'000'000'000));
  EXPECT_EQ(pool.state_since(1), later);
}

TEST(BackendPoolTest, OnlyActiveBackendsAdmit) {
  BackendPool pool;
  FakeBackend backends[4];
  const BackendState states[] = {BackendState::kActive, BackendState::kWarming,
                                 BackendState::kDraining, BackendState::kDown};
  for (uint32_t i = 0; i < 4; ++i) {
    backends[i].cap = Cap(0, 100, 0);
    pool.Register(i, "h", backends[i].fn(), states[i], TimePoint());
  }
  EXPECT_TRUE(pool.Admits(0));
  EXPECT_FALSE(pool.Admits(1));
  EXPECT_FALSE(pool.Admits(2));
  EXPECT_FALSE(pool.Admits(3));
  EXPECT_FALSE(pool.Admits(99));  // out of range: no admission
}

TEST(BackendPoolTest, ScorePrefersFrameHeadroom) {
  BackendPool pool;
  FakeBackend full, empty;
  full.cap = Cap(90, 100, 10);
  empty.cap = Cap(10, 100, 10);
  pool.Register(0, "full", full.fn(), BackendState::kActive, TimePoint());
  pool.Register(1, "empty", empty.fn(), BackendState::kActive, TimePoint());
  pool.Refresh();
  EXPECT_GT(pool.Score(1), pool.Score(0));
  HostId best = 99;
  ASSERT_TRUE(pool.PickBest(&best));
  EXPECT_EQ(best, 1u);
}

TEST(BackendPoolTest, DenialStormDepressesScore) {
  BackendPool pool;
  FakeBackend quiet, denying;
  quiet.cap = Cap(50, 100, 5);
  denying.cap = Cap(50, 100, 5);
  pool.Register(0, "quiet", quiet.fn(), BackendState::kActive, TimePoint());
  pool.Register(1, "denying", denying.fn(), BackendState::kActive, TimePoint());
  pool.Refresh();
  EXPECT_DOUBLE_EQ(pool.Score(0), pool.Score(1));

  // A burst of denials between refreshes raises host 1's EWMA and sinks it.
  denying.cap.denied_requests += 500;
  pool.Refresh();
  EXPECT_GT(pool.denial_pressure(1), 0.0);
  EXPECT_LT(pool.Score(1), pool.Score(0));

  // With the storm over, the EWMA decays back toward parity.
  const double pressure_after_storm = pool.denial_pressure(1);
  for (int i = 0; i < 10; ++i) {
    pool.Refresh();
  }
  EXPECT_LT(pool.denial_pressure(1), pressure_after_storm / 100.0);
}

TEST(BackendPoolTest, PickBestSkipsNonAdmittingSnapshots) {
  BackendPool pool;
  FakeBackend wedged, ok;
  wedged.cap = Cap(100, 100, 0);  // full: can_admit false
  ok.cap = Cap(80, 100, 50);
  pool.Register(0, "wedged", wedged.fn(), BackendState::kActive, TimePoint());
  pool.Register(1, "ok", ok.fn(), BackendState::kActive, TimePoint());
  pool.Refresh();
  HostId best = 99;
  ASSERT_TRUE(pool.PickBest(&best));
  EXPECT_EQ(best, 1u);

  ok.cap.can_admit = false;
  pool.Refresh();
  EXPECT_FALSE(pool.PickBest(&best));
}

TEST(BackendPoolTest, PickWorstActiveRespectsFloor) {
  BackendPool pool;
  FakeBackend backends[3];
  for (uint32_t i = 0; i < 3; ++i) {
    backends[i].cap = Cap(10 * (i + 1), 100, i);
    pool.Register(i, "h", backends[i].fn(), BackendState::kActive, TimePoint());
  }
  pool.Refresh();
  HostId worst = 99;
  ASSERT_TRUE(pool.PickWorstActive(&worst, /*min_active=*/2));
  EXPECT_EQ(worst, 2u);  // most used frames, most VMs

  // Draining two of three leaves one active: the floor refuses a third pick.
  pool.SetState(2, BackendState::kDraining, TimePoint());
  ASSERT_TRUE(pool.PickWorstActive(&worst, /*min_active=*/1));
  EXPECT_EQ(worst, 1u);
  pool.SetState(1, BackendState::kDraining, TimePoint());
  EXPECT_FALSE(pool.PickWorstActive(&worst, /*min_active=*/1));
}

TEST(BackendPoolTest, StateNamesCoverAllStates) {
  EXPECT_STREQ(BackendStateName(BackendState::kActive), "active");
  EXPECT_STREQ(BackendStateName(BackendState::kWarming), "warming");
  EXPECT_STREQ(BackendStateName(BackendState::kDraining), "draining");
  EXPECT_STREQ(BackendStateName(BackendState::kDown), "down");
}

}  // namespace
}  // namespace potemkin
