// Controller tests: drain with live sessions, crash failover, image rotation
// with pinned clones, SLO-driven standby activation — each over a real farm on
// one virtual-time loop.
#include "src/ctrl/controller.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/honeyfarm.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 20);
const Ipv4Address kExternal(198, 51, 100, 7);

HoneyfarmConfig SmallFarm(uint32_t hosts) {
  HoneyfarmConfig config = MakeDefaultFarmConfig(kFarm, hosts,
                                                 /*host_memory_mb=*/128,
                                                 ContentMode::kStoreBytes);
  config.server_template.image.num_pages = 1024;
  config.gateway.containment.mode = OutboundMode::kReflect;
  config.gateway.recycle.idle_timeout = Duration::Minutes(10);  // keep VMs up
  return config;
}

ControllerConfig FastController() {
  ControllerConfig config;
  config.tick = Duration::Millis(100);
  config.drain.deadline = Duration::Seconds(5);
  config.warmup = Duration::Seconds(1);
  config.min_active = 1;
  return config;
}

Packet ProbeSyn(Ipv4Address dst, uint16_t port = 445) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(1234);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = kExternal;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = 52000;
  spec.dst_port = port;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

TEST(ControllerTest, DrainMigratesSessionsAndRetiresHost) {
  Honeyfarm farm(SmallFarm(/*hosts=*/2));
  Controller controller(&farm, FastController());
  farm.Start();
  controller.Start();

  // Bindings spread over both hosts.
  for (uint64_t i = 0; i < 8; ++i) {
    farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i)));
  }
  farm.RunFor(Duration::Seconds(3.0));
  ASSERT_GT(farm.sharded_gateway().CountHostBindings(0), 0u);
  const size_t total = farm.gateway().bindings().size();

  controller.DrainHost(0);
  EXPECT_EQ(controller.pool().state(0), BackendState::kDraining);
  farm.RunFor(Duration::Seconds(4.0));

  // The drained host is empty and retired; no session was lost — every
  // binding either migrated to host 1 or still answers from there.
  EXPECT_EQ(farm.sharded_gateway().CountHostBindings(0), 0u);
  EXPECT_EQ(controller.pool().state(0), BackendState::kDown);
  EXPECT_EQ(controller.stats().drains_completed, 1u);
  EXPECT_EQ(controller.stats().drains_forced, 0u);
  EXPECT_GT(controller.stats().migrations, 0u);
  EXPECT_EQ(farm.gateway().bindings().size(), total);

  // The farm still answers probes (on the surviving host).
  std::vector<Packet> egress;
  farm.set_egress_monitor([&](const Packet& p) { egress.push_back(p); });
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(100)));
  farm.RunFor(Duration::Seconds(2.0));
  EXPECT_FALSE(egress.empty());
  const Binding* binding = farm.gateway().bindings().Find(kFarm.AddressAt(100));
  ASSERT_NE(binding, nullptr);
  EXPECT_EQ(binding->host, 1u);
}

TEST(ControllerTest, CrashFailoverReroutesInsteadOfBlackholing) {
  Honeyfarm farm(SmallFarm(/*hosts=*/2));
  Controller controller(&farm, FastController());
  farm.Start();
  controller.Start();

  const Ipv4Address victim = kFarm.AddressAt(3);
  farm.InjectInbound(ProbeSyn(victim));
  farm.RunFor(Duration::Seconds(2.0));
  const Binding* binding = farm.gateway().bindings().Find(victim);
  ASSERT_NE(binding, nullptr);
  const HostId crashed = binding->host;

  farm.CrashHost(crashed);
  farm.RunFor(Duration::Seconds(1.0));  // a tick detects and fails over

  EXPECT_EQ(controller.pool().state(crashed), BackendState::kDown);
  EXPECT_EQ(controller.stats().failovers, 1u);
  EXPECT_EQ(farm.sharded_gateway().CountHostBindings(crashed), 0u);
  EXPECT_EQ(farm.gateway().bindings().Find(victim), nullptr);

  // The next probe for the same address re-routes to the healthy host and
  // gets answered — the flow was never blackholed into the dead backend.
  std::vector<Packet> egress;
  farm.set_egress_monitor([&](const Packet& p) { egress.push_back(p); });
  farm.InjectInbound(ProbeSyn(victim));
  farm.RunFor(Duration::Seconds(2.0));
  const Binding* rebound = farm.gateway().bindings().Find(victim);
  ASSERT_NE(rebound, nullptr);
  EXPECT_NE(rebound->host, crashed);
  EXPECT_FALSE(egress.empty());
}

TEST(ControllerTest, ExplicitFailHostInvalidatesImmediately) {
  Honeyfarm farm(SmallFarm(/*hosts=*/2));
  Controller controller(&farm, FastController());
  farm.Start();
  controller.Start();
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(1)));
  farm.RunFor(Duration::Seconds(2.0));
  const Binding* binding = farm.gateway().bindings().Find(kFarm.AddressAt(1));
  ASSERT_NE(binding, nullptr);
  const HostId host = binding->host;

  controller.FailHost(host);  // no tick needed
  EXPECT_EQ(controller.pool().state(host), BackendState::kDown);
  EXPECT_EQ(farm.sharded_gateway().CountHostBindings(host), 0u);
}

TEST(ControllerTest, RotationLeavesInFlightClonesPinned) {
  Honeyfarm farm(SmallFarm(/*hosts=*/1));
  ControllerConfig config = FastController();
  Controller controller(&farm, config);
  farm.Start();
  controller.Start();

  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(5)));
  farm.RunFor(Duration::Seconds(2.0));
  const Binding* binding = farm.gateway().bindings().Find(kFarm.AddressAt(5));
  ASSERT_NE(binding, nullptr);
  const VmId pinned_vm = binding->vm;
  CloneServer& server = farm.server(0);
  const ImageGeneration old_generation =
      server.host().VmGeneration(pinned_vm);

  const size_t rotated = controller.RotateImages();
  EXPECT_GT(rotated, 0u);
  EXPECT_EQ(controller.stats().rotations, rotated);

  const ReferenceImage* image =
      server.host().mutable_image(server.image_id(0));
  ASSERT_NE(image, nullptr);
  EXPECT_GT(image->current_generation(), old_generation);
  // The live clone keeps serving from the generation it booted.
  EXPECT_EQ(server.host().VmGeneration(pinned_vm), old_generation);

  // A clone spawned after rotation boots the new generation.
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(6)));
  farm.RunFor(Duration::Seconds(2.0));
  const Binding* fresh = farm.gateway().bindings().Find(kFarm.AddressAt(6));
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(server.host().VmGeneration(fresh->vm), image->current_generation());
}

TEST(ControllerTest, FiringAlertActivatesStandby) {
  Honeyfarm farm(SmallFarm(/*hosts=*/2));
  ControllerConfig config = FastController();
  config.standby_hosts = 1;  // host 1 parks kDown
  ScalingRule rule;
  rule.alert = "need_capacity";
  rule.action = ScaleAction::kActivateStandby;
  rule.cooldown = Duration::Minutes(10);
  config.scaling.push_back(rule);
  Controller controller(&farm, config);
  farm.Start();
  controller.Start();
  EXPECT_EQ(controller.pool().state(1), BackendState::kDown);

  // An always-true SLO rule over the controller's own gauge: >= 1 active
  // backend fires it, so the standby activates on the first evaluation.
  WatchdogRule alert;
  alert.name = "need_capacity";
  alert.metric = "ctrl.backends.active";
  alert.kind = WatchdogKind::kAbove;
  alert.raise = 0.5;
  alert.clear = 0.0;
  farm.StartWatchdog(Duration::Millis(500), {alert});

  farm.RunFor(Duration::Seconds(4.0));
  EXPECT_EQ(controller.pool().state(1), BackendState::kActive);
  EXPECT_EQ(controller.stats().scale_actions, 1u);

  // Once active, the standby takes traffic like any pool member.
  for (uint64_t i = 0; i < 6; ++i) {
    farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i)));
  }
  farm.RunFor(Duration::Seconds(2.0));
  EXPECT_GT(farm.sharded_gateway().CountHostBindings(1), 0u);
}

TEST(ControllerTest, ScoredPlacementFollowsHostScoreFn) {
  HoneyfarmConfig config = SmallFarm(/*hosts=*/2);
  config.gateway.placement = PlacementKind::kScored;
  Honeyfarm farm(config);
  farm.set_host_score_fn(
      [](HostId host) { return host == 1 ? 1.0 : 0.0; });
  farm.Start();
  for (uint64_t i = 0; i < 4; ++i) {
    farm.InjectInbound(ProbeSyn(kFarm.AddressAt(i)));
  }
  farm.RunFor(Duration::Seconds(2.0));
  // Every binding chased the higher score.
  EXPECT_EQ(farm.sharded_gateway().CountHostBindings(0), 0u);
  EXPECT_EQ(farm.sharded_gateway().CountHostBindings(1), 4u);
}

TEST(ControllerTest, ControllerDecisionsLandInLedger) {
  Honeyfarm farm(SmallFarm(/*hosts=*/2));
  Controller controller(&farm, FastController());
  farm.Start();
  controller.Start();
  farm.InjectInbound(ProbeSyn(kFarm.AddressAt(2)));
  farm.RunFor(Duration::Seconds(2.0));
  controller.DrainHost(0);
  farm.RunFor(Duration::Seconds(4.0));

  bool saw_drain_begin = false, saw_drain_end = false, saw_state = false;
  for (const auto& record : farm.ledger().Events()) {
    saw_drain_begin |= record.type == LedgerEvent::kCtrlDrainBegin;
    saw_drain_end |= record.type == LedgerEvent::kCtrlDrainEnd;
    saw_state |= record.type == LedgerEvent::kCtrlState;
  }
  EXPECT_TRUE(saw_drain_begin);
  EXPECT_TRUE(saw_drain_end);
  EXPECT_TRUE(saw_state);
}

TEST(ControllerDeathTest, ServerIndexOutOfRangeChecks) {
  Honeyfarm farm(SmallFarm(/*hosts=*/2));
  EXPECT_DEATH(farm.server(99), "out of range");
}

}  // namespace
}  // namespace potemkin
