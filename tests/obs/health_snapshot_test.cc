// Tests for versioned health snapshots and the periodic HealthMonitor.
#include <gtest/gtest.h>

#include "src/base/event_loop.h"
#include "src/obs/health_snapshot.h"
#include "src/obs/metric_registry.h"

namespace potemkin {
namespace {

TEST(HealthSnapshotTest, JsonCarriesSchemaVersionAndMetricRows) {
  HealthSnapshot snapshot;
  snapshot.source = "honeyfarm";
  snapshot.time_ns = 5000000000;
  snapshot.sequence = 3;
  snapshot.metrics.push_back({"gateway.rx.packets", 42.0, "count"});
  snapshot.metrics.push_back({"pool.hit_rate", 0.5, "ratio"});
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"snapshot\": \"honeyfarm\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sequence\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"time_ns\": 5000000000"), std::string::npos);
  // The metric rows share the BENCH report shape, so bench_diff reads both.
  EXPECT_NE(json.find("{\"metric\": \"gateway.rx.packets\", \"value\": 42, "
                      "\"unit\": \"count\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"value\": 0.5"), std::string::npos);
}

TEST(HealthMonitorTest, PeriodicSamplingAtVirtualCadence) {
  EventLoop loop;
  MetricRegistry registry;
  Counter c = registry.RegisterCounter("events", "count");
  HealthMonitor monitor(&loop, &registry, "test");
  monitor.Start(Duration::Seconds(1));
  EXPECT_TRUE(monitor.running());
  loop.ScheduleAfter(Duration::Millis(2500), [&] { c.Inc(7); });
  loop.RunFor(Duration::Seconds(4));  // samples at t=1,2,3,4
  ASSERT_EQ(monitor.history().size(), 4u);
  EXPECT_EQ(monitor.samples_taken(), 4u);
  // Sequence and virtual timestamps are monotone and cadence-aligned.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(monitor.history()[i].sequence, i);
    EXPECT_EQ(monitor.history()[i].time_ns,
              static_cast<int64_t>((i + 1) * 1000000000));
  }
  // The counter bump lands between samples 2 and 3.
  auto value_in = [](const HealthSnapshot& snapshot) {
    for (const auto& sample : snapshot.metrics) {
      if (sample.name == "events") {
        return sample.value;
      }
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value_in(monitor.history()[1]), 0.0);
  EXPECT_DOUBLE_EQ(value_in(monitor.history()[2]), 7.0);
}

TEST(HealthMonitorTest, StopHaltsSamplingAndKeepsHistory) {
  EventLoop loop;
  MetricRegistry registry;
  HealthMonitor monitor(&loop, &registry, "test");
  monitor.Start(Duration::Seconds(1));
  loop.RunFor(Duration::Seconds(2));
  monitor.Stop();
  EXPECT_FALSE(monitor.running());
  loop.RunFor(Duration::Seconds(10));
  EXPECT_EQ(monitor.history().size(), 2u);
  EXPECT_TRUE(loop.Empty());  // the periodic slot was actually cancelled
}

TEST(HealthMonitorTest, SinkSeesEverySample) {
  EventLoop loop;
  MetricRegistry registry;
  HealthMonitor monitor(&loop, &registry, "test");
  uint64_t sink_calls = 0;
  uint64_t last_sequence = 0;
  monitor.set_sink([&](const HealthSnapshot& snapshot) {
    ++sink_calls;
    last_sequence = snapshot.sequence;
  });
  monitor.Start(Duration::Millis(100));
  loop.RunFor(Duration::Millis(350));
  EXPECT_EQ(sink_calls, 3u);
  EXPECT_EQ(last_sequence, 2u);
}

TEST(HealthMonitorTest, HistoryIsBounded) {
  EventLoop loop;
  MetricRegistry registry;
  HealthMonitor monitor(&loop, &registry, "test");
  for (uint64_t i = 0; i < HealthMonitor::kMaxHistory + 10; ++i) {
    monitor.SampleNow();
  }
  EXPECT_EQ(monitor.history().size(), HealthMonitor::kMaxHistory);
  EXPECT_EQ(monitor.samples_taken(), HealthMonitor::kMaxHistory + 10);
  // Oldest entries were the ones discarded.
  EXPECT_EQ(monitor.history().front().sequence, 10u);
}

TEST(HealthMonitorTest, HistoryBoundKeepsJsonSchemaValid) {
  EventLoop loop;
  MetricRegistry registry;
  Counter c = registry.RegisterCounter("events", "count");
  HealthMonitor monitor(&loop, &registry, "bounded");
  for (uint64_t i = 0; i < HealthMonitor::kMaxHistory + 25; ++i) {
    c.Inc();
    monitor.SampleNow();
  }
  ASSERT_EQ(monitor.history().size(), HealthMonitor::kMaxHistory);
  // Every survivor still renders the full versioned layout — eviction must
  // never leave a snapshot that consumers (bench_diff, the flight recorder)
  // would reject.
  for (const HealthSnapshot& snapshot : {monitor.history().front(),
                                         monitor.history().back()}) {
    const std::string json = snapshot.ToJson();
    EXPECT_NE(json.find("\"snapshot\": \"bounded\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"alerts_schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"metrics\": ["), std::string::npos);
    EXPECT_NE(json.find("{\"metric\": \"events\""), std::string::npos);
    // Alerts precede metrics (string-scan consumers depend on the order).
    EXPECT_LT(json.find("\"alerts\""), json.find("\"metrics\""));
    int depth = 0;
    for (char ch : json) {
      depth += ch == '{';
      depth -= ch == '}';
      ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
  }
  // The retained window is the newest samples, values intact.
  EXPECT_EQ(monitor.history().front().sequence, 25u);
  EXPECT_DOUBLE_EQ(monitor.history().back().metrics[0].value,
                   static_cast<double>(HealthMonitor::kMaxHistory + 25));
}

TEST(HealthMonitorTest, StartIsIdempotentWhileRunning) {
  EventLoop loop;
  MetricRegistry registry;
  HealthMonitor monitor(&loop, &registry, "test");
  monitor.Start(Duration::Seconds(1));
  monitor.Start(Duration::Millis(10));  // ignored: already running
  loop.RunFor(Duration::Seconds(2));
  EXPECT_EQ(monitor.history().size(), 2u);
  EXPECT_EQ(loop.pending_events(), 1u);  // exactly one periodic armed
}

}  // namespace
}  // namespace potemkin
