// Tests for the metric registry: handle semantics, same-name aggregation,
// histogram bucketing/quantiles, probes, and handle stability under growth.
#include <gtest/gtest.h>

#include <map>

#include "src/obs/metric_registry.h"

namespace potemkin {
namespace {

std::map<std::string, double> CollectMap(const MetricRegistry& registry) {
  std::map<std::string, double> out;
  for (const auto& sample : registry.Collect()) {
    out[sample.name] = sample.value;
  }
  return out;
}

TEST(MetricRegistryTest, CounterIncrementsAndCollects) {
  MetricRegistry registry;
  Counter c = registry.RegisterCounter("pkts", "count");
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_DOUBLE_EQ(registry.ValueOf("pkts"), 42.0);
  const auto samples = registry.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "pkts");
  EXPECT_EQ(samples[0].unit, "count");
}

TEST(MetricRegistryTest, DefaultConstructedHandlesAreSafeSinks) {
  // An uninstrumented component's handles must be usable without a registry;
  // they write into shared sink cells and never fault.
  Counter c;
  Gauge g;
  FixedHistogram h;
  c.Inc(7);
  g.Set(-3);
  g.Add(1);
  h.Record(12.5);
  SUCCEED();
}

TEST(MetricRegistryTest, SameNameRegistrationAggregates) {
  // Two component instances registering the same metric share storage.
  MetricRegistry registry;
  Counter a = registry.RegisterCounter("clone.completed", "count");
  Counter b = registry.RegisterCounter("clone.completed", "count");
  a.Inc(2);
  b.Inc(3);
  EXPECT_DOUBLE_EQ(registry.ValueOf("clone.completed"), 5.0);
  EXPECT_EQ(registry.counter_count(), 1u);
}

TEST(MetricRegistryTest, GaugeSetAndAdd) {
  MetricRegistry registry;
  Gauge g = registry.RegisterGauge("depth", "items");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  EXPECT_DOUBLE_EQ(registry.ValueOf("depth"), 7.0);
}

TEST(MetricRegistryTest, HandlesStayValidAsRegistryGrows) {
  // Deque storage: the first handle must still hit its own cell after many
  // later registrations (a vector would have reallocated under it).
  MetricRegistry registry;
  Counter first = registry.RegisterCounter("first", "count");
  for (int i = 0; i < 1000; ++i) {
    registry.RegisterCounter("filler_" + std::to_string(i), "count").Inc();
  }
  first.Inc(5);
  EXPECT_DOUBLE_EQ(registry.ValueOf("first"), 5.0);
  EXPECT_DOUBLE_EQ(registry.ValueOf("filler_999"), 1.0);
}

TEST(MetricRegistryTest, HistogramBucketsAndQuantiles) {
  MetricRegistry registry;
  FixedHistogram h =
      registry.RegisterHistogram("lat", "ms", LinearBuckets(10.0, 10.0, 4));
  // Bounds 10,20,30,40 (+overflow). 100 samples in [1..100].
  for (int i = 1; i <= 100; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), 100u);
  const auto values = CollectMap(registry);
  EXPECT_DOUBLE_EQ(values.at("lat_count"), 100.0);
  // p50 lands in the 41..100 overflow bucket -> reported as the last bound.
  EXPECT_DOUBLE_EQ(values.at("lat_p50"), 40.0);
  EXPECT_DOUBLE_EQ(values.at("lat_p99"), 40.0);
  EXPECT_DOUBLE_EQ(values.at("lat_max"), 40.0);
}

TEST(MetricRegistryTest, HistogramQuantileWithinBounds) {
  MetricRegistry registry;
  FixedHistogram h =
      registry.RegisterHistogram("sz", "bytes", LinearBuckets(100.0, 100.0, 4));
  // 99 small samples, one large: p50 in the first bucket, max in the last hit.
  for (int i = 0; i < 99; ++i) {
    h.Record(50.0);
  }
  h.Record(250.0);
  const auto values = CollectMap(registry);
  EXPECT_DOUBLE_EQ(values.at("sz_p50"), 100.0);
  EXPECT_DOUBLE_EQ(values.at("sz_max"), 300.0);
}

TEST(MetricRegistryTest, ExponentialBucketBuilder) {
  const std::vector<double> bounds = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(MetricRegistryTest, ProbesSampleAtCollectTime) {
  MetricRegistry registry;
  int owner = 0;
  double level = 1.5;
  registry.RegisterProbe(&owner, "pool.occupancy", "ratio",
                         [&level] { return level; });
  EXPECT_DOUBLE_EQ(registry.ValueOf("pool.occupancy"), 1.5);
  level = 2.5;  // probes are live views, not cached values
  EXPECT_DOUBLE_EQ(registry.ValueOf("pool.occupancy"), 2.5);
}

TEST(MetricRegistryTest, RemoveProbesDropsOnlyThatOwner) {
  MetricRegistry registry;
  int owner_a = 0;
  int owner_b = 0;
  registry.RegisterProbe(&owner_a, "a.one", "count", [] { return 1.0; });
  registry.RegisterProbe(&owner_a, "a.two", "count", [] { return 2.0; });
  registry.RegisterProbe(&owner_b, "b.one", "count", [] { return 3.0; });
  EXPECT_EQ(registry.probe_count(), 3u);
  registry.RemoveProbes(&owner_a);
  EXPECT_EQ(registry.probe_count(), 1u);
  EXPECT_DOUBLE_EQ(registry.ValueOf("b.one"), 3.0);
  EXPECT_DOUBLE_EQ(registry.ValueOf("a.one"), 0.0);  // gone -> absent -> 0
}

TEST(MetricRegistryTest, DuplicateProbeNameKeepsLatest) {
  MetricRegistry registry;
  int owner = 0;
  registry.RegisterProbe(&owner, "level", "count", [] { return 1.0; });
  registry.RegisterProbe(&owner, "level", "count", [] { return 9.0; });
  EXPECT_DOUBLE_EQ(registry.ValueOf("level"), 9.0);
  // Both slots are retained (removal is by owner), but Collect folds them into
  // a single sample carrying the latest registration's value.
  size_t level_samples = 0;
  for (const auto& sample : registry.Collect()) {
    level_samples += sample.name == "level" ? 1 : 0;
  }
  EXPECT_EQ(level_samples, 1u);
}

TEST(MetricRegistryTest, CollectOrderIsRegistrationOrder) {
  MetricRegistry registry;
  registry.RegisterCounter("z", "count");
  registry.RegisterCounter("a", "count");
  const auto samples = registry.Collect();
  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "z");
  EXPECT_EQ(samples[1].name, "a");
}

}  // namespace
}  // namespace potemkin
