// Tests for the trace recorder: track registration, ring-buffer wrap/drop
// accounting, and the Chrome trace_event JSON export.
#include <gtest/gtest.h>

#include <cstring>

#include "src/obs/trace_recorder.h"

namespace potemkin {
namespace {

TimePoint At(int64_t ns) { return TimePoint::FromNanos(ns); }

TEST(TraceRecorderTest, RegisterTrackFindsByName) {
  TraceRecorder recorder;
  const TraceRecorder::TrackId a = recorder.RegisterTrack("clone/host0");
  const TraceRecorder::TrackId b = recorder.RegisterTrack("clone/host1");
  EXPECT_NE(a, b);
  EXPECT_EQ(recorder.RegisterTrack("clone/host0"), a);
  EXPECT_EQ(recorder.track_count(), 2u);
  EXPECT_EQ(recorder.track_name(a), "clone/host0");
}

TEST(TraceRecorderTest, RecordsSpansOldestFirst) {
  TraceRecorder recorder;
  const TraceRecorder::TrackId track = recorder.RegisterTrack("t");
  recorder.RecordSpan(track, "first", At(100), At(200));
  recorder.RecordSpan(track, "second", At(200), At(350));
  const auto spans = recorder.Spans(track);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "first");
  EXPECT_EQ(spans[0].begin_ns, 100);
  EXPECT_EQ(spans[0].end_ns, 200);
  EXPECT_STREQ(spans[1].name, "second");
  EXPECT_EQ(recorder.dropped(track), 0u);
}

TEST(TraceRecorderTest, BeginEndRoundTrip) {
  TraceRecorder recorder;
  const TraceRecorder::TrackId track = recorder.RegisterTrack("t");
  const TraceRecorder::OpenSpan open = recorder.Begin(track, "phase", At(5));
  recorder.End(open, At(17));
  const auto spans = recorder.Spans(track);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "phase");
  EXPECT_EQ(spans[0].begin_ns, 5);
  EXPECT_EQ(spans[0].end_ns, 17);
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder recorder;
  const TraceRecorder::TrackId track = recorder.RegisterTrack("small", 4);
  static const char* const kNames[] = {"s0", "s1", "s2", "s3", "s4", "s5"};
  for (int64_t i = 0; i < 6; ++i) {
    recorder.RecordSpan(track, kNames[i], At(i * 10), At(i * 10 + 5));
  }
  EXPECT_EQ(recorder.span_count(track), 4u);
  EXPECT_EQ(recorder.dropped(track), 2u);  // s0, s1 overwritten
  const auto spans = recorder.Spans(track);
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_STREQ(spans[0].name, "s2");  // oldest retained
  EXPECT_STREQ(spans[3].name, "s5");  // newest
  EXPECT_EQ(spans[0].begin_ns, 20);
}

TEST(TraceRecorderTest, ChromeJsonShapeAndMicrosecondUnits) {
  TraceRecorder recorder;
  const TraceRecorder::TrackId track = recorder.RegisterTrack("clone");
  recorder.RecordSpan(track, "domain_create", At(1000), At(4000));
  const std::string json = recorder.ToChromeJson();
  // Envelope and units per the trace_event spec.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // One thread_name metadata event per track.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"clone\""), std::string::npos);
  // The span as a complete event: 1000 ns begin -> ts 1.000 us, dur 3.000 us.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"domain_create\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3.000"), std::string::npos);
}

TEST(TraceRecorderTest, OverflowedRingExportsSchemaValidJson) {
  TraceRecorder recorder;
  const TraceRecorder::TrackId track = recorder.RegisterTrack("tiny", 8);
  // Fill well past capacity; only the newest 8 spans survive.
  for (int64_t i = 0; i < 50; ++i) {
    recorder.RecordSpan(track, "span", At(i * 100), At(i * 100 + 50));
  }
  EXPECT_EQ(recorder.span_count(track), 8u);
  EXPECT_EQ(recorder.dropped(track), 42u);
  const std::string json = recorder.ToChromeJson();
  // Envelope still well-formed after eviction.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Exactly 8 "X" events (plus one metadata event), oldest retained first.
  size_t complete_events = 0;
  for (size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++complete_events;
  }
  EXPECT_EQ(complete_events, 8u);
  // Span 42 begins at 4200 ns = 4.200 us: the oldest retained after eviction.
  EXPECT_NE(json.find("\"ts\":4.200"), std::string::npos);
  EXPECT_EQ(json.find("\"ts\":4.100"), std::string::npos);  // span 41: evicted
  // Structurally balanced.
  int depth = 0;
  for (char c : json) {
    depth += c == '{';
    depth -= c == '}';
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceRecorderTest, DeterministicJsonForDeterministicRuns) {
  const auto render = [] {
    TraceRecorder recorder;
    const TraceRecorder::TrackId a = recorder.RegisterTrack("a");
    const TraceRecorder::TrackId b = recorder.RegisterTrack("b");
    recorder.RecordSpan(a, "x", At(10), At(20));
    recorder.RecordSpan(b, "y", At(15), At(40));
    return recorder.ToChromeJson();
  };
  EXPECT_EQ(render(), render());
}

}  // namespace
}  // namespace potemkin
