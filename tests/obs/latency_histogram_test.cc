// Tests for the zero-alloc log-linear latency histogram: bucket math at the
// exact/log boundary, saturation, deterministic cross-shard merge, windowed
// subtraction, and percentile sanity under randomized input.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/obs/metric_registry.h"

namespace potemkin {
namespace {

LatencySnapshot SnapOf(const LatencyHistogram& h) {
  LatencySnapshot snap;
  h.SnapshotInto(&snap);
  return snap;
}

TEST(LatencyHistogramTest, EmptyHistogramQuantilesAreZero) {
  MetricRegistry registry;
  LatencyHistogram h = registry.RegisterLatency("empty", "ns");
  const LatencySnapshot snap = SnapOf(h);
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0u);
  EXPECT_EQ(snap.Quantile(0.999), 0u);
}

TEST(LatencyHistogramTest, SingleSampleDominatesEveryQuantile) {
  MetricRegistry registry;
  LatencyHistogram h = registry.RegisterLatency("single", "ns");
  h.Record(12345);
  const LatencySnapshot snap = SnapOf(h);
  EXPECT_EQ(snap.total, 1u);
  EXPECT_EQ(snap.max, 12345u);
  // One sample: every quantile lands in its bucket; the upper bound must
  // cover the recorded value within one sub-bucket of relative error.
  const uint64_t p50 = snap.Quantile(0.5);
  EXPECT_GE(p50, 12345u);
  EXPECT_LE(p50, 12345u + 12345u / LatencyHistogram::kSubBuckets + 1);
  EXPECT_EQ(snap.Quantile(0.5), snap.Quantile(0.999));
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values below kSubBuckets get dedicated unit-width buckets: quantiles on
  // them are exact, not approximations.
  MetricRegistry registry;
  LatencyHistogram h = registry.RegisterLatency("small", "ns");
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    h.Record(v);
  }
  const LatencySnapshot snap = SnapOf(h);
  EXPECT_EQ(snap.total, LatencyHistogram::kSubBuckets);
  EXPECT_EQ(snap.Quantile(0.0), 0u);
  // 16 samples 0..15: rank of q=0.5 is ceil(0.5*16)-1 = 7.
  EXPECT_EQ(snap.Quantile(0.5), 7u);
  EXPECT_EQ(snap.Quantile(1.0), 15u);
}

TEST(LatencyHistogramTest, SaturatesAtMaxTrackableButKeepsRawMax) {
  MetricRegistry registry;
  LatencyHistogram h = registry.RegisterLatency("sat", "ns");
  const uint64_t huge = ~0ull;  // far beyond kMaxTrackable
  h.Record(huge);
  const LatencySnapshot snap = SnapOf(h);
  EXPECT_EQ(snap.total, 1u);
  // Bucketing clamps to the top bucket...
  EXPECT_LE(snap.Quantile(0.999), LatencyHistogram::kMaxTrackable);
  // ...but the exact maximum survives untouched.
  EXPECT_EQ(snap.max, huge);
  EXPECT_EQ(h.max_value(), huge);
}

TEST(LatencyHistogramTest, CrossShardMergeEqualsSingleStream) {
  // Shard-split recording then deterministic merge must equal one histogram
  // fed the whole stream: the property that makes per-shard cells free.
  MetricRegistry merged_registry;
  MetricRegistry shard_a_registry;
  MetricRegistry shard_b_registry;
  LatencyHistogram whole = merged_registry.RegisterLatency("w", "ns");
  LatencyHistogram shard_a = shard_a_registry.RegisterLatency("s", "ns");
  LatencyHistogram shard_b = shard_b_registry.RegisterLatency("s", "ns");

  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.NextU64() % 5000000;
    whole.Record(v);
    (i % 2 == 0 ? shard_a : shard_b).Record(v);
  }

  LatencySnapshot merged = SnapOf(shard_a);
  const LatencySnapshot b = SnapOf(shard_b);
  merged.MergeFrom(b);
  const LatencySnapshot single = SnapOf(whole);

  EXPECT_EQ(merged.total, single.total);
  EXPECT_EQ(merged.max, single.max);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(merged.Quantile(q), single.Quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, RegistrySharesCellsByName) {
  // Two handles registered under one name in one registry alias the same
  // cells: how sharded gateways aggregate without locks.
  MetricRegistry registry;
  LatencyHistogram a = registry.RegisterLatency("shared", "ns");
  LatencyHistogram b = registry.RegisterLatency("shared", "ns");
  a.Record(100);
  b.Record(200);
  EXPECT_EQ(SnapOf(a).total, 2u);
  EXPECT_EQ(SnapOf(b).total, 2u);
}

TEST(LatencyHistogramTest, QuantilesMonotoneAndAccurateUnderRandomInput) {
  MetricRegistry registry;
  LatencyHistogram h = registry.RegisterLatency("rand", "ns");
  Rng rng(42);
  std::vector<uint64_t> values;
  values.reserve(50000);
  for (int i = 0; i < 50000; ++i) {
    // Mixed scales: exact range, microseconds, and multi-millisecond tail.
    const uint64_t v = (i % 3 == 0) ? rng.NextU64() % 16
                                    : (i % 3 == 1) ? rng.NextU64() % 100000
                                                   : rng.NextU64() % 50000000;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  const LatencySnapshot snap = SnapOf(h);
  ASSERT_EQ(snap.total, values.size());

  uint64_t prev = 0;
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const uint64_t est = snap.Quantile(q);
    EXPECT_GE(est, prev) << "quantiles must be monotone, q=" << q;
    prev = est;
    const uint64_t exact =
        values[static_cast<size_t>(q * static_cast<double>(values.size() - 1))];
    // Log-linear with 16 sub-buckets: <= 1/16 relative error plus rank slop.
    const double bound = static_cast<double>(exact) * (1.0 / 16.0) + 2.0;
    EXPECT_LE(static_cast<double>(est),
              static_cast<double>(exact) + bound + static_cast<double>(exact) * 0.02)
        << "q=" << q << " est=" << est << " exact=" << exact;
    EXPECT_GE(static_cast<double>(est),
              static_cast<double>(exact) * 0.90 - 2.0)
        << "q=" << q << " est=" << est << " exact=" << exact;
  }
}

TEST(LatencyHistogramTest, SubtractBaselineGivesWindowedView) {
  MetricRegistry registry;
  LatencyHistogram h = registry.RegisterLatency("window", "ns");
  for (int i = 0; i < 1000; ++i) {
    h.Record(100);  // first window: all fast
  }
  LatencySnapshot mid = SnapOf(h);
  for (int i = 0; i < 1000; ++i) {
    h.Record(1000000);  // second window: all slow
  }
  LatencySnapshot second = SnapOf(h);
  second.SubtractBaseline(mid);
  EXPECT_EQ(second.total, 1000u);
  // The windowed view must see only the slow half.
  EXPECT_GE(second.Quantile(0.5), 1000000u);
  // The cumulative view's p50 straddles both.
  EXPECT_LE(SnapOf(h).Quantile(0.25), 110u);
}

TEST(LatencyHistogramTest, CollectEmitsSixRowsPerLatency) {
  MetricRegistry registry;
  LatencyHistogram h = registry.RegisterLatency("lat", "ns");
  h.Record(50);
  h.Record(5000);
  const std::vector<MetricRegistry::Sample> samples = registry.Collect();
  std::vector<std::string> names;
  for (const auto& sample : samples) {
    names.push_back(sample.name);
  }
  for (const char* want :
       {"lat_count", "lat_p50", "lat_p90", "lat_p99", "lat_p999", "lat_max"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "missing row " << want;
  }
  for (const auto& sample : samples) {
    if (sample.name == "lat_count") {
      EXPECT_EQ(sample.value, 2.0);
      EXPECT_EQ(sample.unit, "count");
    }
    if (sample.name == "lat_max") {
      EXPECT_EQ(sample.value, 5000.0);
      EXPECT_EQ(sample.unit, "ns");
    }
  }
}

TEST(LatencyHistogramTest, DefaultHandleIsSafeSink) {
  // A default-constructed handle (metrics disabled) must swallow records
  // without touching any registry.
  LatencyHistogram h;
  h.Record(123);
  EXPECT_GE(h.count(), 1u);  // sink cells are shared; count only grows
}

}  // namespace
}  // namespace potemkin
