// Tests for the causal event ledger: ring bounding, session stitching, trip
// handlers, JSON exports, and the base-log hook routing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/obs/event_ledger.h"

namespace potemkin {
namespace {

TEST(EventLedgerTest, AppendAssignsMonotoneSequence) {
  EventLedger ledger(16);
  ledger.Append(LedgerEvent::kFirstContact, 1, 100, 0xAABB, 0xCCDD);
  ledger.Append(LedgerEvent::kCloneRequested, 1, 200);
  const auto events = ledger.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].time_ns, 100);
  EXPECT_EQ(events[0].a, 0xAABBu);
  EXPECT_EQ(events[0].b, 0xCCDDu);
  EXPECT_EQ(events[0].session, 1u);
  EXPECT_EQ(events[0].type, LedgerEvent::kFirstContact);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(ledger.appended(), 2u);
  EXPECT_EQ(ledger.dropped(), 0u);
}

TEST(EventLedgerTest, RingOverflowEvictsOldestKeepsOrder) {
  EventLedger ledger(4);
  for (int64_t i = 0; i < 10; ++i) {
    ledger.Append(LedgerEvent::kPacketDelivered, 1, i * 10, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(ledger.size(), 4u);
  EXPECT_EQ(ledger.appended(), 10u);
  EXPECT_EQ(ledger.dropped(), 6u);
  const auto events = ledger.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained is seq 6; order is oldest -> newest.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
    EXPECT_EQ(events[i].a, 6 + i);
  }
}

TEST(EventLedgerTest, EventsForSessionStitchesOneTimeline) {
  EventLedger ledger(32);
  ledger.Append(LedgerEvent::kFirstContact, 7, 100);
  ledger.Append(LedgerEvent::kFirstContact, 8, 110);
  ledger.Append(LedgerEvent::kCloneDone, 7, 200);
  ledger.Append(LedgerEvent::kGuestRequest, 8, 210);
  ledger.Append(LedgerEvent::kContainmentReflect, 7, 300);
  const auto seven = ledger.EventsForSession(7);
  ASSERT_EQ(seven.size(), 3u);
  EXPECT_EQ(seven[0].type, LedgerEvent::kFirstContact);
  EXPECT_EQ(seven[1].type, LedgerEvent::kCloneDone);
  EXPECT_EQ(seven[2].type, LedgerEvent::kContainmentReflect);
  EXPECT_TRUE(ledger.EventsForSession(99).empty());
}

TEST(EventLedgerTest, TripFiresOnlyForMaskedTypes) {
  EventLedger ledger(16);
  std::vector<EventLedger::Record> tripped;
  ledger.SetTrip(EventLedger::TripBit(LedgerEvent::kContainmentBreach) |
                     EventLedger::TripBit(LedgerEvent::kFatal),
                 [&](const EventLedger::Record& r) { tripped.push_back(r); });
  ledger.Append(LedgerEvent::kPacketDelivered, 1, 10);
  ledger.Append(LedgerEvent::kContainmentBreach, 1, 20, 42, 445);
  ledger.Append(LedgerEvent::kContainmentAllow, 1, 30);
  ASSERT_EQ(tripped.size(), 1u);
  EXPECT_EQ(tripped[0].type, LedgerEvent::kContainmentBreach);
  EXPECT_EQ(tripped[0].a, 42u);
  ledger.ClearTrip();
  ledger.Append(LedgerEvent::kContainmentBreach, 1, 40);
  EXPECT_EQ(tripped.size(), 1u);  // disarmed
}

TEST(EventLedgerTest, JsonLinesSchemaValidAfterOverflow) {
  EventLedger ledger(4);
  for (int64_t i = 0; i < 9; ++i) {
    ledger.Append(LedgerEvent::kPacketDelivered, 3, i, 1, 2);
  }
  const std::string jsonl = ledger.ToJsonLines();
  // Meta line first, with honest append/drop accounting.
  EXPECT_EQ(jsonl.find("{\"ledger\":\"potemkin\",\"schema_version\":1,"
                       "\"appended\":9,\"dropped\":5}\n"),
            0u);
  // One record line per retained record, each carrying the required keys.
  size_t lines = 0;
  for (char c : jsonl) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, 1u + 4u);
  EXPECT_NE(jsonl.find("\"type\":\"packet_delivered\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"session\":3"), std::string::npos);
  EXPECT_NE(jsonl.find("\"seq\":8"), std::string::npos);  // newest survived
  EXPECT_EQ(jsonl.find("\"seq\":4,"), std::string::npos);  // oldest evicted
}

TEST(EventLedgerTest, ChromeJsonHasPerSessionTracks) {
  EventLedger ledger(16);
  ledger.Append(LedgerEvent::kVmRetired, kNoSession, 50, 1, 0);
  ledger.Append(LedgerEvent::kFirstContact, 5, 100);
  const std::string json = ledger.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"farm\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"session 5\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Microsecond timestamps: 100 ns -> 0.100 us.
  EXPECT_NE(json.find("\"ts\":0.100"), std::string::npos);
}

TEST(EventLedgerTest, ResetReallocatesAndClears) {
  EventLedger ledger(4);
  for (int i = 0; i < 6; ++i) {
    ledger.Append(LedgerEvent::kPacketDelivered, 1, i);
  }
  ledger.Reset(8);
  EXPECT_EQ(ledger.capacity(), 8u);
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.appended(), 0u);
  EXPECT_EQ(ledger.dropped(), 0u);
  ledger.Append(LedgerEvent::kFirstContact, 2, 10);
  EXPECT_EQ(ledger.Events().size(), 1u);
}

TEST(EventLedgerTest, LogHookRoutesWarningsIntoLedger) {
  EventLedger ledger(16);
  int64_t clock_ns = 777;
  EventLedger::InstallLogHook(&ledger, [&] { return clock_ns; });
  PK_WARN << "watch out";
  PK_INFO << "not captured";  // info stays out of the ledger
  clock_ns = 888;
  PK_ERROR << "bad";
  EventLedger::InstallLogHook(nullptr, nullptr);
  PK_WARN << "after uninstall";  // must not land

  const auto events = ledger.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, LedgerEvent::kLogWarning);
  EXPECT_EQ(events[0].time_ns, 777);
  EXPECT_EQ(events[1].type, LedgerEvent::kLogError);
  EXPECT_EQ(events[1].time_ns, 888);
  // The site decodes into the JSONL as file:line.
  const std::string jsonl = ledger.ToJsonLines();
  EXPECT_NE(jsonl.find("\"site\":\"event_ledger_test.cc:"), std::string::npos);
}

TEST(EventLedgerTest, LogHookPreservesStderrOrdering) {
  // The hook must run in the log macro itself (after the fprintf), so ledger
  // order matches stderr order: warn, then error.
  EventLedger ledger(16);
  EventLedger::InstallLogHook(&ledger, [] { return int64_t{0}; });
  PK_WARN << "first";
  PK_ERROR << "second";
  EventLedger::InstallLogHook(nullptr, nullptr);
  const auto events = ledger.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_EQ(events[0].type, LedgerEvent::kLogWarning);
  EXPECT_EQ(events[1].type, LedgerEvent::kLogError);
}

}  // namespace
}  // namespace potemkin
