// Tests for the SLO watchdog: hysteresis (exactly one alert across an
// oscillation), rate and stuck detectors, cooldown gating, and the alerts
// section exported into snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/obs/event_ledger.h"
#include "src/obs/health_snapshot.h"
#include "src/obs/watchdog.h"

namespace potemkin {
namespace {

HealthSnapshot Snap(int64_t time_ns, const std::string& metric, double value) {
  HealthSnapshot snapshot;
  snapshot.source = "test";
  snapshot.time_ns = time_ns;
  snapshot.metrics.push_back({metric, value, "count"});
  return snapshot;
}

constexpr int64_t kSecond = 1000000000;

TEST(WatchdogTest, ThresholdRuleFiresAndClearsWithHysteresis) {
  EventLedger ledger(64);
  Watchdog dog(&ledger);
  dog.AddRule({"latency", "m", WatchdogKind::kAbove, /*raise=*/100.0,
               /*clear=*/50.0, Duration::Zero()});

  dog.Evaluate(Snap(1 * kSecond, "m", 80.0));  // below raise: quiet
  EXPECT_FALSE(dog.state(0).firing);
  dog.Evaluate(Snap(2 * kSecond, "m", 150.0));  // crosses raise
  EXPECT_TRUE(dog.state(0).firing);
  EXPECT_EQ(dog.state(0).raises, 1u);
  // Oscillating in the hysteresis band (50..100) must NOT re-alert or clear.
  dog.Evaluate(Snap(3 * kSecond, "m", 90.0));
  dog.Evaluate(Snap(4 * kSecond, "m", 140.0));
  dog.Evaluate(Snap(5 * kSecond, "m", 70.0));
  EXPECT_TRUE(dog.state(0).firing);
  EXPECT_EQ(dog.state(0).raises, 1u);  // exactly one alert
  // Only crossing `clear` ends it.
  dog.Evaluate(Snap(6 * kSecond, "m", 40.0));
  EXPECT_FALSE(dog.state(0).firing);
  EXPECT_EQ(dog.state(0).clears, 1u);

  // The ledger saw exactly one raise and one clear for rule 0.
  size_t raised = 0;
  size_t cleared = 0;
  for (const auto& r : ledger.Events()) {
    raised += r.type == LedgerEvent::kAlertRaised;
    cleared += r.type == LedgerEvent::kAlertCleared;
  }
  EXPECT_EQ(raised, 1u);
  EXPECT_EQ(cleared, 1u);
}

TEST(WatchdogTest, CooldownGatesReRaise) {
  Watchdog dog;
  dog.AddRule({"flappy", "m", WatchdogKind::kAbove, 100.0, 50.0,
               Duration::Seconds(10)});
  dog.Evaluate(Snap(1 * kSecond, "m", 150.0));  // first raise: ungated
  dog.Evaluate(Snap(2 * kSecond, "m", 10.0));   // clear
  dog.Evaluate(Snap(3 * kSecond, "m", 150.0));  // 2s after raise: cooled down? no
  EXPECT_FALSE(dog.state(0).firing);
  EXPECT_EQ(dog.state(0).raises, 1u);
  dog.Evaluate(Snap(12 * kSecond, "m", 150.0));  // 11s after raise: allowed
  EXPECT_TRUE(dog.state(0).firing);
  EXPECT_EQ(dog.state(0).raises, 2u);
}

TEST(WatchdogTest, RateRuleNeedsTwoSamplesAndMeasuresPerSecond) {
  Watchdog dog;
  dog.AddRule({"drops", "m", WatchdogKind::kRateAbove, /*raise=*/100.0,
               /*clear=*/10.0, Duration::Zero()});
  dog.Evaluate(Snap(1 * kSecond, "m", 0.0));  // no rate yet
  EXPECT_FALSE(dog.state(0).firing);
  // +50 over 1s = 50/s: under threshold.
  dog.Evaluate(Snap(2 * kSecond, "m", 50.0));
  EXPECT_FALSE(dog.state(0).firing);
  // +300 over 1s = 300/s: over.
  dog.Evaluate(Snap(3 * kSecond, "m", 350.0));
  EXPECT_TRUE(dog.state(0).firing);
  EXPECT_DOUBLE_EQ(dog.state(0).observed, 300.0);
  // Counter flat again -> rate 0 <= clear.
  dog.Evaluate(Snap(4 * kSecond, "m", 350.0));
  EXPECT_FALSE(dog.state(0).firing);
}

TEST(WatchdogTest, ZeroRateThresholdCatchesFirstEscape) {
  // The containment_breach starter rule uses raise=0: ANY counter growth fires.
  Watchdog dog;
  dog.AddRule({"breach", "m", WatchdogKind::kRateAbove, 0.0, 0.0,
               Duration::Zero()});
  dog.Evaluate(Snap(1 * kSecond, "m", 0.0));
  dog.Evaluate(Snap(2 * kSecond, "m", 0.0));
  EXPECT_FALSE(dog.state(0).firing);
  dog.Evaluate(Snap(3 * kSecond, "m", 1.0));  // one escaped packet
  EXPECT_TRUE(dog.state(0).firing);
}

TEST(WatchdogTest, StuckRuleCountsConsecutiveIdenticalSamples) {
  Watchdog dog;
  WatchdogRule rule;
  rule.name = "wedged";
  rule.metric = "m";
  rule.kind = WatchdogKind::kStuck;
  rule.cooldown = Duration::Zero();
  rule.stuck_samples = 3;
  dog.AddRule(rule);
  dog.Evaluate(Snap(1 * kSecond, "m", 5.0));
  dog.Evaluate(Snap(2 * kSecond, "m", 5.0));
  dog.Evaluate(Snap(3 * kSecond, "m", 5.0));
  EXPECT_FALSE(dog.state(0).firing);  // 2 consecutive repeats so far
  dog.Evaluate(Snap(4 * kSecond, "m", 5.0));  // 3rd repeat
  EXPECT_TRUE(dog.state(0).firing);
  dog.Evaluate(Snap(5 * kSecond, "m", 6.0));  // it moved: clear
  EXPECT_FALSE(dog.state(0).firing);
}

TEST(WatchdogTest, AbsentMetricKeepsRuleState) {
  Watchdog dog;
  dog.AddRule({"latency", "missing", WatchdogKind::kAbove, 100.0, 50.0,
               Duration::Zero()});
  dog.Evaluate(Snap(1 * kSecond, "other", 999.0));
  EXPECT_FALSE(dog.state(0).firing);
  EXPECT_FALSE(dog.state(0).has_prev);
}

TEST(WatchdogTest, MonitorExportsAlertsSectionBeforeMetrics) {
  EventLoop loop;
  MetricRegistry registry;
  double latency = 10.0;
  registry.RegisterProbe(&registry, "clone.p99", "ms", [&] { return latency; });
  HealthMonitor monitor(&loop, &registry, "farm");
  EventLedger ledger(64);
  Watchdog dog(&ledger);
  dog.AddRule({"clone_latency", "clone.p99", WatchdogKind::kAbove, 100.0, 50.0,
               Duration::Zero()});
  monitor.set_watchdog(&dog);

  const HealthSnapshot& quiet = monitor.SampleNow();
  EXPECT_TRUE(quiet.alerts.empty());
  const std::string quiet_json = quiet.ToJson();
  EXPECT_NE(quiet_json.find("\"alerts_schema_version\": 1"), std::string::npos);
  EXPECT_NE(quiet_json.find("\"alerts\": []"), std::string::npos);

  latency = 500.0;
  const HealthSnapshot& paged = monitor.SampleNow();
  ASSERT_EQ(paged.alerts.size(), 1u);
  EXPECT_EQ(paged.alerts[0].rule, "clone_latency");
  EXPECT_EQ(paged.alerts[0].metric, "clone.p99");
  EXPECT_DOUBLE_EQ(paged.alerts[0].value, 500.0);
  EXPECT_DOUBLE_EQ(paged.alerts[0].threshold, 100.0);
  const std::string json = paged.ToJson();
  // The alert object precedes the "metrics" key so string-scanning consumers
  // (bench_diff, metrics_dump) never mistake it for a metric row.
  const size_t alerts_at = json.find("\"alerts\"");
  const size_t metrics_at = json.find("\"metrics\"");
  ASSERT_NE(alerts_at, std::string::npos);
  ASSERT_NE(metrics_at, std::string::npos);
  EXPECT_LT(alerts_at, metrics_at);
  EXPECT_NE(json.find("\"alert\": \"clone_latency\""), std::string::npos);
  registry.RemoveProbes(&registry);
}

TEST(WatchdogTest, DefaultFarmRulesCoverTheStarterSet) {
  const auto rules = DefaultFarmRules();
  ASSERT_EQ(rules.size(), 7u);
  std::vector<std::string> names;
  for (const auto& rule : rules) {
    names.push_back(rule.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "clone_latency_p99"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "frame_pool_watermark"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "recycler_backlog"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "containment_breach"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "gateway_drop_rate"),
            names.end());
  // Percentile rules over the latency histograms (sustained-breach form).
  EXPECT_NE(std::find(names.begin(), names.end(), "gateway_datapath_p99"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "clone_total_p99"),
            names.end());
  for (const auto& rule : rules) {
    if (rule.name == "gateway_datapath_p99" || rule.name == "clone_total_p99") {
      EXPECT_EQ(rule.for_windows, 3u) << rule.name;
    } else {
      EXPECT_EQ(rule.for_windows, 1u) << rule.name;
    }
  }
}

TEST(WatchdogTest, ForWindowsRequiresSustainedBreach) {
  EventLedger ledger(64);
  Watchdog dog(&ledger);
  WatchdogRule rule{"hot_p99", "m_p99", WatchdogKind::kAbove, /*raise=*/100.0,
                    /*clear=*/50.0, Duration::Zero()};
  rule.for_windows = 3;
  dog.AddRule(rule);

  // Two consecutive breaches: still quiet.
  dog.Evaluate(Snap(1 * kSecond, "m_p99", 200.0));
  dog.Evaluate(Snap(2 * kSecond, "m_p99", 200.0));
  EXPECT_FALSE(dog.state(0).firing);
  EXPECT_EQ(dog.state(0).raises, 0u);
  // Third consecutive breach: now sustained, fire once.
  dog.Evaluate(Snap(3 * kSecond, "m_p99", 200.0));
  EXPECT_TRUE(dog.state(0).firing);
  EXPECT_EQ(dog.state(0).raises, 1u);
}

TEST(WatchdogTest, ForWindowsStreakResetsOnDip) {
  EventLedger ledger(64);
  Watchdog dog(&ledger);
  WatchdogRule rule{"hot_p99", "m_p99", WatchdogKind::kAbove, /*raise=*/100.0,
                    /*clear=*/50.0, Duration::Zero()};
  rule.for_windows = 3;
  dog.AddRule(rule);

  // breach, breach, dip, breach, breach: never 3 in a row -> never fires.
  dog.Evaluate(Snap(1 * kSecond, "m_p99", 200.0));
  dog.Evaluate(Snap(2 * kSecond, "m_p99", 200.0));
  dog.Evaluate(Snap(3 * kSecond, "m_p99", 10.0));
  dog.Evaluate(Snap(4 * kSecond, "m_p99", 200.0));
  dog.Evaluate(Snap(5 * kSecond, "m_p99", 200.0));
  EXPECT_FALSE(dog.state(0).firing);
  EXPECT_EQ(dog.state(0).raises, 0u);
  // A third consecutive breach completes the streak.
  dog.Evaluate(Snap(6 * kSecond, "m_p99", 200.0));
  EXPECT_TRUE(dog.state(0).firing);
}

TEST(WatchdogTest, DefaultForWindowsKeepsFireOnFirstBreach) {
  // for_windows defaults to 1: historical semantics exactly.
  EventLedger ledger(64);
  Watchdog dog(&ledger);
  dog.AddRule({"latency", "m", WatchdogKind::kAbove, /*raise=*/100.0,
               /*clear=*/50.0, Duration::Zero()});
  dog.Evaluate(Snap(1 * kSecond, "m", 150.0));
  EXPECT_TRUE(dog.state(0).firing);
}

}  // namespace
}  // namespace potemkin
