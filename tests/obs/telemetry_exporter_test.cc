// Tests for the JSONL telemetry exporter: schema shape, EventLoop cadence,
// bounded ring retention, determinism across identically-driven registries,
// the alerts column, and the Prometheus one-shot rendering.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/event_loop.h"
#include "src/obs/event_ledger.h"
#include "src/obs/metric_registry.h"
#include "src/obs/telemetry_exporter.h"
#include "src/obs/watchdog.h"

namespace potemkin {
namespace {

TEST(TelemetryExporterTest, HeaderCarriesSchemaAndConfig) {
  EventLoop loop;
  MetricRegistry registry;
  TelemetryExporterConfig config;
  config.source = "test-farm";
  config.interval = Duration::Millis(250);
  config.ring_capacity = 8;
  TelemetryExporter exporter(&loop, &registry, config);
  const std::string header = exporter.HeaderLine();
  EXPECT_NE(header.find("\"telemetry\":\"potemkin\""), std::string::npos);
  EXPECT_NE(header.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(header.find("\"source\":\"test-farm\""), std::string::npos);
  EXPECT_NE(header.find("\"interval_ns\":250000000"), std::string::npos);
  EXPECT_NE(header.find("\"ring_capacity\":8"), std::string::npos);
}

TEST(TelemetryExporterTest, SampleLineShape) {
  EventLoop loop;
  MetricRegistry registry;
  Counter packets = registry.RegisterCounter("rx.packets", "pkts");
  LatencyHistogram lat = registry.RegisterLatency("lat_ns", "ns");
  packets.Inc(3);
  lat.Record(1000);
  TelemetryExporter exporter(&loop, &registry);
  const std::string& line = exporter.SampleNow();
  EXPECT_NE(line.find("{\"seq\":0,\"time_ns\":0,\"alerts\":[],\"metrics\":[["),
            std::string::npos);
  EXPECT_NE(line.find("[\"rx.packets\",3]"), std::string::npos);
  EXPECT_NE(line.find("[\"lat_ns_p99\","), std::string::npos);
  EXPECT_NE(line.find("[\"lat_ns_count\",1]"), std::string::npos);
  // Well-formed close: metrics array then object.
  EXPECT_EQ(line.substr(line.size() - 2), "]}");
  EXPECT_EQ(exporter.sequence(), 1u);
}

TEST(TelemetryExporterTest, EmptyRegistryStillWellFormed) {
  EventLoop loop;
  MetricRegistry registry;
  TelemetryExporter exporter(&loop, &registry);
  const std::string& line = exporter.SampleNow();
  EXPECT_NE(line.find("\"metrics\":[]}"), std::string::npos);
}

TEST(TelemetryExporterTest, PeriodicTicksOnLoopCadence) {
  EventLoop loop;
  MetricRegistry registry;
  Counter ticks = registry.RegisterCounter("ticks", "count");
  TelemetryExporterConfig config;
  config.interval = Duration::Seconds(1);
  TelemetryExporter exporter(&loop, &registry, config);
  std::vector<std::string> seen;
  exporter.set_sink([&](const std::string& line) { seen.push_back(line); });
  exporter.Start();
  ticks.Inc(1);
  loop.RunFor(Duration::Seconds(5));
  exporter.Stop();
  loop.RunFor(Duration::Seconds(5));  // stopped: no further samples
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(exporter.sequence(), 5u);
  // First tick at t=1s, not t=0.
  EXPECT_NE(seen[0].find("\"time_ns\":1000000000"), std::string::npos);
}

TEST(TelemetryExporterTest, RingBoundsRetentionAndCountsDrops) {
  EventLoop loop;
  MetricRegistry registry;
  TelemetryExporterConfig config;
  config.ring_capacity = 4;
  TelemetryExporter exporter(&loop, &registry, config);
  for (int i = 0; i < 10; ++i) {
    exporter.SampleNow();
  }
  EXPECT_EQ(exporter.sequence(), 10u);
  EXPECT_EQ(exporter.retained(), 4u);
  EXPECT_EQ(exporter.dropped(), 6u);
  // Oldest retained is seq 6.
  EXPECT_NE(exporter.RetainedLine(0).find("\"seq\":6"), std::string::npos);
  EXPECT_NE(exporter.RetainedLine(3).find("\"seq\":9"), std::string::npos);
}

TEST(TelemetryExporterTest, IdenticallyDrivenRegistriesProduceIdenticalSeries) {
  // The determinism contract CI leans on: same updates, same cadence ->
  // byte-identical lines.
  auto run = [] {
    EventLoop loop;
    MetricRegistry registry;
    Counter c = registry.RegisterCounter("c", "count");
    LatencyHistogram h = registry.RegisterLatency("h_ns", "ns");
    TelemetryExporter exporter(&loop, &registry);
    std::string series;
    exporter.set_sink([&](const std::string& line) {
      series += line;
      series += '\n';
    });
    exporter.Start();
    for (int t = 0; t < 5; ++t) {
      c.Inc(3);
      h.Record(static_cast<uint64_t>(1000 * (t + 1)));
      loop.RunFor(Duration::Seconds(1));
    }
    return exporter.HeaderLine() + "\n" + series;
  };
  EXPECT_EQ(run(), run());
}

TEST(TelemetryExporterTest, AlertsColumnListsFiringRules) {
  EventLoop loop;
  MetricRegistry registry;
  Gauge depth = registry.RegisterGauge("queue.depth", "pkts");
  EventLedger ledger(64);
  Watchdog dog(&ledger);
  dog.AddRule({"deep_queue", "queue.depth", WatchdogKind::kAbove,
               /*raise=*/100.0, /*clear=*/50.0, Duration::Zero()});
  TelemetryExporter exporter(&loop, &registry);
  exporter.set_watchdog(&dog);

  depth.Set(10);
  HealthSnapshot quiet;
  quiet.metrics.push_back({"queue.depth", 10.0, "pkts"});
  dog.Evaluate(quiet);
  EXPECT_NE(exporter.SampleNow().find("\"alerts\":[]"), std::string::npos);

  depth.Set(500);
  HealthSnapshot loud;
  loud.time_ns = 1;
  loud.metrics.push_back({"queue.depth", 500.0, "pkts"});
  dog.Evaluate(loud);
  EXPECT_NE(exporter.SampleNow().find("\"alerts\":[\"deep_queue\"]"),
            std::string::npos);
}

TEST(TelemetryExporterTest, WriteJsonlEmitsHeaderThenRetainedWindow) {
  EventLoop loop;
  MetricRegistry registry;
  Counter c = registry.RegisterCounter("c", "count");
  c.Inc(1);
  TelemetryExporterConfig config;
  config.ring_capacity = 2;
  TelemetryExporter exporter(&loop, &registry, config);
  exporter.SampleNow();
  exporter.SampleNow();
  exporter.SampleNow();
  const std::string path = ::testing::TempDir() + "/telemetry_test.jsonl";
  ASSERT_TRUE(exporter.WriteJsonl(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  // Header first, then the retained window (seq 1 and 2; seq 0 rotated out).
  EXPECT_EQ(text.find("\"telemetry\":\"potemkin\""), text.find("{") + 1);
  EXPECT_EQ(text.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(text.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(text.find("\"seq\":2"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(TelemetryExporterTest, PrometheusTextRendersMetricsAndAlerts) {
  HealthSnapshot snapshot;
  snapshot.source = "farm";
  snapshot.metrics.push_back({"gateway.rx.packets", 42.0, "pkts"});
  snapshot.metrics.push_back({"lat_p99", 1.5e6, "ns"});
  AlertSample alert;
  alert.rule = "hot_p99";
  alert.metric = "lat_p99";
  alert.firing = true;
  snapshot.alerts.push_back(alert);
  const std::string text = PrometheusTextFor(snapshot);
  // Dots sanitized to underscores, unit as label, exact value.
  EXPECT_NE(text.find("potemkin_gateway_rx_packets{unit=\"pkts\"} 42"),
            std::string::npos);
  EXPECT_NE(text.find("potemkin_lat_p99{unit=\"ns\"} 1500000"),
            std::string::npos);
  EXPECT_NE(text.find(
                "potemkin_alert_firing{rule=\"hot_p99\",metric=\"lat_p99\"} 1"),
            std::string::npos);
}

}  // namespace
}  // namespace potemkin
