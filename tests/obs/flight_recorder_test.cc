// Tests for the post-mortem flight recorder: trip wiring, artifact schema,
// dump budgets and debounce.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/base/event_loop.h"
#include "src/obs/event_ledger.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/health_snapshot.h"

namespace potemkin {
namespace {

std::string ReadAll(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return "";
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return text;
}

TEST(FlightRecorderTest, BreachTripsASchemaValidDumpWithSnapshots) {
  EventLoop loop;
  MetricRegistry registry;
  HealthMonitor monitor(&loop, &registry, "farm");
  monitor.SampleNow();
  monitor.SampleNow();
  monitor.SampleNow();  // three in history; artifact must carry the last two

  EventLedger ledger(64);
  FlightRecorderConfig config;
  config.output_dir = ::testing::TempDir();
  config.prefix = "fr_breach";
  FlightRecorder recorder(config, &ledger, &monitor);
  recorder.Arm();
  EXPECT_TRUE(recorder.armed());

  ledger.Append(LedgerEvent::kFirstContact, 1, 100, 42, 43);
  ledger.Append(LedgerEvent::kContainmentAllow, 1, 150);  // not a trip type
  EXPECT_EQ(recorder.dumps_written(), 0u);
  ledger.Append(LedgerEvent::kContainmentBreach, 1, 200, 99, 445);
  ASSERT_EQ(recorder.dumps_written(), 1u);

  const std::string text = ReadAll(recorder.last_path());
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"postmortem\": \"potemkin\""), std::string::npos);
  EXPECT_NE(text.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"reason\": \"containment_breach\""), std::string::npos);
  EXPECT_NE(text.find("\"trigger_seq\": 2"), std::string::npos);
  // The ledger tail, byte-compatible with the JSONL record shape.
  EXPECT_NE(text.find("\"type\":\"first_contact\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"containment_breach\""), std::string::npos);
  // The last two health snapshots, still versioned.
  EXPECT_NE(text.find("\"snapshots\": ["), std::string::npos);
  EXPECT_NE(text.find("\"sequence\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"sequence\": 2"), std::string::npos);
  EXPECT_EQ(text.find("\"sequence\": 0,"), std::string::npos);
  // Balanced braces: the artifact parses as one JSON object.
  int depth = 0;
  for (char c : text) {
    depth += c == '{';
    depth -= c == '}';
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(FlightRecorderTest, EventTailIsBounded) {
  EventLedger ledger(64);
  FlightRecorderConfig config;
  config.max_events = 3;
  FlightRecorder recorder(config, &ledger, nullptr);
  for (int64_t i = 0; i < 10; ++i) {
    ledger.Append(LedgerEvent::kPacketDelivered, 1, i);
  }
  const std::string json = recorder.BuildDumpJson("manual", 999, 0);
  EXPECT_EQ(json.find("\"seq\":6,"), std::string::npos);  // older than the tail
  EXPECT_NE(json.find("\"seq\":7,"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":9,"), std::string::npos);
}

TEST(FlightRecorderTest, DumpBudgetAndDebounce) {
  EventLedger ledger(64);
  FlightRecorderConfig config;
  config.output_dir = ::testing::TempDir();
  config.prefix = "fr_budget";
  config.max_dumps = 2;
  config.min_interval = Duration::Seconds(1);
  FlightRecorder recorder(config, &ledger, nullptr);
  recorder.Arm();

  constexpr int64_t kSecond = 1000000000;
  ledger.Append(LedgerEvent::kContainmentBreach, 1, 0);
  EXPECT_EQ(recorder.dumps_written(), 1u);
  // Within the debounce window: suppressed.
  ledger.Append(LedgerEvent::kContainmentBreach, 1, kSecond / 2);
  EXPECT_EQ(recorder.dumps_written(), 1u);
  EXPECT_EQ(recorder.dumps_suppressed(), 1u);
  // Past the window: second (and last budgeted) dump.
  ledger.Append(LedgerEvent::kContainmentBreach, 1, 2 * kSecond);
  EXPECT_EQ(recorder.dumps_written(), 2u);
  // Budget exhausted forever after.
  ledger.Append(LedgerEvent::kContainmentBreach, 1, 100 * kSecond);
  EXPECT_EQ(recorder.dumps_written(), 2u);
  EXPECT_EQ(recorder.dumps_suppressed(), 2u);
}

TEST(FlightRecorderTest, DisarmStopsTripsAndDestructorDisarms) {
  EventLedger ledger(16);
  FlightRecorderConfig config;
  config.output_dir = ::testing::TempDir();
  {
    FlightRecorder recorder(config, &ledger, nullptr);
    recorder.Arm();
    recorder.Disarm();
    EXPECT_FALSE(recorder.armed());
    EXPECT_EQ(ledger.trip_mask(), 0u);
    recorder.Arm();
    EXPECT_NE(ledger.trip_mask(), 0u);
  }
  // Destroyed while armed: the trip must not dangle.
  EXPECT_EQ(ledger.trip_mask(), 0u);
  ledger.Append(LedgerEvent::kContainmentBreach, 1, 0);  // must not crash
}

}  // namespace
}  // namespace potemkin
