// Flash-clone vs full-copy mechanics and host admission control.
#include "src/hv/physical_host.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/hv/page_dedup.h"

namespace potemkin {
namespace {

PhysicalHostConfig SmallHost(uint64_t memory_mb = 16) {
  PhysicalHostConfig config;
  config.memory_mb = memory_mb;
  config.content_mode = ContentMode::kStoreBytes;
  config.domain_overhead_frames = 8;
  config.admission_reserve_frames = 16;
  return config;
}

ReferenceImageConfig SmallImage() {
  ReferenceImageConfig config;
  config.num_pages = 128;  // 512 KiB image
  config.content_seed = 5;
  return config;
}

TEST(PhysicalHostTest, FlashCloneSharesAllImagePages) {
  PhysicalHost host(SmallHost());
  const ImageId image = host.RegisterImage(SmallImage());
  const uint64_t frames_after_image = host.allocator().used_frames();
  EXPECT_EQ(frames_after_image, 128u);

  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "clone-1");
  ASSERT_NE(vm, nullptr);
  // Flash cloning allocates only the domain overhead, zero guest page copies.
  EXPECT_EQ(host.allocator().used_frames(), frames_after_image + 8);
  EXPECT_EQ(vm->memory().shared_pages(), 128u);
  EXPECT_EQ(vm->memory().private_pages(), 0u);
  EXPECT_EQ(vm->state(), VmState::kCloning);
}

TEST(PhysicalHostTest, FlashCloneSeesImageContent) {
  PhysicalHost host(SmallHost());
  const auto image_config = SmallImage();
  const ImageId image = host.RegisterImage(image_config);
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "clone-1");
  ASSERT_NE(vm, nullptr);
  for (Gpfn g = 0; g < 128; g += 31) {
    const auto expected = ReferenceImage::ExpectedPageContent(image_config, g);
    std::vector<uint8_t> actual(kPageSize);
    EXPECT_EQ(vm->memory().ReadGuest(static_cast<uint64_t>(g) * kPageSize,
                                     std::span(actual.data(), actual.size())),
              MemAccessResult::kOk);
    EXPECT_EQ(actual, expected) << "page " << g;
  }
}

TEST(PhysicalHostTest, CloneWritesDoNotContaminateImageOrSiblings) {
  PhysicalHost host(SmallHost());
  const auto image_config = SmallImage();
  const ImageId image = host.RegisterImage(image_config);
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(image, CloneKind::kFlash, "b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  const std::vector<uint8_t> patch = {0x66};
  a->memory().WriteGuest(0, std::span(patch.data(), 1));

  const auto expected = ReferenceImage::ExpectedPageContent(image_config, 0);
  std::vector<uint8_t> b_page(kPageSize);
  b->memory().ReadGuest(0, std::span(b_page.data(), b_page.size()));
  EXPECT_EQ(b_page, expected);

  std::vector<uint8_t> a_byte(1);
  a->memory().ReadGuest(0, std::span(a_byte.data(), 1));
  EXPECT_EQ(a_byte[0], 0x66);
}

TEST(PhysicalHostTest, FullCopyCloneCopiesEveryPage) {
  PhysicalHost host(SmallHost());
  const ImageId image = host.RegisterImage(SmallImage());
  const uint64_t before = host.allocator().used_frames();
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFullCopy, "fat");
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(host.allocator().used_frames(), before + 128 + 8);
  EXPECT_EQ(vm->memory().private_pages(), 128u);
  EXPECT_EQ(vm->memory().shared_pages(), 0u);
}

TEST(PhysicalHostTest, ManyMoreFlashClonesThanFullCopiesFit) {
  // 16 MiB host = 4096 frames; image 128 pages.
  PhysicalHost flash_host(SmallHost());
  PhysicalHost copy_host(SmallHost());
  const ImageId flash_image = flash_host.RegisterImage(SmallImage());
  const ImageId copy_image = copy_host.RegisterImage(SmallImage());
  int flash_count = 0;
  while (flash_host.CreateClone(flash_image, CloneKind::kFlash, "f") != nullptr) {
    ++flash_count;
  }
  int copy_count = 0;
  while (copy_host.CreateClone(copy_image, CloneKind::kFullCopy, "c") != nullptr) {
    ++copy_count;
  }
  EXPECT_GT(flash_count, copy_count * 5) << "delta virtualization should fit >5x";
}

TEST(PhysicalHostTest, AdmissionControlRefusesBeforeExhaustion) {
  PhysicalHostConfig config = SmallHost(1);  // 256 frames total
  PhysicalHost host(config);
  ReferenceImageConfig image_config;
  image_config.num_pages = 128;
  const ImageId image = host.RegisterImage(image_config);
  // Full-copy needs 128 + 8 + 16 reserve = 152 > 128 remaining -> refused.
  EXPECT_FALSE(host.CanAdmit(image, CloneKind::kFullCopy));
  EXPECT_EQ(host.CreateClone(image, CloneKind::kFullCopy, "x"), nullptr);
  EXPECT_EQ(host.total_clone_failures(), 1u);
  // Flash clone still fits.
  EXPECT_TRUE(host.CanAdmit(image, CloneKind::kFlash));
  EXPECT_NE(host.CreateClone(image, CloneKind::kFlash, "y"), nullptr);
}

TEST(PhysicalHostTest, DestroyReleasesEverything) {
  PhysicalHost host(SmallHost());
  const ImageId image = host.RegisterImage(SmallImage());
  const uint64_t baseline = host.allocator().used_frames();
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "tmp");
  ASSERT_NE(vm, nullptr);
  const std::vector<uint8_t> data = {1};
  vm->memory().WriteGuest(0, std::span(data.data(), 1));  // one private page
  EXPECT_GT(host.allocator().used_frames(), baseline);
  const VmId id = vm->id();
  EXPECT_TRUE(host.DestroyVm(id));
  EXPECT_EQ(host.allocator().used_frames(), baseline);
  EXPECT_EQ(host.FindVm(id), nullptr);
  EXPECT_FALSE(host.DestroyVm(id));
  EXPECT_EQ(host.live_vm_count(), 0u);
  EXPECT_EQ(host.total_destroyed(), 1u);
}

TEST(PhysicalHostTest, VmIdsGloballyUnique) {
  // VM ids carry the host id in the upper 32 bits: hosts with distinct ids
  // (as the farm always assigns) can never collide.
  PhysicalHostConfig config_a = SmallHost();
  PhysicalHostConfig config_b = SmallHost();
  config_a.id = 0;
  config_b.id = 1;
  PhysicalHost host_a(config_a);
  PhysicalHost host_b(config_b);
  const ImageId image_a = host_a.RegisterImage(SmallImage());
  const ImageId image_b = host_b.RegisterImage(SmallImage());
  VirtualMachine* a = host_a.CreateClone(image_a, CloneKind::kFlash, "a");
  VirtualMachine* b = host_b.CreateClone(image_b, CloneKind::kFlash, "b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->id(), b->id());
}

TEST(PhysicalHostTest, VmIdsDeterministicPerInstance) {
  // Two identical hosts built back to back in one process mint the same ids —
  // the counter is per-host state, not a process global, so replayed runs
  // produce byte-identical ledgers.
  VmId first_ids[2];
  for (int round = 0; round < 2; ++round) {
    PhysicalHost host(SmallHost());
    const ImageId image = host.RegisterImage(SmallImage());
    VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "vm");
    ASSERT_NE(vm, nullptr);
    first_ids[round] = vm->id();
  }
  EXPECT_EQ(first_ids[0], first_ids[1]);
}

TEST(PhysicalHostTest, TotalPrivatePagesAggregates) {
  PhysicalHost host(SmallHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(image, CloneKind::kFlash, "b");
  a->memory().TouchPages(0, 3);
  b->memory().TouchPages(0, 5);
  EXPECT_EQ(host.TotalPrivatePages(), 8u);
}

TEST(PhysicalHostTest, PeakLiveVmsTracked) {
  PhysicalHost host(SmallHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(image, CloneKind::kFlash, "b");
  host.DestroyVm(a->id());
  host.DestroyVm(b->id());
  EXPECT_EQ(host.peak_live_vms(), 2u);
  EXPECT_EQ(host.total_clones_created(), 2u);
}

TEST(PhysicalHostTest, WorkingSetPrefetchHitsAndExportsMetric) {
  MetricRegistry registry;  // outlives the host, which unregisters on destruction
  PhysicalHost host(SmallHost());
  host.ExportMetrics(&registry, "host0");
  const ImageId image = host.RegisterImage(SmallImage());

  // Session 1 records its first-touch order into the class-7 profile.
  CloneOptions recorder;
  recorder.record_working_set = true;
  recorder.attack_class = 7;
  VirtualMachine* teacher =
      host.CreateClone(image, CloneKind::kFlash, "teacher", recorder);
  ASSERT_NE(teacher, nullptr);
  const std::vector<uint8_t> byte = {0xab};
  for (Gpfn g : {Gpfn{3}, Gpfn{4}, Gpfn{5}, Gpfn{6}}) {
    teacher->memory().WriteGuest(static_cast<uint64_t>(g) * kPageSize,
                                 std::span(byte.data(), 1));
  }
  ASSERT_TRUE(host.DestroyVm(teacher->id()));
  ASSERT_NE(host.image(image)->FindProfile(7), nullptr);

  // Session 2 clones with prediction on: the profiled pages are materialised
  // at clone time, so its writes land on private pages — prefetch hits.
  CloneOptions predicted;
  predicted.use_working_set = true;
  predicted.prefetch_pages = 4;
  predicted.attack_class = 7;
  VirtualMachine* student =
      host.CreateClone(image, CloneKind::kFlash, "student", predicted);
  ASSERT_NE(student, nullptr);
  EXPECT_EQ(student->memory().stats().prefetched_pages, 4u);
  for (Gpfn g : {Gpfn{3}, Gpfn{4}, Gpfn{5}, Gpfn{6}}) {
    student->memory().WriteGuest(static_cast<uint64_t>(g) * kPageSize,
                                 std::span(byte.data(), 1));
  }

  const PrefetchTotals totals = host.prefetch_totals();
  EXPECT_EQ(totals.sessions, 1u);
  EXPECT_EQ(totals.prefetched_pages, 4u);
  EXPECT_EQ(totals.hits, 4u);
  // The scorecard is live through the obs registry (mid-session hits visible).
  EXPECT_GT(registry.ValueOf("host0.prefetch.hit_rate"), 0.0);
  EXPECT_EQ(registry.ValueOf("host0.prefetch.hit_rate"), 1.0);
  EXPECT_EQ(registry.ValueOf("host0.prefetch.pages"), 4.0);
}

TEST(PhysicalHostTest, PinnedGenerationSurvivesRefreshByteForByte) {
  PhysicalHost host(SmallHost());
  const auto image_config = SmallImage();
  const ImageId image = host.RegisterImage(image_config);
  ReferenceImage& img = *host.mutable_image(image);

  VirtualMachine* old_clone = host.CreateClone(image, CloneKind::kFlash, "old");
  ASSERT_NE(old_clone, nullptr);
  EXPECT_EQ(host.VmGeneration(old_clone->id()), 0u);

  // Mid-session image refresh: pages 0 and 7 get new contents in G+1.
  std::vector<ImagePatch> patches(2);
  patches[0].gpfn = 0;
  patches[0].bytes = {0xde, 0xad, 0xbe, 0xef};
  patches[1].gpfn = 7;
  patches[1].bytes.assign(kPageSize, 0x7e);
  ASSERT_TRUE(img.Refresh(std::span<const ImagePatch>(patches)));
  EXPECT_EQ(img.current_generation(), 1u);
  EXPECT_EQ(img.live_generations(), 2u);  // the old clone pins generation 0

  VirtualMachine* new_clone = host.CreateClone(image, CloneKind::kFlash, "new");
  ASSERT_NE(new_clone, nullptr);
  EXPECT_EQ(host.VmGeneration(new_clone->id()), 1u);

  // The pinned clone still reads generation 0 byte-identically everywhere,
  // including the pages the refresh replaced.
  for (Gpfn g : {Gpfn{0}, Gpfn{7}, Gpfn{31}}) {
    const auto expected = ReferenceImage::ExpectedPageContent(image_config, g);
    std::vector<uint8_t> actual(kPageSize);
    ASSERT_EQ(old_clone->memory().ReadGuest(static_cast<uint64_t>(g) * kPageSize,
                                            std::span(actual.data(), actual.size())),
              MemAccessResult::kOk);
    EXPECT_EQ(actual, expected) << "generation-0 page " << g;
  }

  // The new clone sees the patch (zero-filled past its bytes) on refreshed
  // pages, and unpatched pages structurally share the parent's frame.
  std::vector<uint8_t> head(patches[0].bytes.size());
  new_clone->memory().ReadGuest(0, std::span(head.data(), head.size()));
  EXPECT_EQ(head, patches[0].bytes);
  std::vector<uint8_t> tail(8, 0xff);
  new_clone->memory().ReadGuest(patches[0].bytes.size(),
                                std::span(tail.data(), tail.size()));
  EXPECT_EQ(tail, std::vector<uint8_t>(8, 0));
  EXPECT_EQ(img.FrameForPage(0u, 31), img.FrameForPage(1u, 31));
  EXPECT_NE(img.FrameForPage(0u, 0), img.FrameForPage(1u, 0));

  // Recycling the last generation-0 clone retires that generation.
  host.DestroyVm(old_clone->id());
  EXPECT_EQ(img.live_generations(), 1u);
}

TEST(PhysicalHostTest, DedupNeverCrossLinksGenerations) {
  PhysicalHost host(SmallHost());
  const auto image_config = SmallImage();
  const ImageId image = host.RegisterImage(image_config);
  ReferenceImage& img = *host.mutable_image(image);

  VirtualMachine* old_clone = host.CreateClone(image, CloneKind::kFlash, "old");
  ASSERT_NE(old_clone, nullptr);
  std::vector<ImagePatch> patches(1);
  patches[0].gpfn = 0;
  patches[0].bytes.assign(kPageSize, 0x42);
  ASSERT_TRUE(img.Refresh(std::span<const ImagePatch>(patches)));
  VirtualMachine* new_clone = host.CreateClone(image, CloneKind::kFlash, "new");
  ASSERT_NE(new_clone, nullptr);

  // Both clones privatise page 0 with identical bytes — dedup bait. The merge
  // may collapse the two *private* copies, but it must never link either VM to
  // the other generation's image frame.
  const std::vector<uint8_t> same(kPageSize, 0x99);
  old_clone->memory().WriteGuest(0, std::span(same.data(), same.size()));
  new_clone->memory().WriteGuest(0, std::span(same.data(), same.size()));
  DeduplicatePages(host);

  // A later write through the merged share re-privatises; the sibling on the
  // other generation keeps reading the merged bytes.
  const std::vector<uint8_t> divergent = {0x01};
  new_clone->memory().WriteGuest(0, std::span(divergent.data(), 1));
  std::vector<uint8_t> old_page(kPageSize);
  old_clone->memory().ReadGuest(0, std::span(old_page.data(), old_page.size()));
  EXPECT_EQ(old_page, same);

  // And neither generation's image frame was touched: a fresh clone of each
  // generation still reads its own image bytes on page 0. (Generation 0 is
  // still live — old_clone pins it — so its frames must be pristine too.)
  std::vector<uint8_t> gen1_page(kPageSize);
  VirtualMachine* probe = host.CreateClone(image, CloneKind::kFlash, "probe");
  ASSERT_NE(probe, nullptr);
  probe->memory().ReadGuest(0, std::span(gen1_page.data(), gen1_page.size()));
  EXPECT_EQ(gen1_page, std::vector<uint8_t>(kPageSize, 0x42));
  std::vector<uint8_t> gen0_page(kPageSize);
  host.allocator().Read(img.FrameForPage(0u, 0), 0,
                        std::span(gen0_page.data(), gen0_page.size()));
  EXPECT_EQ(gen0_page, ReferenceImage::ExpectedPageContent(image_config, 0));
}

}  // namespace
}  // namespace potemkin
