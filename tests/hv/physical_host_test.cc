// Flash-clone vs full-copy mechanics and host admission control.
#include "src/hv/physical_host.h"

#include <gtest/gtest.h>

#include <vector>

namespace potemkin {
namespace {

PhysicalHostConfig SmallHost(uint64_t memory_mb = 16) {
  PhysicalHostConfig config;
  config.memory_mb = memory_mb;
  config.content_mode = ContentMode::kStoreBytes;
  config.domain_overhead_frames = 8;
  config.admission_reserve_frames = 16;
  return config;
}

ReferenceImageConfig SmallImage() {
  ReferenceImageConfig config;
  config.num_pages = 128;  // 512 KiB image
  config.content_seed = 5;
  return config;
}

TEST(PhysicalHostTest, FlashCloneSharesAllImagePages) {
  PhysicalHost host(SmallHost());
  const ImageId image = host.RegisterImage(SmallImage());
  const uint64_t frames_after_image = host.allocator().used_frames();
  EXPECT_EQ(frames_after_image, 128u);

  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "clone-1");
  ASSERT_NE(vm, nullptr);
  // Flash cloning allocates only the domain overhead, zero guest page copies.
  EXPECT_EQ(host.allocator().used_frames(), frames_after_image + 8);
  EXPECT_EQ(vm->memory().shared_pages(), 128u);
  EXPECT_EQ(vm->memory().private_pages(), 0u);
  EXPECT_EQ(vm->state(), VmState::kCloning);
}

TEST(PhysicalHostTest, FlashCloneSeesImageContent) {
  PhysicalHost host(SmallHost());
  const auto image_config = SmallImage();
  const ImageId image = host.RegisterImage(image_config);
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "clone-1");
  ASSERT_NE(vm, nullptr);
  for (Gpfn g = 0; g < 128; g += 31) {
    const auto expected = ReferenceImage::ExpectedPageContent(image_config, g);
    std::vector<uint8_t> actual(kPageSize);
    EXPECT_EQ(vm->memory().ReadGuest(static_cast<uint64_t>(g) * kPageSize,
                                     std::span(actual.data(), actual.size())),
              MemAccessResult::kOk);
    EXPECT_EQ(actual, expected) << "page " << g;
  }
}

TEST(PhysicalHostTest, CloneWritesDoNotContaminateImageOrSiblings) {
  PhysicalHost host(SmallHost());
  const auto image_config = SmallImage();
  const ImageId image = host.RegisterImage(image_config);
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(image, CloneKind::kFlash, "b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  const std::vector<uint8_t> patch = {0x66};
  a->memory().WriteGuest(0, std::span(patch.data(), 1));

  const auto expected = ReferenceImage::ExpectedPageContent(image_config, 0);
  std::vector<uint8_t> b_page(kPageSize);
  b->memory().ReadGuest(0, std::span(b_page.data(), b_page.size()));
  EXPECT_EQ(b_page, expected);

  std::vector<uint8_t> a_byte(1);
  a->memory().ReadGuest(0, std::span(a_byte.data(), 1));
  EXPECT_EQ(a_byte[0], 0x66);
}

TEST(PhysicalHostTest, FullCopyCloneCopiesEveryPage) {
  PhysicalHost host(SmallHost());
  const ImageId image = host.RegisterImage(SmallImage());
  const uint64_t before = host.allocator().used_frames();
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFullCopy, "fat");
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(host.allocator().used_frames(), before + 128 + 8);
  EXPECT_EQ(vm->memory().private_pages(), 128u);
  EXPECT_EQ(vm->memory().shared_pages(), 0u);
}

TEST(PhysicalHostTest, ManyMoreFlashClonesThanFullCopiesFit) {
  // 16 MiB host = 4096 frames; image 128 pages.
  PhysicalHost flash_host(SmallHost());
  PhysicalHost copy_host(SmallHost());
  const ImageId flash_image = flash_host.RegisterImage(SmallImage());
  const ImageId copy_image = copy_host.RegisterImage(SmallImage());
  int flash_count = 0;
  while (flash_host.CreateClone(flash_image, CloneKind::kFlash, "f") != nullptr) {
    ++flash_count;
  }
  int copy_count = 0;
  while (copy_host.CreateClone(copy_image, CloneKind::kFullCopy, "c") != nullptr) {
    ++copy_count;
  }
  EXPECT_GT(flash_count, copy_count * 5) << "delta virtualization should fit >5x";
}

TEST(PhysicalHostTest, AdmissionControlRefusesBeforeExhaustion) {
  PhysicalHostConfig config = SmallHost(1);  // 256 frames total
  PhysicalHost host(config);
  ReferenceImageConfig image_config;
  image_config.num_pages = 128;
  const ImageId image = host.RegisterImage(image_config);
  // Full-copy needs 128 + 8 + 16 reserve = 152 > 128 remaining -> refused.
  EXPECT_FALSE(host.CanAdmit(image, CloneKind::kFullCopy));
  EXPECT_EQ(host.CreateClone(image, CloneKind::kFullCopy, "x"), nullptr);
  EXPECT_EQ(host.total_clone_failures(), 1u);
  // Flash clone still fits.
  EXPECT_TRUE(host.CanAdmit(image, CloneKind::kFlash));
  EXPECT_NE(host.CreateClone(image, CloneKind::kFlash, "y"), nullptr);
}

TEST(PhysicalHostTest, DestroyReleasesEverything) {
  PhysicalHost host(SmallHost());
  const ImageId image = host.RegisterImage(SmallImage());
  const uint64_t baseline = host.allocator().used_frames();
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "tmp");
  ASSERT_NE(vm, nullptr);
  const std::vector<uint8_t> data = {1};
  vm->memory().WriteGuest(0, std::span(data.data(), 1));  // one private page
  EXPECT_GT(host.allocator().used_frames(), baseline);
  const VmId id = vm->id();
  EXPECT_TRUE(host.DestroyVm(id));
  EXPECT_EQ(host.allocator().used_frames(), baseline);
  EXPECT_EQ(host.FindVm(id), nullptr);
  EXPECT_FALSE(host.DestroyVm(id));
  EXPECT_EQ(host.live_vm_count(), 0u);
  EXPECT_EQ(host.total_destroyed(), 1u);
}

TEST(PhysicalHostTest, VmIdsGloballyUnique) {
  PhysicalHost host_a(SmallHost());
  PhysicalHost host_b(SmallHost());
  const ImageId image_a = host_a.RegisterImage(SmallImage());
  const ImageId image_b = host_b.RegisterImage(SmallImage());
  VirtualMachine* a = host_a.CreateClone(image_a, CloneKind::kFlash, "a");
  VirtualMachine* b = host_b.CreateClone(image_b, CloneKind::kFlash, "b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->id(), b->id());
}

TEST(PhysicalHostTest, TotalPrivatePagesAggregates) {
  PhysicalHost host(SmallHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(image, CloneKind::kFlash, "b");
  a->memory().TouchPages(0, 3);
  b->memory().TouchPages(0, 5);
  EXPECT_EQ(host.TotalPrivatePages(), 8u);
}

TEST(PhysicalHostTest, PeakLiveVmsTracked) {
  PhysicalHost host(SmallHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(image, CloneKind::kFlash, "b");
  host.DestroyVm(a->id());
  host.DestroyVm(b->id());
  EXPECT_EQ(host.peak_live_vms(), 2u);
  EXPECT_EQ(host.total_clones_created(), 2u);
}

}  // namespace
}  // namespace potemkin
