#include "src/hv/frame_allocator.h"

#include <gtest/gtest.h>

#include <vector>

namespace potemkin {
namespace {

TEST(FrameAllocatorTest, AllocatesUpToCapacity) {
  FrameAllocator alloc(4, ContentMode::kStoreBytes);
  std::vector<FrameId> frames;
  for (int i = 0; i < 4; ++i) {
    const FrameId f = alloc.AllocateZeroed();
    ASSERT_NE(f, kInvalidFrame);
    frames.push_back(f);
  }
  EXPECT_EQ(alloc.AllocateZeroed(), kInvalidFrame);
  EXPECT_EQ(alloc.used_frames(), 4u);
  EXPECT_EQ(alloc.free_frames(), 0u);
}

TEST(FrameAllocatorTest, UnrefFreesAndReuses) {
  FrameAllocator alloc(2, ContentMode::kStoreBytes);
  const FrameId a = alloc.AllocateZeroed();
  const FrameId b = alloc.AllocateZeroed();
  EXPECT_EQ(alloc.AllocateZeroed(), kInvalidFrame);
  alloc.Unref(a);
  EXPECT_EQ(alloc.used_frames(), 1u);
  const FrameId c = alloc.AllocateZeroed();
  EXPECT_NE(c, kInvalidFrame);
  EXPECT_EQ(c, a);  // slot reused
  (void)b;
}

TEST(FrameAllocatorTest, RefcountingKeepsFrameAlive) {
  FrameAllocator alloc(4, ContentMode::kStoreBytes);
  const FrameId f = alloc.AllocateZeroed();
  alloc.Ref(f);
  alloc.Ref(f);
  EXPECT_EQ(alloc.RefCount(f), 3u);
  alloc.Unref(f);
  alloc.Unref(f);
  EXPECT_EQ(alloc.RefCount(f), 1u);
  EXPECT_EQ(alloc.used_frames(), 1u);
  alloc.Unref(f);
  EXPECT_EQ(alloc.used_frames(), 0u);
}

TEST(FrameAllocatorTest, FreshFramesReadZero) {
  FrameAllocator alloc(4, ContentMode::kStoreBytes);
  const FrameId f = alloc.AllocateZeroed();
  std::vector<uint8_t> buf(16, 0xff);
  alloc.Read(f, 100, std::span(buf.data(), buf.size()));
  for (uint8_t b : buf) {
    EXPECT_EQ(b, 0);
  }
}

TEST(FrameAllocatorTest, WriteThenReadBack) {
  FrameAllocator alloc(4, ContentMode::kStoreBytes);
  const FrameId f = alloc.AllocateZeroed();
  const std::vector<uint8_t> data = {1, 2, 3, 4};
  alloc.Write(f, 42, std::span(data.data(), data.size()));
  std::vector<uint8_t> buf(4);
  alloc.Read(f, 42, std::span(buf.data(), buf.size()));
  EXPECT_EQ(buf, data);
}

TEST(FrameAllocatorTest, CloneCopiesContents) {
  FrameAllocator alloc(4, ContentMode::kStoreBytes);
  const FrameId src = alloc.AllocateZeroed();
  const std::vector<uint8_t> data = {0xaa, 0xbb};
  alloc.Write(src, 0, std::span(data.data(), data.size()));
  const FrameId copy = alloc.CloneFrame(src);
  ASSERT_NE(copy, kInvalidFrame);
  EXPECT_NE(copy, src);
  std::vector<uint8_t> buf(2);
  alloc.Read(copy, 0, std::span(buf.data(), buf.size()));
  EXPECT_EQ(buf, data);
  // Writes to the copy do not affect the source.
  const std::vector<uint8_t> other = {0x11, 0x22};
  alloc.Write(copy, 0, std::span(other.data(), other.size()));
  alloc.Read(src, 0, std::span(buf.data(), buf.size()));
  EXPECT_EQ(buf, data);
}

TEST(FrameAllocatorTest, CloneFailsWhenFull) {
  FrameAllocator alloc(1, ContentMode::kStoreBytes);
  const FrameId src = alloc.AllocateZeroed();
  EXPECT_EQ(alloc.CloneFrame(src), kInvalidFrame);
}

TEST(FrameAllocatorTest, MetadataOnlyModeTracksCountsWithoutBytes) {
  FrameAllocator alloc(1000, ContentMode::kMetadataOnly);
  const FrameId f = alloc.AllocateZeroed();
  const std::vector<uint8_t> data = {9, 9};
  alloc.Write(f, 0, std::span(data.data(), data.size()));
  std::vector<uint8_t> buf(2, 0xff);
  alloc.Read(f, 0, std::span(buf.data(), buf.size()));
  EXPECT_EQ(buf[0], 0);  // reads are zero in metadata mode
  EXPECT_EQ(alloc.used_frames(), 1u);
  const FrameId copy = alloc.CloneFrame(f);
  EXPECT_NE(copy, kInvalidFrame);
  EXPECT_EQ(alloc.used_frames(), 2u);
  EXPECT_EQ(alloc.total_copies(), 1u);
}

TEST(FrameAllocatorTest, PeakTracksHighWater) {
  FrameAllocator alloc(10, ContentMode::kMetadataOnly);
  std::vector<FrameId> frames;
  for (int i = 0; i < 7; ++i) {
    frames.push_back(alloc.AllocateZeroed());
  }
  for (FrameId f : frames) {
    alloc.Unref(f);
  }
  EXPECT_EQ(alloc.used_frames(), 0u);
  EXPECT_EQ(alloc.peak_used_frames(), 7u);
}

TEST(FrameAllocatorTest, CanAllocateReflectsHeadroom) {
  FrameAllocator alloc(5, ContentMode::kMetadataOnly);
  EXPECT_TRUE(alloc.CanAllocate(5));
  EXPECT_FALSE(alloc.CanAllocate(6));
  alloc.AllocateZeroed();
  EXPECT_TRUE(alloc.CanAllocate(4));
  EXPECT_FALSE(alloc.CanAllocate(5));
}

// ---- Exhaustion path: typed denial + counter (regression pins) ----

TEST(FrameAllocatorTest, BatchDenialIsAllOrNothing) {
  FrameAllocator alloc(8, ContentMode::kMetadataOnly);
  FrameId out[6];
  ASSERT_EQ(alloc.AllocateBatch(6, out), FrameAllocStatus::kOk);
  EXPECT_EQ(alloc.used_frames(), 6u);

  // A batch that does not fit must leave no partial state behind: no frames
  // allocated, output untouched, and the denial counted exactly once.
  FrameId denied[4] = {kInvalidFrame, kInvalidFrame, kInvalidFrame,
                       kInvalidFrame};
  EXPECT_EQ(alloc.AllocateBatch(4, denied), FrameAllocStatus::kDenied);
  EXPECT_EQ(alloc.used_frames(), 6u);
  for (FrameId f : denied) {
    EXPECT_EQ(f, kInvalidFrame);
  }
  EXPECT_EQ(alloc.denied_requests(), 1u);

  // The remaining headroom is still usable after a denial.
  FrameId rest[2];
  EXPECT_EQ(alloc.AllocateBatch(2, rest), FrameAllocStatus::kOk);
  EXPECT_EQ(alloc.used_frames(), 8u);
}

TEST(FrameAllocatorTest, CloneBatchDenialLeavesSourcesIntact) {
  FrameAllocator alloc(4, ContentMode::kStoreBytes);
  const FrameId src = alloc.AllocateZeroed();
  const std::vector<uint8_t> data = {0x5a};
  alloc.Write(src, 0, std::span(data.data(), data.size()));
  alloc.AllocateZeroed();
  alloc.AllocateZeroed();  // 3 used, 1 free: a 2-frame CoW batch cannot fit

  const std::vector<FrameId> sources = {src, src};
  FrameId out[2] = {kInvalidFrame, kInvalidFrame};
  EXPECT_EQ(alloc.CloneFrameBatch(std::span<const FrameId>(sources), out),
            FrameAllocStatus::kDenied);
  EXPECT_EQ(alloc.used_frames(), 3u);
  EXPECT_EQ(alloc.denied_requests(), 1u);
  EXPECT_EQ(alloc.RefCount(src), 1u);  // no stray refs taken on the source
  std::vector<uint8_t> buf(1);
  alloc.Read(src, 0, std::span(buf.data(), buf.size()));
  EXPECT_EQ(buf[0], 0x5a);  // source bytes untouched by the failed batch
}

TEST(FrameAllocatorTest, DeniedAllocationsCountAndExport) {
  MetricRegistry registry;
  FrameAllocator alloc(2, ContentMode::kMetadataOnly);
  alloc.ExportMetrics(&registry, "host0.mem");

  alloc.AllocateZeroed();
  alloc.AllocateZeroed();
  EXPECT_EQ(alloc.AllocateZeroed(), kInvalidFrame);  // single-frame denial
  FrameId out[3];
  EXPECT_EQ(alloc.AllocateBatch(3, out), FrameAllocStatus::kDenied);
  const FrameId src = 0;
  EXPECT_EQ(alloc.CloneFrame(src), kInvalidFrame);

  EXPECT_EQ(alloc.denied_requests(), 3u);
  EXPECT_EQ(registry.ValueOf("hv.frames.denied"), 3.0);

  // The farm-wide counter aggregates across hosts sharing the registry.
  FrameAllocator other(1, ContentMode::kMetadataOnly);
  other.ExportMetrics(&registry, "host1.mem");
  other.AllocateZeroed();
  EXPECT_EQ(other.AllocateZeroed(), kInvalidFrame);
  EXPECT_EQ(registry.ValueOf("hv.frames.denied"), 4.0);
}

}  // namespace
}  // namespace potemkin
