#include "src/hv/cow_disk.h"

#include <gtest/gtest.h>

#include <vector>

namespace potemkin {
namespace {

std::vector<uint8_t> Block(uint8_t fill = 0) {
  return std::vector<uint8_t>(kDiskBlockSize, fill);
}

TEST(ReferenceDiskTest, DeterministicContent) {
  ReferenceDisk disk(16, 7);
  auto a = Block();
  auto b = Block();
  disk.ReadBlock(3, std::span(a.data(), a.size()));
  disk.ReadBlock(3, std::span(b.data(), b.size()));
  EXPECT_EQ(a, b);
  disk.ReadBlock(4, std::span(b.data(), b.size()));
  EXPECT_NE(a, b);
}

TEST(ReferenceDiskTest, SeedChangesContent) {
  ReferenceDisk a(16, 1);
  ReferenceDisk b(16, 2);
  auto block_a = Block();
  auto block_b = Block();
  a.ReadBlock(0, std::span(block_a.data(), block_a.size()));
  b.ReadBlock(0, std::span(block_b.data(), block_b.size()));
  EXPECT_NE(block_a, block_b);
}

TEST(CowDiskTest, ReadsFallThroughToBase) {
  ReferenceDisk base(8, 3);
  CowDisk disk(&base);
  auto expected = Block();
  base.ReadBlock(2, std::span(expected.data(), expected.size()));
  auto actual = Block(0xff);
  EXPECT_TRUE(disk.ReadBlock(2, std::span(actual.data(), actual.size())));
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(disk.overlay_blocks(), 0u);
}

TEST(CowDiskTest, WritesLandInOverlayOnly) {
  ReferenceDisk base(8, 3);
  CowDisk disk_a(&base);
  CowDisk disk_b(&base);
  const auto data = Block(0xaa);
  EXPECT_TRUE(disk_a.WriteBlock(1, std::span(data.data(), data.size())));
  EXPECT_EQ(disk_a.overlay_blocks(), 1u);

  auto read_a = Block();
  disk_a.ReadBlock(1, std::span(read_a.data(), read_a.size()));
  EXPECT_EQ(read_a, data);
  // The sibling overlay still sees base content.
  auto read_b = Block();
  disk_b.ReadBlock(1, std::span(read_b.data(), read_b.size()));
  EXPECT_NE(read_b, data);
  EXPECT_EQ(disk_b.overlay_blocks(), 0u);
}

TEST(CowDiskTest, PartialWriteMergesWithBase) {
  ReferenceDisk base(8, 3);
  CowDisk disk(&base);
  auto original = Block();
  base.ReadBlock(5, std::span(original.data(), original.size()));
  const std::vector<uint8_t> patch = {0xde, 0xad};
  EXPECT_TRUE(disk.WriteBytes(5, 100, std::span(patch.data(), patch.size())));
  auto after = Block();
  disk.ReadBlock(5, std::span(after.data(), after.size()));
  EXPECT_EQ(after[100], 0xde);
  EXPECT_EQ(after[101], 0xad);
  after[100] = original[100];
  after[101] = original[101];
  EXPECT_EQ(after, original);
}

TEST(CowDiskTest, OutOfRangeRejected) {
  ReferenceDisk base(4, 3);
  CowDisk disk(&base);
  auto buf = Block();
  EXPECT_FALSE(disk.ReadBlock(4, std::span(buf.data(), buf.size())));
  EXPECT_FALSE(disk.WriteBlock(9, std::span(buf.data(), buf.size())));
  const std::vector<uint8_t> patch = {1};
  EXPECT_FALSE(disk.WriteBytes(0, kDiskBlockSize, std::span(patch.data(), 1)));
}

TEST(CowDiskTest, StatsCountOperations) {
  ReferenceDisk base(8, 3);
  CowDisk disk(&base);
  auto buf = Block();
  disk.ReadBlock(0, std::span(buf.data(), buf.size()));
  disk.WriteBlock(0, std::span(buf.data(), buf.size()));
  disk.ReadBlock(0, std::span(buf.data(), buf.size()));
  EXPECT_EQ(disk.reads(), 2u);
  EXPECT_EQ(disk.writes(), 1u);
  EXPECT_EQ(disk.overlay_bytes(), kDiskBlockSize);
}

}  // namespace
}  // namespace potemkin
