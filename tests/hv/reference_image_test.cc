#include "src/hv/reference_image.h"

#include <gtest/gtest.h>

#include <vector>

namespace potemkin {
namespace {

ReferenceImageConfig SmallImage() {
  ReferenceImageConfig config;
  config.name = "test-image";
  config.num_pages = 64;
  config.content_seed = 99;
  config.zero_page_fraction = 0.25;
  return config;
}

TEST(ReferenceImageTest, BootConsumesOneFramePerPage) {
  FrameAllocator alloc(256, ContentMode::kStoreBytes);
  ReferenceImage image(&alloc, SmallImage());
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(alloc.used_frames(), 64u);
  EXPECT_EQ(image.num_pages(), 64u);
  EXPECT_EQ(image.size_bytes(), 64u * kPageSize);
}

TEST(ReferenceImageTest, FramesMatchExpectedContent) {
  FrameAllocator alloc(256, ContentMode::kStoreBytes);
  const auto config = SmallImage();
  ReferenceImage image(&alloc, config);
  for (Gpfn g = 0; g < 64; g += 7) {
    const auto expected = ReferenceImage::ExpectedPageContent(config, g);
    std::vector<uint8_t> actual(kPageSize);
    alloc.Read(image.FrameForPage(g), 0, std::span(actual.data(), actual.size()));
    EXPECT_EQ(actual, expected) << "page " << g;
  }
}

TEST(ReferenceImageTest, ContentDeterministicAcrossInstances) {
  const auto config = SmallImage();
  const auto a = ReferenceImage::ExpectedPageContent(config, 5);
  const auto b = ReferenceImage::ExpectedPageContent(config, 5);
  EXPECT_EQ(a, b);
  const auto other = ReferenceImage::ExpectedPageContent(config, 6);
  EXPECT_NE(a, other);
}

TEST(ReferenceImageTest, DifferentSeedsDifferentContent) {
  auto config_a = SmallImage();
  auto config_b = SmallImage();
  config_b.content_seed = 100;
  int differing = 0;
  for (Gpfn g = 0; g < 16; ++g) {
    if (ReferenceImage::ExpectedPageContent(config_a, g) !=
        ReferenceImage::ExpectedPageContent(config_b, g)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 8);
}

TEST(ReferenceImageTest, ZeroFractionProducesZeroPages) {
  auto config = SmallImage();
  config.zero_page_fraction = 1.0;
  for (Gpfn g = 0; g < 8; ++g) {
    const auto content = ReferenceImage::ExpectedPageContent(config, g);
    for (uint8_t b : content) {
      ASSERT_EQ(b, 0);
    }
  }
}

TEST(ReferenceImageTest, DestructorReleasesFrames) {
  FrameAllocator alloc(256, ContentMode::kStoreBytes);
  {
    ReferenceImage image(&alloc, SmallImage());
    EXPECT_EQ(alloc.used_frames(), 64u);
  }
  EXPECT_EQ(alloc.used_frames(), 0u);
}

TEST(ReferenceImageTest, FailedBootRollsBack) {
  FrameAllocator alloc(10, ContentMode::kStoreBytes);  // too small for 64 pages
  ReferenceImage image(&alloc, SmallImage());
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(alloc.used_frames(), 0u);
}

}  // namespace
}  // namespace potemkin
