// Delta-virtualization core invariants: CoW sharing, fault behaviour, accounting.
#include "src/hv/address_space.h"

#include <gtest/gtest.h>

#include <vector>

namespace potemkin {
namespace {

std::vector<uint8_t> ReadBytes(const AddressSpace& as, uint64_t addr, size_t n) {
  std::vector<uint8_t> buf(n);
  EXPECT_EQ(as.ReadGuest(addr, std::span(buf.data(), buf.size())),
            MemAccessResult::kOk);
  return buf;
}

TEST(AddressSpaceTest, UnmappedReadsZero) {
  FrameAllocator alloc(16, ContentMode::kStoreBytes);
  AddressSpace as(&alloc, 4);
  const auto buf = ReadBytes(as, 0, 64);
  for (uint8_t b : buf) {
    EXPECT_EQ(b, 0);
  }
  EXPECT_EQ(as.private_pages(), 0u);
}

TEST(AddressSpaceTest, FirstWriteZeroFills) {
  FrameAllocator alloc(16, ContentMode::kStoreBytes);
  AddressSpace as(&alloc, 4);
  const std::vector<uint8_t> data = {7};
  EXPECT_EQ(as.WriteGuest(100, std::span(data.data(), 1)), MemAccessResult::kOk);
  EXPECT_EQ(as.private_pages(), 1u);
  EXPECT_EQ(as.stats().zero_fills, 1u);
  EXPECT_EQ(ReadBytes(as, 100, 1)[0], 7);
}

TEST(AddressSpaceTest, CowShareReadsSourceContent) {
  FrameAllocator alloc(16, ContentMode::kStoreBytes);
  const FrameId shared = alloc.AllocateZeroed();
  const std::vector<uint8_t> content = {0xca, 0xfe};
  alloc.Write(shared, 10, std::span(content.data(), content.size()));

  AddressSpace as(&alloc, 4);
  as.MapSharedCow(0, shared);
  EXPECT_EQ(alloc.RefCount(shared), 2u);  // owner + mapping
  EXPECT_EQ(ReadBytes(as, 10, 2), content);
  EXPECT_TRUE(as.IsCowShared(0));
  EXPECT_EQ(as.shared_pages(), 1u);
  EXPECT_EQ(as.private_pages(), 0u);
  alloc.Unref(shared);
}

TEST(AddressSpaceTest, WriteBreaksCowAndPreservesRestOfPage) {
  FrameAllocator alloc(16, ContentMode::kStoreBytes);
  const FrameId shared = alloc.AllocateZeroed();
  std::vector<uint8_t> content(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) {
    content[i] = static_cast<uint8_t>(i * 13);
  }
  alloc.Write(shared, 0, std::span(content.data(), content.size()));

  AddressSpace as(&alloc, 1);
  as.MapSharedCow(0, shared);
  const std::vector<uint8_t> patch = {0xff};
  EXPECT_EQ(as.WriteGuest(1000, std::span(patch.data(), 1)),
            MemAccessResult::kCowBreak);
  EXPECT_EQ(as.stats().cow_faults, 1u);
  EXPECT_FALSE(as.IsCowShared(0));
  EXPECT_EQ(as.private_pages(), 1u);
  EXPECT_EQ(as.shared_pages(), 0u);
  // Patched byte visible, all other bytes identical to the original.
  auto after = ReadBytes(as, 0, kPageSize);
  EXPECT_EQ(after[1000], 0xff);
  after[1000] = content[1000];
  EXPECT_EQ(after, content);
  // The shared frame itself is untouched.
  std::vector<uint8_t> orig(1);
  alloc.Read(shared, 1000, std::span(orig.data(), 1));
  EXPECT_EQ(orig[0], content[1000]);
  // Refcount back to just the owner.
  EXPECT_EQ(alloc.RefCount(shared), 1u);
  alloc.Unref(shared);
}

TEST(AddressSpaceTest, SecondWriteToSamePageIsNotAFault) {
  FrameAllocator alloc(16, ContentMode::kStoreBytes);
  const FrameId shared = alloc.AllocateZeroed();
  AddressSpace as(&alloc, 1);
  as.MapSharedCow(0, shared);
  const std::vector<uint8_t> data = {1};
  EXPECT_EQ(as.WriteGuest(0, std::span(data.data(), 1)), MemAccessResult::kCowBreak);
  EXPECT_EQ(as.WriteGuest(1, std::span(data.data(), 1)), MemAccessResult::kOk);
  EXPECT_EQ(as.stats().cow_faults, 1u);
  alloc.Unref(shared);
}

TEST(AddressSpaceTest, CrossPageWriteSpansCorrectly) {
  FrameAllocator alloc(16, ContentMode::kStoreBytes);
  AddressSpace as(&alloc, 2);
  std::vector<uint8_t> data(100, 0xab);
  const uint64_t addr = kPageSize - 50;
  EXPECT_EQ(as.WriteGuest(addr, std::span(data.data(), data.size())),
            MemAccessResult::kOk);
  EXPECT_EQ(as.private_pages(), 2u);
  EXPECT_EQ(ReadBytes(as, addr, 100), data);
}

TEST(AddressSpaceTest, OutOfRangeAccessRejected) {
  FrameAllocator alloc(16, ContentMode::kStoreBytes);
  AddressSpace as(&alloc, 1);
  std::vector<uint8_t> data(10);
  EXPECT_EQ(as.WriteGuest(kPageSize - 5, std::span(data.data(), data.size())),
            MemAccessResult::kBadAddress);
  EXPECT_EQ(as.ReadGuest(kPageSize * 2, std::span(data.data(), data.size())),
            MemAccessResult::kBadAddress);
}

TEST(AddressSpaceTest, CowBreakFailsCleanlyWhenOutOfMemory) {
  FrameAllocator alloc(1, ContentMode::kStoreBytes);
  const FrameId shared = alloc.AllocateZeroed();  // consumes the only frame
  AddressSpace as(&alloc, 1);
  as.MapSharedCow(0, shared);
  const std::vector<uint8_t> data = {1};
  EXPECT_EQ(as.WriteGuest(0, std::span(data.data(), 1)),
            MemAccessResult::kOutOfMemory);
  EXPECT_EQ(as.stats().failed_cow_breaks, 1u);
  // Mapping still intact and readable.
  EXPECT_TRUE(as.IsCowShared(0));
  alloc.Unref(shared);
}

TEST(AddressSpaceTest, ReleaseAllFreesPrivateFramesAndDropsShares) {
  FrameAllocator alloc(16, ContentMode::kStoreBytes);
  const FrameId shared = alloc.AllocateZeroed();
  {
    AddressSpace as(&alloc, 4);
    as.MapSharedCow(0, shared);
    as.MapSharedCow(1, shared);
    const std::vector<uint8_t> data = {1};
    as.WriteGuest(0, std::span(data.data(), 1));            // CoW break: +1 frame
    as.WriteGuest(2 * kPageSize, std::span(data.data(), 1));  // zero fill: +1 frame
    EXPECT_EQ(alloc.used_frames(), 3u);
    EXPECT_EQ(alloc.RefCount(shared), 2u);  // owner + one remaining share
  }  // destructor releases everything
  EXPECT_EQ(alloc.used_frames(), 1u);
  EXPECT_EQ(alloc.RefCount(shared), 1u);
  alloc.Unref(shared);
  EXPECT_EQ(alloc.used_frames(), 0u);
}

TEST(AddressSpaceTest, TouchPagesDirtiesExactlyCount) {
  FrameAllocator alloc(64, ContentMode::kStoreBytes);
  AddressSpace as(&alloc, 32);
  EXPECT_EQ(as.TouchPages(4, 8), MemAccessResult::kOk);
  EXPECT_EQ(as.private_pages(), 8u);
  for (Gpfn g = 4; g < 12; ++g) {
    EXPECT_TRUE(as.IsMapped(g));
  }
  EXPECT_FALSE(as.IsMapped(3));
  EXPECT_FALSE(as.IsMapped(12));
}

TEST(AddressSpaceTest, SharedMappingRemapReleasesPrevious) {
  FrameAllocator alloc(16, ContentMode::kStoreBytes);
  const FrameId a = alloc.AllocateZeroed();
  const FrameId b = alloc.AllocateZeroed();
  AddressSpace as(&alloc, 1);
  as.MapSharedCow(0, a);
  EXPECT_EQ(alloc.RefCount(a), 2u);
  as.MapSharedCow(0, b);  // remap
  EXPECT_EQ(alloc.RefCount(a), 1u);
  EXPECT_EQ(alloc.RefCount(b), 2u);
  EXPECT_EQ(as.shared_pages(), 1u);
  alloc.Unref(a);
  alloc.Unref(b);
}

// Property sweep: for any mix of zero-fill and CoW pages, the allocator's used
// count equals image frames + private frames, and shared+private == mapped pages.
class AddressSpaceAccountingTest : public ::testing::TestWithParam<int> {};

TEST_P(AddressSpaceAccountingTest, AccountingInvariants) {
  const int writes = GetParam();
  FrameAllocator alloc(4096, ContentMode::kStoreBytes);
  constexpr uint32_t kPages = 64;
  std::vector<FrameId> image;
  for (uint32_t i = 0; i < kPages; ++i) {
    image.push_back(alloc.AllocateZeroed());
  }
  AddressSpace as(&alloc, kPages);
  for (uint32_t i = 0; i < kPages; ++i) {
    as.MapSharedCow(i, image[i]);
  }
  const uint64_t base_frames = alloc.used_frames();
  EXPECT_EQ(base_frames, kPages);

  // Dirty `writes` distinct pages.
  for (int w = 0; w < writes; ++w) {
    const std::vector<uint8_t> data = {static_cast<uint8_t>(w)};
    as.WriteGuest(static_cast<uint64_t>(w) * kPageSize * 2 % (kPages * kPageSize),
                  std::span(data.data(), 1));
  }
  EXPECT_EQ(as.shared_pages() + as.private_pages(), kPages);
  EXPECT_EQ(alloc.used_frames(), kPages + as.private_pages());
  for (FrameId f : image) {
    alloc.Unref(f);
  }
}

INSTANTIATE_TEST_SUITE_P(WriteCounts, AddressSpaceAccountingTest,
                         ::testing::Values(0, 1, 5, 17, 32));

}  // namespace
}  // namespace potemkin
