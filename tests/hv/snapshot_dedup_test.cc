// Tests for forensic snapshots and content-based page deduplication.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "src/hv/page_dedup.h"
#include "src/hv/physical_host.h"
#include "src/hv/snapshot.h"

namespace potemkin {
namespace {

PhysicalHostConfig StoreBytesHost() {
  PhysicalHostConfig config;
  config.memory_mb = 64;
  config.content_mode = ContentMode::kStoreBytes;
  config.domain_overhead_frames = 4;
  return config;
}

ReferenceImageConfig SmallImage() {
  ReferenceImageConfig config;
  config.num_pages = 128;
  config.content_seed = 3;
  return config;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SnapshotTest, CapturesExactlyTheDelta) {
  PhysicalHost host(StoreBytesHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "victim");
  vm->BindAddress(Ipv4Address(10, 1, 0, 9), MacAddress::FromId(9));
  vm->set_infected(true);

  const std::vector<uint8_t> payload = {0xde, 0xad, 0xbe, 0xef};
  vm->memory().WriteGuest(5 * kPageSize + 100, std::span(payload.data(), 4));
  vm->memory().WriteGuest(77 * kPageSize, std::span(payload.data(), 2));
  vm->disk().WriteBytes(3, 10, std::span(payload.data(), 4));

  const VmSnapshot snapshot = VmSnapshot::Capture(*vm, TimePoint() + Duration::Seconds(9.0));
  EXPECT_EQ(snapshot.delta_pages(), 2u);
  EXPECT_EQ(snapshot.disk_blocks(), 1u);
  EXPECT_TRUE(snapshot.meta().infected);
  EXPECT_EQ(snapshot.meta().ip, Ipv4Address(10, 1, 0, 9).value());
  EXPECT_EQ(snapshot.meta().num_pages, 128u);
  ASSERT_NE(snapshot.PageContent(5), nullptr);
  EXPECT_EQ((*snapshot.PageContent(5))[100], 0xde);
  EXPECT_EQ(snapshot.PageContent(6), nullptr);
}

TEST(SnapshotTest, FileRoundTripPreservesEverything) {
  PhysicalHost host(StoreBytesHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "victim");
  vm->set_infected(true);
  const std::vector<uint8_t> payload = {1, 2, 3};
  vm->memory().WriteGuest(11 * kPageSize + 7, std::span(payload.data(), 3));
  vm->disk().WriteBytes(9, 0, std::span(payload.data(), 3));

  const std::string path = TempPath("victim.snap");
  const VmSnapshot original = VmSnapshot::Capture(*vm, TimePoint());
  ASSERT_TRUE(original.WriteToFile(path));
  const auto loaded = VmSnapshot::ReadFromFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->delta_pages(), original.delta_pages());
  EXPECT_EQ(loaded->disk_blocks(), original.disk_blocks());
  EXPECT_EQ(loaded->meta().infected, true);
  EXPECT_EQ(loaded->meta().vm, vm->id());
  ASSERT_NE(loaded->PageContent(11), nullptr);
  EXPECT_EQ(*loaded->PageContent(11), *original.PageContent(11));
  std::remove(path.c_str());
}

TEST(SnapshotTest, RestoreReproducesInfectedMachine) {
  PhysicalHost host(StoreBytesHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* victim = host.CreateClone(image, CloneKind::kFlash, "victim");
  victim->set_infected(true);
  const std::vector<uint8_t> payload = {0x99, 0x88};
  victim->memory().WriteGuest(42 * kPageSize + 5, std::span(payload.data(), 2));
  victim->disk().WriteBytes(7, 3, std::span(payload.data(), 2));
  const VmSnapshot snapshot = VmSnapshot::Capture(*victim, TimePoint());
  host.DestroyVm(victim->id());

  // Restore into a fresh clone of the same image (the analysis workflow).
  VirtualMachine* lab = host.CreateClone(image, CloneKind::kFlash, "lab");
  ASSERT_TRUE(snapshot.RestoreInto(lab));
  EXPECT_TRUE(lab->infected());
  std::vector<uint8_t> mem(2);
  lab->memory().ReadGuest(42 * kPageSize + 5, std::span(mem.data(), 2));
  EXPECT_EQ(mem[0], 0x99);
  EXPECT_EQ(mem[1], 0x88);
  std::vector<uint8_t> block(kDiskBlockSize);
  lab->disk().ReadBlock(7, std::span(block.data(), block.size()));
  EXPECT_EQ(block[3], 0x99);
  EXPECT_EQ(block[4], 0x88);
  // Unmodified pages still show the image content.
  const auto expected = ReferenceImage::ExpectedPageContent(SmallImage(), 50);
  std::vector<uint8_t> page(kPageSize);
  lab->memory().ReadGuest(50 * kPageSize, std::span(page.data(), page.size()));
  EXPECT_EQ(page, expected);
}

TEST(SnapshotTest, RestoreRejectsMismatchedShape) {
  PhysicalHost host(StoreBytesHost());
  const ImageId small = host.RegisterImage(SmallImage());
  ReferenceImageConfig big_config = SmallImage();
  big_config.num_pages = 256;
  const ImageId big = host.RegisterImage(big_config);
  VirtualMachine* a = host.CreateClone(small, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(big, CloneKind::kFlash, "b");
  const VmSnapshot snapshot = VmSnapshot::Capture(*a, TimePoint());
  EXPECT_FALSE(snapshot.RestoreInto(b));
  EXPECT_FALSE(snapshot.RestoreInto(nullptr));
}

TEST(SnapshotTest, MissingFileFailsCleanly) {
  EXPECT_FALSE(VmSnapshot::ReadFromFile("/no/such/file.snap").has_value());
}

TEST(DedupTest, MergesIdenticalPagesAcrossVms) {
  PhysicalHost host(StoreBytesHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(image, CloneKind::kFlash, "b");
  VirtualMachine* c = host.CreateClone(image, CloneKind::kFlash, "c");

  // All three CoW-break the SAME image page with the same patch, so their
  // private copies are byte-identical (image content + identical overwrite).
  const std::vector<uint8_t> same(64, 0x5a);
  a->memory().WriteGuest(3 * kPageSize, std::span(same.data(), same.size()));
  b->memory().WriteGuest(3 * kPageSize, std::span(same.data(), same.size()));
  c->memory().WriteGuest(3 * kPageSize, std::span(same.data(), same.size()));
  // And one writes something unique.
  const std::vector<uint8_t> unique = {0x11};
  a->memory().WriteGuest(9 * kPageSize, std::span(unique.data(), 1));

  const uint64_t frames_before = host.allocator().used_frames();
  const DedupResult result = DeduplicatePages(host);
  EXPECT_EQ(result.pages_scanned, 4u);
  EXPECT_EQ(result.pages_merged, 2u);
  EXPECT_EQ(result.frames_freed, 2u);
  EXPECT_EQ(host.allocator().used_frames(), frames_before - 2);

  // Contents unchanged for every VM.
  std::vector<uint8_t> buf(64);
  for (VirtualMachine* vm : {a, b, c}) {
    vm->memory().ReadGuest(3 * kPageSize, std::span(buf.data(), buf.size()));
    EXPECT_EQ(buf, same);
  }
}

TEST(DedupTest, MergedPagesReprivatizeOnWrite) {
  PhysicalHost host(StoreBytesHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(image, CloneKind::kFlash, "b");
  const std::vector<uint8_t> same(16, 0x77);
  a->memory().WriteGuest(3 * kPageSize, std::span(same.data(), same.size()));
  b->memory().WriteGuest(3 * kPageSize, std::span(same.data(), same.size()));
  DeduplicatePages(host);
  EXPECT_TRUE(a->memory().IsCowShared(3));
  EXPECT_TRUE(b->memory().IsCowShared(3));

  // Writing through the share must CoW-break without disturbing the other VM.
  const std::vector<uint8_t> change = {0xff};
  EXPECT_EQ(a->memory().WriteGuest(3 * kPageSize, std::span(change.data(), 1)),
            MemAccessResult::kCowBreak);
  std::vector<uint8_t> buf(16);
  b->memory().ReadGuest(3 * kPageSize, std::span(buf.data(), buf.size()));
  EXPECT_EQ(buf, same);
  std::vector<uint8_t> a_first(1);
  a->memory().ReadGuest(3 * kPageSize, std::span(a_first.data(), 1));
  EXPECT_EQ(a_first[0], 0xff);
}

TEST(DedupTest, SecondPassIsIdempotent) {
  PhysicalHost host(StoreBytesHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(image, CloneKind::kFlash, "b");
  const std::vector<uint8_t> same(16, 0x42);
  a->memory().WriteGuest(0, std::span(same.data(), same.size()));
  b->memory().WriteGuest(0, std::span(same.data(), same.size()));
  const DedupResult first = DeduplicatePages(host);
  EXPECT_EQ(first.pages_merged, 1u);
  const DedupResult second = DeduplicatePages(host);
  EXPECT_EQ(second.pages_merged, 0u);
  // After merging, both mappings are CoW shares; no private pages remain to scan.
  EXPECT_EQ(second.pages_scanned, 0u);
}

TEST(DedupTest, DifferentContentNeverMerged) {
  PhysicalHost host(StoreBytesHost());
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  VirtualMachine* b = host.CreateClone(image, CloneKind::kFlash, "b");
  const std::vector<uint8_t> x = {1};
  const std::vector<uint8_t> y = {2};
  a->memory().WriteGuest(0, std::span(x.data(), 1));
  b->memory().WriteGuest(0, std::span(y.data(), 1));
  const DedupResult result = DeduplicatePages(host);
  EXPECT_EQ(result.pages_merged, 0u);
}

TEST(DedupTest, ZeroDeltaPagesAllCollapseToOneFrame) {
  PhysicalHost host(StoreBytesHost());
  const ImageId image = host.RegisterImage(SmallImage());
  // Identical CoW breaks of the same image page are byte-identical.
  std::vector<VirtualMachine*> vms;
  for (int i = 0; i < 5; ++i) {
    VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "z");
    const std::vector<uint8_t> zero = {0};
    vm->memory().WriteGuest(10 * kPageSize, std::span(zero.data(), 1));
    vms.push_back(vm);
  }
  const DedupResult result = DeduplicatePages(host);
  EXPECT_EQ(result.pages_merged, 4u);  // 5 identical zero pages -> 1 frame
}

// Cross-check of the incremental index against the stateless full scan: a host
// deduplicated incrementally after every burst of randomized guest writes must
// converge to the same frame count and guest-visible bytes as an identically
// driven host deduplicated once at the end with kFullScan — and a full scan run
// *after* the incremental passes must find nothing left to merge.
TEST(DedupTest, IncrementalMatchesFullScanOnRandomizedWrites) {
  PhysicalHost inc_host(StoreBytesHost());
  PhysicalHost full_host(StoreBytesHost());
  const ImageId inc_image = inc_host.RegisterImage(SmallImage());
  const ImageId full_image = full_host.RegisterImage(SmallImage());
  constexpr size_t kVms = 4;
  constexpr uint64_t kPages = 128;
  std::vector<VirtualMachine*> inc_vms;
  std::vector<VirtualMachine*> full_vms;
  for (size_t i = 0; i < kVms; ++i) {
    inc_vms.push_back(inc_host.CreateClone(inc_image, CloneKind::kFlash, "i"));
    full_vms.push_back(full_host.CreateClone(full_image, CloneKind::kFlash, "f"));
  }
  std::mt19937 rng(20260806);
  for (int round = 0; round < 6; ++round) {
    for (int write = 0; write < 48; ++write) {
      const size_t vm = rng() % kVms;
      const uint64_t addr = (rng() % kPages) * kPageSize + rng() % 64;
      // Low-entropy patches so cross-VM duplicates (and re-divergence of
      // previously merged pages) are both common.
      const std::vector<uint8_t> patch(1 + rng() % 16,
                                       static_cast<uint8_t>(rng() % 4));
      inc_vms[vm]->memory().WriteGuest(addr, std::span(patch.data(), patch.size()));
      full_vms[vm]->memory().WriteGuest(addr, std::span(patch.data(), patch.size()));
    }
    DeduplicatePages(inc_host);  // incremental pass per burst: O(dirty) each
  }
  DeduplicatePages(full_host, DedupMode::kFullScan);
  EXPECT_EQ(inc_host.allocator().used_frames(), full_host.allocator().used_frames());

  // Every guest page reads back identically on the two hosts.
  std::vector<uint8_t> inc_buf(kPageSize);
  std::vector<uint8_t> full_buf(kPageSize);
  for (size_t vm = 0; vm < kVms; ++vm) {
    for (uint64_t page = 0; page < kPages; ++page) {
      inc_vms[vm]->memory().ReadGuest(page * kPageSize,
                                      std::span(inc_buf.data(), inc_buf.size()));
      full_vms[vm]->memory().ReadGuest(page * kPageSize,
                                       std::span(full_buf.data(), full_buf.size()));
      ASSERT_EQ(inc_buf, full_buf) << "vm " << vm << " page " << page;
    }
  }

  // The incremental passes left no mergeable duplicates behind.
  const DedupResult residue = DeduplicatePages(inc_host, DedupMode::kFullScan);
  EXPECT_EQ(residue.pages_merged, 0u);
}

TEST(DedupTest, MetadataOnlyHostIsNoOp) {
  PhysicalHostConfig config = StoreBytesHost();
  config.content_mode = ContentMode::kMetadataOnly;
  PhysicalHost host(config);
  const ImageId image = host.RegisterImage(SmallImage());
  VirtualMachine* a = host.CreateClone(image, CloneKind::kFlash, "a");
  const std::vector<uint8_t> data = {1};
  a->memory().WriteGuest(0, std::span(data.data(), 1));
  const DedupResult result = DeduplicatePages(host);
  EXPECT_EQ(result.pages_scanned, 0u);
  EXPECT_EQ(result.pages_merged, 0u);
}

}  // namespace
}  // namespace potemkin
