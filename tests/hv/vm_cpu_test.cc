// Tests for the VirtualMachine wrapper and the CPU accounting model.
#include <gtest/gtest.h>

#include "src/hv/cpu_model.h"
#include "src/hv/physical_host.h"

namespace potemkin {
namespace {

PhysicalHostConfig HostConfig() {
  PhysicalHostConfig config;
  config.memory_mb = 32;
  config.content_mode = ContentMode::kStoreBytes;
  config.domain_overhead_frames = 4;
  return config;
}

TEST(VirtualMachineTest, LateBindingSetsAddress) {
  PhysicalHost host(HostConfig());
  ReferenceImageConfig image_config;
  image_config.num_pages = 64;
  const ImageId image = host.RegisterImage(image_config);
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "vm");
  EXPECT_EQ(vm->ip(), Ipv4Address());  // unbound at creation
  vm->BindAddress(Ipv4Address(10, 1, 0, 9), MacAddress::FromId(9));
  EXPECT_EQ(vm->ip(), Ipv4Address(10, 1, 0, 9));
  EXPECT_EQ(vm->mac(), MacAddress::FromId(9));
}

TEST(VirtualMachineTest, TransmitInvokesHandlerAndCounts) {
  PhysicalHost host(HostConfig());
  ReferenceImageConfig image_config;
  image_config.num_pages = 64;
  const ImageId image = host.RegisterImage(image_config);
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "vm");
  int transmitted = 0;
  vm->set_tx_handler([&](VirtualMachine& sender, Packet) {
    EXPECT_EQ(&sender, vm);
    ++transmitted;
  });
  PacketSpec spec;
  spec.src_ip = Ipv4Address(10, 1, 0, 9);
  spec.dst_ip = Ipv4Address(1, 1, 1, 1);
  vm->Transmit(BuildPacket(spec));
  vm->Transmit(BuildPacket(spec));
  EXPECT_EQ(transmitted, 2);
  EXPECT_EQ(vm->packets_sent(), 2u);
  vm->CountReceived();
  EXPECT_EQ(vm->packets_received(), 1u);
}

TEST(VirtualMachineTest, FootprintIsDeltaPlusOverhead) {
  PhysicalHost host(HostConfig());
  ReferenceImageConfig image_config;
  image_config.num_pages = 64;
  const ImageId image = host.RegisterImage(image_config);
  VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "vm");
  const uint64_t base = vm->FootprintBytes();
  EXPECT_EQ(base, 1u << 20);  // fixed 1 MiB domain overhead, zero delta
  vm->memory().TouchPages(0, 3);
  EXPECT_EQ(vm->FootprintBytes(), base + 3 * kPageSize);
}

TEST(VirtualMachineTest, StateNames) {
  EXPECT_STREQ(VmStateName(VmState::kCloning), "CLONING");
  EXPECT_STREQ(VmStateName(VmState::kRunning), "RUNNING");
  EXPECT_STREQ(VmStateName(VmState::kPaused), "PAUSED");
  EXPECT_STREQ(VmStateName(VmState::kRetired), "RETIRED");
}

TEST(CpuAccountantTest, ChargesAccumulate) {
  CpuCostModel model;
  model.per_packet_delivered = Duration::Micros(100);
  model.per_clone = Duration::Millis(10);
  CpuAccountant cpu(model);
  for (int i = 0; i < 50; ++i) {
    cpu.ChargePacket();
  }
  cpu.ChargeClone();
  EXPECT_EQ(cpu.busy_time(), Duration::Millis(15));
}

TEST(CpuAccountantTest, UtilizationAgainstCores) {
  CpuCostModel model;
  model.cores = 2.0;
  CpuAccountant cpu(model);
  cpu.Charge(Duration::Seconds(1.0));
  // 1 CPU-second over 1 wall-second on 2 cores = 50%.
  EXPECT_NEAR(cpu.Utilization(TimePoint() + Duration::Seconds(1.0)), 0.5, 1e-9);
  // Over 4 wall-seconds = 12.5%.
  EXPECT_NEAR(cpu.Utilization(TimePoint() + Duration::Seconds(4.0)), 0.125, 1e-9);
  // At t=0, no divide-by-zero.
  EXPECT_EQ(cpu.Utilization(TimePoint()), 0.0);
}

TEST(CpuAccountantTest, WindowUtilization) {
  CpuAccountant cpu(CpuCostModel{.cores = 1.0});
  cpu.Charge(Duration::Seconds(3.0));
  const Duration at_start = cpu.busy_time();
  cpu.Charge(Duration::Seconds(1.0));
  const double util = cpu.WindowUtilization(TimePoint() + Duration::Seconds(10.0),
                                            at_start,
                                            TimePoint() + Duration::Seconds(12.0));
  EXPECT_NEAR(util, 0.5, 1e-9);  // 1 busy second in a 2-second window
}

TEST(CpuAccountantTest, OversubscriptionExceedsOne) {
  CpuAccountant cpu(CpuCostModel{.cores = 1.0});
  cpu.Charge(Duration::Seconds(5.0));
  EXPECT_GT(cpu.Utilization(TimePoint() + Duration::Seconds(1.0)), 1.0);
}

}  // namespace
}  // namespace potemkin
