// Clone-engine timing: the paper's latency model, serialization and queueing.
#include "src/hv/clone_engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace potemkin {
namespace {

struct EngineFixture {
  EventLoop loop;
  PhysicalHost host;
  ImageId image;

  explicit EngineFixture(uint32_t image_pages = 256)
      : host([] {
          PhysicalHostConfig config;
          config.memory_mb = 64;
          config.content_mode = ContentMode::kStoreBytes;
          config.domain_overhead_frames = 8;
          config.admission_reserve_frames = 8;
          return config;
        }()) {
    ReferenceImageConfig image_config;
    image_config.num_pages = image_pages;
    image = host.RegisterImage(image_config);
  }
};

TEST(LatencyModelTest, FlashTotalEqualsSumOfPhases) {
  const CloneLatencyModel model;
  const uint32_t pages = 8192;
  Duration sum;
  for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
    sum += model.PhaseCost(static_cast<ClonePhase>(p), pages);
  }
  EXPECT_EQ(model.FlashCloneTotal(pages), sum);
}

TEST(LatencyModelTest, DefaultTotalMatchesPaperScale) {
  // The paper's unoptimized prototype cloned in roughly half a second.
  const CloneLatencyModel model;
  const double total_ms = model.FlashCloneTotal(8192).millis_f();
  EXPECT_GT(total_ms, 400.0);
  EXPECT_LT(total_ms, 700.0);
}

TEST(LatencyModelTest, ControlPlaneDominatesOverPerPageWork) {
  const CloneLatencyModel model;
  const Duration map = model.PhaseCost(ClonePhase::kMemoryMapSetup, 8192);
  const Duration total = model.FlashCloneTotal(8192);
  EXPECT_LT(map / total, 0.25);
}

TEST(LatencyModelTest, FlashBeatsFullCopyAndColdBoot) {
  const CloneLatencyModel model;
  const uint32_t pages = 32768;  // 128 MiB image
  EXPECT_LT(model.FlashCloneTotal(pages), model.FullCopyTotal(pages));
  EXPECT_LT(model.FullCopyTotal(pages).seconds(), model.cold_boot.seconds());
}

TEST(LatencyModelTest, OptimizedModelIsTensOfMillis) {
  const auto model = CloneLatencyModel::Optimized();
  const double total_ms = model.FlashCloneTotal(8192).millis_f();
  EXPECT_LT(total_ms, 100.0);
  EXPECT_GT(total_ms, 10.0);
}

TEST(CloneEngineTest, CloneCompletesAfterModelLatency) {
  EngineFixture fx;
  CloneEngineConfig config;
  CloneEngine engine(&fx.loop, &fx.host, config);
  VirtualMachine* result = nullptr;
  CloneTiming timing;
  engine.RequestClone(fx.image, "vm", Ipv4Address(10, 1, 0, 1), MacAddress::FromId(1),
                      [&](VirtualMachine* vm, const CloneTiming& t) {
                        result = vm;
                        timing = t;
                      });
  fx.loop.RunAll();
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->state(), VmState::kRunning);
  EXPECT_EQ(result->ip(), Ipv4Address(10, 1, 0, 1));
  EXPECT_EQ(timing.Total(), config.latency.FlashCloneTotal(256));
  EXPECT_EQ(timing.QueueWait(), Duration::Zero());
  EXPECT_EQ(engine.clones_completed(), 1u);
}

TEST(CloneEngineTest, PhaseBreakdownSumsToTotal) {
  EngineFixture fx;
  CloneEngine engine(&fx.loop, &fx.host, CloneEngineConfig{});
  CloneTiming timing;
  engine.RequestClone(fx.image, "vm", Ipv4Address(10, 1, 0, 1), MacAddress::FromId(1),
                      [&](VirtualMachine*, const CloneTiming& t) { timing = t; });
  fx.loop.RunAll();
  Duration sum;
  for (const Duration& d : timing.phase) {
    sum += d;
  }
  EXPECT_EQ(sum, timing.Total());
}

TEST(CloneEngineTest, SingleWorkerSerializesClones) {
  EngineFixture fx;
  CloneEngineConfig config;
  config.control_plane_workers = 1;
  CloneEngine engine(&fx.loop, &fx.host, config);
  std::vector<TimePoint> completions;
  for (int i = 0; i < 3; ++i) {
    engine.RequestClone(fx.image, "vm", Ipv4Address(10, 1, 0, static_cast<uint8_t>(i)),
                        MacAddress::FromId(static_cast<uint64_t>(i)),
                        [&](VirtualMachine*, const CloneTiming&) {
                          completions.push_back(fx.loop.Now());
                        });
  }
  fx.loop.RunAll();
  ASSERT_EQ(completions.size(), 3u);
  const Duration unit = CloneLatencyModel().FlashCloneTotal(256);
  EXPECT_EQ(completions[0] - TimePoint(), unit);
  EXPECT_EQ(completions[1] - TimePoint(), unit + unit);
  EXPECT_EQ(completions[2] - TimePoint(), unit + unit + unit);
}

TEST(CloneEngineTest, ParallelWorkersOverlap) {
  EngineFixture fx;
  CloneEngineConfig config;
  config.control_plane_workers = 3;
  CloneEngine engine(&fx.loop, &fx.host, config);
  std::vector<TimePoint> completions;
  for (int i = 0; i < 3; ++i) {
    engine.RequestClone(fx.image, "vm", Ipv4Address(10, 1, 0, static_cast<uint8_t>(i)),
                        MacAddress::FromId(static_cast<uint64_t>(i)),
                        [&](VirtualMachine*, const CloneTiming&) {
                          completions.push_back(fx.loop.Now());
                        });
  }
  fx.loop.RunAll();
  ASSERT_EQ(completions.size(), 3u);
  const Duration unit = CloneLatencyModel().FlashCloneTotal(256);
  for (const TimePoint& t : completions) {
    EXPECT_EQ(t - TimePoint(), unit);  // all finish together
  }
}

TEST(CloneEngineTest, QueueWaitRecorded) {
  EngineFixture fx;
  CloneEngine engine(&fx.loop, &fx.host, CloneEngineConfig{});
  CloneTiming second_timing;
  engine.RequestClone(fx.image, "a", Ipv4Address(10, 1, 0, 1), MacAddress::FromId(1),
                      nullptr);
  engine.RequestClone(fx.image, "b", Ipv4Address(10, 1, 0, 2), MacAddress::FromId(2),
                      [&](VirtualMachine*, const CloneTiming& t) { second_timing = t; });
  EXPECT_EQ(engine.queue_depth(), 1u);  // one running, one queued
  fx.loop.RunAll();
  EXPECT_EQ(second_timing.QueueWait(), CloneLatencyModel().FlashCloneTotal(256));
}

TEST(CloneEngineTest, FullCopyKindAddsCopyTime) {
  EngineFixture fx;
  CloneEngineConfig flash_config;
  CloneEngineConfig copy_config;
  copy_config.kind = CloneKind::kFullCopy;
  CloneEngine flash(&fx.loop, &fx.host, flash_config);
  CloneEngine copy(&fx.loop, &fx.host, copy_config);
  CloneTiming flash_timing;
  CloneTiming copy_timing;
  flash.RequestClone(fx.image, "f", Ipv4Address(10, 1, 0, 1), MacAddress::FromId(1),
                     [&](VirtualMachine*, const CloneTiming& t) { flash_timing = t; });
  copy.RequestClone(fx.image, "c", Ipv4Address(10, 1, 0, 2), MacAddress::FromId(2),
                    [&](VirtualMachine*, const CloneTiming& t) { copy_timing = t; });
  fx.loop.RunAll();
  EXPECT_GT(copy_timing.Total(), flash_timing.Total());
  EXPECT_GT(copy_timing.memory_copy, Duration::Zero());
  EXPECT_EQ(flash_timing.memory_copy, Duration::Zero());
}

TEST(CloneEngineTest, FailedCloneReportsNull) {
  EngineFixture fx;
  // Exhaust memory so that admission fails: fill with full-copy clones first.
  CloneEngineConfig copy_config;
  copy_config.kind = CloneKind::kFullCopy;
  CloneEngine copy(&fx.loop, &fx.host, copy_config);
  for (int i = 0; i < 200; ++i) {
    copy.RequestClone(fx.image, "fill", Ipv4Address(10, 2, 0, static_cast<uint8_t>(i)),
                      MacAddress::FromId(static_cast<uint64_t>(i)), nullptr);
  }
  fx.loop.RunAll();
  EXPECT_GT(copy.clones_failed(), 0u);
  EXPECT_GT(copy.clones_completed(), 0u);
}

TEST(CloneEngineTest, DestroyFreesCapacityForNewClones) {
  EngineFixture fx;
  CloneEngine engine(&fx.loop, &fx.host, CloneEngineConfig{});
  VirtualMachine* vm = nullptr;
  engine.RequestClone(fx.image, "a", Ipv4Address(10, 1, 0, 1), MacAddress::FromId(1),
                      [&](VirtualMachine* v, const CloneTiming&) { vm = v; });
  fx.loop.RunAll();
  ASSERT_NE(vm, nullptr);
  const VmId id = vm->id();
  bool destroyed = false;
  engine.RequestDestroy(id, [&]() { destroyed = true; });
  fx.loop.RunAll();
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(fx.host.FindVm(id), nullptr);
  EXPECT_EQ(fx.host.live_vm_count(), 0u);
}

TEST(CloneEngineTest, LatencyHistogramPopulated) {
  EngineFixture fx;
  CloneEngine engine(&fx.loop, &fx.host, CloneEngineConfig{});
  for (int i = 0; i < 5; ++i) {
    engine.RequestClone(fx.image, "vm", Ipv4Address(10, 1, 0, static_cast<uint8_t>(i)),
                        MacAddress::FromId(static_cast<uint64_t>(i)), nullptr);
  }
  fx.loop.RunAll();
  EXPECT_EQ(engine.latency_histogram().count(), 5u);
  const double expected_ms = CloneLatencyModel().FlashCloneTotal(256).millis_f();
  EXPECT_NEAR(engine.latency_histogram().Mean(), expected_ms, expected_ms * 0.01);
}

}  // namespace
}  // namespace potemkin
