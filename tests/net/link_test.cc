#include "src/net/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace potemkin {
namespace {

class RecordingNode : public NetworkNode {
 public:
  explicit RecordingNode(EventLoop* loop, std::string name)
      : loop_(loop), name_(std::move(name)) {}

  void HandleFrame(Packet packet) override {
    arrivals_.push_back(loop_->Now());
    frames_.push_back(std::move(packet));
  }
  std::string node_name() const override { return name_; }

  const std::vector<Packet>& frames() const { return frames_; }
  const std::vector<TimePoint>& arrivals() const { return arrivals_; }

 private:
  EventLoop* loop_;
  std::string name_;
  std::vector<Packet> frames_;
  std::vector<TimePoint> arrivals_;
};

Packet MakeFrame(size_t payload, MacAddress dst = MacAddress::FromId(2),
                 MacAddress src = MacAddress::FromId(1)) {
  PacketSpec spec;
  spec.src_mac = src;
  spec.dst_mac = dst;
  spec.src_ip = Ipv4Address(1, 1, 1, 1);
  spec.dst_ip = Ipv4Address(2, 2, 2, 2);
  spec.proto = IpProto::kUdp;
  spec.payload.assign(payload, 0);
  return BuildPacket(spec);
}

TEST(LinkTest, DeliversAfterLatencyAndSerialization) {
  EventLoop loop;
  RecordingNode a(&loop, "a");
  RecordingNode b(&loop, "b");
  // 1 ms latency, 1 Mbit/s -> a 1000-bit frame takes 1 ms to serialize.
  Link link(&loop, "l", Duration::Millis(1), 1e6);
  link.Connect(&a, &b);
  Packet frame = MakeFrame(125 - 42);  // 125 bytes = 1000 bits total
  ASSERT_EQ(frame.size(), 125u);
  EXPECT_TRUE(link.Send(&a, std::move(frame)));
  loop.RunAll();
  ASSERT_EQ(b.frames().size(), 1u);
  EXPECT_EQ(b.arrivals()[0].nanos(), 2000000);  // 1 ms tx + 1 ms propagation
  EXPECT_EQ(link.stats().packets_delivered, 1u);
  EXPECT_EQ(link.stats().bytes_delivered, 125u);
}

TEST(LinkTest, BackToBackFramesQueueBehindEachOther) {
  EventLoop loop;
  RecordingNode a(&loop, "a");
  RecordingNode b(&loop, "b");
  Link link(&loop, "l", Duration::Zero(), 1e6);
  link.Connect(&a, &b);
  link.Send(&a, MakeFrame(125 - 42));
  link.Send(&a, MakeFrame(125 - 42));
  loop.RunAll();
  ASSERT_EQ(b.arrivals().size(), 2u);
  EXPECT_EQ(b.arrivals()[0].nanos(), 1000000);
  EXPECT_EQ(b.arrivals()[1].nanos(), 2000000);  // serialized after the first
}

TEST(LinkTest, QueueLimitDropsTail) {
  EventLoop loop;
  RecordingNode a(&loop, "a");
  RecordingNode b(&loop, "b");
  Link link(&loop, "l", Duration::Zero(), 1e6, /*queue_limit=*/2);
  link.Connect(&a, &b);
  EXPECT_TRUE(link.Send(&a, MakeFrame(10)));
  EXPECT_TRUE(link.Send(&a, MakeFrame(10)));
  EXPECT_FALSE(link.Send(&a, MakeFrame(10)));
  loop.RunAll();
  EXPECT_EQ(b.frames().size(), 2u);
  EXPECT_EQ(link.stats().packets_dropped, 1u);
}

TEST(LinkTest, FullDuplexDirectionsIndependent) {
  EventLoop loop;
  RecordingNode a(&loop, "a");
  RecordingNode b(&loop, "b");
  Link link(&loop, "l", Duration::Millis(1), 1e9);
  link.Connect(&a, &b);
  link.Send(&a, MakeFrame(10));
  link.Send(&b, MakeFrame(10));
  loop.RunAll();
  EXPECT_EQ(a.frames().size(), 1u);
  EXPECT_EQ(b.frames().size(), 1u);
}

TEST(SwitchTest, ForwardsToKnownMac) {
  EventLoop loop;
  RecordingNode a(&loop, "a");
  RecordingNode b(&loop, "b");
  RecordingNode c(&loop, "c");
  Switch fabric(&loop, "sw", Duration::Micros(10));
  fabric.Attach(&a, MacAddress::FromId(1));
  fabric.Attach(&b, MacAddress::FromId(2));
  fabric.Attach(&c, MacAddress::FromId(3));
  fabric.Forward(&a, MakeFrame(10, MacAddress::FromId(2), MacAddress::FromId(1)));
  loop.RunAll();
  EXPECT_EQ(b.frames().size(), 1u);
  EXPECT_EQ(c.frames().size(), 0u);
  EXPECT_EQ(fabric.frames_forwarded(), 1u);
}

TEST(SwitchTest, FloodsUnknownAndBroadcast) {
  EventLoop loop;
  RecordingNode a(&loop, "a");
  RecordingNode b(&loop, "b");
  RecordingNode c(&loop, "c");
  Switch fabric(&loop, "sw", Duration::Micros(10));
  fabric.Attach(&a, MacAddress::FromId(1));
  fabric.Attach(&b, MacAddress::FromId(2));
  fabric.Attach(&c, MacAddress::FromId(3));
  fabric.Forward(&a, MakeFrame(10, MacAddress::Broadcast(), MacAddress::FromId(1)));
  loop.RunAll();
  EXPECT_EQ(b.frames().size(), 1u);
  EXPECT_EQ(c.frames().size(), 1u);
  EXPECT_EQ(a.frames().size(), 0u);  // not back out the ingress port
  EXPECT_EQ(fabric.frames_flooded(), 1u);
}

TEST(SwitchTest, LearnsSourceMacs) {
  EventLoop loop;
  RecordingNode a(&loop, "a");
  RecordingNode b(&loop, "b");
  Switch fabric(&loop, "sw", Duration::Micros(10));
  fabric.Attach(&a, MacAddress::FromId(1));
  fabric.Attach(&b, MacAddress::FromId(2));
  // b sends from a MAC the switch has not seen; it learns the mapping.
  fabric.Forward(&b, MakeFrame(10, MacAddress::FromId(1), MacAddress::FromId(99)));
  loop.RunAll();
  const size_t before = fabric.frames_flooded();
  fabric.Forward(&a, MakeFrame(10, MacAddress::FromId(99), MacAddress::FromId(1)));
  loop.RunAll();
  EXPECT_EQ(fabric.frames_flooded(), before);  // forwarded, not flooded
  EXPECT_EQ(b.frames().size(), 1u);
}

}  // namespace
}  // namespace potemkin
