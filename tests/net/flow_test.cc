#include "src/net/flow.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

Packet MakeTcp(Ipv4Address src, Ipv4Address dst, uint16_t sport, uint16_t dport,
               uint8_t flags, size_t payload_len = 0) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(1);
  spec.dst_mac = MacAddress::FromId(2);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = sport;
  spec.dst_port = dport;
  spec.tcp_flags = flags;
  spec.payload.assign(payload_len, 0x55);
  return BuildPacket(spec);
}

PacketView View(const Packet& p) { return *PacketView::Parse(p); }

const Ipv4Address kClient(1, 2, 3, 4);
const Ipv4Address kServer(10, 1, 0, 5);

TEST(FlowKeyTest, ReversedSwapsEndpoints) {
  const FlowKey key{kClient, kServer, IpProto::kTcp, 1000, 80};
  const FlowKey rev = key.Reversed();
  EXPECT_EQ(rev.src, kServer);
  EXPECT_EQ(rev.dst, kClient);
  EXPECT_EQ(rev.src_port, 80);
  EXPECT_EQ(rev.dst_port, 1000);
  EXPECT_EQ(rev.Reversed(), key);
}

TEST(FlowKeyTest, HashDifferentiatesFlows) {
  FlowKeyHash hash;
  const FlowKey a{kClient, kServer, IpProto::kTcp, 1000, 80};
  FlowKey b = a;
  b.dst_port = 81;
  EXPECT_NE(hash(a), hash(b));
}

TEST(FlowTableTest, BidirectionalPacketsShareOneFlow) {
  FlowTable table(Duration::Seconds(60));
  TimePoint t;
  table.Record(View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kSyn)), t);
  t += Duration::Millis(1);
  table.Record(
      View(MakeTcp(kServer, kClient, 80, 1000, TcpFlags::kSyn | TcpFlags::kAck)), t);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.total_flows_created(), 1u);
  const FlowRecord* record =
      table.Find(FlowKey{kClient, kServer, IpProto::kTcp, 1000, 80});
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->forward_packets, 1u);
  EXPECT_EQ(record->reverse_packets, 1u);
}

TEST(FlowTableTest, HandshakeReachesEstablished) {
  FlowTable table(Duration::Seconds(60));
  TimePoint t;
  table.Record(View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kSyn)), t);
  table.Record(
      View(MakeTcp(kServer, kClient, 80, 1000, TcpFlags::kSyn | TcpFlags::kAck)), t);
  table.Record(View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kAck)), t);
  const FlowRecord* record =
      table.Find(FlowKey{kClient, kServer, IpProto::kTcp, 1000, 80});
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->tcp_state, TcpState::kEstablished);
  EXPECT_EQ(table.handshakes_completed(), 1u);
}

TEST(FlowTableTest, RstClosesFlow) {
  FlowTable table(Duration::Seconds(60));
  TimePoint t;
  table.Record(View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kSyn)), t);
  table.Record(View(MakeTcp(kServer, kClient, 80, 1000, TcpFlags::kRst)), t);
  const FlowRecord* record =
      table.Find(FlowKey{kClient, kServer, IpProto::kTcp, 1000, 80});
  EXPECT_EQ(record->tcp_state, TcpState::kClosed);
}

TEST(FlowTableTest, FinExchangeCloses) {
  FlowTable table(Duration::Seconds(60));
  TimePoint t;
  table.Record(View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kSyn)), t);
  table.Record(
      View(MakeTcp(kServer, kClient, 80, 1000, TcpFlags::kSyn | TcpFlags::kAck)), t);
  table.Record(View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kAck)), t);
  table.Record(
      View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kFin | TcpFlags::kAck)), t);
  const FlowRecord* record =
      table.Find(FlowKey{kClient, kServer, IpProto::kTcp, 1000, 80});
  EXPECT_EQ(record->tcp_state, TcpState::kClosing);
  table.Record(
      View(MakeTcp(kServer, kClient, 80, 1000, TcpFlags::kFin | TcpFlags::kAck)), t);
  EXPECT_EQ(record->tcp_state, TcpState::kClosed);
}

TEST(FlowTableTest, IdleFlowsExpire) {
  FlowTable table(Duration::Seconds(10));
  TimePoint t;
  table.Record(View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kSyn)), t);
  table.Record(View(MakeTcp(kClient, kServer, 1001, 80, TcpFlags::kSyn)),
               t + Duration::Seconds(8.0));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.ExpireIdle(t + Duration::Seconds(15.0)), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Find(FlowKey{kClient, kServer, IpProto::kTcp, 1000, 80}), nullptr);
  EXPECT_NE(table.Find(FlowKey{kClient, kServer, IpProto::kTcp, 1001, 80}), nullptr);
}

TEST(FlowTableTest, ActivityRefreshesExpiry) {
  FlowTable table(Duration::Seconds(10));
  TimePoint t;
  table.Record(View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kSyn)), t);
  table.Record(View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kAck)),
               t + Duration::Seconds(8.0));
  EXPECT_EQ(table.ExpireIdle(t + Duration::Seconds(15.0)), 0u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableTest, CapacityEvictsOldest) {
  FlowTable table(Duration::Seconds(60), /*max_flows=*/3);
  TimePoint t;
  for (uint16_t port = 1; port <= 4; ++port) {
    table.Record(View(MakeTcp(kClient, kServer, port, 80, TcpFlags::kSyn)), t);
    t += Duration::Millis(1);
  }
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.evictions(), 1u);
  EXPECT_EQ(table.Find(FlowKey{kClient, kServer, IpProto::kTcp, 1, 80}), nullptr);
  EXPECT_NE(table.Find(FlowKey{kClient, kServer, IpProto::kTcp, 4, 80}), nullptr);
}

TEST(FlowTableTest, ByteAccounting) {
  FlowTable table(Duration::Seconds(60));
  TimePoint t;
  table.Record(View(MakeTcp(kClient, kServer, 1000, 80, TcpFlags::kSyn, 100)), t);
  const FlowRecord* record =
      table.Find(FlowKey{kClient, kServer, IpProto::kTcp, 1000, 80});
  // IP total length: 20 (IP) + 20 (TCP) + 100 payload.
  EXPECT_EQ(record->forward_bytes, 140u);
}

}  // namespace
}  // namespace potemkin
