// PacketPool unit and stress tests: recycling behavior, size-class bounds, and
// the zero-heap steady state the gateway datapath depends on.
#include "src/net/packet_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/net/packet.h"

namespace potemkin {
namespace {

TEST(PacketPoolTest, AcquireReturnsZeroFilledBufferOfRequestedSize) {
  PacketPool pool;
  std::vector<uint8_t> buffer = pool.Acquire(100);
  ASSERT_EQ(buffer.size(), 100u);
  for (const uint8_t byte : buffer) {
    EXPECT_EQ(byte, 0);
  }
  // Dirty the buffer, recycle it, and re-acquire: the pool must hand it back
  // zeroed — recycled frames must be indistinguishable from fresh ones.
  buffer.assign(buffer.size(), 0xee);
  pool.Release(std::move(buffer));
  std::vector<uint8_t> again = pool.Acquire(100);
  ASSERT_EQ(again.size(), 100u);
  for (const uint8_t byte : again) {
    EXPECT_EQ(byte, 0);
  }
}

TEST(PacketPoolTest, SteadyStateAcquiresAreFreelistHits) {
  PacketPool pool;
  pool.Release(pool.Acquire(1500));  // prime the 2 KiB class
  const PacketPool::Stats before = pool.stats();
  for (int i = 0; i < 1000; ++i) {
    pool.Release(pool.Acquire(1500));
  }
  const PacketPool::Stats after = pool.stats();
  EXPECT_EQ(after.allocations, before.allocations);  // zero heap trips
  EXPECT_EQ(after.pool_hits - before.pool_hits, 1000u);
  EXPECT_EQ(after.discards, before.discards);
}

TEST(PacketPoolTest, OversizeRequestsFallThroughToHeap) {
  PacketPool pool;
  const size_t oversize = PacketPool::kMaxClassBytes + 1;
  std::vector<uint8_t> big = pool.Acquire(oversize);
  EXPECT_EQ(big.size(), oversize);
  EXPECT_EQ(pool.stats().allocations, 1u);
  // An oversize buffer still classifies by capacity on release — it lands in
  // the largest class it can serve (capacity >= 4 KiB serves the 4 KiB class).
  pool.Release(std::move(big));
  EXPECT_EQ(pool.cached_buffers(), 1u);
}

TEST(PacketPoolTest, TinyBuffersAreDiscardedNotCached) {
  PacketPool pool;
  std::vector<uint8_t> tiny(PacketPool::kMinClassBytes / 2);
  tiny.shrink_to_fit();
  const uint64_t discards = pool.stats().discards;
  pool.Release(std::move(tiny));
  EXPECT_EQ(pool.stats().discards, discards + 1);
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(PacketPoolTest, PerClassCacheIsBounded) {
  PacketPool pool;
  // Offer far more same-class buffers than the cap; the overflow is freed.
  const size_t offered = PacketPool::kMaxCachedPerClass + 100;
  for (size_t i = 0; i < offered; ++i) {
    std::vector<uint8_t> buffer;
    buffer.reserve(PacketPool::kMinClassBytes);
    pool.Release(std::move(buffer));
  }
  EXPECT_EQ(pool.cached_buffers(), PacketPool::kMaxCachedPerClass);
  EXPECT_EQ(pool.stats().discards, 100u);
}

TEST(PacketPoolTest, ChurnKeepsPoolBoundedAndConsistent) {
  // Randomized acquire/release churn with a working set that grows and
  // shrinks: cached buffers must stay bounded by the per-class cap and the
  // stats identities must hold throughout. ASan covers use-after-release.
  PacketPool pool;
  Rng rng(1234);
  std::vector<std::vector<uint8_t>> in_use;
  for (int step = 0; step < 50000; ++step) {
    const bool acquire = in_use.size() < 4 || (rng.NextU64() & 1) != 0;
    if (acquire && in_use.size() < 256) {
      const size_t size = 40 + rng.NextBelow(5000);  // spans all classes + oversize
      std::vector<uint8_t> buffer = pool.Acquire(size);
      ASSERT_EQ(buffer.size(), size);
      buffer[0] = 0xaa;  // touch to give ASan a chance to catch stale handouts
      buffer[size - 1] = 0xbb;
      in_use.push_back(std::move(buffer));
    } else {
      const size_t victim = rng.NextBelow(in_use.size());
      pool.Release(std::move(in_use[victim]));
      in_use.erase(in_use.begin() + static_cast<long>(victim));
    }
  }
  const PacketPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires, stats.pool_hits + stats.allocations);
  EXPECT_LE(pool.cached_buffers(),
            PacketPool::kNumClasses * PacketPool::kMaxCachedPerClass);
  EXPECT_LE(pool.cached_buffers() + in_use.size(), stats.allocations);
  pool.Trim();
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(PacketPoolTest, PooledPacketRecyclesBufferOnDestruction) {
  PacketPool pool;
  const uint64_t releases = pool.stats().releases;
  {
    Packet packet(&pool, pool.Acquire(256));
    EXPECT_EQ(packet.size(), 256u);
  }
  EXPECT_EQ(pool.stats().releases, releases + 1);
  // The recycled buffer serves the next acquire without touching the heap.
  const uint64_t allocations = pool.stats().allocations;
  Packet next(&pool, pool.Acquire(256));
  EXPECT_EQ(pool.stats().allocations, allocations);
}

TEST(PacketPoolTest, MovedFromPacketDoesNotDoubleRelease) {
  PacketPool pool;
  const uint64_t releases = pool.stats().releases;
  {
    Packet a(&pool, pool.Acquire(256));
    Packet b(std::move(a));
    Packet c;
    c = std::move(b);
  }  // only `c` owns the buffer; exactly one release
  EXPECT_EQ(pool.stats().releases, releases + 1);
}

TEST(PacketPoolTest, CopiedPacketIsPlainAndDoesNotContendForPool) {
  PacketPool pool;
  const uint64_t releases = pool.stats().releases;
  {
    Packet pooled(&pool, pool.Acquire(64));
    Packet copy(pooled);
    EXPECT_EQ(copy.bytes(), pooled.bytes());
  }  // pooled releases once; the copy frees to the heap
  EXPECT_EQ(pool.stats().releases, releases + 1);
}

}  // namespace
}  // namespace potemkin
