#include "src/net/ipv4.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

TEST(Ipv4AddressTest, ParseAndFormatRoundTrip) {
  const auto addr = Ipv4Address::Parse("192.168.1.200");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ToString(), "192.168.1.200");
  EXPECT_EQ(addr->value(), 0xc0a801c8u);
}

TEST(Ipv4AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
}

TEST(Ipv4AddressTest, OctetConstructor) {
  const Ipv4Address addr(10, 1, 2, 3);
  EXPECT_EQ(addr.ToString(), "10.1.2.3");
}

TEST(Ipv4AddressTest, OrderingAndArithmetic) {
  const Ipv4Address a(10, 0, 0, 1);
  const Ipv4Address b = a + 5;
  EXPECT_EQ(b.ToString(), "10.0.0.6");
  EXPECT_LT(a, b);
}

TEST(Ipv4PrefixTest, ParseAndProperties) {
  const auto prefix = Ipv4Prefix::Parse("10.1.0.0/16");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->length(), 16);
  EXPECT_EQ(prefix->NumAddresses(), 65536u);
  EXPECT_EQ(prefix->ToString(), "10.1.0.0/16");
}

TEST(Ipv4PrefixTest, BaseIsMasked) {
  const Ipv4Prefix prefix(Ipv4Address(10, 1, 2, 3), 16);
  EXPECT_EQ(prefix.base().ToString(), "10.1.0.0");
}

TEST(Ipv4PrefixTest, Containment) {
  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 16);
  EXPECT_TRUE(prefix.Contains(Ipv4Address(10, 1, 0, 0)));
  EXPECT_TRUE(prefix.Contains(Ipv4Address(10, 1, 255, 255)));
  EXPECT_FALSE(prefix.Contains(Ipv4Address(10, 2, 0, 0)));
  EXPECT_FALSE(prefix.Contains(Ipv4Address(11, 1, 0, 0)));
}

TEST(Ipv4PrefixTest, AddressAtAndIndexOfRoundTrip) {
  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 24);
  for (uint64_t i : {0ull, 1ull, 100ull, 255ull}) {
    const Ipv4Address addr = prefix.AddressAt(i);
    EXPECT_TRUE(prefix.Contains(addr));
    EXPECT_EQ(prefix.IndexOf(addr), i);
  }
}

TEST(Ipv4PrefixTest, ZeroLengthCoversEverything) {
  const Ipv4Prefix all(Ipv4Address(0, 0, 0, 0), 0);
  EXPECT_TRUE(all.Contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_EQ(all.NumAddresses(), 1ull << 32);
}

TEST(Ipv4PrefixTest, SlashThirtyTwoIsSingleAddress) {
  const Ipv4Prefix host(Ipv4Address(1, 2, 3, 4), 32);
  EXPECT_EQ(host.NumAddresses(), 1u);
  EXPECT_TRUE(host.Contains(Ipv4Address(1, 2, 3, 4)));
  EXPECT_FALSE(host.Contains(Ipv4Address(1, 2, 3, 5)));
}

TEST(Ipv4PrefixTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::Parse("10.0.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::Parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::Parse("bogus/16").has_value());
}

TEST(MacAddressTest, FromIdDeterministicAndUnique) {
  const MacAddress a = MacAddress::FromId(7);
  const MacAddress b = MacAddress::FromId(7);
  const MacAddress c = MacAddress::FromId(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.bytes()[0], 0x02);  // locally administered
}

TEST(MacAddressTest, BroadcastDetection) {
  EXPECT_TRUE(MacAddress::Broadcast().IsBroadcast());
  EXPECT_FALSE(MacAddress::FromId(1).IsBroadcast());
}

TEST(MacAddressTest, Formatting) {
  const MacAddress mac({0x02, 0x50, 0x00, 0x00, 0x00, 0x2a});
  EXPECT_EQ(mac.ToString(), "02:50:00:00:00:2a");
}

TEST(Ipv4AddressTest, HashDistributes) {
  std::hash<Ipv4Address> hasher;
  EXPECT_NE(hasher(Ipv4Address(10, 0, 0, 1)), hasher(Ipv4Address(10, 0, 0, 2)));
}

}  // namespace
}  // namespace potemkin
