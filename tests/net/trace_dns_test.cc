#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/net/dns.h"
#include "src/net/trace.h"

namespace potemkin {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TraceRecord SampleRecord(int i) {
  TraceRecord r;
  r.time = TimePoint::FromNanos(1000 * i);
  r.src = Ipv4Address(1, 2, 3, static_cast<uint8_t>(i));
  r.dst = Ipv4Address(10, 1, 0, static_cast<uint8_t>(i));
  r.proto = (i % 2 == 0) ? IpProto::kTcp : IpProto::kUdp;
  r.src_port = static_cast<uint16_t>(1000 + i);
  r.dst_port = 445;
  r.wire_size = static_cast<uint16_t>(60 + i);
  r.tcp_flags = TcpFlags::kSyn;
  return r;
}

TEST(TraceTest, WriteReadRoundTrip) {
  const std::string path = TempPath("roundtrip.pkt");
  {
    TraceWriter writer(path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 100; ++i) {
      writer.Append(SampleRecord(i));
    }
    writer.Close();
    EXPECT_EQ(writer.records_written(), 100u);
  }
  TraceReader reader(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.record_count(), 100u);
  TraceRecord record;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(reader.Next(&record));
    EXPECT_EQ(record, SampleRecord(i));
  }
  EXPECT_FALSE(reader.Next(&record));
  std::remove(path.c_str());
}

TEST(TraceTest, ReadAllConvenience) {
  const std::string path = TempPath("readall.pkt");
  {
    TraceWriter writer(path);
    writer.Append(SampleRecord(1));
    writer.Append(SampleRecord(2));
  }
  const auto records = TraceReader::ReadAll(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], SampleRecord(1));
  std::remove(path.c_str());
}

TEST(TraceTest, MissingFileReportsNotOk) {
  TraceReader reader("/nonexistent/path/trace.pkt");
  EXPECT_FALSE(reader.ok());
  TraceRecord record;
  EXPECT_FALSE(reader.Next(&record));
}

TEST(TraceTest, PacketFromRecordMatchesFields) {
  const TraceRecord record = SampleRecord(4);
  const Packet packet =
      PacketFromRecord(record, MacAddress::FromId(1), MacAddress::FromId(2));
  const auto view = PacketView::Parse(packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ip().src, record.src);
  EXPECT_EQ(view->ip().dst, record.dst);
  EXPECT_EQ(view->dst_port(), record.dst_port);
  EXPECT_EQ(packet.size(), record.wire_size);
  EXPECT_TRUE(ValidateChecksums(packet));
}

TEST(DnsTest, QueryEncodeParseRoundTrip) {
  DnsQuery query;
  query.id = 0x1234;
  query.name = "update.windows.com";
  const auto bytes = EncodeDnsQuery(query);
  const auto parsed = ParseDnsQuery(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, 0x1234);
  EXPECT_EQ(parsed->name, "update.windows.com");
  EXPECT_EQ(parsed->qtype, kDnsTypeA);
}

TEST(DnsTest, ResponseEncodeParseRoundTrip) {
  DnsResponse response;
  response.id = 7;
  response.name = "evil.example.net";
  response.addresses = {Ipv4Address(10, 1, 2, 3), Ipv4Address(10, 1, 2, 4)};
  const auto bytes = EncodeDnsResponse(response);
  const auto parsed = ParseDnsResponse(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, 7);
  EXPECT_EQ(parsed->name, "evil.example.net");
  ASSERT_EQ(parsed->addresses.size(), 2u);
  EXPECT_EQ(parsed->addresses[0], Ipv4Address(10, 1, 2, 3));
  EXPECT_EQ(parsed->addresses[1], Ipv4Address(10, 1, 2, 4));
  EXPECT_EQ(parsed->rcode, 0);
}

TEST(DnsTest, NxdomainRoundTrip) {
  DnsResponse response;
  response.id = 9;
  response.name = "nosuch.host";
  response.rcode = 3;
  const auto bytes = EncodeDnsResponse(response);
  const auto parsed = ParseDnsResponse(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rcode, 3);
  EXPECT_TRUE(parsed->addresses.empty());
}

TEST(DnsTest, ParseQueryRejectsResponseBit) {
  DnsResponse response;
  response.id = 1;
  response.name = "x.y";
  const auto bytes = EncodeDnsResponse(response);
  EXPECT_FALSE(ParseDnsQuery(bytes.data(), bytes.size()).has_value());
}

TEST(DnsTest, ParseRejectsTruncated) {
  DnsQuery query;
  query.id = 1;
  query.name = "a.very.long.domain.name.example.com";
  const auto bytes = EncodeDnsQuery(query);
  for (size_t len : {0u, 5u, 12u, 14u}) {
    EXPECT_FALSE(ParseDnsQuery(bytes.data(), len).has_value()) << len;
  }
}

TEST(DnsTest, LabelsOverSixtyThreeBytesSkipped) {
  DnsQuery query;
  query.id = 2;
  query.name = std::string(100, 'a') + ".com";
  const auto bytes = EncodeDnsQuery(query);
  const auto parsed = ParseDnsQuery(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, "com");  // oversized label dropped at encode time
}

}  // namespace
}  // namespace potemkin
