#include "src/net/packet.h"

#include <gtest/gtest.h>

#include "src/net/checksum.h"

namespace potemkin {
namespace {

PacketSpec BaseTcpSpec() {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(1);
  spec.dst_mac = MacAddress::FromId(2);
  spec.src_ip = Ipv4Address(1, 2, 3, 4);
  spec.dst_ip = Ipv4Address(10, 1, 0, 1);
  spec.proto = IpProto::kTcp;
  spec.src_port = 31337;
  spec.dst_port = 445;
  spec.seq = 1000;
  spec.tcp_flags = TcpFlags::kSyn;
  return spec;
}

TEST(ChecksumTest, Rfc1071Example) {
  // Classic example from RFC 1071 presentations.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(ComputeInternetChecksum(data, sizeof(data)), 0x220d);
}

TEST(ChecksumTest, OddLengthHandled) {
  const uint8_t data[] = {0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd
  EXPECT_EQ(ComputeInternetChecksum(data, sizeof(data)), 0xfbfd);
}

TEST(ChecksumTest, IncrementalEqualsOneShot) {
  const uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  InternetChecksum incremental;
  incremental.Add(data, 3);
  incremental.Add(data + 3, 6);
  EXPECT_EQ(incremental.Finish(), ComputeInternetChecksum(data, sizeof(data)));
}

TEST(PacketTest, BuildTcpAndParseBack) {
  PacketSpec spec = BaseTcpSpec();
  spec.payload = {'h', 'i'};
  const Packet packet = BuildPacket(spec);
  const auto view = PacketView::Parse(packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->eth().src, spec.src_mac);
  EXPECT_EQ(view->eth().dst, spec.dst_mac);
  EXPECT_EQ(view->eth().ethertype, kEthertypeIpv4);
  EXPECT_EQ(view->ip().src, spec.src_ip);
  EXPECT_EQ(view->ip().dst, spec.dst_ip);
  EXPECT_EQ(view->ip().ttl, 64);
  ASSERT_TRUE(view->is_tcp());
  EXPECT_EQ(view->tcp().src_port, 31337);
  EXPECT_EQ(view->tcp().dst_port, 445);
  EXPECT_EQ(view->tcp().seq, 1000u);
  EXPECT_EQ(view->tcp().flags, TcpFlags::kSyn);
  ASSERT_EQ(view->l4_payload().size(), 2u);
  EXPECT_EQ(view->l4_payload()[0], 'h');
}

TEST(PacketTest, BuiltPacketsHaveValidChecksums) {
  for (IpProto proto : {IpProto::kTcp, IpProto::kUdp, IpProto::kIcmp}) {
    PacketSpec spec = BaseTcpSpec();
    spec.proto = proto;
    spec.payload = {1, 2, 3, 4, 5};
    const Packet packet = BuildPacket(spec);
    EXPECT_TRUE(ValidateChecksums(packet)) << IpProtoName(proto);
  }
}

TEST(PacketTest, OddPayloadChecksumValid) {
  PacketSpec spec = BaseTcpSpec();
  spec.proto = IpProto::kUdp;
  spec.payload = {9, 9, 9};  // odd length exercises the padding path
  EXPECT_TRUE(ValidateChecksums(BuildPacket(spec)));
}

TEST(PacketTest, CorruptedPacketFailsValidation) {
  Packet packet = BuildPacket(BaseTcpSpec());
  packet.mutable_bytes()[20] ^= 0xff;  // flip bits in the IP header
  EXPECT_FALSE(ValidateChecksums(packet));
}

TEST(PacketTest, UdpBuildAndParse) {
  PacketSpec spec = BaseTcpSpec();
  spec.proto = IpProto::kUdp;
  spec.src_port = 5353;
  spec.dst_port = 53;
  spec.payload = {0xde, 0xad};
  const auto view = PacketView::Parse(BuildPacket(spec));
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(view->is_udp());
  EXPECT_EQ(view->udp().src_port, 5353);
  EXPECT_EQ(view->udp().dst_port, 53);
  EXPECT_EQ(view->udp().length, kUdpHeaderSize + 2);
}

TEST(PacketTest, IcmpEchoBuildAndParse) {
  PacketSpec spec = BaseTcpSpec();
  spec.proto = IpProto::kIcmp;
  spec.icmp_type = 8;
  spec.icmp_id = 77;
  spec.icmp_seq = 3;
  const auto view = PacketView::Parse(BuildPacket(spec));
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(view->is_icmp());
  EXPECT_EQ(view->icmp().type, 8);
  EXPECT_EQ(view->icmp().id, 77);
  EXPECT_EQ(view->icmp().seq, 3);
}

TEST(PacketTest, ParseRejectsTruncated) {
  Packet tiny(std::vector<uint8_t>(10, 0));
  EXPECT_FALSE(PacketView::Parse(tiny).has_value());
}

TEST(PacketTest, ParseRejectsNonIpv4) {
  Packet packet = BuildPacket(BaseTcpSpec());
  packet.mutable_bytes()[12] = 0x86;  // ethertype -> IPv6
  packet.mutable_bytes()[13] = 0xdd;
  EXPECT_FALSE(PacketView::Parse(packet).has_value());
}

TEST(PacketTest, RewriteDstUpdatesChecksums) {
  Packet packet = BuildPacket(BaseTcpSpec());
  RewriteIpv4Dst(packet, Ipv4Address(10, 1, 7, 7));
  EXPECT_TRUE(ValidateChecksums(packet));
  const auto view = PacketView::Parse(packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ip().dst, Ipv4Address(10, 1, 7, 7));
  EXPECT_EQ(view->ip().src, Ipv4Address(1, 2, 3, 4));  // src untouched
}

TEST(PacketTest, RewriteSrcUpdatesChecksums) {
  PacketSpec spec = BaseTcpSpec();
  spec.proto = IpProto::kUdp;
  Packet packet = BuildPacket(spec);
  RewriteIpv4Src(packet, Ipv4Address(8, 8, 8, 8));
  EXPECT_TRUE(ValidateChecksums(packet));
  const auto view = PacketView::Parse(packet);
  EXPECT_EQ(view->ip().src, Ipv4Address(8, 8, 8, 8));
}

TEST(PacketTest, RewriteMacs) {
  Packet packet = BuildPacket(BaseTcpSpec());
  RewriteMacs(packet, MacAddress::FromId(9), MacAddress::FromId(10));
  const auto view = PacketView::Parse(packet);
  EXPECT_EQ(view->eth().src, MacAddress::FromId(9));
  EXPECT_EQ(view->eth().dst, MacAddress::FromId(10));
}

TEST(PacketTest, DecrementTtl) {
  PacketSpec spec = BaseTcpSpec();
  spec.ttl = 2;
  Packet packet = BuildPacket(spec);
  EXPECT_TRUE(DecrementTtl(packet));
  EXPECT_TRUE(ValidateChecksums(packet));
  EXPECT_EQ(PacketView::Parse(packet)->ip().ttl, 1);
  EXPECT_FALSE(DecrementTtl(packet));  // hits zero
  EXPECT_EQ(PacketView::Parse(packet)->ip().ttl, 0);
}

TEST(PacketTest, DescribeMentionsEndpointsAndFlags) {
  const std::string text = PacketView::Parse(BuildPacket(BaseTcpSpec()))->Describe();
  EXPECT_NE(text.find("1.2.3.4"), std::string::npos);
  EXPECT_NE(text.find("445"), std::string::npos);
  EXPECT_NE(text.find("[S]"), std::string::npos);
}

TEST(PacketTest, TotalLengthMatchesBuffer) {
  PacketSpec spec = BaseTcpSpec();
  spec.payload.assign(100, 0xab);
  const Packet packet = BuildPacket(spec);
  const auto view = PacketView::Parse(packet);
  EXPECT_EQ(view->ip().total_length + kEthernetHeaderSize, packet.size());
}

}  // namespace
}  // namespace potemkin
