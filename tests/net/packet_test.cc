#include "src/net/packet.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/net/checksum.h"

namespace potemkin {
namespace {

PacketSpec BaseTcpSpec() {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(1);
  spec.dst_mac = MacAddress::FromId(2);
  spec.src_ip = Ipv4Address(1, 2, 3, 4);
  spec.dst_ip = Ipv4Address(10, 1, 0, 1);
  spec.proto = IpProto::kTcp;
  spec.src_port = 31337;
  spec.dst_port = 445;
  spec.seq = 1000;
  spec.tcp_flags = TcpFlags::kSyn;
  return spec;
}

TEST(ChecksumTest, Rfc1071Example) {
  // Classic example from RFC 1071 presentations.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(ComputeInternetChecksum(data, sizeof(data)), 0x220d);
}

TEST(ChecksumTest, OddLengthHandled) {
  const uint8_t data[] = {0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd
  EXPECT_EQ(ComputeInternetChecksum(data, sizeof(data)), 0xfbfd);
}

TEST(ChecksumTest, IncrementalEqualsOneShot) {
  const uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  InternetChecksum incremental;
  incremental.Add(data, 3);
  incremental.Add(data + 3, 6);
  EXPECT_EQ(incremental.Finish(), ComputeInternetChecksum(data, sizeof(data)));
}

TEST(PacketTest, BuildTcpAndParseBack) {
  PacketSpec spec = BaseTcpSpec();
  spec.payload = {'h', 'i'};
  const Packet packet = BuildPacket(spec);
  const auto view = PacketView::Parse(packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->eth().src, spec.src_mac);
  EXPECT_EQ(view->eth().dst, spec.dst_mac);
  EXPECT_EQ(view->eth().ethertype, kEthertypeIpv4);
  EXPECT_EQ(view->ip().src, spec.src_ip);
  EXPECT_EQ(view->ip().dst, spec.dst_ip);
  EXPECT_EQ(view->ip().ttl, 64);
  ASSERT_TRUE(view->is_tcp());
  EXPECT_EQ(view->tcp().src_port, 31337);
  EXPECT_EQ(view->tcp().dst_port, 445);
  EXPECT_EQ(view->tcp().seq, 1000u);
  EXPECT_EQ(view->tcp().flags, TcpFlags::kSyn);
  ASSERT_EQ(view->l4_payload().size(), 2u);
  EXPECT_EQ(view->l4_payload()[0], 'h');
}

TEST(PacketTest, BuiltPacketsHaveValidChecksums) {
  for (IpProto proto : {IpProto::kTcp, IpProto::kUdp, IpProto::kIcmp}) {
    PacketSpec spec = BaseTcpSpec();
    spec.proto = proto;
    spec.payload = {1, 2, 3, 4, 5};
    const Packet packet = BuildPacket(spec);
    EXPECT_TRUE(ValidateChecksums(packet)) << IpProtoName(proto);
  }
}

TEST(PacketTest, OddPayloadChecksumValid) {
  PacketSpec spec = BaseTcpSpec();
  spec.proto = IpProto::kUdp;
  spec.payload = {9, 9, 9};  // odd length exercises the padding path
  EXPECT_TRUE(ValidateChecksums(BuildPacket(spec)));
}

TEST(PacketTest, CorruptedPacketFailsValidation) {
  Packet packet = BuildPacket(BaseTcpSpec());
  packet.mutable_bytes()[20] ^= 0xff;  // flip bits in the IP header
  EXPECT_FALSE(ValidateChecksums(packet));
}

TEST(PacketTest, UdpBuildAndParse) {
  PacketSpec spec = BaseTcpSpec();
  spec.proto = IpProto::kUdp;
  spec.src_port = 5353;
  spec.dst_port = 53;
  spec.payload = {0xde, 0xad};
  const auto view = PacketView::Parse(BuildPacket(spec));
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(view->is_udp());
  EXPECT_EQ(view->udp().src_port, 5353);
  EXPECT_EQ(view->udp().dst_port, 53);
  EXPECT_EQ(view->udp().length, kUdpHeaderSize + 2);
}

TEST(PacketTest, IcmpEchoBuildAndParse) {
  PacketSpec spec = BaseTcpSpec();
  spec.proto = IpProto::kIcmp;
  spec.icmp_type = 8;
  spec.icmp_id = 77;
  spec.icmp_seq = 3;
  const auto view = PacketView::Parse(BuildPacket(spec));
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(view->is_icmp());
  EXPECT_EQ(view->icmp().type, 8);
  EXPECT_EQ(view->icmp().id, 77);
  EXPECT_EQ(view->icmp().seq, 3);
}

TEST(PacketTest, ParseRejectsTruncated) {
  Packet tiny(std::vector<uint8_t>(10, 0));
  EXPECT_FALSE(PacketView::Parse(tiny).has_value());
}

TEST(PacketTest, ParseRejectsNonIpv4) {
  Packet packet = BuildPacket(BaseTcpSpec());
  packet.mutable_bytes()[12] = 0x86;  // ethertype -> IPv6
  packet.mutable_bytes()[13] = 0xdd;
  EXPECT_FALSE(PacketView::Parse(packet).has_value());
}

TEST(PacketTest, RewriteDstUpdatesChecksums) {
  Packet packet = BuildPacket(BaseTcpSpec());
  RewriteIpv4Dst(packet, Ipv4Address(10, 1, 7, 7));
  EXPECT_TRUE(ValidateChecksums(packet));
  const auto view = PacketView::Parse(packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ip().dst, Ipv4Address(10, 1, 7, 7));
  EXPECT_EQ(view->ip().src, Ipv4Address(1, 2, 3, 4));  // src untouched
}

TEST(PacketTest, RewriteSrcUpdatesChecksums) {
  PacketSpec spec = BaseTcpSpec();
  spec.proto = IpProto::kUdp;
  Packet packet = BuildPacket(spec);
  RewriteIpv4Src(packet, Ipv4Address(8, 8, 8, 8));
  EXPECT_TRUE(ValidateChecksums(packet));
  const auto view = PacketView::Parse(packet);
  EXPECT_EQ(view->ip().src, Ipv4Address(8, 8, 8, 8));
}

TEST(PacketTest, RewriteMacs) {
  Packet packet = BuildPacket(BaseTcpSpec());
  RewriteMacs(packet, MacAddress::FromId(9), MacAddress::FromId(10));
  const auto view = PacketView::Parse(packet);
  EXPECT_EQ(view->eth().src, MacAddress::FromId(9));
  EXPECT_EQ(view->eth().dst, MacAddress::FromId(10));
}

TEST(PacketTest, DecrementTtl) {
  PacketSpec spec = BaseTcpSpec();
  spec.ttl = 2;
  Packet packet = BuildPacket(spec);
  EXPECT_TRUE(DecrementTtl(packet));
  EXPECT_TRUE(ValidateChecksums(packet));
  EXPECT_EQ(PacketView::Parse(packet)->ip().ttl, 1);
  EXPECT_FALSE(DecrementTtl(packet));  // hits zero
  EXPECT_EQ(PacketView::Parse(packet)->ip().ttl, 0);
}

TEST(PacketTest, DescribeMentionsEndpointsAndFlags) {
  const std::string text = PacketView::Parse(BuildPacket(BaseTcpSpec()))->Describe();
  EXPECT_NE(text.find("1.2.3.4"), std::string::npos);
  EXPECT_NE(text.find("445"), std::string::npos);
  EXPECT_NE(text.find("[S]"), std::string::npos);
}

TEST(PacketTest, TotalLengthMatchesBuffer) {
  PacketSpec spec = BaseTcpSpec();
  spec.payload.assign(100, 0xab);
  const Packet packet = BuildPacket(spec);
  const auto view = PacketView::Parse(packet);
  EXPECT_EQ(view->ip().total_length + kEthernetHeaderSize, packet.size());
}

// ---- Randomized equivalence: RFC 1624 deltas vs full recomputation ----

// Reference byte-pair internet checksum, written independently of the
// word-at-a-time production implementation.
uint16_t RefChecksum(const uint8_t* data, size_t length) {
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < length; i += 2) {
    sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < length) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

TEST(ChecksumTest, WordAtATimeMatchesReferenceAcrossLengths) {
  Rng rng(77);
  std::vector<uint8_t> data(4096);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.NextU64());
  }
  // Sweep every length 0..96 (covers the <32-byte scalar path, the 8-byte wide
  // loop, odd tails) plus larger sizes spanning full-packet sums.
  for (size_t length = 0; length <= 96; ++length) {
    EXPECT_EQ(ComputeInternetChecksum(data.data(), length),
              RefChecksum(data.data(), length))
        << "length=" << length;
  }
  for (const size_t length : {128u, 577u, 1400u, 1514u, 4096u}) {
    EXPECT_EQ(ComputeInternetChecksum(data.data(), length),
              RefChecksum(data.data(), length))
        << "length=" << length;
  }
}

TEST(ChecksumTest, Rfc1624Update16MatchesFullRecomputeRandomized) {
  Rng rng(88);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> data(20 + 2 * rng.NextBelow(30));
    for (auto& byte : data) {
      byte = static_cast<uint8_t>(rng.NextU64());
    }
    const uint16_t before = RefChecksum(data.data(), data.size());
    const size_t word = 2 * rng.NextBelow(data.size() / 2);
    const uint16_t old_word =
        static_cast<uint16_t>((data[word] << 8) | data[word + 1]);
    const uint16_t new_word = static_cast<uint16_t>(rng.NextU64());
    data[word] = static_cast<uint8_t>(new_word >> 8);
    data[word + 1] = static_cast<uint8_t>(new_word);
    EXPECT_EQ(ChecksumUpdate16(before, old_word, new_word),
              RefChecksum(data.data(), data.size()))
        << "trial=" << trial;
  }
}

TEST(ChecksumTest, Rfc1624Update32MatchesFullRecomputeRandomized) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> data(20 + 4 * rng.NextBelow(20));
    for (auto& byte : data) {
      byte = static_cast<uint8_t>(rng.NextU64());
    }
    const uint16_t before = RefChecksum(data.data(), data.size());
    const size_t at = 4 * rng.NextBelow(data.size() / 4);
    uint32_t old_word = 0;
    for (int i = 0; i < 4; ++i) {
      old_word = (old_word << 8) | data[at + static_cast<size_t>(i)];
    }
    const uint32_t new_word = static_cast<uint32_t>(rng.NextU64());
    for (int i = 0; i < 4; ++i) {
      data[at + static_cast<size_t>(i)] =
          static_cast<uint8_t>(new_word >> (24 - 8 * i));
    }
    EXPECT_EQ(ChecksumUpdate32(before, old_word, new_word),
              RefChecksum(data.data(), data.size()))
        << "trial=" << trial;
  }
}

// Reference full-recompute rewrite over a plain byte vector (the seed's
// strategy): write the field, zero the checksums, resum from scratch.
void RefFixChecksums(std::vector<uint8_t>& b) {
  const size_t ip = kEthernetHeaderSize;
  const size_t ihl = static_cast<size_t>(b[ip] & 0x0f) * 4;
  b[ip + 10] = 0;
  b[ip + 11] = 0;
  const uint16_t ip_sum = RefChecksum(&b[ip], ihl);
  b[ip + 10] = static_cast<uint8_t>(ip_sum >> 8);
  b[ip + 11] = static_cast<uint8_t>(ip_sum);

  const auto proto = static_cast<IpProto>(b[ip + 9]);
  const size_t l4 = ip + ihl;
  const size_t l4_len = b.size() - l4;
  size_t checksum_offset = 0;
  if (proto == IpProto::kTcp) {
    checksum_offset = l4 + 16;
  } else if (proto == IpProto::kUdp) {
    checksum_offset = l4 + 6;
  } else if (proto == IpProto::kIcmp) {
    checksum_offset = l4 + 2;
  } else {
    return;
  }
  b[checksum_offset] = 0;
  b[checksum_offset + 1] = 0;
  InternetChecksum sum;
  if (proto == IpProto::kTcp || proto == IpProto::kUdp) {
    sum.Add(&b[ip + 12], 8);
    sum.AddU16(static_cast<uint16_t>(proto));
    sum.AddU16(static_cast<uint16_t>(l4_len));
  }
  sum.Add(&b[l4], l4_len);
  const uint16_t l4_sum = sum.Finish();
  b[checksum_offset] = static_cast<uint8_t>(l4_sum >> 8);
  b[checksum_offset + 1] = static_cast<uint8_t>(l4_sum);
}

TEST(PacketTest, RandomizedRewritesMatchFullRecomputeAndKeepViewInSync) {
  Rng rng(4242);
  for (int trial = 0; trial < 500; ++trial) {
    PacketSpec spec = BaseTcpSpec();
    const uint64_t pick = rng.NextBelow(3);
    spec.proto = pick == 0 ? IpProto::kTcp
                           : (pick == 1 ? IpProto::kUdp : IpProto::kIcmp);
    spec.src_ip = Ipv4Address(static_cast<uint32_t>(rng.NextU64()));
    spec.dst_ip = Ipv4Address(static_cast<uint32_t>(rng.NextU64()));
    spec.src_port = static_cast<uint16_t>(rng.NextU64());
    spec.dst_port = static_cast<uint16_t>(rng.NextU64());
    spec.ttl = static_cast<uint8_t>(2 + rng.NextBelow(60));
    spec.payload.resize(rng.NextBelow(64));  // even and odd lengths
    for (auto& byte : spec.payload) {
      byte = static_cast<uint8_t>(rng.NextU64());
    }
    Packet packet = BuildPacket(spec);
    auto view = PacketView::Parse(packet);
    ASSERT_TRUE(view.has_value());
    std::vector<uint8_t> reference = packet.bytes();

    // Apply a random sequence of the three incremental rewrites, mirroring
    // each one on the reference copy with a full recompute.
    for (int op = 0; op < 8; ++op) {
      switch (rng.NextBelow(3)) {
        case 0: {
          const Ipv4Address addr(static_cast<uint32_t>(rng.NextU64()));
          RewriteIpv4Src(packet, addr, &*view);
          for (int i = 0; i < 4; ++i) {
            reference[kEthernetHeaderSize + 12 + static_cast<size_t>(i)] =
                static_cast<uint8_t>(addr.value() >> (24 - 8 * i));
          }
          break;
        }
        case 1: {
          const Ipv4Address addr(static_cast<uint32_t>(rng.NextU64()));
          RewriteIpv4Dst(packet, addr, &*view);
          for (int i = 0; i < 4; ++i) {
            reference[kEthernetHeaderSize + 16 + static_cast<size_t>(i)] =
                static_cast<uint8_t>(addr.value() >> (24 - 8 * i));
          }
          break;
        }
        default: {
          DecrementTtl(packet, &*view);
          uint8_t& ttl = reference[kEthernetHeaderSize + 8];
          ttl = ttl <= 1 ? 0 : static_cast<uint8_t>(ttl - 1);
          break;
        }
      }
      RefFixChecksums(reference);
      ASSERT_EQ(packet.bytes(), reference)
          << "trial=" << trial << " op=" << op;
      EXPECT_TRUE(ValidateChecksums(packet));
      // The threaded view must agree with a from-scratch parse after every op.
      const auto fresh = PacketView::Parse(packet);
      ASSERT_TRUE(fresh.has_value());
      ASSERT_TRUE(view->ValidFor(packet));
      EXPECT_EQ(view->ip().src, fresh->ip().src);
      EXPECT_EQ(view->ip().dst, fresh->ip().dst);
      EXPECT_EQ(view->ip().ttl, fresh->ip().ttl);
      EXPECT_EQ(view->ip().checksum, fresh->ip().checksum);
      if (fresh->is_tcp()) {
        EXPECT_EQ(view->tcp().checksum, fresh->tcp().checksum);
      } else if (fresh->is_udp()) {
        EXPECT_EQ(view->udp().checksum, fresh->udp().checksum);
      }
    }
  }
}

TEST(PacketTest, ViewSurvivesPacketMove) {
  Packet packet = BuildPacket(BaseTcpSpec());
  auto view = PacketView::Parse(packet);
  ASSERT_TRUE(view.has_value());
  Packet moved(std::move(packet));
  EXPECT_TRUE(view->ValidFor(moved));    // buffer address is stable under move
  EXPECT_FALSE(view->ValidFor(packet));  // moved-from packet no longer matches
  RewriteIpv4Dst(moved, Ipv4Address(10, 1, 9, 9), &*view);
  EXPECT_TRUE(ValidateChecksums(moved));
  EXPECT_EQ(view->ip().dst, Ipv4Address(10, 1, 9, 9));
}

}  // namespace
}  // namespace potemkin
