#include "src/net/gre.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

Packet InnerPacket() {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(10);
  spec.dst_mac = MacAddress::FromId(11);
  spec.src_ip = Ipv4Address(198, 51, 100, 5);
  spec.dst_ip = Ipv4Address(10, 1, 0, 77);
  spec.proto = IpProto::kTcp;
  spec.src_port = 4444;
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kSyn;
  spec.payload = {1, 2, 3};
  return BuildPacket(spec);
}

const Ipv4Address kRouter(192, 0, 2, 1);
const Ipv4Address kGateway(192, 0, 2, 2);

TEST(GreTest, EncapsulateProducesGrePacket) {
  const Packet outer = GreEncapsulate(InnerPacket(), kRouter, kGateway,
                                      MacAddress::FromId(1), MacAddress::FromId(2));
  EXPECT_TRUE(IsGrePacket(outer));
  EXPECT_FALSE(IsGrePacket(InnerPacket()));
}

TEST(GreTest, DecapsulationRecoversInnerPacket) {
  const Packet inner = InnerPacket();
  const Packet outer = GreEncapsulate(inner, kRouter, kGateway,
                                      MacAddress::FromId(1), MacAddress::FromId(2));
  const auto result =
      GreDecapsulate(outer, MacAddress::FromId(3), MacAddress::FromId(4));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->outer_src, kRouter);
  EXPECT_EQ(result->outer_dst, kGateway);
  EXPECT_FALSE(result->key.has_value());

  const auto view = PacketView::Parse(result->inner);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ip().src, Ipv4Address(198, 51, 100, 5));
  EXPECT_EQ(view->ip().dst, Ipv4Address(10, 1, 0, 77));
  EXPECT_EQ(view->tcp().dst_port, 445);
  ASSERT_EQ(view->l4_payload().size(), 3u);
  EXPECT_TRUE(ValidateChecksums(result->inner));
}

TEST(GreTest, KeyRoundTrips) {
  const Packet outer =
      GreEncapsulate(InnerPacket(), kRouter, kGateway, MacAddress::FromId(1),
                     MacAddress::FromId(2), 0xdeadbeef);
  const auto result =
      GreDecapsulate(outer, MacAddress::FromId(3), MacAddress::FromId(4));
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->key.has_value());
  EXPECT_EQ(*result->key, 0xdeadbeefu);
}

TEST(GreTest, OuterIpHeaderChecksumValid) {
  const Packet outer = GreEncapsulate(InnerPacket(), kRouter, kGateway,
                                      MacAddress::FromId(1), MacAddress::FromId(2));
  // Outer packet: IP proto GRE — ValidateChecksums checks the IP header for
  // non-TCP/UDP/ICMP protocols.
  EXPECT_TRUE(ValidateChecksums(outer));
}

TEST(GreTest, DecapsulateRejectsNonGre) {
  EXPECT_FALSE(GreDecapsulate(InnerPacket(), MacAddress::FromId(3),
                              MacAddress::FromId(4))
                   .has_value());
}

TEST(GreTest, DecapsulateRejectsTruncated) {
  Packet outer = GreEncapsulate(InnerPacket(), kRouter, kGateway,
                                MacAddress::FromId(1), MacAddress::FromId(2));
  outer.mutable_bytes().resize(kEthernetHeaderSize + kIpv4MinHeaderSize + 2);
  EXPECT_FALSE(GreDecapsulate(outer, MacAddress::FromId(3), MacAddress::FromId(4))
                   .has_value());
}

TEST(GreTunnelTest, AcceptsMatchingTunnelTraffic) {
  GreTunnel router_end(kRouter, kGateway, 7);
  GreTunnel gateway_end(kGateway, kRouter, 7);
  const Packet wire = router_end.Send(InnerPacket());
  const auto inner = gateway_end.Receive(wire);
  ASSERT_TRUE(inner.has_value());
  const auto view = PacketView::Parse(*inner);
  EXPECT_EQ(view->ip().dst, Ipv4Address(10, 1, 0, 77));
  EXPECT_EQ(gateway_end.packets_decapsulated(), 1u);
  EXPECT_EQ(router_end.packets_encapsulated(), 1u);
}

TEST(GreTunnelTest, RejectsWrongKey) {
  GreTunnel sender(kRouter, kGateway, 7);
  GreTunnel receiver(kGateway, kRouter, 8);  // different key
  const auto inner = receiver.Receive(sender.Send(InnerPacket()));
  EXPECT_FALSE(inner.has_value());
  EXPECT_EQ(receiver.packets_rejected(), 1u);
}

TEST(GreTunnelTest, RejectsWrongPeer) {
  GreTunnel sender(Ipv4Address(192, 0, 2, 99), kGateway, std::nullopt);
  GreTunnel receiver(kGateway, kRouter, std::nullopt);  // expects kRouter
  EXPECT_FALSE(receiver.Receive(sender.Send(InnerPacket())).has_value());
}

TEST(GreTunnelTest, BidirectionalRoundTrip) {
  GreTunnel a(kRouter, kGateway, std::nullopt);
  GreTunnel b(kGateway, kRouter, std::nullopt);
  const auto at_b = b.Receive(a.Send(InnerPacket()));
  ASSERT_TRUE(at_b.has_value());
  const auto back_at_a = a.Receive(b.Send(*at_b));
  ASSERT_TRUE(back_at_a.has_value());
  const auto view = PacketView::Parse(*back_at_a);
  EXPECT_EQ(view->tcp().dst_port, 445);
}

}  // namespace
}  // namespace potemkin
