#include <gtest/gtest.h>

#include "src/analysis/cdf.h"
#include "src/analysis/series_util.h"

namespace potemkin {
namespace {

TEST(CdfTest, QuantilesOfKnownData) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(cdf.Min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Max(), 100.0);
  EXPECT_NEAR(cdf.Median(), 50.5, 0.5);
  EXPECT_NEAR(cdf.Quantile(0.25), 25.75, 0.5);
  EXPECT_DOUBLE_EQ(cdf.Mean(), 50.5);
}

TEST(CdfTest, UnsortedInsertOrderIrrelevant) {
  Cdf a;
  Cdf b;
  a.AddAll({3, 1, 2});
  b.AddAll({1, 2, 3});
  EXPECT_DOUBLE_EQ(a.Median(), b.Median());
}

TEST(CdfTest, EmptyCdfSafe) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Mean(), 0.0);
  EXPECT_TRUE(cdf.Points().empty());
}

TEST(CdfTest, PointsAreMonotone) {
  Cdf cdf;
  for (int i = 0; i < 1000; ++i) {
    cdf.Add(static_cast<double>((i * 37) % 500));
  }
  const auto points = cdf.Points(50);
  ASSERT_FALSE(points.empty());
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(CdfTest, PlotDataHasOneLinePerPoint) {
  Cdf cdf;
  cdf.AddAll({1, 2, 3, 4});
  const std::string data = cdf.ToPlotData(4);
  size_t lines = 0;
  for (char c : data) {
    lines += (c == '\n') ? 1 : 0;
  }
  EXPECT_GE(lines, 4u);
}

TEST(SeriesUtilTest, AlignSeriesStepSemantics) {
  TimeSeries s1;
  s1.Record(TimePoint() + Duration::Seconds(0.0), 1.0);
  s1.Record(TimePoint() + Duration::Seconds(2.5), 5.0);
  TimeSeries s2;
  s2.Record(TimePoint() + Duration::Seconds(1.0), 10.0);
  const Table table = AlignSeries({{"a", s1}, {"b", s2}}, Duration::Seconds(1.0),
                                  TimePoint() + Duration::Seconds(4.0));
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("t_seconds,a,b"), std::string::npos);
  EXPECT_NE(csv.find("0.0,1,0"), std::string::npos);   // before s2 starts
  EXPECT_NE(csv.find("2.0,1,10"), std::string::npos);  // s1 still 1
  EXPECT_NE(csv.find("3.0,5,10"), std::string::npos);  // s1 stepped to 5
  EXPECT_EQ(table.row_count(), 5u);
}

TEST(SeriesUtilTest, SparklineReflectsShape) {
  TimeSeries s;
  for (int i = 0; i <= 10; ++i) {
    s.Record(TimePoint() + Duration::Seconds(i), static_cast<double>(i));
  }
  const std::string line =
      Sparkline(s, 10, TimePoint() + Duration::Seconds(10.0));
  ASSERT_EQ(line.size(), 10u);
  EXPECT_EQ(line.back(), '#');  // maximum at the end
}

TEST(SeriesUtilTest, SparklineEmptyInputs) {
  TimeSeries s;
  EXPECT_EQ(Sparkline(s, 10, TimePoint() + Duration::Seconds(1.0)), "");
}

}  // namespace
}  // namespace potemkin
