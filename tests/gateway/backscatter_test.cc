// Tests for ICMP error backscatter, gateway TTL handling and emergency reclaim.
#include <gtest/gtest.h>

#include "src/core/honeyfarm.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 22);
const Ipv4Address kProber(198, 51, 100, 9);

HoneyfarmConfig SmallFarm() {
  HoneyfarmConfig config = MakeDefaultFarmConfig(kFarm, /*num_hosts=*/1,
                                                 /*host_memory_mb=*/128,
                                                 ContentMode::kStoreBytes);
  config.server_template.image.num_pages = 512;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.gateway.containment.mode = OutboundMode::kDropAll;
  config.gateway.recycle.idle_timeout = Duration::Minutes(10);
  config.gateway.recycle.max_lifetime = Duration::Zero();
  return config;
}

Packet UdpProbe(Ipv4Address dst, uint16_t dport, uint8_t ttl = 64) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(9);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = kProber;
  spec.dst_ip = dst;
  spec.proto = IpProto::kUdp;
  spec.src_port = 53123;
  spec.dst_port = dport;
  spec.ttl = ttl;
  spec.payload = {1, 2, 3, 4};
  return BuildPacket(spec);
}

TEST(IcmpHelpersTest, QuoteAndEmbeddedAddressesRoundTrip) {
  const Packet offending = UdpProbe(kFarm.AddressAt(5), 123);
  PacketSpec error;
  error.src_ip = kFarm.AddressAt(5);
  error.dst_ip = kProber;
  error.proto = IpProto::kIcmp;
  error.icmp_type = kIcmpDestUnreachable;
  error.icmp_code = kIcmpCodePortUnreachable;
  error.payload = IcmpQuoteOf(offending);
  const Packet error_packet = BuildPacket(error);
  const auto view = PacketView::Parse(error_packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(IsIcmpError(*view));
  const auto embedded = IcmpEmbeddedAddresses(*view);
  ASSERT_TRUE(embedded.has_value());
  EXPECT_EQ(embedded->first, kProber);               // quoted src
  EXPECT_EQ(embedded->second, kFarm.AddressAt(5));   // quoted dst
  // Quote is IP header (20) + 8 payload bytes.
  EXPECT_EQ(view->l4_payload().size(), 28u);
}

TEST(IcmpHelpersTest, EchoIsNotAnError) {
  PacketSpec echo;
  echo.proto = IpProto::kIcmp;
  echo.icmp_type = kIcmpEchoRequest;
  const auto view = PacketView::Parse(BuildPacket(echo));
  EXPECT_FALSE(IsIcmpError(*view));
  EXPECT_FALSE(IcmpEmbeddedAddresses(*view).has_value());
}

TEST(BackscatterTest, ClosedUdpPortEmitsPortUnreachableThroughGateway) {
  Honeyfarm farm(SmallFarm());
  std::vector<Packet> egress;
  farm.set_egress_monitor([&](const Packet& p) { egress.push_back(p); });
  farm.Start();
  // Port 123 is a privileged port no default service listens on.
  farm.InjectInbound(UdpProbe(kFarm.AddressAt(5), 123));
  farm.RunFor(Duration::Seconds(2.0));
  ASSERT_EQ(egress.size(), 1u);
  const auto view = PacketView::Parse(egress[0]);
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(view->is_icmp());
  EXPECT_EQ(view->icmp().type, kIcmpDestUnreachable);
  EXPECT_EQ(view->icmp().code, kIcmpCodePortUnreachable);
  EXPECT_EQ(view->ip().dst, kProber);
  EXPECT_TRUE(ValidateChecksums(egress[0]));
  EXPECT_EQ(farm.gateway().stats().icmp_errors_allowed_out, 1u);
}

TEST(BackscatterTest, ForgedIcmpErrorsAreContained) {
  // An infected VM trying to smuggle data as an ICMP "error" about traffic that
  // never entered the farm must be contained.
  Honeyfarm farm(SmallFarm());
  std::vector<Packet> egress;
  farm.set_egress_monitor([&](const Packet& p) { egress.push_back(p); });
  farm.Start();
  farm.InjectInbound(UdpProbe(kFarm.AddressAt(5), 1434));  // brings up a VM
  farm.RunFor(Duration::Seconds(2.0));
  const Binding* binding = farm.gateway().bindings().Find(kFarm.AddressAt(5));
  ASSERT_NE(binding, nullptr);
  GuestOs* guest = farm.server(0).FindGuest(binding->vm);
  ASSERT_NE(guest, nullptr);
  const size_t egress_before = egress.size();

  // Forged quote: claims the farm sent traffic TO another external host.
  PacketSpec forged_original;
  forged_original.src_ip = kFarm.AddressAt(5);
  forged_original.dst_ip = Ipv4Address(203, 0, 113, 77);
  forged_original.proto = IpProto::kUdp;
  PacketSpec forged_error;
  forged_error.src_mac = guest->vm()->mac();
  forged_error.dst_mac = MacAddress::FromId(1);
  forged_error.src_ip = kFarm.AddressAt(5);
  forged_error.dst_ip = Ipv4Address(203, 0, 113, 77);
  forged_error.proto = IpProto::kIcmp;
  forged_error.icmp_type = kIcmpDestUnreachable;
  forged_error.icmp_code = kIcmpCodePortUnreachable;
  forged_error.payload = IcmpQuoteOf(BuildPacket(forged_original));
  guest->vm()->Transmit(BuildPacket(forged_error));
  farm.RunFor(Duration::Seconds(1.0));
  EXPECT_EQ(egress.size(), egress_before);  // contained
}

TEST(TtlTest, ExpiredTtlDroppedAtGateway) {
  Honeyfarm farm(SmallFarm());
  farm.Start();
  // TTL 1 decrements to 0 at the gateway hop: never delivered.
  farm.InjectInbound(UdpProbe(kFarm.AddressAt(5), 1434, /*ttl=*/1));
  farm.RunFor(Duration::Seconds(2.0));
  EXPECT_EQ(farm.gateway().stats().ttl_expired_drops, 1u);
  EXPECT_EQ(farm.gateway().stats().inbound_delivered, 0u);
  // The VM was still cloned (late binding happens before delivery)...
  EXPECT_EQ(farm.TotalLiveVms(), 1u);
  // ...and a healthy-TTL packet reaches it.
  farm.InjectInbound(UdpProbe(kFarm.AddressAt(5), 1434, /*ttl=*/64));
  farm.RunFor(Duration::Seconds(1.0));
  EXPECT_EQ(farm.gateway().stats().inbound_delivered, 1u);
}

TEST(EmergencyReclaimTest, PressureRetiresMostIdleVms) {
  HoneyfarmConfig config = SmallFarm();
  config.server_template.host.memory_mb = 8;  // tiny: image 2 MiB + a few VMs
  config.server_template.host.admission_reserve_frames = 64;
  config.server_template.host.domain_overhead_frames = 128;
  config.gateway.recycle.emergency_reclaim_batch = 2;
  Honeyfarm farm(config);
  farm.Start();

  // Fill the host to the admission wall.
  uint64_t address = 0;
  uint64_t live_before = 0;
  for (; address < 32; ++address) {
    farm.InjectInbound(UdpProbe(kFarm.AddressAt(address), 1434));
    farm.RunFor(Duration::Seconds(1.0));
    if (farm.gateway().stats().no_capacity_drops > 0) {
      break;
    }
    live_before = farm.TotalLiveVms();
  }
  ASSERT_GT(farm.gateway().stats().no_capacity_drops, 0u);
  EXPECT_EQ(farm.gateway().stats().emergency_reclaims, 2u);
  farm.RunFor(Duration::Seconds(2.0));  // teardown completes
  EXPECT_LT(farm.TotalLiveVms(), live_before);

  // Capacity recovered: a fresh address now gets a VM.
  const uint64_t clones_before = farm.total_clones_completed();
  farm.InjectInbound(UdpProbe(kFarm.AddressAt(100), 1434));
  farm.RunFor(Duration::Seconds(2.0));
  EXPECT_GT(farm.total_clones_completed(), clones_before);
}

TEST(EmergencyReclaimTest, DisabledByDefault) {
  HoneyfarmConfig config = SmallFarm();
  config.server_template.host.memory_mb = 8;
  config.server_template.host.admission_reserve_frames = 64;
  config.server_template.host.domain_overhead_frames = 128;
  Honeyfarm farm(config);
  farm.Start();
  for (uint64_t i = 0; i < 32; ++i) {
    farm.InjectInbound(UdpProbe(kFarm.AddressAt(i), 1434));
    farm.RunFor(Duration::Seconds(1.0));
  }
  EXPECT_GT(farm.gateway().stats().no_capacity_drops, 0u);
  EXPECT_EQ(farm.gateway().stats().emergency_reclaims, 0u);
}

}  // namespace
}  // namespace potemkin
