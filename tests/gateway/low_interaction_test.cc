#include "src/gateway/low_interaction.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

const Ipv4Prefix kPrefix(Ipv4Address(10, 1, 0, 0), 16);

PacketView MakeView(Packet& storage, IpProto proto, uint16_t dst_port,
                    uint8_t tcp_flags = TcpFlags::kSyn,
                    std::vector<uint8_t> payload = {}) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(7);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = Ipv4Address(198, 51, 100, 3);
  spec.dst_ip = kPrefix.AddressAt(77);
  spec.proto = proto;
  spec.src_port = 40000;
  spec.dst_port = dst_port;
  spec.tcp_flags = tcp_flags;
  spec.icmp_type = 8;
  spec.payload = std::move(payload);
  storage = BuildPacket(spec);
  return *PacketView::Parse(storage);
}

TEST(LowInteractionTest, SynToOpenPortGetsSynAck) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  const auto reply = responder.Respond(MakeView(storage, IpProto::kTcp, 445));
  ASSERT_TRUE(reply.has_value());
  const auto view = PacketView::Parse(*reply);
  EXPECT_EQ(view->tcp().flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_EQ(view->ip().src, kPrefix.AddressAt(77));  // impersonates the probed IP
  EXPECT_TRUE(ValidateChecksums(*reply));
  EXPECT_EQ(responder.stats().synacks_sent, 1u);
}

TEST(LowInteractionTest, ClosedPortGetsRst) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  const auto reply = responder.Respond(MakeView(storage, IpProto::kTcp, 9999));
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(PacketView::Parse(*reply)->tcp().flags & TcpFlags::kRst);
}

TEST(LowInteractionTest, BannerOnRequest) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  const auto reply = responder.Respond(MakeView(
      storage, IpProto::kTcp, 80, TcpFlags::kPsh | TcpFlags::kAck, {'G', 'E', 'T'}));
  ASSERT_TRUE(reply.has_value());
  const auto payload = PacketView::Parse(*reply)->l4_payload();
  EXPECT_NE(std::string(payload.begin(), payload.end()).find("IIS"),
            std::string::npos);
}

TEST(LowInteractionTest, IcmpEchoAnswered) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  const auto reply =
      responder.Respond(MakeView(storage, IpProto::kIcmp, 0, 0, {9, 9}));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(PacketView::Parse(*reply)->icmp().type, 0);
  EXPECT_EQ(responder.stats().icmp_replies, 1u);
}

TEST(LowInteractionTest, ExploitsBounceOffTheFacade) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  std::vector<uint8_t> exploit = {'E', 'X', 'P', 'L', 'O', 'I', 'T', '-',
                                  'S', 'L', 'A', 'M', 'M', 'E', 'R'};
  const auto reply = responder.Respond(
      MakeView(storage, IpProto::kUdp, 1434, 0, exploit));
  // It answers with the canned banner but nothing was compromised.
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(responder.stats().exploit_payloads_ignored, 1u);
}

TEST(LowInteractionTest, OutsidePrefixIgnored) {
  LowInteractionResponder responder(Ipv4Prefix(Ipv4Address(172, 16, 0, 0), 16),
                                    DefaultWindowsServices(), 1);
  Packet storage;
  EXPECT_FALSE(responder.Respond(MakeView(storage, IpProto::kTcp, 445)).has_value());
  EXPECT_EQ(responder.stats().packets_seen, 0u);
}

TEST(LowInteractionTest, StatelessAcrossMillionsOfAddresses) {
  // One responder covers the whole prefix with zero per-address state.
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  for (uint64_t i = 0; i < 1000; ++i) {
    PacketSpec spec;
    spec.src_mac = MacAddress::FromId(7);
    spec.dst_mac = MacAddress::FromId(1);
    spec.src_ip = Ipv4Address(198, 51, 100, 3);
    spec.dst_ip = kPrefix.AddressAt(i * 61 % kPrefix.NumAddresses());
    spec.proto = IpProto::kTcp;
    spec.src_port = 40000;
    spec.dst_port = 445;
    spec.tcp_flags = TcpFlags::kSyn;
    const Packet packet = BuildPacket(spec);
    const auto reply = responder.Respond(*PacketView::Parse(packet));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(PacketView::Parse(*reply)->ip().src, spec.dst_ip);
  }
  EXPECT_EQ(responder.stats().synacks_sent, 1000u);
}

}  // namespace
}  // namespace potemkin
