#include "src/gateway/low_interaction.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

const Ipv4Prefix kPrefix(Ipv4Address(10, 1, 0, 0), 16);

PacketView MakeView(Packet& storage, IpProto proto, uint16_t dst_port,
                    uint8_t tcp_flags = TcpFlags::kSyn,
                    std::vector<uint8_t> payload = {}) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(7);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = Ipv4Address(198, 51, 100, 3);
  spec.dst_ip = kPrefix.AddressAt(77);
  spec.proto = proto;
  spec.src_port = 40000;
  spec.dst_port = dst_port;
  spec.tcp_flags = tcp_flags;
  spec.icmp_type = 8;
  spec.payload = std::move(payload);
  storage = BuildPacket(spec);
  return *PacketView::Parse(storage);
}

TEST(LowInteractionTest, SynToOpenPortGetsSynAck) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  const auto reply = responder.Respond(MakeView(storage, IpProto::kTcp, 445));
  ASSERT_TRUE(reply.has_value());
  const auto view = PacketView::Parse(*reply);
  EXPECT_EQ(view->tcp().flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_EQ(view->ip().src, kPrefix.AddressAt(77));  // impersonates the probed IP
  EXPECT_TRUE(ValidateChecksums(*reply));
  EXPECT_EQ(responder.stats().synacks_sent, 1u);
}

TEST(LowInteractionTest, ClosedPortGetsRst) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  const auto reply = responder.Respond(MakeView(storage, IpProto::kTcp, 9999));
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(PacketView::Parse(*reply)->tcp().flags & TcpFlags::kRst);
}

TEST(LowInteractionTest, BannerOnRequest) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  const auto reply = responder.Respond(MakeView(
      storage, IpProto::kTcp, 80, TcpFlags::kPsh | TcpFlags::kAck, {'G', 'E', 'T'}));
  ASSERT_TRUE(reply.has_value());
  const auto payload = PacketView::Parse(*reply)->l4_payload();
  EXPECT_NE(std::string(payload.begin(), payload.end()).find("IIS"),
            std::string::npos);
}

TEST(LowInteractionTest, IcmpEchoAnswered) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  const auto reply =
      responder.Respond(MakeView(storage, IpProto::kIcmp, 0, 0, {9, 9}));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(PacketView::Parse(*reply)->icmp().type, 0);
  EXPECT_EQ(responder.stats().icmp_replies, 1u);
}

TEST(LowInteractionTest, ExploitsBounceOffTheFacade) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  std::vector<uint8_t> exploit = {'E', 'X', 'P', 'L', 'O', 'I', 'T', '-',
                                  'S', 'L', 'A', 'M', 'M', 'E', 'R'};
  const auto reply = responder.Respond(
      MakeView(storage, IpProto::kUdp, 1434, 0, exploit));
  // It answers with the canned banner but nothing was compromised.
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(responder.stats().exploit_payloads_ignored, 1u);
}

TEST(LowInteractionTest, OutsidePrefixIgnored) {
  LowInteractionResponder responder(Ipv4Prefix(Ipv4Address(172, 16, 0, 0), 16),
                                    DefaultWindowsServices(), 1);
  Packet storage;
  EXPECT_FALSE(responder.Respond(MakeView(storage, IpProto::kTcp, 445)).has_value());
  EXPECT_EQ(responder.stats().packets_seen, 0u);
}

TEST(LowInteractionTest, StatelessAcrossMillionsOfAddresses) {
  // One responder covers the whole prefix with zero per-address state.
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  for (uint64_t i = 0; i < 1000; ++i) {
    PacketSpec spec;
    spec.src_mac = MacAddress::FromId(7);
    spec.dst_mac = MacAddress::FromId(1);
    spec.src_ip = Ipv4Address(198, 51, 100, 3);
    spec.dst_ip = kPrefix.AddressAt(i * 61 % kPrefix.NumAddresses());
    spec.proto = IpProto::kTcp;
    spec.src_port = 40000;
    spec.dst_port = 445;
    spec.tcp_flags = TcpFlags::kSyn;
    const Packet packet = BuildPacket(spec);
    const auto reply = responder.Respond(*PacketView::Parse(packet));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(PacketView::Parse(*reply)->ip().src, spec.dst_ip);
  }
  EXPECT_EQ(responder.stats().synacks_sent, 1000u);
}

TEST(LowInteractionTest, FlowIsnIsStablePerFlowAndVariesAcrossFlows) {
  // The facade keeps no per-flow state, so the SYN|ACK sequence number must be
  // recomputable from the packet alone — yet stable within a flow, so a
  // retransmitted SYN sees the same ISN a stateful server would show.
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 42);
  Packet storage;
  const auto first = responder.Respond(MakeView(storage, IpProto::kTcp, 445));
  const auto again = responder.Respond(MakeView(storage, IpProto::kTcp, 445));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(PacketView::Parse(*first)->tcp().seq,
            PacketView::Parse(*again)->tcp().seq);

  const auto other_port = responder.Respond(MakeView(storage, IpProto::kTcp, 80));
  ASSERT_TRUE(other_port.has_value());
  EXPECT_NE(PacketView::Parse(*first)->tcp().seq,
            PacketView::Parse(*other_port)->tcp().seq);

  LowInteractionResponder reseeded(kPrefix, DefaultWindowsServices(), 43);
  const auto other_seed = reseeded.Respond(MakeView(storage, IpProto::kTcp, 445));
  ASSERT_TRUE(other_seed.has_value());
  EXPECT_NE(PacketView::Parse(*first)->tcp().seq,
            PacketView::Parse(*other_seed)->tcp().seq);
}

TEST(LowInteractionTest, AckBearingSegmentToClosedPortGetsRfcRst) {
  // RFC 793 p.36 first form: if the incoming segment has an ACK, the RST takes
  // its sequence number from SEG.ACK and carries no ACK flag.
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(7);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = Ipv4Address(198, 51, 100, 3);
  spec.dst_ip = kPrefix.AddressAt(77);
  spec.proto = IpProto::kTcp;
  spec.src_port = 40000;
  spec.dst_port = 9999;
  spec.tcp_flags = TcpFlags::kPsh | TcpFlags::kAck;
  spec.seq = 500;
  spec.ack = 777;
  spec.payload = {'x', 'y'};
  const Packet packet = BuildPacket(spec);
  const auto reply = responder.Respond(*PacketView::Parse(packet));
  ASSERT_TRUE(reply.has_value());
  const auto rst = PacketView::Parse(*reply);
  EXPECT_EQ(rst->tcp().flags, TcpFlags::kRst);  // no ACK flag
  EXPECT_EQ(rst->tcp().seq, 777u);              // SEG.ACK
  EXPECT_EQ(rst->tcp().ack, 0u);
}

TEST(LowInteractionTest, NoAckSegmentToClosedPortGetsRstAckCoveringSegLen) {
  // RFC 793 p.36 second form: no ACK on the incoming segment means the RST
  // carries seq=0 and acknowledges SEG.SEQ + SEG.LEN, where the SYN counts as
  // one octet in addition to the payload.
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(7);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = Ipv4Address(198, 51, 100, 3);
  spec.dst_ip = kPrefix.AddressAt(77);
  spec.proto = IpProto::kTcp;
  spec.src_port = 40000;
  spec.dst_port = 9999;
  spec.tcp_flags = TcpFlags::kSyn;
  spec.seq = 600;
  spec.payload = {'a', 'b'};
  const Packet packet = BuildPacket(spec);
  const auto reply = responder.Respond(*PacketView::Parse(packet));
  ASSERT_TRUE(reply.has_value());
  const auto rst = PacketView::Parse(*reply);
  EXPECT_EQ(rst->tcp().flags, TcpFlags::kRst | TcpFlags::kAck);
  EXPECT_EQ(rst->tcp().seq, 0u);
  EXPECT_EQ(rst->tcp().ack, 603u);  // 600 + 2 payload + 1 SYN
}

TEST(LowInteractionTest, RstsAreNeverAnswered) {
  // Answering a RST would create an infinite RST exchange between two facades
  // (and is forbidden by RFC 793 anyway).
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  Packet storage;
  EXPECT_FALSE(responder
                   .Respond(MakeView(storage, IpProto::kTcp, 445, TcpFlags::kRst))
                   .has_value());
  EXPECT_FALSE(responder
                   .Respond(MakeView(storage, IpProto::kTcp, 9999,
                                     TcpFlags::kRst | TcpFlags::kAck))
                   .has_value());
  EXPECT_EQ(responder.stats().rsts_sent, 0u);
}

TEST(LowInteractionTest, SynAckAcksOnlyTheSynEvenWithDataRidingTheSyn) {
  // Data riding the SYN is not accepted before establishment; the SYN|ACK must
  // acknowledge exactly one octet, matching the strict stack's behavior.
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(7);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = Ipv4Address(198, 51, 100, 3);
  spec.dst_ip = kPrefix.AddressAt(77);
  spec.proto = IpProto::kTcp;
  spec.src_port = 40000;
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kSyn | TcpFlags::kPsh;
  spec.seq = 2000;
  spec.payload = {'E', 'X', 'P'};
  const Packet packet = BuildPacket(spec);
  const auto reply = responder.Respond(*PacketView::Parse(packet));
  ASSERT_TRUE(reply.has_value());
  const auto synack = PacketView::Parse(*reply);
  EXPECT_EQ(synack->tcp().flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_EQ(synack->tcp().ack, 2001u);  // SYN octet only, not the 3 data bytes
}

TEST(LowInteractionTest, FinAckCoversPayloadAndFinOctet) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 1);
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(7);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = Ipv4Address(198, 51, 100, 3);
  spec.dst_ip = kPrefix.AddressAt(77);
  spec.proto = IpProto::kTcp;
  spec.src_port = 40000;
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kFin | TcpFlags::kPsh | TcpFlags::kAck;
  spec.seq = 9000;
  spec.ack = 1;
  spec.payload = {'b', 'y', 'e'};
  const Packet packet = BuildPacket(spec);
  const auto reply = responder.Respond(*PacketView::Parse(packet));
  ASSERT_TRUE(reply.has_value());
  const auto finack = PacketView::Parse(*reply);
  EXPECT_EQ(finack->tcp().flags, TcpFlags::kFin | TcpFlags::kAck);
  EXPECT_EQ(finack->tcp().ack, 9004u);  // 9000 + 3 payload + 1 FIN
  EXPECT_EQ(responder.stats().finacks_sent, 1u);
}

}  // namespace
}  // namespace potemkin
