#include "src/gateway/binding_table.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

const Ipv4Address kIp(10, 1, 0, 5);

Packet SomePacket() {
  PacketSpec spec;
  spec.src_ip = Ipv4Address(1, 2, 3, 4);
  spec.dst_ip = kIp;
  spec.proto = IpProto::kTcp;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

TEST(BindingTableTest, CreateFindRemoveLifecycle) {
  BindingTable table;
  EXPECT_EQ(table.Find(kIp), nullptr);
  Binding& binding = table.CreatePending(kIp, /*host=*/3, TimePoint());
  EXPECT_EQ(binding.state, BindingState::kCloning);
  EXPECT_EQ(binding.host, 3u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Find(kIp), &binding);
  EXPECT_TRUE(table.Remove(kIp));
  EXPECT_FALSE(table.Remove(kIp));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().bindings_created, 1u);
  EXPECT_EQ(table.stats().bindings_removed, 1u);
}

TEST(BindingTableTest, ActivateTransitionsState) {
  BindingTable table;
  table.CreatePending(kIp, 0, TimePoint());
  Binding* binding = table.Activate(kIp, /*vm=*/99, TimePoint() + Duration::Millis(500));
  ASSERT_NE(binding, nullptr);
  EXPECT_EQ(binding->state, BindingState::kActive);
  EXPECT_EQ(binding->vm, 99u);
  EXPECT_EQ(binding->last_activity, TimePoint() + Duration::Millis(500));
  EXPECT_EQ(table.Activate(Ipv4Address(9, 9, 9, 9), 1, TimePoint()), nullptr);
}

TEST(BindingTableTest, PendingQueueRespectsCap) {
  BindingTable table(/*pending_queue_cap=*/2);
  Binding& binding = table.CreatePending(kIp, 0, TimePoint());
  EXPECT_TRUE(table.QueuePending(binding, SomePacket()));
  EXPECT_TRUE(table.QueuePending(binding, SomePacket()));
  EXPECT_FALSE(table.QueuePending(binding, SomePacket()));
  EXPECT_EQ(table.stats().pending_queued, 2u);
  EXPECT_EQ(table.stats().pending_dropped, 1u);
  const auto drained = table.TakePending(binding);
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_TRUE(binding.pending.empty());
  // Queue reusable after draining.
  EXPECT_TRUE(table.QueuePending(binding, SomePacket()));
}

TEST(BindingTableTest, PeakTracksHighWater) {
  BindingTable table;
  for (uint32_t i = 0; i < 5; ++i) {
    table.CreatePending(Ipv4Address(kIp.value() + i), 0, TimePoint());
  }
  for (uint32_t i = 0; i < 5; ++i) {
    table.Remove(Ipv4Address(kIp.value() + i));
  }
  EXPECT_EQ(table.stats().peak_live, 5u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(BindingTableTest, CollectIfSelectsMatching) {
  BindingTable table;
  for (uint32_t i = 0; i < 10; ++i) {
    Binding& binding = table.CreatePending(Ipv4Address(kIp.value() + i), 0, TimePoint());
    binding.infected = (i % 3 == 0);
  }
  const auto infected =
      table.CollectIf([](const Binding& b) { return b.infected; });
  EXPECT_EQ(infected.size(), 4u);  // i = 0,3,6,9
}

TEST(BindingTableTest, ForEachVisitsAll) {
  BindingTable table;
  for (uint32_t i = 0; i < 7; ++i) {
    table.CreatePending(Ipv4Address(kIp.value() + i), 0, TimePoint());
  }
  size_t visited = 0;
  table.ForEach([&](Binding&) { ++visited; });
  EXPECT_EQ(visited, 7u);
}

}  // namespace
}  // namespace potemkin
