#include "src/gateway/binding_table.h"

#include <gtest/gtest.h>

namespace potemkin {
namespace {

const Ipv4Address kIp(10, 1, 0, 5);

Packet SomePacket() {
  PacketSpec spec;
  spec.src_ip = Ipv4Address(1, 2, 3, 4);
  spec.dst_ip = kIp;
  spec.proto = IpProto::kTcp;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

TEST(BindingTableTest, CreateFindRemoveLifecycle) {
  BindingTable table;
  EXPECT_EQ(table.Find(kIp), nullptr);
  Binding& binding = table.CreatePending(kIp, /*host=*/3, TimePoint());
  EXPECT_EQ(binding.state, BindingState::kCloning);
  EXPECT_EQ(binding.host, 3u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Find(kIp), &binding);
  EXPECT_TRUE(table.Remove(kIp));
  EXPECT_FALSE(table.Remove(kIp));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().bindings_created, 1u);
  EXPECT_EQ(table.stats().bindings_removed, 1u);
}

TEST(BindingTableTest, ActivateTransitionsState) {
  BindingTable table;
  table.CreatePending(kIp, 0, TimePoint());
  Binding* binding = table.Activate(kIp, /*vm=*/99, TimePoint() + Duration::Millis(500));
  ASSERT_NE(binding, nullptr);
  EXPECT_EQ(binding->state, BindingState::kActive);
  EXPECT_EQ(binding->vm, 99u);
  EXPECT_EQ(binding->last_activity, TimePoint() + Duration::Millis(500));
  EXPECT_EQ(table.Activate(Ipv4Address(9, 9, 9, 9), 1, TimePoint()), nullptr);
}

TEST(BindingTableTest, PendingQueueRespectsCap) {
  BindingTable table(/*pending_queue_cap=*/2);
  Binding& binding = table.CreatePending(kIp, 0, TimePoint());
  EXPECT_TRUE(table.QueuePending(binding, SomePacket()));
  EXPECT_TRUE(table.QueuePending(binding, SomePacket()));
  EXPECT_FALSE(table.QueuePending(binding, SomePacket()));
  EXPECT_EQ(table.stats().pending_queued, 2u);
  EXPECT_EQ(table.stats().pending_dropped, 1u);
  const auto drained = table.TakePending(binding);
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(binding.pending_count, 0u);
  // Queue reusable after draining.
  EXPECT_TRUE(table.QueuePending(binding, SomePacket()));
}

TEST(BindingTableTest, PeakTracksHighWater) {
  BindingTable table;
  for (uint32_t i = 0; i < 5; ++i) {
    table.CreatePending(Ipv4Address(kIp.value() + i), 0, TimePoint());
  }
  for (uint32_t i = 0; i < 5; ++i) {
    table.Remove(Ipv4Address(kIp.value() + i));
  }
  EXPECT_EQ(table.stats().peak_live, 5u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(BindingTableTest, CollectIfSelectsMatching) {
  BindingTable table;
  for (uint32_t i = 0; i < 10; ++i) {
    Binding& binding = table.CreatePending(Ipv4Address(kIp.value() + i), 0, TimePoint());
    binding.infected = (i % 3 == 0);
  }
  const auto infected =
      table.CollectIf([](const Binding& b) { return b.infected; });
  EXPECT_EQ(infected.size(), 4u);  // i = 0,3,6,9
}

// Drives the open-addressed index through several rehash doublings plus a
// tombstone-heavy delete/reinsert cycle and verifies every key still resolves
// to its own binding.
TEST(BindingTableTest, GrowthTo64KiBindingsStaysConsistent) {
  BindingTable table;
  constexpr uint32_t kCount = 1u << 16;
  const uint32_t base = Ipv4Address(10, 0, 0, 0).value();
  for (uint32_t i = 0; i < kCount; ++i) {
    Binding& binding = table.CreatePending(Ipv4Address(base + i), i % 16, TimePoint());
    binding.vm = i;
  }
  EXPECT_EQ(table.size(), kCount);
  for (uint32_t i = 0; i < kCount; i += 257) {
    Binding* binding = table.Find(Ipv4Address(base + i));
    ASSERT_NE(binding, nullptr);
    EXPECT_EQ(binding->vm, i);
    EXPECT_EQ(binding->host, i % 16);
  }
  // Delete every even key (leaves tombstones), then reinsert with new payloads.
  for (uint32_t i = 0; i < kCount; i += 2) {
    ASSERT_TRUE(table.Remove(Ipv4Address(base + i)));
  }
  EXPECT_EQ(table.size(), kCount / 2);
  for (uint32_t i = 0; i < kCount; i += 2) {
    Binding& binding = table.CreatePending(Ipv4Address(base + i), 0, TimePoint());
    binding.vm = i + kCount;
  }
  EXPECT_EQ(table.size(), kCount);
  for (uint32_t i = 0; i < kCount; i += 129) {
    Binding* binding = table.Find(Ipv4Address(base + i));
    ASSERT_NE(binding, nullptr);
    EXPECT_EQ(binding->vm, i % 2 == 0 ? i + kCount : i);
  }
}

TEST(BindingTableTest, ForEachVisitsAll) {
  BindingTable table;
  for (uint32_t i = 0; i < 7; ++i) {
    table.CreatePending(Ipv4Address(kIp.value() + i), 0, TimePoint());
  }
  size_t visited = 0;
  table.ForEach([&](Binding&) { ++visited; });
  EXPECT_EQ(visited, 7u);
}

}  // namespace
}  // namespace potemkin
