// Gateway unit tests against a scripted fake backend (no real hypervisor), plus
// unit tests of the containment engine, recycler, scan detector and DNS proxy.
#include "src/gateway/gateway.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 16);
const Ipv4Address kExternal(201, 7, 7, 7);

// A backend that completes spawns after a fixed virtual delay and records calls.
class FakeBackend : public GatewayBackend {
 public:
  FakeBackend(EventLoop* loop, size_t hosts, Duration clone_delay)
      : loop_(loop), hosts_(hosts), clone_delay_(clone_delay) {}

  size_t NumHosts() const override { return hosts_; }
  bool HostCanAdmit(HostId host) const override {
    return !exhausted_.count(host);
  }
  size_t HostLiveVms(HostId host) const override {
    auto it = live_.find(host);
    return it == live_.end() ? 0 : it->second;
  }
  void SpawnVm(HostId host, Ipv4Address ip, SessionId,
               std::function<void(VmId)> done) override {
    ++spawns_;
    spawn_hosts_.push_back(host);
    loop_->ScheduleAfter(clone_delay_, [this, host, ip, done = std::move(done)]() {
      if (fail_spawns_) {
        done(kInvalidVm);
        return;
      }
      const VmId vm = next_vm_++;
      ++live_[host];
      vm_ips_[vm] = ip;
      done(vm);
    });
  }
  void RetireVm(HostId host, VmId vm) override {
    ++retires_;
    --live_[host];
    vm_ips_.erase(vm);
  }
  void DeliverToVm(HostId host, VmId vm, Packet packet,
                   const PacketView&) override {
    (void)host;
    loop_->ScheduleAfter(Duration::Micros(1), [this, vm, p = std::move(packet)]() {
      delivered_.emplace_back(vm, std::move(p));
    });
  }

  void ExhaustHost(HostId host) { exhausted_.insert(host); }
  void set_fail_spawns(bool fail) { fail_spawns_ = fail; }

  uint64_t spawns() const { return spawns_; }
  uint64_t retires() const { return retires_; }
  const std::vector<HostId>& spawn_hosts() const { return spawn_hosts_; }
  const std::vector<std::pair<VmId, Packet>>& delivered() const { return delivered_; }

 private:
  EventLoop* loop_;
  size_t hosts_;
  Duration clone_delay_;
  uint64_t spawns_ = 0;
  uint64_t retires_ = 0;
  bool fail_spawns_ = false;
  VmId next_vm_ = 100;
  std::vector<HostId> spawn_hosts_;
  std::map<HostId, size_t> live_;
  std::map<VmId, Ipv4Address> vm_ips_;
  std::vector<std::pair<VmId, Packet>> delivered_;
  std::set<HostId> exhausted_;
};

Packet InboundSyn(Ipv4Address dst, uint16_t dport = 445,
                  Ipv4Address src = kExternal, uint16_t sport = 40000) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(9);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = sport;
  spec.dst_port = dport;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

struct GatewayFixture {
  EventLoop loop;
  FakeBackend backend;
  GatewayConfig config;
  std::unique_ptr<Gateway> gateway;
  std::vector<Packet> egress;

  explicit GatewayFixture(GatewayConfig cfg = {}, size_t hosts = 2,
                          Duration clone_delay = Duration::Millis(500))
      : backend(&loop, hosts, clone_delay), config(std::move(cfg)) {
    config.farm_prefix = kFarm;
    gateway = std::make_unique<Gateway>(&loop, config, &backend);
    gateway->set_egress_sink(
        [this](Packet p) { egress.push_back(std::move(p)); });
  }
};

TEST(GatewayTest, FirstPacketTriggersCloneAndQueues) {
  GatewayFixture fx;
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(5)));
  EXPECT_EQ(fx.backend.spawns(), 1u);
  EXPECT_EQ(fx.gateway->stats().clones_triggered, 1u);
  EXPECT_EQ(fx.gateway->stats().inbound_queued, 1u);
  const Binding* binding = fx.gateway->bindings().Find(kFarm.AddressAt(5));
  ASSERT_NE(binding, nullptr);
  EXPECT_EQ(binding->state, BindingState::kCloning);
  // After the clone delay the queued packet is delivered.
  fx.loop.RunAll();
  EXPECT_EQ(binding->state, BindingState::kActive);
  ASSERT_EQ(fx.backend.delivered().size(), 1u);
  EXPECT_EQ(fx.gateway->stats().inbound_delivered, 1u);
}

TEST(GatewayTest, SubsequentPacketsReuseBinding) {
  GatewayFixture fx;
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(5)));
  fx.loop.RunAll();
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(5)));
  fx.loop.RunAll();
  EXPECT_EQ(fx.backend.spawns(), 1u);  // no second clone
  EXPECT_EQ(fx.backend.delivered().size(), 2u);
}

TEST(GatewayTest, PacketsDuringCloningAllQueueAndFlush) {
  GatewayFixture fx;
  for (int i = 0; i < 5; ++i) {
    fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(9)));
  }
  EXPECT_EQ(fx.backend.spawns(), 1u);
  EXPECT_EQ(fx.gateway->stats().inbound_queued, 5u);
  fx.loop.RunAll();
  EXPECT_EQ(fx.backend.delivered().size(), 5u);
}

TEST(GatewayTest, DropWhileCloningAblation) {
  GatewayConfig config;
  config.queue_while_cloning = false;
  GatewayFixture fx(config);
  for (int i = 0; i < 3; ++i) {
    fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(9)));
  }
  fx.loop.RunAll();
  EXPECT_EQ(fx.backend.delivered().size(), 0u);
  EXPECT_EQ(fx.gateway->stats().inbound_dropped_cloning, 3u);
}

TEST(GatewayTest, PendingQueueCapEnforced) {
  GatewayConfig config;
  config.pending_queue_cap = 2;
  GatewayFixture fx(config);
  for (int i = 0; i < 5; ++i) {
    fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(9)));
  }
  EXPECT_EQ(fx.gateway->bindings().stats().pending_dropped, 3u);
  fx.loop.RunAll();
  EXPECT_EQ(fx.backend.delivered().size(), 2u);
}

TEST(GatewayTest, NonFarmInboundIgnored) {
  GatewayFixture fx;
  fx.gateway->HandleInbound(InboundSyn(Ipv4Address(8, 8, 8, 8)));
  EXPECT_EQ(fx.backend.spawns(), 0u);
  EXPECT_EQ(fx.gateway->stats().inbound_nonfarm, 1u);
}

TEST(GatewayTest, RoundRobinPlacementAlternates) {
  GatewayFixture fx;
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(1)));
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(2)));
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(3)));
  ASSERT_EQ(fx.backend.spawn_hosts().size(), 3u);
  EXPECT_EQ(fx.backend.spawn_hosts()[0], 0u);
  EXPECT_EQ(fx.backend.spawn_hosts()[1], 1u);
  EXPECT_EQ(fx.backend.spawn_hosts()[2], 0u);
}

TEST(GatewayTest, PlacementSkipsExhaustedHosts) {
  GatewayFixture fx;
  fx.backend.ExhaustHost(0);
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(1)));
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(2)));
  for (HostId host : fx.backend.spawn_hosts()) {
    EXPECT_EQ(host, 1u);
  }
}

TEST(GatewayTest, NoCapacityDropsCounted) {
  GatewayFixture fx;
  fx.backend.ExhaustHost(0);
  fx.backend.ExhaustHost(1);
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(1)));
  EXPECT_EQ(fx.backend.spawns(), 0u);
  EXPECT_EQ(fx.gateway->stats().no_capacity_drops, 1u);
  EXPECT_EQ(fx.gateway->bindings().size(), 0u);
}

TEST(GatewayTest, FailedCloneRemovesBinding) {
  GatewayFixture fx;
  fx.backend.set_fail_spawns(true);
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(1)));
  fx.loop.RunAll();
  EXPECT_EQ(fx.gateway->stats().clone_failures, 1u);
  EXPECT_EQ(fx.gateway->bindings().size(), 0u);
}

TEST(GatewayTest, RecyclerRetiresIdleVms) {
  GatewayConfig config;
  config.recycle.idle_timeout = Duration::Seconds(5);
  config.recycle.scan_interval = Duration::Seconds(1);
  GatewayFixture fx(config);
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(1)));
  fx.gateway->StartRecycling();
  fx.loop.RunFor(Duration::Seconds(10.0));
  EXPECT_EQ(fx.backend.retires(), 1u);
  EXPECT_EQ(fx.gateway->bindings().size(), 0u);
  EXPECT_EQ(fx.gateway->stats().vms_retired, 1u);
}

TEST(GatewayTest, ActivityDefersRecycling) {
  GatewayConfig config;
  config.recycle.idle_timeout = Duration::Seconds(5);
  config.recycle.scan_interval = Duration::Seconds(1);
  config.recycle.max_lifetime = Duration::Zero();
  GatewayFixture fx(config);
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(1)));
  fx.gateway->StartRecycling();
  // Keep poking every 3 seconds; VM must stay alive.
  for (int i = 1; i <= 4; ++i) {
    fx.loop.RunFor(Duration::Seconds(3.0));
    fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(1)));
  }
  EXPECT_EQ(fx.backend.retires(), 0u);
  fx.loop.RunFor(Duration::Seconds(10.0));
  EXPECT_EQ(fx.backend.retires(), 1u);
}

TEST(GatewayTest, MaxLifetimeCapsEvenActiveVms) {
  GatewayConfig config;
  config.recycle.idle_timeout = Duration::Seconds(100);
  config.recycle.max_lifetime = Duration::Seconds(8);
  config.recycle.scan_interval = Duration::Seconds(1);
  GatewayFixture fx(config);
  fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(1)));
  fx.gateway->StartRecycling();
  fx.loop.RunFor(Duration::Seconds(12.0));
  EXPECT_EQ(fx.backend.retires(), 1u);
}

}  // namespace
}  // namespace potemkin
