// ShardedGateway tests: ownership partitioning, session disjointness, the
// N=1 passthrough guarantee, cross-shard reflection handoff, farm-wide probe
// rollups, and the partitioned modes (deterministic barrier merge vs real
// parallel drain).
#include "src/gateway/sharded_gateway.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/gateway/gateway.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 16);
const Ipv4Address kExternal(203, 0, 113, 50);

// Instant-spawn backend usable both as the single shared backend (shared-loop
// mode) and one-per-shard (partitioned mode).
class InstantBackend : public GatewayBackend {
 public:
  size_t NumHosts() const override { return 4; }
  bool HostCanAdmit(HostId) const override { return true; }
  size_t HostLiveVms(HostId) const override { return 0; }
  void SpawnVm(HostId, Ipv4Address ip, SessionId,
               std::function<void(VmId)> done) override {
    const VmId vm = next_vm_++;
    last_ip_for_vm_[vm] = ip;
    done(vm);
  }
  void RetireVm(HostId, VmId) override {}
  void DeliverToVm(HostId, VmId vm, Packet, const PacketView& view) override {
    ++delivered_;
    deliveries_.emplace_back(vm, view.ip().src);
  }
  uint64_t delivered() const { return delivered_; }
  // (vm, frame source address) per delivery, in delivery order.
  const std::vector<std::pair<VmId, Ipv4Address>>& deliveries() const {
    return deliveries_;
  }
  void ClearDeliveries() { deliveries_.clear(); }

 private:
  VmId next_vm_ = 1;
  uint64_t delivered_ = 0;
  std::vector<std::pair<VmId, Ipv4Address>> deliveries_;
  std::map<VmId, Ipv4Address> last_ip_for_vm_;
};

Packet InboundSyn(Ipv4Address dst, uint16_t sport = 40000,
                  Ipv4Address src = kExternal) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(9);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = sport;
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

Packet OutboundScan(Ipv4Address src, Ipv4Address dst, uint16_t sport) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(2);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = sport;
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

// Shared-loop fixture: the deployment shape the Honeyfarm embeds.
struct SharedFixture {
  EventLoop loop;
  InstantBackend backend;
  Observability obs;
  std::unique_ptr<ShardedGateway> gateway;

  explicit SharedFixture(uint32_t shards,
                         OutboundMode mode = OutboundMode::kDropAll) {
    ShardedGatewayConfig config;
    config.gateway.farm_prefix = kFarm;
    config.gateway.obs = &obs;
    config.gateway.containment.mode = mode;
    config.shard_count = shards;
    gateway = std::make_unique<ShardedGateway>(&loop, config, &backend);
  }
};

TEST(ShardedGatewayTest, PartitionsBindingsByAddressLowBits) {
  SharedFixture fx(4);
  for (uint32_t i = 0; i < 8; ++i) {
    fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(i)));
  }
  fx.loop.RunAll();
  EXPECT_EQ(fx.gateway->live_bindings(), 8u);
  for (uint32_t i = 0; i < 8; ++i) {
    const Ipv4Address ip = kFarm.AddressAt(i);
    const uint32_t owner = fx.gateway->ShardOf(ip);
    EXPECT_EQ(owner, i % 4);
    for (uint32_t s = 0; s < 4; ++s) {
      const Binding* binding = fx.gateway->shard(s).bindings().Find(ip);
      if (s == owner) {
        EXPECT_NE(binding, nullptr) << "shard " << s << " missing " << i;
      } else {
        EXPECT_EQ(binding, nullptr) << "shard " << s << " stole " << i;
      }
    }
  }
}

TEST(ShardedGatewayTest, SessionIdsAreDisjointAcrossShards) {
  SharedFixture fx(4);
  for (uint32_t i = 0; i < 16; ++i) {
    fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(i)));
  }
  fx.loop.RunAll();
  std::set<SessionId> sessions;
  for (uint32_t i = 0; i < 16; ++i) {
    const Ipv4Address ip = kFarm.AddressAt(i);
    const Binding* binding =
        fx.gateway->shard(fx.gateway->ShardOf(ip)).bindings().Find(ip);
    ASSERT_NE(binding, nullptr);
    // Shard s mints 1+s, 1+s+4, ...: the residue identifies the minting shard.
    EXPECT_EQ(binding->session % 4, (1 + fx.gateway->ShardOf(ip)) % 4);
    sessions.insert(binding->session);
  }
  EXPECT_EQ(sessions.size(), 16u);  // no collisions farm-wide
}

// With shard_count == 1 the facade must be a pure passthrough: same stats,
// same session ids, same metric names as a bare Gateway fed identically.
TEST(ShardedGatewayTest, SingleShardMatchesBareGateway) {
  EventLoop bare_loop;
  InstantBackend bare_backend;
  Observability bare_obs;
  GatewayConfig bare_config;
  bare_config.farm_prefix = kFarm;
  bare_config.obs = &bare_obs;
  Gateway bare(&bare_loop, bare_config, &bare_backend);

  SharedFixture fx(1);

  for (uint32_t i = 0; i < 12; ++i) {
    bare.HandleInbound(InboundSyn(kFarm.AddressAt(i * 7)));
    fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(i * 7)));
  }
  bare_loop.RunAll();
  fx.loop.RunAll();

  const GatewayStats& want = bare.stats();
  const GatewayStats got = fx.gateway->AggregateStats();
  EXPECT_EQ(got.inbound_packets, want.inbound_packets);
  EXPECT_EQ(got.inbound_delivered, want.inbound_delivered);
  EXPECT_EQ(got.clones_triggered, want.clones_triggered);
  EXPECT_EQ(got.handoffs_out, 0u);
  EXPECT_EQ(got.handoffs_in, 0u);
  for (uint32_t i = 0; i < 12; ++i) {
    const Ipv4Address ip = kFarm.AddressAt(i * 7);
    const Binding* a = bare.bindings().Find(ip);
    const Binding* b = fx.gateway->shard(0).bindings().Find(ip);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->session, b->session);
  }
  // Unsharded metric names, not the "gateway.s0." namespace.
  EXPECT_GT(fx.obs.metrics.ValueOf("gateway.rx.packets"), 0.0);
  EXPECT_EQ(fx.obs.metrics.ValueOf("gateway.s0.rx.packets"), 0.0);
}

TEST(ShardedGatewayTest, ReflectionHandsOffAcrossShards) {
  SharedFixture fx(4, OutboundMode::kReflect);
  // Bring up a "worm" VM on shard 3.
  const Ipv4Address worm_ip = kFarm.AddressAt(3);
  fx.gateway->HandleInbound(InboundSyn(worm_ip));
  fx.loop.RunAll();
  fx.gateway->NotifyInfected(worm_ip);

  // Scan out to many distinct externals: each scan reflects onto a pseudo-random
  // farm victim, ~3/4 of which live on another shard.
  for (uint16_t i = 0; i < 32; ++i) {
    fx.gateway->HandleOutbound(
        0, 1, OutboundScan(worm_ip, Ipv4Address(77, 1, i, 9),
                           static_cast<uint16_t>(30000 + i)));
  }
  fx.loop.RunAll();

  const GatewayStats stats = fx.gateway->AggregateStats();
  EXPECT_GT(stats.handoffs_out, 0u);
  EXPECT_EQ(stats.handoffs_in, stats.handoffs_out);  // nothing stuck in a ring
  EXPECT_EQ(stats.reflections_injected, 32u);
  // Every victim binding must live on the shard owning its address.
  size_t victims = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    Gateway& shard = fx.gateway->shard(s);
    shard.bindings().ForEach([&](const Binding& binding) {
      EXPECT_EQ(fx.gateway->ShardOf(binding.ip), s);
      ++victims;
    });
  }
  EXPECT_GT(victims, 1u);  // worm + at least one reflected victim
}

// The reply half of the reflection illusion: a victim on another shard
// answers the reflected scan, and its reply must reach the worm impersonating
// the external address the reflection replaced — which requires the
// reverse-NAT entry to live on the *victim's* shard (replies shard by
// source), not the scanner's shard that classified the outbound packet.
TEST(ShardedGatewayTest, ReflectedReplyRewritesSourceAcrossShards) {
  SharedFixture fx(4, OutboundMode::kReflect);
  const Ipv4Address worm_ip = kFarm.AddressAt(3);
  fx.gateway->HandleInbound(InboundSyn(worm_ip));
  fx.loop.RunAll();
  fx.gateway->NotifyInfected(worm_ip);
  for (uint16_t i = 0; i < 32; ++i) {
    fx.gateway->HandleOutbound(
        0, 1, OutboundScan(worm_ip, Ipv4Address(77, 1, static_cast<uint8_t>(i), 9),
                           static_cast<uint16_t>(30000 + i)));
  }
  fx.loop.RunAll();

  // Pick a reflected victim that landed on a different shard than the worm.
  const uint32_t worm_shard = fx.gateway->ShardOf(worm_ip);
  const Binding* victim = nullptr;
  for (uint32_t s = 0; s < 4 && victim == nullptr; ++s) {
    if (s == worm_shard) {
      continue;
    }
    fx.gateway->shard(s).bindings().ForEach([&](const Binding& binding) {
      if (victim == nullptr && binding.reflected_origin &&
          binding.state == BindingState::kActive) {
        victim = &binding;
      }
    });
  }
  ASSERT_NE(victim, nullptr);  // 32 scans, ~3/4 cross-shard: must exist

  fx.backend.ClearDeliveries();
  fx.gateway->HandleOutbound(
      victim->host, victim->vm,
      OutboundScan(victim->ip, worm_ip, /*sport=*/445));
  fx.loop.RunAll();

  ASSERT_EQ(fx.backend.deliveries().size(), 1u);
  const auto& [vm, reply_src] = fx.backend.deliveries()[0];
  EXPECT_EQ(vm, 1u);  // the worm's VM received the reply
  // Impersonation held: the source is one of the scanned externals, never the
  // victim's internal farm address.
  EXPECT_FALSE(kFarm.Contains(reply_src));
  EXPECT_EQ(reply_src.value() >> 16, (77u << 8) | 1u);
}

// Sharding divides a spraying source's distinct destinations across shards;
// the per-shard detector threshold is rescaled so farm-wide flagging latency
// stays comparable to an unsharded gateway.
TEST(ShardedGatewayTest, ScanThresholdRescalesWithShardCount) {
  SharedFixture fx(4);
  // Default farm-wide threshold 8 -> 2 per shard.
  EXPECT_EQ(fx.gateway->shard(0).config().scan_detector.distinct_threshold, 2u);
  // One source spraying 8 distinct addresses (2 per shard) is flagged, just
  // as it would be at threshold 8 unsharded.
  for (uint32_t i = 0; i < 8; ++i) {
    fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(i)));
  }
  fx.loop.RunAll();
  bool flagged = false;
  for (uint32_t s = 0; s < 4; ++s) {
    flagged = flagged || fx.gateway->shard(s).scan_detector().IsScanner(kExternal);
  }
  EXPECT_TRUE(flagged);
}

TEST(ShardedGatewayTest, AggregateProbesKeepFarmWideNames) {
  SharedFixture fx(4);
  for (uint32_t i = 0; i < 8; ++i) {
    fx.gateway->HandleInbound(InboundSyn(kFarm.AddressAt(i)));
  }
  fx.loop.RunAll();
  // Farm-wide rollups under the unsharded names (what the watchdog rules use),
  // backed by per-shard probes under "gateway.s<i>.".
  EXPECT_EQ(fx.obs.metrics.ValueOf("gateway.bindings.live"), 8.0);
  EXPECT_EQ(fx.obs.metrics.ValueOf("gateway.s0.bindings.live"), 2.0);
  EXPECT_EQ(fx.obs.metrics.ValueOf("gateway.s3.bindings.live"), 2.0);
  EXPECT_EQ(fx.obs.metrics.ValueOf("gateway.containment.allowed") +
                fx.obs.metrics.ValueOf("gateway.containment.dropped"),
            fx.obs.metrics.ValueOf("gateway.containment.allowed"));
}

// ---- Partitioned mode ----

struct PartitionedFixture {
  std::vector<std::unique_ptr<InstantBackend>> backends;
  std::unique_ptr<ShardedGateway> gateway;

  explicit PartitionedFixture(uint32_t shards,
                              OutboundMode mode = OutboundMode::kDropAll,
                              size_t ring_capacity = 4096) {
    std::vector<GatewayBackend*> raw;
    for (uint32_t s = 0; s < shards; ++s) {
      backends.push_back(std::make_unique<InstantBackend>());
      raw.push_back(backends.back().get());
    }
    ShardedGatewayConfig config;
    config.gateway.farm_prefix = kFarm;
    config.gateway.containment.mode = mode;
    config.shard_count = shards;
    config.handoff_ring_capacity = ring_capacity;
    gateway = std::make_unique<ShardedGateway>(config, std::move(raw));
  }

  void Populate(uint32_t bindings) {
    for (uint32_t i = 0; i < bindings; ++i) {
      gateway->HandleInbound(InboundSyn(kFarm.AddressAt(i)));
    }
    gateway->RunUntilIdle();
  }
};

TEST(ShardedGatewayTest, PartitionedRunUntilIdleIsDeterministic) {
  const auto run = [] {
    PartitionedFixture fx(4);
    fx.Populate(64);
    for (uint32_t i = 0; i < 256; ++i) {
      fx.gateway->HandleInbound(
          InboundSyn(kFarm.AddressAt(i % 64), static_cast<uint16_t>(41000 + i)));
    }
    fx.gateway->RunUntilIdle();
    return fx.gateway->AggregateStats();
  };
  const GatewayStats a = run();
  const GatewayStats b = run();
  EXPECT_EQ(a.inbound_packets, b.inbound_packets);
  EXPECT_EQ(a.inbound_delivered, b.inbound_delivered);
  EXPECT_EQ(a.clones_triggered, b.clones_triggered);
  EXPECT_EQ(a.handoffs_in, b.handoffs_in);
  EXPECT_EQ(a.inbound_delivered, 64u + 256u);
}

TEST(ShardedGatewayTest, DrainParallelMatchesSequentialDelivery) {
  constexpr uint32_t kShards = 4;
  constexpr uint32_t kBindings = 64;
  constexpr uint32_t kPackets = 4096;

  PartitionedFixture fx(kShards);
  fx.Populate(kBindings);

  std::vector<std::vector<Packet>> per_shard(kShards);
  for (uint32_t i = 0; i < kPackets; ++i) {
    const Ipv4Address dst = kFarm.AddressAt(i % kBindings);
    per_shard[fx.gateway->ShardOf(dst)].push_back(
        InboundSyn(dst, static_cast<uint16_t>(42000 + i % 1000)));
  }
  const GatewayStats before = fx.gateway->AggregateStats();
  const ShardedGateway::DrainResult result =
      fx.gateway->DrainParallel(&per_shard, /*burst=*/32);
  const GatewayStats after = fx.gateway->AggregateStats();

  EXPECT_EQ(result.packets_fed, kPackets);
  EXPECT_EQ(after.inbound_delivered - before.inbound_delivered, kPackets);
  // Pre-binned hit-path traffic never crosses a shard boundary.
  EXPECT_EQ(result.handoffs, 0u);

  // The same workload through the deterministic barrier merge delivers the
  // same count: the parallel drain is an execution strategy, not a semantics
  // change.
  PartitionedFixture ref(kShards);
  ref.Populate(kBindings);
  for (uint32_t i = 0; i < kPackets; ++i) {
    ref.gateway->HandleInbound(InboundSyn(
        kFarm.AddressAt(i % kBindings), static_cast<uint16_t>(42000 + i % 1000)));
  }
  ref.gateway->RunUntilIdle();
  EXPECT_EQ(ref.gateway->AggregateStats().inbound_delivered,
            after.inbound_delivered);
}

TEST(ShardedGatewayTest, BatchDispatchBinsByOwningShard) {
  SharedFixture fx(4);
  std::vector<Packet> burst;
  for (uint32_t i = 0; i < 32; ++i) {
    burst.push_back(InboundSyn(kFarm.AddressAt(i)));
  }
  fx.gateway->HandleInboundBatch(burst);
  fx.loop.RunAll();
  EXPECT_EQ(fx.gateway->live_bindings(), 32u);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(fx.gateway->shard(s).stats().inbound_packets, 8u);
  }
}

// A tiny ring forces the single-threaded full-ring fallback: it must drain
// the destination's inbox (preserving per-pair FIFO) and then enqueue, so
// every handoff still flows through the rings and none is lost.
TEST(ShardedGatewayTest, FullRingFallbackDrainsAndPreservesDelivery) {
  PartitionedFixture fx(4, OutboundMode::kReflect, /*ring_capacity=*/2);
  fx.Populate(4);
  const Ipv4Address worm_ip = kFarm.AddressAt(3);
  fx.gateway->NotifyInfected(worm_ip);
  const Binding* worm =
      fx.gateway->shard(fx.gateway->ShardOf(worm_ip)).bindings().Find(worm_ip);
  ASSERT_NE(worm, nullptr);
  // Drive the shard directly (no facade pump between calls) so reflected
  // handoffs pile into 2-slot rings and overflow.
  for (uint16_t i = 0; i < 64; ++i) {
    fx.gateway->shard(fx.gateway->ShardOf(worm_ip))
        .HandleOutbound(worm->host, worm->vm,
                        OutboundScan(worm_ip,
                                     Ipv4Address(77, 2, static_cast<uint8_t>(i), 9),
                                     static_cast<uint16_t>(31000 + i)));
  }
  fx.gateway->RunUntilIdle();
  const GatewayStats stats = fx.gateway->AggregateStats();
  EXPECT_EQ(stats.reflections_injected, 64u);
  EXPECT_GT(stats.handoffs_out, 2u);                 // overflowed the ring
  EXPECT_EQ(stats.handoffs_in, stats.handoffs_out);  // none lost or stuck
}

// Destroying the facade with handoffs still queued in the rings must recycle
// their packets while the per-shard pools are alive (destruction-order
// regression: rings_ is declared before pools_).
TEST(ShardedGatewayTest, DestructionWithQueuedHandoffsIsSafe) {
  PartitionedFixture fx(4, OutboundMode::kReflect);
  fx.Populate(4);
  const Ipv4Address worm_ip = kFarm.AddressAt(3);
  const uint32_t worm_shard = fx.gateway->ShardOf(worm_ip);
  fx.gateway->NotifyInfected(worm_ip);
  const Binding* worm =
      fx.gateway->shard(worm_shard).bindings().Find(worm_ip);
  ASSERT_NE(worm, nullptr);
  for (uint16_t i = 0; i < 16; ++i) {
    Packet scan = OutboundScan(worm_ip,
                               Ipv4Address(77, 3, static_cast<uint8_t>(i), 9),
                               static_cast<uint16_t>(32000 + i));
    // Mimic DrainParallel adoption: the frame belongs to a per-shard pool, so
    // its eventual recycle dereferences that pool.
    scan.set_pool(&fx.gateway->shard_pool(worm_shard));
    // Direct shard call: reflected handoffs stay queued (no facade pump).
    fx.gateway->shard(worm_shard).HandleOutbound(worm->host, worm->vm,
                                                 std::move(scan));
  }
  // Destructor runs with non-empty rings; ASan/TSan jobs catch any
  // use-after-free of the pools here.
}

// Partitioned-mode egress: each shard's allowed outbound packets bin
// per-shard (no cross-shard call into a shared sink) and FlushEgress merges
// them into the user's single sink in shard order — deterministically.
TEST(ShardedGatewayTest, PartitionedEgressMergesPerShardBins) {
  PartitionedFixture fx(4, OutboundMode::kOpen);
  fx.Populate(8);
  std::vector<Ipv4Address> egress_sources;
  fx.gateway->set_egress_sink([&](Packet p) {
    const auto view = PacketView::Parse(p);
    ASSERT_TRUE(view.has_value());
    egress_sources.push_back(view->ip().src);
  });

  // One outbound packet from a VM on every shard, queued out of shard order.
  for (uint32_t i = 8; i-- > 0;) {
    const Ipv4Address src = kFarm.AddressAt(i);
    const uint32_t shard = fx.gateway->ShardOf(src);
    const Binding* binding = fx.gateway->shard(shard).bindings().Find(src);
    ASSERT_NE(binding, nullptr);
    fx.gateway->shard(shard).HandleOutbound(
        binding->host, binding->vm,
        OutboundScan(src, Ipv4Address(77, 9, static_cast<uint8_t>(i), 1),
                     static_cast<uint16_t>(33000 + i)));
  }
  fx.gateway->RunUntilIdle();  // flushes the bins through the merged sink

  ASSERT_EQ(egress_sources.size(), 8u);
  // Merge order is shard-major: all of shard 0's packets, then shard 1's...
  for (size_t i = 1; i < egress_sources.size(); ++i) {
    EXPECT_LE(fx.gateway->ShardOf(egress_sources[i - 1]),
              fx.gateway->ShardOf(egress_sources[i]));
  }
}

// A cut handoff ring stalls cross-shard traffic without losing it (until the
// ring fills): healing the partition lets the queued handoffs flow.
TEST(ShardedGatewayTest, HandoffPartitionStallsThenHeals) {
  SharedFixture fx(4, OutboundMode::kReflect);
  const Ipv4Address worm_ip = kFarm.AddressAt(3);
  fx.gateway->HandleInbound(InboundSyn(worm_ip));
  fx.loop.RunAll();
  fx.gateway->NotifyInfected(worm_ip);

  const uint32_t worm_shard = fx.gateway->ShardOf(worm_ip);
  for (uint32_t to = 0; to < 4; ++to) {
    if (to != worm_shard) {
      fx.gateway->SetHandoffPartition(worm_shard, to, true);
    }
  }
  for (uint16_t i = 0; i < 32; ++i) {
    fx.gateway->HandleOutbound(
        0, 1, OutboundScan(worm_ip, Ipv4Address(77, 2, static_cast<uint8_t>(i), 9),
                           static_cast<uint16_t>(31000 + i)));
  }
  fx.loop.RunAll();
  const GatewayStats cut = fx.gateway->AggregateStats();
  // Cross-shard reflections stayed stuck in the rings.
  EXPECT_GT(cut.handoffs_out, cut.handoffs_in);

  for (uint32_t to = 0; to < 4; ++to) {
    if (to != worm_shard) {
      fx.gateway->SetHandoffPartition(worm_shard, to, false);
    }
  }
  fx.gateway->PumpHandoffs();
  fx.loop.RunAll();
  const GatewayStats healed = fx.gateway->AggregateStats();
  EXPECT_EQ(healed.handoffs_in, healed.handoffs_out);
  EXPECT_EQ(fx.gateway->partition_drops(), 0u);  // ring never filled
}

TEST(ShardedGatewayTest, ShardCountMustBePowerOfTwo) {
  EXPECT_DEATH(
      {
        EventLoop loop;
        InstantBackend backend;
        ShardedGatewayConfig config;
        config.gateway.farm_prefix = kFarm;
        config.shard_count = 3;
        ShardedGateway gateway(&loop, config, &backend);
      },
      "power of two");
}

}  // namespace
}  // namespace potemkin
