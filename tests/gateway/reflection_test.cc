// Focused gateway-level tests of reflection and its NAT bookkeeping, using the
// same scripted fake backend as gateway_unit_test.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/gateway/gateway.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 16);
const Ipv4Address kExternalPeer(203, 0, 113, 50);

class ScriptedBackend : public GatewayBackend {
 public:
  explicit ScriptedBackend(EventLoop* loop) : loop_(loop) {}

  size_t NumHosts() const override { return 1; }
  bool HostCanAdmit(HostId) const override { return true; }
  size_t HostLiveVms(HostId) const override { return 0; }
  void SpawnVm(HostId, Ipv4Address ip, SessionId, std::function<void(VmId)> done) override {
    const VmId vm = next_vm_++;
    vm_by_ip_[ip.value()] = vm;
    done(vm);  // instant clone
  }
  void RetireVm(HostId, VmId) override {}
  void DeliverToVm(HostId, VmId vm, Packet packet,
                   const PacketView&) override {
    loop_->ScheduleAfter(Duration::Micros(1), [this, vm, p = std::move(packet)]() {
      delivered_.emplace_back(vm, std::move(p));
    });
  }

  VmId VmFor(Ipv4Address ip) const {
    auto it = vm_by_ip_.find(ip.value());
    return it == vm_by_ip_.end() ? kInvalidVm : it->second;
  }
  const std::vector<std::pair<VmId, Packet>>& delivered() const { return delivered_; }
  void ClearDelivered() { delivered_.clear(); }

 private:
  EventLoop* loop_;
  VmId next_vm_ = 1;
  std::map<uint32_t, VmId> vm_by_ip_;
  std::vector<std::pair<VmId, Packet>> delivered_;
};

Packet Tcp(Ipv4Address src, Ipv4Address dst, uint16_t sport, uint16_t dport,
           uint8_t flags, std::vector<uint8_t> payload = {}) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(2);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = sport;
  spec.dst_port = dport;
  spec.tcp_flags = flags;
  spec.payload = std::move(payload);
  return BuildPacket(spec);
}

struct ReflectionFixture {
  EventLoop loop;
  ScriptedBackend backend;
  GatewayConfig config;
  std::unique_ptr<Gateway> gateway;
  std::vector<Packet> egress;
  Ipv4Address worm_ip = kFarm.AddressAt(3);
  VmId worm_vm = kInvalidVm;

  ReflectionFixture() : backend(&loop) {
    config.farm_prefix = kFarm;
    config.containment.mode = OutboundMode::kReflect;
    gateway = std::make_unique<Gateway>(&loop, config, &backend);
    gateway->set_egress_sink([this](Packet p) { egress.push_back(std::move(p)); });
    // Bring up the "worm" VM with one inbound probe.
    gateway->HandleInbound(
        Tcp(kExternalPeer, worm_ip, 40000, 445, TcpFlags::kSyn));
    loop.RunAll();
    worm_vm = backend.VmFor(worm_ip);
    backend.ClearDelivered();
  }
};

TEST(ReflectionTest, OutboundScanIsRewrittenIntoTheFarm) {
  ReflectionFixture fx;
  const Ipv4Address external_target(77, 1, 2, 3);
  fx.gateway->HandleOutbound(0, fx.worm_vm,
                             Tcp(fx.worm_ip, external_target, 2000, 135,
                                 TcpFlags::kSyn));
  fx.loop.RunAll();
  EXPECT_TRUE(fx.egress.empty());
  ASSERT_EQ(fx.backend.delivered().size(), 1u);
  const auto view = PacketView::Parse(fx.backend.delivered()[0].second);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(kFarm.Contains(view->ip().dst));         // rewritten into the farm
  EXPECT_NE(view->ip().dst, fx.worm_ip);               // never onto itself
  EXPECT_EQ(view->ip().src, fx.worm_ip);               // source preserved
  EXPECT_TRUE(ValidateChecksums(fx.backend.delivered()[0].second));
  // Victim binding created via reflection.
  const Binding* victim = fx.gateway->bindings().Find(view->ip().dst);
  ASSERT_NE(victim, nullptr);
  EXPECT_TRUE(victim->reflected_origin);
}

TEST(ReflectionTest, VictimReplyIsSourceNattedBackToExternalAddress) {
  ReflectionFixture fx;
  const Ipv4Address external_target(77, 1, 2, 3);
  fx.gateway->HandleOutbound(0, fx.worm_vm,
                             Tcp(fx.worm_ip, external_target, 2000, 135,
                                 TcpFlags::kSyn));
  fx.loop.RunAll();
  const auto reflected = PacketView::Parse(fx.backend.delivered()[0].second);
  const Ipv4Address victim_ip = reflected->ip().dst;
  const VmId victim_vm = fx.backend.VmFor(victim_ip);
  fx.backend.ClearDelivered();

  // Victim answers the worm; the gateway must rewrite src victim -> external.
  fx.gateway->HandleOutbound(0, victim_vm,
                             Tcp(victim_ip, fx.worm_ip, 135, 2000,
                                 TcpFlags::kSyn | TcpFlags::kAck));
  fx.loop.RunAll();
  ASSERT_EQ(fx.backend.delivered().size(), 1u);
  EXPECT_EQ(fx.backend.delivered()[0].first, fx.worm_vm);
  const auto reply = PacketView::Parse(fx.backend.delivered()[0].second);
  EXPECT_EQ(reply->ip().src, external_target);  // the lie that preserves fidelity
  EXPECT_EQ(reply->ip().dst, fx.worm_ip);
  EXPECT_TRUE(ValidateChecksums(fx.backend.delivered()[0].second));
  EXPECT_TRUE(fx.egress.empty());
}

TEST(ReflectionTest, KeyedReflectionIsStablePerExternalTarget) {
  ReflectionFixture fx;
  const Ipv4Address external_target(77, 1, 2, 3);
  for (int i = 0; i < 3; ++i) {
    fx.gateway->HandleOutbound(0, fx.worm_vm,
                               Tcp(fx.worm_ip, external_target,
                                   static_cast<uint16_t>(2000 + i), 135,
                                   TcpFlags::kSyn));
  }
  fx.loop.RunAll();
  ASSERT_EQ(fx.backend.delivered().size(), 3u);
  const Ipv4Address first =
      PacketView::Parse(fx.backend.delivered()[0].second)->ip().dst;
  for (const auto& [vm, packet] : fx.backend.delivered()) {
    EXPECT_EQ(PacketView::Parse(packet)->ip().dst, first);
  }
  // Only one victim VM was created for three packets.
  EXPECT_EQ(fx.gateway->stats().clones_triggered, 2u);  // worm + one victim
}

TEST(ReflectionTest, FollowUpToSameExternalTargetDoesNotEscape) {
  // Regression for the NAT/flow-table containment hole: after the victim's
  // NATted reply, more packets to the external target must still reflect.
  ReflectionFixture fx;
  const Ipv4Address external_target(77, 1, 2, 3);
  fx.gateway->HandleOutbound(0, fx.worm_vm,
                             Tcp(fx.worm_ip, external_target, 2000, 135,
                                 TcpFlags::kSyn));
  fx.loop.RunAll();
  const Ipv4Address victim_ip =
      PacketView::Parse(fx.backend.delivered()[0].second)->ip().dst;
  const VmId victim_vm = fx.backend.VmFor(victim_ip);
  fx.gateway->HandleOutbound(0, victim_vm,
                             Tcp(victim_ip, fx.worm_ip, 135, 2000,
                                 TcpFlags::kSyn | TcpFlags::kAck));
  fx.loop.RunAll();
  fx.backend.ClearDelivered();

  // The worm now sends the exploit payload to the external target.
  fx.gateway->HandleOutbound(
      0, fx.worm_vm,
      Tcp(fx.worm_ip, external_target, 2000, 135, TcpFlags::kAck | TcpFlags::kPsh,
          {'E', 'V', 'I', 'L'}));
  fx.loop.RunAll();
  EXPECT_TRUE(fx.egress.empty()) << "exploit escaped to the Internet";
  ASSERT_EQ(fx.backend.delivered().size(), 1u);
  const auto view = PacketView::Parse(fx.backend.delivered()[0].second);
  EXPECT_EQ(view->ip().dst, victim_ip);
  EXPECT_EQ(view->l4_payload().size(), 4u);
}

TEST(ReflectionTest, ResponsesToRealProbersStillPass) {
  ReflectionFixture fx;
  // The honeypot answers its original external prober: must go out, not reflect.
  fx.gateway->HandleOutbound(0, fx.worm_vm,
                             Tcp(fx.worm_ip, kExternalPeer, 445, 40000,
                                 TcpFlags::kSyn | TcpFlags::kAck));
  fx.loop.RunAll();
  ASSERT_EQ(fx.egress.size(), 1u);
  EXPECT_EQ(PacketView::Parse(fx.egress[0])->ip().dst, kExternalPeer);
  EXPECT_EQ(fx.gateway->stats().responses_allowed_out, 1u);
}

TEST(ReflectionTest, RandomReflectionSpreadsVictims) {
  EventLoop loop;
  ScriptedBackend backend(&loop);
  GatewayConfig config;
  config.farm_prefix = kFarm;
  config.containment.mode = OutboundMode::kReflect;
  config.containment.keyed_reflection = false;
  Gateway gateway(&loop, config, &backend);
  gateway.HandleInbound(Tcp(kExternalPeer, kFarm.AddressAt(3), 40000, 445,
                            TcpFlags::kSyn));
  loop.RunAll();
  const VmId worm_vm = backend.VmFor(kFarm.AddressAt(3));
  backend.ClearDelivered();
  for (int i = 0; i < 5; ++i) {
    gateway.HandleOutbound(0, worm_vm,
                           Tcp(kFarm.AddressAt(3), Ipv4Address(77, 1, 2, 3),
                               static_cast<uint16_t>(3000 + i), 135,
                               TcpFlags::kSyn));
  }
  loop.RunAll();
  std::set<uint32_t> victims;
  for (const auto& [vm, packet] : backend.delivered()) {
    victims.insert(PacketView::Parse(packet)->ip().dst.value());
  }
  EXPECT_GE(victims.size(), 4u);  // random mode scatters
}

}  // namespace
}  // namespace potemkin
