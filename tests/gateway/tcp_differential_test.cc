// Differential fidelity: the strict guest stack (GuestTcpStack) and the
// low-interaction facade (LowInteractionResponder) must produce the same
// wire-visible TCP behavior for the same attacker transcript — same flags,
// same acknowledgment numbers, same relative sequence numbers — and both must
// match the RFC 793 reference values computed by hand. Any divergence is a
// fingerprinting hook an attacker could use to tell facade from farm, which
// defeats the baseline comparison the paper's E2 experiment depends on.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/gateway/low_interaction.h"
#include "src/guest/tcp_stack.h"

namespace potemkin {
namespace {

const Ipv4Prefix kPrefix(Ipv4Address(10, 1, 0, 0), 16);
const Ipv4Address kAttacker(198, 51, 100, 3);
const Ipv4Address kVictim = kPrefix.AddressAt(77);

// One attacker segment of the transcript.
struct Segment {
  uint8_t flags = 0;
  uint16_t dst_port = 445;
  uint32_t seq = 0;
  uint32_t ack = 0;
  std::vector<uint8_t> payload;
};

// A normalized wire reply: flags, absolute ack, and the sequence number
// relative to the replier's ISN (the ISNs themselves legitimately differ).
struct WireReply {
  uint8_t flags = 0;
  uint32_t ack = 0;
  std::optional<uint32_t> rel_seq;  // nullopt for RSTs (absolute form below)
  uint32_t abs_seq = 0;             // checked for RSTs only
};

// RFC 793 reference for each step; nullopt = the server stays silent.
struct Expectation {
  std::optional<WireReply> reply;
};

Packet BuildSegment(const Segment& segment) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(7);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = kAttacker;
  spec.dst_ip = kVictim;
  spec.proto = IpProto::kTcp;
  spec.src_port = 40000;
  spec.dst_port = segment.dst_port;
  spec.tcp_flags = segment.flags;
  spec.seq = segment.seq;
  spec.ack = segment.ack;
  spec.payload = segment.payload;
  return BuildPacket(spec);
}

// Replays the transcript through the strict guest stack, rendering decisions
// into the wire segments GuestOs would send.
std::vector<std::optional<WireReply>> ReplayThroughStack(
    const std::vector<Segment>& transcript) {
  GuestTcpStack stack{Rng(99)};
  std::vector<std::optional<WireReply>> replies;
  std::optional<uint32_t> isn;
  for (const Segment& segment : transcript) {
    const Packet packet = BuildSegment(segment);
    const auto view = PacketView::Parse(packet);
    const bool has_listener = segment.dst_port == 445;
    const SegmentDecision decision =
        stack.OnSegment(*view, has_listener, TimePoint());
    WireReply reply;
    switch (decision.action) {
      case SegmentAction::kReplySynAck:
        reply.flags = TcpFlags::kSyn | TcpFlags::kAck;
        isn = decision.reply_seq;
        break;
      case SegmentAction::kReplyRst:
        reply.flags = TcpFlags::kRst |
                      (decision.rst_has_ack ? TcpFlags::kAck : uint8_t{0});
        break;
      case SegmentAction::kDeliverPayload:
        // GuestOs answers delivered payload with the service banner.
        reply.flags = TcpFlags::kPsh | TcpFlags::kAck;
        break;
      case SegmentAction::kReplyFinAck:
      case SegmentAction::kDeliverPayloadAndClose:
        reply.flags = TcpFlags::kFin | TcpFlags::kAck;
        break;
      case SegmentAction::kEstablished:
      case SegmentAction::kIgnore:
        replies.emplace_back(std::nullopt);
        continue;
    }
    reply.ack = decision.reply_ack;
    reply.abs_seq = decision.reply_seq;
    if (!(reply.flags & TcpFlags::kRst) && isn.has_value()) {
      reply.rel_seq = decision.reply_seq - *isn;
    }
    replies.emplace_back(reply);
  }
  return replies;
}

// Replays the same transcript through the stateless facade.
std::vector<std::optional<WireReply>> ReplayThroughFacade(
    const std::vector<Segment>& transcript) {
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 12345);
  std::vector<std::optional<WireReply>> replies;
  std::optional<uint32_t> isn;
  for (const Segment& segment : transcript) {
    const Packet packet = BuildSegment(segment);
    const auto response = responder.Respond(*PacketView::Parse(packet));
    if (!response.has_value()) {
      replies.emplace_back(std::nullopt);
      continue;
    }
    const auto view = PacketView::Parse(*response);
    WireReply reply;
    reply.flags = view->tcp().flags;
    reply.ack = view->tcp().ack;
    reply.abs_seq = view->tcp().seq;
    if (reply.flags & (TcpFlags::kSyn)) {
      isn = view->tcp().seq;
    }
    if (!(reply.flags & TcpFlags::kRst) && isn.has_value()) {
      reply.rel_seq = view->tcp().seq - *isn;
    }
    replies.emplace_back(reply);
  }
  return replies;
}

void ExpectAgreement(const std::vector<Segment>& transcript,
                     const std::vector<Expectation>& reference) {
  const auto stack = ReplayThroughStack(transcript);
  const auto facade = ReplayThroughFacade(transcript);
  ASSERT_EQ(stack.size(), transcript.size());
  ASSERT_EQ(facade.size(), transcript.size());
  ASSERT_EQ(reference.size(), transcript.size());
  for (size_t i = 0; i < transcript.size(); ++i) {
    SCOPED_TRACE("transcript step " + std::to_string(i));
    ASSERT_EQ(stack[i].has_value(), reference[i].reply.has_value())
        << "stack presence diverges from RFC reference";
    ASSERT_EQ(facade[i].has_value(), reference[i].reply.has_value())
        << "facade presence diverges from RFC reference";
    if (!reference[i].reply.has_value()) {
      continue;
    }
    const WireReply& want = *reference[i].reply;
    for (const auto* got : {&stack[i], &facade[i]}) {
      EXPECT_EQ((*got)->flags, want.flags);
      EXPECT_EQ((*got)->ack, want.ack) << "ack divergence";
      EXPECT_EQ((*got)->rel_seq, want.rel_seq) << "relative seq divergence";
      if ((*got)->flags & TcpFlags::kRst) {
        EXPECT_EQ((*got)->abs_seq, want.abs_seq) << "RST seq divergence";
      }
    }
  }
}

TEST(TcpDifferentialTest, FullSessionMatchesRfcReference) {
  // SYN -> handshake ACK -> 3-byte request -> FIN carrying 2 bytes of data.
  const std::vector<Segment> transcript = {
      {TcpFlags::kSyn, 445, 1000, 0, {}},
      {TcpFlags::kAck, 445, 1001, 1, {}},
      {TcpFlags::kPsh | TcpFlags::kAck, 445, 1001, 1, {'G', 'E', 'T'}},
      {TcpFlags::kFin | TcpFlags::kPsh | TcpFlags::kAck, 445, 1004, 1, {'b', 'y'}},
  };
  const std::vector<Expectation> reference = {
      // SYN|ACK acknowledges exactly the SYN octet: 1000 + 1.
      {WireReply{TcpFlags::kSyn | TcpFlags::kAck, 1001, 0, 0}},
      // Bare handshake ACK: accept() fires, nothing goes on the wire.
      {std::nullopt},
      // Banner reply acks the 3 payload octets; our SYN consumed seq 0, so the
      // reply's sequence number is ISN+1.
      {WireReply{TcpFlags::kPsh | TcpFlags::kAck, 1004, 1, 0}},
      // FIN|ACK covers payload (2) plus the FIN octet: 1004 + 2 + 1.
      {WireReply{TcpFlags::kFin | TcpFlags::kAck, 1007, 1, 0}},
  };
  ExpectAgreement(transcript, reference);
}

TEST(TcpDifferentialTest, ClosedPortRstFormsMatchRfcReference) {
  const std::vector<Segment> transcript = {
      // ACK-bearing segment to a closed port: RST takes seq from SEG.ACK and
      // carries no ACK flag (RFC 793 p.36, first form).
      {TcpFlags::kPsh | TcpFlags::kAck, 9999, 500, 777, {'x', 'y', 'z'}},
      // No-ACK segment (SYN carrying 2 data octets): RST|ACK with seq=0 and
      // ack = SEG.SEQ + SEG.LEN = 600 + 2 + 1 (second form; SYN counts one).
      {TcpFlags::kSyn, 9999, 600, 0, {'a', 'b'}},
      // Bare FIN with no ACK and no state: ack covers the FIN octet, 700 + 1.
      {TcpFlags::kFin, 9999, 700, 0, {}},
  };
  const std::vector<Expectation> reference = {
      {WireReply{TcpFlags::kRst, 0, std::nullopt, 777}},
      {WireReply{TcpFlags::kRst | TcpFlags::kAck, 603, std::nullopt, 0}},
      {WireReply{TcpFlags::kRst | TcpFlags::kAck, 701, std::nullopt, 0}},
  };
  ExpectAgreement(transcript, reference);
}

TEST(TcpDifferentialTest, DataRidingSynIsNotAcceptedBeforeEstablishment) {
  // Both implementations ack only the SYN octet when data rides the SYN: the
  // payload is not part of any established connection yet.
  const std::vector<Segment> transcript = {
      {TcpFlags::kSyn | TcpFlags::kPsh, 445, 2000, 0, {'E', 'X', 'P'}},
  };
  const std::vector<Expectation> reference = {
      {WireReply{TcpFlags::kSyn | TcpFlags::kAck, 2001, 0, 0}},
  };
  ExpectAgreement(transcript, reference);
}

}  // namespace
}  // namespace potemkin
