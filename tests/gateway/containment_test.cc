// Containment engine, scan detector, DNS proxy and recycler policy unit tests.
#include "src/gateway/containment.h"

#include <gtest/gtest.h>

#include "src/base/event_loop.h"
#include "src/gateway/dns_proxy.h"
#include "src/gateway/recycler.h"
#include "src/gateway/scan_detector.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 16);
const Ipv4Address kVmIp(10, 1, 0, 5);
const Ipv4Address kExternal(201, 44, 3, 2);

PacketView OutboundView(Packet& storage, Ipv4Address dst, IpProto proto = IpProto::kTcp,
                        uint16_t dport = 445) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(5);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = kVmIp;
  spec.dst_ip = dst;
  spec.proto = proto;
  spec.src_port = 1234;
  spec.dst_port = dport;
  storage = BuildPacket(spec);
  return *PacketView::Parse(storage);
}

TEST(ContainmentTest, OpenModeAllowsAndCountsEscapes) {
  ContainmentConfig config;
  config.mode = OutboundMode::kOpen;
  config.dns_proxy = false;
  ContainmentEngine engine(config, kFarm, 1);
  Packet p;
  EXPECT_EQ(engine.Classify(OutboundView(p, kExternal), 1, /*infected=*/false,
                            TimePoint()),
            OutboundAction::kAllow);
  EXPECT_EQ(engine.Classify(OutboundView(p, kExternal), 1, /*infected=*/true,
                            TimePoint()),
            OutboundAction::kAllow);
  EXPECT_EQ(engine.stats().allowed, 2u);
  EXPECT_EQ(engine.stats().escapes_from_infected, 1u);
}

TEST(ContainmentTest, DropAllDrops) {
  ContainmentConfig config;
  config.mode = OutboundMode::kDropAll;
  ContainmentEngine engine(config, kFarm, 1);
  Packet p;
  EXPECT_EQ(engine.Classify(OutboundView(p, kExternal), 1, true, TimePoint()),
            OutboundAction::kDrop);
  EXPECT_EQ(engine.stats().dropped, 1u);
  EXPECT_EQ(engine.stats().escapes_from_infected, 0u);
}

TEST(ContainmentTest, ReflectModeReflects) {
  ContainmentConfig config;
  config.mode = OutboundMode::kReflect;
  ContainmentEngine engine(config, kFarm, 1);
  Packet p;
  EXPECT_EQ(engine.Classify(OutboundView(p, kExternal), 1, true, TimePoint()),
            OutboundAction::kReflect);
  EXPECT_EQ(engine.stats().reflected, 1u);
  EXPECT_EQ(engine.stats().escapes_from_infected, 0u);
}

TEST(ContainmentTest, InternalDestinationsBypassPolicy) {
  ContainmentConfig config;
  config.mode = OutboundMode::kDropAll;
  ContainmentEngine engine(config, kFarm, 1);
  Packet p;
  EXPECT_EQ(engine.Classify(OutboundView(p, kFarm.AddressAt(77)), 1, true,
                            TimePoint()),
            OutboundAction::kInternal);
}

TEST(ContainmentTest, DnsQueriesGoToProxy) {
  ContainmentConfig config;
  config.mode = OutboundMode::kDropAll;
  config.dns_proxy = true;
  ContainmentEngine engine(config, kFarm, 1);
  Packet p;
  EXPECT_EQ(engine.Classify(OutboundView(p, kExternal, IpProto::kUdp, 53), 1, true,
                            TimePoint()),
            OutboundAction::kDnsProxy);
  config.dns_proxy = false;
  ContainmentEngine no_proxy(config, kFarm, 1);
  EXPECT_EQ(no_proxy.Classify(OutboundView(p, kExternal, IpProto::kUdp, 53), 1, true,
                              TimePoint()),
            OutboundAction::kDrop);
}

TEST(ContainmentTest, AllowListPassesEvenInDropMode) {
  ContainmentConfig config;
  config.mode = OutboundMode::kDropAll;
  config.allowed_ports = {25};
  ContainmentEngine engine(config, kFarm, 1);
  Packet p;
  EXPECT_EQ(engine.Classify(OutboundView(p, kExternal, IpProto::kTcp, 25), 1, true,
                            TimePoint()),
            OutboundAction::kAllow);
  EXPECT_EQ(engine.stats().allow_list_hits, 1u);
  EXPECT_EQ(engine.stats().escapes_from_infected, 1u);  // escapes still counted
}

TEST(ContainmentTest, RateLimitKicksIn) {
  ContainmentConfig config;
  config.mode = OutboundMode::kReflect;
  config.rate_limit_pps = 10.0;
  config.rate_limit_burst = 3.0;
  ContainmentEngine engine(config, kFarm, 1);
  Packet p;
  TimePoint now;
  int reflected = 0;
  int limited = 0;
  for (int i = 0; i < 10; ++i) {
    const auto action = engine.Classify(OutboundView(p, kExternal), 7, true, now);
    if (action == OutboundAction::kReflect) {
      ++reflected;
    } else if (action == OutboundAction::kRateLimit) {
      ++limited;
    }
  }
  EXPECT_EQ(reflected, 3);  // burst
  EXPECT_EQ(limited, 7);
  // After a second, tokens replenish.
  now += Duration::Seconds(1.0);
  EXPECT_EQ(engine.Classify(OutboundView(p, kExternal), 7, true, now),
            OutboundAction::kReflect);
}

TEST(ContainmentTest, RateLimitIsPerVm) {
  ContainmentConfig config;
  config.mode = OutboundMode::kReflect;
  config.rate_limit_pps = 10.0;
  config.rate_limit_burst = 1.0;
  ContainmentEngine engine(config, kFarm, 1);
  Packet p;
  EXPECT_EQ(engine.Classify(OutboundView(p, kExternal), 1, true, TimePoint()),
            OutboundAction::kReflect);
  EXPECT_EQ(engine.Classify(OutboundView(p, kExternal), 1, true, TimePoint()),
            OutboundAction::kRateLimit);
  // A different VM has its own bucket.
  EXPECT_EQ(engine.Classify(OutboundView(p, kExternal), 2, true, TimePoint()),
            OutboundAction::kReflect);
}

TEST(ContainmentTest, KeyedReflectionIsStable) {
  ContainmentConfig config;
  ContainmentEngine engine(config, kFarm, 1);
  const Ipv4Address a = engine.ReflectTarget(kExternal, kVmIp);
  const Ipv4Address b = engine.ReflectTarget(kExternal, kVmIp);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(kFarm.Contains(a));
  const Ipv4Address other = engine.ReflectTarget(Ipv4Address(201, 44, 3, 3), kVmIp);
  EXPECT_NE(a, other);
}

TEST(ContainmentTest, RandomReflectionVaries) {
  ContainmentConfig config;
  config.keyed_reflection = false;
  ContainmentEngine engine(config, kFarm, 1);
  const Ipv4Address a = engine.ReflectTarget(kExternal, kVmIp);
  const Ipv4Address b = engine.ReflectTarget(kExternal, kVmIp);
  EXPECT_NE(a, b);
  EXPECT_TRUE(kFarm.Contains(a));
  EXPECT_TRUE(kFarm.Contains(b));
}

TEST(ContainmentTest, ReflectionNeverTargetsSource) {
  ContainmentConfig config;
  ContainmentEngine engine(config, kFarm, 1);
  for (uint32_t i = 0; i < 500; ++i) {
    const Ipv4Address external(201, 1, static_cast<uint8_t>(i >> 8),
                               static_cast<uint8_t>(i));
    EXPECT_NE(engine.ReflectTarget(external, kVmIp), kVmIp);
  }
}

TEST(ScanDetectorTest, FlagsSourceAfterThreshold) {
  ScanDetectorConfig config;
  config.distinct_threshold = 4;
  config.window = Duration::Seconds(60);
  ScanDetector detector(config);
  TimePoint now;
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(
        detector.Record(kExternal, kFarm.AddressAt(static_cast<uint64_t>(i)), now));
  }
  EXPECT_TRUE(detector.Record(kExternal, kFarm.AddressAt(3), now));
  EXPECT_TRUE(detector.IsScanner(kExternal));
  EXPECT_EQ(detector.scanners_flagged(), 1u);
}

TEST(ScanDetectorTest, RepeatContactsDoNotCount) {
  ScanDetectorConfig config;
  config.distinct_threshold = 3;
  ScanDetector detector(config);
  TimePoint now;
  for (int i = 0; i < 10; ++i) {
    detector.Record(kExternal, kFarm.AddressAt(1), now);
  }
  EXPECT_FALSE(detector.IsScanner(kExternal));
}

TEST(ScanDetectorTest, WindowResetsDistinctCounting) {
  ScanDetectorConfig config;
  config.distinct_threshold = 4;
  config.window = Duration::Seconds(10);
  ScanDetector detector(config);
  TimePoint now;
  detector.Record(kExternal, kFarm.AddressAt(0), now);
  detector.Record(kExternal, kFarm.AddressAt(1), now);
  now += Duration::Seconds(20.0);
  detector.Record(kExternal, kFarm.AddressAt(2), now);
  detector.Record(kExternal, kFarm.AddressAt(3), now);
  EXPECT_FALSE(detector.IsScanner(kExternal));  // never 4 within one window
}

TEST(ScanDetectorTest, IdleSourcesExpire) {
  ScanDetector detector(ScanDetectorConfig{});
  TimePoint now;
  detector.Record(kExternal, kFarm.AddressAt(0), now);
  EXPECT_EQ(detector.tracked_sources(), 1u);
  EXPECT_EQ(detector.ExpireIdle(now + Duration::Minutes(5)), 1u);
  EXPECT_EQ(detector.tracked_sources(), 0u);
}

TEST(DnsProxyTest, StableAnswersInsideFarm) {
  DnsProxy proxy(kFarm, 9);
  DnsQuery query;
  query.id = 5;
  query.name = "cc.botnet.example";
  const DnsResponse a = proxy.Resolve(query);
  const DnsResponse b = proxy.Resolve(query);
  ASSERT_EQ(a.addresses.size(), 1u);
  EXPECT_EQ(a.addresses[0], b.addresses[0]);
  EXPECT_TRUE(kFarm.Contains(a.addresses[0]));
  EXPECT_EQ(a.id, 5);
  EXPECT_EQ(a.rcode, 0);
  EXPECT_EQ(proxy.names_seen(), 1u);
}

TEST(DnsProxyTest, DifferentNamesDifferentAddresses) {
  DnsProxy proxy(kFarm, 9);
  DnsQuery a;
  a.name = "one.example";
  DnsQuery b;
  b.name = "two.example";
  EXPECT_NE(proxy.Resolve(a).addresses[0], proxy.Resolve(b).addresses[0]);
}

TEST(DnsProxyTest, NonAQueriesGetNxdomain) {
  DnsProxy proxy(kFarm, 9);
  DnsQuery query;
  query.name = "x.example";
  query.qtype = 15;  // MX
  const DnsResponse response = proxy.Resolve(query);
  EXPECT_EQ(response.rcode, 3);
  EXPECT_TRUE(response.addresses.empty());
  EXPECT_EQ(proxy.nxdomain_answers(), 1u);
}

TEST(RecyclerPolicyTest, ShouldRetireLogic) {
  RecyclePolicy policy;
  policy.idle_timeout = Duration::Seconds(10);
  policy.max_lifetime = Duration::Minutes(5);
  policy.infected_hold = Duration::Seconds(60);

  Binding binding;
  binding.state = BindingState::kActive;
  binding.created = TimePoint();
  binding.last_activity = TimePoint();

  EXPECT_FALSE(ShouldRetire(binding, policy, TimePoint() + Duration::Seconds(5.0)));
  EXPECT_TRUE(ShouldRetire(binding, policy, TimePoint() + Duration::Seconds(11.0)));

  // Infected VMs get the longer hold.
  binding.infected = true;
  EXPECT_FALSE(ShouldRetire(binding, policy, TimePoint() + Duration::Seconds(11.0)));
  EXPECT_TRUE(ShouldRetire(binding, policy, TimePoint() + Duration::Seconds(61.0)));

  // Max lifetime applies regardless of activity.
  binding.infected = false;
  binding.last_activity = TimePoint() + Duration::Minutes(5);
  EXPECT_TRUE(ShouldRetire(binding, policy, TimePoint() + Duration::Minutes(5)));

  // Cloning bindings are never retired.
  binding.state = BindingState::kCloning;
  EXPECT_FALSE(ShouldRetire(binding, policy, TimePoint() + Duration::Hours(1)));
}

}  // namespace
}  // namespace potemkin
