// Gateway datapath tests for the zero-allocation packet path:
//
//  1. A counting global allocator proves the steady-state hit path performs
//     ZERO heap allocations per packet (the PR's headline invariant), with
//     pool stats cross-checking that every frame buffer was recycled.
//  2. Byte-for-byte equivalence across the containment matrix: packets that
//     traverse the pooled/incremental-checksum datapath must be identical to
//     what the seed's vector-backed, full-recompute datapath would produce —
//     including with a dirty, recycled pool.
//  3. Batched dispatch delivers exactly what scalar dispatch delivers.
//
// This lives in its own test binary because it replaces the global operator
// new/delete to count allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <span>
#include <vector>

#include "src/base/event_loop.h"
#include "src/gateway/gateway.h"
#include "src/net/checksum.h"
#include "src/net/packet_pool.h"
#include "src/obs/event_ledger.h"
#include "src/obs/observability.h"
#include "src/obs/telemetry_exporter.h"

namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The nothrow forms must be replaced too: libstdc++ uses them for temporary
// buffers (std::stable_sort), and mixing a default nothrow new with our
// replaced delete would be an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 16);

Packet Probe(Ipv4Address src, Ipv4Address dst, uint16_t sport, uint16_t dport,
             IpProto proto = IpProto::kTcp, std::vector<uint8_t> payload = {}) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(2);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.proto = proto;
  spec.src_port = sport;
  spec.dst_port = dport;
  spec.tcp_flags = TcpFlags::kSyn;
  spec.payload = std::move(payload);
  return BuildPacket(spec);
}

// Instant-spawn backend that consumes deliveries synchronously (frames return
// to the pool immediately) and accumulates pass/fail flags without touching
// the heap on the delivery path.
class DropBackend : public GatewayBackend {
 public:
  size_t NumHosts() const override { return 1; }
  bool HostCanAdmit(HostId) const override { return true; }
  size_t HostLiveVms(HostId) const override { return 0; }
  void SpawnVm(HostId, Ipv4Address, SessionId, std::function<void(VmId)> done) override {
    done(next_vm_++);
  }
  void RetireVm(HostId, VmId) override {}
  void DeliverToVm(HostId, VmId, Packet packet,
                   const PacketView& view) override {
    ++delivered_;
    views_valid_ = views_valid_ && view.ValidFor(packet);
  }

  uint64_t delivered_ = 0;
  bool views_valid_ = true;

 private:
  VmId next_vm_ = 1;
};

TEST(ZeroAllocTest, SteadyStateHitPathDoesNotTouchTheHeap) {
  EventLoop loop;
  DropBackend backend;
  // Observability explicitly enabled: the hot-path recording — counter
  // increments, histogram buckets, AND the forensic ledger append every
  // delivered packet performs — must preserve the zero-allocation invariant,
  // not just "metrics off" configurations.
  Observability obs;
  GatewayConfig config;
  config.farm_prefix = kFarm;
  config.obs = &obs;
  Gateway gateway(&loop, config, &backend);

  constexpr uint32_t kBindings = 64;
  constexpr uint32_t kSources = 8;
  auto inject = [&](uint32_t i) {
    gateway.HandleInbound(Probe(Ipv4Address(198, 51, 100, i % kSources),
                                kFarm.AddressAt(i % kBindings),
                                static_cast<uint16_t>(40000 + (i % kSources)),
                                445));
  };
  // Telemetry exporter over the same registry: its periodic sampling tick must
  // share the packet path's zero-allocation guarantee.
  TelemetryExporter exporter(&loop, &obs.metrics);
  // Warm-up: create the bindings, size every table, populate the flow and
  // scan-detector state for each (src, dst) pair we will replay, fill the
  // pool's freelists to steady state, and let the exporter's ring lines grow
  // to their steady length (an oversized first tick may allocate once).
  for (uint32_t i = 0; i < 4096; ++i) {
    inject(i);
  }
  ASSERT_EQ(backend.delivered_, 4096u);
  for (int i = 0; i < 3; ++i) {
    exporter.SampleNow();
  }

  // Registry baselines first: ValueOf() walks a Collect() snapshot, which
  // allocates — it must stay outside the measured window.
  const uint64_t rx_before =
      static_cast<uint64_t>(obs.metrics.ValueOf("gateway.rx.packets"));
  const uint64_t hit_before =
      static_cast<uint64_t>(obs.metrics.ValueOf("gateway.rx.hit"));
  const uint64_t frames_before =
      static_cast<uint64_t>(obs.metrics.ValueOf("gateway.rx.frame_bytes_count"));
  const uint64_t latency_before = static_cast<uint64_t>(
      obs.metrics.ValueOf("gateway.datapath.latency_ns_count"));
  const uint64_t ticks_before = exporter.sequence();
  const uint64_t heap_before = g_heap_allocations.load();
  const PacketPool::Stats pool_before = PacketPool::Default().stats();
  const uint64_t ledger_before = obs.ledger.appended();
  constexpr uint32_t kMeasured = 4096;
  for (uint32_t i = 0; i < kMeasured; ++i) {
    inject(i);
    // Sampling ticks interleaved with traffic, inside the measured window:
    // the histogram walk and line render must stay off the heap too.
    if (i % 512 == 511) {
      exporter.SampleNow();
    }
  }
  const uint64_t heap_after = g_heap_allocations.load();
  const PacketPool::Stats pool_after = PacketPool::Default().stats();

  EXPECT_EQ(heap_after - heap_before, 0u)
      << "steady-state hit path allocated on the heap";
  // The registry saw every packet exactly once on each instrument it crossed
  // (ValueOf itself allocates, which is why it sits outside the window).
  EXPECT_EQ(static_cast<uint64_t>(obs.metrics.ValueOf("gateway.rx.packets")) -
                rx_before,
            kMeasured);
  EXPECT_EQ(static_cast<uint64_t>(obs.metrics.ValueOf("gateway.rx.hit")) -
                hit_before,
            kMeasured);
  EXPECT_EQ(static_cast<uint64_t>(
                obs.metrics.ValueOf("gateway.rx.frame_bytes_count")) -
                frames_before,
            kMeasured);
  // The datapath latency histogram recorded every measured packet (hit path
  // delivers immediately: zero virtual-time wait, bucket 0 — still one
  // relaxed fetch_add per packet inside the window).
  EXPECT_EQ(static_cast<uint64_t>(
                obs.metrics.ValueOf("gateway.datapath.latency_ns_count")) -
                latency_before,
            kMeasured);
  // The exporter ticked inside the window without heap traffic.
  EXPECT_EQ(exporter.sequence() - ticks_before, kMeasured / 512);
  // The forensic ledger recorded exactly one kPacketDelivered per measured
  // packet INSIDE the zero-allocation window: appends land in the
  // preallocated ring (the default 8K ring wraps mid-window, evicting the
  // oldest records) without ever touching the heap.
  EXPECT_EQ(obs.ledger.appended() - ledger_before, kMeasured);
  EXPECT_GT(obs.ledger.dropped(), 0u)
      << "expected the ledger ring to wrap during the measured window";
  // Every frame came from (and went back to) the pool freelists.
  EXPECT_EQ(pool_after.allocations, pool_before.allocations);
  EXPECT_EQ(pool_after.pool_hits - pool_before.pool_hits, kMeasured);
  EXPECT_EQ(pool_after.releases - pool_before.releases, kMeasured);
  EXPECT_EQ(pool_after.discards, pool_before.discards);
  EXPECT_EQ(backend.delivered_, 2u * 4096u);
  EXPECT_TRUE(backend.views_valid_);
}

TEST(ZeroAllocTest, LedgerAppendDoesNotTouchTheHeap) {
  // The ledger in isolation: the ring is allocated once at construction; every
  // append after that — including the wrap that evicts the oldest records —
  // writes in place.
  EventLedger ledger(1024);
  const uint64_t heap_before = g_heap_allocations.load();
  for (int64_t i = 0; i < 10000; ++i) {
    ledger.Append(LedgerEvent::kPacketDelivered, /*session=*/7, /*time_ns=*/i,
                  /*a=*/0xc6336417u, /*b=*/64);
  }
  EXPECT_EQ(g_heap_allocations.load() - heap_before, 0u)
      << "ledger append allocated on the heap";
  EXPECT_EQ(ledger.size(), 1024u);
  EXPECT_EQ(ledger.dropped(), 10000u - 1024u);
}

// ---- Byte-for-byte equivalence with the seed's full-recompute datapath ----

// Reference internet checksum + full-recompute fixup over a plain byte
// vector: exactly the seed's rewrite strategy, independent of the production
// incremental-checksum code.
uint16_t RefChecksum(const uint8_t* data, size_t length) {
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < length; i += 2) {
    sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < length) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

void RefFixChecksums(std::vector<uint8_t>& b) {
  const size_t ip = kEthernetHeaderSize;
  const size_t ihl = static_cast<size_t>(b[ip] & 0x0f) * 4;
  b[ip + 10] = 0;
  b[ip + 11] = 0;
  const uint16_t ip_sum = RefChecksum(&b[ip], ihl);
  b[ip + 10] = static_cast<uint8_t>(ip_sum >> 8);
  b[ip + 11] = static_cast<uint8_t>(ip_sum);

  const auto proto = static_cast<IpProto>(b[ip + 9]);
  const size_t l4 = ip + ihl;
  const size_t l4_len = b.size() - l4;
  size_t at = 0;
  if (proto == IpProto::kTcp) {
    at = l4 + 16;
  } else if (proto == IpProto::kUdp) {
    at = l4 + 6;
  } else if (proto == IpProto::kIcmp) {
    at = l4 + 2;
  } else {
    return;
  }
  b[at] = 0;
  b[at + 1] = 0;
  InternetChecksum sum;
  if (proto == IpProto::kTcp || proto == IpProto::kUdp) {
    sum.Add(&b[ip + 12], 8);
    sum.AddU16(static_cast<uint16_t>(proto));
    sum.AddU16(static_cast<uint16_t>(l4_len));
  }
  sum.Add(&b[l4], l4_len);
  const uint16_t l4_sum = sum.Finish();
  b[at] = static_cast<uint8_t>(l4_sum >> 8);
  b[at + 1] = static_cast<uint8_t>(l4_sum);
}

void RefWriteAddr(std::vector<uint8_t>& b, size_t offset, Ipv4Address addr) {
  for (int i = 0; i < 4; ++i) {
    b[kEthernetHeaderSize + offset + static_cast<size_t>(i)] =
        static_cast<uint8_t>(addr.value() >> (24 - 8 * i));
  }
}

void RefDecrementTtl(std::vector<uint8_t>& b) {
  uint8_t& ttl = b[kEthernetHeaderSize + 8];
  ttl = ttl <= 1 ? 0 : static_cast<uint8_t>(ttl - 1);
}

// Capturing backend for the equivalence matrix (instant spawn, sync capture).
class CaptureBackend : public GatewayBackend {
 public:
  size_t NumHosts() const override { return 1; }
  bool HostCanAdmit(HostId) const override { return true; }
  size_t HostLiveVms(HostId) const override { return 0; }
  void SpawnVm(HostId, Ipv4Address ip, SessionId, std::function<void(VmId)> done) override {
    const VmId vm = next_vm_++;
    vm_by_ip_[ip.value()] = vm;
    done(vm);
  }
  void RetireVm(HostId, VmId) override {}
  void DeliverToVm(HostId, VmId vm, Packet packet,
                   const PacketView& view) override {
    EXPECT_TRUE(view.ValidFor(packet));
    delivered_.emplace_back(vm, packet.bytes());
  }

  VmId VmFor(Ipv4Address ip) const {
    auto it = vm_by_ip_.find(ip.value());
    return it == vm_by_ip_.end() ? kInvalidVm : it->second;
  }
  std::vector<std::pair<VmId, std::vector<uint8_t>>> delivered_;

 private:
  VmId next_vm_ = 1;
  std::map<uint32_t, VmId> vm_by_ip_;
};

// Runs one full containment round (inbound probe, outbound scan, NATted
// victim reply for reflect mode; open-mode egress) for one protocol and
// returns every byte stream the gateway emitted, checking each against the
// reference full-recompute prediction.
std::vector<std::vector<uint8_t>> RunContainmentRound(OutboundMode mode,
                                                      IpProto proto) {
  EventLoop loop;
  CaptureBackend backend;
  GatewayConfig config;
  config.farm_prefix = kFarm;
  config.containment.mode = mode;
  config.containment.dns_proxy = false;
  Gateway gateway(&loop, config, &backend);
  std::vector<std::vector<uint8_t>> egress;
  gateway.set_egress_sink(
      [&egress](Packet p) { egress.push_back(p.bytes()); });
  std::vector<std::vector<uint8_t>> emitted;

  // Inbound probe brings up the "worm" VM; the delivered frame must be the
  // original with a full-recompute TTL decrement.
  const Ipv4Address worm_ip = kFarm.AddressAt(3);
  const Ipv4Address external_src(203, 0, 113, 50);
  Packet probe = Probe(external_src, worm_ip, 40000, 445, proto, {1, 2, 3});
  std::vector<uint8_t> expected = probe.bytes();
  RefDecrementTtl(expected);
  RefFixChecksums(expected);
  gateway.HandleInbound(std::move(probe));
  loop.RunAll();
  EXPECT_EQ(backend.delivered_.size(), 1u) << "probe not delivered";
  if (!backend.delivered_.empty()) {
    EXPECT_EQ(backend.delivered_.back().second, expected)
        << "inbound delivery differs from full-recompute reference";
    emitted.push_back(backend.delivered_.back().second);
  }
  const VmId worm_vm = backend.VmFor(worm_ip);

  // Outbound scan from the worm to a fresh external target.
  const Ipv4Address target(77, 1, 2, 3);
  Packet scan = Probe(worm_ip, target, 2000, 135, proto, {4, 5});
  const std::vector<uint8_t> scan_bytes = scan.bytes();
  gateway.HandleOutbound(0, worm_vm, std::move(scan));
  loop.RunAll();

  switch (mode) {
    case OutboundMode::kOpen: {
      // Passed through unmodified.
      EXPECT_EQ(egress.size(), 1u);
      if (!egress.empty()) {
        EXPECT_EQ(egress.back(), scan_bytes);
        emitted.push_back(egress.back());
      }
      break;
    }
    case OutboundMode::kDropAll: {
      EXPECT_TRUE(egress.empty());
      EXPECT_EQ(backend.delivered_.size(), 1u);  // nothing new delivered
      break;
    }
    case OutboundMode::kReflect: {
      EXPECT_TRUE(egress.empty());
      EXPECT_EQ(backend.delivered_.size(), 2u) << "scan not reflected";
      if (backend.delivered_.size() < 2) {
        break;
      }
      // The reflected frame: dst rewritten to the victim the gateway chose,
      // then the router-hop TTL decrement — both via full recompute.
      const std::vector<uint8_t>& reflected = backend.delivered_.back().second;
      Packet reparse{std::vector<uint8_t>(reflected)};
      const auto view = PacketView::Parse(reparse);
      EXPECT_TRUE(view.has_value());
      if (!view) {
        break;
      }
      const Ipv4Address victim = view->ip().dst;
      EXPECT_TRUE(kFarm.Contains(victim));
      std::vector<uint8_t> expect_reflect = scan_bytes;
      RefWriteAddr(expect_reflect, 16, victim);
      RefFixChecksums(expect_reflect);
      RefDecrementTtl(expect_reflect);
      RefFixChecksums(expect_reflect);
      EXPECT_EQ(reflected, expect_reflect)
          << "reflected frame differs from full-recompute reference";
      emitted.push_back(reflected);

      // Victim replies to the worm; its source must be NATted back to the
      // external target, again matching the reference rewrite.
      const VmId victim_vm = backend.VmFor(victim);
      EXPECT_NE(victim_vm, kInvalidVm);
      if (victim_vm == kInvalidVm) {
        break;
      }
      Packet reply = Probe(victim, worm_ip, 135, 2000, proto, {6});
      std::vector<uint8_t> expect_reply = reply.bytes();
      gateway.HandleOutbound(0, victim_vm, std::move(reply));
      loop.RunAll();
      EXPECT_EQ(backend.delivered_.size(), 3u) << "NATted reply not delivered";
      if (backend.delivered_.size() == 3) {
        RefWriteAddr(expect_reply, 12, target);
        RefFixChecksums(expect_reply);
        RefDecrementTtl(expect_reply);
        RefFixChecksums(expect_reply);
        EXPECT_EQ(backend.delivered_.back().second, expect_reply)
            << "NATted reply differs from full-recompute reference";
        emitted.push_back(backend.delivered_.back().second);
      }
      break;
    }
  }
  for (const auto& bytes : emitted) {
    EXPECT_TRUE(ValidateChecksums(Packet(std::vector<uint8_t>(bytes))));
  }
  return emitted;
}

TEST(DatapathEquivalenceTest, ContainmentMatrixMatchesFullRecomputeReference) {
  for (const OutboundMode mode :
       {OutboundMode::kOpen, OutboundMode::kDropAll, OutboundMode::kReflect}) {
    for (const IpProto proto :
         {IpProto::kTcp, IpProto::kUdp, IpProto::kIcmp}) {
      SCOPED_TRACE(testing::Message()
                   << "mode=" << static_cast<int>(mode)
                   << " proto=" << IpProtoName(proto));
      // Round 1 runs with whatever pool state earlier tests left behind;
      // round 2 re-runs the identical scenario against a now-dirty pool whose
      // freelists hold round 1's retired (unzeroed-at-release) buffers.
      // Recycling must be invisible: identical byte streams both rounds.
      const auto first = RunContainmentRound(mode, proto);
      const auto second = RunContainmentRound(mode, proto);
      EXPECT_EQ(first, second) << "recycled pool buffers changed the bytes";
    }
  }
}

TEST(BatchDispatchTest, BatchDeliversExactlyWhatScalarDelivers) {
  // One mixed burst: hits on existing bindings (several per destination),
  // first-contact misses, and non-farm noise. The batched path must produce
  // the same deliveries (per-destination order included) and the same stats
  // as packet-at-a-time dispatch.
  auto build_workload = []() {
    std::vector<Packet> burst;
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t kind = i % 4;
      if (kind == 3) {  // non-farm
        burst.push_back(Probe(Ipv4Address(198, 51, 100, i % 7),
                              Ipv4Address(192, 0, 2, i % 11),
                              static_cast<uint16_t>(30000 + i), 80));
      } else {  // farm traffic, several packets per destination
        burst.push_back(Probe(Ipv4Address(198, 51, 100, i % 7),
                              kFarm.AddressAt(i % 40),
                              static_cast<uint16_t>(40000 + i), 445, IpProto::kTcp,
                              {static_cast<uint8_t>(i)}));
      }
    }
    return burst;
  };

  auto run = [&](bool batched) {
    EventLoop loop;
    CaptureBackend backend;
    GatewayConfig config;
    config.farm_prefix = kFarm;
    Gateway gateway(&loop, config, &backend);
    // Pre-establish half the destinations so the burst mixes hits and misses.
    for (uint32_t d = 0; d < 20; ++d) {
      gateway.HandleInbound(Probe(Ipv4Address(198, 51, 100, 1),
                                  kFarm.AddressAt(d), 20000, 445));
    }
    loop.RunAll();
    backend.delivered_.clear();
    std::vector<Packet> burst = build_workload();
    if (batched) {
      gateway.HandleInboundBatch(std::span<Packet>(burst.data(), burst.size()));
    } else {
      for (auto& packet : burst) {
        gateway.HandleInbound(std::move(packet));
      }
    }
    loop.RunAll();
    const GatewayStats& stats = gateway.stats();
    return std::make_tuple(backend.delivered_, stats.inbound_packets,
                           stats.inbound_delivered, stats.inbound_nonfarm,
                           stats.clones_triggered);
  };

  const auto scalar = run(/*batched=*/false);
  const auto batch = run(/*batched=*/true);
  EXPECT_EQ(std::get<1>(scalar), std::get<1>(batch));
  EXPECT_EQ(std::get<2>(scalar), std::get<2>(batch));
  EXPECT_EQ(std::get<3>(scalar), std::get<3>(batch));
  EXPECT_EQ(std::get<4>(scalar), std::get<4>(batch));

  // Same multiset of deliveries, and per-destination arrival order preserved.
  auto by_dst = [](const std::vector<std::pair<VmId, std::vector<uint8_t>>>&
                       delivered) {
    std::map<uint32_t, std::vector<std::vector<uint8_t>>> grouped;
    for (const auto& [vm, bytes] : delivered) {
      Packet p{std::vector<uint8_t>(bytes)};
      grouped[PacketView::Parse(p)->ip().dst.value()].push_back(bytes);
    }
    return grouped;
  };
  EXPECT_EQ(by_dst(std::get<0>(scalar)), by_dst(std::get<0>(batch)));
}

}  // namespace
}  // namespace potemkin
