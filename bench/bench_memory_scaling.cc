// Experiment F3 — Aggregate memory vs number of concurrent VMs.
//
// Delta virtualization vs the full-copy baseline on one host: clone VMs (each
// serving a burst of requests, so deltas are realistic rather than zero) until
// admission control refuses, recording aggregate machine-memory use along the way.
// The paper packed ~100 VMs into a 2 GB host and projected ~1500 from measured
// deltas; the reproduction shows the same ~order-of-magnitude gap between modes.
#include <cstdio>

#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/guest/guest_os.h"
#include "src/hv/physical_host.h"

namespace potemkin {
namespace {

struct ScalePoint {
  uint64_t vms;
  uint64_t used_mb;
};

struct ScaleResult {
  std::vector<ScalePoint> curve;
  uint64_t max_vms = 0;
  double marginal_kb_per_vm = 0;
};

Packet ServiceRequest(Ipv4Address dst, uint32_t salt) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(9);
  spec.dst_mac = MacAddress::FromId(2);
  spec.src_ip = Ipv4Address(198, 51, 100, 1);
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = static_cast<uint16_t>(20000 + salt % 1000);
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kPsh | TcpFlags::kAck;
  spec.payload = {'S', 'M', 'B', static_cast<uint8_t>(salt)};
  return BuildPacket(spec);
}

ScaleResult RunMode(CloneKind kind, uint64_t host_mb, uint32_t image_pages,
                    int requests_per_vm) {
  PhysicalHostConfig host_config;
  host_config.memory_mb = host_mb;
  host_config.content_mode = ContentMode::kMetadataOnly;
  PhysicalHost host(host_config);
  ReferenceImageConfig image_config;
  image_config.num_pages = image_pages;
  const ImageId image = host.RegisterImage(image_config);

  GuestOsConfig guest_config;
  guest_config.services = DefaultWindowsServices();

  ScaleResult result;
  Rng rng(17);
  std::vector<std::unique_ptr<GuestOs>> guests;
  uint64_t count = 0;
  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 16);
  while (true) {
    VirtualMachine* vm = host.CreateClone(image, kind, "vm");
    if (vm == nullptr) {
      break;
    }
    vm->BindAddress(prefix.AddressAt(count), MacAddress::FromId(count));
    vm->set_state(VmState::kRunning);
    auto guest = std::make_unique<GuestOs>(vm, guest_config, rng.Fork(count));
    for (int r = 0; r < requests_per_vm; ++r) {
      guest->HandleFrame(ServiceRequest(vm->ip(), static_cast<uint32_t>(r)),
                         TimePoint());
    }
    guests.push_back(std::move(guest));
    ++count;
    if ((count & (count - 1)) == 0 || count % 64 == 0) {  // log2-ish samples
      result.curve.push_back({count, host.allocator().used_bytes() >> 20});
    }
  }
  result.max_vms = count;
  if (result.curve.size() >= 2) {
    const auto& a = result.curve[result.curve.size() / 2];
    const auto& b = result.curve.back();
    if (b.vms > a.vms) {
      result.marginal_kb_per_vm = static_cast<double>((b.used_mb - a.used_mb) << 10) /
                                  static_cast<double>(b.vms - a.vms);
    }
  }
  result.curve.push_back({count, host.allocator().used_bytes() >> 20});
  return result;
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint32_t image_pages = static_cast<uint32_t>(flags.GetUint("image-pages", 8192));
  const int requests = static_cast<int>(flags.GetInt("requests-per-vm", 10));

  std::printf("=== F3: aggregate memory vs concurrent VMs (one host) ===\n");
  std::printf("image: %s; each VM serves %d requests before the next clone\n\n",
              HumanBytes(static_cast<uint64_t>(image_pages) * kPageSize).c_str(),
              requests);

  Table table({"host memory", "mode", "max VMs", "used at cap (MiB)",
               "marginal cost (KiB/VM)"});
  BenchReport report("memory_scaling");
  for (uint64_t host_mb : {512ull, 2048ull}) {
    for (CloneKind kind : {CloneKind::kFlash, CloneKind::kFullCopy}) {
      const ScaleResult r = RunMode(kind, host_mb, image_pages, requests);
      table.AddRow({HumanBytes(host_mb << 20), CloneKindName(kind),
                    WithCommas(r.max_vms),
                    WithCommas(r.curve.back().used_mb),
                    StrFormat("%.0f", r.marginal_kb_per_vm)});
      report.Add(StrFormat("max_vms_%llumb_%s",
                           static_cast<unsigned long long>(host_mb),
                           kind == CloneKind::kFlash ? "flash" : "fullcopy"),
                 static_cast<double>(r.max_vms), "vms");
    }
  }
  std::printf("%s\n", table.ToAscii().c_str());

  // Detailed growth curve on the 2 GiB host.
  const ScaleResult flash = RunMode(CloneKind::kFlash, 2048, image_pages, requests);
  const ScaleResult full = RunMode(CloneKind::kFullCopy, 2048, image_pages, requests);
  std::printf("memory growth on 2 GiB host (CSV):\nvms,flash_mib,fullcopy_mib\n");
  size_t fi = 0;
  for (const auto& point : flash.curve) {
    while (fi + 1 < full.curve.size() && full.curve[fi + 1].vms <= point.vms) {
      ++fi;
    }
    std::printf("%llu,%llu,%s\n", static_cast<unsigned long long>(point.vms),
                static_cast<unsigned long long>(point.used_mb),
                point.vms <= full.max_vms
                    ? StrFormat("%llu",
                                static_cast<unsigned long long>(full.curve[fi].used_mb))
                          .c_str()
                    : "");
  }
  std::printf("\nshape check (paper): delta virtualization fits roughly an order of "
              "magnitude more VMs per host than full copying; marginal per-VM cost "
              "is the working-set delta plus fixed overhead, not the image size.\n");

  report.Add("marginal_kb_per_vm_flash_2048mb", flash.marginal_kb_per_vm, "KiB");
  report.WriteJson();
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
