#include "bench/report.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/base/json_util.h"

namespace potemkin {

namespace {

// Runs `command`, returning its first output line (trimmed), or "" on failure.
std::string FirstLineOf(const char* command) {
  FILE* pipe = ::popen(command, "r");
  if (pipe == nullptr) {
    return "";
  }
  char buffer[512];
  std::string line;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    line = buffer;
  }
  ::pclose(pipe);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return line;
}

}  // namespace

BenchReport::BenchReport(std::string benchmark) : benchmark_(std::move(benchmark)) {}

void BenchReport::Add(std::string metric, double value, std::string unit) {
  metrics_.push_back(Metric{std::move(metric), value, std::move(unit)});
}

std::string BenchReport::OutputDir() {
  if (const char* dir = std::getenv("POTEMKIN_BENCH_DIR"); dir != nullptr && *dir) {
    return dir;
  }
  const std::string toplevel =
      FirstLineOf("git rev-parse --show-toplevel 2>/dev/null");
  return toplevel.empty() ? "." : toplevel;
}

std::string BenchReport::GitSha() {
  const std::string sha = FirstLineOf("git rev-parse --short HEAD 2>/dev/null");
  return sha.empty() ? "unknown" : sha;
}

std::string BenchReport::ToJson() const {
  std::string out = "{\n  \"benchmark\": ";
  AppendJsonString(out, benchmark_);
  out += ",\n  \"seed\": ";
  AppendJsonNumber(out, static_cast<double>(seed_));
  out += ",\n  \"git_sha\": ";
  AppendJsonString(out, GitSha());
  out += ",\n  \"shards\": ";
  AppendJsonNumber(out, static_cast<double>(shards_));
  out += ",\n  \"host_threads\": ";
  AppendJsonNumber(out,
                   static_cast<double>(std::thread::hardware_concurrency()));
  out += ",\n  \"metrics\": [";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"metric\": ";
    AppendJsonString(out, metrics_[i].name);
    out += ", \"value\": ";
    AppendJsonNumber(out, metrics_[i].value);
    out += ", \"unit\": ";
    AppendJsonString(out, metrics_[i].unit);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string BenchReport::WriteJson() const {
  const std::string path = OutputDir() + "/BENCH_" + benchmark_ + ".json";
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
    return "";
  }
  const std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::fprintf(stderr, "perf report: %s\n", path.c_str());
  return path;
}

}  // namespace potemkin
