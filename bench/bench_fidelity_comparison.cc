// Experiment E2 (baseline comparison) — High-interaction farm vs low-interaction
// responder.
//
// The paper's opening argument: low-interaction honeypots scale trivially but
// cannot be compromised, so they never observe the malware itself. This bench
// subjects both systems to the identical workload — background radiation plus a
// worm outbreak — and compares what each one captured and what it cost.
#include <cstdio>

#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/core/honeyfarm.h"
#include "src/gateway/low_interaction.h"
#include "src/malware/radiation.h"

namespace potemkin {
namespace {

const Ipv4Prefix kPrefix(Ipv4Address(10, 1, 0, 0), 22);

struct Workload {
  std::vector<TraceRecord> radiation;
  WormConfig worm;
  Ipv4Address worm_attacker = Ipv4Address(198, 51, 100, 66);
  Ipv4Address worm_victim;
};

Workload MakeWorkload(const Flags& flags) {
  Workload workload;
  RadiationConfig radiation;
  radiation.telescope = kPrefix;
  radiation.duration = Duration::Minutes(flags.GetDouble("minutes", 2.0));
  radiation.mean_pps = flags.GetDouble("pps", 30.0);
  radiation.source_pool = 2000;
  radiation.seed = flags.GetUint("seed", 17);
  workload.radiation = RadiationGenerator(radiation).GenerateAll();
  workload.worm = SlammerLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  workload.worm.scan_rate_pps = 1.0;
  workload.worm_victim = kPrefix.AddressAt(7);
  return workload;
}

struct Outcome {
  uint64_t responses = 0;
  uint64_t infections_observed = 0;
  uint64_t worm_scans_captured = 0;   // outbound behaviour recorded
  uint64_t exploit_deliveries = 0;    // exploits that reached *something*
  uint64_t memory_mib = 0;
  uint64_t vms = 0;
};

Outcome RunHighInteraction(const Workload& workload, const Flags& flags) {
  HoneyfarmConfig config = MakeDefaultFarmConfig(kPrefix, /*num_hosts=*/4,
                                                 /*host_memory_mb=*/1024,
                                                 ContentMode::kMetadataOnly);
  config.server_template.image.num_pages = 2048;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.server_template.engine.control_plane_workers = 8;
  config.gateway.containment.mode = OutboundMode::kReflect;
  config.gateway.recycle.idle_timeout = Duration::Minutes(2);
  config.gateway.recycle.infected_hold = Duration::Minutes(30);
  config.gateway.recycle.max_lifetime = Duration::Zero();

  Honeyfarm farm(config);
  WormRuntime worm(&farm.loop(), workload.worm, 5);
  farm.AttachWorm(&worm);
  farm.Start();
  farm.ScheduleTrace(workload.radiation);
  farm.SeedWorm(worm, workload.worm_attacker, workload.worm_victim);
  farm.RunFor(Duration::Minutes(flags.GetDouble("minutes", 2.0)));

  Outcome outcome;
  outcome.responses = farm.egress_packet_count();
  outcome.infections_observed = farm.epidemic().total_infections();
  outcome.worm_scans_captured = worm.stats().scans_sent;
  GuestStats guest_totals;
  for (size_t s = 0; s < farm.server_count(); ++s) {
    guest_totals.exploits_received +=
        farm.server(s).AggregateGuestStats().exploits_received;
  }
  outcome.exploit_deliveries = guest_totals.exploits_received;
  outcome.memory_mib = farm.TotalUsedFrames() * kPageSize >> 20;
  outcome.vms = farm.TotalLiveVms();
  return outcome;
}

Outcome RunLowInteraction(const Workload& workload, const Flags& flags) {
  // The responder sees the same radiation plus the worm's seed exploit; there is
  // no VM, so nothing can be infected and no worm behaviour exists to observe.
  LowInteractionResponder responder(kPrefix, DefaultWindowsServices(), 5);
  Outcome outcome;
  EventLoop loop;
  WormRuntime worm(&loop, workload.worm, 5);  // used only to build the exploit
  auto feed = [&](const Packet& packet) {
    const auto view = PacketView::Parse(packet);
    if (!view) {
      return;
    }
    if (responder.Respond(*view).has_value()) {
      ++outcome.responses;
    }
  };
  for (const auto& record : workload.radiation) {
    feed(PacketFromRecord(record, MacAddress::FromId(record.src.value()),
                          MacAddress::FromId(1)));
  }
  feed(worm.MakeScanPacket(workload.worm_attacker,
                           MacAddress::FromId(workload.worm_attacker.value()),
                           workload.worm_victim));
  outcome.exploit_deliveries = responder.stats().exploit_payloads_ignored;
  outcome.infections_observed = 0;     // structurally impossible
  outcome.worm_scans_captured = 0;     // nothing runs, nothing scans
  outcome.memory_mib = 1;              // a responder process; effectively free
  outcome.vms = 0;
  (void)flags;
  return outcome;
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  std::printf("=== E2 (baseline): high-interaction farm vs low-interaction "
              "responder ===\n");
  const Workload workload = MakeWorkload(flags);
  std::printf("identical workload: %zu radiation packets + slammer-like outbreak "
              "on %s\n\n",
              workload.radiation.size(), kPrefix.ToString().c_str());

  const Outcome high = RunHighInteraction(workload, flags);
  const Outcome low = RunLowInteraction(workload, flags);

  Table table({"metric", "low-interaction (honeyd-style)",
               "high-interaction (Potemkin)"});
  table.AddRow({"responses produced", WithCommas(low.responses),
                WithCommas(high.responses)});
  table.AddRow({"exploits delivered to a target", WithCommas(low.exploit_deliveries),
                WithCommas(high.exploit_deliveries)});
  table.AddRow({"infections observed", WithCommas(low.infections_observed),
                WithCommas(high.infections_observed)});
  table.AddRow({"worm scans captured (behaviour)",
                WithCommas(low.worm_scans_captured),
                WithCommas(high.worm_scans_captured)});
  table.AddRow({"live VMs at end", WithCommas(low.vms), WithCommas(high.vms)});
  table.AddRow({"memory in use", StrFormat("~%llu MiB",
                                           static_cast<unsigned long long>(
                                               low.memory_mib)),
                StrFormat("%llu MiB", static_cast<unsigned long long>(
                                          high.memory_mib))});
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("shape check (paper's motivation): the responder answers probes as\n"
              "cheaply as Potemkin does, but observes ZERO infections and zero\n"
              "post-compromise behaviour — exploits bounce off a facade. The farm\n"
              "pays real (but delta-sized) memory to capture the actual malware.\n");

  BenchReport report("fidelity_comparison");
  report.set_seed(flags.GetUint("seed", 17));
  report.Add("infections_high_interaction",
             static_cast<double>(high.infections_observed), "infections");
  report.Add("infections_low_interaction",
             static_cast<double>(low.infections_observed), "infections");
  report.Add("worm_scans_captured_high",
             static_cast<double>(high.worm_scans_captured), "packets");
  report.WriteJson();
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
