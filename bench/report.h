// Perf-trajectory reporting: every benchmark binary records its headline
// metrics as BENCH_<name>.json at the repository root, so successive commits
// leave a machine-readable performance trail (compare two checkouts by diffing
// their BENCH files). The schema is deliberately flat — one object per binary,
// one row per metric — so a dashboard or CI check needs no bench-specific
// parsing:
//
//   {
//     "benchmark": "vm_scaling",
//     "seed": 42,
//     "git_sha": "97e6328",
//     "shards": 1,
//     "host_threads": 8,
//     "metrics": [
//       {"metric": "peak_live_vms_timeout_5s", "value": 533, "unit": "vms"}
//     ]
//   }
//
// The output directory is the enclosing git worktree root (queried from git at
// run time), overridable with POTEMKIN_BENCH_DIR; metric values come from the
// deterministic simulation, so a BENCH file diff is meaningful noise-free.
#ifndef BENCH_REPORT_H_
#define BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace potemkin {

class BenchReport {
 public:
  explicit BenchReport(std::string benchmark);

  void Add(std::string metric, double value, std::string unit);
  void set_seed(uint64_t seed) { seed_ = seed; }
  // Gateway shard count the run used (1 for unsharded benches). Stamped into
  // the JSON alongside `host_threads` (the machine's hardware concurrency) so
  // a diff can tell a code regression from a topology or host change.
  void set_shards(uint32_t shards) { shards_ = shards; }

  // Serializes the report (stable key order, trailing newline).
  std::string ToJson() const;

  // Writes BENCH_<benchmark>.json into OutputDir(). Returns the path written,
  // or an empty string when the file could not be created.
  std::string WriteJson() const;

  // POTEMKIN_BENCH_DIR if set, else `git rev-parse --show-toplevel`, else ".".
  static std::string OutputDir();
  // Short commit hash of the enclosing checkout, "unknown" outside git.
  static std::string GitSha();

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };

  std::string benchmark_;
  uint64_t seed_ = 0;
  uint32_t shards_ = 1;
  std::vector<Metric> metrics_;
};

}  // namespace potemkin

#endif  // BENCH_REPORT_H_
