// Micro-benchmarks (google-benchmark) of the hot paths underneath every
// experiment: packet construction/parsing/checksums, CoW fault handling, flash
// clone mechanics, flow tracking, and reflection target computation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <vector>

#include "src/base/event_loop.h"
#include "src/base/spsc_ring.h"
#include "src/gateway/binding_table.h"
#include "src/gateway/containment.h"
#include "src/hv/physical_host.h"
#include "src/net/checksum.h"
#include "src/net/flow.h"
#include "src/net/packet.h"
#include "src/net/packet_pool.h"
#include "src/obs/event_ledger.h"
#include "src/obs/observability.h"
#include "src/obs/watchdog.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 16);

PacketSpec SynSpec(uint32_t salt) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(1);
  spec.dst_mac = MacAddress::FromId(2);
  spec.src_ip = Ipv4Address(198, 51, 100, static_cast<uint8_t>(salt));
  spec.dst_ip = kFarm.AddressAt(salt % 65536);
  spec.proto = IpProto::kTcp;
  spec.src_port = static_cast<uint16_t>(1024 + salt % 60000);
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kSyn;
  return spec;
}

void BM_BuildPacket(benchmark::State& state) {
  uint32_t salt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPacket(SynSpec(++salt)));
  }
}
BENCHMARK(BM_BuildPacket);

void BM_ParsePacket(benchmark::State& state) {
  const Packet packet = BuildPacket(SynSpec(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PacketView::Parse(packet));
  }
}
BENCHMARK(BM_ParsePacket);

void BM_ValidateChecksums(benchmark::State& state) {
  PacketSpec spec = SynSpec(7);
  spec.payload.assign(static_cast<size_t>(state.range(0)), 0xab);
  const Packet packet = BuildPacket(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateChecksums(packet));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packet.size()));
}
BENCHMARK(BM_ValidateChecksums)->Arg(0)->Arg(512)->Arg(1400);

void BM_RewriteDst(benchmark::State& state) {
  Packet packet = BuildPacket(SynSpec(7));
  uint32_t salt = 0;
  for (auto _ : state) {
    RewriteIpv4Dst(packet, kFarm.AddressAt(++salt % 65536));
    benchmark::DoNotOptimize(packet);
  }
}
BENCHMARK(BM_RewriteDst);

// ---- CoW fault family ----
//
// Four benchmarks spanning {per-page, batched} x {kStoreBytes, kMetadataOnly}.
// The split matters because the two modes are dominated by different costs:
//
//  - kStoreBytes pays a real 4 KiB copy per CoW break. That copy is
//    memcpy-bandwidth-bound and identical for both paths, so it floods the
//    comparison: the per-page path's extra machinery (heap alloc/free, per-page
//    capacity checks and refcount settling) is only ~2x the copy itself.
//  - kMetadataOnly — the mode every large-scale farm bench runs in, including
//    the 2000-clone density storm — is pure fault machinery, which is exactly
//    what the batch API amortises: one reservation, one bookkeeping flush,
//    bulk PTE flips.
//
// BM_CowFault keeps its original shape (the committed perf-trajectory
// baseline); BM_CowFaultBatch is the flash-clone pipeline as PhysicalHost
// drives it (MapSharedCowRun + FaultRange) in the density farm's metadata
// mode; the *Bytes/*Meta variants fill in the other two cells so the matrix
// is complete. items = pages for all four, so per-item times and
// items_per_second compare directly.

void BM_CowFault(benchmark::State& state) {
  // Measures a single CoW break: map shared, write one byte, unmap, repeat.
  FrameAllocator alloc(1 << 20, ContentMode::kStoreBytes);
  const FrameId shared = alloc.AllocateZeroed();
  const uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  alloc.Write(shared, 0, std::span(data, 8));
  AddressSpace as(&alloc, 1);
  for (auto _ : state) {
    as.MapSharedCow(0, shared);
    benchmark::DoNotOptimize(as.WriteGuest(0, std::span(data, 8)));
  }
  alloc.Unref(shared);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CowFault);

void BM_CowFaultMeta(benchmark::State& state) {
  // Per-page CoW break with accounting-only frames: the per-page machinery
  // floor, with no copy and no heap traffic.
  FrameAllocator alloc(1 << 20, ContentMode::kMetadataOnly);
  const FrameId shared = alloc.AllocateZeroed();
  const uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  AddressSpace as(&alloc, 1);
  for (auto _ : state) {
    as.MapSharedCow(0, shared);
    benchmark::DoNotOptimize(as.WriteGuest(0, std::span(data, 8)));
  }
  alloc.Unref(shared);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CowFaultMeta);

template <ContentMode kMode>
void CowFaultBatchImpl(benchmark::State& state) {
  // A run of pending CoW faults resolved through the flash-clone pipeline:
  // bind the image run with MapSharedCowRun, resolve every fault with one
  // FaultRange call (one reservation, pooled buffers, bulk bookkeeping),
  // recycle with ReleaseAll.
  const uint32_t run = static_cast<uint32_t>(state.range(0));
  FrameAllocator alloc(1 << 20, kMode);
  const FrameId shared = alloc.AllocateZeroed();
  const uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  alloc.Write(shared, 0, std::span(data, 8));
  const std::vector<FrameId> frames(run, shared);
  AddressSpace as(&alloc, run);
  for (auto _ : state) {
    as.ReleaseAll();
    as.MapSharedCowRun(0, std::span<const FrameId>(frames));
    benchmark::DoNotOptimize(as.FaultRange(0, run));
  }
  alloc.Unref(shared);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * run);
}

void BM_CowFaultBatch(benchmark::State& state) {
  CowFaultBatchImpl<ContentMode::kMetadataOnly>(state);
}
BENCHMARK(BM_CowFaultBatch)->Arg(16)->Arg(64)->Arg(256);

void BM_CowFaultBatchBytes(benchmark::State& state) {
  CowFaultBatchImpl<ContentMode::kStoreBytes>(state);
}
BENCHMARK(BM_CowFaultBatchBytes)->Arg(16)->Arg(64)->Arg(256);

void BM_GuestWriteNoFault(benchmark::State& state) {
  FrameAllocator alloc(1 << 16, ContentMode::kStoreBytes);
  AddressSpace as(&alloc, 16);
  const uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  as.WriteGuest(0, std::span(data, 8));  // materialize
  for (auto _ : state) {
    benchmark::DoNotOptimize(as.WriteGuest(0, std::span(data, 8)));
  }
}
BENCHMARK(BM_GuestWriteNoFault);

void BM_FlashCloneMechanics(benchmark::State& state) {
  PhysicalHostConfig config;
  config.memory_mb = 8192;
  config.content_mode = ContentMode::kMetadataOnly;
  PhysicalHost host(config);
  ReferenceImageConfig image_config;
  image_config.num_pages = static_cast<uint32_t>(state.range(0));
  const ImageId image = host.RegisterImage(image_config);
  for (auto _ : state) {
    VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "b");
    benchmark::DoNotOptimize(vm);
    host.DestroyVm(vm->id());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FlashCloneMechanics)->Arg(2048)->Arg(8192)->Arg(32768);

void BM_FlowTableRecord(benchmark::State& state) {
  FlowTable table(Duration::Seconds(60), 1 << 20);
  std::vector<Packet> packets;
  for (uint32_t i = 0; i < 4096; ++i) {
    packets.push_back(BuildPacket(SynSpec(i)));
  }
  std::vector<PacketView> views;
  for (const auto& p : packets) {
    views.push_back(*PacketView::Parse(p));
  }
  TimePoint now;
  size_t i = 0;
  for (auto _ : state) {
    now += Duration::Micros(1);
    benchmark::DoNotOptimize(table.Record(views[i++ % views.size()], now));
  }
}
BENCHMARK(BM_FlowTableRecord);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  // Schedule-then-drain batches: the per-event cost of the simulation core.
  // The batch size is the number of events in flight; a loaded farm keeps tens
  // of thousands pending (one recycle timer per bound address).
  EventLoop loop;
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      loop.ScheduleAfter(Duration::Nanos(i), [] {});
    }
    loop.RunAll();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(256)->Arg(4096)->Arg(16384);

void BM_EventLoopScheduleCancel(benchmark::State& state) {
  // The recycler pattern: arm far-future timers, cancel, re-arm.
  EventLoop loop;
  const int batch = static_cast<int>(state.range(0));
  std::vector<EventHandle> handles(static_cast<size_t>(batch));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      handles[static_cast<size_t>(i)] =
          loop.ScheduleAfter(Duration::Hours(1), [] {});
    }
    for (int i = 0; i < batch; ++i) {
      loop.Cancel(handles[static_cast<size_t>(i)]);
    }
    loop.RunAll();  // drains any cancelled residue without advancing work
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_EventLoopScheduleCancel)->Arg(256)->Arg(4096)->Arg(16384);

void BM_BindingLookupHit(benchmark::State& state) {
  // The per-packet gateway lookup against a populated table. Probe addresses
  // are precomputed (the measurement is the lookup, not address arithmetic) and
  // shuffled, since packet arrivals carry no relation to binding-creation order.
  BindingTable table;
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Ipv4Address> probes;
  probes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Ipv4Address ip = kFarm.AddressAt((i * 7) % 65536);
    table.CreatePending(ip, 0, TimePoint());
    probes.push_back(ip);
  }
  std::shuffle(probes.begin(), probes.end(), std::mt19937(12345));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(probes[i]));
    if (++i == n) {
      i = 0;
    }
  }
}
BENCHMARK(BM_BindingLookupHit)->Arg(4096)->Arg(65536);

void BM_BindingChurn(benchmark::State& state) {
  // Create/activate/remove lifecycle, as driven by clone + recycle.
  BindingTable table;
  std::vector<Ipv4Address> addrs;
  addrs.reserve(65536);
  for (uint32_t i = 0; i < 65536; ++i) {
    addrs.push_back(kFarm.AddressAt(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    const Ipv4Address ip = addrs[i];
    if (++i == addrs.size()) {
      i = 0;
    }
    table.CreatePending(ip, 0, TimePoint());
    table.Activate(ip, 1, TimePoint());
    table.Remove(ip);
  }
}
BENCHMARK(BM_BindingChurn);

void BM_ReflectTarget(benchmark::State& state) {
  ContainmentConfig config;
  ContainmentEngine engine(config, kFarm, 42);
  uint32_t salt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.ReflectTarget(Ipv4Address(++salt), kFarm.AddressAt(1)));
  }
}
BENCHMARK(BM_ReflectTarget);

void BM_PacketPoolAcquireRelease(benchmark::State& state) {
  // Steady-state buffer recycling: after the first iteration every Acquire is
  // a freelist hit, so this is the pooled replacement for a malloc/free pair.
  PacketPool pool;
  const size_t size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<uint8_t> buffer = pool.Acquire(size);
    benchmark::DoNotOptimize(buffer.data());
    pool.Release(std::move(buffer));
  }
}
BENCHMARK(BM_PacketPoolAcquireRelease)->Arg(60)->Arg(576)->Arg(1514);

void BM_HeapAcquireRelease(benchmark::State& state) {
  // The allocation pair the pool replaces, for the before/after column.
  const size_t size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<uint8_t> buffer(size, 0);
    benchmark::DoNotOptimize(buffer.data());
  }
}
BENCHMARK(BM_HeapAcquireRelease)->Arg(60)->Arg(576)->Arg(1514);

void BM_ChecksumUpdate32(benchmark::State& state) {
  // One RFC 1624 delta: the per-rewrite checksum cost on the reflection path.
  uint16_t sum = 0x1234;
  uint32_t salt = 0;
  for (auto _ : state) {
    ++salt;
    sum = ChecksumUpdate32(sum, salt, salt * 2654435761u);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ChecksumUpdate32);

// Reference full-recompute rewrite (the seed's strategy) so BM_RewriteDst has
// a visible before/after in the same report. Uses only the public checksum
// API; correctness against the incremental path is covered in packet_test.
void RewriteDstFullRecompute(Packet& packet, Ipv4Address new_dst) {
  auto& b = packet.mutable_bytes();
  b[kEthernetHeaderSize + 16] = static_cast<uint8_t>(new_dst.value() >> 24);
  b[kEthernetHeaderSize + 17] = static_cast<uint8_t>(new_dst.value() >> 16);
  b[kEthernetHeaderSize + 18] = static_cast<uint8_t>(new_dst.value() >> 8);
  b[kEthernetHeaderSize + 19] = static_cast<uint8_t>(new_dst.value());
  const size_t ihl = static_cast<size_t>(b[kEthernetHeaderSize] & 0x0f) * 4;
  b[kEthernetHeaderSize + 10] = 0;
  b[kEthernetHeaderSize + 11] = 0;
  const uint16_t ip_sum = ComputeInternetChecksum(&b[kEthernetHeaderSize], ihl);
  b[kEthernetHeaderSize + 10] = static_cast<uint8_t>(ip_sum >> 8);
  b[kEthernetHeaderSize + 11] = static_cast<uint8_t>(ip_sum);
  const size_t l4 = kEthernetHeaderSize + ihl;
  const size_t l4_len = b.size() - l4;
  b[l4 + 16] = 0;
  b[l4 + 17] = 0;
  InternetChecksum sum;
  sum.Add(&b[kEthernetHeaderSize + 12], 8);
  sum.AddU16(static_cast<uint16_t>(IpProto::kTcp));
  sum.AddU16(static_cast<uint16_t>(l4_len));
  sum.Add(&b[l4], l4_len);
  const uint16_t l4_sum = sum.Finish();
  b[l4 + 16] = static_cast<uint8_t>(l4_sum >> 8);
  b[l4 + 17] = static_cast<uint8_t>(l4_sum);
}

void BM_RewriteDstFullRecompute(benchmark::State& state) {
  Packet packet = BuildPacket(SynSpec(7));
  uint32_t salt = 0;
  for (auto _ : state) {
    RewriteDstFullRecompute(packet, kFarm.AddressAt(++salt % 65536));
    benchmark::DoNotOptimize(packet);
  }
}
BENCHMARK(BM_RewriteDstFullRecompute);

// ---- Observability hot-path primitives ----
// These are the operations the instrumented gateway pays per packet; the
// budget for the whole metrics layer is single-digit nanoseconds per packet.

void BM_ObsCounterInc(benchmark::State& state) {
  MetricRegistry registry;
  Counter counter = registry.RegisterCounter("bench.counter", "count");
  for (auto _ : state) {
    counter.Inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramRecord(benchmark::State& state) {
  MetricRegistry registry;
  FixedHistogram histogram = registry.RegisterHistogram(
      "bench.histogram", "bytes", LinearBuckets(64.0, 256.0, 8));
  double value = 0.0;
  for (auto _ : state) {
    value = value < 2048.0 ? value + 97.0 : 0.0;  // sweep across the buckets
    histogram.Record(value);
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_LedgerAppend(benchmark::State& state) {
  // The forensic record every delivered packet pays: one in-place ring write.
  // Runs long past capacity so the steady state measured is the wrapping
  // (evicting) ring, exactly as on a loaded farm.
  EventLedger ledger(8192);
  int64_t now = 0;
  uint32_t salt = 0;
  for (auto _ : state) {
    ++salt;
    ledger.Append(LedgerEvent::kPacketDelivered,
                  static_cast<SessionId>(1 + (salt & 0xff)), now += 50,
                  0xc6330000u + salt, 418);
  }
  benchmark::DoNotOptimize(ledger.appended());
}
BENCHMARK(BM_LedgerAppend);

// Adjacent counters in one registry, hammered from N threads — the sharded
// gateway's exact layout (each shard's hot counters register back to back).
// With the value cells cache-line aligned, per-op cost should stay flat from
// 1 to 8 threads; false sharing would show as superlinear per-op growth.
struct AdjacentCounterBed {
  static constexpr size_t kLanes = 16;
  MetricRegistry registry;
  std::vector<Counter> counters;
  AdjacentCounterBed() {
    for (size_t i = 0; i < kLanes; ++i) {
      counters.push_back(registry.RegisterCounter(
          "bench.adjacent." + std::to_string(i), "count"));
    }
  }
  static AdjacentCounterBed& Get() {
    static AdjacentCounterBed* const bed = new AdjacentCounterBed();
    return *bed;
  }
};

void BM_MetricAdd(benchmark::State& state) {
  Counter counter =
      AdjacentCounterBed::Get().counters[static_cast<size_t>(
          state.thread_index()) % AdjacentCounterBed::kLanes];
  for (auto _ : state) {
    counter.Inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_MetricAdd)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_SpscRingPushPop(benchmark::State& state) {
  // Uncontended cost of one handoff-ring round trip (both sides, one thread):
  // the fixed toll a packet pays for crossing a shard boundary before any
  // cross-core traffic exists.
  SpscRing<uint64_t> ring(1024);
  uint64_t value = 0;
  uint64_t out = 0;
  for (auto _ : state) {
    uint64_t item = value++;
    ring.TryPush(std::move(item));
    benchmark::DoNotOptimize(ring.TryPop(&out));
  }
}
BENCHMARK(BM_SpscRingPushPop);

SpscRing<uint64_t>* g_transfer_ring = nullptr;

void BM_SpscRingTransfer(benchmark::State& state) {
  // True producer/consumer transfer across two cores: thread 0 pushes, thread
  // 1 pops. Measures the cached-index design's steady state, where the
  // cross-core load is amortized over a ring traversal.
  if (state.thread_index() == 0) {
    g_transfer_ring = new SpscRing<uint64_t>(4096);
  }
  if (state.thread_index() == 0) {
    uint64_t value = 0;
    for (auto _ : state) {
      uint64_t item = value++;
      while (!g_transfer_ring->TryPush(std::move(item))) {
      }
    }
  } else {
    uint64_t out = 0;
    for (auto _ : state) {
      while (!g_transfer_ring->TryPop(&out)) {
      }
      benchmark::DoNotOptimize(out);
    }
  }
  if (state.thread_index() == 0) {
    delete g_transfer_ring;
    g_transfer_ring = nullptr;
  }
}
BENCHMARK(BM_SpscRingTransfer)->Threads(2)->UseRealTime();

void BM_WatchdogEvaluate(benchmark::State& state) {
  // One full sweep of the starter rule set over a realistically sized
  // snapshot. Paid once per health sample (1 Hz virtual), not per packet —
  // this pins the trajectory of rule evaluation, which scans the metric rows
  // per rule. Values sit inside every hysteresis band so no transition (and
  // no ledger write) happens in the loop.
  Watchdog dog;
  dog.AddRules(DefaultFarmRules());
  HealthSnapshot snapshot;
  snapshot.source = "bench";
  snapshot.metrics.push_back({"clone.latency_ms_p99", 40.0, "ms"});
  snapshot.metrics.push_back({"farm.mem.frame_watermark", 0.4, "ratio"});
  snapshot.metrics.push_back({"gateway.recycle.backlog", 3.0, "count"});
  snapshot.metrics.push_back(
      {"gateway.containment.escapes_from_infected", 0.0, "count"});
  snapshot.metrics.push_back({"gateway.drops.total", 0.0, "count"});
  for (uint32_t i = 0; i < 40; ++i) {  // filler rows the rules must skip past
    snapshot.metrics.push_back(
        {"farm.filler." + std::to_string(i), static_cast<double>(i), "count"});
  }
  int64_t t = 0;
  for (auto _ : state) {
    snapshot.time_ns = t += 1000000000;
    dog.Evaluate(snapshot);
  }
  benchmark::DoNotOptimize(dog.evaluations());
}
BENCHMARK(BM_WatchdogEvaluate);

void BM_ObsSpanBeginEnd(benchmark::State& state) {
  TraceRecorder recorder;
  const TraceRecorder::TrackId track = recorder.RegisterTrack("bench");
  int64_t now = 0;
  for (auto _ : state) {
    const TraceRecorder::OpenSpan open =
        recorder.Begin(track, "span", TimePoint::FromNanos(now));
    now += 100;
    recorder.End(open, TimePoint::FromNanos(now));
  }
  benchmark::DoNotOptimize(recorder.span_count(track));
}
BENCHMARK(BM_ObsSpanBeginEnd);

}  // namespace
}  // namespace potemkin

BENCHMARK_MAIN();
