// Experiment E4 (control plane) — drain, failover and scored-placement costs.
//
// Three questions the control plane must answer with numbers:
//   1. How long does a live drain take? (virtual time from DrainHost to the
//      host leaving the pool, with every session migrated — zero forced)
//   2. How fast does failover restore service? (virtual time from a backend
//      crash to the same address answering from a healthy host)
//   3. What does kScored placement cost the inbound path vs round-robin?
//      (wallclock per first-contact route; everything else is virtual-time
//      deterministic, so only these two rows need runner headroom in CI)
#include <chrono>
#include <cstdio>

#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/core/honeyfarm.h"
#include "src/ctrl/chaos.h"
#include "src/ctrl/controller.h"

namespace potemkin {
namespace {

const Ipv4Prefix kPrefix(Ipv4Address(10, 1, 0, 0), 22);  // 1024 addresses
const Ipv4Address kExternal(198, 51, 100, 7);

HoneyfarmConfig FarmConfig(PlacementKind placement) {
  HoneyfarmConfig config = MakeDefaultFarmConfig(kPrefix, /*num_hosts=*/4,
                                                 /*host_memory_mb=*/512,
                                                 ContentMode::kMetadataOnly);
  config.server_template.image.num_pages = 2048;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.gateway.containment.mode = OutboundMode::kReflect;
  config.gateway.placement = placement;
  config.gateway.recycle.idle_timeout = Duration::Minutes(10);
  return config;
}

ControllerConfig CtrlConfig() {
  ControllerConfig config;
  config.tick = Duration::Millis(250);
  config.drain.deadline = Duration::Seconds(30);
  config.drain.migrate_per_tick = 64;
  config.warmup = Duration::Seconds(1);
  return config;
}

Packet ProbeSyn(Ipv4Address dst, uint16_t sport) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(1234);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = kExternal;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = sport;
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

struct DrainResult {
  double drain_s = 0;        // DrainHost -> host out of the pool
  uint64_t migrations = 0;   // sessions moved, none dropped
  uint64_t forced = 0;       // sessions the deadline had to retire
  size_t bindings_before = 0;
};

DrainResult RunDrain(uint32_t bindings) {
  Honeyfarm farm(FarmConfig(PlacementKind::kRoundRobin));
  Controller controller(&farm, CtrlConfig());
  farm.Start();
  controller.Start();
  for (uint32_t i = 0; i < bindings; ++i) {
    farm.InjectInbound(ProbeSyn(kPrefix.AddressAt(i), 52000));
  }
  farm.RunFor(Duration::Seconds(5.0));

  DrainResult result;
  result.bindings_before = farm.sharded_gateway().CountHostBindings(0);
  const TimePoint started = farm.loop().Now();
  controller.DrainHost(0);
  while (controller.pool().state(0) == BackendState::kDraining) {
    farm.RunFor(Duration::Millis(250));
  }
  result.drain_s = (farm.loop().Now() - started).seconds();
  result.migrations = controller.stats().migrations;
  result.forced = controller.stats().drains_forced;
  return result;
}

struct FailoverResult {
  double rebind_s = 0;  // crash -> same address answering from a new host
  uint64_t invalidated = 0;
};

FailoverResult RunFailover() {
  Honeyfarm farm(FarmConfig(PlacementKind::kRoundRobin));
  Controller controller(&farm, CtrlConfig());
  farm.Start();
  controller.Start();
  for (uint32_t i = 0; i < 64; ++i) {
    farm.InjectInbound(ProbeSyn(kPrefix.AddressAt(i), 52000));
  }
  farm.RunFor(Duration::Seconds(5.0));
  const Ipv4Address victim = kPrefix.AddressAt(0);
  const Binding* binding = farm.gateway().bindings().Find(victim);
  const HostId crashed = binding->host;

  uint64_t answered = 0;
  farm.set_egress_monitor([&](const Packet&) { ++answered; });
  const TimePoint started = farm.loop().Now();
  farm.CrashHost(crashed);
  // Retry the flow like a real scanner would, every 100 ms, until the farm
  // answers again from a healthy backend.
  FailoverResult result;
  while (answered == 0) {
    farm.InjectInbound(ProbeSyn(victim, 52001));
    farm.RunFor(Duration::Millis(100));
  }
  result.rebind_s = (farm.loop().Now() - started).seconds();
  result.invalidated = controller.stats().failovers > 0
                           ? farm.gateway().stats().vms_retired
                           : 0;
  return result;
}

// Wallclock nanoseconds per first-contact route (ChooseHost + clone kickoff).
double RouteCostNs(PlacementKind placement, uint32_t contacts) {
  Honeyfarm farm(FarmConfig(placement));
  Controller controller(&farm, CtrlConfig());
  farm.Start();
  controller.Start();
  farm.RunFor(Duration::Seconds(1.0));
  const auto start = std::chrono::steady_clock::now();
  for (uint32_t i = 0; i < contacts; ++i) {
    farm.InjectInbound(ProbeSyn(kPrefix.AddressAt(i % 1000), 52000));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  farm.RunFor(Duration::Seconds(10.0));
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         contacts;
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint32_t bindings = static_cast<uint32_t>(flags.GetUint("bindings", 256));
  const uint32_t contacts = static_cast<uint32_t>(flags.GetUint("contacts", 512));

  std::printf("=== E4: control plane — drain, failover, scored placement ===\n\n");
  BenchReport report("control_plane");
  Table table({"operation", "result", "detail"});

  const DrainResult drain = RunDrain(bindings);
  table.AddRow({"live drain (4 hosts)",
                StrFormat("%.2f s", drain.drain_s),
                StrFormat("%llu sessions migrated, %llu forced, %zu bindings",
                          static_cast<unsigned long long>(drain.migrations),
                          static_cast<unsigned long long>(drain.forced),
                          drain.bindings_before)});
  report.Add("drain_complete_virtual_s", drain.drain_s, "s");
  report.Add("drain_migrations", static_cast<double>(drain.migrations),
             "sessions");
  report.Add("drain_forced_retires", static_cast<double>(drain.forced),
             "sessions");

  const FailoverResult failover = RunFailover();
  table.AddRow({"crash failover",
                StrFormat("%.2f s", failover.rebind_s),
                "crash -> same address answered from healthy host"});
  report.Add("failover_rebind_virtual_s", failover.rebind_s, "s");

  const double rr_ns = RouteCostNs(PlacementKind::kRoundRobin, contacts);
  const double scored_ns = RouteCostNs(PlacementKind::kScored, contacts);
  table.AddRow({"first-contact route, round-robin",
                StrFormat("%.0f ns", rr_ns), "wallclock, runner-dependent"});
  table.AddRow({"first-contact route, scored",
                StrFormat("%.0f ns", scored_ns), "wallclock, runner-dependent"});
  report.Add("route_round_robin_wallclock_ns", rr_ns, "ns");
  report.Add("route_scored_wallclock_ns", scored_ns, "ns");

  report.WriteJson();
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("shape check: drains finish well inside the deadline with zero\n"
              "forced retires (every session migrates), failover re-answers in\n"
              "about one controller tick plus a clone, and scored placement\n"
              "costs the same order as round-robin — the score reads a cached\n"
              "snapshot, not the allocators.\n");
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
