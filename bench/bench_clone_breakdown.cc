// Experiment T1 — Flash-cloning latency breakdown.
//
// Reproduces the paper's clone-latency table: per-phase cost of flash cloning a VM
// on the unoptimized (xend-style) control plane, the projected optimized control
// plane, and the full-copy / cold-boot baselines. Also cross-checks the model by
// actually running clones through the virtual-time engine, and measures the *real*
// wall-clock cost of the clone mechanics (CoW mapping vs full page copy) in this
// implementation.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/hv/clone_engine.h"
#include "src/obs/observability.h"

namespace potemkin {
namespace {

PhysicalHostConfig HostConfig(uint64_t memory_mb) {
  PhysicalHostConfig config;
  config.memory_mb = memory_mb;
  config.content_mode = ContentMode::kMetadataOnly;
  return config;
}

// One engine clone's phase timeline as reconstructed from its trace spans —
// the reported breakdown is sourced from the TraceRecorder, not read back out
// of the latency model, so the table exercises the same path a Chrome-trace
// consumer would.
struct TracedClone {
  std::array<Duration, static_cast<size_t>(ClonePhase::kNumPhases)> phase{};
  Duration total;
};

// Runs one clone through the virtual-time engine with tracing attached and
// returns the span-derived breakdown. `trace_out`, when non-null, receives the
// recorder so callers can export the Chrome JSON.
TracedClone RunEngineClone(CloneKind kind, const CloneLatencyModel& model,
                           uint32_t image_pages, const char* track_name,
                           Observability* obs) {
  EventLoop loop;
  PhysicalHost host(HostConfig(2048));
  ReferenceImageConfig image_config;
  image_config.num_pages = image_pages;
  const ImageId image = host.RegisterImage(image_config);
  CloneEngineConfig engine_config;
  engine_config.kind = kind;
  engine_config.latency = model;
  engine_config.obs = obs;
  engine_config.trace_track = track_name;
  CloneEngine engine(&loop, &host, engine_config);
  TracedClone result;
  engine.RequestClone(
      image, "vm", Ipv4Address(10, 1, 0, 1), MacAddress::FromId(1),
      [&](VirtualMachine*, const CloneTiming& t) { result.total = t.Total(); });
  loop.RunAll();
  for (const TraceRecorder::Span& span :
       ObsOrDefault(obs).trace.Spans(engine.trace_track())) {
    for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
      if (std::strcmp(span.name, ClonePhaseName(static_cast<ClonePhase>(p))) == 0) {
        result.phase[static_cast<size_t>(p)] =
            Duration::Nanos(span.end_ns - span.begin_ns);
      }
    }
  }
  return result;
}

double MeasureMechanicsMs(CloneKind kind, uint32_t image_pages, int iterations) {
  PhysicalHost host(HostConfig(8192));
  ReferenceImageConfig image_config;
  image_config.num_pages = image_pages;
  const ImageId image = host.RegisterImage(image_config);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    VirtualMachine* vm = host.CreateClone(image, kind, "bench");
    if (vm != nullptr) {
      host.DestroyVm(vm->id());
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() / iterations;
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint32_t pages = static_cast<uint32_t>(flags.GetUint("image-pages", 8192));
  const int iters = static_cast<int>(flags.GetInt("mechanics-iters", 50));

  std::printf("=== T1: flash-cloning latency breakdown ===\n");
  std::printf("image: %u pages (%s)\n\n", pages,
              HumanBytes(static_cast<uint64_t>(pages) * kPageSize).c_str());

  const CloneLatencyModel unoptimized;
  const CloneLatencyModel optimized = CloneLatencyModel::Optimized();

  // Source the breakdown from traced engine runs: each row below is the span
  // the clone engine recorded, not a direct latency-model lookup. The values
  // are identical to the model's by construction (the engine charges exactly
  // the model's costs), so this doubles as an end-to-end check of the tracer.
  Observability obs;
  const TracedClone traced_unopt = RunEngineClone(
      CloneKind::kFlash, unoptimized, pages, "flash/unoptimized", &obs);
  const TracedClone traced_opt = RunEngineClone(
      CloneKind::kFlash, optimized, pages, "flash/optimized", &obs);

  Table table({"phase", "unoptimized (ms)", "optimized (ms)"});
  for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
    const auto phase = static_cast<ClonePhase>(p);
    table.AddRow({ClonePhaseName(phase),
                  StrFormat("%.1f", traced_unopt.phase[static_cast<size_t>(p)].millis_f()),
                  StrFormat("%.1f", traced_opt.phase[static_cast<size_t>(p)].millis_f())});
  }
  table.AddRow({"TOTAL (flash clone)",
                StrFormat("%.1f", unoptimized.FlashCloneTotal(pages).millis_f()),
                StrFormat("%.1f", optimized.FlashCloneTotal(pages).millis_f())});
  std::printf("%s\n", table.ToAscii().c_str());

  Table baselines({"strategy", "latency", "vs flash"});
  const Duration flash = unoptimized.FlashCloneTotal(pages);
  const Duration full = unoptimized.FullCopyTotal(pages);
  const Duration cold = flash + unoptimized.cold_boot;
  baselines.AddRow({"flash clone (delta virt)", flash.ToString(), "1.0x"});
  baselines.AddRow({"full-copy clone", full.ToString(),
                    StrFormat("%.2fx", full / flash)});
  baselines.AddRow({"cold boot", cold.ToString(), StrFormat("%.0fx", cold / flash)});
  std::printf("%s\n", baselines.ToAscii().c_str());

  // Cross-check: the virtual-time engine reproduces the model totals exactly.
  const Duration engine_flash = traced_unopt.total;
  const Duration engine_full =
      RunEngineClone(CloneKind::kFullCopy, unoptimized, pages, "full_copy", &obs)
          .total;
  std::printf("engine cross-check: flash=%s (model %s), full-copy=%s (model %s)\n\n",
              engine_flash.ToString().c_str(), flash.ToString().c_str(),
              engine_full.ToString().c_str(), full.ToString().c_str());

  // Real wall-clock mechanics of this implementation (not the paper's numbers).
  const double flash_mechanics = MeasureMechanicsMs(CloneKind::kFlash, pages, iters);
  const double full_mechanics = MeasureMechanicsMs(CloneKind::kFullCopy, pages, iters);
  std::printf("implementation mechanics (real wall clock, metadata mode, %d iters):\n",
              iters);
  std::printf("  flash-clone mechanics:     %.3f ms/clone\n", flash_mechanics);
  std::printf("  full-copy clone mechanics: %.3f ms/clone\n\n", full_mechanics);

  std::printf("shape check (paper): total ~0.5s unoptimized, dominated by "
              "control-plane phases; flash << full-copy << cold boot.\n");

  // Export the phase timelines for chrome://tracing / Perfetto.
  const std::string trace_path =
      BenchReport::OutputDir() + "/TRACE_clone_phases.json";
  if (obs.trace.WriteChromeJson(trace_path)) {
    std::fprintf(stderr, "clone-phase trace: %s\n", trace_path.c_str());
  }

  BenchReport report("clone_breakdown");
  report.Add("flash_clone_total_unoptimized", flash.millis_f(), "ms");
  report.Add("flash_clone_total_optimized",
             optimized.FlashCloneTotal(pages).millis_f(), "ms");
  report.Add("full_copy_total_unoptimized", full.millis_f(), "ms");
  report.Add("flash_clone_mechanics_wallclock", flash_mechanics, "ms");
  report.WriteJson();
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
