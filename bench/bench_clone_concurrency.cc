// Experiment F6 — Clone-engine scalability under concurrent demand.
//
// The rate at which a host can materialize VMs bounds how much new traffic the
// farm absorbs. This bench offers Poisson clone-request storms at increasing
// arrival rates against (a) the paper's serialized control plane and (b) the
// projected parallel/optimized one, reporting completion throughput, latency
// inflation from queueing, and the saturation point.
#include <cstdio>
#include <algorithm>

#include "bench/report.h"
#include "src/base/event_loop.h"
#include "src/base/flags.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/hv/clone_engine.h"

namespace potemkin {
namespace {

struct StormResult {
  double offered_rate = 0;
  double completed_rate = 0;
  double mean_latency_ms = 0;
  double p99_latency_ms = 0;
  double mean_queue_wait_ms = 0;
  uint64_t failures = 0;
};

StormResult RunStorm(double arrival_rate, int workers, const CloneLatencyModel& model,
                     Duration run_for, uint64_t seed) {
  EventLoop loop;
  PhysicalHostConfig host_config;
  host_config.memory_mb = 64ull << 10;  // plenty: isolate control-plane limits
  host_config.content_mode = ContentMode::kMetadataOnly;
  host_config.domain_overhead_frames = 16;
  PhysicalHost host(host_config);
  ReferenceImageConfig image_config;
  image_config.num_pages = 8192;
  const ImageId image = host.RegisterImage(image_config);

  CloneEngineConfig engine_config;
  engine_config.latency = model;
  engine_config.control_plane_workers = workers;
  CloneEngine engine(&loop, &host, engine_config);

  // Poisson arrivals; retire each VM as soon as it is created so memory is not
  // the bottleneck.
  Rng rng(seed);
  std::function<void()> arrival = [&]() {
    static uint64_t counter = 0;
    ++counter;
    engine.RequestClone(
        image, "storm", Ipv4Address(10, 1, 0, 1), MacAddress::FromId(counter),
        [&engine](VirtualMachine* vm, const CloneTiming&) {
          if (vm != nullptr) {
            engine.RequestDestroy(vm->id());
          }
        });
    loop.ScheduleAfter(Duration::Seconds(rng.NextExponential(arrival_rate)), arrival);
  };
  loop.ScheduleAfter(Duration::Seconds(rng.NextExponential(arrival_rate)), arrival);
  loop.RunUntil(TimePoint() + run_for);

  StormResult result;
  result.offered_rate = arrival_rate;
  result.completed_rate =
      static_cast<double>(engine.clones_completed()) / run_for.seconds();
  result.mean_latency_ms = engine.latency_histogram().Mean();
  result.p99_latency_ms = engine.latency_histogram().Quantile(0.99);
  result.mean_queue_wait_ms = engine.queue_wait_histogram().Mean();
  result.failures = engine.clones_failed();
  return result;
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const double seconds = flags.GetDouble("seconds", 120.0);

  std::printf("=== F6: clone-engine throughput under concurrent demand ===\n");
  std::printf("Poisson clone-request storms, %.0fs of virtual time each\n\n", seconds);

  struct Scenario {
    const char* name;
    CloneLatencyModel model;
    int workers;
  };
  const Scenario scenarios[] = {
      {"unoptimized, serial control plane (paper prototype)", CloneLatencyModel{}, 1},
      {"unoptimized, 4 control-plane workers", CloneLatencyModel{}, 4},
      {"optimized control plane, serial", CloneLatencyModel::Optimized(), 1},
      {"optimized, 4 workers", CloneLatencyModel::Optimized(), 4},
  };

  BenchReport report("clone_concurrency");
  report.set_seed(3);
  for (const auto& scenario : scenarios) {
    const double service_rate =
        static_cast<double>(scenario.workers) /
        scenario.model.FlashCloneTotal(8192).seconds();
    std::printf("--- %s (service capacity ~%.1f clones/s) ---\n", scenario.name,
                service_rate);
    Table table({"offered (req/s)", "completed (clones/s)", "mean latency (ms)",
                 "p99 latency (ms)", "mean queue wait (ms)"});
    double saturated_rate = 0;
    for (double frac : {0.25, 0.5, 0.9, 1.5, 3.0}) {
      const double rate = service_rate * frac;
      const StormResult r = RunStorm(rate, scenario.workers, scenario.model,
                                     Duration::Seconds(seconds), 3);
      saturated_rate = std::max(saturated_rate, r.completed_rate);
      table.AddRow({StrFormat("%.2f", r.offered_rate),
                    StrFormat("%.2f", r.completed_rate),
                    StrFormat("%.0f", r.mean_latency_ms),
                    StrFormat("%.0f", r.p99_latency_ms),
                    StrFormat("%.0f", r.mean_queue_wait_ms)});
    }
    std::printf("%s\n", table.ToAscii().c_str());
    report.Add(StrFormat("peak_completed_rate_workers_%d%s", scenario.workers,
                         scenario.model.FlashCloneTotal(8192) <
                                 CloneLatencyModel{}.FlashCloneTotal(8192)
                             ? "_optimized"
                             : ""),
               saturated_rate, "clones/s");
  }
  report.WriteJson();

  std::printf("shape check (paper): completion rate tracks offered load until the "
              "control plane saturates at ~1/clone-latency per worker, after which "
              "queue wait grows without bound; the optimized control plane raises "
              "the ceiling ~10x.\n");
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
