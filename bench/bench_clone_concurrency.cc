// Experiment F6 — Clone-engine scalability under concurrent demand.
//
// The rate at which a host can materialize VMs bounds how much new traffic the
// farm absorbs. This bench offers Poisson clone-request storms at increasing
// arrival rates against (a) the paper's serialized control plane and (b) the
// projected parallel/optimized one, reporting completion throughput, latency
// inflation from queueing, and the saturation point.
#include <cstdio>
#include <algorithm>
#include <vector>

#include "bench/report.h"
#include "src/base/event_loop.h"
#include "src/base/flags.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/hv/clone_engine.h"

namespace potemkin {
namespace {

struct StormResult {
  double offered_rate = 0;
  double completed_rate = 0;
  double mean_latency_ms = 0;
  double p99_latency_ms = 0;
  double mean_queue_wait_ms = 0;
  uint64_t failures = 0;
};

StormResult RunStorm(double arrival_rate, int workers, const CloneLatencyModel& model,
                     Duration run_for, uint64_t seed) {
  EventLoop loop;
  PhysicalHostConfig host_config;
  host_config.memory_mb = 64ull << 10;  // plenty: isolate control-plane limits
  host_config.content_mode = ContentMode::kMetadataOnly;
  host_config.domain_overhead_frames = 16;
  PhysicalHost host(host_config);
  ReferenceImageConfig image_config;
  image_config.num_pages = 8192;
  const ImageId image = host.RegisterImage(image_config);

  CloneEngineConfig engine_config;
  engine_config.latency = model;
  engine_config.control_plane_workers = workers;
  CloneEngine engine(&loop, &host, engine_config);

  // Poisson arrivals; retire each VM as soon as it is created so memory is not
  // the bottleneck.
  Rng rng(seed);
  std::function<void()> arrival = [&]() {
    static uint64_t counter = 0;
    ++counter;
    engine.RequestClone(
        image, "storm", Ipv4Address(10, 1, 0, 1), MacAddress::FromId(counter),
        [&engine](VirtualMachine* vm, const CloneTiming&) {
          if (vm != nullptr) {
            engine.RequestDestroy(vm->id());
          }
        });
    loop.ScheduleAfter(Duration::Seconds(rng.NextExponential(arrival_rate)), arrival);
  };
  loop.ScheduleAfter(Duration::Seconds(rng.NextExponential(arrival_rate)), arrival);
  loop.RunUntil(TimePoint() + run_for);

  StormResult result;
  result.offered_rate = arrival_rate;
  result.completed_rate =
      static_cast<double>(engine.clones_completed()) / run_for.seconds();
  result.mean_latency_ms = engine.latency_histogram().Mean();
  result.p99_latency_ms = engine.latency_histogram().Quantile(0.99);
  result.mean_queue_wait_ms = engine.queue_wait_histogram().Mean();
  result.failures = engine.clones_failed();
  return result;
}

// ---- Clone density: how many concurrent clones one 2 GB host sustains ----
//
// The headline scale-out experiment: offer a first-contact storm against a
// single simulated 2 GB host with the whole clone-memory path engaged —
// batched CoW faulting, working-set prefetch from recorded sessions, and the
// memory-pressure recycler — and measure peak concurrency plus the per-phase
// clone-latency distribution across every completed clone.

// Metric-name slugs for the phase histograms (ClonePhaseName() uses
// human-readable names with spaces).
constexpr const char* kPhaseSlug[] = {
    "control_plane_rpc", "domain_create",  "memory_map",
    "device_attach",     "network_config", "guest_resume",
};

struct DensityResult {
  uint64_t peak_concurrent = 0;
  uint64_t completed = 0;
  uint64_t failures = 0;
  uint64_t pressure_reclaims = 0;
  uint64_t frames_denied = 0;
  double prefetch_hit_rate = 0.0;
  uint64_t prefetched_pages = 0;
  Histogram phase_ms[static_cast<size_t>(ClonePhase::kNumPhases)];
  Histogram prefetch_ms;
  Histogram total_ms;
  Histogram queue_wait_ms;
};

// The first pages a freshly compromised service touches: code, stack, heap and
// scattered data — three contiguous runs spread across the 8192-page image.
std::vector<Gpfn> AttackWorkingSet() {
  std::vector<Gpfn> pages;
  for (Gpfn g = 512; g < 544; ++g) pages.push_back(g);    // service code
  for (Gpfn g = 1024; g < 1040; ++g) pages.push_back(g);  // heap
  for (Gpfn g = 6144; g < 6152; ++g) pages.push_back(g);  // stack
  return pages;
}

void TouchWorkingSet(VirtualMachine* vm, const std::vector<Gpfn>& pages) {
  size_t i = 0;
  while (i < pages.size()) {
    size_t j = i + 1;
    while (j < pages.size() && pages[j] == pages[j - 1] + 1) {
      ++j;
    }
    vm->memory().TouchPagesBatched(pages[i], static_cast<uint32_t>(j - i));
    i = j;
  }
}

DensityResult RunDensity(uint64_t target, double arrival_rate, uint64_t seed) {
  EventLoop loop;
  PhysicalHostConfig host_config;
  host_config.memory_mb = 2048;  // the headline host: one 2 GB server
  host_config.content_mode = ContentMode::kMetadataOnly;
  // 512 KiB per-domain overhead: the slimmed descriptor the paper's projected
  // C control plane carries (the unoptimized 1 MiB default would cap a 2 GB
  // host below the density this experiment demonstrates).
  host_config.domain_overhead_frames = 128;
  host_config.admission_reserve_frames = 512;
  // Pressure recycler: reclaim idle clones once committed frames pass 85% of
  // the host, back down to 80%.
  host_config.pressure_high_watermark = 0.85;
  host_config.pressure_low_watermark = 0.80;
  PhysicalHost host(host_config);
  ReferenceImageConfig image_config;
  image_config.num_pages = 8192;
  const ImageId image = host.RegisterImage(image_config);

  CloneEngineConfig engine_config;
  engine_config.latency = CloneLatencyModel::Optimized();
  engine_config.kind = CloneKind::kFlash;
  engine_config.control_plane_workers = 8;
  engine_config.pressure_reclaim_batch = 64;
  CloneEngine engine(&loop, &host, engine_config);

  const std::vector<Gpfn> working_set = AttackWorkingSet();

  // Profile warm-up: a few recorded sessions teach the image which pages an
  // attack touches first; every storm clone is then prefetched from that
  // profile.
  CloneOptions record_opts;
  record_opts.record_working_set = true;
  for (int i = 0; i < 8; ++i) {
    VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "warmup",
                                          record_opts);
    TouchWorkingSet(vm, working_set);
    host.DestroyVm(vm->id());
  }

  CloneOptions storm_opts;
  storm_opts.use_working_set = true;
  storm_opts.prefetch_pages = 64;

  DensityResult result;
  // Offer 30% more requests than the concurrency target: the tail arrives
  // after the host crosses its pressure watermark, so the recycler (not
  // allocation failure) is what absorbs the overshoot.
  const uint64_t requests = target + (target * 3) / 10;
  Rng rng(seed);
  uint64_t issued = 0;
  std::function<void()> arrival = [&]() {
    ++issued;
    engine.RequestClone(
        image, "density", Ipv4Address(10, 1, 0, 1), MacAddress::FromId(issued),
        kNoSession, storm_opts,
        [&](VirtualMachine* vm, const CloneTiming& timing) {
          if (vm == nullptr) {
            return;
          }
          // The session's first touches: predicted pages are already private
          // (prefetch hits), the rest break CoW through the batched path.
          TouchWorkingSet(vm, working_set);
          for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
            result.phase_ms[p].Record(timing.phase[static_cast<size_t>(p)].millis_f());
          }
          result.prefetch_ms.Record(timing.ws_prefetch.millis_f());
          result.total_ms.Record(timing.Total().millis_f());
          result.queue_wait_ms.Record(timing.QueueWait().millis_f());
          result.peak_concurrent =
              std::max<uint64_t>(result.peak_concurrent, host.live_vm_count());
        });
    if (issued < requests) {
      loop.ScheduleAfter(Duration::Seconds(rng.NextExponential(arrival_rate)),
                         arrival);
    }
  };
  loop.ScheduleAfter(Duration::Seconds(rng.NextExponential(arrival_rate)), arrival);
  loop.RunAll();

  result.completed = engine.clones_completed();
  result.failures = engine.clones_failed();
  result.pressure_reclaims = engine.pressure_reclaims();
  result.frames_denied = host.allocator().denied_requests();
  const PrefetchTotals prefetch = host.prefetch_totals();
  result.prefetch_hit_rate = prefetch.HitRate();
  result.prefetched_pages = prefetch.prefetched_pages;
  return result;
}

void RunDensitySection(BenchReport& report, uint64_t target, double rate) {
  std::printf("--- clone density: %llu+ concurrent clones on one 2 GB host ---\n",
              static_cast<unsigned long long>(target));
  const DensityResult r = RunDensity(target, rate, 11);

  const CloneLatencyModel paper;  // unoptimized per-phase budget (~0.5 s total)
  Table table({"phase", "p50 (ms)", "p99 (ms)", "max (ms)", "paper (ms)"});
  double paper_total = 0.0;
  for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
    const auto phase = static_cast<ClonePhase>(p);
    const double paper_ms = paper.PhaseCost(phase, 8192).millis_f();
    paper_total += paper_ms;
    table.AddRow({ClonePhaseName(phase),
                  StrFormat("%.2f", r.phase_ms[p].Quantile(0.5)),
                  StrFormat("%.2f", r.phase_ms[p].Quantile(0.99)),
                  StrFormat("%.2f", r.phase_ms[p].max()),
                  StrFormat("%.1f", paper_ms)});
  }
  table.AddRow({"ws prefetch", StrFormat("%.2f", r.prefetch_ms.Quantile(0.5)),
                StrFormat("%.2f", r.prefetch_ms.Quantile(0.99)),
                StrFormat("%.2f", r.prefetch_ms.max()), "-"});
  table.AddRow({"total", StrFormat("%.2f", r.total_ms.Quantile(0.5)),
                StrFormat("%.2f", r.total_ms.Quantile(0.99)),
                StrFormat("%.2f", r.total_ms.max()),
                StrFormat("%.1f", paper_total)});
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf(
      "peak concurrent clones: %llu (failures %llu, pressure reclaims %llu, "
      "denied allocations %llu)\n",
      static_cast<unsigned long long>(r.peak_concurrent),
      static_cast<unsigned long long>(r.failures),
      static_cast<unsigned long long>(r.pressure_reclaims),
      static_cast<unsigned long long>(r.frames_denied));
  std::printf("working-set prefetch: %llu pages prefetched, hit rate %.3f\n\n",
              static_cast<unsigned long long>(r.prefetched_pages),
              r.prefetch_hit_rate);

  report.Add("density_peak_concurrent_clones",
             static_cast<double>(r.peak_concurrent), "vms");
  report.Add("density_clones_completed", static_cast<double>(r.completed),
             "clones");
  report.Add("density_clone_failures", static_cast<double>(r.failures), "clones");
  report.Add("density_pressure_reclaims",
             static_cast<double>(r.pressure_reclaims), "vms");
  report.Add("density_prefetch_hit_rate", r.prefetch_hit_rate, "ratio");
  for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
    report.Add(StrFormat("density_phase_%s_p99_ms", kPhaseSlug[p]),
               r.phase_ms[p].Quantile(0.99), "ms");
  }
  report.Add("density_ws_prefetch_p99_ms", r.prefetch_ms.Quantile(0.99), "ms");
  report.Add("density_total_p50_ms", r.total_ms.Quantile(0.5), "ms");
  report.Add("density_total_p99_ms", r.total_ms.Quantile(0.99), "ms");
  report.Add("density_queue_wait_p99_ms", r.queue_wait_ms.Quantile(0.99), "ms");
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const double seconds = flags.GetDouble("seconds", 120.0);

  std::printf("=== F6: clone-engine throughput under concurrent demand ===\n");
  std::printf("Poisson clone-request storms, %.0fs of virtual time each\n\n", seconds);

  struct Scenario {
    const char* name;
    CloneLatencyModel model;
    int workers;
  };
  const Scenario scenarios[] = {
      {"unoptimized, serial control plane (paper prototype)", CloneLatencyModel{}, 1},
      {"unoptimized, 4 control-plane workers", CloneLatencyModel{}, 4},
      {"optimized control plane, serial", CloneLatencyModel::Optimized(), 1},
      {"optimized, 4 workers", CloneLatencyModel::Optimized(), 4},
  };

  BenchReport report("clone_concurrency");
  report.set_seed(3);
  for (const auto& scenario : scenarios) {
    const double service_rate =
        static_cast<double>(scenario.workers) /
        scenario.model.FlashCloneTotal(8192).seconds();
    std::printf("--- %s (service capacity ~%.1f clones/s) ---\n", scenario.name,
                service_rate);
    Table table({"offered (req/s)", "completed (clones/s)", "mean latency (ms)",
                 "p99 latency (ms)", "mean queue wait (ms)"});
    double saturated_rate = 0;
    for (double frac : {0.25, 0.5, 0.9, 1.5, 3.0}) {
      const double rate = service_rate * frac;
      const StormResult r = RunStorm(rate, scenario.workers, scenario.model,
                                     Duration::Seconds(seconds), 3);
      saturated_rate = std::max(saturated_rate, r.completed_rate);
      table.AddRow({StrFormat("%.2f", r.offered_rate),
                    StrFormat("%.2f", r.completed_rate),
                    StrFormat("%.0f", r.mean_latency_ms),
                    StrFormat("%.0f", r.p99_latency_ms),
                    StrFormat("%.0f", r.mean_queue_wait_ms)});
    }
    std::printf("%s\n", table.ToAscii().c_str());
    report.Add(StrFormat("peak_completed_rate_workers_%d%s", scenario.workers,
                         scenario.model.FlashCloneTotal(8192) <
                                 CloneLatencyModel{}.FlashCloneTotal(8192)
                             ? "_optimized"
                             : ""),
               saturated_rate, "clones/s");
  }
  const auto density_target =
      static_cast<uint64_t>(flags.GetInt("density-target", 2000));
  // ~85% of the 8-worker optimized control plane's service capacity: arrivals
  // nearly keep pace with completions, so the host crosses its pressure
  // watermark while the request tail is still arriving and the recycler (not
  // allocation failure) absorbs the overshoot.
  const double density_rate = flags.GetDouble("density-rate", 160.0);
  RunDensitySection(report, density_target, density_rate);

  report.WriteJson();

  std::printf("shape check (paper): completion rate tracks offered load until the "
              "control plane saturates at ~1/clone-latency per worker, after which "
              "queue wait grows without bound; the optimized control plane raises "
              "the ceiling ~10x.\n");
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
