// Experiment E3 (ablation) — Pending-packet queueing vs connection-oriented worms.
//
// A flash clone takes real time; what happens to the packets that arrive for an
// address while its VM is still being created? The paper's gateway queues them
// and replays once the clone is live. This ablation shows why that matters: a
// connection-oriented (two-phase, Blaster-style) worm needs its SYN to survive
// the clone window — with queueing the epidemic proceeds; with drop-during-clone
// first contacts never complete a handshake and the epidemic starves. The
// single-packet (Slammer-style) worm is the control: its exploit is re-sent with
// every scan, so dropping costs far less.
#include <cstdio>

#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/core/honeyfarm.h"

namespace potemkin {
namespace {

struct Cell {
  uint64_t infections = 0;
  uint64_t infections_30s = 0;  // early epidemic (where lost first contacts bite)
  double t50 = -1;
  uint64_t handshakes = 0;
  uint64_t scans = 0;
  uint64_t queued = 0;
  uint64_t dropped_cloning = 0;
};

Cell RunCase(bool two_phase, bool queue_pending, const Flags& flags) {
  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 23);  // 512 addresses
  HoneyfarmConfig config = MakeDefaultFarmConfig(prefix, /*num_hosts=*/4,
                                                 /*host_memory_mb=*/1024,
                                                 ContentMode::kMetadataOnly);
  config.server_template.image.num_pages = 2048;
  // Paper-scale clone latency: the ~0.5 s window is exactly what queueing covers.
  config.server_template.engine.control_plane_workers = 8;
  config.gateway.containment.mode = OutboundMode::kReflect;
  config.gateway.queue_while_cloning = queue_pending;
  config.gateway.recycle.idle_timeout = Duration::Minutes(10);
  config.gateway.recycle.infected_hold = Duration::Minutes(30);
  config.gateway.recycle.max_lifetime = Duration::Zero();

  Honeyfarm farm(config);
  WormConfig worm_config = BlasterLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  worm_config.scan_rate_pps = flags.GetDouble("scan-rate", 1.0);
  worm_config.two_phase_tcp = two_phase;
  worm_config.selection = TargetSelection::kUniformRandom;
  WormRuntime worm(&farm.loop(), worm_config, 31);
  farm.AttachWorm(&worm);
  farm.Start();
  // Seed twice: real attackers retransmit, and in drop-during-clone mode the
  // first exploit dies in the clone window by design.
  farm.SeedWorm(worm, Ipv4Address(198, 51, 100, 66), prefix.AddressAt(1));
  farm.RunFor(Duration::Seconds(3.0));
  farm.SeedWorm(worm, Ipv4Address(198, 51, 100, 66), prefix.AddressAt(1));
  farm.RunFor(Duration::Minutes(flags.GetDouble("minutes", 3.0)));

  Cell cell;
  cell.infections = farm.epidemic().total_infections();
  cell.infections_30s =
      farm.epidemic().InfectedAt(TimePoint() + Duration::Seconds(33.0));
  const Duration to_half =
      farm.epidemic().TimeToFraction(0.5, std::max<uint64_t>(1, cell.infections));
  if (to_half != Duration::Max()) {
    cell.t50 = to_half.seconds();
  }
  cell.handshakes = worm.stats().handshakes_completed;
  cell.scans = worm.stats().scans_sent;
  cell.queued = farm.gateway().stats().inbound_queued;
  cell.dropped_cloning = farm.gateway().stats().inbound_dropped_cloning;
  return cell;
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  std::printf("=== E3 (ablation): pending-packet queueing during flash cloning ===\n");
  std::printf("blaster-class worm, reflect containment, ~0.5 s clone latency\n\n");

  Table table({"worm model", "pending packets", "infections", "infected@30s",
               "t50 (s)", "handshakes", "queued", "dropped while cloning"});
  struct Case {
    const char* worm;
    bool two_phase;
    const char* pending;
    bool queue;
  };
  const Case cases[] = {
      {"two-phase TCP (Blaster-like)", true, "queued (paper)", true},
      {"two-phase TCP (Blaster-like)", true, "dropped", false},
      {"single-packet (Slammer-like)", false, "queued (paper)", true},
      {"single-packet (Slammer-like)", false, "dropped", false},
  };
  BenchReport report("handshake_fidelity");
  for (const auto& c : cases) {
    const Cell cell = RunCase(c.two_phase, c.queue, flags);
    table.AddRow({c.worm, c.pending, WithCommas(cell.infections),
                  WithCommas(cell.infections_30s),
                  cell.t50 >= 0 ? StrFormat("%.0f", cell.t50) : "-",
                  c.two_phase ? WithCommas(cell.handshakes) : std::string("-"),
                  WithCommas(cell.queued), WithCommas(cell.dropped_cloning)});
    report.Add(StrFormat("infections_30s_%s_%s",
                         c.two_phase ? "two_phase" : "single_packet",
                         c.queue ? "queued" : "dropped"),
               static_cast<double>(cell.infections_30s), "infections");
    std::fprintf(stderr, "  [done] %s / %s\n", c.worm, c.pending);
  }
  report.WriteJson();
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("shape check: with queue-and-replay the clone window is invisible —\n"
              "the farm saturates in seconds. Dropping first contacts starves the\n"
              "early epidemic (~5x slower t50, single-digit infections at 30s):\n"
              "every first exploit dies in the ~0.5s clone window and spread only\n"
              "resumes via revisits to already-live VMs. Queueing is what makes\n"
              "flash-clone latency invisible to malware, stateful or not.\n");
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
