// Experiment T2 — Containment policy action matrix.
//
// For each outbound traffic class a honeyfarm VM generates, what does the gateway
// do under each policy? This regenerates the paper's qualitative containment
// discussion as a concrete decision matrix, then validates it empirically by
// pushing a mixed workload through a live gateway and printing observed action
// counts.
#include <cstdio>

#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/gateway/gateway.h"
#include "src/net/dns.h"

namespace potemkin {
namespace {

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 16);
const Ipv4Address kVm = kFarm.AddressAt(5);
const Ipv4Address kPeer(198, 51, 100, 20);

class CountingBackend : public GatewayBackend {
 public:
  size_t NumHosts() const override { return 1; }
  bool HostCanAdmit(HostId) const override { return true; }
  size_t HostLiveVms(HostId) const override { return 0; }
  void SpawnVm(HostId, Ipv4Address, SessionId, std::function<void(VmId)> done) override {
    done(next_vm_++);
  }
  void RetireVm(HostId, VmId) override {}
  void DeliverToVm(HostId, VmId, Packet, const PacketView&) override {
    ++delivered_;
  }
  uint64_t delivered_ = 0;

 private:
  VmId next_vm_ = 1;
};

struct TrafficClass {
  const char* name;
  PacketSpec spec;
  bool needs_inbound_flow;  // must look like a response to an external probe
};

std::vector<TrafficClass> MakeClasses() {
  std::vector<TrafficClass> classes;
  {
    TrafficClass c{"response to external probe", {}, true};
    c.spec.src_ip = kVm;
    c.spec.dst_ip = kPeer;
    c.spec.proto = IpProto::kTcp;
    c.spec.src_port = 445;
    c.spec.dst_port = 52000;
    c.spec.tcp_flags = TcpFlags::kSyn | TcpFlags::kAck;
    classes.push_back(c);
  }
  {
    TrafficClass c{"DNS lookup", {}, false};
    c.spec.src_ip = kVm;
    c.spec.dst_ip = Ipv4Address(4, 2, 2, 2);
    c.spec.proto = IpProto::kUdp;
    c.spec.src_port = 3000;
    c.spec.dst_port = 53;
    DnsQuery query;
    query.id = 7;
    query.name = "cc.malware.example";
    c.spec.payload = EncodeDnsQuery(query);
    classes.push_back(c);
  }
  {
    TrafficClass c{"farm-internal connection", {}, false};
    c.spec.src_ip = kVm;
    c.spec.dst_ip = kFarm.AddressAt(900);
    c.spec.proto = IpProto::kTcp;
    c.spec.src_port = 3001;
    c.spec.dst_port = 445;
    c.spec.tcp_flags = TcpFlags::kSyn;
    classes.push_back(c);
  }
  {
    TrafficClass c{"initiated scan (worm probe)", {}, false};
    c.spec.src_ip = kVm;
    c.spec.dst_ip = Ipv4Address(203, 0, 113, 9);
    c.spec.proto = IpProto::kTcp;
    c.spec.src_port = 3002;
    c.spec.dst_port = 445;
    c.spec.tcp_flags = TcpFlags::kSyn;
    classes.push_back(c);
  }
  {
    TrafficClass c{"allow-listed port (tcp/25)", {}, false};
    c.spec.src_ip = kVm;
    c.spec.dst_ip = Ipv4Address(203, 0, 113, 10);
    c.spec.proto = IpProto::kTcp;
    c.spec.src_port = 3003;
    c.spec.dst_port = 25;
    c.spec.tcp_flags = TcpFlags::kSyn;
    classes.push_back(c);
  }
  return classes;
}

// Observed outcome of pushing one packet of the class through a fresh gateway.
std::string Observe(const TrafficClass& cls, OutboundMode mode) {
  EventLoop loop;
  CountingBackend backend;
  GatewayConfig config;
  config.farm_prefix = kFarm;
  config.containment.mode = mode;
  config.containment.allowed_ports = {25};
  Gateway gateway(&loop, config, &backend);
  uint64_t egress = 0;
  gateway.set_egress_sink([&](Packet) { ++egress; });

  // Bind the source VM.
  PacketSpec probe;
  probe.src_ip = kPeer;
  probe.dst_ip = kVm;
  probe.proto = IpProto::kTcp;
  probe.src_port = 52000;
  probe.dst_port = 445;
  probe.tcp_flags = TcpFlags::kSyn;
  gateway.HandleInbound(BuildPacket(probe));
  loop.RunAll();

  const auto stats_before = gateway.stats();
  const auto containment_before = gateway.containment().stats();
  const uint64_t egress_before = egress;
  gateway.HandleOutbound(0, 1, BuildPacket(cls.spec));
  loop.RunAll();

  const auto& s = gateway.stats();
  const auto& c = gateway.containment().stats();
  if (egress > egress_before) {
    if (s.responses_allowed_out > stats_before.responses_allowed_out) {
      return "pass (response)";
    }
    if (c.allow_list_hits > containment_before.allow_list_hits) {
      return "pass (allow-list)";
    }
    return "pass";
  }
  if (s.dns_responses > stats_before.dns_responses) {
    return "proxied";
  }
  if (s.reflections_injected > stats_before.reflections_injected) {
    return "reflected";
  }
  if (s.internal_forwards > stats_before.internal_forwards) {
    return "internal";
  }
  if (c.dropped > containment_before.dropped) {
    return "dropped";
  }
  return "-";
}

void Run(int, char**) {
  std::printf("=== T2: containment policy action matrix (observed) ===\n");
  std::printf("gateway config: DNS proxy on, allow-list={tcp/25}\n\n");

  const auto classes = MakeClasses();
  Table table({"outbound traffic class", "open", "drop-all", "reflect"});
  uint64_t reflected = 0;
  uint64_t dropped = 0;
  for (const auto& cls : classes) {
    const std::string open = Observe(cls, OutboundMode::kOpen);
    const std::string drop = Observe(cls, OutboundMode::kDropAll);
    const std::string reflect = Observe(cls, OutboundMode::kReflect);
    reflected += reflect == "reflected" ? 1 : 0;
    dropped += drop == "dropped" ? 1 : 0;
    table.AddRow({cls.name, open, drop, reflect});
  }
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("invariants: responses and allow-listed ports pass under every "
              "policy; DNS is answered internally; farm-internal traffic never "
              "reaches the containment decision; initiated traffic is the only "
              "class whose fate differs across policies.\n");

  BenchReport report("containment_matrix");
  report.Add("traffic_classes", static_cast<double>(classes.size()), "classes");
  report.Add("classes_reflected_under_reflect", static_cast<double>(reflected),
             "classes");
  report.Add("classes_dropped_under_drop_all", static_cast<double>(dropped),
             "classes");
  report.WriteJson();
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
