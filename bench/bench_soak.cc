// Soak run — long-window telescope replay with the percentile telemetry stack
// on, asserting the two properties a honeyfarm must hold over hours, not
// milliseconds: memory stays bounded (the ring-buffered exporter, recycler and
// CoW pools do not leak) and tail latency stays flat (the gateway's datapath
// p99 in the second half of the run is no worse than the first half).
//
// The run replays RadiationGenerator background radiation (diurnal cycle,
// Pareto sources, sequential sweepers) against a sharded farm for --minutes of
// *virtual* time, with the watchdog evaluating percentile rules every 5 s and
// the TelemetryExporter streaming one JSONL sample per --interval-ms to
// --series-out. Everything in the series is virtual-time deterministic: two
// runs with the same seed produce byte-identical series files (CI `cmp`s
// them). Wall-clock facts — RSS at the midpoint and end, elapsed real time —
// go only into the BENCH_soak.json report, in rows bench_diff gates wide.
//
//   ./bench_soak [--minutes=30] [--seed=21] [--shards=2] [--hosts=4]
//                [--pps=40] [--interval-ms=1000] [--series-out=PATH]
//                [--check] [--no-bench]
//
//   --check     assert bounded RSS (final <= 1.15x midpoint + 48 MB) and flat
//               p99 (second-half p99 <= 2x first-half p99 + 1 ms), print
//               "SOAK OK" / "SOAK FAIL", exit 1 on failure
//   --no-bench  skip the BENCH_soak.json report (CI's determinism replay uses
//               this so run B does not clobber run A's report)
//
// Exit status: 0 ok, 1 soak assertion failed, 2 usage error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/core/honeyfarm.h"
#include "src/malware/radiation.h"
#include "src/obs/metric_registry.h"
#include "src/obs/telemetry_exporter.h"

namespace potemkin {
namespace {

// Resident set size in MB from /proc/self/status, 0.0 when unavailable (the
// soak checks then skip the RSS assertion rather than fail on exotic hosts).
double RssMb() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) {
    return 0.0;
  }
  double kb = 0.0;
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(file);
  return kb / 1024.0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: bench_soak [--minutes=30] [--seed=21] [--shards=2] "
               "[--hosts=4]\n"
               "                  [--pps=40] [--interval-ms=1000] "
               "[--series-out=PATH] [--check] [--no-bench]\n");
}

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  for (const std::string& name : flags.Names()) {
    if (name != "minutes" && name != "seed" && name != "shards" &&
        name != "hosts" && name != "pps" && name != "interval-ms" &&
        name != "series-out" && name != "check" && name != "bench") {
      std::fprintf(stderr, "bench_soak: unknown flag --%s\n", name.c_str());
      PrintUsage();
      return 2;
    }
  }
  const double minutes = flags.GetDouble("minutes", 30.0);
  const uint64_t seed = flags.GetUint("seed", 21);
  const uint32_t shards = static_cast<uint32_t>(flags.GetUint("shards", 2));
  const size_t hosts = flags.GetUint("hosts", 4);
  const double pps = flags.GetDouble("pps", 40.0);
  const int64_t interval_ms =
      static_cast<int64_t>(flags.GetUint("interval-ms", 1000));
  const std::string series_out = flags.GetString("series-out", "");

  const auto wall_start = std::chrono::steady_clock::now();

  // Telescope-shaped workload: background radiation over a /20, diurnal cycle
  // compressed into the run so both rising and falling load appear.
  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 20);
  RadiationConfig radiation;
  radiation.telescope = prefix;
  radiation.duration = Duration::Minutes(minutes);
  radiation.mean_pps = pps;
  radiation.diurnal_period = Duration::Minutes(std::max(1.0, minutes / 2.0));
  radiation.seed = static_cast<uint32_t>(seed);
  RadiationGenerator generator(radiation);
  const std::vector<TraceRecord> trace = generator.GenerateAll();
  if (trace.empty()) {
    std::fprintf(stderr, "bench_soak: empty trace (--minutes too small?)\n");
    return 2;
  }

  HoneyfarmConfig config =
      MakeDefaultFarmConfig(prefix, hosts, /*host_memory_mb=*/2048,
                            ContentMode::kMetadataOnly);
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.gateway.recycle.idle_timeout = Duration::Seconds(5);
  config.gateway.recycle.scan_interval = Duration::Seconds(1);
  config.gateway_shards = shards;

  Honeyfarm farm(config);
  farm.Start();
  farm.StartWatchdog(Duration::Seconds(5));

  TelemetryExporterConfig telemetry;
  telemetry.interval = Duration::Millis(interval_ms);
  telemetry.source = "bench_soak";
  TelemetryExporter& exporter = farm.StartTelemetry(telemetry);

  std::FILE* series = nullptr;
  if (!series_out.empty()) {
    series = std::fopen(series_out.c_str(), "wb");
    if (series == nullptr) {
      std::fprintf(stderr, "bench_soak: cannot write %s\n",
                   series_out.c_str());
      return 2;
    }
    const std::string header = exporter.HeaderLine();
    std::fwrite(header.data(), 1, header.size(), series);
    std::fputc('\n', series);
    exporter.set_sink([series](const std::string& line) {
      std::fwrite(line.data(), 1, line.size(), series);
      std::fputc('\n', series);
    });
  }

  farm.ScheduleTrace(trace);
  const TimePoint end_at =
      TimePoint() + (trace.back().time - TimePoint()) + Duration::Seconds(30);
  const TimePoint mid_at = TimePoint() + (end_at - TimePoint()) / 2;

  // Midpoint capture, in virtual time so it lands between samples
  // deterministically. RSS is wall-clock state; it never enters the series.
  LatencySnapshot mid_datapath;
  double rss_mid_mb = 0.0;
  farm.loop().ScheduleAt(mid_at, [&]() {
    farm.obs().metrics.SnapshotLatency("gateway.datapath.latency_ns",
                                       &mid_datapath);
    rss_mid_mb = RssMb();
  });

  std::printf("soak: %zu packets over %.1f virtual minutes, %u shard(s), "
              "%zu hosts, sampling every %lld ms\n",
              trace.size(), minutes, shards, hosts,
              static_cast<long long>(interval_ms));
  farm.RunUntil(end_at);

  LatencySnapshot final_datapath;
  farm.obs().metrics.SnapshotLatency("gateway.datapath.latency_ns",
                                     &final_datapath);
  const double rss_final_mb = RssMb();
  if (series != nullptr) {
    std::fclose(series);
    std::printf("series: %llu samples -> %s (%zu retained in ring, %llu "
                "rotated out)\n",
                static_cast<unsigned long long>(exporter.sequence()),
                series_out.c_str(), exporter.retained(),
                static_cast<unsigned long long>(exporter.dropped()));
  }

  // Second-half window = cumulative minus the midpoint baseline.
  LatencySnapshot second_half = final_datapath;
  second_half.SubtractBaseline(mid_datapath);
  const double p99_first = static_cast<double>(mid_datapath.Quantile(0.99));
  const double p99_second = static_cast<double>(second_half.Quantile(0.99));

  const double wallclock_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  std::printf("datapath latency: p50 %.0f ns, p99 %.0f ns, p999 %.0f ns "
              "(%llu packets)\n",
              static_cast<double>(final_datapath.Quantile(0.5)),
              static_cast<double>(final_datapath.Quantile(0.99)),
              static_cast<double>(final_datapath.Quantile(0.999)),
              static_cast<unsigned long long>(final_datapath.total));
  std::printf("p99 by half: first %.0f ns, second %.0f ns\n", p99_first,
              p99_second);
  std::printf("rss: %.1f MB at midpoint, %.1f MB at end; wallclock %.0f ms\n",
              rss_mid_mb, rss_final_mb, wallclock_ms);
  std::printf("clones completed: %llu\n",
              static_cast<unsigned long long>(farm.total_clones_completed()));

  if (flags.GetBool("bench", true)) {
    BenchReport report("soak");
    report.set_seed(seed);
    report.set_shards(shards);
    // Virtual-time rows: identical across machines for a given seed.
    report.Add("packets_replayed", static_cast<double>(trace.size()), "pkts");
    report.Add("datapath_packets", static_cast<double>(final_datapath.total),
               "pkts");
    report.Add("clones_completed",
               static_cast<double>(farm.total_clones_completed()), "clones");
    report.Add("datapath_p50", static_cast<double>(final_datapath.Quantile(0.5)),
               "ns");
    report.Add("datapath_p99", static_cast<double>(final_datapath.Quantile(0.99)),
               "ns");
    report.Add("datapath_p999",
               static_cast<double>(final_datapath.Quantile(0.999)), "ns");
    report.Add("p99_second_half", p99_second, "ns");
    report.Add("telemetry_samples", static_cast<double>(exporter.sequence()),
               "samples");
    // Wall-clock rows: host-dependent; CI gates them with wide explicit
    // thresholds and bench_trajectory skips them entirely.
    report.Add("rss_mid_mb", rss_mid_mb, "mb");
    report.Add("rss_final_mb", rss_final_mb, "mb");
    report.Add("wallclock_ms", wallclock_ms, "ms");
    const std::string path = report.WriteJson();
    if (!path.empty()) {
      std::printf("wrote %s\n", path.c_str());
    }
  }

  if (flags.GetBool("check", false)) {
    bool ok = true;
    // Bounded memory: the second half may grow a little (CoW pools warming,
    // ring lines reaching steady size) but not keep climbing.
    if (rss_mid_mb > 0.0 && rss_final_mb > rss_mid_mb * 1.15 + 48.0) {
      std::printf("SOAK FAIL: rss grew %.1f -> %.1f MB (limit %.1f)\n",
                  rss_mid_mb, rss_final_mb, rss_mid_mb * 1.15 + 48.0);
      ok = false;
    }
    // Flat tail: second-half p99 within 2x the first half plus 1 ms slack
    // (quantization: one log-linear bucket is ~6% wide).
    if (mid_datapath.total > 0 && second_half.total > 0 &&
        p99_second > p99_first * 2.0 + 1e6) {
      std::printf("SOAK FAIL: datapath p99 rose %.0f -> %.0f ns (limit %.0f)\n",
                  p99_first, p99_second, p99_first * 2.0 + 1e6);
      ok = false;
    }
    if (!ok) {
      return 1;
    }
    std::printf("SOAK OK\n");
  }
  return 0;
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  return potemkin::Run(argc, argv);
}
