// Experiment F2 — Per-clone private memory growth (delta virtualization).
//
// After a flash clone, a VM's memory cost is only the pages it dirties while
// serving traffic. This bench drives live clones with increasing numbers of
// requests and reports the private-page delta distribution over time: deltas are a
// few per cent of the image and plateau as guests reuse their working sets — the
// paper's justification for packing hundreds of VMs per host.
#include <cstdio>

#include "src/analysis/cdf.h"
#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/core/honeyfarm.h"

namespace potemkin {
namespace {

Packet Probe(Ipv4Address dst, uint16_t port, const char* payload_text,
             uint16_t sport) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(77);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = Ipv4Address(198, 51, 100, 9);
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = sport;
  spec.dst_port = port;
  spec.tcp_flags = TcpFlags::kPsh | TcpFlags::kAck;
  for (const char* p = payload_text; *p; ++p) {
    spec.payload.push_back(static_cast<uint8_t>(*p));
  }
  return BuildPacket(spec);
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint32_t vms = static_cast<uint32_t>(flags.GetUint("vms", 32));
  const uint32_t image_pages = static_cast<uint32_t>(flags.GetUint("image-pages", 8192));
  const std::vector<int> request_steps = {0, 1, 5, 20, 100, 500};

  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 20);
  HoneyfarmConfig config =
      MakeDefaultFarmConfig(prefix, /*num_hosts=*/2, /*host_memory_mb=*/2048,
                            ContentMode::kStoreBytes);
  config.server_template.image.num_pages = image_pages;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.server_template.engine.control_plane_workers = 8;
  config.gateway.recycle.idle_timeout = Duration::Hours(10);  // no recycling here
  config.gateway.recycle.max_lifetime = Duration::Zero();

  Honeyfarm farm(config);
  farm.Start();

  std::printf("=== F2: per-clone private memory growth ===\n");
  std::printf("%u clones of a %s image; request bursts to SMB/HTTP services\n\n", vms,
              HumanBytes(static_cast<uint64_t>(image_pages) * kPageSize).c_str());

  // Create all VMs with one SYN each.
  for (uint32_t i = 0; i < vms; ++i) {
    PacketSpec syn;
    syn.src_mac = MacAddress::FromId(77);
    syn.dst_mac = MacAddress::FromId(1);
    syn.src_ip = Ipv4Address(198, 51, 100, 9);
    syn.dst_ip = prefix.AddressAt(i);
    syn.proto = IpProto::kTcp;
    syn.src_port = static_cast<uint16_t>(30000 + i);
    syn.dst_port = 445;
    syn.tcp_flags = TcpFlags::kSyn;
    farm.InjectInbound(BuildPacket(syn));
  }
  farm.RunFor(Duration::Seconds(30.0));

  Table table({"requests served", "mean delta (pages)", "median", "p90",
               "mean delta (MiB)", "% of image"});
  double final_mean_delta_pages = 0;
  int done_requests = 0;
  for (int step : request_steps) {
    // Bring every VM up to `step` requests.
    for (; done_requests < step; ++done_requests) {
      for (uint32_t i = 0; i < vms; ++i) {
        const uint16_t port = (done_requests % 3 == 2) ? 80 : 445;
        farm.InjectInbound(Probe(prefix.AddressAt(i), port, "probe-data-SMB",
                                 static_cast<uint16_t>(30000 + i)));
      }
      farm.RunFor(Duration::Seconds(1.0));
    }
    Cdf deltas;
    for (size_t s = 0; s < farm.server_count(); ++s) {
      farm.server(s).host().ForEachVm([&](VirtualMachine& vm) {
        deltas.Add(static_cast<double>(vm.memory().private_pages()));
      });
    }
    const double mean_pages = deltas.Mean();
    final_mean_delta_pages = mean_pages;
    table.AddRow({StrFormat("%d", step), StrFormat("%.1f", mean_pages),
                  StrFormat("%.0f", deltas.Median()), StrFormat("%.0f", deltas.Quantile(0.9)),
                  StrFormat("%.2f", mean_pages * kPageSize / (1 << 20)),
                  StrFormat("%.2f%%", 100.0 * mean_pages / image_pages)});
  }
  std::printf("%s\n", table.ToAscii().c_str());

  // Aggregate sharing statistics.
  uint64_t shared = 0;
  uint64_t priv = 0;
  for (size_t s = 0; s < farm.server_count(); ++s) {
    farm.server(s).host().ForEachVm([&](VirtualMachine& vm) {
      shared += vm.memory().shared_pages();
      priv += vm.memory().private_pages();
    });
  }
  std::printf("aggregate: %s shared page mappings vs %s private pages "
              "(%.1fx sharing leverage)\n\n",
              WithCommas(shared).c_str(), WithCommas(priv).c_str(),
              priv ? static_cast<double>(shared) / static_cast<double>(priv) : 0.0);
  std::printf("shape check (paper): deltas are a few %% of the image, grow sub-"
              "linearly with traffic and plateau at the guest working set.\n");

  BenchReport report("delta_memory");
  report.Add("mean_delta_pages_final", final_mean_delta_pages, "pages");
  report.Add("mean_delta_pct_of_image",
             100.0 * final_mean_delta_pages / image_pages, "%");
  report.Add("sharing_leverage",
             priv ? static_cast<double>(shared) / static_cast<double>(priv) : 0.0,
             "x");
  report.WriteJson();
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
