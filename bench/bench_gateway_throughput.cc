// Experiment F4 — Gateway forwarding performance vs live-binding count.
//
// Measures the real (wall-clock) packet-processing throughput of this gateway
// implementation as the binding table grows from 1 K to 64 K entries — the paper's
// gateway had to route for an entire /16 at line rate — plus the relative cost of
// the miss path (clone trigger), the reflection path, and the pending-queue vs
// drop ablation.
//
// The second half (F4b) sweeps the sharded gateway in partitioned mode — one
// real thread per shard draining a pre-binned hit-path workload — across
// 1/2/4/8 shards and 1 K/8 K/64 K bindings, writing the scaling surface to
// BENCH_gateway_shard_scaling.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/log.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/gateway/gateway.h"
#include "src/gateway/sharded_gateway.h"
#include "src/obs/observability.h"

namespace potemkin {
namespace {

// Counter delta over a timed section, read from a bench-local registry. The
// throughput numerators below come from the gateway's own metrics rather than
// the loop trip count, so the bench measures what the observability layer
// actually recorded (and fails loudly if instrumentation ever under-counts).
uint64_t CounterValue(const Observability& obs, const char* name) {
  return static_cast<uint64_t>(obs.metrics.ValueOf(name));
}

// Backend that completes spawns instantly and discards deliveries: isolates pure
// gateway data-path cost.
class NullBackend : public GatewayBackend {
 public:
  explicit NullBackend(size_t hosts) : hosts_(hosts) {}
  size_t NumHosts() const override { return hosts_; }
  bool HostCanAdmit(HostId) const override { return true; }
  size_t HostLiveVms(HostId) const override { return 0; }
  void SpawnVm(HostId, Ipv4Address, SessionId, std::function<void(VmId)> done) override {
    done(next_vm_++);
  }
  void RetireVm(HostId, VmId) override {}
  void DeliverToVm(HostId, VmId, Packet, const PacketView&) override {
    ++delivered_;
  }
  uint64_t delivered() const { return delivered_; }

 private:
  size_t hosts_;
  VmId next_vm_ = 1;
  uint64_t delivered_ = 0;
};

const Ipv4Prefix kFarm(Ipv4Address(10, 1, 0, 0), 16);

Packet InboundProbe(Ipv4Address dst, uint32_t salt) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(3);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = Ipv4Address(198, static_cast<uint8_t>(salt >> 16),
                            static_cast<uint8_t>(salt >> 8),
                            static_cast<uint8_t>(salt));
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = static_cast<uint16_t>(1024 + salt % 50000);
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

double MeasureHitPathPps(uint64_t bindings, uint64_t packets) {
  EventLoop loop;
  NullBackend backend(16);
  Observability obs;
  GatewayConfig config;
  config.farm_prefix = kFarm;
  config.obs = &obs;
  Gateway gateway(&loop, config, &backend);
  // Populate the binding table (instant spawns -> active immediately).
  for (uint64_t i = 0; i < bindings; ++i) {
    gateway.HandleInbound(InboundProbe(kFarm.AddressAt(i), static_cast<uint32_t>(i)));
  }
  loop.RunAll();

  // Pre-build packets targeting existing bindings.
  Rng rng(5);
  std::vector<Packet> workload;
  workload.reserve(packets);
  for (uint64_t i = 0; i < packets; ++i) {
    workload.push_back(InboundProbe(kFarm.AddressAt(rng.NextBelow(bindings)),
                                    static_cast<uint32_t>(i)));
  }
  const uint64_t hits_before = CounterValue(obs, "gateway.rx.hit");
  const auto start = std::chrono::steady_clock::now();
  for (auto& packet : workload) {
    gateway.HandleInbound(std::move(packet));
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  const uint64_t delivered = CounterValue(obs, "gateway.rx.hit") - hits_before;
  PK_CHECK(delivered == packets) << "hit path under-delivered";
  return static_cast<double>(delivered) / seconds;
}

// Same workload as MeasureHitPathPps, but injected through the batched entry
// point in bursts: one parse/bin pass and one binding lookup per destination
// run instead of per-packet table walks.
double MeasureHitPathBatchPps(uint64_t bindings, uint64_t packets,
                              size_t burst) {
  EventLoop loop;
  NullBackend backend(16);
  Observability obs;
  GatewayConfig config;
  config.farm_prefix = kFarm;
  config.obs = &obs;
  Gateway gateway(&loop, config, &backend);
  for (uint64_t i = 0; i < bindings; ++i) {
    gateway.HandleInbound(InboundProbe(kFarm.AddressAt(i), static_cast<uint32_t>(i)));
  }
  loop.RunAll();

  Rng rng(5);
  std::vector<Packet> workload;
  workload.reserve(packets);
  for (uint64_t i = 0; i < packets; ++i) {
    workload.push_back(InboundProbe(kFarm.AddressAt(rng.NextBelow(bindings)),
                                    static_cast<uint32_t>(i)));
  }
  const uint64_t hits_before = CounterValue(obs, "gateway.rx.hit");
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < workload.size(); i += burst) {
    const size_t n = std::min(burst, workload.size() - i);
    gateway.HandleInboundBatch(std::span<Packet>(&workload[i], n));
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  const uint64_t delivered = CounterValue(obs, "gateway.rx.hit") - hits_before;
  PK_CHECK(delivered == packets) << "batched hit path under-delivered";
  return static_cast<double>(delivered) / seconds;
}

double MeasureMissPathPps(uint64_t packets) {
  EventLoop loop;
  NullBackend backend(16);
  Observability obs;
  GatewayConfig config;
  config.farm_prefix = kFarm;
  config.obs = &obs;
  Gateway gateway(&loop, config, &backend);
  std::vector<Packet> workload;
  workload.reserve(packets);
  for (uint64_t i = 0; i < packets; ++i) {
    workload.push_back(InboundProbe(kFarm.AddressAt(i % kFarm.NumAddresses()),
                                    static_cast<uint32_t>(i)));
  }
  const auto start = std::chrono::steady_clock::now();
  for (auto& packet : workload) {
    gateway.HandleInbound(std::move(packet));
  }
  const auto end = std::chrono::steady_clock::now();
  const uint64_t processed = CounterValue(obs, "gateway.rx.packets");
  PK_CHECK(processed == packets) << "miss path under-counted";
  return static_cast<double>(processed) /
         std::chrono::duration<double>(end - start).count();
}

double MeasureReflectPps(uint64_t packets) {
  EventLoop loop;
  NullBackend backend(16);
  Observability obs;
  GatewayConfig config;
  config.farm_prefix = kFarm;
  config.containment.mode = OutboundMode::kReflect;
  config.obs = &obs;
  Gateway gateway(&loop, config, &backend);
  // One live source VM binding.
  gateway.HandleInbound(InboundProbe(kFarm.AddressAt(0), 1));
  loop.RunAll();
  Rng rng(9);
  std::vector<Packet> workload;
  workload.reserve(packets);
  for (uint64_t i = 0; i < packets; ++i) {
    PacketSpec spec;
    spec.src_mac = MacAddress::FromId(4);
    spec.dst_mac = MacAddress::FromId(1);
    spec.src_ip = kFarm.AddressAt(0);
    spec.dst_ip = Ipv4Address(static_cast<uint32_t>(0xc0000000u + rng.NextU64() % 0xffffff));
    spec.proto = IpProto::kUdp;
    spec.src_port = 1434;
    spec.dst_port = 1434;
    spec.payload = {1, 2, 3, 4};
    workload.push_back(BuildPacket(spec));
  }
  const auto start = std::chrono::steady_clock::now();
  for (auto& packet : workload) {
    gateway.HandleOutbound(0, 1, std::move(packet));
  }
  const auto end = std::chrono::steady_clock::now();
  const uint64_t processed = CounterValue(obs, "gateway.tx.outbound");
  PK_CHECK(processed == packets) << "reflect path under-counted";
  return static_cast<double>(processed) /
         std::chrono::duration<double>(end - start).count();
}

// F4b: hit-path throughput of the partitioned sharded gateway, one real thread
// per shard. Bindings are populated single-threaded (deterministic barrier
// merge), then a pre-binned workload — every packet already targeting its
// owning shard, the telescope steady state — is drained in parallel.
double MeasureShardedHitPathPps(uint32_t shards, uint64_t bindings,
                                uint64_t packets, size_t burst) {
  std::vector<std::unique_ptr<NullBackend>> backends;
  std::vector<GatewayBackend*> raw;
  for (uint32_t s = 0; s < shards; ++s) {
    backends.push_back(std::make_unique<NullBackend>(16));
    raw.push_back(backends.back().get());
  }
  ShardedGatewayConfig config;
  config.gateway.farm_prefix = kFarm;
  config.shard_count = shards;
  config.reserve_bindings_per_shard = bindings / shards + 64;
  ShardedGateway gateway(config, std::move(raw));

  for (uint64_t i = 0; i < bindings; ++i) {
    gateway.HandleInbound(
        InboundProbe(kFarm.AddressAt(i), static_cast<uint32_t>(i)));
  }
  gateway.RunUntilIdle();
  PK_CHECK(gateway.live_bindings() == bindings)
      << "populate fell short: " << gateway.live_bindings();

  // Same workload distribution as MeasureHitPathPps (Rng(5) over the live
  // bindings), binned by owning shard with arrival order preserved.
  Rng rng(5);
  std::vector<std::vector<Packet>> per_shard(shards);
  for (auto& bin : per_shard) {
    bin.reserve(packets / shards + packets / 8);
  }
  for (uint64_t i = 0; i < packets; ++i) {
    const Ipv4Address dst = kFarm.AddressAt(rng.NextBelow(bindings));
    per_shard[gateway.ShardOf(dst)].push_back(
        InboundProbe(dst, static_cast<uint32_t>(i)));
  }

  const GatewayStats before = gateway.AggregateStats();
  const auto start = std::chrono::steady_clock::now();
  const ShardedGateway::DrainResult result =
      gateway.DrainParallel(&per_shard, burst);
  const auto end = std::chrono::steady_clock::now();
  const GatewayStats after = gateway.AggregateStats();

  const uint64_t delivered = after.inbound_delivered - before.inbound_delivered;
  PK_CHECK(result.packets_fed == packets) << "drain consumed " << result.packets_fed;
  PK_CHECK(delivered == packets)
      << "sharded hit path under-delivered: " << delivered;
  return static_cast<double>(packets) /
         std::chrono::duration<double>(end - start).count();
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint64_t packets = flags.GetUint("packets", 300000);

  std::printf("=== F4: gateway packet-processing throughput (real wall clock) ===\n\n");

  BenchReport report("gateway_throughput");
  Table table({"live bindings", "hit-path throughput (pkts/s)", "per packet (ns)"});
  for (uint64_t bindings : {1000ull, 8000ull, 64000ull}) {
    const double pps = MeasureHitPathPps(bindings, packets);
    table.AddRow({WithCommas(bindings), WithCommas(static_cast<uint64_t>(pps)),
                  StrFormat("%.0f", 1e9 / pps)});
    report.Add(StrFormat("hit_path_pps_%llu_bindings",
                         static_cast<unsigned long long>(bindings)),
               pps, "pkts/s");
  }
  std::printf("%s\n", table.ToAscii().c_str());

  const double batch = MeasureHitPathBatchPps(8000, packets, /*burst=*/64);
  report.Add("hit_path_batch_pps_8000_bindings", batch, "pkts/s");
  std::printf("hit path, batched dispatch (64-packet bursts, 8K bindings):  %s pkts/s\n",
              WithCommas(static_cast<uint64_t>(batch)).c_str());

  const double miss = MeasureMissPathPps(packets / 3);
  const double reflect = MeasureReflectPps(packets / 3);
  report.Add("miss_path_pps", miss, "pkts/s");
  report.Add("reflect_path_pps", reflect, "pkts/s");
  report.WriteJson();
  std::printf("miss path (first-contact: binding + clone dispatch): %s pkts/s\n",
              WithCommas(static_cast<uint64_t>(miss)).c_str());
  std::printf("outbound reflection path (rewrite + NAT + reroute):  %s pkts/s\n\n",
              WithCommas(static_cast<uint64_t>(reflect)).c_str());

  std::printf("shape check (paper): the gateway data path sustains hundreds of "
              "thousands of pkts/s with only gentle degradation as the binding "
              "table grows to a full /16 — forwarding is not the bottleneck. The "
              "expensive part of a miss is the flash clone it triggers (~0.5 s of "
              "control-plane work, deliberately excluded here; see T1/F6), so "
              "clone rate bounds how fast the farm absorbs NEW addresses.\n\n");

  std::printf("=== F4b: sharded gateway hit-path scaling (1 thread per shard) ===\n\n");
  constexpr uint32_t kShardCounts[] = {1, 2, 4, 8};
  constexpr uint64_t kBindingCounts[] = {1000, 8000, 64000};
  BenchReport scaling("gateway_shard_scaling");
  scaling.set_shards(8);  // largest topology exercised below
  Table scaling_table({"live bindings", "1 shard (pkts/s)", "2 shards",
                       "4 shards", "8 shards", "4-shard speedup"});
  for (const uint64_t bindings : kBindingCounts) {
    std::vector<std::string> row{WithCommas(bindings)};
    double base_pps = 0.0;
    double four_pps = 0.0;
    for (const uint32_t shards : kShardCounts) {
      const double pps =
          MeasureShardedHitPathPps(shards, bindings, packets, /*burst=*/64);
      if (shards == 1) base_pps = pps;
      if (shards == 4) four_pps = pps;
      row.push_back(WithCommas(static_cast<uint64_t>(pps)));
      scaling.Add(StrFormat("parallel_pps_%u_shards_%llu_bindings", shards,
                            static_cast<unsigned long long>(bindings)),
                  pps, "pkts/s");
    }
    row.push_back(StrFormat("%.2fx", four_pps / base_pps));
    scaling_table.AddRow(row);
  }
  scaling.WriteJson();
  std::printf("%s\n", scaling_table.ToAscii().c_str());
  std::printf("shape check: per-shard tables and lock-free handoff keep shards "
              "independent on the hit path, so throughput scales with shard "
              "count until the host runs out of cores, and stays flat as the "
              "binding table grows 64x — the partitioned index never leaves a "
              "shard's cache.\n");
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
