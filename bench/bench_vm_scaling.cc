// Experiment F1 — Live-VM population vs time under telescope traffic.
//
// The paper's key scalability result: traffic arriving for a /16 (64 Ki addresses)
// can be served by a small number of live VMs because only the *currently active*
// slice of the address space needs a VM at any instant. We replay a synthetic
// 24-hour-style background-radiation trace into the farm once per recycle timeout
// and report the live-VM population curve: short timeouts keep the farm hundreds
// of times smaller than the address space.
//
// Ablation (--infected-hold): recycle policy variants from DESIGN.md §5.
#include <cstdio>

#include "src/analysis/series_util.h"
#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/core/honeyfarm.h"
#include "src/malware/radiation.h"

namespace potemkin {
namespace {

struct ScalingResult {
  double timeout_s = 0;
  uint64_t peak_live = 0;
  double mean_live = 0;
  uint64_t clones = 0;
  uint64_t retired = 0;
  uint64_t capacity_drops = 0;
  double cpu_utilization = 0;
  TimeSeries population;
};

ScalingResult RunOnce(const std::vector<TraceRecord>& trace, Ipv4Prefix prefix,
                      Duration duration, Duration timeout, uint32_t hosts,
                      uint64_t host_mb, uint32_t emergency_batch = 0) {
  HoneyfarmConfig config =
      MakeDefaultFarmConfig(prefix, hosts, host_mb, ContentMode::kMetadataOnly);
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.server_template.engine.control_plane_workers = 8;
  config.gateway.recycle.idle_timeout = timeout;
  config.gateway.recycle.infected_hold = timeout;
  config.gateway.recycle.emergency_reclaim_batch = emergency_batch;
  config.gateway.recycle.max_lifetime = Duration::Zero();
  config.gateway.recycle.scan_interval =
      timeout < Duration::Seconds(2.0) ? timeout : Duration::Seconds(2.0);

  Honeyfarm farm(config);
  farm.Start(/*sample_interval=*/Duration::Seconds(30));
  farm.ScheduleTrace(trace);
  farm.RunUntil(TimePoint() + duration);

  ScalingResult result;
  result.timeout_s = timeout.seconds();
  result.clones = farm.total_clones_completed();
  result.retired = farm.gateway().stats().vms_retired;
  result.capacity_drops = farm.gateway().stats().no_capacity_drops;
  double sum = 0;
  for (const auto& sample : farm.samples()) {
    result.population.Record(sample.time, static_cast<double>(sample.live_vms));
    result.peak_live = std::max(result.peak_live, sample.live_vms);
    sum += static_cast<double>(sample.live_vms);
  }
  result.mean_live =
      farm.samples().empty() ? 0.0 : sum / static_cast<double>(farm.samples().size());
  result.cpu_utilization =
      farm.samples().empty() ? 0.0 : farm.samples().back().mean_cpu_utilization;
  return result;
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const double hours = flags.GetDouble("hours", 0.5);
  const double pps = flags.GetDouble("pps", 60.0);
  const uint32_t hosts = static_cast<uint32_t>(flags.GetUint("hosts", 8));
  const uint64_t host_mb = flags.GetUint("host-mb", 2048);
  const Ipv4Prefix prefix =
      Ipv4Prefix::Parse(flags.GetString("prefix", "10.1.0.0/16")).value();

  RadiationConfig radiation;
  radiation.telescope = prefix;
  radiation.duration = Duration::Hours(hours);
  radiation.mean_pps = pps;
  radiation.diurnal_period = Duration::Hours(hours);  // one full cycle per run
  radiation.seed = flags.GetUint("seed", 7);
  RadiationGenerator generator(radiation);
  const auto trace = generator.GenerateAll();

  std::printf("=== F1: live-VM population vs time (telescope replay) ===\n");
  std::printf("prefix=%s (%s addresses), trace: %.1fh at mean %.0f pps, "
              "%zu packets, hosts=%u x %s\n\n",
              prefix.ToString().c_str(), WithCommas(prefix.NumAddresses()).c_str(),
              hours, pps, trace.size(), hosts,
              HumanBytes(host_mb << 20).c_str());

  const std::vector<double> timeouts = {0.5, 5.0, 30.0, 300.0};
  std::vector<ScalingResult> results;
  std::vector<NamedSeries> curves;
  std::vector<std::string> labels;
  for (double t : timeouts) {
    results.push_back(RunOnce(trace, prefix, Duration::Hours(hours),
                              Duration::Seconds(t), hosts, host_mb));
    labels.push_back(StrFormat("%g", t));
    curves.push_back({StrFormat("vms@%gs", t), results.back().population});
    std::fprintf(stderr, "  [done] timeout=%gs peak=%llu\n", t,
                 static_cast<unsigned long long>(results.back().peak_live));
  }
  // Ablation: the longest (saturating) timeout with emergency reclaim enabled.
  results.push_back(RunOnce(trace, prefix, Duration::Hours(hours),
                            Duration::Seconds(timeouts.back()), hosts, host_mb,
                            /*emergency_batch=*/64));
  labels.push_back(StrFormat("%g+reclaim", timeouts.back()));
  curves.push_back({"vms@reclaim", results.back().population});
  std::fprintf(stderr, "  [done] emergency-reclaim peak=%llu\n",
               static_cast<unsigned long long>(results.back().peak_live));

  Table table({"recycle timeout (s)", "peak live VMs", "mean live VMs",
               "clones", "retired", "capacity drops", "cpu util",
               "addr-space reduction"});
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.AddRow(
        {labels[i], WithCommas(r.peak_live),
         StrFormat("%.1f", r.mean_live), WithCommas(r.clones), WithCommas(r.retired),
         WithCommas(r.capacity_drops), StrFormat("%.1f%%", r.cpu_utilization * 100.0),
         StrFormat("%.0fx", static_cast<double>(prefix.NumAddresses()) /
                                std::max<uint64_t>(1, r.peak_live))});
  }
  std::printf("%s\n", table.ToAscii().c_str());

  std::printf("population curves (max per %ds bucket):\n",
              static_cast<int>(Duration::Hours(hours).seconds() / 60));
  for (size_t i = 0; i < curves.size(); ++i) {
    std::printf("  %-10s |%s| peak=%llu\n", curves[i].name.c_str(),
                Sparkline(curves[i].series, 60, TimePoint() + Duration::Hours(hours))
                    .c_str(),
                static_cast<unsigned long long>(results[i].peak_live));
  }
  std::printf("\nfigure data (CSV):\n%s",
              AlignSeries(curves, Duration::Minutes(hours * 60.0 / 48.0),
                          TimePoint() + Duration::Hours(hours))
                  .ToCsv()
                  .c_str());
  std::printf("\nshape check (paper): live VMs << address space; population grows "
              "with the recycle timeout; aggressive recycling gives orders-of-"
              "magnitude reduction.\n");

  BenchReport report("vm_scaling");
  report.set_seed(radiation.seed);
  for (size_t i = 0; i < results.size(); ++i) {
    report.Add(StrFormat("peak_live_vms_timeout_%s", labels[i].c_str()),
               static_cast<double>(results[i].peak_live), "vms");
  }
  report.Add("addr_space_reduction_smallest_timeout",
             static_cast<double>(prefix.NumAddresses()) /
                 std::max<uint64_t>(1, results.front().peak_live),
             "x");
  report.WriteJson();
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
