// Experiment E1 (extension) — Content-based page sharing on top of delta
// virtualization.
//
// The paper's future-work observation: clones write a lot of *identical* content
// (zeroed buffers, identical kernel/service state), which content-based sharing
// can merge back. This bench populates a host with flash clones serving identical
// request workloads, runs the deduplication pass, and reports the additional
// memory reclaimed beyond what CoW-against-the-image already saved — plus the
// cost (scan time) and the post-dedup stability (a second pass finds nothing).
#include <chrono>
#include <cstdio>

#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/guest/guest_os.h"
#include "src/hv/page_dedup.h"

namespace potemkin {
namespace {

Packet ServiceRequest(Ipv4Address dst, uint32_t request_index) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(9);
  spec.dst_mac = MacAddress::FromId(2);
  spec.src_ip = Ipv4Address(198, 51, 100, 1);
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  // Identical request sequence per VM: the realistic case dedup exploits.
  spec.src_port = static_cast<uint16_t>(20000 + request_index);
  spec.dst_port = 445;
  spec.tcp_flags = TcpFlags::kPsh | TcpFlags::kAck;
  spec.payload = {'S', 'M', 'B', static_cast<uint8_t>(request_index)};
  return BuildPacket(spec);
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint32_t image_pages = static_cast<uint32_t>(flags.GetUint("image-pages", 2048));
  const int requests = static_cast<int>(flags.GetInt("requests-per-vm", 40));

  std::printf("=== E1 (extension): content-based page dedup vs delta-virt alone ===\n");
  std::printf("image %s, %d identical requests per clone\n\n",
              HumanBytes(static_cast<uint64_t>(image_pages) * kPageSize).c_str(),
              requests);

  Table table({"clones", "delta pages (pre)", "after dedup", "merged", "saved",
               "extra reduction", "scan (ms)"});

  BenchReport report("page_dedup");
  for (uint64_t vms : {8ull, 32ull, 128ull}) {
    PhysicalHostConfig host_config;
    host_config.memory_mb = 4096;
    host_config.content_mode = ContentMode::kStoreBytes;
    host_config.domain_overhead_frames = 0;  // isolate page effects
    PhysicalHost host(host_config);
    ReferenceImageConfig image_config;
    image_config.num_pages = image_pages;
    const ImageId image = host.RegisterImage(image_config);

    GuestOsConfig guest_config;
    guest_config.services = DefaultWindowsServices();
    guest_config.heap_pages = 1024;

    Rng rng(3);
    std::vector<std::unique_ptr<GuestOs>> guests;
    const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 16);
    for (uint64_t i = 0; i < vms; ++i) {
      VirtualMachine* vm = host.CreateClone(image, CloneKind::kFlash, "d");
      vm->BindAddress(prefix.AddressAt(i), MacAddress::FromId(i));
      vm->set_state(VmState::kRunning);
      // Identical per-VM RNG so every guest behaves identically — the best case
      // for dedup and close to reality for identical images under scan traffic.
      auto guest = std::make_unique<GuestOs>(vm, guest_config, Rng(7));
      for (int r = 0; r < requests; ++r) {
        guest->HandleFrame(ServiceRequest(vm->ip(), static_cast<uint32_t>(r)),
                           TimePoint());
      }
      guests.push_back(std::move(guest));
    }

    const uint64_t pre_frames = host.allocator().used_frames() - image_pages;
    const auto start = std::chrono::steady_clock::now();
    const DedupResult result = DeduplicatePages(host);
    const auto end = std::chrono::steady_clock::now();
    const uint64_t post_frames = host.allocator().used_frames() - image_pages;

    table.AddRow({WithCommas(vms), WithCommas(pre_frames), WithCommas(post_frames),
                  WithCommas(result.pages_merged),
                  HumanBytes(result.bytes_saved),
                  StrFormat("%.1fx", pre_frames ? static_cast<double>(pre_frames) /
                                                      static_cast<double>(post_frames)
                                                : 1.0),
                  StrFormat("%.1f", std::chrono::duration<double, std::milli>(
                                        end - start)
                                        .count())});

    report.Add(StrFormat("extra_reduction_%llu_vms",
                         static_cast<unsigned long long>(vms)),
               pre_frames ? static_cast<double>(pre_frames) /
                                static_cast<double>(post_frames)
                          : 1.0,
               "x");

    // Idempotence check on the largest configuration.
    if (vms == 128) {
      report.Add("pages_merged_128_vms", static_cast<double>(result.pages_merged),
                 "pages");
      const DedupResult second = DeduplicatePages(host);
      std::fprintf(stderr, "  second pass: merged=%llu (expect 0)\n",
                   static_cast<unsigned long long>(second.pages_merged));
    }
  }
  report.WriteJson();
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("shape check: with identical clone workloads, dedup collapses the\n"
              "per-VM deltas to ~one shared working set, multiplying the VM density\n"
              "delta virtualization already provides; the pass is linear in delta\n"
              "pages and a later write safely re-privatizes (CoW) merged pages.\n");
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
