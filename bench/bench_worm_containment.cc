// Experiment F5 — Worm propagation under containment policies.
//
// Seeds a random-scanning worm into the farm and measures the infection curve for
// each outbound policy. The fidelity/containment trade-off the paper demonstrates:
//   open      -> worm escapes to the Internet (counted, not simulated beyond that)
//   drop-all  -> perfect containment, dead epidemic (one infected VM, no behaviour)
//   reflect   -> zero escapes AND a live in-farm epidemic tracking SI dynamics
// Ablations: keyed vs random reflection (DESIGN.md §5) and reflect+rate-limit.
#include <cmath>
#include <cstdio>

#include "src/analysis/series_util.h"
#include "bench/report.h"
#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/core/honeyfarm.h"
#include "src/malware/epidemic.h"

namespace potemkin {
namespace {

struct PolicyResult {
  std::string name;
  uint64_t infections = 0;
  uint64_t escapes = 0;
  uint64_t egress = 0;
  uint64_t reflections = 0;
  double t50 = -1;  // seconds to 50% of final infections
  TimeSeries curve;
};

PolicyResult RunPolicy(const std::string& name, OutboundMode mode,
                       bool keyed_reflection, double rate_limit_pps,
                       const Flags& flags) {
  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0),
                          static_cast<int>(flags.GetUint("prefix-len", 21)));
  const double minutes = flags.GetDouble("minutes", 4.0);

  HoneyfarmConfig config = MakeDefaultFarmConfig(
      prefix, /*num_hosts=*/4, /*host_memory_mb=*/1024, ContentMode::kMetadataOnly);
  config.server_template.image.num_pages = 2048;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.server_template.engine.control_plane_workers = 8;
  config.gateway.containment.mode = mode;
  config.gateway.containment.keyed_reflection = keyed_reflection;
  config.gateway.containment.rate_limit_pps = rate_limit_pps;
  config.gateway.recycle.idle_timeout = Duration::Minutes(10);
  config.gateway.recycle.infected_hold = Duration::Minutes(30);
  config.gateway.recycle.max_lifetime = Duration::Zero();

  Honeyfarm farm(config);
  WormConfig worm_config = SlammerLikeWorm(Ipv4Prefix(Ipv4Address(0, 0, 0, 0), 0));
  worm_config.scan_rate_pps = flags.GetDouble("scan-rate", 0.5);
  WormRuntime worm(&farm.loop(), worm_config, 13);
  farm.AttachWorm(&worm);
  farm.Start();
  farm.SeedWorm(worm, Ipv4Address(198, 51, 100, 66), prefix.AddressAt(1));
  // Run in chunks; stop shortly after the epidemic saturates the farm (keeps the
  // post-saturation scan storm from dominating wall-clock time).
  const TimePoint deadline = TimePoint() + Duration::Minutes(minutes);
  TimePoint saturated_at = TimePoint::Max();
  while (farm.loop().Now() < deadline) {
    farm.RunFor(Duration::Seconds(5.0));
    if (farm.epidemic().total_infections() >= prefix.NumAddresses() * 95 / 100 &&
        saturated_at == TimePoint::Max()) {
      saturated_at = farm.loop().Now();
    }
    if (saturated_at != TimePoint::Max() &&
        farm.loop().Now() - saturated_at > Duration::Seconds(10.0)) {
      break;
    }
  }

  PolicyResult result;
  result.name = name;
  result.infections = farm.epidemic().total_infections();
  result.escapes = farm.gateway().containment().stats().escapes_from_infected;
  result.egress = farm.egress_packet_count();
  result.reflections = farm.gateway().stats().reflections_injected;
  result.curve = farm.epidemic().CumulativeSeries();
  const Duration to_half = farm.epidemic().TimeToFraction(
      0.5, std::max<uint64_t>(1, result.infections));
  if (to_half != Duration::Max()) {
    result.t50 = to_half.seconds();
  }
  return result;
}

void Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const double minutes = flags.GetDouble("minutes", 4.0);

  std::printf("=== F5: worm propagation under containment policies ===\n");
  std::printf("slammer-like random-scanning worm, %.0f-minute outbreak window\n\n",
              minutes);

  std::vector<PolicyResult> results;
  results.push_back(RunPolicy("open", OutboundMode::kOpen, true, 0, flags));
  std::fprintf(stderr, "  [done] open\n");
  results.push_back(RunPolicy("drop-all", OutboundMode::kDropAll, true, 0, flags));
  std::fprintf(stderr, "  [done] drop-all\n");
  results.push_back(
      RunPolicy("reflect (keyed)", OutboundMode::kReflect, true, 0, flags));
  std::fprintf(stderr, "  [done] reflect keyed\n");
  results.push_back(
      RunPolicy("reflect (random)", OutboundMode::kReflect, false, 0, flags));
  std::fprintf(stderr, "  [done] reflect random\n");
  results.push_back(
      RunPolicy("reflect + 5pps limit", OutboundMode::kReflect, true, 5.0, flags));
  std::fprintf(stderr, "  [done] reflect rate-limited\n");

  Table table({"policy", "in-farm infections", "escapes (infected->Internet)",
               "reflections", "t50 (s)"});
  for (const auto& r : results) {
    table.AddRow({r.name, WithCommas(r.infections), WithCommas(r.escapes),
                  WithCommas(r.reflections),
                  r.t50 >= 0 ? StrFormat("%.0f", r.t50) : "-"});
  }
  std::printf("%s\n", table.ToAscii().c_str());

  std::printf("infection curves:\n");
  std::vector<NamedSeries> curves;
  for (const auto& r : results) {
    std::printf("  %-22s |%s| final=%llu\n", r.name.c_str(),
                Sparkline(r.curve, 60, TimePoint() + Duration::Minutes(minutes))
                    .c_str(),
                static_cast<unsigned long long>(r.infections));
    curves.push_back({r.name, r.curve});
  }
  std::printf("\nfigure data (CSV):\n%s",
              AlignSeries(curves, Duration::Seconds(minutes * 60.0 / 40.0),
                          TimePoint() + Duration::Minutes(minutes))
                  .ToCsv()
                  .c_str());

  // Analytic SI comparison for the reflect-keyed run: reflection makes the whole
  // IPv4 universe collapse onto the farm prefix, so the effective contact rate is
  // scan_rate (every scan lands on some farm address).
  const auto& reflected = results[2];
  const double population = static_cast<double>(reflected.infections);
  if (population > 2 && reflected.t50 >= 0) {
    // I(t50)=N/2 in the SI model gives t50 = ln(N/I0 - 1) / (beta*N) with
    // beta*N = scan_rate, since every reflected scan lands on some farm address.
    const double scan_rate = flags.GetDouble("scan-rate", 0.5);
    const double predicted_t50 = std::log(population - 1.0) / scan_rate;
    std::printf("\nanalytic SI check (reflect keyed): measured t50=%.0fs, "
                "SI-model prediction=%.0fs (beta*N = per-instance scan rate)\n",
                reflected.t50, predicted_t50);
  }
  std::printf("\nshape check (paper): open explodes outward (escapes >> 0); "
              "drop-all is safe but inert (1 infection); reflection is safe "
              "(0 escapes) with a live logistic epidemic inside the farm.\n");

  BenchReport report("worm_containment");
  for (const auto& r : results) {
    std::string slug;
    for (const char c : r.name) {
      slug += (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ? c : '_';
    }
    report.Add("infections_" + slug, static_cast<double>(r.infections),
               "infections");
    report.Add("escapes_" + slug, static_cast<double>(r.escapes), "packets");
  }
  report.WriteJson();
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  potemkin::Run(argc, argv);
  return 0;
}
