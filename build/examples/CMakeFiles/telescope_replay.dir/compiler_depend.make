# Empty compiler generated dependencies file for telescope_replay.
# This may be replaced when dependencies are built.
