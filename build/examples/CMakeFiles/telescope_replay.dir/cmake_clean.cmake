file(REMOVE_RECURSE
  "CMakeFiles/telescope_replay.dir/telescope_replay.cpp.o"
  "CMakeFiles/telescope_replay.dir/telescope_replay.cpp.o.d"
  "telescope_replay"
  "telescope_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telescope_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
