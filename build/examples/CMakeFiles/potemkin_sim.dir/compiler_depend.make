# Empty compiler generated dependencies file for potemkin_sim.
# This may be replaced when dependencies are built.
