file(REMOVE_RECURSE
  "CMakeFiles/potemkin_sim.dir/potemkin_sim.cpp.o"
  "CMakeFiles/potemkin_sim.dir/potemkin_sim.cpp.o.d"
  "potemkin_sim"
  "potemkin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potemkin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
