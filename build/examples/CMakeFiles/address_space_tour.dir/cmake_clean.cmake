file(REMOVE_RECURSE
  "CMakeFiles/address_space_tour.dir/address_space_tour.cpp.o"
  "CMakeFiles/address_space_tour.dir/address_space_tour.cpp.o.d"
  "address_space_tour"
  "address_space_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_space_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
