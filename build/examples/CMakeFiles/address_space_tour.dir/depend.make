# Empty dependencies file for address_space_tour.
# This may be replaced when dependencies are built.
