# Empty compiler generated dependencies file for worm_outbreak.
# This may be replaced when dependencies are built.
