file(REMOVE_RECURSE
  "CMakeFiles/worm_outbreak.dir/worm_outbreak.cpp.o"
  "CMakeFiles/worm_outbreak.dir/worm_outbreak.cpp.o.d"
  "worm_outbreak"
  "worm_outbreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_outbreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
