file(REMOVE_RECURSE
  "CMakeFiles/forensics.dir/forensics.cpp.o"
  "CMakeFiles/forensics.dir/forensics.cpp.o.d"
  "forensics"
  "forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
