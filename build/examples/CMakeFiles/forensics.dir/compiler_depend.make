# Empty compiler generated dependencies file for forensics.
# This may be replaced when dependencies are built.
