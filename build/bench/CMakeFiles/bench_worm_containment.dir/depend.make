# Empty dependencies file for bench_worm_containment.
# This may be replaced when dependencies are built.
