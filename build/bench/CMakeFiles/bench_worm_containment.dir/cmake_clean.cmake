file(REMOVE_RECURSE
  "CMakeFiles/bench_worm_containment.dir/bench_worm_containment.cc.o"
  "CMakeFiles/bench_worm_containment.dir/bench_worm_containment.cc.o.d"
  "bench_worm_containment"
  "bench_worm_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worm_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
