file(REMOVE_RECURSE
  "CMakeFiles/bench_gateway_throughput.dir/bench_gateway_throughput.cc.o"
  "CMakeFiles/bench_gateway_throughput.dir/bench_gateway_throughput.cc.o.d"
  "bench_gateway_throughput"
  "bench_gateway_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gateway_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
