# Empty compiler generated dependencies file for bench_gateway_throughput.
# This may be replaced when dependencies are built.
