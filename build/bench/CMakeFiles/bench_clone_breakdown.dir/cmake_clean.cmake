file(REMOVE_RECURSE
  "CMakeFiles/bench_clone_breakdown.dir/bench_clone_breakdown.cc.o"
  "CMakeFiles/bench_clone_breakdown.dir/bench_clone_breakdown.cc.o.d"
  "bench_clone_breakdown"
  "bench_clone_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clone_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
