
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_clone_breakdown.cc" "bench/CMakeFiles/bench_clone_breakdown.dir/bench_clone_breakdown.cc.o" "gcc" "bench/CMakeFiles/bench_clone_breakdown.dir/bench_clone_breakdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/potemkin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/potemkin_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/malware/CMakeFiles/potemkin_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/potemkin_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/potemkin_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/potemkin_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/potemkin_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/potemkin_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
