file(REMOVE_RECURSE
  "CMakeFiles/bench_containment_matrix.dir/bench_containment_matrix.cc.o"
  "CMakeFiles/bench_containment_matrix.dir/bench_containment_matrix.cc.o.d"
  "bench_containment_matrix"
  "bench_containment_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
