# Empty compiler generated dependencies file for bench_containment_matrix.
# This may be replaced when dependencies are built.
