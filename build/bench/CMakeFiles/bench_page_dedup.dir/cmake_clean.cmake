file(REMOVE_RECURSE
  "CMakeFiles/bench_page_dedup.dir/bench_page_dedup.cc.o"
  "CMakeFiles/bench_page_dedup.dir/bench_page_dedup.cc.o.d"
  "bench_page_dedup"
  "bench_page_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_page_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
