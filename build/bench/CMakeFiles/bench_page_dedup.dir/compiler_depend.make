# Empty compiler generated dependencies file for bench_page_dedup.
# This may be replaced when dependencies are built.
