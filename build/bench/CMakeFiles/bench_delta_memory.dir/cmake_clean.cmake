file(REMOVE_RECURSE
  "CMakeFiles/bench_delta_memory.dir/bench_delta_memory.cc.o"
  "CMakeFiles/bench_delta_memory.dir/bench_delta_memory.cc.o.d"
  "bench_delta_memory"
  "bench_delta_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delta_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
