# Empty dependencies file for bench_delta_memory.
# This may be replaced when dependencies are built.
