# Empty compiler generated dependencies file for bench_clone_concurrency.
# This may be replaced when dependencies are built.
