file(REMOVE_RECURSE
  "CMakeFiles/bench_clone_concurrency.dir/bench_clone_concurrency.cc.o"
  "CMakeFiles/bench_clone_concurrency.dir/bench_clone_concurrency.cc.o.d"
  "bench_clone_concurrency"
  "bench_clone_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clone_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
