# Empty dependencies file for bench_vm_scaling.
# This may be replaced when dependencies are built.
