file(REMOVE_RECURSE
  "CMakeFiles/bench_vm_scaling.dir/bench_vm_scaling.cc.o"
  "CMakeFiles/bench_vm_scaling.dir/bench_vm_scaling.cc.o.d"
  "bench_vm_scaling"
  "bench_vm_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vm_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
