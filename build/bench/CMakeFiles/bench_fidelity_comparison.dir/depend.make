# Empty dependencies file for bench_fidelity_comparison.
# This may be replaced when dependencies are built.
