file(REMOVE_RECURSE
  "CMakeFiles/bench_fidelity_comparison.dir/bench_fidelity_comparison.cc.o"
  "CMakeFiles/bench_fidelity_comparison.dir/bench_fidelity_comparison.cc.o.d"
  "bench_fidelity_comparison"
  "bench_fidelity_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fidelity_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
