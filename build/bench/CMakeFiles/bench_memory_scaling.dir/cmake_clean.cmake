file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_scaling.dir/bench_memory_scaling.cc.o"
  "CMakeFiles/bench_memory_scaling.dir/bench_memory_scaling.cc.o.d"
  "bench_memory_scaling"
  "bench_memory_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
