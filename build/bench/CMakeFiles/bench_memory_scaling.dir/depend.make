# Empty dependencies file for bench_memory_scaling.
# This may be replaced when dependencies are built.
