file(REMOVE_RECURSE
  "CMakeFiles/bench_handshake_fidelity.dir/bench_handshake_fidelity.cc.o"
  "CMakeFiles/bench_handshake_fidelity.dir/bench_handshake_fidelity.cc.o.d"
  "bench_handshake_fidelity"
  "bench_handshake_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_handshake_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
