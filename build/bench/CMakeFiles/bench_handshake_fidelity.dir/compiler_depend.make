# Empty compiler generated dependencies file for bench_handshake_fidelity.
# This may be replaced when dependencies are built.
