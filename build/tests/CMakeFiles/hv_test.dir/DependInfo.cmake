
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hv/address_space_test.cc" "tests/CMakeFiles/hv_test.dir/hv/address_space_test.cc.o" "gcc" "tests/CMakeFiles/hv_test.dir/hv/address_space_test.cc.o.d"
  "/root/repo/tests/hv/clone_engine_test.cc" "tests/CMakeFiles/hv_test.dir/hv/clone_engine_test.cc.o" "gcc" "tests/CMakeFiles/hv_test.dir/hv/clone_engine_test.cc.o.d"
  "/root/repo/tests/hv/cow_disk_test.cc" "tests/CMakeFiles/hv_test.dir/hv/cow_disk_test.cc.o" "gcc" "tests/CMakeFiles/hv_test.dir/hv/cow_disk_test.cc.o.d"
  "/root/repo/tests/hv/frame_allocator_test.cc" "tests/CMakeFiles/hv_test.dir/hv/frame_allocator_test.cc.o" "gcc" "tests/CMakeFiles/hv_test.dir/hv/frame_allocator_test.cc.o.d"
  "/root/repo/tests/hv/physical_host_test.cc" "tests/CMakeFiles/hv_test.dir/hv/physical_host_test.cc.o" "gcc" "tests/CMakeFiles/hv_test.dir/hv/physical_host_test.cc.o.d"
  "/root/repo/tests/hv/reference_image_test.cc" "tests/CMakeFiles/hv_test.dir/hv/reference_image_test.cc.o" "gcc" "tests/CMakeFiles/hv_test.dir/hv/reference_image_test.cc.o.d"
  "/root/repo/tests/hv/snapshot_dedup_test.cc" "tests/CMakeFiles/hv_test.dir/hv/snapshot_dedup_test.cc.o" "gcc" "tests/CMakeFiles/hv_test.dir/hv/snapshot_dedup_test.cc.o.d"
  "/root/repo/tests/hv/vm_cpu_test.cc" "tests/CMakeFiles/hv_test.dir/hv/vm_cpu_test.cc.o" "gcc" "tests/CMakeFiles/hv_test.dir/hv/vm_cpu_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/potemkin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/potemkin_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/malware/CMakeFiles/potemkin_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/potemkin_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/potemkin_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/potemkin_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/potemkin_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/potemkin_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
