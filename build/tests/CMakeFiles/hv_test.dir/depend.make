# Empty dependencies file for hv_test.
# This may be replaced when dependencies are built.
