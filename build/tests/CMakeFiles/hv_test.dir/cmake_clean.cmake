file(REMOVE_RECURSE
  "CMakeFiles/hv_test.dir/hv/address_space_test.cc.o"
  "CMakeFiles/hv_test.dir/hv/address_space_test.cc.o.d"
  "CMakeFiles/hv_test.dir/hv/clone_engine_test.cc.o"
  "CMakeFiles/hv_test.dir/hv/clone_engine_test.cc.o.d"
  "CMakeFiles/hv_test.dir/hv/cow_disk_test.cc.o"
  "CMakeFiles/hv_test.dir/hv/cow_disk_test.cc.o.d"
  "CMakeFiles/hv_test.dir/hv/frame_allocator_test.cc.o"
  "CMakeFiles/hv_test.dir/hv/frame_allocator_test.cc.o.d"
  "CMakeFiles/hv_test.dir/hv/physical_host_test.cc.o"
  "CMakeFiles/hv_test.dir/hv/physical_host_test.cc.o.d"
  "CMakeFiles/hv_test.dir/hv/reference_image_test.cc.o"
  "CMakeFiles/hv_test.dir/hv/reference_image_test.cc.o.d"
  "CMakeFiles/hv_test.dir/hv/snapshot_dedup_test.cc.o"
  "CMakeFiles/hv_test.dir/hv/snapshot_dedup_test.cc.o.d"
  "CMakeFiles/hv_test.dir/hv/vm_cpu_test.cc.o"
  "CMakeFiles/hv_test.dir/hv/vm_cpu_test.cc.o.d"
  "hv_test"
  "hv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
