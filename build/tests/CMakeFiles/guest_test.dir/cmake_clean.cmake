file(REMOVE_RECURSE
  "CMakeFiles/guest_test.dir/guest/guest_os_test.cc.o"
  "CMakeFiles/guest_test.dir/guest/guest_os_test.cc.o.d"
  "CMakeFiles/guest_test.dir/guest/tcp_stack_test.cc.o"
  "CMakeFiles/guest_test.dir/guest/tcp_stack_test.cc.o.d"
  "guest_test"
  "guest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
