# Empty compiler generated dependencies file for guest_test.
# This may be replaced when dependencies are built.
