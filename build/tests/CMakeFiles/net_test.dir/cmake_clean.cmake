file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/net/flow_test.cc.o"
  "CMakeFiles/net_test.dir/net/flow_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/gre_test.cc.o"
  "CMakeFiles/net_test.dir/net/gre_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/ipv4_test.cc.o"
  "CMakeFiles/net_test.dir/net/ipv4_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/link_test.cc.o"
  "CMakeFiles/net_test.dir/net/link_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/packet_test.cc.o"
  "CMakeFiles/net_test.dir/net/packet_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/trace_dns_test.cc.o"
  "CMakeFiles/net_test.dir/net/trace_dns_test.cc.o.d"
  "net_test"
  "net_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
