file(REMOVE_RECURSE
  "CMakeFiles/gateway_test.dir/gateway/backscatter_test.cc.o"
  "CMakeFiles/gateway_test.dir/gateway/backscatter_test.cc.o.d"
  "CMakeFiles/gateway_test.dir/gateway/binding_table_test.cc.o"
  "CMakeFiles/gateway_test.dir/gateway/binding_table_test.cc.o.d"
  "CMakeFiles/gateway_test.dir/gateway/containment_test.cc.o"
  "CMakeFiles/gateway_test.dir/gateway/containment_test.cc.o.d"
  "CMakeFiles/gateway_test.dir/gateway/gateway_unit_test.cc.o"
  "CMakeFiles/gateway_test.dir/gateway/gateway_unit_test.cc.o.d"
  "CMakeFiles/gateway_test.dir/gateway/low_interaction_test.cc.o"
  "CMakeFiles/gateway_test.dir/gateway/low_interaction_test.cc.o.d"
  "CMakeFiles/gateway_test.dir/gateway/reflection_test.cc.o"
  "CMakeFiles/gateway_test.dir/gateway/reflection_test.cc.o.d"
  "gateway_test"
  "gateway_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
