# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[base_test]=] "/root/repo/build/tests/base_test")
set_tests_properties([=[base_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;potemkin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[net_test]=] "/root/repo/build/tests/net_test")
set_tests_properties([=[net_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;potemkin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[guest_test]=] "/root/repo/build/tests/guest_test")
set_tests_properties([=[guest_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;30;potemkin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[gateway_test]=] "/root/repo/build/tests/gateway_test")
set_tests_properties([=[gateway_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;35;potemkin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[malware_test]=] "/root/repo/build/tests/malware_test")
set_tests_properties([=[malware_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;44;potemkin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[core_test]=] "/root/repo/build/tests/core_test")
set_tests_properties([=[core_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;48;potemkin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[analysis_test]=] "/root/repo/build/tests/analysis_test")
set_tests_properties([=[analysis_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;53;potemkin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[property_test]=] "/root/repo/build/tests/property_test")
set_tests_properties([=[property_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;57;potemkin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[scenario_test]=] "/root/repo/build/tests/scenario_test")
set_tests_properties([=[scenario_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;61;potemkin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[hv_test]=] "/root/repo/build/tests/hv_test")
set_tests_properties([=[hv_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;65;potemkin_test;/root/repo/tests/CMakeLists.txt;0;")
