# Empty dependencies file for potemkin_analysis.
# This may be replaced when dependencies are built.
