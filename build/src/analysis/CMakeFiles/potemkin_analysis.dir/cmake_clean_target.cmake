file(REMOVE_RECURSE
  "libpotemkin_analysis.a"
)
