file(REMOVE_RECURSE
  "CMakeFiles/potemkin_analysis.dir/cdf.cc.o"
  "CMakeFiles/potemkin_analysis.dir/cdf.cc.o.d"
  "CMakeFiles/potemkin_analysis.dir/series_util.cc.o"
  "CMakeFiles/potemkin_analysis.dir/series_util.cc.o.d"
  "libpotemkin_analysis.a"
  "libpotemkin_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potemkin_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
