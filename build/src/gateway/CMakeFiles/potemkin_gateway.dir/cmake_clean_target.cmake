file(REMOVE_RECURSE
  "libpotemkin_gateway.a"
)
