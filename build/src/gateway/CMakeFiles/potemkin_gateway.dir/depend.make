# Empty dependencies file for potemkin_gateway.
# This may be replaced when dependencies are built.
