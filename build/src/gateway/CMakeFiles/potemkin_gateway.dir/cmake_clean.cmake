file(REMOVE_RECURSE
  "CMakeFiles/potemkin_gateway.dir/binding_table.cc.o"
  "CMakeFiles/potemkin_gateway.dir/binding_table.cc.o.d"
  "CMakeFiles/potemkin_gateway.dir/containment.cc.o"
  "CMakeFiles/potemkin_gateway.dir/containment.cc.o.d"
  "CMakeFiles/potemkin_gateway.dir/dns_proxy.cc.o"
  "CMakeFiles/potemkin_gateway.dir/dns_proxy.cc.o.d"
  "CMakeFiles/potemkin_gateway.dir/gateway.cc.o"
  "CMakeFiles/potemkin_gateway.dir/gateway.cc.o.d"
  "CMakeFiles/potemkin_gateway.dir/low_interaction.cc.o"
  "CMakeFiles/potemkin_gateway.dir/low_interaction.cc.o.d"
  "CMakeFiles/potemkin_gateway.dir/recycler.cc.o"
  "CMakeFiles/potemkin_gateway.dir/recycler.cc.o.d"
  "CMakeFiles/potemkin_gateway.dir/scan_detector.cc.o"
  "CMakeFiles/potemkin_gateway.dir/scan_detector.cc.o.d"
  "libpotemkin_gateway.a"
  "libpotemkin_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potemkin_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
