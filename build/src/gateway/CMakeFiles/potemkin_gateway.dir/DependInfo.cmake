
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gateway/binding_table.cc" "src/gateway/CMakeFiles/potemkin_gateway.dir/binding_table.cc.o" "gcc" "src/gateway/CMakeFiles/potemkin_gateway.dir/binding_table.cc.o.d"
  "/root/repo/src/gateway/containment.cc" "src/gateway/CMakeFiles/potemkin_gateway.dir/containment.cc.o" "gcc" "src/gateway/CMakeFiles/potemkin_gateway.dir/containment.cc.o.d"
  "/root/repo/src/gateway/dns_proxy.cc" "src/gateway/CMakeFiles/potemkin_gateway.dir/dns_proxy.cc.o" "gcc" "src/gateway/CMakeFiles/potemkin_gateway.dir/dns_proxy.cc.o.d"
  "/root/repo/src/gateway/gateway.cc" "src/gateway/CMakeFiles/potemkin_gateway.dir/gateway.cc.o" "gcc" "src/gateway/CMakeFiles/potemkin_gateway.dir/gateway.cc.o.d"
  "/root/repo/src/gateway/low_interaction.cc" "src/gateway/CMakeFiles/potemkin_gateway.dir/low_interaction.cc.o" "gcc" "src/gateway/CMakeFiles/potemkin_gateway.dir/low_interaction.cc.o.d"
  "/root/repo/src/gateway/recycler.cc" "src/gateway/CMakeFiles/potemkin_gateway.dir/recycler.cc.o" "gcc" "src/gateway/CMakeFiles/potemkin_gateway.dir/recycler.cc.o.d"
  "/root/repo/src/gateway/scan_detector.cc" "src/gateway/CMakeFiles/potemkin_gateway.dir/scan_detector.cc.o" "gcc" "src/gateway/CMakeFiles/potemkin_gateway.dir/scan_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/potemkin_base.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/potemkin_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/potemkin_hv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
