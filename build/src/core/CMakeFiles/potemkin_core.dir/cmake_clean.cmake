file(REMOVE_RECURSE
  "CMakeFiles/potemkin_core.dir/clone_server.cc.o"
  "CMakeFiles/potemkin_core.dir/clone_server.cc.o.d"
  "CMakeFiles/potemkin_core.dir/honeyfarm.cc.o"
  "CMakeFiles/potemkin_core.dir/honeyfarm.cc.o.d"
  "libpotemkin_core.a"
  "libpotemkin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potemkin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
