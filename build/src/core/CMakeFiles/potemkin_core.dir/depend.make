# Empty dependencies file for potemkin_core.
# This may be replaced when dependencies are built.
