file(REMOVE_RECURSE
  "libpotemkin_core.a"
)
