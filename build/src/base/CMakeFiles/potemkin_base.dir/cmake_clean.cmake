file(REMOVE_RECURSE
  "CMakeFiles/potemkin_base.dir/event_loop.cc.o"
  "CMakeFiles/potemkin_base.dir/event_loop.cc.o.d"
  "CMakeFiles/potemkin_base.dir/flags.cc.o"
  "CMakeFiles/potemkin_base.dir/flags.cc.o.d"
  "CMakeFiles/potemkin_base.dir/log.cc.o"
  "CMakeFiles/potemkin_base.dir/log.cc.o.d"
  "CMakeFiles/potemkin_base.dir/rng.cc.o"
  "CMakeFiles/potemkin_base.dir/rng.cc.o.d"
  "CMakeFiles/potemkin_base.dir/stats.cc.o"
  "CMakeFiles/potemkin_base.dir/stats.cc.o.d"
  "CMakeFiles/potemkin_base.dir/strings.cc.o"
  "CMakeFiles/potemkin_base.dir/strings.cc.o.d"
  "CMakeFiles/potemkin_base.dir/table.cc.o"
  "CMakeFiles/potemkin_base.dir/table.cc.o.d"
  "CMakeFiles/potemkin_base.dir/time_types.cc.o"
  "CMakeFiles/potemkin_base.dir/time_types.cc.o.d"
  "CMakeFiles/potemkin_base.dir/token_bucket.cc.o"
  "CMakeFiles/potemkin_base.dir/token_bucket.cc.o.d"
  "libpotemkin_base.a"
  "libpotemkin_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potemkin_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
