file(REMOVE_RECURSE
  "libpotemkin_base.a"
)
