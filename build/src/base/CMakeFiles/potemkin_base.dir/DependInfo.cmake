
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/event_loop.cc" "src/base/CMakeFiles/potemkin_base.dir/event_loop.cc.o" "gcc" "src/base/CMakeFiles/potemkin_base.dir/event_loop.cc.o.d"
  "/root/repo/src/base/flags.cc" "src/base/CMakeFiles/potemkin_base.dir/flags.cc.o" "gcc" "src/base/CMakeFiles/potemkin_base.dir/flags.cc.o.d"
  "/root/repo/src/base/log.cc" "src/base/CMakeFiles/potemkin_base.dir/log.cc.o" "gcc" "src/base/CMakeFiles/potemkin_base.dir/log.cc.o.d"
  "/root/repo/src/base/rng.cc" "src/base/CMakeFiles/potemkin_base.dir/rng.cc.o" "gcc" "src/base/CMakeFiles/potemkin_base.dir/rng.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/base/CMakeFiles/potemkin_base.dir/stats.cc.o" "gcc" "src/base/CMakeFiles/potemkin_base.dir/stats.cc.o.d"
  "/root/repo/src/base/strings.cc" "src/base/CMakeFiles/potemkin_base.dir/strings.cc.o" "gcc" "src/base/CMakeFiles/potemkin_base.dir/strings.cc.o.d"
  "/root/repo/src/base/table.cc" "src/base/CMakeFiles/potemkin_base.dir/table.cc.o" "gcc" "src/base/CMakeFiles/potemkin_base.dir/table.cc.o.d"
  "/root/repo/src/base/time_types.cc" "src/base/CMakeFiles/potemkin_base.dir/time_types.cc.o" "gcc" "src/base/CMakeFiles/potemkin_base.dir/time_types.cc.o.d"
  "/root/repo/src/base/token_bucket.cc" "src/base/CMakeFiles/potemkin_base.dir/token_bucket.cc.o" "gcc" "src/base/CMakeFiles/potemkin_base.dir/token_bucket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
