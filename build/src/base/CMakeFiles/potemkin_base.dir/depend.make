# Empty dependencies file for potemkin_base.
# This may be replaced when dependencies are built.
