file(REMOVE_RECURSE
  "libpotemkin_hv.a"
)
