# Empty dependencies file for potemkin_hv.
# This may be replaced when dependencies are built.
