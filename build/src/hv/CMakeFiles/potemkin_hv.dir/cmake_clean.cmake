file(REMOVE_RECURSE
  "CMakeFiles/potemkin_hv.dir/address_space.cc.o"
  "CMakeFiles/potemkin_hv.dir/address_space.cc.o.d"
  "CMakeFiles/potemkin_hv.dir/clone_engine.cc.o"
  "CMakeFiles/potemkin_hv.dir/clone_engine.cc.o.d"
  "CMakeFiles/potemkin_hv.dir/cow_disk.cc.o"
  "CMakeFiles/potemkin_hv.dir/cow_disk.cc.o.d"
  "CMakeFiles/potemkin_hv.dir/frame_allocator.cc.o"
  "CMakeFiles/potemkin_hv.dir/frame_allocator.cc.o.d"
  "CMakeFiles/potemkin_hv.dir/latency_model.cc.o"
  "CMakeFiles/potemkin_hv.dir/latency_model.cc.o.d"
  "CMakeFiles/potemkin_hv.dir/page_dedup.cc.o"
  "CMakeFiles/potemkin_hv.dir/page_dedup.cc.o.d"
  "CMakeFiles/potemkin_hv.dir/physical_host.cc.o"
  "CMakeFiles/potemkin_hv.dir/physical_host.cc.o.d"
  "CMakeFiles/potemkin_hv.dir/reference_image.cc.o"
  "CMakeFiles/potemkin_hv.dir/reference_image.cc.o.d"
  "CMakeFiles/potemkin_hv.dir/snapshot.cc.o"
  "CMakeFiles/potemkin_hv.dir/snapshot.cc.o.d"
  "CMakeFiles/potemkin_hv.dir/vm.cc.o"
  "CMakeFiles/potemkin_hv.dir/vm.cc.o.d"
  "libpotemkin_hv.a"
  "libpotemkin_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potemkin_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
