
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/address_space.cc" "src/hv/CMakeFiles/potemkin_hv.dir/address_space.cc.o" "gcc" "src/hv/CMakeFiles/potemkin_hv.dir/address_space.cc.o.d"
  "/root/repo/src/hv/clone_engine.cc" "src/hv/CMakeFiles/potemkin_hv.dir/clone_engine.cc.o" "gcc" "src/hv/CMakeFiles/potemkin_hv.dir/clone_engine.cc.o.d"
  "/root/repo/src/hv/cow_disk.cc" "src/hv/CMakeFiles/potemkin_hv.dir/cow_disk.cc.o" "gcc" "src/hv/CMakeFiles/potemkin_hv.dir/cow_disk.cc.o.d"
  "/root/repo/src/hv/frame_allocator.cc" "src/hv/CMakeFiles/potemkin_hv.dir/frame_allocator.cc.o" "gcc" "src/hv/CMakeFiles/potemkin_hv.dir/frame_allocator.cc.o.d"
  "/root/repo/src/hv/latency_model.cc" "src/hv/CMakeFiles/potemkin_hv.dir/latency_model.cc.o" "gcc" "src/hv/CMakeFiles/potemkin_hv.dir/latency_model.cc.o.d"
  "/root/repo/src/hv/page_dedup.cc" "src/hv/CMakeFiles/potemkin_hv.dir/page_dedup.cc.o" "gcc" "src/hv/CMakeFiles/potemkin_hv.dir/page_dedup.cc.o.d"
  "/root/repo/src/hv/physical_host.cc" "src/hv/CMakeFiles/potemkin_hv.dir/physical_host.cc.o" "gcc" "src/hv/CMakeFiles/potemkin_hv.dir/physical_host.cc.o.d"
  "/root/repo/src/hv/reference_image.cc" "src/hv/CMakeFiles/potemkin_hv.dir/reference_image.cc.o" "gcc" "src/hv/CMakeFiles/potemkin_hv.dir/reference_image.cc.o.d"
  "/root/repo/src/hv/snapshot.cc" "src/hv/CMakeFiles/potemkin_hv.dir/snapshot.cc.o" "gcc" "src/hv/CMakeFiles/potemkin_hv.dir/snapshot.cc.o.d"
  "/root/repo/src/hv/vm.cc" "src/hv/CMakeFiles/potemkin_hv.dir/vm.cc.o" "gcc" "src/hv/CMakeFiles/potemkin_hv.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/potemkin_base.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/potemkin_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
