file(REMOVE_RECURSE
  "CMakeFiles/potemkin_guest.dir/guest_os.cc.o"
  "CMakeFiles/potemkin_guest.dir/guest_os.cc.o.d"
  "CMakeFiles/potemkin_guest.dir/service.cc.o"
  "CMakeFiles/potemkin_guest.dir/service.cc.o.d"
  "CMakeFiles/potemkin_guest.dir/tcp_stack.cc.o"
  "CMakeFiles/potemkin_guest.dir/tcp_stack.cc.o.d"
  "libpotemkin_guest.a"
  "libpotemkin_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potemkin_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
