# Empty compiler generated dependencies file for potemkin_guest.
# This may be replaced when dependencies are built.
