
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/guest_os.cc" "src/guest/CMakeFiles/potemkin_guest.dir/guest_os.cc.o" "gcc" "src/guest/CMakeFiles/potemkin_guest.dir/guest_os.cc.o.d"
  "/root/repo/src/guest/service.cc" "src/guest/CMakeFiles/potemkin_guest.dir/service.cc.o" "gcc" "src/guest/CMakeFiles/potemkin_guest.dir/service.cc.o.d"
  "/root/repo/src/guest/tcp_stack.cc" "src/guest/CMakeFiles/potemkin_guest.dir/tcp_stack.cc.o" "gcc" "src/guest/CMakeFiles/potemkin_guest.dir/tcp_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/potemkin_base.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/potemkin_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/potemkin_hv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
