file(REMOVE_RECURSE
  "libpotemkin_guest.a"
)
