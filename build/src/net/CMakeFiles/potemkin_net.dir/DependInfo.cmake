
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/potemkin_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/potemkin_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/dns.cc" "src/net/CMakeFiles/potemkin_net.dir/dns.cc.o" "gcc" "src/net/CMakeFiles/potemkin_net.dir/dns.cc.o.d"
  "/root/repo/src/net/flow.cc" "src/net/CMakeFiles/potemkin_net.dir/flow.cc.o" "gcc" "src/net/CMakeFiles/potemkin_net.dir/flow.cc.o.d"
  "/root/repo/src/net/gre.cc" "src/net/CMakeFiles/potemkin_net.dir/gre.cc.o" "gcc" "src/net/CMakeFiles/potemkin_net.dir/gre.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/potemkin_net.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/potemkin_net.dir/ipv4.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/potemkin_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/potemkin_net.dir/link.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/potemkin_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/potemkin_net.dir/packet.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/net/CMakeFiles/potemkin_net.dir/trace.cc.o" "gcc" "src/net/CMakeFiles/potemkin_net.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/potemkin_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
