file(REMOVE_RECURSE
  "CMakeFiles/potemkin_net.dir/checksum.cc.o"
  "CMakeFiles/potemkin_net.dir/checksum.cc.o.d"
  "CMakeFiles/potemkin_net.dir/dns.cc.o"
  "CMakeFiles/potemkin_net.dir/dns.cc.o.d"
  "CMakeFiles/potemkin_net.dir/flow.cc.o"
  "CMakeFiles/potemkin_net.dir/flow.cc.o.d"
  "CMakeFiles/potemkin_net.dir/gre.cc.o"
  "CMakeFiles/potemkin_net.dir/gre.cc.o.d"
  "CMakeFiles/potemkin_net.dir/ipv4.cc.o"
  "CMakeFiles/potemkin_net.dir/ipv4.cc.o.d"
  "CMakeFiles/potemkin_net.dir/link.cc.o"
  "CMakeFiles/potemkin_net.dir/link.cc.o.d"
  "CMakeFiles/potemkin_net.dir/packet.cc.o"
  "CMakeFiles/potemkin_net.dir/packet.cc.o.d"
  "CMakeFiles/potemkin_net.dir/trace.cc.o"
  "CMakeFiles/potemkin_net.dir/trace.cc.o.d"
  "libpotemkin_net.a"
  "libpotemkin_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potemkin_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
