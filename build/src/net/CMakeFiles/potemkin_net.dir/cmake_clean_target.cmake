file(REMOVE_RECURSE
  "libpotemkin_net.a"
)
