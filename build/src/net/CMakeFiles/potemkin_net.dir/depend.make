# Empty dependencies file for potemkin_net.
# This may be replaced when dependencies are built.
