// Empirical CDFs for reporting latency and footprint distributions.
#ifndef SRC_ANALYSIS_CDF_H_
#define SRC_ANALYSIS_CDF_H_

#include <string>
#include <vector>

namespace potemkin {

class Cdf {
 public:
  void Add(double value) { values_.push_back(value); }
  void AddAll(const std::vector<double>& values);

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // Value at quantile q in [0,1] (linear interpolation between order statistics).
  double Quantile(double q) const;
  double Min() const { return Quantile(0.0); }
  double Median() const { return Quantile(0.5); }
  double Max() const { return Quantile(1.0); }
  double Mean() const;

  // Evenly spaced (value, cumulative fraction) points for plotting.
  std::vector<std::pair<double, double>> Points(size_t max_points = 100) const;

  // Multi-line "value fraction" dump suitable for gnuplot.
  std::string ToPlotData(size_t max_points = 100) const;

 private:
  void EnsureSorted() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace potemkin

#endif  // SRC_ANALYSIS_CDF_H_
