#include "src/analysis/series_util.h"

#include <algorithm>

#include "src/base/strings.h"

namespace potemkin {

namespace {

// Value of a step-function series at time `t` (last sample at or before t).
double ValueAt(const TimeSeries& series, TimePoint t) {
  double value = 0.0;
  for (const auto& sample : series.samples()) {
    if (sample.time > t) {
      break;
    }
    value = sample.value;
  }
  return value;
}

}  // namespace

Table AlignSeries(const std::vector<NamedSeries>& series, Duration interval,
                  TimePoint end) {
  std::vector<std::string> headers;
  headers.push_back("t_seconds");
  for (const auto& s : series) {
    headers.push_back(s.name);
  }
  Table table(std::move(headers));

  for (TimePoint t; t <= end; t += interval) {
    std::vector<std::string> row;
    row.push_back(StrFormat("%.1f", t.seconds()));
    for (const auto& s : series) {
      row.push_back(StrFormat("%.0f", ValueAt(s.series, t)));
    }
    table.AddRow(std::move(row));
    if (interval.IsZero()) {
      break;
    }
  }
  return table;
}

std::string Sparkline(const TimeSeries& series, size_t buckets, TimePoint end) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (buckets == 0 || series.empty()) {
    return "";
  }
  std::vector<double> values(buckets, 0.0);
  const Duration step = Duration::Nanos(end.nanos() / static_cast<int64_t>(buckets));
  if (step.IsZero()) {
    return "";
  }
  double max_value = 0.0;
  for (size_t i = 0; i < buckets; ++i) {
    values[i] = ValueAt(series, TimePoint() + step * static_cast<double>(i + 1));
    max_value = std::max(max_value, values[i]);
  }
  std::string out;
  for (double v : values) {
    const size_t level =
        max_value > 0.0 ? static_cast<size_t>(v / max_value * 7.0 + 0.5) : 0;
    out += kLevels[std::min<size_t>(level, 7)];
  }
  return out;
}

}  // namespace potemkin
