// Helpers for turning telemetry time series into the figure data the benchmark
// harness prints (aligned multi-series tables, simple ASCII sparklines).
#ifndef SRC_ANALYSIS_SERIES_UTIL_H_
#define SRC_ANALYSIS_SERIES_UTIL_H_

#include <string>
#include <vector>

#include "src/base/stats.h"
#include "src/base/table.h"

namespace potemkin {

struct NamedSeries {
  std::string name;
  TimeSeries series;
};

// Resamples every series onto a common time grid (step-function semantics: the
// value at grid point t is the last sample at or before t) and renders one row per
// grid point: "t  v1  v2 ...".
Table AlignSeries(const std::vector<NamedSeries>& series, Duration interval,
                  TimePoint end);

// A compact ASCII sparkline (8 levels) of a series resampled to `buckets` points;
// useful for eyeballing figure shapes in terminal output.
std::string Sparkline(const TimeSeries& series, size_t buckets, TimePoint end);

}  // namespace potemkin

#endif  // SRC_ANALYSIS_SERIES_UTIL_H_
