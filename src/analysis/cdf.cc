#include "src/analysis/cdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/base/strings.h"

namespace potemkin {

void Cdf::AddAll(const std::vector<double>& values) {
  values_.insert(values_.end(), values.begin(), values.end());
  sorted_ = false;
}

void Cdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Cdf::Quantile(double q) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(position));
  const size_t hi = static_cast<size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(lo);
  return values_[lo] * (1.0 - fraction) + values_[hi] * fraction;
}

double Cdf::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

std::vector<std::pair<double, double>> Cdf::Points(size_t max_points) const {
  std::vector<std::pair<double, double>> points;
  if (values_.empty() || max_points == 0) {
    return points;
  }
  EnsureSorted();
  const size_t n = values_.size();
  const size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    points.emplace_back(values_[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (points.back().second < 1.0) {
    points.emplace_back(values_.back(), 1.0);
  }
  return points;
}

std::string Cdf::ToPlotData(size_t max_points) const {
  std::string out;
  for (const auto& [value, fraction] : Points(max_points)) {
    out += StrFormat("%.6g %.4f\n", value, fraction);
  }
  return out;
}

}  // namespace potemkin
