#include "src/ctrl/controller.h"

#include <algorithm>
#include <utility>

#include "src/base/log.h"
#include "src/hv/frame_allocator.h"
#include "src/hv/reference_image.h"

namespace potemkin {

const char* ScaleActionName(ScaleAction action) {
  switch (action) {
    case ScaleAction::kActivateStandby:
      return "activate_standby";
    case ScaleAction::kDrainWorst:
      return "drain_worst";
    case ScaleAction::kReclaimIdle:
      return "reclaim_idle";
    case ScaleAction::kRotateImages:
      return "rotate_images";
  }
  return "?";
}

Controller::Controller(Honeyfarm* farm, ControllerConfig config)
    : farm_(farm),
      config_(std::move(config)),
      pool_(config_.weights),
      rotation_rng_(config_.rotation_seed) {}

Controller::~Controller() {
  farm_->obs().metrics.RemoveProbes(this);
  if (started_) {
    // The farm may outlive the controller; leave it admitting by capacity
    // alone rather than through callbacks into freed pool state.
    farm_->set_host_admission_filter(nullptr);
    farm_->set_host_score_fn(nullptr);
  }
}

void Controller::Start() {
  PK_CHECK(!started_) << "controller started twice";
  started_ = true;
  const TimePoint now = farm_->loop().Now();
  const size_t hosts = farm_->server_count();
  PK_CHECK(config_.standby_hosts < hosts)
      << "standby_hosts " << config_.standby_hosts << " leaves no active host";
  const size_t first_standby = hosts - config_.standby_hosts;
  for (size_t i = 0; i < hosts; ++i) {
    const HostId host = static_cast<HostId>(i);
    // Standbys park kDown (healthy, admitting nothing) until a scaling rule
    // activates them; kWarming would self-promote after warmup.
    const BackendState initial =
        i < first_standby ? BackendState::kActive : BackendState::kDown;
    pool_.Register(
        host, farm_->server(i).host().name(),
        [farm = farm_, i] {
          BackendCapacity cap;
          CloneServer& server = farm->server(i);
          const FrameAllocator& alloc = server.host().allocator();
          cap.used_frames = alloc.used_frames();
          cap.capacity_frames = alloc.capacity_frames();
          cap.live_vms = server.LiveVms();
          cap.denied_requests = alloc.denied_requests();
          cap.can_admit = server.CanAdmit();
          return cap;
        },
        initial, now);
  }
  farm_->set_host_admission_filter(
      [this](HostId host) { return pool_.Admits(host); });
  farm_->set_host_score_fn([this](HostId host) { return pool_.Score(host); });

  MetricRegistry& metrics = farm_->obs().metrics;
  metrics.RegisterProbe(this, "ctrl.backends.active", "hosts", [this] {
    return static_cast<double>(pool_.CountInState(BackendState::kActive));
  });
  metrics.RegisterProbe(this, "ctrl.backends.warming", "hosts", [this] {
    return static_cast<double>(pool_.CountInState(BackendState::kWarming));
  });
  metrics.RegisterProbe(this, "ctrl.backends.draining", "hosts", [this] {
    return static_cast<double>(pool_.CountInState(BackendState::kDraining));
  });
  metrics.RegisterProbe(this, "ctrl.backends.down", "hosts", [this] {
    return static_cast<double>(pool_.CountInState(BackendState::kDown));
  });
  metrics.RegisterProbe(this, "ctrl.drains.completed", "count", [this] {
    return static_cast<double>(stats_.drains_completed);
  });
  metrics.RegisterProbe(this, "ctrl.failovers", "count", [this] {
    return static_cast<double>(stats_.failovers);
  });
  metrics.RegisterProbe(this, "ctrl.migrations", "count", [this] {
    return static_cast<double>(stats_.migrations);
  });
  metrics.RegisterProbe(this, "ctrl.rotations", "count", [this] {
    return static_cast<double>(stats_.rotations);
  });
  metrics.RegisterProbe(this, "ctrl.scale_actions", "count", [this] {
    return static_cast<double>(stats_.scale_actions);
  });

  last_scale_.assign(config_.scaling.size(), TimePoint());
  last_rotation_ = now;
  pool_.Refresh();
  farm_->loop().SchedulePeriodic(config_.tick, [this] { Tick(); });
}

void Controller::SetState(HostId host, BackendState next) {
  if (pool_.state(host) == next) {
    return;
  }
  pool_.SetState(host, next, farm_->loop().Now());
  farm_->ledger().Append(LedgerEvent::kCtrlState, kNoSession,
                         farm_->loop().Now().nanos(), host,
                         static_cast<uint64_t>(next));
}

void Controller::Tick() {
  pool_.Refresh();
  DetectCrashes();
  ProgressDrains();
  PromoteWarming();
  ApplyScaling();
  MaybeRotate();
}

void Controller::DetectCrashes() {
  for (size_t i = 0; i < pool_.size(); ++i) {
    const HostId host = static_cast<HostId>(i);
    if (!farm_->HostCrashed(host) || pool_.state(host) == BackendState::kDown) {
      continue;
    }
    SetState(host, BackendState::kDown);
    // Invalidate rather than retire: the backend is gone, so there is nothing
    // to tear down there — dropping the bindings makes the next inbound packet
    // for each address re-route through placement instead of blackholing into
    // a dead host.
    const size_t invalidated =
        farm_->sharded_gateway().InvalidateHostBindings(host);
    farm_->ledger().Append(LedgerEvent::kCtrlFailover, kNoSession,
                           farm_->loop().Now().nanos(), host, invalidated);
    ++stats_.failovers;
    PK_INFO << "controller: host " << pool_.name(host) << " failed, "
            << invalidated << " bindings invalidated";
    std::erase_if(drains_, [host](const Drain& d) { return d.host == host; });
  }
}

void Controller::ProgressDrains() {
  const TimePoint now = farm_->loop().Now();
  for (size_t i = 0; i < drains_.size();) {
    Drain& drain = drains_[i];
    if (pool_.state(drain.host) != BackendState::kDraining) {
      // Crashed (or otherwise transitioned) mid-drain; failover handled it.
      drains_.erase(drains_.begin() + i);
      continue;
    }
    ShardedGateway& gw = farm_->sharded_gateway();
    if (!drain.forced) {
      stats_.migrations +=
          gw.MigrateHostBindings(drain.host, config_.drain.migrate_per_tick);
    } else {
      // Past the deadline: stop moving sessions, just retire what remains.
      // Cloning stragglers activate on later ticks and are retired then.
      gw.RetireHostBindings(drain.host);
    }
    const size_t remaining = gw.CountHostBindings(drain.host);
    if (remaining == 0) {
      SetState(drain.host, BackendState::kDown);
      farm_->ledger().Append(LedgerEvent::kCtrlDrainEnd, kNoSession,
                             now.nanos(), drain.host, drain.forced ? 1 : 0);
      ++stats_.drains_completed;
      drains_.erase(drains_.begin() + i);
      continue;
    }
    if (!drain.forced && now - drain.started >= config_.drain.deadline) {
      gw.RetireHostBindings(drain.host);
      drain.forced = true;
      ++stats_.drains_forced;
    }
    ++i;
  }
}

void Controller::PromoteWarming() {
  const TimePoint now = farm_->loop().Now();
  for (size_t i = 0; i < pool_.size(); ++i) {
    const HostId host = static_cast<HostId>(i);
    if (pool_.state(host) == BackendState::kWarming &&
        now - pool_.state_since(host) >= config_.warmup) {
      SetState(host, BackendState::kActive);
    }
  }
}

void Controller::ApplyScaling() {
  Watchdog* watchdog = farm_->watchdog();
  if (watchdog == nullptr) {
    return;
  }
  const TimePoint now = farm_->loop().Now();
  for (size_t i = 0; i < config_.scaling.size(); ++i) {
    const ScalingRule& rule = config_.scaling[i];
    const size_t rule_index = watchdog->FindRule(rule.alert);
    if (rule_index == Watchdog::kNoRule ||
        !watchdog->state(rule_index).firing) {
      continue;
    }
    if (last_scale_[i] != TimePoint() && now - last_scale_[i] < rule.cooldown) {
      continue;
    }
    last_scale_[i] = now;
    ExecuteScale(rule, i);
  }
}

void Controller::ExecuteScale(const ScalingRule& rule, size_t rule_index) {
  (void)rule_index;
  uint64_t target = 0;
  switch (rule.action) {
    case ScaleAction::kActivateStandby: {
      HostId host;
      if (!FindStandby(&host)) {
        return;  // nothing parked; the alert keeps firing, maybe later
      }
      ReviveHost(host);
      target = host;
      break;
    }
    case ScaleAction::kDrainWorst: {
      HostId host;
      if (!pool_.PickWorstActive(&host, config_.min_active)) {
        return;
      }
      DrainHost(host);
      target = host;
      break;
    }
    case ScaleAction::kReclaimIdle: {
      const size_t reclaimed =
          farm_->sharded_gateway().ReclaimMostIdle(rule.batch);
      stats_.reclaimed += reclaimed;
      target = reclaimed;
      break;
    }
    case ScaleAction::kRotateImages:
      target = RotateImages();
      break;
  }
  ++stats_.scale_actions;
  farm_->ledger().Append(LedgerEvent::kCtrlScale, kNoSession,
                         farm_->loop().Now().nanos(),
                         static_cast<uint64_t>(rule.action), target);
  PK_INFO << "controller: alert '" << rule.alert << "' -> "
          << ScaleActionName(rule.action) << " (target " << target << ")";
}

void Controller::MaybeRotate() {
  if (config_.rotation_interval <= Duration::Zero()) {
    return;
  }
  const TimePoint now = farm_->loop().Now();
  if (now - last_rotation_ < config_.rotation_interval) {
    return;
  }
  last_rotation_ = now;
  RotateImages();
}

bool Controller::FindStandby(HostId* out) const {
  for (size_t i = 0; i < pool_.size(); ++i) {
    const HostId host = static_cast<HostId>(i);
    if (pool_.state(host) == BackendState::kDown && !farm_->HostCrashed(host)) {
      *out = host;
      return true;
    }
  }
  return false;
}

void Controller::DrainHost(HostId host) {
  PK_CHECK(started_) << "DrainHost before Start";
  if (pool_.state(host) != BackendState::kActive) {
    return;
  }
  const size_t bindings = farm_->sharded_gateway().CountHostBindings(host);
  farm_->ledger().Append(LedgerEvent::kCtrlDrainBegin, kNoSession,
                         farm_->loop().Now().nanos(), host, bindings);
  SetState(host, BackendState::kDraining);
  drains_.push_back(Drain{host, farm_->loop().Now(), false});
  ++stats_.drains_started;
  PK_INFO << "controller: draining " << pool_.name(host) << " (" << bindings
          << " bindings)";
}

void Controller::FailHost(HostId host) {
  PK_CHECK(started_) << "FailHost before Start";
  farm_->CrashHost(host);
  DetectCrashes();  // immediate failover instead of waiting for the tick
}

void Controller::ReviveHost(HostId host) {
  PK_CHECK(started_) << "ReviveHost before Start";
  if (pool_.state(host) != BackendState::kDown) {
    return;
  }
  farm_->RestoreHost(host);
  SetState(host, config_.warmup > Duration::Zero() ? BackendState::kWarming
                                                   : BackendState::kActive);
}

size_t Controller::RotateImages() {
  PK_CHECK(started_) << "RotateImages before Start";
  size_t rotated = 0;
  for (size_t i = 0; i < pool_.size(); ++i) {
    const HostId host = static_cast<HostId>(i);
    if (pool_.state(host) == BackendState::kDown || farm_->HostCrashed(host)) {
      continue;
    }
    CloneServer& server = farm_->server(host);
    for (size_t profile = 0; profile < server.profile_count(); ++profile) {
      ReferenceImage* image =
          server.host().mutable_image(server.image_id(profile));
      if (image == nullptr || image->num_pages() == 0) {
        continue;
      }
      // A small deterministic patch set models the image refresh (security
      // update, config change): a handful of pages get new contents.
      std::vector<ImagePatch> patches;
      patches.reserve(config_.rotation_patch_pages);
      for (uint32_t p = 0; p < config_.rotation_patch_pages; ++p) {
        ImagePatch patch;
        patch.gpfn = static_cast<Gpfn>(rotation_rng_.NextBelow(image->num_pages()));
        patch.bytes.resize(64);
        for (uint8_t& byte : patch.bytes) {
          byte = static_cast<uint8_t>(rotation_rng_.NextBelow(256));
        }
        patches.push_back(std::move(patch));
      }
      if (!image->Refresh(patches)) {
        continue;
      }
      farm_->ledger().Append(LedgerEvent::kCtrlRotate, kNoSession,
                             farm_->loop().Now().nanos(), host,
                             image->current_generation());
      ++rotated;
      ++stats_.rotations;
    }
  }
  return rotated;
}

}  // namespace potemkin
