// Farm controller: the control-plane loop over a running Honeyfarm.
//
// The data plane (gateway shards, clone servers) answers packets; the
// controller decides which backends should be answering at all. It owns a
// BackendPool tracking every clone server's lifecycle state and capacity
// snapshot, and a periodic tick that:
//
//   * detects crashed hosts and fails them over — their bindings are
//     invalidated (not retired through the dead backend) so the next inbound
//     packet re-routes to a healthy host instead of blackholing;
//   * progresses drains — a draining host stops taking new bindings (the
//     pool's admission veto), live sessions are migrated to healthy hosts a
//     batch per tick, and whatever remains at the drain deadline is retired;
//   * promotes warming hosts to active after their warmup period;
//   * executes SLO-driven scaling rules wired to the farm's Watchdog — a
//     firing alert can activate a standby, drain the worst-scoring backend,
//     reclaim idle VMs, or force an image rotation, each gated by a per-rule
//     cooldown so one long alert doesn't thrash the pool;
//   * periodically rotates reference images to a new generation (in-flight
//     clones stay pinned to the generation they booted from; only new clones
//     see the rotated image).
//
// Every decision lands in the farm's event ledger (kCtrl* events) so
// tools/forensics can reconstruct why the pool looked the way it did.
#ifndef SRC_CTRL_CONTROLLER_H_
#define SRC_CTRL_CONTROLLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/event_loop.h"
#include "src/base/rng.h"
#include "src/base/time_types.h"
#include "src/core/honeyfarm.h"
#include "src/ctrl/backend_pool.h"

namespace potemkin {

// What a firing scaling rule does to the pool.
enum class ScaleAction : uint8_t {
  kActivateStandby,  // bring one parked (kDown) or warming host into rotation
  kDrainWorst,       // drain the worst-scoring active backend
  kReclaimIdle,      // retire a batch of the farm's most-idle VMs
  kRotateImages,     // force an immediate image rotation
};

const char* ScaleActionName(ScaleAction action);

// Binds a Watchdog alert (by rule name) to a scale action.
struct ScalingRule {
  std::string alert;  // WatchdogRule::name to watch
  ScaleAction action = ScaleAction::kActivateStandby;
  size_t batch = 16;  // kReclaimIdle: VMs per execution
  // Minimum virtual time between executions of this rule while the alert
  // stays raised.
  Duration cooldown = Duration::Seconds(30);
};

struct DrainPolicy {
  // A drain that hasn't emptied by the deadline force-retires the remainder.
  Duration deadline = Duration::Seconds(30);
  // Sessions migrated off the draining host per controller tick.
  size_t migrate_per_tick = 64;
};

struct ControllerConfig {
  Duration tick = Duration::Millis(500);
  DrainPolicy drain;
  // The last `standby_hosts` farm hosts start parked (kDown, healthy) and
  // only enter rotation through a kActivateStandby scaling action.
  uint32_t standby_hosts = 0;
  // kWarming -> kActive promotion delay (0 activates immediately).
  Duration warmup = Duration::Seconds(2);
  // Periodic image rotation interval; zero disables the schedule (rotation
  // can still be forced via RotateImages or a kRotateImages rule).
  Duration rotation_interval = Duration::Zero();
  // Pages patched per image per rotation, drawn deterministically from
  // `rotation_seed`.
  uint32_t rotation_patch_pages = 4;
  uint64_t rotation_seed = 1234;
  std::vector<ScalingRule> scaling;
  PlacementWeights weights;
  // Drains never shrink the active set below this floor.
  size_t min_active = 2;
};

class Controller {
 public:
  struct Stats {
    uint64_t drains_started = 0;
    uint64_t drains_completed = 0;
    uint64_t drains_forced = 0;  // hit the deadline and force-retired
    uint64_t failovers = 0;
    uint64_t migrations = 0;  // sessions moved off draining hosts
    uint64_t rotations = 0;   // image generations published
    uint64_t scale_actions = 0;
    uint64_t reclaimed = 0;  // VMs retired by kReclaimIdle
  };

  Controller(Honeyfarm* farm, ControllerConfig config);
  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // Registers every farm host with the pool, installs the admission veto and
  // placement score on the farm, registers ctrl.* probes, and schedules the
  // periodic tick. Call once, before (or after) farm.Start().
  void Start();

  // One tick, immediately (tests drive this instead of the schedule).
  void TickOnce() { Tick(); }

  // ---- Operator verbs (also reachable through scaling rules) ----
  // Begins draining `host`: no new bindings, sessions migrate off per tick,
  // stragglers are retired at the deadline. No-op unless the host is active.
  void DrainHost(HostId host);
  // Marks `host` failed and invalidates its bindings now (the tick would
  // detect a crash on its own; this is the explicit verb).
  void FailHost(HostId host);
  // Revives a down host into warming (restores it if crashed).
  void ReviveHost(HostId host);
  // Rotates every image on every serving host to a new generation. Returns
  // images rotated.
  size_t RotateImages();

  BackendPool& pool() { return pool_; }
  const Stats& stats() const { return stats_; }
  const ControllerConfig& config() const { return config_; }

 private:
  struct Drain {
    HostId host = 0;
    TimePoint started;
    bool forced = false;  // deadline passed; remainder was force-retired
  };

  void Tick();
  void DetectCrashes();
  void ProgressDrains();
  void PromoteWarming();
  void ApplyScaling();
  void MaybeRotate();
  void ExecuteScale(const ScalingRule& rule, size_t rule_index);
  bool FindStandby(HostId* out) const;
  void SetState(HostId host, BackendState next);

  Honeyfarm* farm_;
  ControllerConfig config_;
  BackendPool pool_;
  Rng rotation_rng_;
  std::vector<Drain> drains_;
  // Last execution time per scaling rule (parallel to config_.scaling).
  std::vector<TimePoint> last_scale_;
  TimePoint last_rotation_;
  bool started_ = false;
  Stats stats_;
};

}  // namespace potemkin

#endif  // SRC_CTRL_CONTROLLER_H_
