#include "src/ctrl/chaos.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/gateway/containment.h"
#include "src/hv/frame_allocator.h"

namespace potemkin {

const char* ChaosFaultName(ChaosFault fault) {
  switch (fault) {
    case ChaosFault::kBackendCrash:
      return "backend_crash";
    case ChaosFault::kSlowHost:
      return "slow_host";
    case ChaosFault::kAllocDenialStorm:
      return "alloc_denial_storm";
    case ChaosFault::kShardPartition:
      return "shard_partition";
  }
  return "?";
}

ChaosHarness::ChaosHarness(Honeyfarm* farm, Controller* controller,
                           ChaosConfig config)
    : farm_(farm), controller_(controller), config_(config) {
  PK_CHECK(controller_ != nullptr)
      << "chaos harness needs a controller (down-host invariant, crash heals)";
}

std::vector<ChaosEvent> ChaosHarness::GeneratePlan() {
  Rng rng(config_.seed);
  const uint32_t hosts = static_cast<uint32_t>(farm_->server_count());
  const uint32_t shards = farm_->sharded_gateway().shard_count();
  std::vector<ChaosEvent> plan;
  plan.reserve(config_.num_faults);
  // Evenly sliced horizon with in-slot jitter keeps events spread and
  // deterministic; min_gap clamps the jitter from stacking faults.
  const int64_t slot_ns = config_.num_faults == 0
                              ? 0
                              : config_.horizon.nanos() /
                                    static_cast<int64_t>(config_.num_faults);
  int64_t prev_ns = 0;
  for (size_t i = 0; i < config_.num_faults; ++i) {
    ChaosEvent event;
    const int64_t slot_start = static_cast<int64_t>(i) * slot_ns;
    const int64_t jitter =
        slot_ns > 0 ? static_cast<int64_t>(rng.NextBelow(
                          static_cast<uint64_t>(slot_ns)))
                    : 0;
    int64_t at_ns = std::max(slot_start + jitter,
                             prev_ns + config_.min_gap.nanos());
    event.at = Duration::Nanos(at_ns);
    prev_ns = at_ns;
    // Faults cycle through the kinds the farm can express, with the target
    // drawn per event so the schedule varies with the seed.
    const uint32_t kinds = shards > 1 ? 4 : 3;
    event.fault = static_cast<ChaosFault>(rng.NextBelow(kinds));
    if (event.fault == ChaosFault::kShardPartition) {
      const uint32_t from = static_cast<uint32_t>(rng.NextBelow(shards));
      uint32_t to = static_cast<uint32_t>(rng.NextBelow(shards - 1));
      if (to >= from) {
        ++to;
      }
      event.target = (from << 16) | to;
    } else {
      event.target = static_cast<uint32_t>(rng.NextBelow(hosts));
    }
    event.duration =
        Duration::Seconds(5.0 + 10.0 * rng.NextDouble());
    event.magnitude = 2.0 + 6.0 * rng.NextDouble();
    plan.push_back(event);
  }
  return plan;
}

void ChaosHarness::Arm(std::vector<ChaosEvent> plan) {
  PK_CHECK(!armed_) << "chaos harness armed twice";
  armed_ = true;
  plan_ = std::move(plan);
  held_frames_.assign(plan_.size(), {});
  baseline_escapes_ = TotalEscapes();
  EventLoop& loop = farm_->loop();
  for (size_t i = 0; i < plan_.size(); ++i) {
    loop.ScheduleAfter(plan_[i].at, [this, i] { Inject(i); });
    loop.ScheduleAfter(plan_[i].at + plan_[i].duration, [this, i] { Heal(i); });
  }
  loop.SchedulePeriodic(config_.check_interval,
                        [this] { CheckInvariantsOnce(); });
}

void ChaosHarness::Inject(size_t index) {
  const ChaosEvent& event = plan_[index];
  farm_->ledger().Append(LedgerEvent::kChaosFault, kNoSession,
                         farm_->loop().Now().nanos(),
                         static_cast<uint64_t>(event.fault), event.target);
  ++report_.faults_injected;
  PK_INFO << "chaos: inject " << ChaosFaultName(event.fault) << " target "
          << event.target;
  switch (event.fault) {
    case ChaosFault::kBackendCrash:
      farm_->CrashHost(event.target);
      break;
    case ChaosFault::kSlowHost:
      farm_->server(event.target).set_latency_scale(event.magnitude);
      break;
    case ChaosFault::kAllocDenialStorm: {
      // Hold every free frame so real clone allocations hit kDenied — the
      // signal the pool's denial EWMA and any frame-pressure alerts key on.
      FrameAllocator& alloc = farm_->server(event.target).host().allocator();
      std::vector<FrameId>& held = held_frames_[index];
      std::vector<FrameId> chunk;
      while (alloc.free_frames() > 0) {
        const uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(alloc.free_frames(), 4096));
        chunk.resize(n);
        if (alloc.AllocateBatch(n, chunk.data()) != FrameAllocStatus::kOk) {
          break;
        }
        held.insert(held.end(), chunk.begin(), chunk.end());
      }
      break;
    }
    case ChaosFault::kShardPartition: {
      const uint32_t from = event.target >> 16;
      const uint32_t to = event.target & 0xffff;
      farm_->sharded_gateway().SetHandoffPartition(from, to, true);
      farm_->sharded_gateway().SetHandoffPartition(to, from, true);
      break;
    }
  }
}

void ChaosHarness::Heal(size_t index) {
  const ChaosEvent& event = plan_[index];
  switch (event.fault) {
    case ChaosFault::kBackendCrash:
      if (!config_.revive) {
        return;  // stays down; no heal event
      }
      // Revive through the controller so the host re-enters the pool via
      // warming instead of silently flipping back to active.
      controller_->ReviveHost(event.target);
      break;
    case ChaosFault::kSlowHost:
      farm_->server(event.target).set_latency_scale(1.0);
      break;
    case ChaosFault::kAllocDenialStorm: {
      std::vector<FrameId>& held = held_frames_[index];
      if (!held.empty()) {
        farm_->server(event.target).host().allocator().UnrefBatch(held);
        held.clear();
        held.shrink_to_fit();
      }
      break;
    }
    case ChaosFault::kShardPartition: {
      const uint32_t from = event.target >> 16;
      const uint32_t to = event.target & 0xffff;
      farm_->sharded_gateway().SetHandoffPartition(from, to, false);
      farm_->sharded_gateway().SetHandoffPartition(to, from, false);
      // Stalled handoffs flow again on the next pump; do it now so queued
      // cross-shard packets don't wait for unrelated traffic.
      farm_->sharded_gateway().PumpHandoffs();
      break;
    }
  }
  farm_->ledger().Append(LedgerEvent::kChaosHeal, kNoSession,
                         farm_->loop().Now().nanos(),
                         static_cast<uint64_t>(event.fault), event.target);
  ++report_.heals;
  PK_INFO << "chaos: heal " << ChaosFaultName(event.fault) << " target "
          << event.target;
}

uint64_t ChaosHarness::TotalEscapes() const {
  uint64_t total = 0;
  ShardedGateway& gw = farm_->sharded_gateway();
  for (uint32_t s = 0; s < gw.shard_count(); ++s) {
    total += gw.shard(s).containment().stats().escapes_from_infected;
  }
  return total;
}

uint64_t ChaosHarness::CheckInvariantsOnce() {
  ++report_.checks;
  uint64_t violations = 0;

  // 1. Containment: no infected packet reached the real Internet since Arm()
  //    — unless the farm deliberately runs open.
  const uint64_t escapes = TotalEscapes() - baseline_escapes_;
  const bool open_mode =
      farm_->gateway().config().containment.mode == OutboundMode::kOpen;
  if (escapes > report_.containment_escapes && !open_mode) {
    PK_ERROR << "chaos invariant: " << escapes
             << " packet(s) from infected VMs escaped during the run";
    ++violations;
  }
  report_.containment_escapes = std::max(report_.containment_escapes, escapes);

  // 2. Failover: the controller marked hosts down and invalidated their
  //    bindings in the same step, so any binding still pointing at a down
  //    host is a flow the gateway would blackhole.
  uint64_t down_bindings = 0;
  ShardedGateway& gw = farm_->sharded_gateway();
  for (uint32_t s = 0; s < gw.shard_count(); ++s) {
    gw.shard(s).bindings().ForEach([&](const Binding& binding) {
      if (controller_->pool().state(binding.host) == BackendState::kDown) {
        ++down_bindings;
      }
    });
  }
  if (down_bindings > 0) {
    PK_ERROR << "chaos invariant: " << down_bindings
             << " binding(s) still target down hosts";
    ++violations;
  }
  report_.bindings_on_down_hosts =
      std::max(report_.bindings_on_down_hosts, down_bindings);

  // 3. Sharding: every reflection-NAT entry must live on the shard owning its
  //    victim address, or reflected return traffic rewrites on the wrong
  //    shard.
  const uint64_t misplaced = gw.CountMisplacedReflectNat();
  if (misplaced > 0) {
    PK_ERROR << "chaos invariant: " << misplaced
             << " reflection-NAT entries on the wrong shard";
    ++violations;
  }
  report_.nat_misplaced = std::max(report_.nat_misplaced, misplaced);

  report_.violations += violations;
  return violations;
}

ChaosReport ChaosHarness::report() const {
  ChaosReport report = report_;
  report.partition_drops = farm_->sharded_gateway().partition_drops();
  return report;
}

}  // namespace potemkin
