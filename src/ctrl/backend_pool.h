// Backend pool: lifecycle state and capacity-aware placement scores for every
// clone-server backend the farm fronts.
//
// The gateway's ChooseHost only asks "can this host admit one more clone?";
// the pool layers the control plane's view on top: a lifecycle state machine
// (active / warming / draining / down) that gates admission independently of
// capacity, and a placement score blending frame headroom, live-clone count,
// and recent allocation denials (`hv.frames.denied` deltas, EWMA-smoothed) so
// kScored placement steers new bindings away from hosts that are nearly full
// or actively refusing allocations.
//
// Capacity is sampled, not live: `Refresh()` (called once per controller tick)
// snapshots each backend through its CapacityFn, so the per-packet Admits()
// and Score() reads are an index and a compare — nothing on the packet path
// touches an allocator.
#ifndef SRC_CTRL_BACKEND_POOL_H_
#define SRC_CTRL_BACKEND_POOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/time_types.h"
#include "src/hv/types.h"

namespace potemkin {

enum class BackendState : uint8_t {
  kActive,    // in rotation: takes new bindings
  kWarming,   // booting / recovering: no new bindings until promoted
  kDraining,  // being emptied: existing sessions migrate or retire, no new ones
  kDown,      // out of service (crashed, drained, or parked standby)
};

const char* BackendStateName(BackendState state);

// Snapshot of one backend's capacity, filled by its CapacityFn at Refresh.
struct BackendCapacity {
  uint64_t used_frames = 0;
  uint64_t capacity_frames = 0;
  uint64_t live_vms = 0;
  uint64_t denied_requests = 0;  // monotone counter (hv.frames.denied)
  bool can_admit = false;
};

// Placement-score blend. Score =
//   frames * frame_headroom            (1 - used/capacity, in [0,1])
// + vms    * vm_headroom               (1 - live/vm_soft_cap, clamped to >= 0)
// - denial_penalty * denial_pressure   (EWMA of denied deltas, squashed to [0,1))
struct PlacementWeights {
  double frames = 1.0;
  double vms = 0.25;
  double denial_penalty = 0.5;
  double vm_soft_cap = 4096.0;
  // EWMA smoothing for per-refresh denied-counter deltas: next = decay * prev
  // + (1 - decay) * delta.
  double denial_decay = 0.5;
};

class BackendPool {
 public:
  using CapacityFn = std::function<BackendCapacity()>;

  explicit BackendPool(PlacementWeights weights = {}) : weights_(weights) {}

  // Registers backend `host`. Hosts must register densely in id order (the
  // pool indexes by host id, matching the farm's server indexing).
  void Register(HostId host, std::string name, CapacityFn capacity,
                BackendState initial, TimePoint now);
  size_t size() const { return entries_.size(); }
  const std::string& name(HostId host) const;

  BackendState state(HostId host) const;
  void SetState(HostId host, BackendState next, TimePoint now);
  TimePoint state_since(HostId host) const;
  size_t CountInState(BackendState state) const;

  // Admission veto the controller installs as the farm's HostAdmissionFilter:
  // only kActive backends take new bindings.
  bool Admits(HostId host) const {
    return host < entries_.size() &&
           entries_[host].state == BackendState::kActive;
  }

  // Placement score over the last Refresh()'s snapshot; higher is better.
  double Score(HostId host) const;

  // Re-snapshots every backend's capacity and advances the denial EWMAs.
  void Refresh();

  // Highest-scoring kActive backend whose snapshot still admits. False if none.
  bool PickBest(HostId* out) const;
  // Lowest-scoring kActive backend, but only if more than `min_active` active
  // backends remain (so a drain decision cannot empty the pool). False if not.
  bool PickWorstActive(HostId* out, size_t min_active) const;

  const BackendCapacity& capacity(HostId host) const;
  // Smoothed allocation-denial pressure (EWMA of per-refresh denied deltas).
  double denial_pressure(HostId host) const;

  const PlacementWeights& weights() const { return weights_; }

 private:
  struct Entry {
    HostId host = 0;
    std::string name;
    CapacityFn capacity_fn;
    BackendState state = BackendState::kActive;
    TimePoint state_since;
    BackendCapacity cap;
    double denial_ewma = 0.0;
    uint64_t last_denied = 0;
  };

  std::vector<Entry> entries_;  // indexed by host id
  PlacementWeights weights_;
};

}  // namespace potemkin

#endif  // SRC_CTRL_BACKEND_POOL_H_
