// Chaos harness: deterministic fault injection that proves containment holds
// while the farm is degraded.
//
// The containment matrix (tests, EXPERIMENTS.md) establishes what the gateway
// does on a healthy farm. The chaos harness asks the harder question the paper
// cares about: does the farm still contain when backends crash mid-outbreak,
// hosts slow to a crawl, allocators refuse memory, or the shard fabric
// partitions? Faults are generated from a seeded Rng against the virtual
// clock, so a chaos run is fully reproducible — same seed, same farm, same
// fault schedule, same ledger, byte for byte (CI replays a run twice and
// diffs).
//
// While armed, the harness periodically asserts the invariants that define
// containment-under-failure:
//   1. no packet from an infected VM escapes to the real Internet (unless the
//      farm is deliberately in kOpen mode);
//   2. no binding points at a host the controller has marked down — failover
//      must re-route flows, not blackhole them;
//   3. every reflection-NAT entry lives on the shard that owns its victim
//      address (cross-shard reflection stayed coherent through the faults).
// Violations are counted and logged (PK_ERROR), never silently swallowed.
#ifndef SRC_CTRL_CHAOS_H_
#define SRC_CTRL_CHAOS_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time_types.h"
#include "src/core/honeyfarm.h"
#include "src/ctrl/controller.h"
#include "src/hv/types.h"

namespace potemkin {

enum class ChaosFault : uint8_t {
  kBackendCrash,      // hard-kill a clone server mid-flight
  kSlowHost,          // scale a host's clone/destroy latencies up
  kAllocDenialStorm,  // hold a host's free frames so allocations deny
  kShardPartition,    // cut a gateway handoff ring pair (multi-shard only)
};

const char* ChaosFaultName(ChaosFault fault);

struct ChaosEvent {
  Duration at;  // injection time, relative to Arm()
  ChaosFault fault = ChaosFault::kBackendCrash;
  // Host id, or for kShardPartition the packed shard pair (from << 16) | to.
  uint32_t target = 0;
  Duration duration = Duration::Seconds(10);  // heal fires at `at + duration`
  double magnitude = 4.0;                     // kSlowHost latency multiplier
};

struct ChaosConfig {
  uint64_t seed = 7;
  // GeneratePlan spreads `num_faults` events over `horizon`, at least
  // `min_gap` apart.
  Duration horizon = Duration::Minutes(2);
  size_t num_faults = 4;
  Duration min_gap = Duration::Seconds(5);
  Duration check_interval = Duration::Seconds(1);
  // Heal a crashed backend by reviving it through the controller (false
  // leaves it down, exercising the standby/failover path alone).
  bool revive = true;
};

struct ChaosReport {
  uint64_t faults_injected = 0;
  uint64_t heals = 0;
  uint64_t checks = 0;
  uint64_t violations = 0;
  // Invariant detail at the worst check (all must be zero for a clean run).
  uint64_t containment_escapes = 0;
  uint64_t bindings_on_down_hosts = 0;
  uint64_t nat_misplaced = 0;
  // Handoff pushes dropped because a partitioned ring was full (bounded
  // loss, not a violation — the fabric model drops like a real switch).
  uint64_t partition_drops = 0;
};

class ChaosHarness {
 public:
  // `controller` must outlive the harness and be Start()ed before Arm(): the
  // down-host invariant reads its pool, and crash heals revive through it.
  ChaosHarness(Honeyfarm* farm, Controller* controller, ChaosConfig config);

  // Deterministic fault plan from the config seed. Shard partitions are only
  // emitted on multi-shard farms.
  std::vector<ChaosEvent> GeneratePlan();

  // Schedules the plan's injections and heals plus the periodic invariant
  // checks on the farm's loop, starting from the current virtual time.
  void Arm() { Arm(GeneratePlan()); }
  void Arm(std::vector<ChaosEvent> plan);

  // One invariant sweep, immediately. Returns violations found this sweep.
  uint64_t CheckInvariantsOnce();

  const std::vector<ChaosEvent>& plan() const { return plan_; }
  // Report with live totals (partition_drops sampled at call time).
  ChaosReport report() const;

 private:
  void Inject(size_t index);
  void Heal(size_t index);
  uint64_t TotalEscapes() const;

  Honeyfarm* farm_;
  Controller* controller_;
  ChaosConfig config_;
  std::vector<ChaosEvent> plan_;
  // Frames held per plan event during a denial storm (released by the heal).
  std::vector<std::vector<FrameId>> held_frames_;
  uint64_t baseline_escapes_ = 0;
  bool armed_ = false;
  ChaosReport report_;
};

}  // namespace potemkin

#endif  // SRC_CTRL_CHAOS_H_
