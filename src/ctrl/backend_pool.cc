#include "src/ctrl/backend_pool.h"

#include <algorithm>

#include "src/base/log.h"

namespace potemkin {

const char* BackendStateName(BackendState state) {
  switch (state) {
    case BackendState::kActive:
      return "active";
    case BackendState::kWarming:
      return "warming";
    case BackendState::kDraining:
      return "draining";
    case BackendState::kDown:
      return "down";
  }
  return "?";
}

void BackendPool::Register(HostId host, std::string name, CapacityFn capacity,
                           BackendState initial, TimePoint now) {
  PK_CHECK(host == entries_.size())
      << "backends must register densely in host-id order; got " << host
      << " with " << entries_.size() << " registered";
  Entry entry;
  entry.host = host;
  entry.name = std::move(name);
  entry.capacity_fn = std::move(capacity);
  entry.state = initial;
  entry.state_since = now;
  if (entry.capacity_fn) {
    entry.cap = entry.capacity_fn();
    entry.last_denied = entry.cap.denied_requests;
  }
  entries_.push_back(std::move(entry));
}

const std::string& BackendPool::name(HostId host) const {
  PK_CHECK(host < entries_.size());
  return entries_[host].name;
}

BackendState BackendPool::state(HostId host) const {
  PK_CHECK(host < entries_.size());
  return entries_[host].state;
}

void BackendPool::SetState(HostId host, BackendState next, TimePoint now) {
  PK_CHECK(host < entries_.size());
  Entry& entry = entries_[host];
  if (entry.state == next) {
    return;
  }
  entry.state = next;
  entry.state_since = now;
}

TimePoint BackendPool::state_since(HostId host) const {
  PK_CHECK(host < entries_.size());
  return entries_[host].state_since;
}

size_t BackendPool::CountInState(BackendState state) const {
  size_t count = 0;
  for (const Entry& entry : entries_) {
    if (entry.state == state) {
      ++count;
    }
  }
  return count;
}

double BackendPool::Score(HostId host) const {
  if (host >= entries_.size()) {
    return 0.0;
  }
  const Entry& entry = entries_[host];
  const BackendCapacity& cap = entry.cap;
  const double frame_headroom =
      cap.capacity_frames == 0
          ? 0.0
          : 1.0 - static_cast<double>(cap.used_frames) /
                      static_cast<double>(cap.capacity_frames);
  const double vm_headroom = std::max(
      0.0, 1.0 - static_cast<double>(cap.live_vms) / weights_.vm_soft_cap);
  // Squash the unbounded EWMA into [0, 1) so the penalty saturates instead of
  // dominating the blend during a denial storm.
  const double denial_pressure = entry.denial_ewma / (1.0 + entry.denial_ewma);
  return weights_.frames * frame_headroom + weights_.vms * vm_headroom -
         weights_.denial_penalty * denial_pressure;
}

void BackendPool::Refresh() {
  for (Entry& entry : entries_) {
    if (!entry.capacity_fn) {
      continue;
    }
    entry.cap = entry.capacity_fn();
    const uint64_t delta = entry.cap.denied_requests - entry.last_denied;
    entry.last_denied = entry.cap.denied_requests;
    entry.denial_ewma = weights_.denial_decay * entry.denial_ewma +
                        (1.0 - weights_.denial_decay) * static_cast<double>(delta);
  }
}

bool BackendPool::PickBest(HostId* out) const {
  bool found = false;
  double best_score = 0.0;
  for (const Entry& entry : entries_) {
    if (entry.state != BackendState::kActive || !entry.cap.can_admit) {
      continue;
    }
    const double score = Score(entry.host);
    if (!found || score > best_score) {
      best_score = score;
      *out = entry.host;
      found = true;
    }
  }
  return found;
}

bool BackendPool::PickWorstActive(HostId* out, size_t min_active) const {
  if (CountInState(BackendState::kActive) <= min_active) {
    return false;
  }
  bool found = false;
  double worst_score = 0.0;
  for (const Entry& entry : entries_) {
    if (entry.state != BackendState::kActive) {
      continue;
    }
    const double score = Score(entry.host);
    if (!found || score < worst_score) {
      worst_score = score;
      *out = entry.host;
      found = true;
    }
  }
  return found;
}

const BackendCapacity& BackendPool::capacity(HostId host) const {
  PK_CHECK(host < entries_.size());
  return entries_[host].cap;
}

double BackendPool::denial_pressure(HostId host) const {
  PK_CHECK(host < entries_.size());
  return entries_[host].denial_ewma;
}

}  // namespace potemkin
