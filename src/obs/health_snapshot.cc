#include "src/obs/health_snapshot.h"

#include <cstdio>
#include <utility>

#include "src/base/json_util.h"
#include "src/base/log.h"
#include "src/obs/watchdog.h"

namespace potemkin {

std::string HealthSnapshot::ToJson() const {
  std::string out = "{\n  \"snapshot\": ";
  AppendJsonString(out, source);
  out += ",\n  \"schema_version\": ";
  AppendJsonNumber(out, static_cast<double>(kSchemaVersion));
  out += ",\n  \"sequence\": ";
  AppendJsonNumber(out, static_cast<double>(sequence));
  out += ",\n  \"time_ns\": ";
  AppendJsonNumber(out, static_cast<double>(time_ns));
  // Alerts come BEFORE metrics: the string-scan consumers (bench_diff,
  // metrics_dump) treat every {...} after "metrics" as a metric row.
  out += ",\n  \"alerts_schema_version\": ";
  AppendJsonNumber(out, static_cast<double>(kAlertsSchemaVersion));
  out += ",\n  \"alerts\": [";
  for (size_t i = 0; i < alerts.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"alert\": ";
    AppendJsonString(out, alerts[i].rule);
    out += ", \"metric\": ";
    AppendJsonString(out, alerts[i].metric);
    out += ", \"value\": ";
    AppendJsonNumber(out, alerts[i].value);
    out += ", \"threshold\": ";
    AppendJsonNumber(out, alerts[i].threshold);
    out += ", \"firing\": ";
    out += alerts[i].firing ? "true" : "false";
    out += ", \"since_ns\": ";
    AppendJsonNumber(out, static_cast<double>(alerts[i].since_ns));
    out += "}";
  }
  out += alerts.empty() ? "]" : "\n  ]";
  out += ",\n  \"metrics\": [";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"metric\": ";
    AppendJsonString(out, metrics[i].name);
    out += ", \"value\": ";
    AppendJsonNumber(out, metrics[i].value);
    out += ", \"unit\": ";
    AppendJsonString(out, metrics[i].unit);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool HealthSnapshot::WriteJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return written == json.size();
}

HealthMonitor::HealthMonitor(EventLoop* loop, MetricRegistry* registry,
                             std::string source)
    : loop_(loop), registry_(registry), source_(std::move(source)) {
  PK_CHECK(loop_ != nullptr) << "HealthMonitor needs an event loop";
  PK_CHECK(registry_ != nullptr) << "HealthMonitor needs a registry";
}

HealthMonitor::~HealthMonitor() { Stop(); }

void HealthMonitor::Start(Duration interval) {
  if (running_) {
    return;
  }
  running_ = true;
  periodic_ = loop_->SchedulePeriodic(interval, [this] { SampleNow(); });
}

void HealthMonitor::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  loop_->Cancel(periodic_);
  periodic_ = EventHandle{};
}

const HealthSnapshot& HealthMonitor::SampleNow() {
  HealthSnapshot snapshot;
  snapshot.source = source_;
  snapshot.time_ns = loop_->Now().nanos();
  snapshot.sequence = next_sequence_++;
  snapshot.metrics = registry_->Collect();
  if (watchdog_ != nullptr) {
    watchdog_->Evaluate(snapshot);
    watchdog_->AppendAlertSamples(&snapshot.alerts);
  }
  history_.push_back(std::move(snapshot));
  while (history_.size() > kMaxHistory) {
    history_.pop_front();
  }
  if (sink_) {
    sink_(history_.back());
  }
  return history_.back();
}

}  // namespace potemkin
