#include "src/obs/metric_registry.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "src/base/log.h"

namespace potemkin {

namespace {
// Shared sinks for default-constructed handles: recording into an unregistered
// handle is harmless instead of a null deref, and the hot path needs no branch.
std::atomic<uint64_t> g_counter_sink{0};
std::atomic<int64_t> g_gauge_sink{0};
std::atomic<uint64_t> g_histogram_sink[2]{};
const double g_histogram_sink_bound[1] = {0.0};
LatencyHistogram::Cells g_latency_sink{};
}  // namespace

Counter::Counter() : cell_(&g_counter_sink) {}
Gauge::Gauge() : cell_(&g_gauge_sink) {}
FixedHistogram::FixedHistogram()
    : bounds_(g_histogram_sink_bound), num_bounds_(1), counts_(g_histogram_sink) {}
LatencyHistogram::LatencyHistogram() : cells_(&g_latency_sink) {}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    total += cells_->counts[i].load(std::memory_order_relaxed);
  }
  return total;
}

void LatencyHistogram::SnapshotInto(LatencySnapshot* out) const {
  out->total = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    out->counts[i] = cells_->counts[i].load(std::memory_order_relaxed);
    out->total += out->counts[i];
  }
  out->max = cells_->max.load(std::memory_order_relaxed);
}

uint64_t LatencyHistogram::BucketUpperBound(uint32_t index) {
  if (index >= kNumBuckets) {
    index = kNumBuckets - 1;
  }
  if (index < kSubBuckets) {
    return index;
  }
  const uint32_t base = index / kSubBuckets;  // >= 1
  const uint64_t sub = index % kSubBuckets;
  return ((kSubBuckets + sub + 1) << (base - 1)) - 1;
}

void LatencySnapshot::Clear() {
  std::memset(counts, 0, sizeof(counts));
  total = 0;
  max = 0;
}

void LatencySnapshot::MergeFrom(const LatencySnapshot& other) {
  for (uint32_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    counts[i] += other.counts[i];
  }
  total += other.total;
  max = std::max(max, other.max);
}

void LatencySnapshot::SubtractBaseline(const LatencySnapshot& earlier) {
  for (uint32_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    // Saturate rather than wrap: snapshots of a live histogram taken from
    // another thread can be momentarily inconsistent per bucket.
    counts[i] -= std::min(counts[i], earlier.counts[i]);
  }
  total = 0;
  for (uint32_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    total += counts[i];
  }
  // `max` stays cumulative — the cells keep no per-window maximum.
}

uint64_t LatencySnapshot::Quantile(double q) const {
  if (total == 0) {
    return 0;
  }
  // 0-based rank of the q-quantile sample; q=1 stops at the highest non-empty
  // bucket instead of falling through to the top bound, q<=0 at the lowest.
  const double up = std::ceil(q * static_cast<double>(total));
  const uint64_t rank = up >= 1.0 ? static_cast<uint64_t>(up) - 1 : 0;
  uint64_t seen = 0;
  for (uint32_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    seen += counts[i];
    if (seen > rank) {
      return LatencyHistogram::BucketUpperBound(i);
    }
  }
  return LatencyHistogram::kMaxTrackable;
}

uint64_t FixedHistogram::count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= num_bounds_; ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> LinearBuckets(double start, double width, size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

std::vector<double> ExponentialBuckets(double start, double factor, size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Counter MetricRegistry::RegisterCounter(const std::string& name,
                                        const std::string& unit) {
  for (CounterSlot& slot : counters_) {
    if (slot.name == name) {
      return Counter(&slot.value);
    }
  }
  counters_.emplace_back();
  CounterSlot& slot = counters_.back();
  slot.name = name;
  slot.unit = unit;
  return Counter(&slot.value);
}

Gauge MetricRegistry::RegisterGauge(const std::string& name,
                                    const std::string& unit) {
  for (GaugeSlot& slot : gauges_) {
    if (slot.name == name) {
      return Gauge(&slot.value);
    }
  }
  gauges_.emplace_back();
  GaugeSlot& slot = gauges_.back();
  slot.name = name;
  slot.unit = unit;
  return Gauge(&slot.value);
}

FixedHistogram MetricRegistry::RegisterHistogram(const std::string& name,
                                                 const std::string& unit,
                                                 std::vector<double> bounds) {
  PK_CHECK(!bounds.empty()) << "histogram " << name << " needs bucket bounds";
  PK_CHECK(std::is_sorted(bounds.begin(), bounds.end()))
      << "histogram " << name << " bounds must be increasing";
  for (HistogramSlot& slot : histograms_) {
    if (slot.name == name) {
      PK_CHECK(slot.bounds == bounds)
          << "histogram " << name << " re-registered with different bounds";
      return FixedHistogram(slot.bounds.data(), slot.bounds.size(),
                            &slot.counts[0]);
    }
  }
  histograms_.emplace_back();
  HistogramSlot& slot = histograms_.back();
  slot.name = name;
  slot.unit = unit;
  slot.bounds = std::move(bounds);
  slot.rows = {name + "_count", name + "_p50", name + "_p99", name + "_max"};
  // std::deque<atomic> cannot resize (atomics are not movable); grow in place.
  for (size_t i = 0; i <= slot.bounds.size(); ++i) {
    slot.counts.emplace_back(0);
  }
  return FixedHistogram(slot.bounds.data(), slot.bounds.size(), &slot.counts[0]);
}

LatencyHistogram MetricRegistry::RegisterLatency(const std::string& name,
                                                 const std::string& unit) {
  for (LatencySlot& slot : latencies_) {
    if (slot.name == name) {
      return LatencyHistogram(slot.cells.get());
    }
  }
  latencies_.emplace_back();
  LatencySlot& slot = latencies_.back();
  slot.name = name;
  slot.unit = unit;
  slot.rows = {name + "_count", name + "_p50", name + "_p90",
               name + "_p99",   name + "_p999", name + "_max"};
  slot.cells = std::make_unique<LatencyHistogram::Cells>();
  return LatencyHistogram(slot.cells.get());
}

void MetricRegistry::RegisterProbe(const void* owner, const std::string& name,
                                   const std::string& unit,
                                   std::function<double()> probe) {
  probes_.push_back(ProbeSlot{owner, name, unit, std::move(probe)});
}

void MetricRegistry::RemoveProbes(const void* owner) {
  std::erase_if(probes_, [owner](const ProbeSlot& p) { return p.owner == owner; });
}

std::vector<MetricRegistry::Sample> MetricRegistry::Collect() const {
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + 4 * histograms_.size() +
              6 * latencies_.size() + probes_.size());
  for (const CounterSlot& slot : counters_) {
    out.push_back({slot.name,
                   static_cast<double>(slot.value.load(std::memory_order_relaxed)),
                   slot.unit});
  }
  for (const GaugeSlot& slot : gauges_) {
    out.push_back({slot.name,
                   static_cast<double>(slot.value.load(std::memory_order_relaxed)),
                   slot.unit});
  }
  for (const HistogramSlot& slot : histograms_) {
    uint64_t total = 0;
    for (const auto& cell : slot.counts) {
      total += cell.load(std::memory_order_relaxed);
    }
    auto quantile = [&](double q) -> double {
      if (total == 0) {
        return 0.0;
      }
      // Rank of the q-quantile element (0-based): for q=1 this is the last
      // sample, so the scan stops at the highest non-empty bucket instead of
      // falling through to the overall last bound.
      const uint64_t rank = static_cast<uint64_t>(
                                std::ceil(q * static_cast<double>(total))) -
                            1;
      uint64_t seen = 0;
      for (size_t i = 0; i < slot.counts.size(); ++i) {
        seen += slot.counts[i].load(std::memory_order_relaxed);
        if (seen > rank) {
          // Upper bound of the bucket; the overflow bucket reports its lower
          // bound (the largest registered bound) — fixed buckets trade tail
          // resolution for a zero-cost record.
          return slot.bounds[std::min(i, slot.bounds.size() - 1)];
        }
      }
      return slot.bounds.back();
    };
    out.push_back({slot.name + "_count", static_cast<double>(total), "count"});
    out.push_back({slot.name + "_p50", quantile(0.50), slot.unit});
    out.push_back({slot.name + "_p99", quantile(0.99), slot.unit});
    out.push_back({slot.name + "_max", quantile(1.0), slot.unit});
  }
  for (const LatencySlot& slot : latencies_) {
    LatencySnapshot snap;
    LatencyHistogram(slot.cells.get()).SnapshotInto(&snap);
    out.push_back({slot.rows[0], static_cast<double>(snap.total), "count"});
    out.push_back({slot.rows[1], static_cast<double>(snap.Quantile(0.50)),
                   slot.unit});
    out.push_back({slot.rows[2], static_cast<double>(snap.Quantile(0.90)),
                   slot.unit});
    out.push_back({slot.rows[3], static_cast<double>(snap.Quantile(0.99)),
                   slot.unit});
    out.push_back({slot.rows[4], static_cast<double>(snap.Quantile(0.999)),
                   slot.unit});
    out.push_back({slot.rows[5], static_cast<double>(snap.max), slot.unit});
  }
  // Probes: registration order, later same-name registrations replace earlier
  // samples in place (the newest live instance wins).
  std::unordered_map<std::string, size_t> probe_at;
  for (const ProbeSlot& slot : probes_) {
    const Sample sample{slot.name, slot.probe(), slot.unit};
    auto [it, inserted] = probe_at.emplace(slot.name, out.size());
    if (inserted) {
      out.push_back(sample);
    } else {
      out[it->second] = sample;
    }
  }
  return out;
}

void MetricRegistry::VisitSamples(SampleVisitor& visitor) const {
  for (const CounterSlot& slot : counters_) {
    visitor.OnSample(
        slot.name,
        static_cast<double>(slot.value.load(std::memory_order_relaxed)));
  }
  for (const GaugeSlot& slot : gauges_) {
    visitor.OnSample(
        slot.name,
        static_cast<double>(slot.value.load(std::memory_order_relaxed)));
  }
  for (const HistogramSlot& slot : histograms_) {
    uint64_t total = 0;
    for (const auto& cell : slot.counts) {
      total += cell.load(std::memory_order_relaxed);
    }
    auto quantile = [&](double q) -> double {
      if (total == 0) {
        return 0.0;
      }
      const uint64_t rank = static_cast<uint64_t>(
                                std::ceil(q * static_cast<double>(total))) -
                            1;
      uint64_t seen = 0;
      for (size_t i = 0; i < slot.counts.size(); ++i) {
        seen += slot.counts[i].load(std::memory_order_relaxed);
        if (seen > rank) {
          return slot.bounds[std::min(i, slot.bounds.size() - 1)];
        }
      }
      return slot.bounds.back();
    };
    visitor.OnSample(slot.rows[0], static_cast<double>(total));
    visitor.OnSample(slot.rows[1], quantile(0.50));
    visitor.OnSample(slot.rows[2], quantile(0.99));
    visitor.OnSample(slot.rows[3], quantile(1.0));
  }
  for (const LatencySlot& slot : latencies_) {
    // The snapshot is a ~5.8 KB stack object: no heap traffic on the tick.
    LatencySnapshot snap;
    LatencyHistogram(slot.cells.get()).SnapshotInto(&snap);
    visitor.OnSample(slot.rows[0], static_cast<double>(snap.total));
    visitor.OnSample(slot.rows[1], static_cast<double>(snap.Quantile(0.50)));
    visitor.OnSample(slot.rows[2], static_cast<double>(snap.Quantile(0.90)));
    visitor.OnSample(slot.rows[3], static_cast<double>(snap.Quantile(0.99)));
    visitor.OnSample(slot.rows[4], static_cast<double>(snap.Quantile(0.999)));
    visitor.OnSample(slot.rows[5], static_cast<double>(snap.max));
  }
  for (const ProbeSlot& slot : probes_) {
    visitor.OnSample(slot.name, slot.probe());
  }
}

bool MetricRegistry::SnapshotLatency(const std::string& name,
                                     LatencySnapshot* out) const {
  for (const LatencySlot& slot : latencies_) {
    if (slot.name == name) {
      LatencyHistogram(slot.cells.get()).SnapshotInto(out);
      return true;
    }
  }
  out->Clear();
  return false;
}

double MetricRegistry::ValueOf(const std::string& name) const {
  for (const Sample& sample : Collect()) {
    if (sample.name == name) {
      return sample.value;
    }
  }
  return 0.0;
}

MetricRegistry& MetricRegistry::Default() {
  // Leaked for the same reason as PacketPool::Default(): handles may be used
  // from destructors of statics during teardown.
  static MetricRegistry* const registry = new MetricRegistry();
  return *registry;
}

}  // namespace potemkin
