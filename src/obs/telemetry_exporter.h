// Periodic JSONL time-series exporter over the metric registry: the farm's
// flight-data recorder for soak runs.
//
// Where HealthSnapshot is a point-in-time document (one JSON object, built
// with Collect(), allocating freely), the TelemetryExporter is a *stream*: on
// every EventLoop tick it renders one JSONL line — sequence number, virtual
// timestamp, the firing watchdog alert set, and every registry sample row —
// into a fixed ring of pre-reserved strings. Steady-state ticks therefore
// allocate nothing: the registry is walked with VisitSamples (pre-built row
// names, no Collect() vector), lines are rewritten in place, and the ring
// bounds memory no matter how long the soak runs (old lines are overwritten;
// `dropped()` counts them). A sink callback observes every line as it is
// produced, so a soak harness can stream the full series to disk while the
// in-memory window stays bounded.
//
// Schema (kTelemetrySchemaVersion):
//   header:  {"telemetry":"potemkin","schema_version":1,"source":...,
//             "interval_ns":...,"ring_capacity":...}
//   sample:  {"seq":N,"time_ns":T,"alerts":["rule",...],
//             "metrics":[["name",value],...]}
// `metrics` is an array of [name,value] pairs, not an object: VisitSamples
// does not deduplicate probe names (that would allocate), and duplicate keys
// in a JSON object are a parsing trap — an array of pairs is dup-safe.
//
// Everything rendered is *virtual-time deterministic*: same seed, same
// traffic, same tick cadence → byte-identical series (CI diffs them with
// `cmp`). Keep wall-clock measurements (RSS, elapsed real time) out of the
// stream; they belong in BENCH report rows.
#ifndef SRC_OBS_TELEMETRY_EXPORTER_H_
#define SRC_OBS_TELEMETRY_EXPORTER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/event_loop.h"
#include "src/base/time_types.h"
#include "src/obs/health_snapshot.h"
#include "src/obs/metric_registry.h"

namespace potemkin {

class Watchdog;

inline constexpr int kTelemetrySchemaVersion = 1;

struct TelemetryExporterConfig {
  // Virtual-time cadence of Start()'s periodic tick.
  Duration interval = Duration::Seconds(1);
  // Retained-line window; older lines are overwritten (and counted dropped).
  size_t ring_capacity = 1024;
  // Initial capacity of each ring line. Lines longer than this grow their
  // string once and keep the capacity, so only the first oversized tick
  // allocates.
  size_t line_reserve = 8192;
  std::string source = "honeyfarm";
};

class TelemetryExporter final : private MetricRegistry::SampleVisitor {
 public:
  TelemetryExporter(EventLoop* loop, MetricRegistry* registry,
                    TelemetryExporterConfig config = {});
  ~TelemetryExporter() override;
  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  // Alert-state source for the per-line `alerts` array. The exporter only
  // *reads* firing state — evaluation cadence stays the HealthMonitor's.
  void set_watchdog(const Watchdog* watchdog) { watchdog_ = watchdog; }
  // Called with every rendered line (no trailing newline). The reference is
  // into the ring: copy or write it out before returning if it must outlive
  // the tick.
  void set_sink(std::function<void(const std::string&)> sink) {
    sink_ = std::move(sink);
  }

  void Start();
  void Stop();
  bool running() const { return running_; }

  // Renders one sample line immediately (Start()'s tick calls this).
  const std::string& SampleNow();

  // The schema-versioned header line (no trailing newline).
  std::string HeaderLine() const;

  // Header plus the retained window, oldest first, one line each. Returns
  // false when the file cannot be written.
  bool WriteJsonl(const std::string& path) const;

  uint64_t sequence() const { return sequence_; }
  size_t retained() const;
  uint64_t dropped() const;
  // Retained line `i` (0 = oldest retained). Precondition: i < retained().
  const std::string& RetainedLine(size_t i) const;

  const TelemetryExporterConfig& config() const { return config_; }

 private:
  void OnSample(const std::string& name, double value) override;

  EventLoop* loop_;
  MetricRegistry* registry_;
  TelemetryExporterConfig config_;
  const Watchdog* watchdog_ = nullptr;
  std::function<void(const std::string&)> sink_;
  std::vector<std::string> ring_;
  uint64_t sequence_ = 0;
  bool running_ = false;
  EventHandle periodic_;
  // Render state for the visitor callback during SampleNow.
  std::string* render_line_ = nullptr;
  bool render_first_ = false;
};

// One-shot Prometheus text-exposition rendering of a health snapshot: every
// metric row as `potemkin_<sanitized_name>{unit="..."} value`, plus a
// `potemkin_alert_firing{rule="...",metric="..."} 1` series per firing alert.
// Metric names have every character outside [a-zA-Z0-9_:] replaced with '_'.
std::string PrometheusTextFor(const HealthSnapshot& snapshot);

}  // namespace potemkin

#endif  // SRC_OBS_TELEMETRY_EXPORTER_H_
