// Versioned farm-health snapshots over the metric registry.
//
// A `HealthSnapshot` is one frozen view of every registered metric and probe
// (active VMs, binding-table load factor, packet-pool occupancy, dedup hit
// rate, containment verdict counts, recycler churn, …) stamped with the
// virtual time it was taken. Its JSON rendering is *versioned* —
// `schema_version` is bumped on any incompatible change — and deliberately
// shares the flat metric-row shape of the BENCH_<name>.json perf reports, so
// `tools/bench_diff` can threshold-compare two snapshots exactly like two
// bench reports (it rejects unknown schema versions with exit 2).
//
// `HealthMonitor` drives periodic snapshotting off the simulation's
// `EventLoop::SchedulePeriodic`: one retained callback samples the registry at
// a fixed virtual-time cadence, keeps a bounded history, and optionally feeds
// each snapshot to a sink (the metrics_dump CLI, a file writer, a test).
// Sampling cost is proportional to the number of registered metrics, never to
// traffic — the packet path is untouched.
#ifndef SRC_OBS_HEALTH_SNAPSHOT_H_
#define SRC_OBS_HEALTH_SNAPSHOT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/base/event_loop.h"
#include "src/obs/metric_registry.h"

namespace potemkin {

class Watchdog;

// One firing watchdog alert as exported in a snapshot's `alerts` section.
struct AlertSample {
  std::string rule;    // watchdog rule name, e.g. "clone_latency_p99"
  std::string metric;  // snapshot metric the rule watches
  double value = 0.0;  // observed value (or rate) at this snapshot
  double threshold = 0.0;  // the rule's raise threshold
  bool firing = true;
  int64_t since_ns = 0;  // virtual time the alert raised
};

struct HealthSnapshot {
  // Bump on any incompatible change to the JSON layout; bench_diff and the CI
  // schema check pin the versions they understand.
  static constexpr int kSchemaVersion = 1;
  // The `alerts` section carries its own version so alert-shape changes don't
  // force a metrics-schema bump (and vice versa).
  static constexpr int kAlertsSchemaVersion = 1;

  std::string source;  // which farm/component produced it, e.g. "honeyfarm"
  int64_t time_ns = 0;  // virtual time of the sample
  uint64_t sequence = 0;  // monotone per-monitor sample index
  std::vector<AlertSample> alerts;  // watchdog rules firing at sample time
  std::vector<MetricRegistry::Sample> metrics;

  // Versioned JSON. The `alerts` section deliberately precedes `metrics`:
  // bench_diff/metrics_dump scan every {...} after the "metrics" key as a
  // metric row, so alert objects must sit before it.
  //   {
  //     "snapshot": "<source>",
  //     "schema_version": 1,
  //     "sequence": 3,
  //     "time_ns": 5000000000,
  //     "alerts_schema_version": 1,
  //     "alerts": [ {"alert": "...", "metric": "...", "value": ...,
  //                  "threshold": ..., "firing": true, "since_ns": ...}, ... ],
  //     "metrics": [ {"metric": "...", "value": ..., "unit": "..."}, ... ]
  //   }
  std::string ToJson() const;
  // Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJson(const std::string& path) const;
};

class HealthMonitor {
 public:
  using Sink = std::function<void(const HealthSnapshot&)>;

  // Snapshots retained in history(); older ones are discarded.
  static constexpr size_t kMaxHistory = 256;

  HealthMonitor(EventLoop* loop, MetricRegistry* registry, std::string source);
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Begins periodic sampling every `interval` of virtual time. Idempotent
  // while running.
  void Start(Duration interval);
  // Cancels the periodic event; history is retained.
  void Stop();
  bool running() const { return running_; }

  // Takes (and records) a snapshot immediately.
  const HealthSnapshot& SampleNow();

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  // Attaches a watchdog: every sample is evaluated against its rules and the
  // firing set is exported into the snapshot's `alerts` section. Not owned.
  void set_watchdog(Watchdog* watchdog) { watchdog_ = watchdog; }
  Watchdog* watchdog() const { return watchdog_; }
  const std::deque<HealthSnapshot>& history() const { return history_; }
  uint64_t samples_taken() const { return next_sequence_; }

 private:
  EventLoop* loop_;
  MetricRegistry* registry_;
  std::string source_;
  EventHandle periodic_;
  bool running_ = false;
  uint64_t next_sequence_ = 0;
  std::deque<HealthSnapshot> history_;
  Sink sink_;
  Watchdog* watchdog_ = nullptr;
};

}  // namespace potemkin

#endif  // SRC_OBS_HEALTH_SNAPSHOT_H_
