// Phase-span tracing over virtual time, exported as Chrome trace_event JSON.
//
// Components register a *track* (one per clone engine, per pipeline stage, …)
// and record begin/end spans into it. Each track is a bounded ring buffer of
// plain {name, begin, end} records: recording a span into a warm ring writes
// three words and never allocates, and when a ring wraps the oldest spans are
// overwritten (counted as drops) so a long-running farm cannot grow tracing
// memory without bound.
//
// Span names are `const char*` and must point at static-duration strings
// (phase-name tables, string literals) — the ring stores the pointer, not a
// copy. That is what keeps recording allocation-free.
//
// `ToChromeJson()` renders every track as complete "X" (duration) events in
// the Chrome trace_event format — load the file in chrome://tracing or
// Perfetto and the flash-clone pipeline's phase breakdown (map, CoW-mark,
// device attach, dispatch) is the timeline itself, no bespoke timers.
#ifndef SRC_OBS_TRACE_RECORDER_H_
#define SRC_OBS_TRACE_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time_types.h"

namespace potemkin {

class TraceRecorder {
 public:
  using TrackId = uint32_t;

  struct Span {
    const char* name = nullptr;  // static-duration string
    int64_t begin_ns = 0;        // virtual time
    int64_t end_ns = 0;
  };

  // Token for an open span; pass back to End(). Plain value, no allocation.
  struct OpenSpan {
    TrackId track = 0;
    const char* name = nullptr;
    int64_t begin_ns = 0;
  };

  static constexpr size_t kDefaultCapacity = 4096;

  // Registers (or finds, by name) a track. The capacity of an existing track
  // is left unchanged.
  TrackId RegisterTrack(const std::string& name,
                        size_t capacity = kDefaultCapacity);

  // Records a completed span. Overwrites the oldest span when the ring is full.
  void RecordSpan(TrackId track, const char* name, TimePoint begin,
                  TimePoint end) {
    Track& t = tracks_[track];
    Span& span = t.ring[t.head];
    span.name = name;
    span.begin_ns = begin.nanos();
    span.end_ns = end.nanos();
    t.head = t.head + 1 == t.ring.size() ? 0 : t.head + 1;
    if (t.count < t.ring.size()) {
      ++t.count;
    } else {
      ++t.dropped;
    }
  }

  // Scoped recording around a phase: Begin captures the clock, End writes the
  // span. Both are trivially cheap; neither allocates.
  OpenSpan Begin(TrackId track, const char* name, TimePoint now) const {
    return OpenSpan{track, name, now.nanos()};
  }
  void End(const OpenSpan& open, TimePoint now) {
    RecordSpan(open.track, open.name, TimePoint::FromNanos(open.begin_ns), now);
  }

  // Spans currently retained on `track`, oldest first.
  std::vector<Span> Spans(TrackId track) const;
  size_t span_count(TrackId track) const { return tracks_[track].count; }
  uint64_t dropped(TrackId track) const { return tracks_[track].dropped; }
  size_t track_count() const { return tracks_.size(); }
  const std::string& track_name(TrackId track) const {
    return tracks_[track].name;
  }

  // Chrome trace_event JSON: one metadata event naming each track (thread),
  // then every retained span as a complete "X" event with microsecond
  // timestamps. Deterministic output for deterministic virtual-time runs.
  std::string ToChromeJson() const;
  // Writes ToChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  // Process-wide recorder used by components not wired to an explicit one.
  static TraceRecorder& Default();

 private:
  struct Track {
    std::string name;
    std::vector<Span> ring;
    size_t head = 0;   // next write position
    size_t count = 0;  // live spans (<= ring.size())
    uint64_t dropped = 0;
  };

  std::vector<Track> tracks_;
};

}  // namespace potemkin

#endif  // SRC_OBS_TRACE_RECORDER_H_
