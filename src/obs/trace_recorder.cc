#include "src/obs/trace_recorder.h"

#include <cstdio>

#include "src/base/log.h"
#include "src/base/strings.h"

namespace potemkin {

TraceRecorder::TrackId TraceRecorder::RegisterTrack(const std::string& name,
                                                    size_t capacity) {
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].name == name) {
      return static_cast<TrackId>(i);
    }
  }
  PK_CHECK(capacity > 0) << "trace track needs a nonzero ring";
  tracks_.emplace_back();
  Track& track = tracks_.back();
  track.name = name;
  track.ring.resize(capacity);
  return static_cast<TrackId>(tracks_.size() - 1);
}

std::vector<TraceRecorder::Span> TraceRecorder::Spans(TrackId track) const {
  const Track& t = tracks_[track];
  std::vector<Span> out;
  out.reserve(t.count);
  // Oldest span sits at `head` once the ring has wrapped, at 0 before.
  const size_t start = t.count == t.ring.size() ? t.head : 0;
  for (size_t i = 0; i < t.count; ++i) {
    out.push_back(t.ring[(start + i) % t.ring.size()]);
  }
  return out;
}

std::string TraceRecorder::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '\n';
    out += event;
  };
  for (size_t tid = 0; tid < tracks_.size(); ++tid) {
    emit(StrFormat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                   "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
                   tid, tracks_[tid].name.c_str()));
    for (const Span& span : Spans(static_cast<TrackId>(tid))) {
      // trace_event timestamps are microseconds; keep sub-microsecond phase
      // costs visible with fractional values.
      emit(StrFormat("{\"name\":\"%s\",\"cat\":\"potemkin\",\"ph\":\"X\","
                     "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%zu}",
                     span.name, static_cast<double>(span.begin_ns) / 1e3,
                     static_cast<double>(span.end_ns - span.begin_ns) / 1e3,
                     tid));
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return written == json.size();
}

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

}  // namespace potemkin
