#include "src/obs/telemetry_exporter.h"

#include <cstdio>

#include "src/base/json_util.h"
#include "src/base/log.h"
#include "src/obs/watchdog.h"

namespace potemkin {

TelemetryExporter::TelemetryExporter(EventLoop* loop, MetricRegistry* registry,
                                     TelemetryExporterConfig config)
    : loop_(loop), registry_(registry), config_(std::move(config)) {
  PK_CHECK(loop_ != nullptr) << "TelemetryExporter needs an event loop";
  PK_CHECK(registry_ != nullptr) << "TelemetryExporter needs a registry";
  PK_CHECK(config_.ring_capacity > 0) << "telemetry ring needs capacity";
  // All ring allocation happens here, once: steady-state ticks rewrite these
  // strings in place and keep their capacity.
  ring_.resize(config_.ring_capacity);
  for (std::string& line : ring_) {
    line.reserve(config_.line_reserve);
  }
}

TelemetryExporter::~TelemetryExporter() { Stop(); }

void TelemetryExporter::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  periodic_ = loop_->SchedulePeriodic(config_.interval, [this] { SampleNow(); });
}

void TelemetryExporter::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  loop_->Cancel(periodic_);
  periodic_ = EventHandle{};
}

void TelemetryExporter::OnSample(const std::string& name, double value) {
  std::string& line = *render_line_;
  // First sample opens the outer array and its own pair; later ones just
  // their pair.
  line += render_first_ ? "[[" : ",[";
  render_first_ = false;
  AppendJsonString(line, name);
  line += ',';
  AppendJsonNumber(line, value);
  line += ']';
}

const std::string& TelemetryExporter::SampleNow() {
  std::string& line = ring_[sequence_ % ring_.size()];
  line.clear();
  line += "{\"seq\":";
  AppendJsonNumber(line, static_cast<double>(sequence_));
  line += ",\"time_ns\":";
  AppendJsonNumber(line, static_cast<double>(loop_->Now().nanos()));
  line += ",\"alerts\":[";
  if (watchdog_ != nullptr) {
    bool first = true;
    for (size_t i = 0; i < watchdog_->rule_count(); ++i) {
      if (!watchdog_->state(i).firing) {
        continue;
      }
      if (!first) {
        line += ',';
      }
      first = false;
      AppendJsonString(line, watchdog_->rule(i).name);
    }
  }
  line += "],\"metrics\":";
  render_line_ = &line;
  render_first_ = true;
  registry_->VisitSamples(*this);
  if (render_first_) {
    line += "[";  // no samples at all: keep the array well-formed
  }
  line += "]}";
  render_line_ = nullptr;
  ++sequence_;
  if (sink_) {
    sink_(line);
  }
  return line;
}

std::string TelemetryExporter::HeaderLine() const {
  std::string out = "{\"telemetry\":\"potemkin\",\"schema_version\":";
  AppendJsonNumber(out, kTelemetrySchemaVersion);
  out += ",\"source\":";
  AppendJsonString(out, config_.source);
  out += ",\"interval_ns\":";
  AppendJsonNumber(out, static_cast<double>(config_.interval.nanos()));
  out += ",\"ring_capacity\":";
  AppendJsonNumber(out, static_cast<double>(config_.ring_capacity));
  out += "}";
  return out;
}

size_t TelemetryExporter::retained() const {
  return sequence_ < ring_.size() ? static_cast<size_t>(sequence_)
                                  : ring_.size();
}

uint64_t TelemetryExporter::dropped() const {
  return sequence_ > ring_.size() ? sequence_ - ring_.size() : 0;
}

const std::string& TelemetryExporter::RetainedLine(size_t i) const {
  const uint64_t oldest = sequence_ - retained();
  return ring_[(oldest + i) % ring_.size()];
}

bool TelemetryExporter::WriteJsonl(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const std::string header = HeaderLine();
  bool ok = std::fwrite(header.data(), 1, header.size(), file) == header.size();
  ok = ok && std::fputc('\n', file) != EOF;
  for (size_t i = 0; ok && i < retained(); ++i) {
    const std::string& line = RetainedLine(i);
    ok = std::fwrite(line.data(), 1, line.size(), file) == line.size();
    ok = ok && std::fputc('\n', file) != EOF;
  }
  std::fclose(file);
  return ok;
}

namespace {

void AppendPrometheusName(std::string& out, const std::string& name) {
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
}

void AppendPrometheusLabel(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

std::string PrometheusTextFor(const HealthSnapshot& snapshot) {
  std::string out;
  out += "# Potemkin honeyfarm one-shot metrics dump (source=";
  AppendPrometheusLabel(out, snapshot.source);
  out += ", time_ns=";
  AppendJsonNumber(out, static_cast<double>(snapshot.time_ns));
  out += ")\n";
  for (const auto& metric : snapshot.metrics) {
    out += "potemkin_";
    AppendPrometheusName(out, metric.name);
    if (!metric.unit.empty()) {
      out += "{unit=\"";
      AppendPrometheusLabel(out, metric.unit);
      out += "\"}";
    }
    out += ' ';
    AppendJsonNumber(out, metric.value);
    out += '\n';
  }
  for (const auto& alert : snapshot.alerts) {
    out += "potemkin_alert_firing{rule=\"";
    AppendPrometheusLabel(out, alert.rule);
    out += "\",metric=\"";
    AppendPrometheusLabel(out, alert.metric);
    out += "\"} 1\n";
  }
  return out;
}

}  // namespace potemkin
