// Post-mortem flight recorder.
//
// When something page-worthy happens — a containment breach, a watchdog alert,
// a fatal invariant failure — the farm's in-memory forensic state (the tail of
// the event ledger plus the latest health snapshots) is exactly what an
// operator needs, and exactly what dies with the process. The flight recorder
// freezes it first: `Arm()` registers a trip on the event ledger for the
// page-worthy event types, and the trip synchronously writes a self-contained
// post-mortem JSON artifact:
//
//   {
//     "postmortem": "<source>",
//     "schema_version": 1,
//     "reason": "containment_breach",
//     "time_ns": ...,
//     "trigger_seq": ...,
//     "events": [ ...last N ledger records, oldest first... ],
//     "snapshots": [ ...latest two HealthSnapshot objects... ]
//   }
//
// Dumps are bounded (max_dumps) and debounced (min_interval of virtual time)
// so an alert storm cannot flood the disk; the trigger event that was
// suppressed is still in the ledger for the next dump that does land.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>

#include "src/base/time_types.h"
#include "src/obs/event_ledger.h"
#include "src/obs/health_snapshot.h"

namespace potemkin {

struct FlightRecorderConfig {
  std::string output_dir = ".";
  std::string prefix = "postmortem";
  // Ledger tail retained per artifact.
  size_t max_events = 512;
  // Artifacts written over the recorder's lifetime; later triggers are
  // suppressed (the ledger still holds them).
  size_t max_dumps = 8;
  // Minimum virtual time between dumps.
  Duration min_interval = Duration::Seconds(1);
};

class FlightRecorder {
 public:
  static constexpr int kSchemaVersion = 1;

  // `health` may be null (no snapshots section). Neither pointer is owned.
  FlightRecorder(FlightRecorderConfig config, EventLedger* ledger,
                 HealthMonitor* health);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Trips on containment breach, alert raise, and fatal log events. Replaces
  // any trip handler previously installed on the ledger.
  void Arm();
  void Disarm();
  bool armed() const { return armed_; }

  // Writes a post-mortem immediately (also the trip path). Returns the
  // artifact path, or "" when suppressed by the dump budget / debounce or on
  // I/O failure.
  std::string Dump(const std::string& reason, int64_t time_ns,
                   uint64_t trigger_seq = 0);

  // The artifact JSON, for tests and manual dumps.
  std::string BuildDumpJson(const std::string& reason, int64_t time_ns,
                            uint64_t trigger_seq) const;

  uint64_t dumps_written() const { return dumps_written_; }
  uint64_t dumps_suppressed() const { return dumps_suppressed_; }
  const std::string& last_path() const { return last_path_; }
  const FlightRecorderConfig& config() const { return config_; }

 private:
  FlightRecorderConfig config_;
  EventLedger* ledger_;
  HealthMonitor* health_;
  bool armed_ = false;
  uint64_t dumps_written_ = 0;
  uint64_t dumps_suppressed_ = 0;
  int64_t last_dump_ns_ = 0;
  std::string last_path_;
};

}  // namespace potemkin

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
