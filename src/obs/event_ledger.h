// Causal event ledger: the farm's structured flight log.
//
// Aggregate metrics answer "how much"; the ledger answers "what happened to
// THIS attack". Every layer of the datapath appends fixed-size records —
// first contact, clone lifecycle, guest interaction, containment verdict,
// alerts, WARN/ERROR logs — keyed by the SessionId the gateway minted when the
// attack's first packet arrived. `tools/forensics` (and the flight recorder)
// stitch records sharing a session back into one causal per-IP timeline.
//
// The ledger is a single bounded ring of POD records, preallocated up front:
// appending on the packet hot path writes a handful of words and never
// allocates, and when the ring wraps the oldest records are overwritten
// (counted as drops) so a long-running farm cannot grow forensic memory
// without bound. Event arguments are two opaque uint64 slots whose meaning is
// fixed per event type (documented on the enum) — no strings on the hot path.
//
// Rare event types can be armed as *trips*: a mask of types whose append
// synchronously invokes a handler (the flight recorder's dump hook). Trip
// handlers must not append to the ledger they observe.
#ifndef SRC_OBS_EVENT_LEDGER_H_
#define SRC_OBS_EVENT_LEDGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/session.h"

namespace potemkin {

// Argument conventions: `a`/`b` per type. IPs are raw host-order uint32,
// times are virtual nanoseconds.
enum class LedgerEvent : uint8_t {
  kFirstContact = 0,      // a=src ip, b=dst (farm) ip — session minted here
  kPacketDelivered,       // a=src ip, b=frame bytes
  kPacketQueued,          // a=src ip, b=queue depth after enqueue
  kPacketDropped,         // a=src ip, b=drop reason (DropReason)
  kCloneRequested,        // a=dst ip, b=host id
  kCloneStarted,          // a=dst ip, b=host id
  kCloneDone,             // a=vm id, b=clone latency ns
  kCloneFailed,           // a=dst ip, b=host id
  kGuestRequest,          // a=dst port, b=payload bytes
  kGuestResponse,         // a=dst port, b=response bytes
  kExploit,               // a=attacker ip, b=dst port
  kInfection,             // a=victim ip, b=attacker ip
  kScannerFlagged,        // a=src ip, b=distinct targets probed
  kContainmentAllow,      // a=dst ip, b=dst port
  kContainmentDrop,       // a=dst ip, b=dst port
  kContainmentReflect,    // a=original dst ip, b=reflected-to ip
  kContainmentRateLimit,  // a=dst ip, b=dst port
  kContainmentDnsProxy,   // a=dst ip, b=dst port
  kContainmentBreach,     // a=dst ip, b=dst port — infected VM packet released
  kEgressResponse,        // a=dst ip, b=frame bytes (response/backscatter out)
  kVmRetired,             // a=vm id, b=retire reason (RetireReason)
  kAlertRaised,           // a=watchdog rule index, b=observed value (rounded)
  kAlertCleared,          // a=watchdog rule index, b=observed value (rounded)
  kLogWarning,            // a=(uintptr) __FILE__ literal, b=line
  kLogError,              // a=(uintptr) __FILE__ literal, b=line
  kFatal,                 // a=(uintptr) __FILE__ literal, b=line
  // Control-plane decisions (src/ctrl): the controller's state machine writes
  // its transitions into the same causal timeline the datapath uses, so a
  // drain or failover is visible between the packets it affected.
  kCtrlState,             // a=host id, b=new BackendState
  kCtrlDrainBegin,        // a=host id, b=bindings on the host at drain start
  kCtrlDrainEnd,          // a=host id, b=1 if the deadline forced retirement
  kCtrlMigrate,           // a=farm ip, b=(from_host << 32) | to_host
  kCtrlFailover,          // a=host id, b=bindings invalidated
  kCtrlRotate,            // a=host id, b=new image generation
  kCtrlScale,             // a=ScaleAction, b=action target (host id / batch)
  kChaosFault,            // a=ChaosFault kind, b=target (host / shard pair)
  kChaosHeal,             // a=ChaosFault kind, b=target
  // Service-persona session progress (src/guest/persona): stateful protocol
  // emulators record their state-machine transitions and decoy serves so a
  // forensic timeline shows how deep an attacker got into each facade.
  kPersonaState,          // a=(PersonaKind << 8) | new state, b=dst port
  kPersonaAuthFailure,    // a=failed attempts so far, b=dst port
  kPersonaLockout,        // a=src ip, b=dst port
  kPersonaDecoy,          // a=decoy document id, b=bytes served
  // Adversarial post-compromise behavior (src/guest/persona/escape): scripted
  // escalation and escape attempts containment must catch and attribute.
  kPersonaEscalation,     // a=vm ip, b=technique id
  kEscapeAttempt,         // a=target (non-farm) ip, b=EscapeKind
  kMalwareStage,          // a=stage number, b=vm ip (multi-stage droppers)
  kCount,                 // keep last; must stay <= 64 for the trip mask
};

// Stable snake_case name used in every JSON export ("first_contact", ...).
const char* LedgerEventName(LedgerEvent type);

// Drop reasons carried in `b` of kPacketDropped.
enum class LedgerDropReason : uint8_t {
  kQueueFull = 0,
  kNotQueueing = 1,
  kNoCapacity = 2,
  kTtlExpired = 3,
  kScannerFiltered = 4,
};

class EventLedger {
 public:
  // Bump on any incompatible change to the JSONL / post-mortem record layout.
  static constexpr int kSchemaVersion = 1;
  static constexpr size_t kDefaultCapacity = 8192;

  struct Record {
    uint64_t seq = 0;     // monotone append index; never wraps, never reused
    int64_t time_ns = 0;  // virtual time of the event
    uint64_t a = 0;       // per-type argument (see LedgerEvent)
    uint64_t b = 0;
    SessionId session = kNoSession;
    LedgerEvent type = LedgerEvent::kFirstContact;
  };

  using TripHandler = std::function<void(const Record&)>;

  explicit EventLedger(size_t capacity = kDefaultCapacity);

  // Discards all retained records and reallocates the ring. NOT hot-path safe;
  // call at setup time (e.g. a farm sizing its ledger for a long replay).
  void Reset(size_t capacity);

  // Hot-path append: writes one preallocated record, no heap traffic. The
  // caller supplies the virtual time (the ledger has no clock of its own).
  void Append(LedgerEvent type, SessionId session, int64_t time_ns,
              uint64_t a = 0, uint64_t b = 0) {
    Record& r = ring_[head_];
    r.seq = next_seq_++;
    r.time_ns = time_ns;
    r.a = a;
    r.b = b;
    r.session = session;
    r.type = type;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
    if ((trip_mask_ >> static_cast<unsigned>(type)) & 1u) {
      if (trip_) {
        trip_(r);
      }
    }
  }

  // Retained records, oldest first.
  std::vector<Record> Events() const;
  // Retained records carrying `session`, oldest first.
  std::vector<Record> EventsForSession(SessionId session) const;

  size_t size() const { return count_; }
  size_t capacity() const { return ring_.size(); }
  uint64_t appended() const { return next_seq_; }
  uint64_t dropped() const { return dropped_; }

  // Arms `handler` to run synchronously whenever a type in `mask` is appended
  // (flight-recorder hook). The handler MUST NOT append to this ledger.
  static constexpr uint64_t TripBit(LedgerEvent type) {
    return 1ull << static_cast<unsigned>(type);
  }
  void SetTrip(uint64_t mask, TripHandler handler);
  void ClearTrip();
  uint64_t trip_mask() const { return trip_mask_; }

  // JSON Lines: one meta line, then one object per retained record:
  //   {"ledger":"potemkin","schema_version":1,"appended":N,"dropped":D}
  //   {"seq":0,"time_ns":0,"session":1,"type":"first_contact","a":...,"b":...}
  // Log/fatal records additionally carry "site":"file.cc:42".
  std::string ToJsonLines() const;
  bool WriteJsonLines(const std::string& path) const;

  // Chrome trace_event JSON: one track (tid) per session — tid 0 collects
  // session-less farm events — each record an instant ("i") event.
  std::string ToChromeJson() const;
  bool WriteChromeJson(const std::string& path) const;

  // Renders one record as the JSONL object (no trailing newline); shared with
  // the flight recorder so the two artifacts stay byte-compatible.
  static void AppendRecordJson(std::string& out, const Record& record);

  // Routes WARN/ERROR logs (and fatal checks) through `ledger` via the base
  // log hook, so free-form logs and structured events share one ordered
  // timeline. `clock` supplies the virtual time to stamp; null `ledger`
  // uninstalls the hook. Replaces any previously installed hook.
  static void InstallLogHook(EventLedger* ledger,
                             std::function<int64_t()> clock);

  // Process-wide ledger for components not wired to an explicit one.
  static EventLedger& Default();

 private:
  std::vector<Record> ring_;
  // Write-cursor block, padded onto its own cache line: every Append mutates
  // all four fields, and without the alignment they could share a line with
  // the ring's vector header (or an adjacent object in a per-shard
  // Observability bundle), false-sharing the hottest store in the forensic
  // path against readers of the ring pointer.
  alignas(64) size_t head_ = 0;  // next write position
  size_t count_ = 0;             // live records (<= ring_.size())
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
  uint64_t trip_mask_ = 0;
  TripHandler trip_;
};

static_assert(static_cast<unsigned>(LedgerEvent::kCount) <= 64,
              "trip mask is one bit per event type");

}  // namespace potemkin

#endif  // SRC_OBS_EVENT_LEDGER_H_
