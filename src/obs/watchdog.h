// Declarative SLO watchdog over HealthSnapshot history.
//
// A `WatchdogRule` names one snapshot metric row and an operating envelope for
// it; the `Watchdog` evaluates every rule against each snapshot the
// HealthMonitor takes (so the cadence is the snapshot cadence — EventLoop
// virtual time, never the packet path). Three detector kinds:
//
//   kAbove / kBelow  absolute threshold on the sampled value
//   kRateAbove       threshold on d(value)/dt between consecutive snapshots,
//                    in units per *virtual* second (catches counters that
//                    start climbing, e.g. containment escapes, drop storms)
//   kStuck           a gauge that should be moving has reported the identical
//                    value for N consecutive snapshots (wedged recycler,
//                    frozen clone pipeline)
//
// Alerts have *hysteresis*: a rule fires crossing `raise` and clears only
// crossing `clear` back, so a value oscillating near the threshold produces
// exactly one alert, not one per snapshot. `cooldown` additionally gates
// re-raises after a clear. Transitions are appended to the event ledger
// (kAlertRaised / kAlertCleared with the rule index in `a`), and the firing
// set is exported into the versioned `alerts` section of each snapshot's JSON.
#ifndef SRC_OBS_WATCHDOG_H_
#define SRC_OBS_WATCHDOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time_types.h"
#include "src/obs/event_ledger.h"
#include "src/obs/health_snapshot.h"

namespace potemkin {

enum class WatchdogKind : uint8_t {
  kAbove,
  kBelow,
  kRateAbove,
  kStuck,
};

struct WatchdogRule {
  std::string name;    // alert name, e.g. "clone_latency_p99"
  std::string metric;  // snapshot metric row to watch
  WatchdogKind kind = WatchdogKind::kAbove;
  // Fire crossing `raise`; clear only crossing `clear` (hysteresis). For
  // kRateAbove both are in metric units per virtual second. Unused for kStuck.
  double raise = 0.0;
  double clear = 0.0;
  // Minimum virtual time between a clear and the next raise of the same rule.
  Duration cooldown = Duration::Seconds(30);
  // kStuck only: consecutive identical samples before the rule fires.
  size_t stuck_samples = 5;
  // kAbove/kBelow/kRateAbove: consecutive breaching snapshots required before
  // the rule raises. The default (1) keeps the historical fire-on-first-breach
  // behavior; percentile rules set this higher so a single-window tail spike
  // (one slow clone skewing a p99) does not page — the paper's latency claims
  // are about sustained behavior, and so are the alerts on them.
  size_t for_windows = 1;
};

class Watchdog {
 public:
  // Per-rule evaluation state, exposed for tests and the alerts exporter.
  struct RuleState {
    bool firing = false;
    bool has_prev = false;
    double prev_value = 0.0;
    int64_t prev_time_ns = 0;
    double observed = 0.0;  // last evaluated value (or rate) for the rule
    int64_t since_ns = 0;   // virtual time of the last raise/clear transition
    int64_t last_raise_ns = 0;
    size_t unchanged = 0;  // kStuck: consecutive identical samples seen
    size_t breach_streak = 0;  // consecutive breaching snapshots (for_windows)
    uint64_t raises = 0;
    uint64_t clears = 0;
  };

  // Transitions are appended to `ledger` (null: no ledger emission).
  explicit Watchdog(EventLedger* ledger = nullptr);

  void AddRule(WatchdogRule rule);
  void AddRules(std::vector<WatchdogRule> rules);

  // Evaluates every rule against one snapshot (rules whose metric row is
  // absent keep their previous state). Called by HealthMonitor::SampleNow.
  void Evaluate(const HealthSnapshot& snapshot);

  // Appends one AlertSample per *firing* rule — the snapshot's `alerts`
  // section.
  void AppendAlertSamples(std::vector<AlertSample>* out) const;

  size_t rule_count() const { return rules_.size(); }
  const WatchdogRule& rule(size_t index) const { return rules_[index]; }
  const RuleState& state(size_t index) const { return states_[index]; }
  // Index of the rule named `name`, or npos. Lets policy layers (the farm
  // controller) key off alert names instead of fragile positional indices.
  static constexpr size_t kNoRule = static_cast<size_t>(-1);
  size_t FindRule(const std::string& name) const;
  uint64_t evaluations() const { return evaluations_; }
  uint64_t total_raises() const;

 private:
  void Raise(size_t index, double observed, int64_t now_ns);
  void Clear(size_t index, double observed, int64_t now_ns);

  EventLedger* ledger_;
  std::vector<WatchdogRule> rules_;
  std::vector<RuleState> states_;
  uint64_t evaluations_ = 0;
};

// The farm's starter rule set from the issue: clone-latency p99, frame-pool
// watermark, recycler backlog, containment-breach counter, gateway drop rate.
// Metric names match the probes the gateway/clone-engine/honeyfarm register.
std::vector<WatchdogRule> DefaultFarmRules();

}  // namespace potemkin

#endif  // SRC_OBS_WATCHDOG_H_
