// Farm-wide metric registry: the single telemetry surface every component
// reports through, designed so that instrumenting a hot path costs one relaxed
// atomic add and nothing else.
//
// The registry separates *registration* (cold: may allocate, happens once per
// component construction) from *recording* (hot: zero allocations, zero locks,
// no branches on registry internals). Registration hands back a small handle —
// `Counter`, `Gauge`, or `FixedHistogram` — that points directly at atomic
// storage owned by the registry; the handle's increment methods compile down to
// a single `fetch_add(std::memory_order_relaxed)` on a pre-resolved address.
// Storage lives in deques, whose elements never move, so handles stay valid for
// the registry's lifetime no matter how many metrics register after them.
//
// Four metric kinds cover the farm:
//   * Counter          — monotone event count (packets delivered, clones done)
//   * Gauge            — instantaneous signed level (queue depth)
//   * FixedHistogram   — distribution over fixed, registration-time bucket
//                        bounds (batch bin sizes, frame bytes); recording scans
//                        a handful of bounds and does one atomic add
//   * LatencyHistogram — log-linear (HDR-style) distribution over the full
//                        uint64 range at ~6.25% relative precision; recording
//                        is a bit-scan plus one relaxed atomic add, and the
//                        collect path extracts p50/p90/p99/p999 + exact max.
//                        Per-shard instances snapshot into POD
//                        `LatencySnapshot`s that merge deterministically in
//                        shard order.
//
// plus *probes*: named callbacks sampled only when a snapshot is taken, for
// components that already keep their own counters (binding-table load factor,
// pool occupancy, containment verdicts). A probe costs its owner nothing on the
// packet path. Probes capture component pointers, so owners MUST call
// `RemoveProbes(owner)` from their destructor (the instrumented components in
// this repo all do).
//
// Registering the same name twice returns a handle to the same storage —
// multiple instances of a component (common in tests sharing the process-wide
// default registry) aggregate rather than collide.
#ifndef SRC_OBS_METRIC_REGISTRY_H_
#define SRC_OBS_METRIC_REGISTRY_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace potemkin {

class MetricRegistry;

// Handle to a monotone counter. Default-constructed handles target a shared
// sink cell, so an uninstrumented component never branches or faults.
class Counter {
 public:
  Counter();
  void Inc(uint64_t n = 1) { cell_->fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  explicit Counter(std::atomic<uint64_t>* cell) : cell_(cell) {}
  std::atomic<uint64_t>* cell_;
};

// Handle to an instantaneous signed level.
class Gauge {
 public:
  Gauge();
  void Set(int64_t v) { cell_->store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { cell_->fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  explicit Gauge(std::atomic<int64_t>* cell) : cell_(cell) {}
  std::atomic<int64_t>* cell_;
};

// Handle to a histogram over fixed bucket bounds. `Record` places the value in
// the first bucket whose upper bound admits it (the last bucket is unbounded)
// with a short linear scan over the registration-time bounds — bounded work,
// no allocation, one relaxed atomic add.
class FixedHistogram {
 public:
  FixedHistogram();
  void Record(double value) {
    size_t i = 0;
    while (i < num_bounds_ && value > bounds_[i]) {
      ++i;
    }
    counts_[i].fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t count() const;

 private:
  friend class MetricRegistry;
  FixedHistogram(const double* bounds, size_t num_bounds,
                 std::atomic<uint64_t>* counts)
      : bounds_(bounds), num_bounds_(num_bounds), counts_(counts) {}
  const double* bounds_;
  size_t num_bounds_;
  std::atomic<uint64_t>* counts_;  // num_bounds_ + 1 cells
};

struct LatencySnapshot;

// Handle to a zero-allocation log-linear (HDR-style) histogram for latency and
// size distributions whose dynamic range is unknown at registration time.
//
// Bucket layout: values below kSubBuckets (16) get one bucket each (exact);
// above that, every power-of-two range splits into 16 sub-buckets, so the
// bucket upper bound over-reports a recorded value by at most 1/16 (~6.25%).
// Values are clamped to kMaxTrackable = 2^48-1 — anything larger lands in the
// saturating top bucket (a separate `max` cell still remembers the exact raw
// maximum). Total footprint is kNumBuckets (720) fixed POD cells per instance.
//
// Record cost: one branch-free bucket index (a count-leading-zeros plus
// shifts) and one relaxed atomic add, plus a relaxed load of the running max
// that only escalates to a CAS when the sample is a new maximum — by
// construction a rare event in steady state.
class LatencyHistogram {
 public:
  static constexpr uint32_t kSubBucketBits = 4;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;  // 16
  static constexpr uint32_t kMaxExponent = 48;
  static constexpr uint32_t kNumBuckets =
      (kMaxExponent - kSubBucketBits) * kSubBuckets + kSubBuckets;  // 720
  static constexpr uint64_t kMaxTrackable =
      (uint64_t{1} << kMaxExponent) - 1;

  // The POD cell block a handle points at. Owned by the registry (or the
  // shared sink for default-constructed handles); never moves.
  struct Cells {
    std::atomic<uint64_t> counts[kNumBuckets]{};
    alignas(64) std::atomic<uint64_t> max{0};
  };

  LatencyHistogram();

  void Record(uint64_t value) {
    cells_->counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = cells_->max.load(std::memory_order_relaxed);
    while (value > prev &&
           !cells_->max.compare_exchange_weak(prev, value,
                                              std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const;
  // Exact raw maximum ever recorded (not a bucket bound), 0 when empty.
  uint64_t max_value() const {
    return cells_->max.load(std::memory_order_relaxed);
  }

  // Copies the current cell values into `out` (overwrites it). Per-shard
  // snapshots taken this way merge deterministically via
  // LatencySnapshot::MergeFrom in shard order.
  void SnapshotInto(LatencySnapshot* out) const;

  // Bucket index for `value` after clamping to kMaxTrackable.
  static uint32_t BucketIndex(uint64_t value) {
    if (value > kMaxTrackable) {
      value = kMaxTrackable;
    }
    if (value < kSubBuckets) {
      return static_cast<uint32_t>(value);
    }
    const uint32_t msb = 63u - static_cast<uint32_t>(std::countl_zero(value));
    return (msb - kSubBucketBits + 1) * kSubBuckets +
           static_cast<uint32_t>((value >> (msb - kSubBucketBits)) &
                                 (kSubBuckets - 1));
  }
  // Largest value that lands in bucket `index` (inverse of BucketIndex).
  static uint64_t BucketUpperBound(uint32_t index);

 private:
  friend class MetricRegistry;
  explicit LatencyHistogram(Cells* cells) : cells_(cells) {}
  Cells* cells_;
};

// POD snapshot of a LatencyHistogram: plain counters, no atomics, safe to
// copy, diff, and merge. Merging per-shard snapshots in ascending shard order
// is the deterministic reduction used by the sharded gateway and the soak
// harness's windowed-percentile checks.
struct LatencySnapshot {
  uint64_t counts[LatencyHistogram::kNumBuckets];
  uint64_t total = 0;
  uint64_t max = 0;

  void Clear();
  // Accumulates `other` into this snapshot (bucket-wise add, max of maxes).
  void MergeFrom(const LatencySnapshot& other);
  // Subtracts an earlier snapshot of the same histogram, leaving only the
  // samples recorded in the window between the two (for "flat p99" checks).
  void SubtractBaseline(const LatencySnapshot& earlier);
  // Bucket-upper-bound estimate of the q-quantile (q in (0, 1]); 0 when
  // empty. Quantile(1.0) reports the top non-empty bucket's bound, which may
  // exceed `max` by the bucket width.
  uint64_t Quantile(double q) const;
};

// Convenience bucket-bound builders for RegisterHistogram.
std::vector<double> LinearBuckets(double start, double width, size_t count);
std::vector<double> ExponentialBuckets(double start, double factor, size_t count);

class MetricRegistry {
 public:
  struct Sample {
    std::string name;
    double value = 0.0;
    std::string unit;
  };

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // ---- Registration (cold path; may allocate) ----
  Counter RegisterCounter(const std::string& name, const std::string& unit);
  Gauge RegisterGauge(const std::string& name, const std::string& unit);
  // `bounds` must be strictly increasing; an implicit overflow bucket is added.
  FixedHistogram RegisterHistogram(const std::string& name,
                                   const std::string& unit,
                                   std::vector<double> bounds);
  // Log-linear histogram over uint64 values (latencies in ns, sizes in
  // packets/pages). Re-registering a name returns the same storage, so shard
  // instances sharing a registry aggregate into one farm-wide distribution.
  LatencyHistogram RegisterLatency(const std::string& name,
                                   const std::string& unit);
  // Registers a callback sampled at Collect() time. `owner` keys removal; the
  // callback must stay valid until RemoveProbes(owner).
  void RegisterProbe(const void* owner, const std::string& name,
                     const std::string& unit, std::function<double()> probe);
  // Drops every probe registered under `owner` (called from owner destructors).
  void RemoveProbes(const void* owner);

  // ---- Collection (snapshot path; never taken per packet) ----
  // Counters and gauges emit one sample each; fixed histograms emit
  // `<name>_count`, `<name>_p50`, `<name>_p99`, and `<name>_max`
  // (bucket-upper-bound estimates); latency histograms emit `<name>_count`,
  // `<name>_p50`, `<name>_p90`, `<name>_p99`, `<name>_p999` (bucket-upper-
  // bound estimates) and `<name>_max` (exact); probes emit their sampled
  // value. Duplicate probe names keep the most recent registration. Order is
  // registration order.
  std::vector<Sample> Collect() const;

  // Zero-allocation alternative to Collect() for periodic exporters: walks
  // every sample row in the same registration order and hands the visitor
  // stable `const std::string&` names (histogram-derived row names are
  // pre-built at registration). Differences from Collect(): duplicate probe
  // names are NOT deduplicated — consumers whose format tolerates duplicate
  // keys (the telemetry exporter's array-of-pairs schema) can take ticks
  // without touching the heap.
  class SampleVisitor {
   public:
    virtual ~SampleVisitor() = default;
    virtual void OnSample(const std::string& name, double value) = 0;
  };
  void VisitSamples(SampleVisitor& visitor) const;

  // Copies the named latency histogram's cells into `out`. Returns false (and
  // leaves `out` cleared) when no such histogram is registered.
  bool SnapshotLatency(const std::string& name, LatencySnapshot* out) const;

  // Cold lookup of a single collected value by name (tests, benches).
  // Returns 0.0 when absent.
  double ValueOf(const std::string& name) const;

  size_t counter_count() const { return counters_.size(); }
  size_t probe_count() const { return probes_.size(); }

  // Process-wide registry used by components not wired to an explicit one.
  static MetricRegistry& Default();

 private:
  // The value cells are cache-line aligned so two counters that registered
  // adjacently (and therefore sit in neighboring deque slots) never share a
  // line: with per-shard gateway threads hammering different counters, false
  // sharing would otherwise turn independent relaxed adds into a coherence
  // ping-pong. Cold metadata (name/unit) may share the line; only the cell is
  // written on the hot path.
  struct CounterSlot {
    std::string name;
    std::string unit;
    alignas(64) std::atomic<uint64_t> value{0};
  };
  struct GaugeSlot {
    std::string name;
    std::string unit;
    alignas(64) std::atomic<int64_t> value{0};
  };
  struct HistogramSlot {
    std::string name;
    std::string unit;
    std::vector<double> bounds;
    std::deque<std::atomic<uint64_t>> counts;  // bounds.size() + 1, stable
    // Pre-built derived row names (_count/_p50/_p99/_max) so VisitSamples
    // never concatenates strings on an exporter tick.
    std::array<std::string, 4> rows;
  };
  struct LatencySlot {
    std::string name;
    std::string unit;
    // Pre-built derived row names: _count/_p50/_p90/_p99/_p999/_max.
    std::array<std::string, 6> rows;
    // Heap block (~5.8 KB of cells) with a stable address; the deque slot
    // itself also never moves, but the indirection keeps slots cheap to walk.
    std::unique_ptr<LatencyHistogram::Cells> cells;
  };
  struct ProbeSlot {
    const void* owner;
    std::string name;
    std::string unit;
    std::function<double()> probe;
  };

  // Deques: element addresses are stable across growth, which is what keeps
  // previously handed-out handles valid.
  std::deque<CounterSlot> counters_;
  std::deque<GaugeSlot> gauges_;
  std::deque<HistogramSlot> histograms_;
  std::deque<LatencySlot> latencies_;
  std::vector<ProbeSlot> probes_;
};

}  // namespace potemkin

#endif  // SRC_OBS_METRIC_REGISTRY_H_
