// Farm-wide metric registry: the single telemetry surface every component
// reports through, designed so that instrumenting a hot path costs one relaxed
// atomic add and nothing else.
//
// The registry separates *registration* (cold: may allocate, happens once per
// component construction) from *recording* (hot: zero allocations, zero locks,
// no branches on registry internals). Registration hands back a small handle —
// `Counter`, `Gauge`, or `FixedHistogram` — that points directly at atomic
// storage owned by the registry; the handle's increment methods compile down to
// a single `fetch_add(std::memory_order_relaxed)` on a pre-resolved address.
// Storage lives in deques, whose elements never move, so handles stay valid for
// the registry's lifetime no matter how many metrics register after them.
//
// Three metric kinds cover the farm:
//   * Counter        — monotone event count (packets delivered, clones done)
//   * Gauge          — instantaneous signed level (queue depth)
//   * FixedHistogram — distribution over fixed, registration-time bucket
//                      bounds (batch bin sizes, frame bytes); recording scans
//                      a handful of bounds and does one atomic add
//
// plus *probes*: named callbacks sampled only when a snapshot is taken, for
// components that already keep their own counters (binding-table load factor,
// pool occupancy, containment verdicts). A probe costs its owner nothing on the
// packet path. Probes capture component pointers, so owners MUST call
// `RemoveProbes(owner)` from their destructor (the instrumented components in
// this repo all do).
//
// Registering the same name twice returns a handle to the same storage —
// multiple instances of a component (common in tests sharing the process-wide
// default registry) aggregate rather than collide.
#ifndef SRC_OBS_METRIC_REGISTRY_H_
#define SRC_OBS_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace potemkin {

class MetricRegistry;

// Handle to a monotone counter. Default-constructed handles target a shared
// sink cell, so an uninstrumented component never branches or faults.
class Counter {
 public:
  Counter();
  void Inc(uint64_t n = 1) { cell_->fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  explicit Counter(std::atomic<uint64_t>* cell) : cell_(cell) {}
  std::atomic<uint64_t>* cell_;
};

// Handle to an instantaneous signed level.
class Gauge {
 public:
  Gauge();
  void Set(int64_t v) { cell_->store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { cell_->fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  explicit Gauge(std::atomic<int64_t>* cell) : cell_(cell) {}
  std::atomic<int64_t>* cell_;
};

// Handle to a histogram over fixed bucket bounds. `Record` places the value in
// the first bucket whose upper bound admits it (the last bucket is unbounded)
// with a short linear scan over the registration-time bounds — bounded work,
// no allocation, one relaxed atomic add.
class FixedHistogram {
 public:
  FixedHistogram();
  void Record(double value) {
    size_t i = 0;
    while (i < num_bounds_ && value > bounds_[i]) {
      ++i;
    }
    counts_[i].fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t count() const;

 private:
  friend class MetricRegistry;
  FixedHistogram(const double* bounds, size_t num_bounds,
                 std::atomic<uint64_t>* counts)
      : bounds_(bounds), num_bounds_(num_bounds), counts_(counts) {}
  const double* bounds_;
  size_t num_bounds_;
  std::atomic<uint64_t>* counts_;  // num_bounds_ + 1 cells
};

// Convenience bucket-bound builders for RegisterHistogram.
std::vector<double> LinearBuckets(double start, double width, size_t count);
std::vector<double> ExponentialBuckets(double start, double factor, size_t count);

class MetricRegistry {
 public:
  struct Sample {
    std::string name;
    double value = 0.0;
    std::string unit;
  };

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // ---- Registration (cold path; may allocate) ----
  Counter RegisterCounter(const std::string& name, const std::string& unit);
  Gauge RegisterGauge(const std::string& name, const std::string& unit);
  // `bounds` must be strictly increasing; an implicit overflow bucket is added.
  FixedHistogram RegisterHistogram(const std::string& name,
                                   const std::string& unit,
                                   std::vector<double> bounds);
  // Registers a callback sampled at Collect() time. `owner` keys removal; the
  // callback must stay valid until RemoveProbes(owner).
  void RegisterProbe(const void* owner, const std::string& name,
                     const std::string& unit, std::function<double()> probe);
  // Drops every probe registered under `owner` (called from owner destructors).
  void RemoveProbes(const void* owner);

  // ---- Collection (snapshot path; never taken per packet) ----
  // Counters and gauges emit one sample each; histograms emit `<name>_count`,
  // `<name>_p50`, `<name>_p99`, and `<name>_max` (bucket-upper-bound
  // estimates); probes emit their sampled value. Duplicate probe names keep
  // the most recent registration. Order is registration order.
  std::vector<Sample> Collect() const;

  // Cold lookup of a single collected value by name (tests, benches).
  // Returns 0.0 when absent.
  double ValueOf(const std::string& name) const;

  size_t counter_count() const { return counters_.size(); }
  size_t probe_count() const { return probes_.size(); }

  // Process-wide registry used by components not wired to an explicit one.
  static MetricRegistry& Default();

 private:
  // The value cells are cache-line aligned so two counters that registered
  // adjacently (and therefore sit in neighboring deque slots) never share a
  // line: with per-shard gateway threads hammering different counters, false
  // sharing would otherwise turn independent relaxed adds into a coherence
  // ping-pong. Cold metadata (name/unit) may share the line; only the cell is
  // written on the hot path.
  struct CounterSlot {
    std::string name;
    std::string unit;
    alignas(64) std::atomic<uint64_t> value{0};
  };
  struct GaugeSlot {
    std::string name;
    std::string unit;
    alignas(64) std::atomic<int64_t> value{0};
  };
  struct HistogramSlot {
    std::string name;
    std::string unit;
    std::vector<double> bounds;
    std::deque<std::atomic<uint64_t>> counts;  // bounds.size() + 1, stable
  };
  struct ProbeSlot {
    const void* owner;
    std::string name;
    std::string unit;
    std::function<double()> probe;
  };

  // Deques: element addresses are stable across growth, which is what keeps
  // previously handed-out handles valid.
  std::deque<CounterSlot> counters_;
  std::deque<GaugeSlot> gauges_;
  std::deque<HistogramSlot> histograms_;
  std::vector<ProbeSlot> probes_;
};

}  // namespace potemkin

#endif  // SRC_OBS_METRIC_REGISTRY_H_
