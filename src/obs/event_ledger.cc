#include "src/obs/event_ledger.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "src/base/log.h"
#include "src/base/strings.h"

namespace potemkin {

namespace {

bool IsLogEvent(LedgerEvent type) {
  return type == LedgerEvent::kLogWarning || type == LedgerEvent::kLogError ||
         type == LedgerEvent::kFatal;
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

bool WriteAll(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  return written == text.size();
}

}  // namespace

const char* LedgerEventName(LedgerEvent type) {
  switch (type) {
    case LedgerEvent::kFirstContact:
      return "first_contact";
    case LedgerEvent::kPacketDelivered:
      return "packet_delivered";
    case LedgerEvent::kPacketQueued:
      return "packet_queued";
    case LedgerEvent::kPacketDropped:
      return "packet_dropped";
    case LedgerEvent::kCloneRequested:
      return "clone_requested";
    case LedgerEvent::kCloneStarted:
      return "clone_started";
    case LedgerEvent::kCloneDone:
      return "clone_done";
    case LedgerEvent::kCloneFailed:
      return "clone_failed";
    case LedgerEvent::kGuestRequest:
      return "guest_request";
    case LedgerEvent::kGuestResponse:
      return "guest_response";
    case LedgerEvent::kExploit:
      return "exploit";
    case LedgerEvent::kInfection:
      return "infection";
    case LedgerEvent::kScannerFlagged:
      return "scanner_flagged";
    case LedgerEvent::kContainmentAllow:
      return "containment_allow";
    case LedgerEvent::kContainmentDrop:
      return "containment_drop";
    case LedgerEvent::kContainmentReflect:
      return "containment_reflect";
    case LedgerEvent::kContainmentRateLimit:
      return "containment_rate_limit";
    case LedgerEvent::kContainmentDnsProxy:
      return "containment_dns_proxy";
    case LedgerEvent::kContainmentBreach:
      return "containment_breach";
    case LedgerEvent::kEgressResponse:
      return "egress_response";
    case LedgerEvent::kVmRetired:
      return "vm_retired";
    case LedgerEvent::kAlertRaised:
      return "alert_raised";
    case LedgerEvent::kAlertCleared:
      return "alert_cleared";
    case LedgerEvent::kLogWarning:
      return "log_warning";
    case LedgerEvent::kLogError:
      return "log_error";
    case LedgerEvent::kFatal:
      return "fatal";
    case LedgerEvent::kCtrlState:
      return "ctrl_state";
    case LedgerEvent::kCtrlDrainBegin:
      return "ctrl_drain_begin";
    case LedgerEvent::kCtrlDrainEnd:
      return "ctrl_drain_end";
    case LedgerEvent::kCtrlMigrate:
      return "ctrl_migrate";
    case LedgerEvent::kCtrlFailover:
      return "ctrl_failover";
    case LedgerEvent::kCtrlRotate:
      return "ctrl_rotate";
    case LedgerEvent::kCtrlScale:
      return "ctrl_scale";
    case LedgerEvent::kChaosFault:
      return "chaos_fault";
    case LedgerEvent::kChaosHeal:
      return "chaos_heal";
    case LedgerEvent::kPersonaState:
      return "persona_state";
    case LedgerEvent::kPersonaAuthFailure:
      return "persona_auth_failure";
    case LedgerEvent::kPersonaLockout:
      return "persona_lockout";
    case LedgerEvent::kPersonaDecoy:
      return "persona_decoy";
    case LedgerEvent::kPersonaEscalation:
      return "persona_escalation";
    case LedgerEvent::kEscapeAttempt:
      return "escape_attempt";
    case LedgerEvent::kMalwareStage:
      return "malware_stage";
    case LedgerEvent::kCount:
      break;
  }
  return "unknown";
}

EventLedger::EventLedger(size_t capacity) {
  PK_CHECK(capacity > 0) << "event ledger needs a nonzero ring";
  ring_.resize(capacity);
}

void EventLedger::Reset(size_t capacity) {
  PK_CHECK(capacity > 0) << "event ledger needs a nonzero ring";
  ring_.assign(capacity, Record{});
  head_ = 0;
  count_ = 0;
  next_seq_ = 0;
  dropped_ = 0;
}

std::vector<EventLedger::Record> EventLedger::Events() const {
  std::vector<Record> out;
  out.reserve(count_);
  // Oldest record sits at `head_` once the ring has wrapped, at 0 before.
  const size_t start = count_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<EventLedger::Record> EventLedger::EventsForSession(
    SessionId session) const {
  std::vector<Record> out;
  const size_t start = count_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    const Record& record = ring_[(start + i) % ring_.size()];
    if (record.session == session) {
      out.push_back(record);
    }
  }
  return out;
}

void EventLedger::SetTrip(uint64_t mask, TripHandler handler) {
  trip_mask_ = mask;
  trip_ = std::move(handler);
}

void EventLedger::ClearTrip() {
  trip_mask_ = 0;
  trip_ = nullptr;
}

void EventLedger::AppendRecordJson(std::string& out, const Record& record) {
  out += StrFormat(
      "{\"seq\":%llu,\"time_ns\":%lld,\"session\":%u,\"type\":\"%s\","
      "\"a\":%llu,\"b\":%llu",
      static_cast<unsigned long long>(record.seq),
      static_cast<long long>(record.time_ns), record.session,
      LedgerEventName(record.type), static_cast<unsigned long long>(record.a),
      static_cast<unsigned long long>(record.b));
  if (IsLogEvent(record.type) && record.a != 0) {
    // `a` is the address of the static __FILE__ literal the log site passed.
    const char* file = reinterpret_cast<const char*>(
        static_cast<uintptr_t>(record.a));
    out += StrFormat(",\"site\":\"%s:%llu\"", Basename(file),
                     static_cast<unsigned long long>(record.b));
  }
  out += '}';
}

std::string EventLedger::ToJsonLines() const {
  std::string out = StrFormat(
      "{\"ledger\":\"potemkin\",\"schema_version\":%d,\"appended\":%llu,"
      "\"dropped\":%llu}\n",
      kSchemaVersion, static_cast<unsigned long long>(next_seq_),
      static_cast<unsigned long long>(dropped_));
  const size_t start = count_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    AppendRecordJson(out, ring_[(start + i) % ring_.size()]);
    out += '\n';
  }
  return out;
}

bool EventLedger::WriteJsonLines(const std::string& path) const {
  return WriteAll(path, ToJsonLines());
}

std::string EventLedger::ToChromeJson() const {
  const std::vector<Record> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '\n';
    out += event;
  };
  // One metadata event per distinct session so every attack gets its own named
  // track; tid 0 collects session-less farm events.
  std::vector<SessionId> sessions;
  for (const Record& record : events) {
    bool seen = false;
    for (const SessionId s : sessions) {
      seen = seen || s == record.session;
    }
    if (!seen) {
      sessions.push_back(record.session);
    }
  }
  for (const SessionId session : sessions) {
    if (session == kNoSession) {
      emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           "\"tid\":0,\"args\":{\"name\":\"farm\"}}");
    } else {
      emit(StrFormat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                     "\"tid\":%u,\"args\":{\"name\":\"session %u\"}}",
                     session, session));
    }
  }
  for (const Record& record : events) {
    emit(StrFormat("{\"name\":\"%s\",\"cat\":\"ledger\",\"ph\":\"i\","
                   "\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%u,"
                   "\"args\":{\"seq\":%llu,\"a\":%llu,\"b\":%llu}}",
                   LedgerEventName(record.type),
                   static_cast<double>(record.time_ns) / 1e3, record.session,
                   static_cast<unsigned long long>(record.seq),
                   static_cast<unsigned long long>(record.a),
                   static_cast<unsigned long long>(record.b)));
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool EventLedger::WriteChromeJson(const std::string& path) const {
  return WriteAll(path, ToChromeJson());
}

void EventLedger::InstallLogHook(EventLedger* ledger,
                                 std::function<int64_t()> clock) {
  if (ledger == nullptr) {
    SetLogHook(nullptr);
    return;
  }
  SetLogHook([ledger, clock = std::move(clock)](LogLevel level,
                                                const char* file, int line,
                                                bool fatal) {
    const LedgerEvent type = fatal ? LedgerEvent::kFatal
                             : level == LogLevel::kWarning
                                 ? LedgerEvent::kLogWarning
                                 : LedgerEvent::kLogError;
    ledger->Append(type, kNoSession, clock ? clock() : 0,
                   static_cast<uint64_t>(reinterpret_cast<uintptr_t>(file)),
                   static_cast<uint64_t>(line));
  });
}

EventLedger& EventLedger::Default() {
  // Leaked like MetricRegistry::Default(): appenders may outlive static
  // teardown order.
  static EventLedger* const ledger = new EventLedger();
  return *ledger;
}

}  // namespace potemkin
