#include "src/obs/flight_recorder.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "src/base/strings.h"

namespace potemkin {

namespace {

// Strips the trailing newline from HealthSnapshot::ToJson so the object embeds
// cleanly inside the snapshots array.
std::string TrimmedSnapshotJson(const HealthSnapshot& snapshot) {
  std::string json = snapshot.ToJson();
  while (!json.empty() && json.back() == '\n') {
    json.pop_back();
  }
  return json;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config, EventLedger* ledger,
                               HealthMonitor* health)
    : config_(std::move(config)), ledger_(ledger), health_(health) {}

FlightRecorder::~FlightRecorder() { Disarm(); }

void FlightRecorder::Arm() {
  if (armed_ || ledger_ == nullptr) {
    armed_ = ledger_ != nullptr;
    return;
  }
  armed_ = true;
  const uint64_t mask = EventLedger::TripBit(LedgerEvent::kContainmentBreach) |
                        EventLedger::TripBit(LedgerEvent::kAlertRaised) |
                        EventLedger::TripBit(LedgerEvent::kFatal);
  ledger_->SetTrip(mask, [this](const EventLedger::Record& record) {
    Dump(LedgerEventName(record.type), record.time_ns, record.seq);
  });
}

void FlightRecorder::Disarm() {
  if (!armed_) {
    return;
  }
  armed_ = false;
  if (ledger_ != nullptr) {
    ledger_->ClearTrip();
  }
}

std::string FlightRecorder::BuildDumpJson(const std::string& reason,
                                          int64_t time_ns,
                                          uint64_t trigger_seq) const {
  std::string out = StrFormat(
      "{\n  \"postmortem\": \"potemkin\",\n  \"schema_version\": %d,\n"
      "  \"reason\": \"%s\",\n  \"time_ns\": %lld,\n  \"trigger_seq\": %llu,\n"
      "  \"events\": [",
      kSchemaVersion, reason.c_str(), static_cast<long long>(time_ns),
      static_cast<unsigned long long>(trigger_seq));
  if (ledger_ != nullptr) {
    const std::vector<EventLedger::Record> events = ledger_->Events();
    const size_t start = events.size() > config_.max_events
                             ? events.size() - config_.max_events
                             : 0;
    for (size_t i = start; i < events.size(); ++i) {
      out += i == start ? "\n    " : ",\n    ";
      EventLedger::AppendRecordJson(out, events[i]);
    }
  }
  out += "\n  ],\n  \"snapshots\": [";
  if (health_ != nullptr) {
    const auto& history = health_->history();
    const size_t start = history.size() > 2 ? history.size() - 2 : 0;
    for (size_t i = start; i < history.size(); ++i) {
      out += i == start ? "\n" : ",\n";
      out += TrimmedSnapshotJson(history[i]);
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string FlightRecorder::Dump(const std::string& reason, int64_t time_ns,
                                 uint64_t trigger_seq) {
  if (dumps_written_ >= config_.max_dumps ||
      (dumps_written_ > 0 &&
       time_ns - last_dump_ns_ < config_.min_interval.nanos())) {
    ++dumps_suppressed_;
    return "";
  }
  const std::string path =
      StrFormat("%s/%s_%llu_%s.json", config_.output_dir.c_str(),
                config_.prefix.c_str(),
                static_cast<unsigned long long>(dumps_written_),
                reason.c_str());
  const std::string json = BuildDumpJson(reason, time_ns, trigger_seq);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    ++dumps_suppressed_;
    return "";
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    ++dumps_suppressed_;
    return "";
  }
  ++dumps_written_;
  last_dump_ns_ = time_ns;
  last_path_ = path;
  return path;
}

}  // namespace potemkin
