#include "src/obs/watchdog.h"

#include <cmath>
#include <utility>

namespace potemkin {

namespace {

const MetricRegistry::Sample* FindSample(const HealthSnapshot& snapshot,
                                         const std::string& name) {
  for (const auto& sample : snapshot.metrics) {
    if (sample.name == name) {
      return &sample;
    }
  }
  return nullptr;
}

uint64_t RoundedArg(double value) {
  if (!std::isfinite(value) || value <= 0.0) {
    return 0;
  }
  return static_cast<uint64_t>(std::llround(value));
}

}  // namespace

Watchdog::Watchdog(EventLedger* ledger) : ledger_(ledger) {}

void Watchdog::AddRule(WatchdogRule rule) {
  rules_.push_back(std::move(rule));
  states_.emplace_back();
}

void Watchdog::AddRules(std::vector<WatchdogRule> rules) {
  for (auto& rule : rules) {
    AddRule(std::move(rule));
  }
}

void Watchdog::Raise(size_t index, double observed, int64_t now_ns) {
  RuleState& state = states_[index];
  state.firing = true;
  state.since_ns = now_ns;
  state.last_raise_ns = now_ns;
  ++state.raises;
  if (ledger_ != nullptr) {
    ledger_->Append(LedgerEvent::kAlertRaised, kNoSession, now_ns, index,
                    RoundedArg(observed));
  }
}

void Watchdog::Clear(size_t index, double observed, int64_t now_ns) {
  RuleState& state = states_[index];
  state.firing = false;
  state.since_ns = now_ns;
  ++state.clears;
  if (ledger_ != nullptr) {
    ledger_->Append(LedgerEvent::kAlertCleared, kNoSession, now_ns, index,
                    RoundedArg(observed));
  }
}

void Watchdog::Evaluate(const HealthSnapshot& snapshot) {
  ++evaluations_;
  const int64_t now_ns = snapshot.time_ns;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const WatchdogRule& rule = rules_[i];
    RuleState& state = states_[i];
    const MetricRegistry::Sample* sample = FindSample(snapshot, rule.metric);
    if (sample == nullptr) {
      continue;
    }
    const double value = sample->value;

    bool want_raise = false;
    bool want_clear = false;
    switch (rule.kind) {
      case WatchdogKind::kAbove:
        state.observed = value;
        want_raise = value >= rule.raise;
        want_clear = value <= rule.clear;
        break;
      case WatchdogKind::kBelow:
        state.observed = value;
        want_raise = value <= rule.raise;
        want_clear = value >= rule.clear;
        break;
      case WatchdogKind::kRateAbove: {
        if (!state.has_prev || now_ns <= state.prev_time_ns) {
          break;  // no rate until two samples exist
        }
        const double dt =
            static_cast<double>(now_ns - state.prev_time_ns) / 1e9;
        const double rate = (value - state.prev_value) / dt;
        state.observed = rate;
        want_raise = rate > rule.raise;
        want_clear = rate <= rule.clear;
        break;
      }
      case WatchdogKind::kStuck: {
        if (state.has_prev && value == state.prev_value) {
          ++state.unchanged;
        } else {
          state.unchanged = 0;
        }
        state.observed = static_cast<double>(state.unchanged);
        want_raise = state.unchanged >= rule.stuck_samples;
        want_clear = state.unchanged == 0;
        break;
      }
    }

    // Sustained-breach gating (kStuck already counts windows via
    // `unchanged`): a raise needs `for_windows` consecutive breaching
    // snapshots; any clean snapshot resets the streak.
    if (rule.kind != WatchdogKind::kStuck) {
      state.breach_streak = want_raise ? state.breach_streak + 1 : 0;
      want_raise = state.breach_streak >= rule.for_windows;
    }

    if (!state.firing && want_raise) {
      // Cooldown gates re-raises after a clear; the first raise is ungated.
      const bool cooled = state.raises == 0 ||
                          now_ns - state.last_raise_ns >= rule.cooldown.nanos();
      if (cooled) {
        Raise(i, state.observed, now_ns);
      }
    } else if (state.firing && want_clear) {
      Clear(i, state.observed, now_ns);
    }

    state.prev_value = value;
    state.prev_time_ns = now_ns;
    state.has_prev = true;
  }
}

void Watchdog::AppendAlertSamples(std::vector<AlertSample>* out) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    const RuleState& state = states_[i];
    if (!state.firing) {
      continue;
    }
    AlertSample alert;
    alert.rule = rules_[i].name;
    alert.metric = rules_[i].metric;
    alert.value = state.observed;
    alert.threshold = rules_[i].raise;
    alert.firing = true;
    alert.since_ns = state.since_ns;
    out->push_back(std::move(alert));
  }
}

size_t Watchdog::FindRule(const std::string& name) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].name == name) {
      return i;
    }
  }
  return kNoRule;
}

uint64_t Watchdog::total_raises() const {
  uint64_t total = 0;
  for (const RuleState& state : states_) {
    total += state.raises;
  }
  return total;
}

std::vector<WatchdogRule> DefaultFarmRules() {
  std::vector<WatchdogRule> rules;
  // Flash-clone tail latency: the paper's core scalability promise.
  rules.push_back({"clone_latency_p99", "clone.latency_ms_p99",
                   WatchdogKind::kAbove, /*raise=*/1000.0, /*clear=*/500.0,
                   Duration::Seconds(30)});
  // Frame-pool watermark: fraction of physical frames in use across hosts.
  rules.push_back({"frame_pool_watermark", "farm.mem.frame_watermark",
                   WatchdogKind::kAbove, /*raise=*/0.90, /*clear=*/0.75,
                   Duration::Seconds(30)});
  // Recycler backlog: bindings past their retire deadline but still live.
  rules.push_back({"recycler_backlog", "gateway.recycle.backlog",
                   WatchdogKind::kAbove, /*raise=*/256.0, /*clear=*/64.0,
                   Duration::Seconds(30)});
  // Containment breach: any growth of the escape counter is a page.
  rules.push_back({"containment_breach",
                   "gateway.containment.escapes_from_infected",
                   WatchdogKind::kRateAbove, /*raise=*/0.0, /*clear=*/0.0,
                   Duration::Seconds(10)});
  // Gateway drop storm: shed packets per virtual second.
  rules.push_back({"gateway_drop_rate", "gateway.drops.total",
                   WatchdogKind::kRateAbove, /*raise=*/100.0, /*clear=*/10.0,
                   Duration::Seconds(30)});
  // Percentile SLOs over the PR-10 latency histograms: sustained-tail rules
  // (p99 over threshold for 3 consecutive windows), so a single slow sample
  // in one window cannot page. Rules whose metric row is absent (a farm
  // without the instrumented component) simply never evaluate.
  rules.push_back({"gateway_datapath_p99", "gateway.datapath.latency_ns_p99",
                   WatchdogKind::kAbove, /*raise=*/5e8, /*clear=*/2.5e8,
                   Duration::Seconds(30), /*stuck_samples=*/5,
                   /*for_windows=*/3});
  rules.push_back({"clone_total_p99", "clone.phase_ns.total_p99",
                   WatchdogKind::kAbove, /*raise=*/5e8, /*clear=*/2.5e8,
                   Duration::Seconds(30), /*stuck_samples=*/5,
                   /*for_windows=*/3});
  return rules;
}

}  // namespace potemkin
