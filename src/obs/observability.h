// One-stop observability bundle handed to instrumented components.
//
// Components that want telemetry take an `Observability*` in their config and
// register their metrics/tracks/ledger events against it; a null pointer (or
// the process-wide `Default()`) is always safe. Bundling the registry, the
// trace recorder and the event ledger keeps component configs to a single
// pointer and makes per-farm isolation trivial — a `Honeyfarm` owns its own
// bundle, standalone components and tests fall back to the shared default.
#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include "src/obs/event_ledger.h"
#include "src/obs/metric_registry.h"
#include "src/obs/trace_recorder.h"

namespace potemkin {

struct Observability {
  MetricRegistry metrics;
  TraceRecorder trace;
  EventLedger ledger;

  // Process-wide bundle for components constructed without an explicit one.
  static Observability& Default() {
    // Leaked like MetricRegistry::Default(): handles may outlive static
    // teardown order.
    static Observability* const obs = new Observability();
    return *obs;
  }
};

// Resolves a possibly-null config pointer to a usable bundle.
inline Observability& ObsOrDefault(Observability* obs) {
  return obs != nullptr ? *obs : Observability::Default();
}

}  // namespace potemkin

#endif  // SRC_OBS_OBSERVABILITY_H_
