#include "src/net/link.h"

#include <algorithm>

#include "src/base/log.h"

namespace potemkin {

Link::Link(EventLoop* loop, std::string name, Duration latency, double bandwidth_bps,
           size_t queue_limit)
    : loop_(loop),
      name_(std::move(name)),
      latency_(latency),
      bandwidth_bps_(bandwidth_bps),
      queue_limit_(queue_limit) {}

void Link::Connect(NetworkNode* a, NetworkNode* b) {
  endpoint_a_ = a;
  endpoint_b_ = b;
  a_to_b_.destination = b;
  b_to_a_.destination = a;
}

bool Link::Send(NetworkNode* from, Packet packet) {
  PK_CHECK(from == endpoint_a_ || from == endpoint_b_)
      << "send on link " << name_ << " from unconnected node";
  Direction& dir = (from == endpoint_a_) ? a_to_b_ : b_to_a_;
  return SendDirection(dir, std::move(packet));
}

bool Link::SendDirection(Direction& dir, Packet packet) {
  if (dir.queued >= queue_limit_) {
    ++stats_.packets_dropped;
    return false;
  }
  const TimePoint now = loop_->Now();
  const TimePoint start = std::max(now, dir.busy_until);
  const double bits = static_cast<double>(packet.size()) * 8.0;
  const Duration tx_time =
      bandwidth_bps_ > 0.0 ? Duration::Seconds(bits / bandwidth_bps_) : Duration::Zero();
  dir.busy_until = start + tx_time;
  const TimePoint arrival = dir.busy_until + latency_;
  ++dir.queued;
  NetworkNode* destination = dir.destination;
  const size_t size = packet.size();
  loop_->ScheduleAt(arrival,
                    [this, &dir, destination, size, p = std::move(packet)]() mutable {
                      --dir.queued;
                      ++stats_.packets_delivered;
                      stats_.bytes_delivered += size;
                      destination->HandleFrame(std::move(p));
                    });
  return true;
}

Switch::Switch(EventLoop* loop, std::string name, Duration port_latency)
    : loop_(loop), name_(std::move(name)), port_latency_(port_latency) {}

void Switch::Attach(NetworkNode* node, MacAddress mac) {
  ports_.push_back(node);
  mac_table_[mac] = node;
}

void Switch::Deliver(NetworkNode* node, Packet packet) {
  loop_->ScheduleAfter(port_latency_, [node, p = std::move(packet)]() mutable {
    node->HandleFrame(std::move(p));
  });
}

void Switch::Forward(NetworkNode* source_node, Packet packet) {
  const auto& b = packet.bytes();
  if (b.size() < kEthernetHeaderSize) {
    return;
  }
  std::array<uint8_t, 6> dst_bytes;
  std::array<uint8_t, 6> src_bytes;
  std::copy_n(b.begin(), 6, dst_bytes.begin());
  std::copy_n(b.begin() + 6, 6, src_bytes.begin());
  const MacAddress dst(dst_bytes);
  const MacAddress src(src_bytes);

  // Learn the source.
  mac_table_[src] = source_node;

  if (!dst.IsBroadcast()) {
    auto it = mac_table_.find(dst);
    if (it != mac_table_.end()) {
      if (it->second != source_node) {
        ++frames_forwarded_;
        Deliver(it->second, std::move(packet));
      }
      return;
    }
  }
  // Flood to all other ports.
  ++frames_flooded_;
  for (NetworkNode* port : ports_) {
    if (port != source_node) {
      Deliver(port, packet);  // copy per port
    }
  }
}

}  // namespace potemkin
