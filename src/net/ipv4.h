// IPv4 addressing primitives: addresses, CIDR prefixes, MAC addresses.
//
// Addresses are held in host byte order internally; conversion to network order
// happens at packet serialization time (see src/net/packet.h).
#ifndef SRC_NET_IPV4_H_
#define SRC_NET_IPV4_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace potemkin {

class Ipv4Address {
 public:
  constexpr Ipv4Address() : value_(0) {}
  explicit constexpr Ipv4Address(uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Address(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : value_((static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
               (static_cast<uint32_t>(c) << 8) | d) {}

  static std::optional<Ipv4Address> Parse(std::string_view text);

  constexpr uint32_t value() const { return value_; }
  std::string ToString() const;

  constexpr Ipv4Address operator+(uint32_t offset) const {
    return Ipv4Address(value_ + offset);
  }
  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  uint32_t value_;
};

// A CIDR prefix, e.g. 10.1.0.0/16. The honeyfarm emulates all addresses in one such
// prefix (the paper used an entire /16).
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() : base_(), length_(32) {}
  Ipv4Prefix(Ipv4Address base, int length);

  static std::optional<Ipv4Prefix> Parse(std::string_view text);

  Ipv4Address base() const { return base_; }
  int length() const { return length_; }
  uint64_t NumAddresses() const { return 1ull << (32 - length_); }

  bool Contains(Ipv4Address addr) const;
  // The i-th address in the prefix (0 <= i < NumAddresses()).
  Ipv4Address AddressAt(uint64_t index) const;
  // Offset of `addr` within the prefix; only valid if Contains(addr).
  uint64_t IndexOf(Ipv4Address addr) const;

  std::string ToString() const;

 private:
  Ipv4Address base_;
  int length_;
};

class MacAddress {
 public:
  constexpr MacAddress() : bytes_{} {}
  explicit constexpr MacAddress(std::array<uint8_t, 6> bytes) : bytes_(bytes) {}
  // Deterministic locally administered MAC derived from an integer id.
  static MacAddress FromId(uint64_t id);
  static constexpr MacAddress Broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  const std::array<uint8_t, 6>& bytes() const { return bytes_; }
  bool IsBroadcast() const;
  std::string ToString() const;

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<uint8_t, 6> bytes_;
};

}  // namespace potemkin

template <>
struct std::hash<potemkin::Ipv4Address> {
  size_t operator()(const potemkin::Ipv4Address& a) const noexcept {
    // Fibonacci hash of the 32-bit value.
    return static_cast<size_t>(a.value() * 0x9e3779b97f4a7c15ull >> 32);
  }
};

#endif  // SRC_NET_IPV4_H_
