#include "src/net/checksum.h"

namespace potemkin {

void InternetChecksum::Add(const uint8_t* data, size_t length) {
  size_t i = 0;
  if (odd_ && length > 0) {
    // Complete the pending odd byte: it occupied the high half of a 16-bit word.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < length; i += 2) {
    sum_ += (static_cast<uint16_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < length) {
    sum_ += static_cast<uint16_t>(data[i]) << 8;
    odd_ = true;
  }
}

void InternetChecksum::AddU16(uint16_t value_host_order) {
  const uint8_t bytes[2] = {static_cast<uint8_t>(value_host_order >> 8),
                            static_cast<uint8_t>(value_host_order)};
  Add(bytes, 2);
}

void InternetChecksum::AddU32(uint32_t value_host_order) {
  AddU16(static_cast<uint16_t>(value_host_order >> 16));
  AddU16(static_cast<uint16_t>(value_host_order));
}

uint16_t InternetChecksum::Finish() const {
  uint64_t folded = sum_;
  while (folded >> 16) {
    folded = (folded & 0xffff) + (folded >> 16);
  }
  return static_cast<uint16_t>(~folded & 0xffff);
}

uint16_t ComputeInternetChecksum(const uint8_t* data, size_t length) {
  InternetChecksum sum;
  sum.Add(data, length);
  return sum.Finish();
}

}  // namespace potemkin
