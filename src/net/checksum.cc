#include "src/net/checksum.h"

#include <bit>
#include <cstring>

namespace potemkin {
namespace {

// Ones-complement sum of an even-length, even-aligned run taken as big-endian
// 16-bit words, folded to 16 bits. Reads 8 bytes per step: 64-bit accumulation
// with end-around carry commutes with byte order up to one final byteswap of
// the folded result (RFC 1071 §2(B)), so the wide loop needs no per-word
// swapping. Folding early is safe because ones-complement addition is
// associative over folded partial sums.
uint16_t FoldedBeSum(const uint8_t* data, size_t length) {
  uint64_t acc = 0;
  size_t i = 0;
  for (; i + 8 <= length; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    acc += word;
    acc += static_cast<uint64_t>(acc < word);  // end-around carry
  }
  uint64_t folded = (acc >> 32) + (acc & 0xffffffffull);
  while (folded >> 16) {
    folded = (folded & 0xffff) + (folded >> 16);
  }
  auto sum = static_cast<uint16_t>(folded);
  if constexpr (std::endian::native == std::endian::little) {
    sum = static_cast<uint16_t>((sum << 8) | (sum >> 8));
  }
  uint32_t tail = sum;
  for (; i + 1 < length; i += 2) {  // < 8 leftover bytes
    tail += (static_cast<uint16_t>(data[i]) << 8) | data[i + 1];
    tail = (tail & 0xffff) + (tail >> 16);
  }
  return static_cast<uint16_t>(tail);
}

}  // namespace

void InternetChecksum::Add(const uint8_t* data, size_t length) {
  size_t i = 0;
  if (odd_ && length > 0) {
    // Complete the pending odd byte: it occupied the high half of a 16-bit word.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  const size_t even_length = (length - i) & ~static_cast<size_t>(1);
  if (even_length >= 32) {
    sum_ += FoldedBeSum(data + i, even_length);
    i += even_length;
  } else {
    for (; i + 1 < length; i += 2) {
      sum_ += (static_cast<uint16_t>(data[i]) << 8) | data[i + 1];
    }
  }
  if (i < length) {
    sum_ += static_cast<uint16_t>(data[i]) << 8;
    odd_ = true;
  }
}

void InternetChecksum::AddU16(uint16_t value_host_order) {
  const uint8_t bytes[2] = {static_cast<uint8_t>(value_host_order >> 8),
                            static_cast<uint8_t>(value_host_order)};
  Add(bytes, 2);
}

void InternetChecksum::AddU32(uint32_t value_host_order) {
  AddU16(static_cast<uint16_t>(value_host_order >> 16));
  AddU16(static_cast<uint16_t>(value_host_order));
}

uint16_t InternetChecksum::Finish() const {
  uint64_t folded = sum_;
  while (folded >> 16) {
    folded = (folded & 0xffff) + (folded >> 16);
  }
  return static_cast<uint16_t>(~folded & 0xffff);
}

uint16_t ComputeInternetChecksum(const uint8_t* data, size_t length) {
  InternetChecksum sum;
  sum.Add(data, length);
  return sum.Finish();
}

uint16_t ChecksumUpdate16(uint16_t checksum, uint16_t old_word,
                          uint16_t new_word) {
  uint32_t sum = static_cast<uint16_t>(~checksum);
  sum += static_cast<uint16_t>(~old_word);
  sum += new_word;
  sum = (sum & 0xffff) + (sum >> 16);
  sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum & 0xffff);
}

uint16_t ChecksumUpdate32(uint16_t checksum, uint32_t old_word,
                          uint32_t new_word) {
  checksum = ChecksumUpdate16(checksum, static_cast<uint16_t>(old_word >> 16),
                              static_cast<uint16_t>(new_word >> 16));
  return ChecksumUpdate16(checksum, static_cast<uint16_t>(old_word),
                          static_cast<uint16_t>(new_word));
}

}  // namespace potemkin
