#include "src/net/packet.h"

#include <algorithm>
#include <cstring>

#include "src/base/strings.h"
#include "src/net/checksum.h"

namespace potemkin {

namespace {

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

uint32_t ReadU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

void WriteU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

void WriteU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

// Offsets within the frame.
constexpr size_t kIpOffset = kEthernetHeaderSize;

size_t IpHeaderLength(const std::vector<uint8_t>& bytes) {
  return static_cast<size_t>(bytes[kIpOffset] & 0x0f) * 4;
}

size_t L4Offset(const std::vector<uint8_t>& bytes) {
  return kIpOffset + IpHeaderLength(bytes);
}

// Recomputes the IPv4 header checksum in place.
void FixIpChecksum(std::vector<uint8_t>& bytes) {
  const size_t ihl = IpHeaderLength(bytes);
  WriteU16(&bytes[kIpOffset + 10], 0);
  const uint16_t sum = ComputeInternetChecksum(&bytes[kIpOffset], ihl);
  WriteU16(&bytes[kIpOffset + 10], sum);
}

// Recomputes the TCP/UDP/ICMP checksum in place (pseudo-header for TCP/UDP).
void FixL4Checksum(std::vector<uint8_t>& bytes) {
  const size_t l4 = L4Offset(bytes);
  if (l4 >= bytes.size()) {
    return;
  }
  const auto proto = static_cast<IpProto>(bytes[kIpOffset + 9]);
  const size_t l4_len = bytes.size() - l4;
  size_t checksum_offset;
  switch (proto) {
    case IpProto::kTcp:
      checksum_offset = l4 + 16;
      break;
    case IpProto::kUdp:
      checksum_offset = l4 + 6;
      break;
    case IpProto::kIcmp:
      checksum_offset = l4 + 2;
      break;
    default:
      return;
  }
  if (checksum_offset + 2 > bytes.size()) {
    return;
  }
  WriteU16(&bytes[checksum_offset], 0);
  InternetChecksum sum;
  if (proto == IpProto::kTcp || proto == IpProto::kUdp) {
    // Pseudo-header: src, dst, zero+proto, length.
    sum.Add(&bytes[kIpOffset + 12], 8);
    sum.AddU16(static_cast<uint16_t>(proto));
    sum.AddU16(static_cast<uint16_t>(l4_len));
  }
  sum.Add(&bytes[l4], l4_len);
  WriteU16(&bytes[checksum_offset], sum.Finish());
}

}  // namespace

const char* IpProtoName(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp:
      return "ICMP";
    case IpProto::kTcp:
      return "TCP";
    case IpProto::kUdp:
      return "UDP";
  }
  return "IP";
}

std::optional<PacketView> PacketView::Parse(const Packet& packet) {
  const auto& b = packet.bytes();
  if (b.size() < kEthernetHeaderSize + kIpv4MinHeaderSize) {
    return std::nullopt;
  }
  PacketView view;
  std::array<uint8_t, 6> mac;
  std::memcpy(mac.data(), &b[0], 6);
  view.eth_.dst = MacAddress(mac);
  std::memcpy(mac.data(), &b[6], 6);
  view.eth_.src = MacAddress(mac);
  view.eth_.ethertype = ReadU16(&b[12]);
  if (view.eth_.ethertype != kEthertypeIpv4) {
    return std::nullopt;
  }
  const uint8_t version = b[kIpOffset] >> 4;
  if (version != 4) {
    return std::nullopt;
  }
  const size_t ihl = IpHeaderLength(b);
  if (ihl < kIpv4MinHeaderSize || kIpOffset + ihl > b.size()) {
    return std::nullopt;
  }
  view.ip_.header_length = static_cast<uint8_t>(ihl);
  view.ip_.tos = b[kIpOffset + 1];
  view.ip_.total_length = ReadU16(&b[kIpOffset + 2]);
  view.ip_.id = ReadU16(&b[kIpOffset + 4]);
  view.ip_.ttl = b[kIpOffset + 8];
  view.ip_.proto = static_cast<IpProto>(b[kIpOffset + 9]);
  view.ip_.checksum = ReadU16(&b[kIpOffset + 10]);
  view.ip_.src = Ipv4Address(ReadU32(&b[kIpOffset + 12]));
  view.ip_.dst = Ipv4Address(ReadU32(&b[kIpOffset + 16]));

  const size_t l4 = kIpOffset + ihl;
  const size_t remaining = b.size() - l4;
  switch (view.ip_.proto) {
    case IpProto::kTcp: {
      if (remaining < kTcpMinHeaderSize) {
        return view;
      }
      view.tcp_.src_port = ReadU16(&b[l4]);
      view.tcp_.dst_port = ReadU16(&b[l4 + 2]);
      view.tcp_.seq = ReadU32(&b[l4 + 4]);
      view.tcp_.ack = ReadU32(&b[l4 + 8]);
      view.tcp_.header_length = static_cast<uint8_t>((b[l4 + 12] >> 4) * 4);
      view.tcp_.flags = b[l4 + 13];
      view.tcp_.window = ReadU16(&b[l4 + 14]);
      view.tcp_.checksum = ReadU16(&b[l4 + 16]);
      if (view.tcp_.header_length < kTcpMinHeaderSize ||
          l4 + view.tcp_.header_length > b.size()) {
        return view;
      }
      view.has_l4_ = true;
      view.payload_ = std::span<const uint8_t>(b).subspan(l4 + view.tcp_.header_length);
      break;
    }
    case IpProto::kUdp: {
      if (remaining < kUdpHeaderSize) {
        return view;
      }
      view.udp_.src_port = ReadU16(&b[l4]);
      view.udp_.dst_port = ReadU16(&b[l4 + 2]);
      view.udp_.length = ReadU16(&b[l4 + 4]);
      view.udp_.checksum = ReadU16(&b[l4 + 6]);
      view.has_l4_ = true;
      view.payload_ = std::span<const uint8_t>(b).subspan(l4 + kUdpHeaderSize);
      break;
    }
    case IpProto::kIcmp: {
      if (remaining < kIcmpHeaderSize) {
        return view;
      }
      view.icmp_.type = b[l4];
      view.icmp_.code = b[l4 + 1];
      view.icmp_.checksum = ReadU16(&b[l4 + 2]);
      view.icmp_.id = ReadU16(&b[l4 + 4]);
      view.icmp_.seq = ReadU16(&b[l4 + 6]);
      view.has_l4_ = true;
      view.payload_ = std::span<const uint8_t>(b).subspan(l4 + kIcmpHeaderSize);
      break;
    }
    default:
      break;
  }
  return view;
}

uint16_t PacketView::src_port() const {
  if (is_tcp()) {
    return tcp_.src_port;
  }
  if (is_udp()) {
    return udp_.src_port;
  }
  return 0;
}

uint16_t PacketView::dst_port() const {
  if (is_tcp()) {
    return tcp_.dst_port;
  }
  if (is_udp()) {
    return udp_.dst_port;
  }
  return 0;
}

std::string PacketView::Describe() const {
  std::string flags;
  if (is_tcp()) {
    if (tcp_.flags & TcpFlags::kSyn) {
      flags += 'S';
    }
    if (tcp_.flags & TcpFlags::kAck) {
      flags += 'A';
    }
    if (tcp_.flags & TcpFlags::kFin) {
      flags += 'F';
    }
    if (tcp_.flags & TcpFlags::kRst) {
      flags += 'R';
    }
    if (tcp_.flags & TcpFlags::kPsh) {
      flags += 'P';
    }
  }
  return StrFormat("%s %s:%u > %s:%u%s%s%s len=%zu", IpProtoName(ip_.proto),
                   ip_.src.ToString().c_str(), src_port(), ip_.dst.ToString().c_str(),
                   dst_port(), flags.empty() ? "" : " [", flags.c_str(),
                   flags.empty() ? "" : "]", payload_.size());
}

Packet BuildPacket(const PacketSpec& spec) {
  size_t l4_header;
  switch (spec.proto) {
    case IpProto::kTcp:
      l4_header = kTcpMinHeaderSize;
      break;
    case IpProto::kUdp:
      l4_header = kUdpHeaderSize;
      break;
    case IpProto::kIcmp:
      l4_header = kIcmpHeaderSize;
      break;
    default:
      l4_header = 0;
      break;
  }
  const size_t ip_total = kIpv4MinHeaderSize + l4_header + spec.payload.size();
  std::vector<uint8_t> b(kEthernetHeaderSize + ip_total, 0);

  // Ethernet.
  std::memcpy(&b[0], spec.dst_mac.bytes().data(), 6);
  std::memcpy(&b[6], spec.src_mac.bytes().data(), 6);
  WriteU16(&b[12], kEthertypeIpv4);

  // IPv4.
  b[kIpOffset] = 0x45;  // version 4, IHL 5
  WriteU16(&b[kIpOffset + 2], static_cast<uint16_t>(ip_total));
  WriteU16(&b[kIpOffset + 4], spec.ip_id);
  b[kIpOffset + 8] = spec.ttl;
  b[kIpOffset + 9] = static_cast<uint8_t>(spec.proto);
  WriteU32(&b[kIpOffset + 12], spec.src_ip.value());
  WriteU32(&b[kIpOffset + 16], spec.dst_ip.value());

  // L4.
  const size_t l4 = kIpOffset + kIpv4MinHeaderSize;
  switch (spec.proto) {
    case IpProto::kTcp:
      WriteU16(&b[l4], spec.src_port);
      WriteU16(&b[l4 + 2], spec.dst_port);
      WriteU32(&b[l4 + 4], spec.seq);
      WriteU32(&b[l4 + 8], spec.ack);
      b[l4 + 12] = (kTcpMinHeaderSize / 4) << 4;
      b[l4 + 13] = spec.tcp_flags;
      WriteU16(&b[l4 + 14], spec.window);
      break;
    case IpProto::kUdp:
      WriteU16(&b[l4], spec.src_port);
      WriteU16(&b[l4 + 2], spec.dst_port);
      WriteU16(&b[l4 + 4], static_cast<uint16_t>(kUdpHeaderSize + spec.payload.size()));
      break;
    case IpProto::kIcmp:
      b[l4] = spec.icmp_type;
      b[l4 + 1] = spec.icmp_code;
      WriteU16(&b[l4 + 4], spec.icmp_id);
      WriteU16(&b[l4 + 6], spec.icmp_seq);
      break;
    default:
      break;
  }
  if (!spec.payload.empty()) {
    std::memcpy(&b[l4 + l4_header], spec.payload.data(), spec.payload.size());
  }

  FixIpChecksum(b);
  FixL4Checksum(b);
  return Packet(std::move(b));
}

void RewriteIpv4Src(Packet& packet, Ipv4Address new_src) {
  auto& b = packet.mutable_bytes();
  if (b.size() < kIpOffset + kIpv4MinHeaderSize) {
    return;
  }
  WriteU32(&b[kIpOffset + 12], new_src.value());
  FixIpChecksum(b);
  FixL4Checksum(b);
}

void RewriteIpv4Dst(Packet& packet, Ipv4Address new_dst) {
  auto& b = packet.mutable_bytes();
  if (b.size() < kIpOffset + kIpv4MinHeaderSize) {
    return;
  }
  WriteU32(&b[kIpOffset + 16], new_dst.value());
  FixIpChecksum(b);
  FixL4Checksum(b);
}

void RewriteMacs(Packet& packet, MacAddress src, MacAddress dst) {
  auto& b = packet.mutable_bytes();
  if (b.size() < kEthernetHeaderSize) {
    return;
  }
  std::memcpy(&b[0], dst.bytes().data(), 6);
  std::memcpy(&b[6], src.bytes().data(), 6);
}

bool DecrementTtl(Packet& packet) {
  auto& b = packet.mutable_bytes();
  if (b.size() < kIpOffset + kIpv4MinHeaderSize) {
    return false;
  }
  if (b[kIpOffset + 8] <= 1) {
    b[kIpOffset + 8] = 0;
    FixIpChecksum(b);
    return false;
  }
  b[kIpOffset + 8] -= 1;
  FixIpChecksum(b);
  return true;
}

bool IsIcmpError(const PacketView& view) {
  return view.is_icmp() && (view.icmp().type == kIcmpDestUnreachable ||
                            view.icmp().type == kIcmpTimeExceeded);
}

std::optional<std::pair<Ipv4Address, Ipv4Address>> IcmpEmbeddedAddresses(
    const PacketView& view) {
  if (!IsIcmpError(view)) {
    return std::nullopt;
  }
  const auto payload = view.l4_payload();
  if (payload.size() < kIpv4MinHeaderSize) {
    return std::nullopt;
  }
  if ((payload[0] >> 4) != 4) {
    return std::nullopt;
  }
  return std::make_pair(Ipv4Address(ReadU32(&payload[12])),
                        Ipv4Address(ReadU32(&payload[16])));
}

std::vector<uint8_t> IcmpQuoteOf(const Packet& offending) {
  const auto& b = offending.bytes();
  if (b.size() <= kIpOffset) {
    return {};
  }
  const size_t ip_size = b.size() - kIpOffset;
  const size_t ihl = IpHeaderLength(b);
  const size_t quote = std::min(ip_size, ihl + 8);  // header + first 8 bytes
  return std::vector<uint8_t>(b.begin() + static_cast<long>(kIpOffset),
                              b.begin() + static_cast<long>(kIpOffset + quote));
}

bool ValidateChecksums(const Packet& packet) {
  const auto& b = packet.bytes();
  if (b.size() < kIpOffset + kIpv4MinHeaderSize) {
    return false;
  }
  const size_t ihl = IpHeaderLength(b);
  if (ihl < kIpv4MinHeaderSize || kIpOffset + ihl > b.size()) {
    return false;
  }
  if (ComputeInternetChecksum(&b[kIpOffset], ihl) != 0) {
    return false;
  }
  const auto proto = static_cast<IpProto>(b[kIpOffset + 9]);
  const size_t l4 = kIpOffset + ihl;
  const size_t l4_len = b.size() - l4;
  if (proto == IpProto::kTcp || proto == IpProto::kUdp) {
    InternetChecksum sum;
    sum.Add(&b[kIpOffset + 12], 8);
    sum.AddU16(static_cast<uint16_t>(proto));
    sum.AddU16(static_cast<uint16_t>(l4_len));
    sum.Add(&b[l4], l4_len);
    return sum.Finish() == 0;
  }
  if (proto == IpProto::kIcmp) {
    return ComputeInternetChecksum(&b[l4], l4_len) == 0;
  }
  return true;
}

}  // namespace potemkin
