#include "src/net/packet.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/base/strings.h"
#include "src/net/checksum.h"
#include "src/net/packet_pool.h"

namespace potemkin {

namespace {

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

uint32_t ReadU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

void WriteU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

void WriteU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

// Offsets within the frame.
constexpr size_t kIpOffset = kEthernetHeaderSize;

size_t IpHeaderLength(const std::vector<uint8_t>& bytes) {
  return static_cast<size_t>(bytes[kIpOffset] & 0x0f) * 4;
}

size_t L4Offset(const std::vector<uint8_t>& bytes) {
  return kIpOffset + IpHeaderLength(bytes);
}

// Recomputes the IPv4 header checksum in place.
void FixIpChecksum(std::vector<uint8_t>& bytes) {
  const size_t ihl = IpHeaderLength(bytes);
  WriteU16(&bytes[kIpOffset + 10], 0);
  const uint16_t sum = ComputeInternetChecksum(&bytes[kIpOffset], ihl);
  WriteU16(&bytes[kIpOffset + 10], sum);
}

// Recomputes the TCP/UDP/ICMP checksum in place (pseudo-header for TCP/UDP).
void FixL4Checksum(std::vector<uint8_t>& bytes) {
  const size_t l4 = L4Offset(bytes);
  if (l4 >= bytes.size()) {
    return;
  }
  const auto proto = static_cast<IpProto>(bytes[kIpOffset + 9]);
  const size_t l4_len = bytes.size() - l4;
  size_t checksum_offset;
  switch (proto) {
    case IpProto::kTcp:
      checksum_offset = l4 + 16;
      break;
    case IpProto::kUdp:
      checksum_offset = l4 + 6;
      break;
    case IpProto::kIcmp:
      checksum_offset = l4 + 2;
      break;
    default:
      return;
  }
  if (checksum_offset + 2 > bytes.size()) {
    return;
  }
  WriteU16(&bytes[checksum_offset], 0);
  InternetChecksum sum;
  if (proto == IpProto::kTcp || proto == IpProto::kUdp) {
    // Pseudo-header: src, dst, zero+proto, length.
    sum.Add(&bytes[kIpOffset + 12], 8);
    sum.AddU16(static_cast<uint16_t>(proto));
    sum.AddU16(static_cast<uint16_t>(l4_len));
  }
  sum.Add(&bytes[l4], l4_len);
  WriteU16(&bytes[checksum_offset], sum.Finish());
}

}  // namespace

const char* IpProtoName(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp:
      return "ICMP";
    case IpProto::kTcp:
      return "TCP";
    case IpProto::kUdp:
      return "UDP";
  }
  return "IP";
}

std::optional<PacketView> PacketView::Parse(const Packet& packet) {
  const auto& b = packet.bytes();
  if (b.size() < kEthernetHeaderSize + kIpv4MinHeaderSize) {
    return std::nullopt;
  }
  PacketView view;
  view.data_ = b.data();
  view.size_ = b.size();
  std::array<uint8_t, 6> mac;
  std::memcpy(mac.data(), &b[0], 6);
  view.eth_.dst = MacAddress(mac);
  std::memcpy(mac.data(), &b[6], 6);
  view.eth_.src = MacAddress(mac);
  view.eth_.ethertype = ReadU16(&b[12]);
  if (view.eth_.ethertype != kEthertypeIpv4) {
    return std::nullopt;
  }
  const uint8_t version = b[kIpOffset] >> 4;
  if (version != 4) {
    return std::nullopt;
  }
  const size_t ihl = IpHeaderLength(b);
  if (ihl < kIpv4MinHeaderSize || kIpOffset + ihl > b.size()) {
    return std::nullopt;
  }
  view.ip_.header_length = static_cast<uint8_t>(ihl);
  view.ip_.tos = b[kIpOffset + 1];
  view.ip_.total_length = ReadU16(&b[kIpOffset + 2]);
  view.ip_.id = ReadU16(&b[kIpOffset + 4]);
  view.ip_.ttl = b[kIpOffset + 8];
  view.ip_.proto = static_cast<IpProto>(b[kIpOffset + 9]);
  view.ip_.checksum = ReadU16(&b[kIpOffset + 10]);
  view.ip_.src = Ipv4Address(ReadU32(&b[kIpOffset + 12]));
  view.ip_.dst = Ipv4Address(ReadU32(&b[kIpOffset + 16]));

  const size_t l4 = kIpOffset + ihl;
  const size_t remaining = b.size() - l4;
  switch (view.ip_.proto) {
    case IpProto::kTcp: {
      if (remaining < kTcpMinHeaderSize) {
        return view;
      }
      view.tcp_.src_port = ReadU16(&b[l4]);
      view.tcp_.dst_port = ReadU16(&b[l4 + 2]);
      view.tcp_.seq = ReadU32(&b[l4 + 4]);
      view.tcp_.ack = ReadU32(&b[l4 + 8]);
      view.tcp_.header_length = static_cast<uint8_t>((b[l4 + 12] >> 4) * 4);
      view.tcp_.flags = b[l4 + 13];
      view.tcp_.window = ReadU16(&b[l4 + 14]);
      view.tcp_.checksum = ReadU16(&b[l4 + 16]);
      if (view.tcp_.header_length < kTcpMinHeaderSize ||
          l4 + view.tcp_.header_length > b.size()) {
        return view;
      }
      view.has_l4_ = true;
      view.payload_ = std::span<const uint8_t>(b).subspan(l4 + view.tcp_.header_length);
      break;
    }
    case IpProto::kUdp: {
      if (remaining < kUdpHeaderSize) {
        return view;
      }
      view.udp_.src_port = ReadU16(&b[l4]);
      view.udp_.dst_port = ReadU16(&b[l4 + 2]);
      view.udp_.length = ReadU16(&b[l4 + 4]);
      view.udp_.checksum = ReadU16(&b[l4 + 6]);
      view.has_l4_ = true;
      view.payload_ = std::span<const uint8_t>(b).subspan(l4 + kUdpHeaderSize);
      break;
    }
    case IpProto::kIcmp: {
      if (remaining < kIcmpHeaderSize) {
        return view;
      }
      view.icmp_.type = b[l4];
      view.icmp_.code = b[l4 + 1];
      view.icmp_.checksum = ReadU16(&b[l4 + 2]);
      view.icmp_.id = ReadU16(&b[l4 + 4]);
      view.icmp_.seq = ReadU16(&b[l4 + 6]);
      view.has_l4_ = true;
      view.payload_ = std::span<const uint8_t>(b).subspan(l4 + kIcmpHeaderSize);
      break;
    }
    default:
      break;
  }
  return view;
}

uint16_t PacketView::src_port() const {
  if (is_tcp()) {
    return tcp_.src_port;
  }
  if (is_udp()) {
    return udp_.src_port;
  }
  return 0;
}

uint16_t PacketView::dst_port() const {
  if (is_tcp()) {
    return tcp_.dst_port;
  }
  if (is_udp()) {
    return udp_.dst_port;
  }
  return 0;
}

std::string PacketView::Describe() const {
  std::string flags;
  if (is_tcp()) {
    if (tcp_.flags & TcpFlags::kSyn) {
      flags += 'S';
    }
    if (tcp_.flags & TcpFlags::kAck) {
      flags += 'A';
    }
    if (tcp_.flags & TcpFlags::kFin) {
      flags += 'F';
    }
    if (tcp_.flags & TcpFlags::kRst) {
      flags += 'R';
    }
    if (tcp_.flags & TcpFlags::kPsh) {
      flags += 'P';
    }
  }
  return StrFormat("%s %s:%u > %s:%u%s%s%s len=%zu", IpProtoName(ip_.proto),
                   ip_.src.ToString().c_str(), src_port(), ip_.dst.ToString().c_str(),
                   dst_port(), flags.empty() ? "" : " [", flags.c_str(),
                   flags.empty() ? "" : "]", payload_.size());
}

std::optional<Ipv4Address> PeekIpv4Dst(const Packet& packet) {
  const auto& b = packet.bytes();
  if (b.size() < kEthernetHeaderSize + kIpv4MinHeaderSize ||
      ReadU16(&b[12]) != kEthertypeIpv4) {
    return std::nullopt;
  }
  return Ipv4Address(ReadU32(&b[kIpOffset + 16]));
}

std::optional<Ipv4Address> PeekIpv4Src(const Packet& packet) {
  const auto& b = packet.bytes();
  if (b.size() < kEthernetHeaderSize + kIpv4MinHeaderSize ||
      ReadU16(&b[12]) != kEthertypeIpv4) {
    return std::nullopt;
  }
  return Ipv4Address(ReadU32(&b[kIpOffset + 12]));
}

Packet BuildPacket(const PacketSpec& spec) {
  size_t l4_header;
  switch (spec.proto) {
    case IpProto::kTcp:
      l4_header = kTcpMinHeaderSize;
      break;
    case IpProto::kUdp:
      l4_header = kUdpHeaderSize;
      break;
    case IpProto::kIcmp:
      l4_header = kIcmpHeaderSize;
      break;
    default:
      l4_header = 0;
      break;
  }
  const size_t ip_total = kIpv4MinHeaderSize + l4_header + spec.payload.size();
  PacketPool& pool = PacketPool::Default();
  std::vector<uint8_t> b = pool.Acquire(kEthernetHeaderSize + ip_total);

  // Ethernet.
  std::memcpy(&b[0], spec.dst_mac.bytes().data(), 6);
  std::memcpy(&b[6], spec.src_mac.bytes().data(), 6);
  WriteU16(&b[12], kEthertypeIpv4);

  // IPv4.
  b[kIpOffset] = 0x45;  // version 4, IHL 5
  WriteU16(&b[kIpOffset + 2], static_cast<uint16_t>(ip_total));
  WriteU16(&b[kIpOffset + 4], spec.ip_id);
  b[kIpOffset + 8] = spec.ttl;
  b[kIpOffset + 9] = static_cast<uint8_t>(spec.proto);
  WriteU32(&b[kIpOffset + 12], spec.src_ip.value());
  WriteU32(&b[kIpOffset + 16], spec.dst_ip.value());

  // L4.
  const size_t l4 = kIpOffset + kIpv4MinHeaderSize;
  switch (spec.proto) {
    case IpProto::kTcp:
      WriteU16(&b[l4], spec.src_port);
      WriteU16(&b[l4 + 2], spec.dst_port);
      WriteU32(&b[l4 + 4], spec.seq);
      WriteU32(&b[l4 + 8], spec.ack);
      b[l4 + 12] = (kTcpMinHeaderSize / 4) << 4;
      b[l4 + 13] = spec.tcp_flags;
      WriteU16(&b[l4 + 14], spec.window);
      break;
    case IpProto::kUdp:
      WriteU16(&b[l4], spec.src_port);
      WriteU16(&b[l4 + 2], spec.dst_port);
      WriteU16(&b[l4 + 4], static_cast<uint16_t>(kUdpHeaderSize + spec.payload.size()));
      break;
    case IpProto::kIcmp:
      b[l4] = spec.icmp_type;
      b[l4 + 1] = spec.icmp_code;
      WriteU16(&b[l4 + 4], spec.icmp_id);
      WriteU16(&b[l4 + 6], spec.icmp_seq);
      break;
    default:
      break;
  }
  if (!spec.payload.empty()) {
    std::memcpy(&b[l4 + l4_header], spec.payload.data(), spec.payload.size());
  }

  FixIpChecksum(b);
  FixL4Checksum(b);
  return Packet(&pool, std::move(b));
}

namespace {

struct AddressRewrite {
  bool applied = false;
  uint16_t ip_sum = 0;       // new IP header checksum
  uint16_t l4_sum = 0;       // new transport checksum (if l4_updated)
  bool l4_updated = false;
  IpProto proto = IpProto::kTcp;
};

// Applies the RFC 1624 delta for a rewritten IPv4 address at header offset
// `addr_offset` (12 = src, 16 = dst) to the IP checksum and, for TCP/UDP, to
// the transport checksum (whose pseudo-header covers the addresses). ICMP
// checksums exclude the IP header, so they need no touch-up — exactly like the
// seed's full recompute, which reproduced the same value from the unchanged
// ICMP bytes. Returns the new sums so the (friended) callers can keep a
// PacketView in sync.
AddressRewrite RewriteIpv4Address(Packet& packet, size_t addr_offset,
                                  Ipv4Address new_addr) {
  AddressRewrite result;
  auto& b = packet.mutable_bytes();
  if (b.size() < kIpOffset + kIpv4MinHeaderSize) {
    return result;
  }
  const uint32_t old_value = ReadU32(&b[kIpOffset + addr_offset]);
  const uint32_t new_value = new_addr.value();
  result.ip_sum =
      ChecksumUpdate32(ReadU16(&b[kIpOffset + 10]), old_value, new_value);
  WriteU16(&b[kIpOffset + 10], result.ip_sum);
  WriteU32(&b[kIpOffset + addr_offset], new_value);
  result.applied = true;

  result.proto = static_cast<IpProto>(b[kIpOffset + 9]);
  size_t checksum_offset = 0;
  if (result.proto == IpProto::kTcp) {
    checksum_offset = L4Offset(b) + 16;
  } else if (result.proto == IpProto::kUdp) {
    checksum_offset = L4Offset(b) + 6;
  }
  if (checksum_offset != 0 && checksum_offset + 2 <= b.size()) {
    result.l4_sum =
        ChecksumUpdate32(ReadU16(&b[checksum_offset]), old_value, new_value);
    WriteU16(&b[checksum_offset], result.l4_sum);
    result.l4_updated = true;
  }
  return result;
}

}  // namespace

void RewriteIpv4Src(Packet& packet, Ipv4Address new_src, PacketView* view) {
  assert(view == nullptr || view->ValidFor(packet));
  const AddressRewrite r = RewriteIpv4Address(packet, 12, new_src);
  if (view != nullptr && r.applied) {
    view->ip_.src = new_src;
    view->ip_.checksum = r.ip_sum;
    if (r.l4_updated) {
      if (r.proto == IpProto::kTcp) {
        view->tcp_.checksum = r.l4_sum;
      } else {
        view->udp_.checksum = r.l4_sum;
      }
    }
  }
}

void RewriteIpv4Dst(Packet& packet, Ipv4Address new_dst, PacketView* view) {
  assert(view == nullptr || view->ValidFor(packet));
  const AddressRewrite r = RewriteIpv4Address(packet, 16, new_dst);
  if (view != nullptr && r.applied) {
    view->ip_.dst = new_dst;
    view->ip_.checksum = r.ip_sum;
    if (r.l4_updated) {
      if (r.proto == IpProto::kTcp) {
        view->tcp_.checksum = r.l4_sum;
      } else {
        view->udp_.checksum = r.l4_sum;
      }
    }
  }
}

void RewriteMacs(Packet& packet, MacAddress src, MacAddress dst) {
  auto& b = packet.mutable_bytes();
  if (b.size() < kEthernetHeaderSize) {
    return;
  }
  std::memcpy(&b[0], dst.bytes().data(), 6);
  std::memcpy(&b[6], src.bytes().data(), 6);
}

bool DecrementTtl(Packet& packet, PacketView* view) {
  auto& b = packet.mutable_bytes();
  if (b.size() < kIpOffset + kIpv4MinHeaderSize) {
    return false;
  }
  assert(view == nullptr || view->ValidFor(packet));
  const uint8_t old_ttl = b[kIpOffset + 8];
  const uint8_t new_ttl = old_ttl <= 1 ? 0 : old_ttl - 1;
  // TTL shares its checksummed 16-bit word with the protocol byte.
  const uint8_t proto = b[kIpOffset + 9];
  const uint16_t sum = ChecksumUpdate16(
      ReadU16(&b[kIpOffset + 10]),
      static_cast<uint16_t>((old_ttl << 8) | proto),
      static_cast<uint16_t>((new_ttl << 8) | proto));
  b[kIpOffset + 8] = new_ttl;
  WriteU16(&b[kIpOffset + 10], sum);
  if (view != nullptr) {
    view->ip_.ttl = new_ttl;
    view->ip_.checksum = sum;
  }
  return new_ttl != 0;
}

bool IsIcmpError(const PacketView& view) {
  return view.is_icmp() && (view.icmp().type == kIcmpDestUnreachable ||
                            view.icmp().type == kIcmpTimeExceeded);
}

std::optional<std::pair<Ipv4Address, Ipv4Address>> IcmpEmbeddedAddresses(
    const PacketView& view) {
  if (!IsIcmpError(view)) {
    return std::nullopt;
  }
  const auto payload = view.l4_payload();
  if (payload.size() < kIpv4MinHeaderSize) {
    return std::nullopt;
  }
  if ((payload[0] >> 4) != 4) {
    return std::nullopt;
  }
  return std::make_pair(Ipv4Address(ReadU32(&payload[12])),
                        Ipv4Address(ReadU32(&payload[16])));
}

std::vector<uint8_t> IcmpQuoteOf(const Packet& offending) {
  const auto& b = offending.bytes();
  if (b.size() <= kIpOffset) {
    return {};
  }
  const size_t ip_size = b.size() - kIpOffset;
  const size_t ihl = IpHeaderLength(b);
  const size_t quote = std::min(ip_size, ihl + 8);  // header + first 8 bytes
  return std::vector<uint8_t>(b.begin() + static_cast<long>(kIpOffset),
                              b.begin() + static_cast<long>(kIpOffset + quote));
}

bool ValidateChecksums(const Packet& packet) {
  const auto& b = packet.bytes();
  if (b.size() < kIpOffset + kIpv4MinHeaderSize) {
    return false;
  }
  const size_t ihl = IpHeaderLength(b);
  if (ihl < kIpv4MinHeaderSize || kIpOffset + ihl > b.size()) {
    return false;
  }
  if (ComputeInternetChecksum(&b[kIpOffset], ihl) != 0) {
    return false;
  }
  const auto proto = static_cast<IpProto>(b[kIpOffset + 9]);
  const size_t l4 = kIpOffset + ihl;
  const size_t l4_len = b.size() - l4;
  if (proto == IpProto::kTcp || proto == IpProto::kUdp) {
    InternetChecksum sum;
    sum.Add(&b[kIpOffset + 12], 8);
    sum.AddU16(static_cast<uint16_t>(proto));
    sum.AddU16(static_cast<uint16_t>(l4_len));
    sum.Add(&b[l4], l4_len);
    return sum.Finish() == 0;
  }
  if (proto == IpProto::kIcmp) {
    return ComputeInternetChecksum(&b[l4], l4_len) == 0;
  }
  return true;
}

}  // namespace potemkin
