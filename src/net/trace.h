// Packet trace recording and replay.
//
// The paper drove Potemkin with live traffic from a /16 network telescope. We
// substitute a compact on-disk trace format ("PKT1") plus a synthetic generator
// (src/malware/radiation.h); traces captured from one run can be replayed
// deterministically into another.
#ifndef SRC_NET_TRACE_H_
#define SRC_NET_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/time_types.h"
#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace potemkin {

// One observed packet header (enough to regenerate an equivalent wire packet).
struct TraceRecord {
  TimePoint time;
  Ipv4Address src;
  Ipv4Address dst;
  IpProto proto = IpProto::kTcp;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t wire_size = 0;  // original frame size in bytes
  uint8_t tcp_flags = 0;

  bool operator==(const TraceRecord&) const = default;
};

// Builds a replayable wire packet from a trace record (payload is zero-filled to
// the recorded size; TCP sequence numbers are synthesized deterministically).
Packet PacketFromRecord(const TraceRecord& record, MacAddress src_mac,
                        MacAddress dst_mac);

class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  void Append(const TraceRecord& record);
  // Flushes and finalizes the record count in the header.
  void Close();

  uint64_t records_written() const { return count_; }

 private:
  std::FILE* file_ = nullptr;
  uint64_t count_ = 0;
};

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  bool ok() const { return file_ != nullptr; }
  uint64_t record_count() const { return count_; }
  // Returns false at end of trace.
  bool Next(TraceRecord* out);

  // Convenience: reads an entire trace into memory.
  static std::vector<TraceRecord> ReadAll(const std::string& path);

 private:
  std::FILE* file_ = nullptr;
  uint64_t count_ = 0;
  uint64_t read_ = 0;
};

}  // namespace potemkin

#endif  // SRC_NET_TRACE_H_
