// Minimal DNS message support (A-record queries and responses), enough for the
// gateway's internal DNS proxy: malware inside the farm frequently resolves names
// before spreading or phoning home, and the paper's gateway answers such lookups
// internally instead of letting them reach real resolvers.
#ifndef SRC_NET_DNS_H_
#define SRC_NET_DNS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/net/ipv4.h"

namespace potemkin {

inline constexpr uint16_t kDnsPort = 53;
inline constexpr uint16_t kDnsTypeA = 1;
inline constexpr uint16_t kDnsClassIn = 1;

struct DnsQuery {
  uint16_t id = 0;
  std::string name;  // dotted form, e.g. "update.example.com"
  uint16_t qtype = kDnsTypeA;
};

struct DnsResponse {
  uint16_t id = 0;
  std::string name;
  std::vector<Ipv4Address> addresses;
  uint8_t rcode = 0;  // 0 = NOERROR, 3 = NXDOMAIN
};

// Serializes a query to UDP payload bytes.
std::vector<uint8_t> EncodeDnsQuery(const DnsQuery& query);

// Parses a query from UDP payload bytes; nullopt on malformed input.
std::optional<DnsQuery> ParseDnsQuery(const uint8_t* data, size_t length);

// Serializes a response (echoes the question, then A records).
std::vector<uint8_t> EncodeDnsResponse(const DnsResponse& response);

std::optional<DnsResponse> ParseDnsResponse(const uint8_t* data, size_t length);

}  // namespace potemkin

#endif  // SRC_NET_DNS_H_
