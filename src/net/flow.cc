#include "src/net/flow.h"

#include "src/base/strings.h"

namespace potemkin {

FlowKey FlowKey::FromView(const PacketView& view) {
  return FlowKey{view.ip().src, view.ip().dst, view.ip().proto, view.src_port(),
                 view.dst_port()};
}

FlowKey FlowKey::Reversed() const {
  return FlowKey{dst, src, proto, dst_port, src_port};
}

std::string FlowKey::ToString() const {
  return StrFormat("%s %s:%u>%s:%u", IpProtoName(proto), src.ToString().c_str(),
                   src_port, dst.ToString().c_str(), dst_port);
}

size_t FlowKeyHash::operator()(const FlowKey& key) const noexcept {
  return static_cast<size_t>(PackedFlowKeyHash{}(PackedFlowKey::From(key)));
}

const char* TcpStateName(TcpState state) {
  switch (state) {
    case TcpState::kNone:
      return "NONE";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynReceived:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kClosed:
      return "CLOSED";
  }
  return "?";
}

FlowTable::FlowTable(Duration idle_timeout, size_t max_flows)
    : idle_timeout_(idle_timeout), max_flows_(max_flows) {}

void FlowTable::AdvanceTcpState(FlowRecord& record, const PacketView& view,
                                bool is_forward) {
  if (!view.is_tcp()) {
    return;
  }
  const uint8_t flags = view.tcp().flags;
  if (flags & TcpFlags::kRst) {
    record.tcp_state = TcpState::kClosed;
    return;
  }
  switch (record.tcp_state) {
    case TcpState::kNone:
      if ((flags & TcpFlags::kSyn) && !(flags & TcpFlags::kAck) && is_forward) {
        record.tcp_state = TcpState::kSynSent;
      }
      break;
    case TcpState::kSynSent:
      if ((flags & TcpFlags::kSyn) && (flags & TcpFlags::kAck) && !is_forward) {
        record.tcp_state = TcpState::kSynReceived;
      }
      break;
    case TcpState::kSynReceived:
      if ((flags & TcpFlags::kAck) && !(flags & TcpFlags::kSyn) && is_forward) {
        record.tcp_state = TcpState::kEstablished;
        ++handshakes_;
      }
      break;
    case TcpState::kEstablished:
      if (flags & TcpFlags::kFin) {
        record.tcp_state = TcpState::kClosing;
      }
      break;
    case TcpState::kClosing:
      if (flags & TcpFlags::kFin) {
        record.tcp_state = TcpState::kClosed;
      }
      break;
    case TcpState::kClosed:
      break;
  }
}

void FlowTable::LruUnlink(uint32_t slot) {
  FlowSlot& s = slab_.At(slot);
  if (s.lru_prev != kNil) {
    slab_.At(s.lru_prev).lru_next = s.lru_next;
  } else {
    lru_head_ = s.lru_next;
  }
  if (s.lru_next != kNil) {
    slab_.At(s.lru_next).lru_prev = s.lru_prev;
  } else {
    lru_tail_ = s.lru_prev;
  }
  s.lru_prev = kNil;
  s.lru_next = kNil;
}

void FlowTable::LruPushBack(uint32_t slot) {
  FlowSlot& s = slab_.At(slot);
  s.lru_prev = lru_tail_;
  s.lru_next = kNil;
  if (lru_tail_ != kNil) {
    slab_.At(lru_tail_).lru_next = slot;
  } else {
    lru_head_ = slot;
  }
  lru_tail_ = slot;
}

void FlowTable::RemoveSlot(uint32_t slot) {
  LruUnlink(slot);
  index_.Erase(PackedFlowKey::From(slab_.At(slot).record.key));
  slab_.Free(slot);
}

const FlowRecord& FlowTable::Record(const PacketView& view, TimePoint now) {
  const FlowKey forward = FlowKey::FromView(view);
  const PackedFlowKey packed = PackedFlowKey::From(forward);
  bool is_forward = true;
  uint32_t slot = index_.Find(packed);
  if (slot == FlatIndex<PackedFlowKey, PackedFlowKeyHash>::kNotFound) {
    slot = index_.Find(packed.Reversed());
    is_forward = false;
  }
  if (slot == FlatIndex<PackedFlowKey, PackedFlowKeyHash>::kNotFound) {
    if (slab_.live_count() >= max_flows_) {
      EvictOldest();
    }
    is_forward = true;
    slot = slab_.Alloc();
    index_.Insert(packed, slot);
    FlowRecord& record = slab_.At(slot).record;
    record.key = forward;
    record.first_seen = now;
    LruPushBack(slot);
    ++total_created_;
  } else {
    LruUnlink(slot);
    LruPushBack(slot);
  }
  FlowRecord& record = slab_.At(slot).record;
  record.last_seen = now;
  const uint64_t bytes = view.ip().total_length;
  if (is_forward) {
    ++record.forward_packets;
    record.forward_bytes += bytes;
  } else {
    ++record.reverse_packets;
    record.reverse_bytes += bytes;
  }
  AdvanceTcpState(record, view, is_forward);
  return record;
}

const FlowRecord* FlowTable::Find(const FlowKey& key) const {
  const PackedFlowKey packed = PackedFlowKey::From(key);
  uint32_t slot = index_.Find(packed);
  if (slot == FlatIndex<PackedFlowKey, PackedFlowKeyHash>::kNotFound) {
    slot = index_.Find(packed.Reversed());
  }
  if (slot == FlatIndex<PackedFlowKey, PackedFlowKeyHash>::kNotFound) {
    return nullptr;
  }
  return &slab_.At(slot).record;
}

size_t FlowTable::ExpireIdle(TimePoint now) {
  size_t removed = 0;
  while (lru_head_ != kNil) {
    const uint32_t oldest = lru_head_;
    if (now - slab_.At(oldest).record.last_seen <= idle_timeout_) {
      break;  // everything behind it is younger
    }
    RemoveSlot(oldest);
    ++removed;
  }
  return removed;
}

void FlowTable::EvictOldest() {
  if (lru_head_ == kNil) {
    return;
  }
  RemoveSlot(lru_head_);
  ++evictions_;
}

}  // namespace potemkin
