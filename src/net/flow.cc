#include "src/net/flow.h"

#include "src/base/strings.h"

namespace potemkin {

FlowKey FlowKey::FromView(const PacketView& view) {
  return FlowKey{view.ip().src, view.ip().dst, view.ip().proto, view.src_port(),
                 view.dst_port()};
}

FlowKey FlowKey::Reversed() const {
  return FlowKey{dst, src, proto, dst_port, src_port};
}

std::string FlowKey::ToString() const {
  return StrFormat("%s %s:%u>%s:%u", IpProtoName(proto), src.ToString().c_str(),
                   src_port, dst.ToString().c_str(), dst_port);
}

size_t FlowKeyHash::operator()(const FlowKey& key) const noexcept {
  uint64_t h = key.src.value();
  h = h * 0x9e3779b97f4a7c15ull + key.dst.value();
  h = h * 0x9e3779b97f4a7c15ull +
      ((static_cast<uint64_t>(key.src_port) << 24) |
       (static_cast<uint64_t>(key.dst_port) << 8) | static_cast<uint64_t>(key.proto));
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return static_cast<size_t>(h);
}

const char* TcpStateName(TcpState state) {
  switch (state) {
    case TcpState::kNone:
      return "NONE";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynReceived:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kClosed:
      return "CLOSED";
  }
  return "?";
}

FlowTable::FlowTable(Duration idle_timeout, size_t max_flows)
    : idle_timeout_(idle_timeout), max_flows_(max_flows) {}

void FlowTable::AdvanceTcpState(FlowRecord& record, const PacketView& view,
                                bool is_forward) {
  if (!view.is_tcp()) {
    return;
  }
  const uint8_t flags = view.tcp().flags;
  if (flags & TcpFlags::kRst) {
    record.tcp_state = TcpState::kClosed;
    return;
  }
  switch (record.tcp_state) {
    case TcpState::kNone:
      if ((flags & TcpFlags::kSyn) && !(flags & TcpFlags::kAck) && is_forward) {
        record.tcp_state = TcpState::kSynSent;
      }
      break;
    case TcpState::kSynSent:
      if ((flags & TcpFlags::kSyn) && (flags & TcpFlags::kAck) && !is_forward) {
        record.tcp_state = TcpState::kSynReceived;
      }
      break;
    case TcpState::kSynReceived:
      if ((flags & TcpFlags::kAck) && !(flags & TcpFlags::kSyn) && is_forward) {
        record.tcp_state = TcpState::kEstablished;
        ++handshakes_;
      }
      break;
    case TcpState::kEstablished:
      if (flags & TcpFlags::kFin) {
        record.tcp_state = TcpState::kClosing;
      }
      break;
    case TcpState::kClosing:
      if (flags & TcpFlags::kFin) {
        record.tcp_state = TcpState::kClosed;
      }
      break;
    case TcpState::kClosed:
      break;
  }
}

const FlowRecord& FlowTable::Record(const PacketView& view, TimePoint now) {
  const FlowKey forward = FlowKey::FromView(view);
  bool is_forward = true;
  auto it = flows_.find(forward);
  if (it == flows_.end()) {
    auto rit = flows_.find(forward.Reversed());
    if (rit != flows_.end()) {
      it = rit;
      is_forward = false;
    }
  }
  if (it == flows_.end()) {
    if (flows_.size() >= max_flows_) {
      EvictOldest();
    }
    FlowRecord record;
    record.key = forward;
    record.first_seen = now;
    it = flows_.emplace(forward, record).first;
    lru_.push_back(forward);
    lru_pos_[forward] = std::prev(lru_.end());
    ++total_created_;
  }
  FlowRecord& record = it->second;
  record.last_seen = now;
  const uint64_t bytes = view.ip().total_length;
  if (is_forward) {
    ++record.forward_packets;
    record.forward_bytes += bytes;
  } else {
    ++record.reverse_packets;
    record.reverse_bytes += bytes;
  }
  AdvanceTcpState(record, view, is_forward);
  // Refresh LRU position.
  auto pos = lru_pos_.find(record.key);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_.push_back(record.key);
    pos->second = std::prev(lru_.end());
  }
  return record;
}

const FlowRecord* FlowTable::Find(const FlowKey& key) const {
  auto it = flows_.find(key);
  if (it != flows_.end()) {
    return &it->second;
  }
  it = flows_.find(key.Reversed());
  return it == flows_.end() ? nullptr : &it->second;
}

size_t FlowTable::ExpireIdle(TimePoint now) {
  size_t removed = 0;
  while (!lru_.empty()) {
    const FlowKey& oldest = lru_.front();
    auto it = flows_.find(oldest);
    if (it != flows_.end() && now - it->second.last_seen <= idle_timeout_) {
      break;  // everything behind it is younger
    }
    if (it != flows_.end()) {
      flows_.erase(it);
    }
    lru_pos_.erase(oldest);
    lru_.pop_front();
    ++removed;
  }
  return removed;
}

void FlowTable::EvictOldest() {
  if (lru_.empty()) {
    return;
  }
  const FlowKey oldest = lru_.front();
  lru_.pop_front();
  lru_pos_.erase(oldest);
  flows_.erase(oldest);
  ++evictions_;
}

}  // namespace potemkin
