#include "src/net/ipv4.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace potemkin {

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  const auto parts = StrSplit(text, '.');
  if (parts.size() != 4) {
    return std::nullopt;
  }
  uint32_t value = 0;
  for (const auto& part : parts) {
    const auto octet = ParseUint64(part);
    if (!octet || *octet > 255) {
      return std::nullopt;
    }
    value = (value << 8) | static_cast<uint32_t>(*octet);
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::ToString() const {
  return StrFormat("%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                   (value_ >> 8) & 0xff, value_ & 0xff);
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address base, int length) : length_(length) {
  PK_CHECK(length >= 0 && length <= 32) << "bad prefix length " << length;
  const uint32_t mask =
      length == 0 ? 0 : static_cast<uint32_t>(0xffffffffull << (32 - length));
  base_ = Ipv4Address(base.value() & mask);
}

std::optional<Ipv4Prefix> Ipv4Prefix::Parse(std::string_view text) {
  const size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return std::nullopt;
  }
  const auto base = Ipv4Address::Parse(text.substr(0, slash));
  const auto length = ParseUint64(text.substr(slash + 1));
  if (!base || !length || *length > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix(*base, static_cast<int>(*length));
}

bool Ipv4Prefix::Contains(Ipv4Address addr) const {
  if (length_ == 0) {
    return true;
  }
  const uint32_t mask = static_cast<uint32_t>(0xffffffffull << (32 - length_));
  return (addr.value() & mask) == base_.value();
}

Ipv4Address Ipv4Prefix::AddressAt(uint64_t index) const {
  PK_CHECK(index < NumAddresses()) << "address index out of prefix";
  return Ipv4Address(base_.value() + static_cast<uint32_t>(index));
}

uint64_t Ipv4Prefix::IndexOf(Ipv4Address addr) const {
  PK_CHECK(Contains(addr)) << addr.ToString() << " not in " << ToString();
  return addr.value() - base_.value();
}

std::string Ipv4Prefix::ToString() const {
  return StrFormat("%s/%d", base_.ToString().c_str(), length_);
}

MacAddress MacAddress::FromId(uint64_t id) {
  std::array<uint8_t, 6> bytes;
  bytes[0] = 0x02;  // locally administered, unicast
  bytes[1] = 0x50;  // 'P' for Potemkin
  bytes[2] = static_cast<uint8_t>(id >> 24);
  bytes[3] = static_cast<uint8_t>(id >> 16);
  bytes[4] = static_cast<uint8_t>(id >> 8);
  bytes[5] = static_cast<uint8_t>(id);
  return MacAddress(bytes);
}

bool MacAddress::IsBroadcast() const {
  for (uint8_t b : bytes_) {
    if (b != 0xff) {
      return false;
    }
  }
  return true;
}

std::string MacAddress::ToString() const {
  return StrFormat("%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1], bytes_[2],
                   bytes_[3], bytes_[4], bytes_[5]);
}

}  // namespace potemkin
