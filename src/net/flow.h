// Flow tracking: 5-tuple keys, per-flow records with a TCP state machine, and a
// flow table with idle expiry. The gateway uses flow state to distinguish inbound
// service traffic from scans and to account per-flow statistics.
//
// The table is packet-path flat: 5-tuples are packed into a 96-bit key probed in
// an open-addressing index, records live in a chunked slab, and LRU order is an
// intrusive doubly-linked list of slot ids — no per-flow node allocations and no
// iterator bookkeeping maps.
#ifndef SRC_NET_FLOW_H_
#define SRC_NET_FLOW_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "src/base/flat_index.h"
#include "src/base/slab.h"
#include "src/base/time_types.h"
#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace potemkin {

struct FlowKey {
  Ipv4Address src;
  Ipv4Address dst;
  IpProto proto = IpProto::kTcp;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;

  static FlowKey FromView(const PacketView& view);
  // The same flow seen from the opposite direction.
  FlowKey Reversed() const;

  bool operator==(const FlowKey&) const = default;
  std::string ToString() const;
};

struct FlowKeyHash {
  size_t operator()(const FlowKey& key) const noexcept;
};

// The 104 relevant bits of a 5-tuple packed into two words, so key compare is
// two integer compares and the hash touches no padding.
struct PackedFlowKey {
  uint64_t addrs = 0;  // src << 32 | dst
  uint64_t rest = 0;   // src_port << 24 | dst_port << 8 | proto

  static PackedFlowKey From(const FlowKey& key) {
    PackedFlowKey packed;
    packed.addrs =
        (static_cast<uint64_t>(key.src.value()) << 32) | key.dst.value();
    packed.rest = (static_cast<uint64_t>(key.src_port) << 24) |
                  (static_cast<uint64_t>(key.dst_port) << 8) |
                  static_cast<uint64_t>(key.proto);
    return packed;
  }
  PackedFlowKey Reversed() const {
    PackedFlowKey packed;
    packed.addrs = (addrs << 32) | (addrs >> 32);
    packed.rest = (((rest >> 8) & 0xffff) << 24) | (((rest >> 24) & 0xffff) << 8) |
                  (rest & 0xff);
    return packed;
  }
  bool operator==(const PackedFlowKey&) const = default;
};

struct PackedFlowKeyHash {
  uint64_t operator()(const PackedFlowKey& key) const noexcept {
    uint64_t h = key.addrs * 0x9e3779b97f4a7c15ull + key.rest;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ull;
    return h ^ (h >> 32);
  }
};

enum class TcpState {
  kNone,         // non-TCP flow
  kSynSent,      // initiator SYN seen
  kSynReceived,  // responder SYN|ACK seen
  kEstablished,  // three-way handshake completed
  kClosing,      // FIN seen from either side
  kClosed,       // both FINs or a RST
};

const char* TcpStateName(TcpState state);

struct FlowRecord {
  FlowKey key;
  TimePoint first_seen;
  TimePoint last_seen;
  uint64_t forward_packets = 0;
  uint64_t reverse_packets = 0;
  uint64_t forward_bytes = 0;
  uint64_t reverse_bytes = 0;
  TcpState tcp_state = TcpState::kNone;
};

// Bidirectional flow table keyed on the initiator-direction 5-tuple. Packets in
// either direction update the same record. Flows idle past the configured timeout
// are reclaimed lazily and by explicit sweeps.
class FlowTable {
 public:
  explicit FlowTable(Duration idle_timeout, size_t max_flows = 1 << 20);

  // Records a packet; creates the flow if new. Returns the updated record
  // (valid until the next mutating call).
  const FlowRecord& Record(const PacketView& view, TimePoint now);

  const FlowRecord* Find(const FlowKey& key) const;

  // Removes flows idle since before `now - idle_timeout`. Returns count removed.
  size_t ExpireIdle(TimePoint now);

  size_t size() const { return slab_.live_count(); }
  uint64_t total_flows_created() const { return total_created_; }
  uint64_t handshakes_completed() const { return handshakes_; }
  uint64_t evictions() const { return evictions_; }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  struct FlowSlot {
    FlowRecord record;
    uint32_t lru_prev = kNil;
    uint32_t lru_next = kNil;
  };

  void AdvanceTcpState(FlowRecord& record, const PacketView& view, bool is_forward);
  void EvictOldest();
  void LruUnlink(uint32_t slot);
  void LruPushBack(uint32_t slot);
  // Removes the slot from index, LRU and slab.
  void RemoveSlot(uint32_t slot);

  Duration idle_timeout_;
  size_t max_flows_;
  uint64_t total_created_ = 0;
  uint64_t handshakes_ = 0;
  uint64_t evictions_ = 0;
  FlatIndex<PackedFlowKey, PackedFlowKeyHash> index_;  // forward key -> slot
  Slab<FlowSlot> slab_;
  uint32_t lru_head_ = kNil;  // oldest
  uint32_t lru_tail_ = kNil;  // most recently touched
};

}  // namespace potemkin

#endif  // SRC_NET_FLOW_H_
