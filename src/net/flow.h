// Flow tracking: 5-tuple keys, per-flow records with a TCP state machine, and a
// flow table with idle expiry. The gateway uses flow state to distinguish inbound
// service traffic from scans and to account per-flow statistics.
#ifndef SRC_NET_FLOW_H_
#define SRC_NET_FLOW_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/base/time_types.h"
#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace potemkin {

struct FlowKey {
  Ipv4Address src;
  Ipv4Address dst;
  IpProto proto = IpProto::kTcp;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;

  static FlowKey FromView(const PacketView& view);
  // The same flow seen from the opposite direction.
  FlowKey Reversed() const;

  bool operator==(const FlowKey&) const = default;
  std::string ToString() const;
};

struct FlowKeyHash {
  size_t operator()(const FlowKey& key) const noexcept;
};

enum class TcpState {
  kNone,         // non-TCP flow
  kSynSent,      // initiator SYN seen
  kSynReceived,  // responder SYN|ACK seen
  kEstablished,  // three-way handshake completed
  kClosing,      // FIN seen from either side
  kClosed,       // both FINs or a RST
};

const char* TcpStateName(TcpState state);

struct FlowRecord {
  FlowKey key;
  TimePoint first_seen;
  TimePoint last_seen;
  uint64_t forward_packets = 0;
  uint64_t reverse_packets = 0;
  uint64_t forward_bytes = 0;
  uint64_t reverse_bytes = 0;
  TcpState tcp_state = TcpState::kNone;
};

// Bidirectional flow table keyed on the initiator-direction 5-tuple. Packets in
// either direction update the same record. Flows idle past the configured timeout
// are reclaimed lazily and by explicit sweeps.
class FlowTable {
 public:
  explicit FlowTable(Duration idle_timeout, size_t max_flows = 1 << 20);

  // Records a packet; creates the flow if new. Returns the updated record.
  const FlowRecord& Record(const PacketView& view, TimePoint now);

  const FlowRecord* Find(const FlowKey& key) const;

  // Removes flows idle since before `now - idle_timeout`. Returns count removed.
  size_t ExpireIdle(TimePoint now);

  size_t size() const { return flows_.size(); }
  uint64_t total_flows_created() const { return total_created_; }
  uint64_t handshakes_completed() const { return handshakes_; }
  uint64_t evictions() const { return evictions_; }

 private:
  void AdvanceTcpState(FlowRecord& record, const PacketView& view, bool is_forward);
  void EvictOldest();

  Duration idle_timeout_;
  size_t max_flows_;
  uint64_t total_created_ = 0;
  uint64_t handshakes_ = 0;
  uint64_t evictions_ = 0;
  std::unordered_map<FlowKey, FlowRecord, FlowKeyHash> flows_;
  // LRU list of keys, most recent at back; parallel to flows_.
  std::list<FlowKey> lru_;
  std::unordered_map<FlowKey, std::list<FlowKey>::iterator, FlowKeyHash> lru_pos_;
};

}  // namespace potemkin

#endif  // SRC_NET_FLOW_H_
