// GRE tunneling (RFC 2784, with optional key per RFC 2890).
//
// The paper's deployment did not sit physically in front of a /16: border routers
// tunneled the telescope prefix's traffic to the gateway over GRE. We implement
// real GRE-in-IPv4 encapsulation so the gateway can terminate tunnels exactly the
// way the production system did: outer IPv4 header (proto 47) + GRE header +
// original IPv4 packet; the optional key field identifies the contributing
// telescope.
#ifndef SRC_NET_GRE_H_
#define SRC_NET_GRE_H_

#include <cstdint>
#include <optional>

#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace potemkin {

inline constexpr uint8_t kIpProtoGre = 47;
inline constexpr uint16_t kGreProtoIpv4 = 0x0800;

struct GreDecapResult {
  Ipv4Address outer_src;   // tunnel source (the contributing router)
  Ipv4Address outer_dst;   // tunnel destination (the gateway)
  std::optional<uint32_t> key;
  Packet inner;            // reconstructed inner frame (Ethernet + IPv4...)
};

// Encapsulates `inner` (a full Ethernet frame carrying IPv4) for transport from
// `tunnel_src` to `tunnel_dst`. The inner Ethernet header is stripped (GRE carries
// the IP packet); `key`, if set, is placed in a GRE key extension.
Packet GreEncapsulate(const Packet& inner, Ipv4Address tunnel_src,
                      Ipv4Address tunnel_dst, MacAddress src_mac, MacAddress dst_mac,
                      std::optional<uint32_t> key = std::nullopt);

// Decapsulates a GRE frame. Returns nullopt if the frame is not valid GRE-in-IPv4.
// The inner packet gets a synthetic Ethernet header using the provided MACs.
std::optional<GreDecapResult> GreDecapsulate(const Packet& outer,
                                             MacAddress inner_src_mac,
                                             MacAddress inner_dst_mac);

// True if the frame is an IPv4 packet with protocol GRE.
bool IsGrePacket(const Packet& packet);

// A tunnel endpoint: feeds decapsulated inner packets to a sink, and can wrap
// return traffic back toward the remote router.
class GreTunnel {
 public:
  GreTunnel(Ipv4Address local, Ipv4Address remote, std::optional<uint32_t> key);

  Ipv4Address local() const { return local_; }
  Ipv4Address remote() const { return remote_; }

  // Processes a received outer frame; returns the inner packet if it belongs to
  // this tunnel (matching outer addresses and key).
  std::optional<Packet> Receive(const Packet& outer);

  // Encapsulates an inner frame for the remote end.
  Packet Send(const Packet& inner);

  uint64_t packets_decapsulated() const { return decapsulated_; }
  uint64_t packets_encapsulated() const { return encapsulated_; }
  uint64_t packets_rejected() const { return rejected_; }

 private:
  Ipv4Address local_;
  Ipv4Address remote_;
  std::optional<uint32_t> key_;
  uint64_t decapsulated_ = 0;
  uint64_t encapsulated_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace potemkin

#endif  // SRC_NET_GRE_H_
