// RFC 1071 Internet checksum, used for IPv4 header, TCP, UDP and ICMP checksums.
#ifndef SRC_NET_CHECKSUM_H_
#define SRC_NET_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace potemkin {

// Running ones-complement sum; finalize with `Fold` then complement.
class InternetChecksum {
 public:
  void Add(const uint8_t* data, size_t length);
  void AddU16(uint16_t value_host_order);
  void AddU32(uint32_t value_host_order);

  // Final checksum in host order (caller writes it big-endian into the packet).
  uint16_t Finish() const;

 private:
  uint64_t sum_ = 0;
  bool odd_ = false;  // true if an odd byte is pending in the high half.
};

// One-shot convenience over a contiguous buffer.
uint16_t ComputeInternetChecksum(const uint8_t* data, size_t length);

}  // namespace potemkin

#endif  // SRC_NET_CHECKSUM_H_
