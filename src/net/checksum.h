// RFC 1071 Internet checksum, used for IPv4 header, TCP, UDP and ICMP checksums.
#ifndef SRC_NET_CHECKSUM_H_
#define SRC_NET_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace potemkin {

// Running ones-complement sum; finalize with `Fold` then complement.
class InternetChecksum {
 public:
  void Add(const uint8_t* data, size_t length);
  void AddU16(uint16_t value_host_order);
  void AddU32(uint32_t value_host_order);

  // Final checksum in host order (caller writes it big-endian into the packet).
  uint16_t Finish() const;

 private:
  uint64_t sum_ = 0;
  bool odd_ = false;  // true if an odd byte is pending in the high half.
};

// One-shot convenience over a contiguous buffer.
uint16_t ComputeInternetChecksum(const uint8_t* data, size_t length);

// RFC 1624 incremental update: returns the stored checksum after one 16-bit
// field covered by it changes from `old_word` to `new_word` (host order).
// Equation 3: HC' = ~(~HC + ~m + m'). For any packet whose summed bytes are
// not all zero — true of every real IP/TCP/UDP header — this is bit-identical
// to a full recompute, so rewrites may mix the two freely.
uint16_t ChecksumUpdate16(uint16_t checksum, uint16_t old_word,
                          uint16_t new_word);

// Same, for a 32-bit field (e.g. an IPv4 address) treated as two 16-bit words.
uint16_t ChecksumUpdate32(uint16_t checksum, uint32_t old_word,
                          uint32_t new_word);

}  // namespace potemkin

#endif  // SRC_NET_CHECKSUM_H_
