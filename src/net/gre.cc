#include "src/net/gre.h"

#include <cstring>

#include "src/net/checksum.h"

namespace potemkin {

namespace {

constexpr size_t kIpOffset = kEthernetHeaderSize;

void WriteU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

void WriteU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

uint32_t ReadU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

bool IsGrePacket(const Packet& packet) {
  const auto& b = packet.bytes();
  if (b.size() < kIpOffset + kIpv4MinHeaderSize) {
    return false;
  }
  if (ReadU16(&b[12]) != kEthertypeIpv4 || (b[kIpOffset] >> 4) != 4) {
    return false;
  }
  return b[kIpOffset + 9] == kIpProtoGre;
}

Packet GreEncapsulate(const Packet& inner, Ipv4Address tunnel_src,
                      Ipv4Address tunnel_dst, MacAddress src_mac, MacAddress dst_mac,
                      std::optional<uint32_t> key) {
  const auto& in = inner.bytes();
  // Inner payload: the IP packet (strip the Ethernet header).
  const size_t inner_ip_size = in.size() > kIpOffset ? in.size() - kIpOffset : 0;
  const size_t gre_header = key.has_value() ? 8 : 4;
  const size_t ip_total = kIpv4MinHeaderSize + gre_header + inner_ip_size;

  PacketPool& pool = PacketPool::Default();
  std::vector<uint8_t> b = pool.Acquire(kEthernetHeaderSize + ip_total);
  std::memcpy(&b[0], dst_mac.bytes().data(), 6);
  std::memcpy(&b[6], src_mac.bytes().data(), 6);
  WriteU16(&b[12], kEthertypeIpv4);

  // Outer IPv4.
  b[kIpOffset] = 0x45;
  WriteU16(&b[kIpOffset + 2], static_cast<uint16_t>(ip_total));
  b[kIpOffset + 8] = 64;  // TTL
  b[kIpOffset + 9] = kIpProtoGre;
  WriteU32(&b[kIpOffset + 12], tunnel_src.value());
  WriteU32(&b[kIpOffset + 16], tunnel_dst.value());
  WriteU16(&b[kIpOffset + 10], 0);
  const uint16_t ip_sum = ComputeInternetChecksum(&b[kIpOffset], kIpv4MinHeaderSize);
  WriteU16(&b[kIpOffset + 10], ip_sum);

  // GRE header: flags+version (key bit if present), protocol type.
  const size_t gre = kIpOffset + kIpv4MinHeaderSize;
  WriteU16(&b[gre], key.has_value() ? 0x2000 : 0x0000);
  WriteU16(&b[gre + 2], kGreProtoIpv4);
  if (key.has_value()) {
    WriteU32(&b[gre + 4], *key);
  }

  // Inner IP packet.
  if (inner_ip_size > 0) {
    std::memcpy(&b[gre + gre_header], &in[kIpOffset], inner_ip_size);
  }
  return Packet(&pool, std::move(b));
}

std::optional<GreDecapResult> GreDecapsulate(const Packet& outer,
                                             MacAddress inner_src_mac,
                                             MacAddress inner_dst_mac) {
  if (!IsGrePacket(outer)) {
    return std::nullopt;
  }
  const auto& b = outer.bytes();
  const size_t ihl = static_cast<size_t>(b[kIpOffset] & 0x0f) * 4;
  const size_t gre = kIpOffset + ihl;
  if (gre + 4 > b.size()) {
    return std::nullopt;
  }
  const uint16_t flags = ReadU16(&b[gre]);
  if ((flags & 0x0007) != 0) {  // version must be zero
    return std::nullopt;
  }
  if (ReadU16(&b[gre + 2]) != kGreProtoIpv4) {
    return std::nullopt;
  }
  size_t header = 4;
  std::optional<uint32_t> key;
  if (flags & 0x8000) {  // checksum present
    header += 4;
  }
  if (flags & 0x2000) {  // key present
    if (gre + header + 4 > b.size()) {
      return std::nullopt;
    }
    key = ReadU32(&b[gre + header]);
    header += 4;
  }
  if (flags & 0x1000) {  // sequence present
    header += 4;
  }
  if (gre + header >= b.size()) {
    return std::nullopt;
  }

  GreDecapResult result;
  result.outer_src = Ipv4Address(ReadU32(&b[kIpOffset + 12]));
  result.outer_dst = Ipv4Address(ReadU32(&b[kIpOffset + 16]));
  result.key = key;

  const size_t inner_size = b.size() - gre - header;
  PacketPool& pool = PacketPool::Default();
  std::vector<uint8_t> inner = pool.Acquire(kEthernetHeaderSize + inner_size);
  std::memcpy(&inner[0], inner_dst_mac.bytes().data(), 6);
  std::memcpy(&inner[6], inner_src_mac.bytes().data(), 6);
  WriteU16(&inner[12], kEthertypeIpv4);
  std::memcpy(&inner[kEthernetHeaderSize], &b[gre + header], inner_size);
  result.inner = Packet(&pool, std::move(inner));
  return result;
}

GreTunnel::GreTunnel(Ipv4Address local, Ipv4Address remote, std::optional<uint32_t> key)
    : local_(local), remote_(remote), key_(key) {}

std::optional<Packet> GreTunnel::Receive(const Packet& outer) {
  auto result = GreDecapsulate(outer, MacAddress::FromId(remote_.value()),
                               MacAddress::FromId(local_.value()));
  if (!result || result->outer_src != remote_ || result->outer_dst != local_ ||
      result->key != key_) {
    ++rejected_;
    return std::nullopt;
  }
  ++decapsulated_;
  return std::move(result->inner);
}

Packet GreTunnel::Send(const Packet& inner) {
  ++encapsulated_;
  return GreEncapsulate(inner, local_, remote_, MacAddress::FromId(local_.value()),
                        MacAddress::FromId(remote_.value()), key_);
}

}  // namespace potemkin
