// Network fabric modelling: nodes, point-to-point links with latency/bandwidth/
// queueing, and a learning switch. All delivery is mediated by the event loop, so
// packet timing composes with the rest of the simulation.
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/event_loop.h"
#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace potemkin {

// Anything that can receive a frame from the fabric.
class NetworkNode {
 public:
  virtual ~NetworkNode() = default;
  virtual void HandleFrame(Packet packet) = 0;
  virtual std::string node_name() const = 0;
};

struct LinkStats {
  uint64_t packets_delivered = 0;
  uint64_t packets_dropped = 0;
  uint64_t bytes_delivered = 0;
};

// Full-duplex point-to-point link. Each direction models store-and-forward
// serialization at `bandwidth_bps` plus fixed propagation `latency`, with a
// drop-tail queue of `queue_limit` packets.
class Link {
 public:
  Link(EventLoop* loop, std::string name, Duration latency, double bandwidth_bps,
       size_t queue_limit = 1024);

  void Connect(NetworkNode* a, NetworkNode* b);

  // Sends from one endpoint to the other; `from` must be a connected endpoint.
  // Returns false if the packet was dropped at the queue.
  bool Send(NetworkNode* from, Packet packet);

  const LinkStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  struct Direction {
    NetworkNode* destination = nullptr;
    TimePoint busy_until;
    size_t queued = 0;
  };

  bool SendDirection(Direction& dir, Packet packet);

  EventLoop* loop_;
  std::string name_;
  Duration latency_;
  double bandwidth_bps_;
  size_t queue_limit_;
  NetworkNode* endpoint_a_ = nullptr;
  NetworkNode* endpoint_b_ = nullptr;
  Direction a_to_b_;
  Direction b_to_a_;
  LinkStats stats_;
};

// A learning Ethernet switch connecting many nodes. Unknown destinations flood.
class Switch {
 public:
  Switch(EventLoop* loop, std::string name, Duration port_latency);

  // Attaches a node. If `mac` is known in advance it is pre-learned.
  void Attach(NetworkNode* node, MacAddress mac);

  // Injects a frame arriving from `source_node`; forwards by destination MAC.
  void Forward(NetworkNode* source_node, Packet packet);

  uint64_t frames_forwarded() const { return frames_forwarded_; }
  uint64_t frames_flooded() const { return frames_flooded_; }
  size_t table_size() const { return mac_table_.size(); }

 private:
  struct MacHash {
    size_t operator()(const MacAddress& mac) const noexcept {
      size_t h = 1469598103934665603ull;
      for (uint8_t b : mac.bytes()) {
        h = (h ^ b) * 1099511628211ull;
      }
      return h;
    }
  };

  void Deliver(NetworkNode* node, Packet packet);

  EventLoop* loop_;
  std::string name_;
  Duration port_latency_;
  std::vector<NetworkNode*> ports_;
  std::unordered_map<MacAddress, NetworkNode*, MacHash> mac_table_;
  uint64_t frames_forwarded_ = 0;
  uint64_t frames_flooded_ = 0;
};

}  // namespace potemkin

#endif  // SRC_NET_LINK_H_
