#include "src/net/trace.h"

#include <cstring>

#include "src/base/log.h"

namespace potemkin {

namespace {

constexpr char kMagic[8] = {'P', 'K', 'T', '1', 0, 0, 0, 0};
constexpr size_t kRecordSize = 8 + 4 + 4 + 1 + 2 + 2 + 2 + 1;  // 24 bytes

void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

void EncodeRecord(const TraceRecord& r, uint8_t* buf) {
  PutU64(buf, static_cast<uint64_t>(r.time.nanos()));
  PutU32(buf + 8, r.src.value());
  PutU32(buf + 12, r.dst.value());
  buf[16] = static_cast<uint8_t>(r.proto);
  PutU16(buf + 17, r.src_port);
  PutU16(buf + 19, r.dst_port);
  PutU16(buf + 21, r.wire_size);
  buf[23] = r.tcp_flags;
}

TraceRecord DecodeRecord(const uint8_t* buf) {
  TraceRecord r;
  r.time = TimePoint::FromNanos(static_cast<int64_t>(GetU64(buf)));
  r.src = Ipv4Address(GetU32(buf + 8));
  r.dst = Ipv4Address(GetU32(buf + 12));
  r.proto = static_cast<IpProto>(buf[16]);
  r.src_port = GetU16(buf + 17);
  r.dst_port = GetU16(buf + 19);
  r.wire_size = GetU16(buf + 21);
  r.tcp_flags = buf[23];
  return r;
}

}  // namespace

Packet PacketFromRecord(const TraceRecord& record, MacAddress src_mac,
                        MacAddress dst_mac) {
  PacketSpec spec;
  spec.src_mac = src_mac;
  spec.dst_mac = dst_mac;
  spec.src_ip = record.src;
  spec.dst_ip = record.dst;
  spec.proto = record.proto;
  spec.src_port = record.src_port;
  spec.dst_port = record.dst_port;
  spec.tcp_flags = record.tcp_flags != 0 ? record.tcp_flags : TcpFlags::kSyn;
  // Deterministic but distinct initial sequence number per flow.
  spec.seq = record.src.value() * 2654435761u + record.src_port;
  size_t header_size = kEthernetHeaderSize + kIpv4MinHeaderSize;
  switch (record.proto) {
    case IpProto::kTcp:
      header_size += kTcpMinHeaderSize;
      break;
    case IpProto::kUdp:
      header_size += kUdpHeaderSize;
      break;
    case IpProto::kIcmp:
      header_size += kIcmpHeaderSize;
      break;
  }
  if (record.wire_size > header_size) {
    spec.payload.assign(record.wire_size - header_size, 0);
  }
  return BuildPacket(spec);
}

TraceWriter::TraceWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    PK_ERROR << "cannot open trace for writing: " << path;
    return;
  }
  uint8_t header[16] = {0};
  std::memcpy(header, kMagic, 8);
  // Count is patched in Close(); leave zero for now.
  std::fwrite(header, 1, sizeof(header), file_);
}

TraceWriter::~TraceWriter() { Close(); }

void TraceWriter::Append(const TraceRecord& record) {
  if (file_ == nullptr) {
    return;
  }
  uint8_t buf[kRecordSize];
  EncodeRecord(record, buf);
  std::fwrite(buf, 1, sizeof(buf), file_);
  ++count_;
}

void TraceWriter::Close() {
  if (file_ == nullptr) {
    return;
  }
  std::fseek(file_, 8, SEEK_SET);
  uint8_t count_buf[8];
  PutU64(count_buf, count_);
  std::fwrite(count_buf, 1, sizeof(count_buf), file_);
  std::fclose(file_);
  file_ = nullptr;
}

TraceReader::TraceReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    PK_ERROR << "cannot open trace for reading: " << path;
    return;
  }
  uint8_t header[16];
  if (std::fread(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::memcmp(header, kMagic, 8) != 0) {
    PK_ERROR << "bad trace header in " << path;
    std::fclose(file_);
    file_ = nullptr;
    return;
  }
  count_ = GetU64(header + 8);
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

bool TraceReader::Next(TraceRecord* out) {
  if (file_ == nullptr || read_ >= count_) {
    return false;
  }
  uint8_t buf[kRecordSize];
  if (std::fread(buf, 1, sizeof(buf), file_) != sizeof(buf)) {
    return false;
  }
  *out = DecodeRecord(buf);
  ++read_;
  return true;
}

std::vector<TraceRecord> TraceReader::ReadAll(const std::string& path) {
  std::vector<TraceRecord> records;
  TraceReader reader(path);
  TraceRecord record;
  while (reader.Next(&record)) {
    records.push_back(record);
  }
  return records;
}

}  // namespace potemkin
