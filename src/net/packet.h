// Wire-format packets.
//
// Packets in the simulation are real byte buffers containing real Ethernet, IPv4,
// TCP/UDP/ICMP headers in network byte order with correct Internet checksums. This
// keeps the gateway honest: address rewriting for reflection/containment must update
// checksums exactly as a real middlebox would, and tests validate the invariants.
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/net/ipv4.h"

namespace potemkin {

inline constexpr uint16_t kEthertypeIpv4 = 0x0800;
inline constexpr size_t kEthernetHeaderSize = 14;
inline constexpr size_t kIpv4MinHeaderSize = 20;
inline constexpr size_t kTcpMinHeaderSize = 20;
inline constexpr size_t kUdpHeaderSize = 8;
inline constexpr size_t kIcmpHeaderSize = 8;

enum class IpProto : uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

const char* IpProtoName(IpProto proto);

struct TcpFlags {
  static constexpr uint8_t kFin = 0x01;
  static constexpr uint8_t kSyn = 0x02;
  static constexpr uint8_t kRst = 0x04;
  static constexpr uint8_t kPsh = 0x08;
  static constexpr uint8_t kAck = 0x10;
};

// An owned frame buffer (Ethernet header onward).
class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t>& mutable_bytes() { return bytes_; }
  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

 private:
  std::vector<uint8_t> bytes_;
};

struct EthernetFields {
  MacAddress dst;
  MacAddress src;
  uint16_t ethertype = 0;
};

struct Ipv4Fields {
  uint8_t header_length = kIpv4MinHeaderSize;  // in bytes
  uint8_t tos = 0;
  uint16_t total_length = 0;
  uint16_t id = 0;
  uint8_t ttl = 0;
  IpProto proto = IpProto::kTcp;
  uint16_t checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;
};

struct TcpFields {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t header_length = kTcpMinHeaderSize;  // in bytes
  uint8_t flags = 0;
  uint16_t window = 0;
  uint16_t checksum = 0;
};

struct UdpFields {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;
  uint16_t checksum = 0;
};

struct IcmpFields {
  uint8_t type = 0;
  uint8_t code = 0;
  uint16_t checksum = 0;
  uint16_t id = 0;
  uint16_t seq = 0;
};

// A parsed, validated view over a Packet. The view holds offsets into the packet's
// buffer; it remains valid only while the packet is alive and unmodified.
class PacketView {
 public:
  // Returns nullopt if the frame is truncated or not IPv4.
  static std::optional<PacketView> Parse(const Packet& packet);

  const EthernetFields& eth() const { return eth_; }
  const Ipv4Fields& ip() const { return ip_; }
  bool is_tcp() const { return ip_.proto == IpProto::kTcp && has_l4_; }
  bool is_udp() const { return ip_.proto == IpProto::kUdp && has_l4_; }
  bool is_icmp() const { return ip_.proto == IpProto::kIcmp && has_l4_; }
  const TcpFields& tcp() const { return tcp_; }
  const UdpFields& udp() const { return udp_; }
  const IcmpFields& icmp() const { return icmp_; }

  // L4 source/destination port (0 for ICMP).
  uint16_t src_port() const;
  uint16_t dst_port() const;

  std::span<const uint8_t> l4_payload() const { return payload_; }

  // Human-readable one-liner, e.g. "TCP 1.2.3.4:80 > 10.0.0.1:1234 [S] len=0".
  std::string Describe() const;

 private:
  EthernetFields eth_;
  Ipv4Fields ip_;
  TcpFields tcp_;
  UdpFields udp_;
  IcmpFields icmp_;
  bool has_l4_ = false;
  std::span<const uint8_t> payload_;
};

// Declarative packet construction; checksums are computed during build.
struct PacketSpec {
  MacAddress src_mac;
  MacAddress dst_mac;
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  IpProto proto = IpProto::kTcp;
  uint8_t ttl = 64;
  uint16_t ip_id = 0;

  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  // TCP only:
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t tcp_flags = TcpFlags::kSyn;
  uint16_t window = 65535;
  // ICMP only:
  uint8_t icmp_type = 8;  // echo request
  uint8_t icmp_code = 0;
  uint16_t icmp_id = 0;
  uint16_t icmp_seq = 0;

  std::vector<uint8_t> payload;
};

Packet BuildPacket(const PacketSpec& spec);

// In-place header mutation (used by the gateway for reflection / NAT); both update
// the IPv4 header checksum and the TCP/UDP pseudo-header checksum.
void RewriteIpv4Src(Packet& packet, Ipv4Address new_src);
void RewriteIpv4Dst(Packet& packet, Ipv4Address new_dst);
void RewriteMacs(Packet& packet, MacAddress src, MacAddress dst);
// Decrements TTL with incremental checksum update; returns false if TTL hit zero.
bool DecrementTtl(Packet& packet);

// Verifies the IPv4 header checksum and (for TCP/UDP/ICMP) the transport checksum.
bool ValidateChecksums(const Packet& packet);

inline constexpr uint8_t kIcmpEchoRequest = 8;
inline constexpr uint8_t kIcmpEchoReply = 0;
inline constexpr uint8_t kIcmpDestUnreachable = 3;
inline constexpr uint8_t kIcmpCodePortUnreachable = 3;
inline constexpr uint8_t kIcmpTimeExceeded = 11;

// True for ICMP error messages (which quote the offending packet).
bool IsIcmpError(const PacketView& view);

// For an ICMP error, extracts the (src, dst) of the quoted original packet from
// the payload (the embedded IPv4 header). nullopt if not an error / truncated.
std::optional<std::pair<Ipv4Address, Ipv4Address>> IcmpEmbeddedAddresses(
    const PacketView& view);

// Builds the standard quotation payload for an ICMP error about `offending`:
// its IPv4 header plus the first 8 payload bytes (RFC 792).
std::vector<uint8_t> IcmpQuoteOf(const Packet& offending);

}  // namespace potemkin

#endif  // SRC_NET_PACKET_H_
