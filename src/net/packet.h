// Wire-format packets.
//
// Packets in the simulation are real byte buffers containing real Ethernet, IPv4,
// TCP/UDP/ICMP headers in network byte order with correct Internet checksums. This
// keeps the gateway honest: address rewriting for reflection/containment must update
// checksums exactly as a real middlebox would, and tests validate the invariants.
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/base/session.h"
#include "src/net/ipv4.h"
#include "src/net/packet_pool.h"

namespace potemkin {

inline constexpr uint16_t kEthertypeIpv4 = 0x0800;
inline constexpr size_t kEthernetHeaderSize = 14;
inline constexpr size_t kIpv4MinHeaderSize = 20;
inline constexpr size_t kTcpMinHeaderSize = 20;
inline constexpr size_t kUdpHeaderSize = 8;
inline constexpr size_t kIcmpHeaderSize = 8;

enum class IpProto : uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

const char* IpProtoName(IpProto proto);

struct TcpFlags {
  static constexpr uint8_t kFin = 0x01;
  static constexpr uint8_t kSyn = 0x02;
  static constexpr uint8_t kRst = 0x04;
  static constexpr uint8_t kPsh = 0x08;
  static constexpr uint8_t kAck = 0x10;
};

// An owned frame buffer (Ethernet header onward).
//
// A Packet may be pool-backed: when constructed with a PacketPool its buffer
// is returned to that pool on destruction (or overwrite) instead of freed, so
// steady-state traffic recycles buffers with zero heap churn. Pool-backed and
// plain packets are byte-for-byte interchangeable; copies are always plain
// (copying is a cold, test-only path and must not contend for pool buffers).
class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}
  Packet(PacketPool* pool, std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)), pool_(pool) {}

  ~Packet() { Recycle(); }

  Packet(const Packet& other) : bytes_(other.bytes_) {}
  Packet& operator=(const Packet& other) {
    if (this != &other) {
      Recycle();
      bytes_ = other.bytes_;
    }
    return *this;
  }

  Packet(Packet&& other) noexcept
      : bytes_(std::move(other.bytes_)),
        pool_(std::exchange(other.pool_, nullptr)) {
    other.bytes_.clear();
  }
  Packet& operator=(Packet&& other) noexcept {
    if (this != &other) {
      Recycle();
      bytes_ = std::move(other.bytes_);
      other.bytes_.clear();
      pool_ = std::exchange(other.pool_, nullptr);
    }
    return *this;
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t>& mutable_bytes() { return bytes_; }
  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  // Pool this packet's buffer recycles into on destruction (null = plain heap
  // free). Pools are thread-affine: when a packet crosses a shard boundary the
  // consumer re-targets it at its own pool with `set_pool`, so buffers always
  // recycle into the pool owned by the thread that frees them. Buffers migrate
  // between per-shard pools with the traffic — that is by design.
  PacketPool* pool() const { return pool_; }
  void set_pool(PacketPool* pool) { pool_ = pool; }

 private:
  void Recycle() {
    if (pool_ != nullptr) {
      pool_->Release(std::move(bytes_));
      pool_ = nullptr;
      bytes_.clear();
    }
  }

  std::vector<uint8_t> bytes_;
  PacketPool* pool_ = nullptr;
};

// The hot path moves packets through closures and tables; a throwing or
// copying move would silently reintroduce per-packet allocations.
static_assert(std::is_nothrow_move_constructible_v<Packet>);
static_assert(std::is_nothrow_move_assignable_v<Packet>);

struct EthernetFields {
  MacAddress dst;
  MacAddress src;
  uint16_t ethertype = 0;
};

struct Ipv4Fields {
  uint8_t header_length = kIpv4MinHeaderSize;  // in bytes
  uint8_t tos = 0;
  uint16_t total_length = 0;
  uint16_t id = 0;
  uint8_t ttl = 0;
  IpProto proto = IpProto::kTcp;
  uint16_t checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;
};

struct TcpFields {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t header_length = kTcpMinHeaderSize;  // in bytes
  uint8_t flags = 0;
  uint16_t window = 0;
  uint16_t checksum = 0;
};

struct UdpFields {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;
  uint16_t checksum = 0;
};

struct IcmpFields {
  uint8_t type = 0;
  uint8_t code = 0;
  uint16_t checksum = 0;
  uint16_t id = 0;
  uint16_t seq = 0;
};

// A parsed, validated view over a Packet.
//
// Validity rules (the parse-once contract): the view points into the packet's
// heap buffer, so it SURVIVES moving the Packet (the buffer address is stable
// under move) and it survives in-place rewrites made through the view-aware
// helpers below, which keep the decoded fields in sync. It is INVALIDATED by
// anything that may reallocate or reshape the buffer — resizing via
// `mutable_bytes()`, overwriting the packet, or destroying it. `ValidFor()`
// checks the buffer identity and is asserted by the rewrite helpers.
class PacketView {
 public:
  // Returns nullopt if the frame is truncated or not IPv4.
  static std::optional<PacketView> Parse(const Packet& packet);

  const EthernetFields& eth() const { return eth_; }
  const Ipv4Fields& ip() const { return ip_; }
  bool is_tcp() const { return ip_.proto == IpProto::kTcp && has_l4_; }
  bool is_udp() const { return ip_.proto == IpProto::kUdp && has_l4_; }
  bool is_icmp() const { return ip_.proto == IpProto::kIcmp && has_l4_; }
  const TcpFields& tcp() const { return tcp_; }
  const UdpFields& udp() const { return udp_; }
  const IcmpFields& icmp() const { return icmp_; }

  // L4 source/destination port (0 for ICMP).
  uint16_t src_port() const;
  uint16_t dst_port() const;

  std::span<const uint8_t> l4_payload() const { return payload_; }

  // True while this view still describes `packet`'s buffer (see class comment).
  bool ValidFor(const Packet& packet) const {
    return data_ == packet.bytes().data() && size_ == packet.size();
  }

  // Attack-session annotation. Not a wire field: the gateway stamps the id of
  // the destination binding's session before handing the view down the farm
  // side, so the guest/backend layers can attribute ledger events without a
  // lookup of their own. Copies of the view carry the id along.
  SessionId session() const { return session_; }
  void set_session(SessionId session) { session_ = session; }

  // Human-readable one-liner, e.g. "TCP 1.2.3.4:80 > 10.0.0.1:1234 [S] len=0".
  std::string Describe() const;

 private:
  friend void RewriteIpv4Src(Packet&, Ipv4Address, PacketView*);
  friend void RewriteIpv4Dst(Packet&, Ipv4Address, PacketView*);
  friend bool DecrementTtl(Packet&, PacketView*);

  EthernetFields eth_;
  Ipv4Fields ip_;
  TcpFields tcp_;
  UdpFields udp_;
  IcmpFields icmp_;
  bool has_l4_ = false;
  std::span<const uint8_t> payload_;
  const uint8_t* data_ = nullptr;  // buffer identity, for ValidFor()
  size_t size_ = 0;
  SessionId session_ = kNoSession;
};

// Declarative packet construction; checksums are computed during build.
struct PacketSpec {
  MacAddress src_mac;
  MacAddress dst_mac;
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  IpProto proto = IpProto::kTcp;
  uint8_t ttl = 64;
  uint16_t ip_id = 0;

  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  // TCP only:
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t tcp_flags = TcpFlags::kSyn;
  uint16_t window = 65535;
  // ICMP only:
  uint8_t icmp_type = 8;  // echo request
  uint8_t icmp_code = 0;
  uint16_t icmp_id = 0;
  uint16_t icmp_seq = 0;

  std::vector<uint8_t> payload;
};

Packet BuildPacket(const PacketSpec& spec);

// Reads the IPv4 destination address straight out of the frame bytes without a
// full parse — the 4-byte peek the sharded gateway uses to pick the owning
// shard before any per-shard work happens. Returns nullopt for frames too
// short to carry an IPv4 header (a later full Parse would reject them too).
std::optional<Ipv4Address> PeekIpv4Dst(const Packet& packet);
// Same, for the source address (outbound traffic shards by the VM's address).
std::optional<Ipv4Address> PeekIpv4Src(const Packet& packet);

// In-place header mutation (used by the gateway for reflection / NAT); both update
// the IPv4 header checksum and the TCP/UDP pseudo-header checksum via RFC 1624
// deltas (no full recompute). When `view` is non-null it must be a live view of
// `packet` (asserted); the rewrite keeps its decoded fields in sync, so callers
// can keep threading the same view instead of re-parsing.
void RewriteIpv4Src(Packet& packet, Ipv4Address new_src,
                    PacketView* view = nullptr);
void RewriteIpv4Dst(Packet& packet, Ipv4Address new_dst,
                    PacketView* view = nullptr);
void RewriteMacs(Packet& packet, MacAddress src, MacAddress dst);
// Decrements TTL with incremental checksum update; returns false if TTL hit zero.
bool DecrementTtl(Packet& packet, PacketView* view = nullptr);

// Verifies the IPv4 header checksum and (for TCP/UDP/ICMP) the transport checksum.
bool ValidateChecksums(const Packet& packet);

inline constexpr uint8_t kIcmpEchoRequest = 8;
inline constexpr uint8_t kIcmpEchoReply = 0;
inline constexpr uint8_t kIcmpDestUnreachable = 3;
inline constexpr uint8_t kIcmpCodePortUnreachable = 3;
inline constexpr uint8_t kIcmpTimeExceeded = 11;

// True for ICMP error messages (which quote the offending packet).
bool IsIcmpError(const PacketView& view);

// For an ICMP error, extracts the (src, dst) of the quoted original packet from
// the payload (the embedded IPv4 header). nullopt if not an error / truncated.
std::optional<std::pair<Ipv4Address, Ipv4Address>> IcmpEmbeddedAddresses(
    const PacketView& view);

// Builds the standard quotation payload for an ICMP error about `offending`:
// its IPv4 header plus the first 8 payload bytes (RFC 792).
std::vector<uint8_t> IcmpQuoteOf(const Packet& offending);

}  // namespace potemkin

#endif  // SRC_NET_PACKET_H_
