// Size-classed recycling pool for packet frame buffers.
//
// The gateway hit path handles one short-lived frame per telescope packet;
// without a pool every frame costs one heap allocation at build/decap time and
// one free at delivery. PacketPool keeps retired buffers on per-size-class
// freelists so steady-state traffic recycles the same handful of buffers and
// the allocator drops out of the per-packet profile entirely.
//
// Buffers are plain `std::vector<uint8_t>` so a pooled `Packet` is layout- and
// behavior-compatible with the seed's vector-backed one: callers may resize or
// even swap out the vector through `mutable_bytes()`; Release() re-classifies
// by capacity on the way back in.
//
// Thread model: pools are THREAD-AFFINE, not thread-safe. Each gateway shard
// owns a pool touched only from that shard's thread; a packet that crosses a
// shard boundary is re-targeted at the consumer's pool (Packet::set_pool)
// before the consumer can free it, so Acquire/Release never race. The
// process-wide Default() pool belongs to whichever single thread builds and
// frees packets outside the sharded datapath (drivers, tests, examples).
#ifndef SRC_NET_PACKET_POOL_H_
#define SRC_NET_PACKET_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace potemkin {

class PacketPool {
 public:
  // Size classes are powers of two from 128 B to 4 KiB — every Ethernet frame
  // the farm builds (min probe ~54 B, max MTU-ish 1500 B, GRE-encapsulated a
  // bit more) lands in one. Larger requests fall through to the heap.
  static constexpr size_t kMinClassBytes = 128;
  static constexpr size_t kNumClasses = 6;
  static constexpr size_t kMaxClassBytes = kMinClassBytes << (kNumClasses - 1);
  // Per-class cache bound: beyond this, returned buffers are freed rather than
  // cached, so a burst cannot pin memory forever.
  static constexpr size_t kMaxCachedPerClass = 8192;

  struct Stats {
    uint64_t acquires = 0;     // buffers handed out
    uint64_t pool_hits = 0;    // ... of which came from a freelist
    uint64_t allocations = 0;  // ... of which hit the heap (miss or oversize)
    uint64_t releases = 0;     // buffers offered back
    uint64_t discards = 0;     // ... of which were freed (class full/undersize)
  };

  // Process-wide pool used by BuildPacket/GRE decap. Deliberately leaked so
  // packet destructors running during static teardown never race the pool's
  // own destruction (the block stays reachable, so leak checkers ignore it).
  static PacketPool& Default() {
    static PacketPool* const pool = new PacketPool();
    return *pool;
  }

  // Returns a zero-filled buffer with size() == `size`. Pool-served buffers
  // have capacity >= their size class, so growing back up to the class size
  // never reallocates (and never invalidates a PacketView).
  std::vector<uint8_t> Acquire(size_t size) {
    ++stats_.acquires;
    const size_t cls = ClassFor(size);
    if (cls < kNumClasses && !free_[cls].empty()) {
      ++stats_.pool_hits;
      std::vector<uint8_t> buffer = std::move(free_[cls].back());
      free_[cls].pop_back();
      buffer.assign(size, 0);  // within capacity: no reallocation
      return buffer;
    }
    ++stats_.allocations;
    std::vector<uint8_t> buffer;
    if (cls < kNumClasses) buffer.reserve(kMinClassBytes << cls);
    buffer.resize(size, 0);
    return buffer;
  }

  // Takes ownership of a retired buffer. Classified by capacity, so a buffer
  // that grew while in use is simply cached under its larger class.
  void Release(std::vector<uint8_t>&& buffer) {
    ++stats_.releases;
    const size_t capacity = buffer.capacity();
    if (capacity >= kMinClassBytes) {
      // Largest class the buffer can fully serve.
      size_t cls = 0;
      while (cls + 1 < kNumClasses &&
             capacity >= (kMinClassBytes << (cls + 1))) {
        ++cls;
      }
      if (free_[cls].size() < kMaxCachedPerClass) {
        free_[cls].push_back(std::move(buffer));
        return;
      }
    }
    ++stats_.discards;
    // `buffer` is freed here.
  }

  const Stats& stats() const { return stats_; }

  size_t cached_buffers() const {
    size_t total = 0;
    for (const auto& list : free_) total += list.size();
    return total;
  }

  // Drops every cached buffer (tests use this to isolate measurements).
  void Trim() {
    for (auto& list : free_) {
      list.clear();
      list.shrink_to_fit();
    }
  }

 private:
  // Smallest class whose buffer holds `size` bytes; kNumClasses if oversize.
  static size_t ClassFor(size_t size) {
    size_t cls = 0;
    size_t bytes = kMinClassBytes;
    while (cls < kNumClasses && bytes < size) {
      bytes <<= 1;
      ++cls;
    }
    return cls;
  }

  std::vector<std::vector<uint8_t>> free_[kNumClasses];
  Stats stats_;
};

}  // namespace potemkin

#endif  // SRC_NET_PACKET_POOL_H_
