#include "src/net/dns.h"

#include "src/base/strings.h"

namespace potemkin {

namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v >> 16));
  PutU16(out, static_cast<uint16_t>(v));
}

bool GetU16(const uint8_t* data, size_t length, size_t& pos, uint16_t* out) {
  if (pos + 2 > length) {
    return false;
  }
  *out = static_cast<uint16_t>((data[pos] << 8) | data[pos + 1]);
  pos += 2;
  return true;
}

void EncodeName(std::vector<uint8_t>& out, const std::string& name) {
  for (const auto& label : StrSplit(name, '.')) {
    if (label.empty() || label.size() > 63) {
      continue;
    }
    out.push_back(static_cast<uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
  }
  out.push_back(0);
}

// Decodes a (possibly compressed) name starting at `pos`; advances pos past the
// name's encoding at its original location.
bool DecodeName(const uint8_t* data, size_t length, size_t& pos, std::string* out) {
  std::string name;
  size_t cursor = pos;
  bool jumped = false;
  size_t jumps = 0;
  while (true) {
    if (cursor >= length || jumps > 16) {
      return false;
    }
    const uint8_t len = data[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (cursor + 2 > length) {
        return false;
      }
      const size_t target = static_cast<size_t>((len & 0x3f) << 8) | data[cursor + 1];
      if (!jumped) {
        pos = cursor + 2;
        jumped = true;
      }
      cursor = target;
      ++jumps;
      continue;
    }
    if (len == 0) {
      if (!jumped) {
        pos = cursor + 1;
      }
      break;
    }
    if (cursor + 1 + len > length) {
      return false;
    }
    if (!name.empty()) {
      name += '.';
    }
    name.append(reinterpret_cast<const char*>(data + cursor + 1), len);
    cursor += 1 + len;
  }
  *out = std::move(name);
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeDnsQuery(const DnsQuery& query) {
  std::vector<uint8_t> out;
  PutU16(out, query.id);
  PutU16(out, 0x0100);  // RD set
  PutU16(out, 1);       // QDCOUNT
  PutU16(out, 0);       // ANCOUNT
  PutU16(out, 0);       // NSCOUNT
  PutU16(out, 0);       // ARCOUNT
  EncodeName(out, query.name);
  PutU16(out, query.qtype);
  PutU16(out, kDnsClassIn);
  return out;
}

std::optional<DnsQuery> ParseDnsQuery(const uint8_t* data, size_t length) {
  size_t pos = 0;
  DnsQuery query;
  uint16_t flags = 0;
  uint16_t qdcount = 0;
  uint16_t skip = 0;
  if (!GetU16(data, length, pos, &query.id) || !GetU16(data, length, pos, &flags) ||
      !GetU16(data, length, pos, &qdcount) || !GetU16(data, length, pos, &skip) ||
      !GetU16(data, length, pos, &skip) || !GetU16(data, length, pos, &skip)) {
    return std::nullopt;
  }
  if ((flags & 0x8000) != 0 || qdcount < 1) {
    return std::nullopt;  // not a query
  }
  if (!DecodeName(data, length, pos, &query.name)) {
    return std::nullopt;
  }
  uint16_t qclass = 0;
  if (!GetU16(data, length, pos, &query.qtype) ||
      !GetU16(data, length, pos, &qclass)) {
    return std::nullopt;
  }
  return query;
}

std::vector<uint8_t> EncodeDnsResponse(const DnsResponse& response) {
  std::vector<uint8_t> out;
  PutU16(out, response.id);
  PutU16(out, static_cast<uint16_t>(0x8180 | (response.rcode & 0x0f)));  // QR|RD|RA
  PutU16(out, 1);  // QDCOUNT
  PutU16(out, static_cast<uint16_t>(response.addresses.size()));
  PutU16(out, 0);
  PutU16(out, 0);
  EncodeName(out, response.name);
  PutU16(out, kDnsTypeA);
  PutU16(out, kDnsClassIn);
  for (const auto& addr : response.addresses) {
    PutU16(out, 0xc00c);  // compression pointer to the question name
    PutU16(out, kDnsTypeA);
    PutU16(out, kDnsClassIn);
    PutU32(out, 60);  // TTL
    PutU16(out, 4);   // RDLENGTH
    PutU32(out, addr.value());
  }
  return out;
}

std::optional<DnsResponse> ParseDnsResponse(const uint8_t* data, size_t length) {
  size_t pos = 0;
  DnsResponse response;
  uint16_t flags = 0;
  uint16_t qdcount = 0;
  uint16_t ancount = 0;
  uint16_t skip = 0;
  if (!GetU16(data, length, pos, &response.id) || !GetU16(data, length, pos, &flags) ||
      !GetU16(data, length, pos, &qdcount) || !GetU16(data, length, pos, &ancount) ||
      !GetU16(data, length, pos, &skip) || !GetU16(data, length, pos, &skip)) {
    return std::nullopt;
  }
  if ((flags & 0x8000) == 0) {
    return std::nullopt;  // not a response
  }
  response.rcode = static_cast<uint8_t>(flags & 0x0f);
  for (uint16_t q = 0; q < qdcount; ++q) {
    std::string name;
    if (!DecodeName(data, length, pos, &name)) {
      return std::nullopt;
    }
    if (q == 0) {
      response.name = name;
    }
    uint16_t qtype = 0;
    uint16_t qclass = 0;
    if (!GetU16(data, length, pos, &qtype) || !GetU16(data, length, pos, &qclass)) {
      return std::nullopt;
    }
  }
  for (uint16_t a = 0; a < ancount; ++a) {
    std::string name;
    if (!DecodeName(data, length, pos, &name)) {
      return std::nullopt;
    }
    uint16_t rtype = 0;
    uint16_t rclass = 0;
    uint16_t rdlength = 0;
    if (!GetU16(data, length, pos, &rtype) || !GetU16(data, length, pos, &rclass)) {
      return std::nullopt;
    }
    pos += 4;  // TTL
    if (!GetU16(data, length, pos, &rdlength) || pos + rdlength > length) {
      return std::nullopt;
    }
    if (rtype == kDnsTypeA && rdlength == 4) {
      const uint32_t v = (static_cast<uint32_t>(data[pos]) << 24) |
                         (static_cast<uint32_t>(data[pos + 1]) << 16) |
                         (static_cast<uint32_t>(data[pos + 2]) << 8) | data[pos + 3];
      response.addresses.push_back(Ipv4Address(v));
    }
    pos += rdlength;
  }
  return response;
}

}  // namespace potemkin
