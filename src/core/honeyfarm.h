// The Potemkin honeyfarm: top-level orchestrator and public entry point.
//
// Wires a gateway to a cluster of clone servers over one event loop, attaches worm
// runtimes and epidemic tracking, replays traffic (live injection or recorded
// traces), and samples farm-wide telemetry. Examples and benchmarks talk to this
// class; everything underneath is reachable for inspection.
#ifndef SRC_CORE_HONEYFARM_H_
#define SRC_CORE_HONEYFARM_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/base/event_loop.h"
#include "src/base/log.h"
#include "src/base/stats.h"
#include "src/core/clone_server.h"
#include "src/gateway/gateway.h"
#include "src/gateway/sharded_gateway.h"
#include "src/guest/infection_agent.h"
#include "src/malware/epidemic.h"
#include "src/malware/worm.h"
#include "src/net/gre.h"
#include "src/net/trace.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/health_snapshot.h"
#include "src/obs/observability.h"
#include "src/obs/telemetry_exporter.h"
#include "src/obs/watchdog.h"

namespace potemkin {

struct HoneyfarmConfig {
  // The emulated address space; every address in it is a potential honeypot.
  Ipv4Prefix prefix = Ipv4Prefix(Ipv4Address(10, 1, 0, 0), 16);
  uint32_t num_hosts = 4;
  // Per-host template; host ids/names/seeds are filled in per instance.
  CloneServerConfig server_template;
  GatewayConfig gateway;
  // Gateway shard count (power of two). 1 — the default — is byte-identical
  // to the pre-sharding farm. N > 1 partitions the gateway's tables by
  // destination address across N shard instances on the farm's single event
  // loop (still deterministic); cross-shard traffic rides the handoff rings.
  uint32_t gateway_shards = 1;
  // Memory-pressure recycling. When the server template's host config sets a
  // nonzero pressure_high_watermark, Start() schedules a periodic pressure
  // sweep: whenever any host reports pressure, the gateway retires up to
  // `pressure_reclaim_batch` of the farm's most-idle VMs (through the normal
  // retire path, so forensics and worm deactivation still run). With the
  // default watermark of 0 the sweep is never scheduled — legacy farms are
  // untouched.
  Duration pressure_check_interval = Duration::Seconds(1.0);
  uint32_t pressure_reclaim_batch = 16;
  uint64_t seed = 42;
  // Ring size of the farm's event ledger. The default suits tests and short
  // runs; long replays that want complete forensic timelines should size this
  // to the expected event volume (~48 bytes/record).
  size_t ledger_capacity = EventLedger::kDefaultCapacity;
};

// A farm-wide telemetry snapshot.
struct FarmSample {
  TimePoint time;
  uint64_t live_bindings = 0;
  uint64_t live_vms = 0;
  uint64_t used_frames = 0;      // machine frames across all hosts
  uint64_t private_pages = 0;    // sum of per-VM deltas
  uint64_t infections = 0;
  double mean_cpu_utilization = 0.0;  // across hosts, since t=0
};

class Honeyfarm : public GatewayBackend {
 public:
  explicit Honeyfarm(const HoneyfarmConfig& config);
  ~Honeyfarm() override;
  Honeyfarm(const Honeyfarm&) = delete;
  Honeyfarm& operator=(const Honeyfarm&) = delete;

  EventLoop& loop() { return loop_; }
  // The farm's own telemetry bundle: every component of this farm registers
  // against it, so concurrent farms (tests, sweeps) never share metric storage.
  Observability& obs() { return obs_; }
  HealthMonitor& health() { return health_; }
  // The sharded gateway facade every packet crosses.
  ShardedGateway& sharded_gateway() { return gateway_; }
  // Shard 0's Gateway — the whole gateway for the default 1-shard farm, which
  // keeps every pre-sharding caller source-compatible. Multi-shard callers
  // that want farm-wide state should use sharded_gateway() instead.
  Gateway& gateway() { return gateway_.shard(0); }
  CloneServer& server(size_t i) {
    PK_CHECK(i < servers_.size())
        << "server index " << i << " out of range (" << servers_.size()
        << " hosts)";
    return *servers_[i];
  }
  size_t server_count() const { return servers_.size(); }
  EpidemicTracker& epidemic() { return epidemic_; }
  const HoneyfarmConfig& config() const { return config_; }

  // ---- Traffic injection ----
  void InjectInbound(Packet packet) { gateway_.HandleInbound(std::move(packet)); }
  // Burst variant: routes the whole burst through the gateway's batched
  // dispatch path (one parse/bin pass). Packets are consumed.
  void InjectInboundBatch(std::span<Packet> packets) {
    gateway_.HandleInboundBatch(packets);
  }

  // GRE termination, as in the paper's deployment (border routers tunnel the
  // telescope prefix to the gateway). After enabling, `InjectTunneled` accepts
  // outer GRE frames from the configured router; inner packets flow to the
  // gateway and mismatched tunnels are rejected.
  void EnableGreTermination(Ipv4Address gateway_ip, Ipv4Address router_ip,
                            std::optional<uint32_t> key);
  void InjectTunneled(const Packet& outer);
  const GreTunnel* gre_tunnel() const { return gre_ ? gre_.get() : nullptr; }
  // Schedules a trace record's packet for its timestamp.
  void ScheduleRecord(const TraceRecord& record);
  // Schedules an entire trace (records must be time-ordered).
  void ScheduleTrace(const std::vector<TraceRecord>& records);
  // Seeds a worm infection: injects the worm's exploit packet from an external
  // attacker address toward `victim` at the current virtual time. Sufficient for
  // permissive guests (payload-bearing segments are accepted directly).
  void SeedWorm(WormRuntime& worm, Ipv4Address attacker, Ipv4Address victim);

  // Handshaking variant for strict-TCP guests: plays the external attacker —
  // SYN, wait for the victim's SYN|ACK at egress, then deliver the exploit on
  // the established connection.
  void SeedWormViaHandshake(WormRuntime& worm, Ipv4Address attacker,
                            Ipv4Address victim);

  // Attaches a post-compromise agent (worm runtime, dropper, escape script):
  // when a guest flips to infected the agent whose exploit vector matches the
  // infecting packet activates — plus every agent that activates on any
  // infection — and retired VMs are handed to every agent for cleanup.
  void AttachAgent(InfectionAgent* agent);
  // Legacy name for worm runtimes; identical to AttachAgent.
  void AttachWorm(WormRuntime* worm);

  // ---- Execution ----
  void RunFor(Duration span) { loop_.RunFor(span); }
  void RunUntil(TimePoint t) { loop_.RunUntil(t); }
  // Starts the recycler and (optionally) periodic telemetry sampling.
  void Start(Duration sample_interval = Duration::Zero());
  // Begins periodic versioned health snapshots (HealthMonitor over this farm's
  // registry). Independent of Start()'s FarmSample sampling.
  void StartHealthSnapshots(Duration interval) { health_.Start(interval); }
  // Starts health snapshots with an SLO watchdog evaluating every sample.
  // Alerts land in the ledger and in each snapshot's `alerts` section.
  void StartWatchdog(Duration interval,
                     std::vector<WatchdogRule> rules = DefaultFarmRules());
  Watchdog* watchdog() { return watchdog_.get(); }
  // Arms a post-mortem flight recorder: containment breaches, raised alerts and
  // fatal logs each dump the recent ledger tail plus the last two health
  // snapshots to a self-contained JSON artifact. Also routes WARN/ERROR logs
  // into this farm's ledger for the artifact's benefit.
  FlightRecorder& ArmFlightRecorder(FlightRecorderConfig config = {});
  FlightRecorder* flight_recorder() { return flight_recorder_.get(); }
  // Starts the periodic JSONL time-series exporter over this farm's registry
  // (and watchdog, when StartWatchdog ran first — call order matters only for
  // the alerts column). Idempotent: later calls return the running exporter.
  TelemetryExporter& StartTelemetry(TelemetryExporterConfig config = {});
  TelemetryExporter* telemetry() { return telemetry_.get(); }

  // The farm's causal event ledger (shared by gateway, engines and guests).
  EventLedger& ledger() { return obs_.ledger; }

  // ---- Telemetry ----
  FarmSample SampleNow();
  const std::vector<FarmSample>& samples() const { return samples_; }
  uint64_t TotalLiveVms() const;
  uint64_t TotalUsedFrames() const;
  uint64_t TotalPrivatePages() const;
  uint64_t total_clones_completed() const;
  // VMs retired by the periodic memory-pressure sweep (see HoneyfarmConfig).
  uint64_t pressure_reclaims() const { return pressure_reclaims_; }
  // One pressure check, immediately: if any host is over its high watermark,
  // retire up to pressure_reclaim_batch most-idle VMs. Returns VMs retired.
  size_t PressureSweepOnce();

  // Packets the gateway released to the real Internet (escape monitoring).
  void set_egress_monitor(std::function<void(const Packet&)> monitor) {
    egress_monitor_ = std::move(monitor);
  }
  uint64_t egress_packet_count() const { return egress_packets_; }

  // ---- Control plane hooks ----
  // Veto over admission, consulted before a host's own CanAdmit: the farm
  // controller installs `pool.Admits(host)` here so draining/down/warming
  // hosts stop taking new bindings without the gateway knowing about
  // lifecycle states. Null (the default) admits by capacity alone.
  using HostAdmissionFilter = std::function<bool(HostId)>;
  void set_host_admission_filter(HostAdmissionFilter filter) {
    admission_filter_ = std::move(filter);
  }
  // Placement score used by PlacementKind::kScored; unset scores every host
  // 0.0 (kScored degrades to first-fit).
  using HostScoreFn = std::function<double(HostId)>;
  void set_host_score_fn(HostScoreFn fn) { score_fn_ = std::move(fn); }
  // Chaos/failover: hard-kills / revives host `i` (see CloneServer::Crash).
  void CrashHost(HostId host) { server(host).Crash(); }
  void RestoreHost(HostId host) { server(host).Restore(); }
  bool HostCrashed(HostId host) const {
    return host < servers_.size() && servers_[host]->crashed();
  }

  // ---- GatewayBackend ----
  size_t NumHosts() const override { return servers_.size(); }
  bool HostCanAdmit(HostId host) const override;
  size_t HostLiveVms(HostId host) const override;
  double HostPlacementScore(HostId host) const override {
    return score_fn_ ? score_fn_(host) : 0.0;
  }
  void SpawnVm(HostId host, Ipv4Address ip, SessionId session,
               std::function<void(VmId)> done) override;
  void RetireVm(HostId host, VmId vm) override;
  void DeliverToVm(HostId host, VmId vm, Packet packet,
                   const PacketView& view) override;

 private:
  void OnInfection(GuestOs& guest, const PacketView& exploit);
  void ScheduleSampling(Duration interval);

  HoneyfarmConfig config_;
  EventLoop loop_;
  // Declared before gateway_/servers_ (whose configs point into it) and
  // destroyed after them, so component destructors can still remove probes.
  Observability obs_;
  HealthMonitor health_{&loop_, &obs_.metrics, "honeyfarm"};
  ShardedGateway gateway_;
  std::vector<std::unique_ptr<CloneServer>> servers_;
  // In-flight handshake seeds, matched against egress SYN|ACKs.
  struct PendingSeed {
    WormRuntime* worm = nullptr;
    Ipv4Address attacker;
    Ipv4Address victim;
    uint16_t attacker_port = 0;
    uint32_t attacker_seq = 0;
  };
  // Returns true if the egress packet completed a pending seed handshake.
  bool MaybeCompleteSeedHandshake(const Packet& packet);

  std::vector<InfectionAgent*> agents_;
  std::vector<PendingSeed> pending_seeds_;
  std::unique_ptr<Watchdog> watchdog_;
  std::unique_ptr<FlightRecorder> flight_recorder_;
  std::unique_ptr<TelemetryExporter> telemetry_;
  bool log_hook_installed_ = false;
  std::unique_ptr<GreTunnel> gre_;
  EpidemicTracker epidemic_;
  std::vector<FarmSample> samples_;
  std::function<void(const Packet&)> egress_monitor_;
  HostAdmissionFilter admission_filter_;
  HostScoreFn score_fn_;
  uint64_t egress_packets_ = 0;
  uint64_t pressure_reclaims_ = 0;
};

// Convenience constructors for common experiment setups.
HoneyfarmConfig MakeDefaultFarmConfig(Ipv4Prefix prefix, uint32_t num_hosts,
                                      uint64_t host_memory_mb,
                                      ContentMode content_mode);

}  // namespace potemkin

#endif  // SRC_CORE_HONEYFARM_H_
