#include "src/core/clone_server.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/hv/snapshot.h"

namespace potemkin {

CloneServer::CloneServer(EventLoop* loop, const CloneServerConfig& config,
                         uint64_t seed)
    : loop_(loop),
      config_(config),
      host_(config.host),
      engine_(loop, &host_, config.engine),
      rng_(seed),
      cpu_(config.cpu) {
  images_.push_back(host_.RegisterImage(config_.image, config_.disk_blocks));
  guest_configs_.push_back(config_.guest);
  for (const auto& profile : config_.extra_profiles) {
    images_.push_back(host_.RegisterImage(profile.image, profile.disk_blocks));
    guest_configs_.push_back(profile.guest);
  }
  // Guests share the host's telemetry bundle so their ledger events land in the
  // same ring as the gateway's and the clone engine's.
  for (auto& guest_config : guest_configs_) {
    if (guest_config.obs == nullptr) {
      guest_config.obs = config_.engine.obs;
    }
  }
  // Pressure victims ride the normal retire path (forensics, guest teardown,
  // worm deactivation) instead of the engine's bare quiesce-and-destroy.
  engine_.set_pressure_reclaim_handler([this](VmId vm) { RetireVm(vm); });
}

size_t CloneServer::SelectProfile(Ipv4Address ip) const {
  if (config_.image_selection == ImageSelection::kPrimaryOnly || images_.size() == 1) {
    return 0;
  }
  // Deterministic spread: the same address always boots the same personality,
  // which keeps repeat visitors' view of "that host's OS" stable. Full
  // murmur3-style finalizer so consecutive addresses still spread evenly.
  uint64_t h = ip.value();
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return static_cast<size_t>(h % images_.size());
}

void CloneServer::SpawnVm(Ipv4Address ip, SessionId session,
                          std::function<void(VmId)> done) {
  if (crashed_) {
    // A dead host cannot clone; fail asynchronously like the engine would so
    // callers never see a re-entrant completion.
    if (done) {
      loop_->ScheduleAfter(Duration::Zero(),
                           [done = std::move(done)] { done(kInvalidVm); });
    }
    return;
  }
  const size_t profile = SelectProfile(ip);
  const std::string name =
      StrFormat("%s/vm-%s", host_.name().c_str(), ip.ToString().c_str());
  const MacAddress mac =
      MacAddress::FromId((static_cast<uint64_t>(config_.host.id) << 40) | ip.value());
  CloneOptions options = config_.clone_memory;
  options.attack_class = static_cast<uint32_t>(profile);
  engine_.RequestClone(images_[profile], name, ip, mac, session, options,
                       [this, ip, profile, done = std::move(done)](
                           VirtualMachine* vm, const CloneTiming&) {
                         OnCloneComplete(ip, profile, vm, done);
                       });
}

void CloneServer::OnCloneComplete(Ipv4Address ip, size_t profile, VirtualMachine* vm,
                                  std::function<void(VmId)> done) {
  if (vm == nullptr) {
    if (done) {
      done(kInvalidVm);
    }
    return;
  }
  if (crashed_) {
    // The engine finished a clone whose request predates the crash; the host
    // is gone, so the machine never existed. Free it and report failure.
    host_.DestroyVm(vm->id());
    if (done) {
      done(kInvalidVm);
    }
    return;
  }
  (void)ip;
  auto guest =
      std::make_unique<GuestOs>(vm, guest_configs_[profile], rng_.Fork(vm->id()));
  GuestOs* guest_ptr = guest.get();
  guest_ptr->set_infection_observer(
      [this](GuestOs& infected, const PacketView& exploit) {
        if (infection_) {
          infection_(infected, exploit);
        }
      });
  vm->set_tx_handler([this](VirtualMachine& sender, Packet packet) {
    if (outbound_) {
      outbound_(config_.host.id, sender.id(), std::move(packet));
    }
  });
  guests_.emplace(vm->id(), std::move(guest));
  cpu_.ChargeClone();
  if (done) {
    done(vm->id());
  }
}

void CloneServer::MaybeArchiveForensics(VirtualMachine& vm) {
  if (config_.forensics_dir.empty() || !vm.infected()) {
    return;
  }
  const VmSnapshot snapshot = VmSnapshot::Capture(vm, loop_->Now());
  const std::string path = StrFormat("%s/vm-%llu-%s.snap",
                                     config_.forensics_dir.c_str(),
                                     static_cast<unsigned long long>(vm.id()),
                                     vm.ip().ToString().c_str());
  if (snapshot.WriteToFile(path)) {
    ++snapshots_written_;
    PK_INFO << "forensic snapshot of infected VM " << vm.name() << " -> " << path
            << " (" << snapshot.delta_pages() << " delta pages)";
  }
}

void CloneServer::RetireVm(VmId vm) {
  VirtualMachine* machine = host_.FindVm(vm);
  if (machine == nullptr) {
    return;
  }
  MaybeArchiveForensics(*machine);
  // Quiesce immediately: no more packet handling or worm scanning from this VM.
  machine->set_state(VmState::kPaused);
  if (retired_) {
    retired_(vm);
  }
  guests_.erase(vm);
  cpu_.ChargeDestroy();
  engine_.RequestDestroy(vm);
}

void CloneServer::DeliverToVm(VmId vm, Packet packet, const PacketView& view) {
  loop_->ScheduleAfter(config_.delivery_latency,
                       [this, vm, packet = std::move(packet), view]() mutable {
                         auto it = guests_.find(vm);
                         if (it == guests_.end()) {
                           return;  // retired while in flight
                         }
                         cpu_.ChargePacket();
                         it->second->HandleFrame(packet, view, loop_->Now());
                       });
}

void CloneServer::Crash() {
  if (crashed_) {
    return;
  }
  crashed_ = true;
  // Collect ids first: DestroyVm mutates the host's VM map.
  std::vector<VmId> victims;
  victims.reserve(host_.live_vm_count());
  host_.ForEachVm([&](VirtualMachine& vm) { victims.push_back(vm.id()); });
  for (const VmId vm : victims) {
    VirtualMachine* machine = host_.FindVm(vm);
    if (machine != nullptr) {
      machine->set_state(VmState::kPaused);
    }
    // Deactivate worms / observers exactly like a retire, but skip the engine:
    // a crash frees everything instantly, no domain_destroy latency.
    if (retired_) {
      retired_(vm);
    }
    guests_.erase(vm);
    host_.DestroyVm(vm);
  }
}

void CloneServer::Restore() { crashed_ = false; }

ImageId CloneServer::image_id(size_t profile) const {
  PK_CHECK(profile < images_.size())
      << "profile " << profile << " out of range (" << images_.size()
      << " profiles)";
  return images_[profile];
}

GuestOs* CloneServer::FindGuest(VmId vm) {
  auto it = guests_.find(vm);
  return it == guests_.end() ? nullptr : it->second.get();
}

GuestStats CloneServer::AggregateGuestStats() const {
  GuestStats total;
  for (const auto& [id, guest] : guests_) {
    const GuestStats& s = guest->stats();
    total.packets_handled += s.packets_handled;
    total.requests_served += s.requests_served;
    total.responses_sent += s.responses_sent;
    total.rst_sent += s.rst_sent;
    total.exploits_received += s.exploits_received;
    total.oom_events += s.oom_events;
  }
  return total;
}

}  // namespace potemkin
