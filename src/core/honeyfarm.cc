#include "src/core/honeyfarm.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/net/packet_pool.h"

namespace potemkin {

namespace {

GatewayConfig WithPrefix(GatewayConfig config, Ipv4Prefix prefix, Observability* obs) {
  config.farm_prefix = prefix;
  config.obs = obs;
  return config;
}

ShardedGatewayConfig FarmGatewayConfig(const HoneyfarmConfig& config,
                                       Observability* obs) {
  ShardedGatewayConfig sharded;
  sharded.gateway = WithPrefix(config.gateway, config.prefix, obs);
  sharded.shard_count = config.gateway_shards;
  return sharded;
}

}  // namespace

Honeyfarm::Honeyfarm(const HoneyfarmConfig& config)
    : config_(config),
      gateway_(&loop_, FarmGatewayConfig(config, &obs_), this) {
  if (config_.ledger_capacity != obs_.ledger.capacity()) {
    obs_.ledger.Reset(config_.ledger_capacity);
  }
  servers_.reserve(config_.num_hosts);
  for (uint32_t i = 0; i < config_.num_hosts; ++i) {
    CloneServerConfig server_config = config_.server_template;
    server_config.host.id = i;
    server_config.host.name = StrFormat("host%u", i);
    server_config.engine.obs = &obs_;
    server_config.engine.trace_track = StrFormat("clone/host%u", i);
    auto server =
        std::make_unique<CloneServer>(&loop_, server_config, config_.seed + 1000 + i);
    server->host().ExportMetrics(&obs_.metrics, server_config.host.name);
    server->set_outbound_handler([this](HostId host, VmId vm, Packet packet) {
      gateway_.HandleOutbound(host, vm, std::move(packet));
    });
    server->set_infection_handler([this](GuestOs& guest, const PacketView& exploit) {
      OnInfection(guest, exploit);
    });
    server->set_retire_handler([this](VmId vm) {
      for (InfectionAgent* agent : agents_) {
        agent->OnVmRetired(vm);
      }
    });
    servers_.push_back(std::move(server));
  }
  gateway_.set_egress_sink([this](Packet packet) {
    ++egress_packets_;
    if (MaybeCompleteSeedHandshake(packet)) {
      return;  // consumed by the synthetic external attacker
    }
    if (egress_monitor_) {
      egress_monitor_(packet);
    }
  });
  epidemic_.ExportMetrics(&obs_.metrics, "epidemic");
  // Farm-level rollups plus the process-wide packet pool's recycling health.
  MetricRegistry& m = obs_.metrics;
  m.RegisterProbe(this, "farm.vms.live", "vms",
                  [this] { return static_cast<double>(TotalLiveVms()); });
  m.RegisterProbe(this, "farm.mem.used_frames", "frames",
                  [this] { return static_cast<double>(TotalUsedFrames()); });
  m.RegisterProbe(this, "farm.pages.private", "pages",
                  [this] { return static_cast<double>(TotalPrivatePages()); });
  m.RegisterProbe(this, "farm.clones.completed", "count", [this] {
    return static_cast<double>(total_clones_completed());
  });
  m.RegisterProbe(this, "farm.egress.packets", "count",
                  [this] { return static_cast<double>(egress_packets_); });
  m.RegisterProbe(this, "farm.pressure.reclaims", "count",
                  [this] { return static_cast<double>(pressure_reclaims_); });
  // Fraction of machine frames in use across all hosts; the watchdog's
  // frame_pool_watermark rule pages off this probe.
  m.RegisterProbe(this, "farm.mem.frame_watermark", "ratio", [this] {
    uint64_t used = 0;
    uint64_t capacity = 0;
    for (const auto& server : servers_) {
      used += server->host().allocator().used_frames();
      capacity += server->host().allocator().capacity_frames();
    }
    return capacity == 0 ? 0.0
                         : static_cast<double>(used) / static_cast<double>(capacity);
  });
  m.RegisterProbe(this, "packet_pool.cached_buffers", "buffers", [] {
    return static_cast<double>(PacketPool::Default().cached_buffers());
  });
  m.RegisterProbe(this, "packet_pool.hit_rate", "ratio", [] {
    const PacketPool::Stats& s = PacketPool::Default().stats();
    return s.acquires == 0 ? 0.0
                           : static_cast<double>(s.pool_hits) /
                                 static_cast<double>(s.acquires);
  });
}

Honeyfarm::~Honeyfarm() {
  if (log_hook_installed_) {
    SetLogHook(nullptr);  // the hook captures this farm's ledger
  }
  obs_.metrics.RemoveProbes(this);
}

void Honeyfarm::StartWatchdog(Duration interval, std::vector<WatchdogRule> rules) {
  if (watchdog_ == nullptr) {
    watchdog_ = std::make_unique<Watchdog>(&obs_.ledger);
    health_.set_watchdog(watchdog_.get());
  }
  watchdog_->AddRules(std::move(rules));
  StartHealthSnapshots(interval);
}

TelemetryExporter& Honeyfarm::StartTelemetry(TelemetryExporterConfig config) {
  if (telemetry_ == nullptr) {
    telemetry_ =
        std::make_unique<TelemetryExporter>(&loop_, &obs_.metrics,
                                            std::move(config));
    telemetry_->set_watchdog(watchdog_.get());
    telemetry_->Start();
  }
  return *telemetry_;
}

FlightRecorder& Honeyfarm::ArmFlightRecorder(FlightRecorderConfig config) {
  if (flight_recorder_ == nullptr) {
    flight_recorder_ =
        std::make_unique<FlightRecorder>(config, &obs_.ledger, &health_);
    flight_recorder_->Arm();
    // Route WARN/ERROR/fatal logs through the ledger so the post-mortem
    // artifact carries the log trail; uninstalled in the destructor.
    EventLedger::InstallLogHook(&obs_.ledger,
                                [this] { return loop_.Now().nanos(); });
    log_hook_installed_ = true;
  }
  return *flight_recorder_;
}

void Honeyfarm::OnInfection(GuestOs& guest, const PacketView& exploit) {
  const Ipv4Address victim = guest.vm()->ip();
  epidemic_.RecordInfection(loop_.Now(), guest.vm()->id(), victim, exploit.ip().src);
  obs_.ledger.Append(LedgerEvent::kInfection, exploit.session(),
                     loop_.Now().nanos(), victim.value(),
                     exploit.ip().src.value());
  gateway_.NotifyInfected(victim);
  // Activate the agent whose exploit vector delivered this infection; fall back
  // to the sole vector-specific agent when the vector is ambiguous. Agents that
  // ride every infection (scripted escape behavior) activate in addition.
  InfectionAgent* matched = nullptr;
  size_t vector_agents = 0;
  InfectionAgent* sole_vector_agent = nullptr;
  for (InfectionAgent* agent : agents_) {
    if (agent->ActivatesOnAnyInfection()) {
      agent->OnGuestInfected(guest, exploit);
      continue;
    }
    ++vector_agents;
    sole_vector_agent = agent;
    if (matched == nullptr &&
        agent->MatchesVector(exploit.ip().proto, exploit.dst_port())) {
      matched = agent;
    }
  }
  if (matched == nullptr && vector_agents == 1) {
    matched = sole_vector_agent;
  }
  if (matched != nullptr) {
    matched->OnGuestInfected(guest, exploit);
  }
}

void Honeyfarm::AttachAgent(InfectionAgent* agent) { agents_.push_back(agent); }

void Honeyfarm::AttachWorm(WormRuntime* worm) { AttachAgent(worm); }

void Honeyfarm::EnableGreTermination(Ipv4Address gateway_ip, Ipv4Address router_ip,
                                     std::optional<uint32_t> key) {
  gre_ = std::make_unique<GreTunnel>(gateway_ip, router_ip, key);
}

void Honeyfarm::InjectTunneled(const Packet& outer) {
  if (gre_ == nullptr) {
    PK_WARN << "GRE frame received but no tunnel configured";
    return;
  }
  auto inner = gre_->Receive(outer);
  if (inner.has_value()) {
    InjectInbound(std::move(*inner));
  }
}

void Honeyfarm::ScheduleRecord(const TraceRecord& record) {
  loop_.ScheduleAt(record.time, [this, record]() {
    InjectInbound(PacketFromRecord(record, MacAddress::FromId(record.src.value()),
                                   MacAddress::FromId(1)));
  });
}

void Honeyfarm::ScheduleTrace(const std::vector<TraceRecord>& records) {
  // Runs of identical timestamps arrive at the gateway as one burst through the
  // batched dispatch path: one callback and one parse/bin pass instead of a
  // scheduled closure per packet. Distinct timestamps keep per-record
  // scheduling (batching across time would distort the replay clock).
  size_t i = 0;
  while (i < records.size()) {
    size_t j = i + 1;
    while (j < records.size() && records[j].time == records[i].time) {
      ++j;
    }
    if (j - i == 1) {
      ScheduleRecord(records[i]);
    } else {
      std::vector<TraceRecord> burst(records.begin() + static_cast<long>(i),
                                     records.begin() + static_cast<long>(j));
      loop_.ScheduleAt(burst.front().time, [this, burst = std::move(burst)]() {
        std::vector<Packet> packets;
        packets.reserve(burst.size());
        for (const auto& record : burst) {
          packets.push_back(PacketFromRecord(
              record, MacAddress::FromId(record.src.value()),
              MacAddress::FromId(1)));
        }
        gateway_.HandleInboundBatch(packets);
      });
    }
    i = j;
  }
}

void Honeyfarm::SeedWorm(WormRuntime& worm, Ipv4Address attacker, Ipv4Address victim) {
  InjectInbound(
      worm.MakeScanPacket(attacker, MacAddress::FromId(attacker.value()), victim));
}

void Honeyfarm::SeedWormViaHandshake(WormRuntime& worm, Ipv4Address attacker,
                                     Ipv4Address victim) {
  PendingSeed seed;
  seed.worm = &worm;
  seed.attacker = attacker;
  seed.victim = victim;
  seed.attacker_port = static_cast<uint16_t>(45000 + pending_seeds_.size());
  seed.attacker_seq = 0x5eed0000 + static_cast<uint32_t>(pending_seeds_.size());
  pending_seeds_.push_back(seed);

  PacketSpec syn;
  syn.src_mac = MacAddress::FromId(attacker.value());
  syn.dst_mac = MacAddress::FromId(1);
  syn.src_ip = attacker;
  syn.dst_ip = victim;
  syn.proto = worm.config().proto;
  syn.src_port = seed.attacker_port;
  syn.dst_port = worm.config().port;
  syn.tcp_flags = TcpFlags::kSyn;
  syn.seq = seed.attacker_seq;
  InjectInbound(BuildPacket(syn));
}

bool Honeyfarm::MaybeCompleteSeedHandshake(const Packet& packet) {
  if (pending_seeds_.empty()) {
    return false;
  }
  const auto view = PacketView::Parse(packet);
  if (!view || !view->is_tcp() ||
      view->tcp().flags != (TcpFlags::kSyn | TcpFlags::kAck)) {
    return false;
  }
  for (auto it = pending_seeds_.begin(); it != pending_seeds_.end(); ++it) {
    if (view->ip().dst == it->attacker && view->ip().src == it->victim &&
        view->tcp().dst_port == it->attacker_port) {
      const PendingSeed seed = *it;
      pending_seeds_.erase(it);
      PacketSpec exploit;
      exploit.src_mac = MacAddress::FromId(seed.attacker.value());
      exploit.dst_mac = MacAddress::FromId(1);
      exploit.src_ip = seed.attacker;
      exploit.dst_ip = seed.victim;
      exploit.proto = IpProto::kTcp;
      exploit.src_port = seed.attacker_port;
      exploit.dst_port = seed.worm->config().port;
      exploit.tcp_flags = TcpFlags::kAck | TcpFlags::kPsh;
      exploit.seq = seed.attacker_seq + 1;
      exploit.ack = view->tcp().seq + 1;
      exploit.payload = seed.worm->config().payload;
      // Deliver after a short think time, as a real attacker's stack would.
      loop_.ScheduleAfter(Duration::Millis(1),
                          [this, p = BuildPacket(exploit)]() mutable {
                            InjectInbound(std::move(p));
                          });
      return true;
    }
  }
  return false;
}

void Honeyfarm::Start(Duration sample_interval) {
  gateway_.StartRecycling();
  if (config_.server_template.host.pressure_high_watermark > 0.0 &&
      !config_.pressure_check_interval.IsZero() &&
      config_.pressure_reclaim_batch > 0) {
    loop_.SchedulePeriodic(config_.pressure_check_interval,
                           [this]() { PressureSweepOnce(); });
  }
  if (!sample_interval.IsZero()) {
    ScheduleSampling(sample_interval);
  }
}

size_t Honeyfarm::PressureSweepOnce() {
  bool under_pressure = false;
  for (const auto& server : servers_) {
    if (server->host().UnderMemoryPressure()) {
      under_pressure = true;
      break;
    }
  }
  if (!under_pressure) {
    return 0;
  }
  const size_t retired = gateway_.ReclaimMostIdle(config_.pressure_reclaim_batch);
  pressure_reclaims_ += retired;
  return retired;
}

void Honeyfarm::ScheduleSampling(Duration interval) {
  loop_.SchedulePeriodic(interval, [this]() { samples_.push_back(SampleNow()); });
}

FarmSample Honeyfarm::SampleNow() {
  FarmSample sample;
  sample.time = loop_.Now();
  sample.live_bindings = gateway_.live_bindings();
  sample.live_vms = TotalLiveVms();
  sample.used_frames = TotalUsedFrames();
  sample.private_pages = TotalPrivatePages();
  sample.infections = epidemic_.total_infections();
  double cpu_sum = 0.0;
  for (const auto& server : servers_) {
    cpu_sum += server->cpu().Utilization(loop_.Now());
  }
  sample.mean_cpu_utilization =
      servers_.empty() ? 0.0 : cpu_sum / static_cast<double>(servers_.size());
  return sample;
}

uint64_t Honeyfarm::TotalLiveVms() const {
  uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->host().live_vm_count();
  }
  return total;
}

uint64_t Honeyfarm::TotalUsedFrames() const {
  uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->host().allocator().used_frames();
  }
  return total;
}

uint64_t Honeyfarm::TotalPrivatePages() const {
  uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->host().TotalPrivatePages();
  }
  return total;
}

uint64_t Honeyfarm::total_clones_completed() const {
  uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->engine().clones_completed();
  }
  return total;
}

bool Honeyfarm::HostCanAdmit(HostId host) const {
  if (host >= servers_.size()) {
    return false;
  }
  // The control plane's lifecycle veto (draining/down/warming) runs first;
  // capacity admission only matters for hosts the controller allows.
  if (admission_filter_ && !admission_filter_(host)) {
    return false;
  }
  return servers_[host]->CanAdmit();
}

size_t Honeyfarm::HostLiveVms(HostId host) const {
  return host < servers_.size() ? servers_[host]->LiveVms() : 0;
}

void Honeyfarm::SpawnVm(HostId host, Ipv4Address ip, SessionId session,
                        std::function<void(VmId)> done) {
  PK_CHECK(host < servers_.size());
  servers_[host]->SpawnVm(ip, session, std::move(done));
}

void Honeyfarm::RetireVm(HostId host, VmId vm) {
  PK_CHECK(host < servers_.size());
  servers_[host]->RetireVm(vm);
}

void Honeyfarm::DeliverToVm(HostId host, VmId vm, Packet packet,
                            const PacketView& view) {
  PK_CHECK(host < servers_.size());
  servers_[host]->DeliverToVm(vm, std::move(packet), view);
}

HoneyfarmConfig MakeDefaultFarmConfig(Ipv4Prefix prefix, uint32_t num_hosts,
                                      uint64_t host_memory_mb,
                                      ContentMode content_mode) {
  HoneyfarmConfig config;
  config.prefix = prefix;
  config.num_hosts = num_hosts;
  config.server_template.host.memory_mb = host_memory_mb;
  config.server_template.host.content_mode = content_mode;
  config.server_template.image.num_pages = 8192;  // 32 MiB guest image
  config.server_template.guest.services = DefaultWindowsServices();
  config.gateway.farm_prefix = prefix;
  return config;
}

}  // namespace potemkin
