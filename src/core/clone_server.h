// Per-host clone server daemon.
//
// One runs on every physical host of the farm: it owns the host's hypervisor
// state, serves the gateway's spawn/retire/deliver requests, instantiates the
// guest OS model on each new clone, and wires every VM's vNIC back toward the
// gateway. It is the glue between the control plane (gateway decisions) and the
// hypervisor substrate.
#ifndef SRC_CORE_CLONE_SERVER_H_
#define SRC_CORE_CLONE_SERVER_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/event_loop.h"
#include "src/base/rng.h"
#include "src/base/session.h"
#include "src/guest/guest_os.h"
#include "src/hv/clone_engine.h"
#include "src/hv/cpu_model.h"
#include "src/hv/physical_host.h"

namespace potemkin {

// A bootable personality: reference image plus the guest behaviour that runs on
// it. Hosts can carry several (e.g. a Windows and a Linux profile) and bind them
// to addresses deterministically, so the emulated network presents OS diversity.
struct ImageProfile {
  ReferenceImageConfig image;
  GuestOsConfig guest;
  uint64_t disk_blocks = 1024;
};

// How a host picks the profile for a newly bound address.
enum class ImageSelection {
  kPrimaryOnly,    // every clone uses profile 0
  kByAddressHash,  // deterministic per-IP choice across all profiles
};

struct CloneServerConfig {
  PhysicalHostConfig host;
  CloneEngineConfig engine;
  // Primary profile (kept flat for the common single-image case).
  ReferenceImageConfig image;
  uint64_t disk_blocks = 1024;
  GuestOsConfig guest;
  // Additional personalities beyond the primary one.
  std::vector<ImageProfile> extra_profiles;
  ImageSelection image_selection = ImageSelection::kPrimaryOnly;
  // Predictive-memory behavior for every clone this server spawns. The server
  // stamps attack_class with the selected profile index, so each personality
  // accumulates (and is predicted from) its own working-set profile. The zero
  // value keeps the legacy demand-fault path.
  CloneOptions clone_memory;
  // Fabric hop from the gateway to a VM on this host.
  Duration delivery_latency = Duration::Micros(50);
  // When set, infected VMs are snapshotted into this directory at retire time.
  std::string forensics_dir;
  // CPU accounting (telemetry only; does not throttle).
  CpuCostModel cpu;
};

class CloneServer {
 public:
  // Outbound hook: every packet any VM on this host transmits.
  using OutboundHandler = std::function<void(HostId, VmId, Packet)>;
  using InfectionHandler = std::function<void(GuestOs&, const PacketView&)>;
  using RetireHandler = std::function<void(VmId)>;

  CloneServer(EventLoop* loop, const CloneServerConfig& config, uint64_t seed);

  HostId host_id() const { return config_.host.id; }
  PhysicalHost& host() { return host_; }
  const PhysicalHost& host() const { return host_; }
  CloneEngine& engine() { return engine_; }

  void set_outbound_handler(OutboundHandler handler) { outbound_ = std::move(handler); }
  void set_infection_handler(InfectionHandler handler) {
    infection_ = std::move(handler);
  }
  void set_retire_handler(RetireHandler handler) { retired_ = std::move(handler); }

  // ---- Gateway-facing operations ----
  bool CanAdmit() const {
    return !crashed_ && host_.CanAdmit(images_[0], engine_.config().kind);
  }
  size_t LiveVms() const { return host_.live_vm_count(); }
  // Flash-clones a VM bound to `ip`; `done` receives kInvalidVm on failure.
  // `session` is the forensic session of the triggering first contact
  // (kNoSession for administratively spawned VMs); threaded to the engine.
  void SpawnVm(Ipv4Address ip, SessionId session, std::function<void(VmId)> done);
  void SpawnVm(Ipv4Address ip, std::function<void(VmId)> done) {
    SpawnVm(ip, kNoSession, std::move(done));
  }
  // Marks the VM dead immediately and schedules teardown through the engine.
  void RetireVm(VmId vm);
  // Delivers a packet to a VM's vNIC after the fabric latency. `view` is the
  // gateway's parse of `packet`; it is copied into the in-flight closure (views
  // survive the packet move — the frame buffer address is stable).
  void DeliverToVm(VmId vm, Packet packet, const PacketView& view);

  // ---- Control-plane / chaos operations ----
  // Hard-kills the host: every live VM is deactivated (retire handler fires so
  // worms stop, guests are torn down) and its frames are freed instantly — no
  // engine latency is charged, the machine just went away. Until Restore, the
  // server admits nothing and in-flight clone completions are discarded.
  void Crash();
  // Brings the crashed host back empty (fresh hypervisor boot).
  void Restore();
  bool crashed() const { return crashed_; }
  // Slow-host fault injection: scales the clone engine's charged latencies.
  void set_latency_scale(double scale) { engine_.set_latency_scale(scale); }
  // Reference image backing `profile`, for generational rotation via
  // host().mutable_image().
  ImageId image_id(size_t profile) const;

  GuestOs* FindGuest(VmId vm);
  size_t guest_count() const { return guests_.size(); }
  size_t profile_count() const { return images_.size(); }
  // Which profile a given address would get under the selection policy.
  size_t SelectProfile(Ipv4Address ip) const;
  uint64_t snapshots_written() const { return snapshots_written_; }

  // Aggregate guest statistics across live VMs.
  GuestStats AggregateGuestStats() const;

  const CpuAccountant& cpu() const { return cpu_; }

 private:
  void OnCloneComplete(Ipv4Address ip, size_t profile, VirtualMachine* vm,
                       std::function<void(VmId)> done);
  void MaybeArchiveForensics(VirtualMachine& vm);

  EventLoop* loop_;
  CloneServerConfig config_;
  PhysicalHost host_;
  CloneEngine engine_;
  std::vector<ImageId> images_;             // one per profile
  std::vector<GuestOsConfig> guest_configs_;  // parallel to images_
  Rng rng_;
  std::unordered_map<VmId, std::unique_ptr<GuestOs>> guests_;
  OutboundHandler outbound_;
  InfectionHandler infection_;
  RetireHandler retired_;
  uint64_t snapshots_written_ = 0;
  bool crashed_ = false;
  CpuAccountant cpu_;
};

}  // namespace potemkin

#endif  // SRC_CORE_CLONE_SERVER_H_
