#include "src/gateway/recycler.h"

namespace potemkin {

RetireReason ClassifyRetire(const Binding& binding, const RecyclePolicy& policy,
                            TimePoint now) {
  if (binding.state != BindingState::kActive) {
    return RetireReason::kKeep;
  }
  if (!policy.max_lifetime.IsZero() && now - binding.created >= policy.max_lifetime) {
    return RetireReason::kLifetime;
  }
  const bool held_infected = binding.infected && !policy.infected_hold.IsZero();
  const Duration idle_limit =
      held_infected ? policy.infected_hold : policy.idle_timeout;
  if (now - binding.last_activity >= idle_limit) {
    return held_infected ? RetireReason::kInfectedExpired : RetireReason::kIdle;
  }
  return RetireReason::kKeep;
}

}  // namespace potemkin
