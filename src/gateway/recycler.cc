#include "src/gateway/recycler.h"

namespace potemkin {

bool ShouldRetire(const Binding& binding, const RecyclePolicy& policy, TimePoint now) {
  if (binding.state != BindingState::kActive) {
    return false;
  }
  if (!policy.max_lifetime.IsZero() && now - binding.created >= policy.max_lifetime) {
    return true;
  }
  const Duration idle_limit =
      binding.infected && !policy.infected_hold.IsZero() ? policy.infected_hold
                                                         : policy.idle_timeout;
  return now - binding.last_activity >= idle_limit;
}

}  // namespace potemkin
