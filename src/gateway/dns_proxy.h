// Internal DNS proxy.
//
// Malware routinely resolves names (update servers, C&C hosts, mail exchangers)
// before making connections. Letting those lookups out leaks information and gives
// the malware a real-world dependency; dropping them stalls it. The paper's
// gateway answers lookups itself with addresses it controls — here, deterministic
// addresses inside the farm prefix, so follow-up connections are then reflected to
// honeypot VMs and the malware proceeds normally.
#ifndef SRC_GATEWAY_DNS_PROXY_H_
#define SRC_GATEWAY_DNS_PROXY_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/net/dns.h"
#include "src/net/ipv4.h"

namespace potemkin {

class DnsProxy {
 public:
  DnsProxy(Ipv4Prefix farm_prefix, uint64_t seed);

  // Produces the authoritative-looking answer for a query. A-record queries get a
  // stable farm-internal address per name; other types get NXDOMAIN.
  DnsResponse Resolve(const DnsQuery& query);

  uint64_t queries_answered() const { return queries_answered_; }
  uint64_t nxdomain_answers() const { return nxdomain_answers_; }
  size_t names_seen() const { return cache_.size(); }

 private:
  Ipv4Address AddressForName(const std::string& name);

  Ipv4Prefix farm_prefix_;
  uint64_t seed_;
  std::unordered_map<std::string, Ipv4Address> cache_;
  uint64_t queries_answered_ = 0;
  uint64_t nxdomain_answers_ = 0;
};

}  // namespace potemkin

#endif  // SRC_GATEWAY_DNS_PROXY_H_
