// Late-binding table: IP address -> VM.
//
// No VM exists for an address until traffic arrives; the table tracks each bound
// address through its lifecycle (cloning with queued packets -> active -> removed
// at recycle). Its size over time *is* the paper's headline scalability curve.
//
// Storage is packet-path flat: an open-addressing index keyed on the raw
// uint32_t address maps to a chunked slab of `Binding` records (stable
// addresses, no per-binding allocation). Packets queued while a clone is in
// flight live out-of-line in a side table — only ~queue-depth bindings are ever
// in kCloning, so the common kActive record stays one cache line.
#ifndef SRC_GATEWAY_BINDING_TABLE_H_
#define SRC_GATEWAY_BINDING_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/flat_index.h"
#include "src/base/session.h"
#include "src/base/slab.h"
#include "src/base/time_types.h"
#include "src/hv/types.h"
#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace potemkin {

enum class BindingState : uint8_t {
  kCloning,  // clone requested; packets queue here until it completes
  kActive,   // VM live; packets forward directly
};

struct Binding {
  Ipv4Address ip;
  HostId host = 0;
  VmId vm = kInvalidVm;
  TimePoint created;
  TimePoint last_activity;
  uint64_t inbound_packets = 0;
  SessionId session = kNoSession;  // forensic session minted at first contact
  uint32_t pending_count = 0;  // packets queued out-of-line while kCloning
  BindingState state = BindingState::kCloning;
  bool infected = false;
  bool reflected_origin = false;  // first packet arrived via reflection
};
static_assert(sizeof(Binding) <= 64, "kActive binding must stay one cache line");

struct BindingTableStats {
  uint64_t bindings_created = 0;
  uint64_t bindings_removed = 0;
  uint64_t peak_live = 0;
  uint64_t pending_queued = 0;
  uint64_t pending_dropped = 0;
};

class BindingTable {
 public:
  explicit BindingTable(size_t pending_queue_cap = 64);

  // Creates a kCloning binding. Must not already exist. The returned reference
  // is stable for the binding's lifetime (slab storage).
  Binding& CreatePending(Ipv4Address ip, HostId host, TimePoint now);
  // Transitions to kActive with the clone's VM id; returns nullptr if gone.
  Binding* Activate(Ipv4Address ip, VmId vm, TimePoint now);
  bool Remove(Ipv4Address ip);

  // Per-packet lookup; defined inline — it is the single hottest gateway call.
  Binding* Find(Ipv4Address ip) {
    const uint32_t slot = index_.Find(ip.value());
    return slot == FlatIndex<uint32_t>::kNotFound ? nullptr : &slab_.At(slot);
  }
  const Binding* Find(Ipv4Address ip) const {
    const uint32_t slot = index_.Find(ip.value());
    return slot == FlatIndex<uint32_t>::kNotFound ? nullptr : &slab_.At(slot);
  }

  // Pre-sizes the address index for an expected live-binding load. The sharded
  // gateway calls this with its partition's share of the farm prefix so a
  // populate burst never rehashes mid-flight.
  void Reserve(size_t expected_bindings) { index_.Reserve(expected_bindings); }

  // Queues a packet on a cloning binding, enforcing the queue cap.
  // Returns false (and counts a drop) when full.
  bool QueuePending(Binding& binding, Packet packet);
  // Removes and returns all queued packets.
  std::vector<Packet> TakePending(Binding& binding);

  size_t size() const { return slab_.live_count(); }
  // Occupancy of the open-addressing index (live entries / table slots): the
  // probe-length health signal surfaced in farm snapshots.
  double load_factor() const {
    return index_.capacity() == 0
               ? 0.0
               : static_cast<double>(index_.size()) /
                     static_cast<double>(index_.capacity());
  }
  const BindingTableStats& stats() const { return stats_; }

  template <typename Fn>
  void ForEach(Fn&& fn) {
    slab_.ForEach([&](uint32_t, Binding& binding) { fn(binding); });
  }

  // Collects addresses matching a predicate (used by the recycler to avoid
  // mutating while iterating).
  template <typename Pred>
  std::vector<Ipv4Address> CollectIf(Pred&& pred) const {
    std::vector<Ipv4Address> out;
    slab_.ForEach([&](uint32_t, const Binding& binding) {
      if (pred(binding)) {
        out.push_back(binding.ip);
      }
    });
    return out;
  }

 private:
  size_t pending_queue_cap_;
  FlatIndex<uint32_t> index_;  // ip (host order) -> slab slot
  Slab<Binding> slab_;
  // Out-of-line clone-time packet queues, keyed by raw IP. Touched only for
  // kCloning bindings, which number ~clone-queue-depth at any instant.
  std::unordered_map<uint32_t, std::vector<Packet>> pending_;
  BindingTableStats stats_;
};

}  // namespace potemkin

#endif  // SRC_GATEWAY_BINDING_TABLE_H_
