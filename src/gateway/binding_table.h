// Late-binding table: IP address -> VM.
//
// No VM exists for an address until traffic arrives; the table tracks each bound
// address through its lifecycle (cloning with queued packets -> active -> removed
// at recycle). Its size over time *is* the paper's headline scalability curve.
#ifndef SRC_GATEWAY_BINDING_TABLE_H_
#define SRC_GATEWAY_BINDING_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/time_types.h"
#include "src/hv/types.h"
#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace potemkin {

enum class BindingState {
  kCloning,  // clone requested; packets queue here until it completes
  kActive,   // VM live; packets forward directly
};

struct Binding {
  Ipv4Address ip;
  HostId host = 0;
  VmId vm = kInvalidVm;
  BindingState state = BindingState::kCloning;
  TimePoint created;
  TimePoint last_activity;
  bool infected = false;
  bool reflected_origin = false;  // first packet arrived via reflection
  uint64_t inbound_packets = 0;
  std::vector<Packet> pending;  // queued while cloning
};

struct BindingTableStats {
  uint64_t bindings_created = 0;
  uint64_t bindings_removed = 0;
  uint64_t peak_live = 0;
  uint64_t pending_queued = 0;
  uint64_t pending_dropped = 0;
};

class BindingTable {
 public:
  explicit BindingTable(size_t pending_queue_cap = 64);

  // Creates a kCloning binding. Must not already exist.
  Binding& CreatePending(Ipv4Address ip, HostId host, TimePoint now);
  // Transitions to kActive with the clone's VM id; returns nullptr if gone.
  Binding* Activate(Ipv4Address ip, VmId vm, TimePoint now);
  bool Remove(Ipv4Address ip);

  Binding* Find(Ipv4Address ip);
  const Binding* Find(Ipv4Address ip) const;

  // Queues a packet on a cloning binding, enforcing the queue cap.
  // Returns false (and counts a drop) when full.
  bool QueuePending(Binding& binding, Packet packet);
  // Removes and returns all queued packets.
  std::vector<Packet> TakePending(Binding& binding);

  size_t size() const { return bindings_.size(); }
  const BindingTableStats& stats() const { return stats_; }

  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& [ip, binding] : bindings_) {
      fn(binding);
    }
  }

  // Collects addresses matching a predicate (used by the recycler to avoid
  // mutating while iterating).
  template <typename Pred>
  std::vector<Ipv4Address> CollectIf(Pred&& pred) const {
    std::vector<Ipv4Address> out;
    for (const auto& [ip, binding] : bindings_) {
      if (pred(binding)) {
        out.push_back(ip);
      }
    }
    return out;
  }

 private:
  size_t pending_queue_cap_;
  std::unordered_map<Ipv4Address, Binding> bindings_;
  BindingTableStats stats_;
};

}  // namespace potemkin

#endif  // SRC_GATEWAY_BINDING_TABLE_H_
