#include "src/gateway/binding_table.h"

#include <algorithm>

#include "src/base/log.h"

namespace potemkin {

BindingTable::BindingTable(size_t pending_queue_cap)
    : pending_queue_cap_(pending_queue_cap) {}

Binding& BindingTable::CreatePending(Ipv4Address ip, HostId host, TimePoint now) {
  PK_CHECK(bindings_.find(ip) == bindings_.end())
      << "duplicate binding for " << ip.ToString();
  Binding binding;
  binding.ip = ip;
  binding.host = host;
  binding.state = BindingState::kCloning;
  binding.created = now;
  binding.last_activity = now;
  auto [it, inserted] = bindings_.emplace(ip, std::move(binding));
  ++stats_.bindings_created;
  stats_.peak_live = std::max<uint64_t>(stats_.peak_live, bindings_.size());
  return it->second;
}

Binding* BindingTable::Activate(Ipv4Address ip, VmId vm, TimePoint now) {
  auto it = bindings_.find(ip);
  if (it == bindings_.end()) {
    return nullptr;
  }
  it->second.vm = vm;
  it->second.state = BindingState::kActive;
  it->second.last_activity = now;
  return &it->second;
}

bool BindingTable::Remove(Ipv4Address ip) {
  const bool erased = bindings_.erase(ip) > 0;
  if (erased) {
    ++stats_.bindings_removed;
  }
  return erased;
}

Binding* BindingTable::Find(Ipv4Address ip) {
  auto it = bindings_.find(ip);
  return it == bindings_.end() ? nullptr : &it->second;
}

const Binding* BindingTable::Find(Ipv4Address ip) const {
  auto it = bindings_.find(ip);
  return it == bindings_.end() ? nullptr : &it->second;
}

bool BindingTable::QueuePending(Binding& binding, Packet packet) {
  if (binding.pending.size() >= pending_queue_cap_) {
    ++stats_.pending_dropped;
    return false;
  }
  binding.pending.push_back(std::move(packet));
  ++stats_.pending_queued;
  return true;
}

std::vector<Packet> BindingTable::TakePending(Binding& binding) {
  std::vector<Packet> out;
  out.swap(binding.pending);
  return out;
}

}  // namespace potemkin
