#include "src/gateway/binding_table.h"

#include <algorithm>

#include "src/base/log.h"

namespace potemkin {

BindingTable::BindingTable(size_t pending_queue_cap)
    : pending_queue_cap_(pending_queue_cap) {}

Binding& BindingTable::CreatePending(Ipv4Address ip, HostId host, TimePoint now) {
  PK_CHECK(index_.Find(ip.value()) == FlatIndex<uint32_t>::kNotFound)
      << "duplicate binding for " << ip.ToString();
  const uint32_t slot = slab_.Alloc();
  index_.Insert(ip.value(), slot);
  Binding& binding = slab_.At(slot);
  binding.ip = ip;
  binding.host = host;
  binding.state = BindingState::kCloning;
  binding.created = now;
  binding.last_activity = now;
  ++stats_.bindings_created;
  stats_.peak_live = std::max<uint64_t>(stats_.peak_live, slab_.live_count());
  return binding;
}

Binding* BindingTable::Activate(Ipv4Address ip, VmId vm, TimePoint now) {
  Binding* binding = Find(ip);
  if (binding == nullptr) {
    return nullptr;
  }
  binding->vm = vm;
  binding->state = BindingState::kActive;
  binding->last_activity = now;
  return binding;
}

bool BindingTable::Remove(Ipv4Address ip) {
  const uint32_t slot = index_.Erase(ip.value());
  if (slot == FlatIndex<uint32_t>::kNotFound) {
    return false;
  }
  if (slab_.At(slot).pending_count > 0) {
    pending_.erase(ip.value());
  }
  slab_.Free(slot);
  ++stats_.bindings_removed;
  return true;
}

bool BindingTable::QueuePending(Binding& binding, Packet packet) {
  if (binding.pending_count >= pending_queue_cap_) {
    ++stats_.pending_dropped;
    return false;
  }
  std::vector<Packet>& queue = pending_[binding.ip.value()];
  if (queue.empty()) {
    queue.reserve(std::min<size_t>(pending_queue_cap_, 8));
  }
  queue.push_back(std::move(packet));
  ++binding.pending_count;
  ++stats_.pending_queued;
  return true;
}

std::vector<Packet> BindingTable::TakePending(Binding& binding) {
  std::vector<Packet> out;
  if (binding.pending_count == 0) {
    return out;
  }
  auto it = pending_.find(binding.ip.value());
  if (it != pending_.end()) {
    out = std::move(it->second);
    pending_.erase(it);
  }
  binding.pending_count = 0;
  return out;
}

}  // namespace potemkin
