#include "src/gateway/scan_detector.h"

#include <vector>

namespace potemkin {

ScanDetector::ScanDetector(const ScanDetectorConfig& config) : config_(config) {}

bool ScanDetector::Record(Ipv4Address source, Ipv4Address destination, TimePoint now) {
  SourceState& state = sources_[source];
  if (state.distinct.empty()) {
    state.window_start = now;
  }
  // Restart the window when it lapses; keep the flag sticky for the source's
  // lifetime in the table (a scanner stays a scanner until expired).
  if (now - state.window_start > config_.window) {
    state.window_start = now;
    state.distinct.clear();
  }
  state.last_seen = now;
  state.distinct.insert(destination);
  if (!state.flagged && state.distinct.size() >= config_.distinct_threshold) {
    state.flagged = true;
    ++scanners_flagged_;
  }
  return state.flagged;
}

bool ScanDetector::IsScanner(Ipv4Address source) const {
  auto it = sources_.find(source);
  return it != sources_.end() && it->second.flagged;
}

size_t ScanDetector::ExpireIdle(TimePoint now) {
  std::vector<Ipv4Address> dead;
  for (const auto& [source, state] : sources_) {
    if (now - state.last_seen > config_.window) {
      dead.push_back(source);
    }
  }
  for (const auto& source : dead) {
    sources_.erase(source);
  }
  return dead.size();
}

}  // namespace potemkin
