#include "src/gateway/scan_detector.h"

#include <algorithm>
#include <vector>

namespace potemkin {

ScanDetector::ScanDetector(const ScanDetectorConfig& config) : config_(config) {}

bool ScanDetector::Record(Ipv4Address source, Ipv4Address destination, TimePoint now) {
  newly_flagged_ = false;
  uint32_t slot = index_.Find(source.value());
  if (slot == FlatIndex<uint32_t>::kNotFound) {
    slot = slab_.Alloc();
    slab_.At(slot).source = source;
    index_.Insert(source.value(), slot);
  }
  SourceState& state = slab_.At(slot);
  if (state.distinct_count == 0) {
    state.window_start = now;
  }
  // Restart the window when it lapses; keep the flag sticky for the source's
  // lifetime in the table (a scanner stays a scanner until expired).
  if (now - state.window_start > config_.window) {
    state.window_start = now;
    state.distinct_count = 0;
  }
  state.last_seen = now;
  const size_t tracked =
      std::min<size_t>(state.distinct_count, SourceState::kMaxTracked);
  for (size_t i = 0; i < tracked; ++i) {
    if (state.distinct[i] == destination) {
      return state.flagged;
    }
  }
  if (tracked < SourceState::kMaxTracked) {
    state.distinct[tracked] = destination;
  }
  if (state.distinct_count < 0xff) {
    ++state.distinct_count;
  }
  if (!state.flagged && state.distinct_count >= config_.distinct_threshold) {
    state.flagged = true;
    newly_flagged_ = true;
    ++scanners_flagged_;
  }
  return state.flagged;
}

bool ScanDetector::IsScanner(Ipv4Address source) const {
  const uint32_t slot = index_.Find(source.value());
  return slot != FlatIndex<uint32_t>::kNotFound && slab_.At(slot).flagged;
}

size_t ScanDetector::ExpireIdle(TimePoint now) {
  std::vector<uint32_t> dead;
  slab_.ForEach([&](uint32_t slot, const SourceState& state) {
    if (now - state.last_seen > config_.window) {
      dead.push_back(slot);
    }
  });
  for (const uint32_t slot : dead) {
    index_.Erase(slab_.At(slot).source.value());
    slab_.Free(slot);
  }
  return dead.size();
}

}  // namespace potemkin
