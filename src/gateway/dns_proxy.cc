#include "src/gateway/dns_proxy.h"

namespace potemkin {

DnsProxy::DnsProxy(Ipv4Prefix farm_prefix, uint64_t seed)
    : farm_prefix_(farm_prefix), seed_(seed) {}

Ipv4Address DnsProxy::AddressForName(const std::string& name) {
  auto it = cache_.find(name);
  if (it != cache_.end()) {
    return it->second;
  }
  uint64_t h = seed_ ^ 1469598103934665603ull;
  for (char c : name) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  const Ipv4Address addr = farm_prefix_.AddressAt(h % farm_prefix_.NumAddresses());
  cache_.emplace(name, addr);
  return addr;
}

DnsResponse DnsProxy::Resolve(const DnsQuery& query) {
  DnsResponse response;
  response.id = query.id;
  response.name = query.name;
  if (query.qtype != kDnsTypeA || query.name.empty()) {
    response.rcode = 3;  // NXDOMAIN
    ++nxdomain_answers_;
    ++queries_answered_;
    return response;
  }
  response.addresses.push_back(AddressForName(query.name));
  ++queries_answered_;
  return response;
}

}  // namespace potemkin
